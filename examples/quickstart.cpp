// Quickstart: the smallest complete PDS program.
//
// Nine devices sit in a 3×3 grid. One corner device publishes a few sensor
// samples and one photo (a small chunked item); the opposite corner
// discovers what exists nearby and retrieves the photo. Everything runs on
// the simulated broadcast medium — swap the medium for a real UDP-broadcast
// face to run on hardware.
//
//   ./quickstart
#include <cstdio>

#include "core/node.h"
#include "workload/generator.h"
#include "workload/scenario.h"

using namespace pds;

int main() {
  // 1. A world: simulator + radio medium + nine nodes in a grid.
  wl::GridSetup setup;
  setup.nx = 3;
  setup.ny = 3;
  wl::Grid grid = wl::make_grid(setup, /*seed=*/42);
  wl::Scenario& world = *grid.scenario;

  core::PdsNode& producer = world.node(grid.ids.front());
  core::PdsNode& consumer = world.node(grid.ids.back());

  // 2. The producer publishes five temperature samples...
  for (int i = 0; i < 5; ++i) {
    core::DataDescriptor sample;
    sample.set(core::kAttrNamespace, std::string("env"));
    sample.set(core::kAttrDataType, std::string("temperature"));
    sample.set(core::kAttrTime, std::int64_t{1'600'000'000 + i * 60});
    sample.set("celsius", 20.0 + i);
    producer.publish_metadata(sample);
  }

  // ...and one 1 MB photo split into 256 KB chunks.
  const core::DataDescriptor photo =
      wl::make_chunked_item("sunset.jpg", 1024 * 1024, 256 * 1024);
  for (ChunkIndex c = 0; c < wl::chunk_count(photo); ++c) {
    producer.publish_chunk(
        photo, wl::make_chunk(photo, c, 1024 * 1024, 256 * 1024));
  }

  // 3. The consumer discovers everything in the neighborhood.
  consumer.discover(
      core::Filter{}, [&](const core::DiscoverySession::Result& r) {
        std::printf("discovery: %zu entries in %.2f s over %d round(s)\n",
                    r.distinct_received, r.latency.as_seconds(), r.rounds);

        // 4. ...and fetches the photo it just learned about.
        consumer.retrieve(photo, [](const core::RetrievalResult& r2) {
          std::printf("retrieval: %zu/%zu chunks in %.2f s (%s)\n",
                      r2.chunks_received, r2.total_chunks,
                      r2.latency.as_seconds(),
                      r2.complete ? "complete" : "incomplete");
        });
      });

  world.run_until(SimTime::seconds(60));
  std::printf("on-air bytes: %.2f MB\n", world.overhead_mb());
  return 0;
}
