// Live subscriptions — the paper's §IV future-work scenario.
//
// During a campus tournament, one phone posts a score update every few
// seconds. Spectators elsewhere in the crowd subscribe once; each update
// then streams to them through the standing lingering queries the moment it
// is published — no polling, no re-querying. A latecomer subscribes halfway
// through and still catches both the history (from caches) and the rest of
// the stream.
//
//   ./live_scores
#include <cstdio>

#include "core/node.h"
#include "workload/scenario.h"

using namespace pds;

int main() {
  wl::GridSetup setup;
  setup.nx = 5;
  setup.ny = 5;
  wl::Grid grid = wl::make_grid(setup, /*seed=*/3);
  wl::Scenario& world = *grid.scenario;

  core::PdsNode& scorer = world.node(grid.ids.front());     // corner
  core::PdsNode& fan = world.node(grid.ids.back());         // far corner
  core::PdsNode& latecomer = world.node(grid.center);

  core::Filter scores;
  scores.where(std::string(core::kAttrDataType), core::Relation::kEq,
               std::string("score"));

  fan.subscribe(scores, SimTime::minutes(5),
                [&world](const core::DataDescriptor& d) {
                  std::printf("t=%5.1fs  fan        sees update #%lld\n",
                              world.sim().now().as_seconds(),
                              static_cast<long long>(
                                  std::get<std::int64_t>(*d.find("update"))));
                });

  // Ten updates, one every 3 seconds.
  for (int i = 0; i < 10; ++i) {
    world.sim().schedule(SimTime::seconds(2.0 + 3.0 * i), [&scorer, i] {
      core::DataDescriptor update;
      update.set(core::kAttrDataType, std::string("score"));
      update.set("update", std::int64_t{i});
      scorer.publish_metadata(update);
    });
  }

  // The latecomer subscribes at t = 15 s and catches up.
  world.sim().schedule(SimTime::seconds(15.0), [&] {
    std::printf("t= 15.0s  latecomer  subscribes\n");
    latecomer.subscribe(scores, SimTime::minutes(5),
                        [&world](const core::DataDescriptor& d) {
                          std::printf(
                              "t=%5.1fs  latecomer  sees update #%lld\n",
                              world.sim().now().as_seconds(),
                              static_cast<long long>(std::get<std::int64_t>(
                                  *d.find("update"))));
                        });
  });

  world.run_until(SimTime::seconds(40.0));
  std::printf("on-air bytes: %.3f MB\n", world.overhead_mb());
  return 0;
}
