// Crowdsensed air quality — the paper's many-small-items scenario (§II-A,
// §IV intro): phones scattered across a park have each collected NOx
// samples; a consumer wants *complete samples* (descriptor + payload) of
// one pollutant inside a spatial box and time window, without any backend.
//
//   ./crowdsense_airquality
#include <cstdio>

#include "core/node.h"
#include "workload/generator.h"
#include "workload/scenario.h"

using namespace pds;

int main() {
  // 7×7 grid of parked phones across a "park".
  wl::GridSetup setup;
  setup.nx = 7;
  setup.ny = 7;
  wl::Grid grid = wl::make_grid(setup, /*seed=*/11);
  wl::Scenario& world = *grid.scenario;

  // Phones hold 400 samples of two pollutant types, spread uniformly.
  Rng rng(3);
  wl::SampleSpace nox;
  nox.data_type = "nox";
  wl::SampleSpace co2;
  co2.data_type = "co2";
  auto nodes = world.nodes();
  const auto nox_items = wl::make_sample_items(200, 96, nox, rng);
  const auto co2_items = wl::make_sample_items(200, 96, co2, rng);
  wl::distribute_items(nodes, nox_items, /*redundancy=*/1, rng,
                       {grid.center});
  wl::distribute_items(nodes, co2_items, 1, rng, {grid.center});

  // How many NOx samples actually fall in the query box?
  core::Filter query;
  query.where(std::string(core::kAttrDataType), core::Relation::kEq,
              std::string("nox"))
      .where_range("x", 25.0, 75.0)
      .where_range("y", 25.0, 75.0);
  std::size_t in_box = 0;
  for (const auto& item : nox_items) {
    if (query.matches(item.descriptor)) ++in_box;
  }

  std::printf("400 samples in the park; %zu NOx samples inside the box\n",
              in_box);

  core::PdsNode& consumer = world.node(grid.center);
  consumer.collect_items(
      query, [&](const core::DiscoverySession::Result& r) {
        std::printf("collected %zu matching samples in %.2f s (%d rounds)\n",
                    r.distinct_received, r.latency.as_seconds(), r.rounds);
      });
  world.run_until(SimTime::seconds(60));

  std::printf("on-air bytes: %.2f MB\n", world.overhead_mb());
  std::printf(
      "note: only matching samples crossed the air — en-route pruning kept\n"
      "co2 and out-of-box nox samples at their producers.\n");
  return 0;
}
