// Multi-group Wi-Fi Direct sharing (paper §V / §VII, refs [21][22]).
//
// Commodity phones cannot join one big ad-hoc network, but they can form
// single-hop Wi-Fi Direct groups, interconnected by bridge devices. This
// demo builds three such groups in a row, publishes photos in the rightmost
// group and lets a phone in the leftmost group discover and fetch one —
// every inter-group byte crossing through the bridges.
//
//   ./wifi_direct_demo
#include <cstdio>

#include "core/node.h"
#include "sim/topology.h"
#include "workload/generator.h"
#include "workload/scenario.h"

using namespace pds;

int main() {
  const double range = 20.0;
  Rng layout_rng(7);
  const sim::WifiDirectLayout layout =
      sim::wifi_direct_groups(/*groups=*/3, /*members_per_group=*/5, range,
                              layout_rng);

  core::PdsConfig pds;
  sim::RadioConfig radio = sim::clean_radio_profile();
  radio.range_m = range;
  wl::Scenario world(11, radio);
  for (std::size_t i = 0; i < layout.positions.size(); ++i) {
    world.add_node(NodeId(static_cast<std::uint32_t>(i)), layout.positions[i],
                   pds);
  }
  std::printf("3 Wi-Fi Direct groups of 5, %zu bridge device(s)\n",
              layout.bridges.size());

  // A phone in group 2 publishes a 2 MB photo.
  core::PdsNode& producer =
      world.node(NodeId(static_cast<std::uint32_t>(layout.owners[2])));
  const auto photo = wl::make_chunked_item("group-photo.jpg", 2u << 20,
                                           pds.chunk_size_bytes);
  for (ChunkIndex c = 0; c < wl::chunk_count(photo); ++c) {
    producer.publish_chunk(
        photo, wl::make_chunk(photo, c, 2u << 20, pds.chunk_size_bytes));
  }

  // Count the bytes the bridges carry.
  std::uint64_t bridge_bytes = 0;
  world.medium().set_tx_observer([&](NodeId from, const sim::Frame& f) {
    for (std::size_t b : layout.bridges) {
      if (from.value() == b) bridge_bytes += f.size_bytes;
    }
  });

  core::PdsNode& consumer =
      world.node(NodeId(static_cast<std::uint32_t>(layout.owners[0])));
  consumer.discover(core::Filter{}, [&](const core::DiscoverySession::Result&
                                            r) {
    std::printf("discovered %zu chunk entr%s across two bridges in %.3f s\n",
                r.distinct_received, r.distinct_received == 1 ? "y" : "ies",
                r.latency.as_seconds());
    consumer.retrieve(photo, [&](const core::RetrievalResult& r2) {
      std::printf("fetched %zu/%zu chunks in %.1f s (%s)\n",
                  r2.chunks_received, r2.total_chunks,
                  r2.latency.as_seconds(),
                  r2.complete ? "complete" : "incomplete");
    });
  });

  world.run_until(SimTime::seconds(120));
  std::printf("bytes relayed by bridge devices: %.2f MB of %.2f MB total\n",
              bridge_bytes / 1e6, world.overhead_mb());
  return 0;
}
