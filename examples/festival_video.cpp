// Festival video sharing — the paper's motivating large-item scenario.
//
// A crowd of 100 devices (10×10 grid); someone recorded a 20 MB clip of a
// memorable moment and its chunks have spread to a few devices. A spectator
// at the center of the crowd fetches the clip twice — once with two-phase
// PDR and once with the multi-round MDR baseline — and prints the
// comparison the paper's Figs. 13/14 are about.
//
//   ./festival_video [size_mb] [redundancy]
#include <cstdio>
#include <cstdlib>

#include "workload/experiment.h"

using namespace pds;

int main(int argc, char** argv) {
  const std::size_t size_mb =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 10;
  const int redundancy = argc > 2 ? std::atoi(argv[2]) : 3;

  std::printf("fetching a %zu MB clip, %d cop%s of each chunk, 100 devices\n\n",
              size_mb, redundancy, redundancy == 1 ? "y" : "ies");

  for (const wl::RetrievalMethod method :
       {wl::RetrievalMethod::kPdr, wl::RetrievalMethod::kMdr}) {
    wl::RetrievalGridParams p;
    p.item_size_bytes = size_mb * 1024 * 1024;
    p.redundancy = redundancy;
    p.method = method;
    p.seed = 7;
    const wl::RetrievalOutcome out = wl::run_retrieval_grid(p);
    std::printf("%s: recall %.0f%%, latency %.1f s, on-air %.1f MB%s\n",
                method == wl::RetrievalMethod::kPdr
                    ? "PDR (two-phase, nearest copies)"
                    : "MDR (multi-round flooding)    ",
                out.recall * 100.0, out.latency_s, out.overhead_mb,
                out.all_complete ? "" : "  [incomplete]");
  }
  std::printf(
      "\nPDR gathers chunk-distribution routing state first, then pulls each\n"
      "chunk from its nearest copy exactly once; MDR floods and pays for\n"
      "duplicate copies arriving along different reverse paths.\n");
  return 0;
}
