// Student-center sharing under real-world churn (paper §VI-B.2).
//
// People wander through a 120×120 m² student center: on average one joins,
// one leaves and four move every minute (the paper's 8-hour observation).
// Early in the scenario, the people present hold 2,000 sensor samples.
// Three consumers discover the data one after another — later consumers
// ride the caches the earlier ones created, even as producers walk out.
//
//   ./mobility_campus [frequency_multiplier]
#include <cstdio>
#include <cstdlib>

#include "workload/generator.h"
#include "workload/scenario.h"

using namespace pds;

int main(int argc, char** argv) {
  const double mult = argc > 1 ? std::atof(argv[1]) : 1.0;

  wl::MobilitySetup setup;
  setup.mobility = sim::student_center_params();
  setup.mobility.frequency_multiplier = mult;
  setup.mobility.duration = SimTime::minutes(15);
  setup.pinned_consumers = 3;
  wl::MobileWorld world = wl::make_mobile_world(setup, /*seed=*/5);
  wl::Scenario& sc = *world.scenario;

  std::printf("student center, %.1fx observed churn (%zu people present)\n",
              mult, world.initially_present.size());

  Rng rng(9);
  const auto entries =
      wl::make_sample_descriptors(2000, wl::SampleSpace{}, rng);
  std::vector<core::PdsNode*> present;
  for (NodeId id : world.initially_present) present.push_back(&sc.node(id));
  wl::distribute_metadata(present, entries, /*redundancy=*/1, rng,
                          world.consumers);

  // Consumers discover sequentially, 30 simulated seconds apart.
  for (std::size_t i = 0; i < world.consumers.size(); ++i) {
    const NodeId who = world.consumers[i];
    sc.sim().schedule(SimTime::seconds(static_cast<double>(i) * 30.0),
                      [&sc, who, i] {
                        sc.node(who).discover(
                            core::Filter{},
                            [i](const core::DiscoverySession::Result& r) {
                              std::printf(
                                  "consumer %zu: %zu/2000 entries in %.2f s "
                                  "(%d rounds)\n",
                                  i + 1, r.distinct_received,
                                  r.latency.as_seconds(), r.rounds);
                            });
                      });
  }

  sc.run_until(SimTime::minutes(15));
  std::printf("on-air bytes over 15 min: %.2f MB\n", sc.overhead_mb());
  return 0;
}
