// pdscli — command-line experiment driver.
//
// Runs any of the repo's standard experiment harnesses with parameters from
// flags and prints the paper's metrics (recall / latency / message
// overhead). Examples:
//
//   pdscli --experiment=pdd --grid=10 --entries=5000 --runs=5
//   pdscli --experiment=pdr --item-mb=20 --redundancy=3
//   pdscli --experiment=mdr --item-mb=10
//   pdscli --experiment=pdd-mobility --scenario=student_center --mobility=2
//   pdscli --experiment=pdr-mobility --item-mb=20
//   pdscli --experiment=singlehop --mode=leaky_ack --senders=3
//
// Every run is deterministic for a given --seed; --runs averages seeds
// seed, seed+1, ...
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "util/stats.h"
#include "workload/experiment.h"

namespace pds {
namespace {

struct Flags {
  std::map<std::string, std::string> values;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& dflt) const {
    auto it = values.find(key);
    return it == values.end() ? dflt : it->second;
  }
  [[nodiscard]] long num(const std::string& key, long dflt) const {
    auto it = values.find(key);
    return it == values.end() ? dflt : std::atol(it->second.c_str());
  }
  [[nodiscard]] double real(const std::string& key, double dflt) const {
    auto it = values.find(key);
    return it == values.end() ? dflt : std::atof(it->second.c_str());
  }
};

Flags parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags.values[arg] = "1";
    } else {
      flags.values[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: pdscli --experiment=<pdd|pdr|mdr|pdd-mobility|pdr-mobility|"
      "singlehop> [options]\n"
      "  common:       --seed=N --runs=N\n"
      "  pdd:          --grid=N --entries=N --redundancy=N --consumers=N\n"
      "                --sequential --single-round --no-ack\n"
      "  pdr/mdr:      --grid=N --item-mb=N --redundancy=N --consumers=N\n"
      "                --sequential --contended\n"
      "  *-mobility:   --scenario=<student_center|classroom> --mobility=X\n"
      "                --entries=N / --item-mb=N --minutes=N\n"
      "  singlehop:    --mode=<raw|leaky|leaky_ack> --senders=N "
      "--messages=N\n");
  return 2;
}

sim::MobilityParams scenario_params(const std::string& name) {
  return name == "classroom" ? sim::classroom_params()
                             : sim::student_center_params();
}

int run_pdd(const Flags& flags) {
  util::SampleSet recall, latency, overhead;
  const long runs = flags.num("runs", 1);
  for (long r = 0; r < runs; ++r) {
    wl::PddGridParams p;
    p.nx = p.ny = static_cast<std::size_t>(flags.num("grid", 10));
    p.metadata_count = static_cast<std::size_t>(flags.num("entries", 5000));
    p.redundancy = static_cast<int>(flags.num("redundancy", 1));
    p.consumers = static_cast<std::size_t>(flags.num("consumers", 1));
    p.sequential = flags.num("sequential", 0) != 0;
    p.multi_round = flags.num("single-round", 0) == 0;
    p.ack = flags.num("no-ack", 0) == 0;
    p.seed = static_cast<std::uint64_t>(flags.num("seed", 1) + r);
    const wl::PddOutcome out = wl::run_pdd_grid(p);
    recall.add(out.recall);
    latency.add(out.latency_s);
    overhead.add(out.overhead_mb);
  }
  std::printf("pdd: recall=%.3f latency=%.2fs overhead=%.2fMB (%ld run%s)\n",
              recall.mean(), latency.mean(), overhead.mean(), runs,
              runs == 1 ? "" : "s");
  return 0;
}

int run_retrieval(const Flags& flags, wl::RetrievalMethod method) {
  util::SampleSet recall, latency, overhead;
  const long runs = flags.num("runs", 1);
  bool all_complete = true;
  for (long r = 0; r < runs; ++r) {
    wl::RetrievalGridParams p;
    p.nx = p.ny = static_cast<std::size_t>(flags.num("grid", 10));
    p.item_size_bytes =
        static_cast<std::size_t>(flags.num("item-mb", 20)) * 1024 * 1024;
    p.redundancy = static_cast<int>(flags.num("redundancy", 1));
    p.consumers = static_cast<std::size_t>(flags.num("consumers", 1));
    p.sequential = flags.num("sequential", 0) != 0;
    p.contended_medium = flags.num("contended", 0) != 0;
    p.method = method;
    p.seed = static_cast<std::uint64_t>(flags.num("seed", 1) + r);
    const wl::RetrievalOutcome out = wl::run_retrieval_grid(p);
    recall.add(out.recall);
    latency.add(out.latency_s);
    overhead.add(out.overhead_mb);
    all_complete = all_complete && out.all_complete;
  }
  std::printf(
      "%s: recall=%.3f latency=%.1fs overhead=%.1fMB%s (%ld run%s)\n",
      method == wl::RetrievalMethod::kPdr ? "pdr" : "mdr", recall.mean(),
      latency.mean(), overhead.mean(), all_complete ? "" : " [incomplete]",
      runs, runs == 1 ? "" : "s");
  return 0;
}

int run_pdd_mobility(const Flags& flags) {
  util::SampleSet recall, latency, overhead;
  const long runs = flags.num("runs", 1);
  for (long r = 0; r < runs; ++r) {
    wl::PddMobilityParams p;
    p.mobility = scenario_params(flags.get("scenario", "student_center"));
    p.mobility.frequency_multiplier = flags.real("mobility", 1.0);
    p.mobility.duration = SimTime::minutes(flags.real("minutes", 5.0));
    p.range_m = flags.get("scenario", "student_center") == "classroom"
                    ? 15.0
                    : 40.0;
    p.metadata_count = static_cast<std::size_t>(flags.num("entries", 5000));
    p.seed = static_cast<std::uint64_t>(flags.num("seed", 1) + r);
    const wl::PddOutcome out = wl::run_pdd_mobility(p);
    recall.add(out.recall);
    latency.add(out.latency_s);
    overhead.add(out.overhead_mb);
  }
  std::printf(
      "pdd-mobility: recall=%.3f latency=%.2fs overhead=%.2fMB (%ld run%s)\n",
      recall.mean(), latency.mean(), overhead.mean(), runs,
      runs == 1 ? "" : "s");
  return 0;
}

int run_pdr_mobility(const Flags& flags) {
  util::SampleSet recall, latency, overhead;
  const long runs = flags.num("runs", 1);
  for (long r = 0; r < runs; ++r) {
    wl::RetrievalMobilityParams p;
    p.mobility = scenario_params(flags.get("scenario", "student_center"));
    p.mobility.frequency_multiplier = flags.real("mobility", 1.0);
    p.mobility.duration = SimTime::minutes(flags.real("minutes", 20.0));
    p.item_size_bytes =
        static_cast<std::size_t>(flags.num("item-mb", 20)) * 1024 * 1024;
    p.redundancy = static_cast<int>(flags.num("redundancy", 2));
    p.seed = static_cast<std::uint64_t>(flags.num("seed", 1) + r);
    const wl::RetrievalOutcome out = wl::run_retrieval_mobility(p);
    recall.add(out.recall);
    latency.add(out.latency_s);
    overhead.add(out.overhead_mb);
  }
  std::printf(
      "pdr-mobility: recall=%.3f latency=%.1fs overhead=%.1fMB (%ld run%s)\n",
      recall.mean(), latency.mean(), overhead.mean(), runs,
      runs == 1 ? "" : "s");
  return 0;
}

int run_singlehop(const Flags& flags) {
  util::SampleSet reception, rate;
  const long runs = flags.num("runs", 1);
  for (long r = 0; r < runs; ++r) {
    wl::SingleHopParams p;
    const std::string mode = flags.get("mode", "leaky_ack");
    p.mode = mode == "raw"     ? wl::TransportMode::kRawUdp
             : mode == "leaky" ? wl::TransportMode::kLeakyBucket
                               : wl::TransportMode::kLeakyBucketAck;
    p.senders = static_cast<std::size_t>(flags.num("senders", 2));
    p.messages_per_sender =
        static_cast<std::size_t>(flags.num("messages", 10000));
    p.seed = static_cast<std::uint64_t>(flags.num("seed", 1) + r);
    const wl::SingleHopOutcome out = wl::run_single_hop(p);
    reception.add(out.reception);
    rate.add(out.data_rate_mbps);
  }
  std::printf("singlehop: reception=%.3f data_rate=%.2fMb/s (%ld run%s)\n",
              reception.mean(), rate.mean(), runs, runs == 1 ? "" : "s");
  return 0;
}

int run_main(int argc, char** argv) {
  const Flags flags = parse(argc, argv);
  const std::string experiment = flags.get("experiment", "");
  if (experiment == "pdd") return run_pdd(flags);
  if (experiment == "pdr") {
    return run_retrieval(flags, wl::RetrievalMethod::kPdr);
  }
  if (experiment == "mdr") {
    return run_retrieval(flags, wl::RetrievalMethod::kMdr);
  }
  if (experiment == "pdd-mobility") return run_pdd_mobility(flags);
  if (experiment == "pdr-mobility") return run_pdr_mobility(flags);
  if (experiment == "singlehop") return run_singlehop(flags);
  return usage();
}

}  // namespace
}  // namespace pds

int main(int argc, char** argv) { return pds::run_main(argc, argv); }
