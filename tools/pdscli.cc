// pdscli — command-line experiment driver.
//
// Runs any of the repo's standard experiment harnesses with parameters from
// flags and prints the paper's metrics (recall / latency / message
// overhead). Examples:
//
//   pdscli --experiment=pdd --grid=10 --entries=5000 --runs=5
//   pdscli --experiment=pdr --item-mb=20 --redundancy=3
//   pdscli --experiment=mdr --item-mb=10
//   pdscli --experiment=pdd-mobility --scenario=student_center --mobility=2
//   pdscli --experiment=pdr-mobility --item-mb=20
//   pdscli --experiment=singlehop --mode=leaky_ack --senders=3
//
// Every run is deterministic for a given --seed; --runs averages seeds
// seed, seed+1, ...
//
// Any experiment accepts --trace=FILE to capture the final run's structured
// event trace as NDJSON (--trace-format=chrome writes Chrome trace_event
// JSON for chrome://tracing instead). `pdscli trace --file=FILE` renders a
// captured trace: per-round recall table, top talkers, retransmit heatmap.
// `pdscli trace --json` emits the same statistics as a single JSON document
// (schema pds-trace-report/1) for scripting instead of the text tables.
//
// Grid experiments (pdd/pdr/mdr) also accept --stats=FILE to capture the
// final run's flight-recorder series (pds-timeseries/1 NDJSON, sampled every
// --stats-interval-ms, default 1000) with a trailing wall-clock profile
// line. `pdscli stats --file=FILE` summarizes a capture (per-column peaks
// and percentiles, channel utilization, profile shares); --json emits the
// same as a pds-stats-report/1 document and --csv exports the raw rows.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/profiler.h"
#include "obs/report.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "tools/stats_analysis.h"
#include "tools/trace_causal.h"
#include "tools/trace_reader.h"
#include "util/stats.h"
#include "workload/experiment.h"

namespace pds {
namespace {

struct Flags {
  std::map<std::string, std::string> values;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& dflt) const {
    auto it = values.find(key);
    return it == values.end() ? dflt : it->second;
  }
  [[nodiscard]] long num(const std::string& key, long dflt) const {
    auto it = values.find(key);
    return it == values.end() ? dflt : std::atol(it->second.c_str());
  }
  [[nodiscard]] double real(const std::string& key, double dflt) const {
    auto it = values.find(key);
    return it == values.end() ? dflt : std::atof(it->second.c_str());
  }
};

Flags parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags.values[arg] = "1";
    } else {
      flags.values[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: pdscli --experiment=<pdd|pdr|mdr|pdd-mobility|pdr-mobility|"
      "singlehop> [options]\n"
      "       pdscli trace --file=<trace.ndjson> [--entries=N] [--json]\n"
      "       pdscli trace critpath --file=<trace.ndjson> [--top=N] "
      "[--json]\n"
      "       pdscli stats --file=<stats.ndjson> [--json|--csv]\n"
      "  common:       --seed=N --runs=N --trace=FILE "
      "[--trace-format=chrome]\n"
      "  pdd/pdr/mdr:  --stats=FILE [--stats-interval-ms=N]\n"
      "  pdd:          --grid=N --entries=N --redundancy=N --consumers=N\n"
      "                --sequential --single-round --no-ack\n"
      "  pdr/mdr:      --grid=N --item-mb=N --redundancy=N --consumers=N\n"
      "                --sequential --contended\n"
      "  *-mobility:   --scenario=<student_center|classroom> --mobility=X\n"
      "                --entries=N / --item-mb=N --minutes=N\n"
      "  singlehop:    --mode=<raw|leaky|leaky_ack> --senders=N "
      "--messages=N\n");
  return 2;
}

// --trace=FILE support: an unbounded tracer attached to every run (cleared
// between runs, so the file holds the final seed's trace), written on scope
// exit as NDJSON or Chrome trace_event JSON.
class TraceSink {
 public:
  explicit TraceSink(const Flags& flags)
      : path_(flags.get("trace", "")),
        chrome_(flags.get("trace-format", "ndjson") == "chrome"),
        tracer_(path_.empty() ? nullptr
                              : std::make_unique<obs::Tracer>(0)) {}

  ~TraceSink() {
    if (!tracer_) return;
    std::ofstream out(path_, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "pdscli: cannot write trace to %s\n",
                   path_.c_str());
      return;
    }
    if (chrome_) {
      tracer_->write_chrome_trace(out);
    } else {
      tracer_->write_ndjson(out);
    }
    std::fprintf(stderr, "pdscli: wrote %zu trace events to %s\n",
                 tracer_->events().size(), path_.c_str());
  }

  // Call at the start of each run; returns the tracer for params.tracer.
  obs::Tracer* begin_run() {
    if (tracer_) tracer_->clear();
    return tracer_.get();
  }

 private:
  std::string path_;
  bool chrome_ = false;
  std::unique_ptr<obs::Tracer> tracer_;
};

// --stats=FILE support: a flight-recorder sampler + wall-clock profiler
// attached to every run (sampler reset between runs, so the file holds the
// final seed's series; the profiler accumulates across all runs), written on
// scope exit as pds-timeseries/1 NDJSON with a trailing profile line.
class StatsSink {
 public:
  explicit StatsSink(const Flags& flags) : path_(flags.get("stats", "")) {
    if (path_.empty()) return;
    sampler_ = std::make_unique<obs::TimeSeries>(
        SimTime::millis(flags.num("stats-interval-ms", 1000)));
    profiler_ = std::make_unique<obs::Profiler>();
  }

  ~StatsSink() {
    if (!sampler_) return;
    std::ofstream out(path_, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "pdscli: cannot write stats to %s\n",
                   path_.c_str());
      return;
    }
    out << sampler_->ndjson();
    out << obs::Profiler::profile_json_line(profiler_->snapshot());
    std::fprintf(stderr, "pdscli: wrote %zu sample rows to %s\n",
                 sampler_->row_count(), path_.c_str());
  }

  // Call at the start of each run; returns the sampler for params.sampler.
  obs::TimeSeries* begin_run() {
    if (sampler_) sampler_->reset();
    return sampler_.get();
  }
  [[nodiscard]] obs::Profiler* profiler() { return profiler_.get(); }

 private:
  std::string path_;
  std::unique_ptr<obs::TimeSeries> sampler_;
  std::unique_ptr<obs::Profiler> profiler_;
};

sim::MobilityParams scenario_params(const std::string& name) {
  return name == "classroom" ? sim::classroom_params()
                             : sim::student_center_params();
}

int run_pdd(const Flags& flags) {
  util::SampleSet recall, latency, overhead;
  const long runs = flags.num("runs", 1);
  TraceSink trace(flags);
  StatsSink stats(flags);
  for (long r = 0; r < runs; ++r) {
    wl::PddGridParams p;
    p.tracer = trace.begin_run();
    p.sampler = stats.begin_run();
    p.profiler = stats.profiler();
    p.nx = p.ny = static_cast<std::size_t>(flags.num("grid", 10));
    p.metadata_count = static_cast<std::size_t>(flags.num("entries", 5000));
    p.redundancy = static_cast<int>(flags.num("redundancy", 1));
    p.consumers = static_cast<std::size_t>(flags.num("consumers", 1));
    p.sequential = flags.num("sequential", 0) != 0;
    p.multi_round = flags.num("single-round", 0) == 0;
    p.ack = flags.num("no-ack", 0) == 0;
    p.seed = static_cast<std::uint64_t>(flags.num("seed", 1) + r);
    const wl::PddOutcome out = wl::run_pdd_grid(p);
    recall.add(out.recall);
    latency.add(out.latency_s);
    overhead.add(out.overhead_mb);
  }
  std::printf("pdd: recall=%.3f latency=%.2fs overhead=%.2fMB (%ld run%s)\n",
              recall.mean(), latency.mean(), overhead.mean(), runs,
              runs == 1 ? "" : "s");
  return 0;
}

int run_retrieval(const Flags& flags, wl::RetrievalMethod method) {
  util::SampleSet recall, latency, overhead;
  const long runs = flags.num("runs", 1);
  bool all_complete = true;
  TraceSink trace(flags);
  StatsSink stats(flags);
  for (long r = 0; r < runs; ++r) {
    wl::RetrievalGridParams p;
    p.tracer = trace.begin_run();
    p.sampler = stats.begin_run();
    p.profiler = stats.profiler();
    p.nx = p.ny = static_cast<std::size_t>(flags.num("grid", 10));
    p.item_size_bytes =
        static_cast<std::size_t>(flags.num("item-mb", 20)) * 1024 * 1024;
    p.redundancy = static_cast<int>(flags.num("redundancy", 1));
    p.consumers = static_cast<std::size_t>(flags.num("consumers", 1));
    p.sequential = flags.num("sequential", 0) != 0;
    p.contended_medium = flags.num("contended", 0) != 0;
    p.method = method;
    p.seed = static_cast<std::uint64_t>(flags.num("seed", 1) + r);
    const wl::RetrievalOutcome out = wl::run_retrieval_grid(p);
    recall.add(out.recall);
    latency.add(out.latency_s);
    overhead.add(out.overhead_mb);
    all_complete = all_complete && out.all_complete;
  }
  std::printf(
      "%s: recall=%.3f latency=%.1fs overhead=%.1fMB%s (%ld run%s)\n",
      method == wl::RetrievalMethod::kPdr ? "pdr" : "mdr", recall.mean(),
      latency.mean(), overhead.mean(), all_complete ? "" : " [incomplete]",
      runs, runs == 1 ? "" : "s");
  return 0;
}

int run_pdd_mobility(const Flags& flags) {
  util::SampleSet recall, latency, overhead;
  const long runs = flags.num("runs", 1);
  TraceSink trace(flags);
  for (long r = 0; r < runs; ++r) {
    wl::PddMobilityParams p;
    p.tracer = trace.begin_run();
    p.mobility = scenario_params(flags.get("scenario", "student_center"));
    p.mobility.frequency_multiplier = flags.real("mobility", 1.0);
    p.mobility.duration = SimTime::minutes(flags.real("minutes", 5.0));
    p.range_m = flags.get("scenario", "student_center") == "classroom"
                    ? 15.0
                    : 40.0;
    p.metadata_count = static_cast<std::size_t>(flags.num("entries", 5000));
    p.seed = static_cast<std::uint64_t>(flags.num("seed", 1) + r);
    const wl::PddOutcome out = wl::run_pdd_mobility(p);
    recall.add(out.recall);
    latency.add(out.latency_s);
    overhead.add(out.overhead_mb);
  }
  std::printf(
      "pdd-mobility: recall=%.3f latency=%.2fs overhead=%.2fMB (%ld run%s)\n",
      recall.mean(), latency.mean(), overhead.mean(), runs,
      runs == 1 ? "" : "s");
  return 0;
}

int run_pdr_mobility(const Flags& flags) {
  util::SampleSet recall, latency, overhead;
  const long runs = flags.num("runs", 1);
  TraceSink trace(flags);
  for (long r = 0; r < runs; ++r) {
    wl::RetrievalMobilityParams p;
    p.tracer = trace.begin_run();
    p.mobility = scenario_params(flags.get("scenario", "student_center"));
    p.mobility.frequency_multiplier = flags.real("mobility", 1.0);
    p.mobility.duration = SimTime::minutes(flags.real("minutes", 20.0));
    p.item_size_bytes =
        static_cast<std::size_t>(flags.num("item-mb", 20)) * 1024 * 1024;
    p.redundancy = static_cast<int>(flags.num("redundancy", 2));
    p.seed = static_cast<std::uint64_t>(flags.num("seed", 1) + r);
    const wl::RetrievalOutcome out = wl::run_retrieval_mobility(p);
    recall.add(out.recall);
    latency.add(out.latency_s);
    overhead.add(out.overhead_mb);
  }
  std::printf(
      "pdr-mobility: recall=%.3f latency=%.1fs overhead=%.1fMB (%ld run%s)\n",
      recall.mean(), latency.mean(), overhead.mean(), runs,
      runs == 1 ? "" : "s");
  return 0;
}

int run_singlehop(const Flags& flags) {
  util::SampleSet reception, rate;
  const long runs = flags.num("runs", 1);
  TraceSink trace(flags);
  for (long r = 0; r < runs; ++r) {
    wl::SingleHopParams p;
    p.tracer = trace.begin_run();
    const std::string mode = flags.get("mode", "leaky_ack");
    p.mode = mode == "raw"     ? wl::TransportMode::kRawUdp
             : mode == "leaky" ? wl::TransportMode::kLeakyBucket
                               : wl::TransportMode::kLeakyBucketAck;
    p.senders = static_cast<std::size_t>(flags.num("senders", 2));
    p.messages_per_sender =
        static_cast<std::size_t>(flags.num("messages", 10000));
    p.seed = static_cast<std::uint64_t>(flags.num("seed", 1) + r);
    const wl::SingleHopOutcome out = wl::run_single_hop(p);
    reception.add(out.reception);
    rate.add(out.data_rate_mbps);
  }
  std::printf("singlehop: reception=%.3f data_rate=%.2fMb/s (%ld run%s)\n",
              reception.mean(), rate.mean(), runs, runs == 1 ? "" : "s");
  return 0;
}

// -- `pdscli trace` — render a captured NDJSON trace -------------------------

// Statistics extracted from a captured trace, shared by the text and JSON
// renderers so both views always agree.
struct TraceRoundRow {
  std::uint32_t node = 0;
  double round = 0;
  double end_s = 0;
  double fresh = 0;  // "new" in the trace args
  double total = 0;
  double responses = 0;
};

struct TraceTalker {
  std::uint32_t node = 0;
  std::uint64_t frames = 0;
  double bytes = 0;
};

struct TraceStats {
  std::size_t events = 0;
  // Ring-buffer overflow trailer ("trace"/"drops"): events the tracer could
  // not keep. Non-zero means every other statistic is a lower bound.
  std::uint64_t dropped = 0;
  std::vector<TraceRoundRow> rounds;
  std::vector<TraceTalker> talkers;  // ranked by bytes desc, node asc
  std::map<std::uint32_t, std::map<int, std::uint64_t>> retr;
  std::map<std::uint32_t, std::uint64_t> give_ups;
  int max_attempt = 0;
};

TraceStats compute_trace_stats(const std::vector<tools::ParsedEvent>& events) {
  TraceStats stats;
  stats.events = events.size();
  for (const tools::ParsedEvent& e : events) {
    if (e.sub == "trace" && e.ev == "drops") {
      stats.dropped += tools::arg_u64(e, "count");
    }
  }

  // Per-round progress: every closed PDD round ("pdd"/"round" ph=E).
  for (const tools::ParsedEvent& e : events) {
    if (e.sub != "pdd" || e.ev != "round" || e.ph != 'E') continue;
    stats.rounds.push_back({e.node, e.num("round"),
                            static_cast<double>(e.t_us) / 1e6, e.num("new"),
                            e.num("total"), e.num("responses")});
  }

  // Top talkers: radio transmissions per node.
  std::map<std::uint32_t, TraceTalker> talkers;
  for (const tools::ParsedEvent& e : events) {
    if (e.sub != "radio" || e.ev != "tx") continue;
    TraceTalker& t = talkers[e.node];
    t.node = e.node;
    ++t.frames;
    t.bytes += e.num("bytes");
  }
  for (const auto& [node, t] : talkers) stats.talkers.push_back(t);
  std::sort(stats.talkers.begin(), stats.talkers.end(),
            [](const TraceTalker& a, const TraceTalker& b) {
              return a.bytes != b.bytes ? a.bytes > b.bytes : a.node < b.node;
            });

  // Retransmissions per node by attempt number (transport "round" arg),
  // plus give-ups.
  for (const tools::ParsedEvent& e : events) {
    if (e.sub != "transport") continue;
    if (e.ev == "retransmit") {
      const int attempt = static_cast<int>(e.num("round"));
      ++stats.retr[e.node][attempt];
      stats.max_attempt = std::max(stats.max_attempt, attempt);
    } else if (e.ev == "give_up") {
      ++stats.give_ups[e.node];
    }
  }
  return stats;
}

// Default human-readable rendering: per-round recall table, top talkers,
// retransmit heatmap. --entries converts cumulative counts into the paper's
// recall fraction.
void print_trace_text(const TraceStats& stats, double entries,
                      std::size_t top) {
  if (stats.dropped > 0) {
    std::printf("WARNING: tracer ring dropped %llu events; "
                "all statistics below are lower bounds\n\n",
                static_cast<unsigned long long>(stats.dropped));
  }
  std::printf("per-round discovery progress:\n");
  std::printf("  %-6s %-6s %10s %8s %8s %10s", "node", "round", "end_s",
              "new", "total", "responses");
  if (entries > 0) std::printf(" %8s", "recall");
  std::printf("\n");
  for (const TraceRoundRow& r : stats.rounds) {
    std::printf("  %-6u %-6.0f %10.3f %8.0f %8.0f %10.0f", r.node, r.round,
                r.end_s, r.fresh, r.total, r.responses);
    if (entries > 0) std::printf(" %8.3f", r.total / entries);
    std::printf("\n");
  }
  if (stats.rounds.empty()) std::printf("  (no closed pdd rounds in trace)\n");

  std::printf("\ntop talkers (radio tx):\n");
  std::printf("  %-6s %10s %12s\n", "node", "frames", "kbytes");
  for (std::size_t i = 0; i < stats.talkers.size() && i < top; ++i) {
    std::printf("  %-6u %10llu %12.1f\n", stats.talkers[i].node,
                static_cast<unsigned long long>(stats.talkers[i].frames),
                stats.talkers[i].bytes / 1e3);
  }
  if (stats.talkers.empty()) std::printf("  (no radio tx events in trace)\n");

  std::printf("\nretransmit heatmap (node x attempt):\n");
  if (stats.retr.empty() && stats.give_ups.empty()) {
    std::printf("  (no retransmissions in trace)\n");
    return;
  }
  std::printf("  %-6s", "node");
  for (int a = 1; a <= stats.max_attempt; ++a) std::printf(" %7s%d", "try", a);
  std::printf(" %8s\n", "give_up");
  for (const auto& [node, by_attempt] : stats.retr) {
    std::printf("  %-6u", node);
    for (int a = 1; a <= stats.max_attempt; ++a) {
      const auto it = by_attempt.find(a);
      std::printf(" %8llu",
                  static_cast<unsigned long long>(
                      it == by_attempt.end() ? 0 : it->second));
    }
    const auto gu = stats.give_ups.find(node);
    std::printf(" %8llu\n",
                static_cast<unsigned long long>(
                    gu == stats.give_ups.end() ? 0 : gu->second));
  }
  for (const auto& [node, count] : stats.give_ups) {
    if (stats.retr.contains(node)) continue;
    std::printf("  %-6u", node);
    for (int a = 1; a <= stats.max_attempt; ++a) std::printf(" %8u", 0u);
    std::printf(" %8llu\n", static_cast<unsigned long long>(count));
  }
}

// --json rendering: the same statistics as one JSON document for scripting.
// `top` is intentionally not applied — JSON consumers get every talker.
void print_trace_json(const TraceStats& stats, double entries,
                      const std::string& path) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("pds-trace-report/1");
  w.key("file").value(path);
  w.key("events").value(static_cast<std::uint64_t>(stats.events));
  w.key("dropped_events").value(stats.dropped);

  w.key("rounds").begin_array();
  for (const TraceRoundRow& r : stats.rounds) {
    w.begin_object();
    w.key("node").value(static_cast<std::int64_t>(r.node));
    w.key("round").value(static_cast<std::int64_t>(r.round));
    w.key("end_s").value(r.end_s);
    w.key("new").value(static_cast<std::int64_t>(r.fresh));
    w.key("total").value(static_cast<std::int64_t>(r.total));
    w.key("responses").value(static_cast<std::int64_t>(r.responses));
    if (entries > 0) w.key("recall").value(r.total / entries);
    w.end_object();
  }
  w.end_array();

  w.key("top_talkers").begin_array();
  for (const TraceTalker& t : stats.talkers) {
    w.begin_object();
    w.key("node").value(static_cast<std::int64_t>(t.node));
    w.key("frames").value(static_cast<std::uint64_t>(t.frames));
    w.key("bytes").value(t.bytes);
    w.end_object();
  }
  w.end_array();

  w.key("retransmits").begin_array();
  std::vector<std::uint32_t> nodes;
  for (const auto& [node, by_attempt] : stats.retr) nodes.push_back(node);
  for (const auto& [node, count] : stats.give_ups) {
    if (!stats.retr.contains(node)) nodes.push_back(node);
  }
  std::sort(nodes.begin(), nodes.end());
  for (const std::uint32_t node : nodes) {
    w.begin_object();
    w.key("node").value(static_cast<std::int64_t>(node));
    w.key("attempts").begin_array();
    const auto by_attempt = stats.retr.find(node);
    for (int a = 1; a <= stats.max_attempt; ++a) {
      std::uint64_t count = 0;
      if (by_attempt != stats.retr.end()) {
        const auto it = by_attempt->second.find(a);
        if (it != by_attempt->second.end()) count = it->second;
      }
      w.value(count);
    }
    w.end_array();
    const auto gu = stats.give_ups.find(node);
    w.key("give_ups")
        .value(static_cast<std::uint64_t>(
            gu == stats.give_ups.end() ? 0 : gu->second));
    w.end_object();
  }
  w.end_array();

  w.end_object();
  std::printf("%s\n", w.str().c_str());
}

int run_trace_report(const Flags& flags) {
  const std::string path = flags.get("file", "");
  if (path.empty()) {
    std::fprintf(stderr, "usage: pdscli trace --file=<trace.ndjson> "
                         "[--entries=N] [--top=N] [--json]\n");
    return 2;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "pdscli: cannot open %s\n", path.c_str());
    return 2;
  }
  std::size_t bad_line = 0;
  const std::vector<tools::ParsedEvent> events =
      tools::read_trace(in, bad_line);
  if (bad_line != 0) {
    std::fprintf(stderr, "pdscli: malformed trace line %zu in %s\n", bad_line,
                 path.c_str());
    return 1;
  }

  const TraceStats stats = compute_trace_stats(events);
  const double entries = flags.real("entries", 0.0);
  if (flags.get("json", "") == "1") {
    print_trace_json(stats, entries, path);
  } else {
    print_trace_text(stats, entries,
                     static_cast<std::size_t>(flags.num("top", 10)));
  }
  return 0;
}

// -- `pdscli trace critpath` — causal span-DAG analysis ----------------------

void print_critpath_text(const tools::CausalReport& report, std::size_t top) {
  std::printf("causal summary: traces=%zu with_path=%zu orphans=%zu "
              "dropped=%llu\n",
              report.traces.size(), report.traces_with_path,
              report.total_orphans,
              static_cast<unsigned long long>(report.dropped_events));
  std::printf("  critical path: hops p50=%.1f p99=%.1f  length p50=%.1fms "
              "p99=%.1fms\n",
              report.cp_hops_p50, report.cp_hops_p99,
              report.cp_len_us_p50 / 1e3, report.cp_len_us_p99 / 1e3);
  std::printf("  dominant edges:");
  for (const auto& [cls, count] : report.dominant_edges) {
    std::printf(" %s=%d", cls.c_str(), count);
  }
  if (report.dominant_edges.empty()) std::printf(" (none)");
  std::printf("\n");

  std::size_t shown = 0;
  for (const tools::TraceAnalysis& ta : report.traces) {
    if (shown++ >= top) break;
    std::printf("\ntrace %llu kind=%s spans=%zu orphans=%zu cp_hops=%d "
                "cp_len=%.1fms bytes_on_air=%llu airtime=%.1fms retx=%d "
                "overhears=%d suppressed=%d\n",
                static_cast<unsigned long long>(ta.trace_id),
                ta.kind.empty() ? "?" : ta.kind.c_str(), ta.spans.size(),
                ta.orphans.size(), ta.cp_air_hops,
                static_cast<double>(ta.cp_len_us) / 1e3,
                static_cast<unsigned long long>(ta.bytes_on_air),
                static_cast<double>(ta.airtime_us) / 1e3, ta.retx,
                ta.overhears, ta.suppressed);
    for (const tools::CriticalEdge& edge : ta.critical_path) {
      const auto from = ta.spans.find(edge.from);
      const auto to = ta.spans.find(edge.to);
      std::printf("  node %u %s --%s(%.1fms)--> node %u %s\n",
                  from->second.node, from->second.ev.c_str(),
                  edge.cls.c_str(), static_cast<double>(edge.dt_us) / 1e3,
                  to->second.node, to->second.ev.c_str());
    }
    if (ta.critical_path.empty()) std::printf("  (no delivery in trace)\n");
  }
}

int run_trace_critpath(const Flags& flags) {
  const std::string path = flags.get("file", "");
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: pdscli trace critpath --file=<trace.ndjson> "
                 "[--top=N] [--max-traces=N] [--json]\n");
    return 2;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "pdscli: cannot open %s\n", path.c_str());
    return 2;
  }
  std::size_t bad_line = 0;
  const std::vector<tools::ParsedEvent> events =
      tools::read_trace(in, bad_line);
  if (bad_line != 0) {
    std::fprintf(stderr, "pdscli: malformed trace line %zu in %s\n", bad_line,
                 path.c_str());
    return 1;
  }
  const tools::CausalReport report = tools::analyze_causal(events);
  if (flags.get("json", "") == "1") {
    std::printf("%s\n",
                tools::causal_report_json(
                    report,
                    static_cast<std::size_t>(flags.num("max-traces", 64)))
                    .c_str());
  } else {
    print_critpath_text(report,
                        static_cast<std::size_t>(flags.num("top", 5)));
  }
  // Orphan spans or a dropped-event trailer mean the DAG is incomplete; make
  // that a hard failure so CI smoke jobs cannot silently pass on bad data.
  if (report.total_orphans > 0) {
    std::fprintf(stderr, "pdscli: %zu orphan spans in %s\n",
                 report.total_orphans, path.c_str());
    return 1;
  }
  if (report.dropped_events > 0) {
    std::fprintf(stderr, "pdscli: tracer dropped %llu events in %s\n",
                 static_cast<unsigned long long>(report.dropped_events),
                 path.c_str());
    return 1;
  }
  return 0;
}

// -- `pdscli stats` — render a captured flight-recorder series ---------------

// Total nanoseconds across root profile scopes — the denominator for the
// per-scope share column (children are counted inside their parents).
double profile_root_ns(const std::vector<tools::ProfileEntry>& profile) {
  double total = 0.0;
  for (const tools::ProfileEntry& e : profile) {
    if (e.depth == 0) total += static_cast<double>(e.ns);
  }
  return total;
}

void print_stats_text(const tools::ParsedSeries& s, std::size_t top) {
  const std::vector<tools::SeriesSummary> summaries =
      tools::summarize_series(s);
  std::printf("series: %zu columns x %zu rows, interval %.3fs\n",
              s.columns.size(), s.rows.size(),
              static_cast<double>(s.interval_us) / 1e6);
  std::printf("  %-30s %-4s %12s %8s %12s %12s %12s\n", "column", "kind",
              "peak", "t_peak_s", "mean", "p99", "last");
  for (const tools::SeriesSummary& sum : summaries) {
    std::printf("  %-30s %-4s %12.1f %8.1f %12.1f %12.1f %12.1f\n",
                sum.name.c_str(), sum.kind.c_str(), sum.peak,
                static_cast<double>(sum.t_peak_us) / 1e6, sum.mean, sum.p99,
                sum.last);
  }

  const std::vector<double> util = tools::channel_utilization(s);
  if (!util.empty()) {
    const double peak = *std::max_element(util.begin(), util.end());
    double mean = 0.0;
    for (const double u : util) mean += u;
    mean /= static_cast<double>(util.size());
    std::printf("\nchannel utilization (avg concurrent tx): peak=%.3f "
                "mean=%.3f p99=%.3f\n",
                peak, mean, tools::series_percentile(util, 99.0));
  }

  if (!s.profile.empty()) {
    const double root_ns = profile_root_ns(s.profile);
    std::printf("\nwall-clock profile (top %zu by time):\n", top);
    std::printf("  %-40s %10s %12s %7s\n", "path", "ms", "calls", "share");
    std::vector<tools::ProfileEntry> ranked = s.profile;
    std::sort(ranked.begin(), ranked.end(),
              [](const tools::ProfileEntry& a, const tools::ProfileEntry& b) {
                return a.ns != b.ns ? a.ns > b.ns : a.path < b.path;
              });
    for (std::size_t i = 0; i < ranked.size() && i < top; ++i) {
      const tools::ProfileEntry& e = ranked[i];
      std::printf("  %-40s %10.1f %12llu %6.1f%%\n", e.path.c_str(),
                  static_cast<double>(e.ns) / 1e6,
                  static_cast<unsigned long long>(e.calls),
                  root_ns > 0 ? 100.0 * static_cast<double>(e.ns) / root_ns
                              : 0.0);
    }
  }
}

// --json rendering: schema pds-stats-report/1, the machine-readable twin of
// the text view (and the shape pdsreport validates/gates).
void print_stats_json(const tools::ParsedSeries& s, const std::string& path) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("pds-stats-report/1");
  w.key("file").value(path);
  w.key("interval_us").value(static_cast<std::int64_t>(s.interval_us));
  w.key("rows").value(static_cast<std::uint64_t>(s.rows.size()));

  w.key("columns").begin_array();
  for (const tools::SeriesSummary& sum : tools::summarize_series(s)) {
    w.begin_object();
    w.key("name").value(sum.name);
    w.key("kind").value(sum.kind);
    w.key("peak").value(sum.peak);
    w.key("t_peak_us").value(static_cast<std::int64_t>(sum.t_peak_us));
    w.key("mean").value(sum.mean);
    w.key("p50").value(sum.p50);
    w.key("p95").value(sum.p95);
    w.key("p99").value(sum.p99);
    w.key("last").value(sum.last);
    w.end_object();
  }
  w.end_array();

  const std::vector<double> util = tools::channel_utilization(s);
  if (!util.empty()) {
    const double peak = *std::max_element(util.begin(), util.end());
    double mean = 0.0;
    for (const double u : util) mean += u;
    mean /= static_cast<double>(util.size());
    w.key("channel_utilization").begin_object();
    w.key("peak").value(peak);
    w.key("mean").value(mean);
    w.key("p99").value(tools::series_percentile(util, 99.0));
    w.end_object();
  }

  if (!s.profile.empty()) {
    const double root_ns = profile_root_ns(s.profile);
    w.key("profile").begin_array();
    for (const tools::ProfileEntry& e : s.profile) {
      w.begin_object();
      w.key("path").value(e.path);
      w.key("depth").value(static_cast<std::int64_t>(e.depth));
      w.key("ns").value(static_cast<std::int64_t>(e.ns));
      w.key("calls").value(static_cast<std::uint64_t>(e.calls));
      w.key("share").value(
          root_ns > 0 ? static_cast<double>(e.ns) / root_ns : 0.0);
      w.end_object();
    }
    w.end_array();
  }

  w.end_object();
  std::printf("%s\n", w.str().c_str());
}

// --csv rendering: raw rows, one line per sample, for spreadsheets/pandas.
void print_stats_csv(const tools::ParsedSeries& s) {
  std::printf("t_us");
  for (const tools::SeriesColumn& c : s.columns) {
    std::printf(",%s", c.name.c_str());
  }
  std::printf("\n");
  for (const tools::SeriesRow& row : s.rows) {
    std::printf("%lld", static_cast<long long>(row.t_us));
    for (const double v : row.v) std::printf(",%.17g", v);
    std::printf("\n");
  }
}

int run_stats_report(const Flags& flags) {
  const std::string path = flags.get("file", "");
  if (path.empty()) {
    std::fprintf(stderr, "usage: pdscli stats --file=<stats.ndjson> "
                         "[--top=N] [--json|--csv]\n");
    return 2;
  }
  std::string error;
  const std::optional<tools::ParsedSeries> series =
      tools::read_timeseries(path, &error);
  if (!series.has_value()) {
    std::fprintf(stderr, "pdscli: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  if (flags.get("csv", "") == "1") {
    print_stats_csv(*series);
  } else if (flags.get("json", "") == "1") {
    print_stats_json(*series, path);
  } else {
    print_stats_text(*series,
                     static_cast<std::size_t>(flags.num("top", 12)));
  }
  return 0;
}

int run_main(int argc, char** argv) {
  const Flags flags = parse(argc, argv);
  std::string experiment = flags.get("experiment", "");
  // `pdscli trace --file=...` — subcommand form.
  if (argc > 1 && std::strcmp(argv[1], "trace") == 0) {
    experiment = "trace";
    if (argc > 2 && std::strcmp(argv[2], "critpath") == 0) {
      return run_trace_critpath(flags);
    }
  }
  // `pdscli stats --file=...` — flight-recorder subcommand form.
  if (argc > 1 && std::strcmp(argv[1], "stats") == 0) {
    return run_stats_report(flags);
  }
  if (experiment == "trace") return run_trace_report(flags);
  if (experiment == "pdd") return run_pdd(flags);
  if (experiment == "pdr") {
    return run_retrieval(flags, wl::RetrievalMethod::kPdr);
  }
  if (experiment == "mdr") {
    return run_retrieval(flags, wl::RetrievalMethod::kMdr);
  }
  if (experiment == "pdd-mobility") return run_pdd_mobility(flags);
  if (experiment == "pdr-mobility") return run_pdr_mobility(flags);
  if (experiment == "singlehop") return run_singlehop(flags);
  return usage();
}

}  // namespace
}  // namespace pds

int main(int argc, char** argv) { return pds::run_main(argc, argv); }
