// pdslint — project-invariant static analysis gate (DESIGN.md §12).
//
// Scans src/, bench/ and tools/ (or explicit paths) for violations of the
// determinism and protocol invariants encoded in tools/lint_rules.h, prints
// compiler-style diagnostics, and optionally writes a machine-readable JSON
// report (schema pds-lint-report/1) for CI artifacts.
//
// Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/IO error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint_rules.h"

namespace fs = std::filesystem;
using pds::lint::cli::display_path;
using pds::lint::cli::read_file;

namespace {

constexpr const char* kUsage =
    "usage: pdslint [--root=DIR] [--json=PATH] [--list-rules] [PATH...]\n"
    "\n"
    "Lints C++ sources for determinism/invariant violations. With no PATH\n"
    "arguments, scans src/, bench/ and tools/ under --root (default: the\n"
    "current directory). Suppress a finding with // pdslint:allow(<rule>)\n"
    "on the offending or preceding line, or file-wide with\n"
    "// pdslint:allow-file(<rule>).\n";

// Collects unordered-container names from the paired header of a .cc file,
// so member iteration in the implementation file is attributed.
std::vector<std::string> paired_header_names(const fs::path& cc) {
  for (const char* ext : {".h", ".hpp"}) {
    fs::path header = cc;
    header.replace_extension(ext);
    std::string content;
    if (fs::exists(header) && read_file(header, content)) {
      return pds::lint::collect_unordered_names(pds::lint::lex(content));
    }
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string json_path;
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--list-rules") {
      for (const pds::lint::RuleSpec& r : pds::lint::kRules) {
        std::printf("%-16s %-8s %s\n", r.id,
                    pds::lint::severity_name(r.severity), r.invariant);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "pdslint: unknown option %s\n%s", arg.c_str(),
                   kUsage);
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }

  if (inputs.empty()) {
    for (const char* dir : {"src", "bench", "tools"}) {
      const fs::path p = root / dir;
      if (fs::exists(p)) inputs.push_back(p);
    }
    if (inputs.empty()) {
      std::fprintf(stderr, "pdslint: no src/, bench/ or tools/ under %s\n",
                   root.string().c_str());
      return 2;
    }
  }

  std::vector<fs::path> files;
  std::string gather_error;
  if (!pds::lint::cli::gather_files(inputs, files, gather_error)) {
    std::fprintf(stderr, "pdslint: cannot read %s\n", gather_error.c_str());
    return 2;
  }

  std::vector<pds::lint::Finding> findings;
  int scanned = 0;
  for (const fs::path& file : files) {
    std::string content;
    if (!read_file(file, content)) {
      std::fprintf(stderr, "pdslint: cannot read %s\n",
                   file.string().c_str());
      return 2;
    }
    ++scanned;
    std::vector<std::string> header_names;
    if (file.extension() != ".h" && file.extension() != ".hpp") {
      header_names = paired_header_names(file);
    }
    const std::string shown = display_path(file, root);
    std::vector<pds::lint::Finding> fs_ =
        pds::lint::lint_source(shown, content, header_names);
    findings.insert(findings.end(), fs_.begin(), fs_.end());
  }

  const pds::lint::LintSummary summary =
      pds::lint::summarize(findings, scanned);

  for (const pds::lint::Finding& f : findings) {
    if (f.suppressed) continue;
    std::fprintf(stderr, "%s:%d: %s: [%s] %s\n", f.file.c_str(), f.line,
                 pds::lint::severity_name(f.severity), f.rule.c_str(),
                 f.message.c_str());
  }
  std::fprintf(stderr,
               "pdslint: %d file(s), %d error(s), %d warning(s), "
               "%d suppressed\n",
               summary.files_scanned, summary.errors, summary.warnings,
               summary.suppressed);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "pdslint: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << pds::lint::render_json(findings, summary) << "\n";
  }

  return summary.unsuppressed() > 0 ? 1 : 0;
}
