// Causal span-DAG reconstruction over tracer NDJSON (DESIGN.md §14).
//
// The protocol layer stamps every traced query/response with a TraceContext
// and emits `causal` events (root/round/tx/recv/deliver/suppress/overhear
// plus per-frame xmit records) into each node's ring buffer. This library
// stitches those per-node streams back into one span DAG per trace, walks
// the parent chain from the terminal delivery to extract the critical path,
// and attributes per-item cost (bytes on air, airtime, retransmissions,
// overhear hits, duplicate suppressions). Header-only; consumed by
// `pdscli trace critpath`, the causal bench sections and the causal tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "obs/report.h"
#include "tools/trace_reader.h"

namespace pds::tools {

// Span ids are (node+1)<<40 | seq, which exceeds the 2^53 range doubles
// round-trip exactly for node ids above ~8k — so u64 args are re-parsed from
// the raw text instead of going through ParsedEvent::num().
inline std::uint64_t arg_u64(const ParsedEvent& e, const std::string& key) {
  const std::string* v = e.arg(key);
  return v == nullptr ? 0 : std::strtoull(v->c_str(), nullptr, 10);
}

struct CausalSpan {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root (no parent edge)
  std::int64_t t_us = 0;
  std::uint32_t node = 0;
  std::string ev;      // root | round | tx | recv | deliver | suppress | overhear
  std::string detail;  // root kind / suppress reason, "" otherwise
  int hop = 0;
};

// One successful frame transmission attributed to a tx span. round > 0 marks
// a retransmission of the same packet.
struct XmitRecord {
  std::uint64_t span = 0;
  std::int64_t t_us = 0;
  std::uint32_t node = 0;
  int round = 0;
  std::uint64_t bytes = 0;
  std::int64_t airtime_us = 0;
};

struct CriticalEdge {
  std::uint64_t from = 0;  // parent span
  std::uint64_t to = 0;    // child span
  // air | retx | forward | deliver | inject | round_gap | other
  std::string cls;
  std::int64_t dt_us = 0;
};

struct TraceAnalysis {
  std::uint64_t trace_id = 0;
  std::string kind;  // root span kind ("pdd-metadata", "pdr", ...)
  std::map<std::uint64_t, CausalSpan> spans;
  std::vector<XmitRecord> xmits;

  // Spans whose parent id never appears in this trace — a stitching bug.
  std::vector<std::uint64_t> orphans;

  // Root → terminal deliver, in causal order; empty when no deliver event
  // was recorded (e.g. a flood that found no holder).
  std::vector<CriticalEdge> critical_path;
  std::int64_t cp_len_us = 0;  // terminal deliver t - path start t
  int cp_air_hops = 0;         // edges classified air/retx
  std::string dominant_edge;   // class of the longest edge ("" if no path)

  // Cost attribution over the whole trace.
  std::uint64_t bytes_on_air = 0;
  std::int64_t airtime_us = 0;
  int retx = 0;        // xmit records with round > 0
  int delivers = 0;
  int overhears = 0;   // overhearing-cache hits fed by this trace
  int suppressed = 0;  // duplicate-suppressed forwards
};

struct CausalReport {
  std::vector<TraceAnalysis> traces;  // sorted by trace_id
  std::uint64_t dropped_events = 0;   // from the tracer's trace/drops trailer

  std::size_t total_orphans = 0;
  std::size_t traces_with_path = 0;
  double cp_hops_p50 = 0.0;
  double cp_hops_p99 = 0.0;
  double cp_len_us_p50 = 0.0;
  double cp_len_us_p99 = 0.0;
  // class -> number of traces whose dominant (longest) edge has that class.
  std::map<std::string, int> dominant_edges;
};

namespace causal_detail {

// Nearest-rank percentile over a sorted sample vector.
inline double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

inline std::string classify_edge(const CausalSpan& parent,
                                 const CausalSpan& child,
                                 const std::vector<XmitRecord>& xmits) {
  if (child.ev == "recv") {
    for (const XmitRecord& x : xmits) {
      if (x.span == child.parent && x.round > 0) return "retx";
    }
    return "air";
  }
  if (child.ev == "deliver") return "deliver";
  if (child.ev == "tx") {
    if (parent.ev == "recv") return "forward";
    if (parent.ev == "round") return "inject";
    return "other";
  }
  if (child.ev == "round") return "round_gap";
  return "other";
}

}  // namespace causal_detail

// Groups `causal` events by trace id and reconstructs each trace's span DAG,
// critical path and cost attribution. Non-causal events are ignored except
// the tracer's `trace/drops` trailer, which is surfaced so callers can
// refuse to analyze incomplete rings.
inline CausalReport analyze_causal(const std::vector<ParsedEvent>& events) {
  CausalReport report;
  std::map<std::uint64_t, TraceAnalysis> by_trace;

  for (const ParsedEvent& e : events) {
    if (e.sub == "trace" && e.ev == "drops") {
      report.dropped_events += arg_u64(e, "count");
      continue;
    }
    if (e.sub != "causal") continue;
    const std::uint64_t trace_id = arg_u64(e, "trace");
    if (trace_id == 0) continue;
    TraceAnalysis& ta = by_trace[trace_id];
    ta.trace_id = trace_id;

    if (e.ev == "xmit") {
      XmitRecord x;
      x.span = arg_u64(e, "span");
      x.t_us = e.t_us;
      x.node = e.node;
      x.round = static_cast<int>(e.num("round"));
      x.bytes = arg_u64(e, "bytes");
      x.airtime_us = static_cast<std::int64_t>(e.num("us"));
      ta.xmits.push_back(x);
      ta.bytes_on_air += x.bytes;
      ta.airtime_us += x.airtime_us;
      if (x.round > 0) ++ta.retx;
      continue;
    }

    CausalSpan span;
    span.id = arg_u64(e, "span");
    span.parent = arg_u64(e, "parent");
    span.t_us = e.t_us;
    span.node = e.node;
    span.ev = e.ev;
    span.hop = static_cast<int>(e.num("hop"));
    if (const std::string* kind = e.arg("kind")) span.detail = *kind;
    if (const std::string* reason = e.arg("reason")) span.detail = *reason;
    if (span.id == 0) continue;
    if (e.ev == "root" && ta.kind.empty()) ta.kind = span.detail;
    if (e.ev == "deliver") ++ta.delivers;
    if (e.ev == "overhear") ++ta.overhears;
    if (e.ev == "suppress") ++ta.suppressed;
    ta.spans.emplace(span.id, span);
  }

  std::vector<double> cp_hops;
  std::vector<double> cp_lens;
  for (auto& [trace_id, ta] : by_trace) {
    for (const auto& [id, span] : ta.spans) {
      if (span.parent != 0 && !ta.spans.contains(span.parent)) {
        ta.orphans.push_back(id);
      }
    }
    report.total_orphans += ta.orphans.size();

    // Terminal = the last deliver in the trace (ties -> largest span id, so
    // the pick is deterministic under identical timestamps).
    const CausalSpan* terminal = nullptr;
    for (const auto& [id, span] : ta.spans) {
      if (span.ev != "deliver") continue;
      if (terminal == nullptr || span.t_us > terminal->t_us ||
          (span.t_us == terminal->t_us && span.id > terminal->id)) {
        terminal = &span;
      }
    }
    if (terminal != nullptr) {
      // Walk the parent chain; the visited-set guards against a (buggy)
      // cyclic parent edge turning analysis into an infinite loop.
      std::vector<const CausalSpan*> chain{terminal};
      std::map<std::uint64_t, bool> visited{{terminal->id, true}};
      const CausalSpan* cur = terminal;
      while (cur->parent != 0) {
        const auto it = ta.spans.find(cur->parent);
        if (it == ta.spans.end() || visited[it->second.id]) break;
        cur = &it->second;
        visited[cur->id] = true;
        chain.push_back(cur);
      }
      std::reverse(chain.begin(), chain.end());
      for (std::size_t i = 1; i < chain.size(); ++i) {
        CriticalEdge edge;
        edge.from = chain[i - 1]->id;
        edge.to = chain[i]->id;
        edge.cls =
            causal_detail::classify_edge(*chain[i - 1], *chain[i], ta.xmits);
        edge.dt_us = chain[i]->t_us - chain[i - 1]->t_us;
        if (edge.cls == "air" || edge.cls == "retx") ++ta.cp_air_hops;
        ta.critical_path.push_back(edge);
      }
      if (!ta.critical_path.empty()) {
        ta.cp_len_us = terminal->t_us - chain.front()->t_us;
        const CriticalEdge* longest = &ta.critical_path.front();
        for (const CriticalEdge& e2 : ta.critical_path) {
          if (e2.dt_us > longest->dt_us) longest = &e2;
        }
        ta.dominant_edge = longest->cls;
        ++report.traces_with_path;
        ++report.dominant_edges[ta.dominant_edge];
        cp_hops.push_back(static_cast<double>(ta.cp_air_hops));
        cp_lens.push_back(static_cast<double>(ta.cp_len_us));
      }
    }
  }

  std::sort(cp_hops.begin(), cp_hops.end());
  std::sort(cp_lens.begin(), cp_lens.end());
  report.cp_hops_p50 = causal_detail::percentile(cp_hops, 50.0);
  report.cp_hops_p99 = causal_detail::percentile(cp_hops, 99.0);
  report.cp_len_us_p50 = causal_detail::percentile(cp_lens, 50.0);
  report.cp_len_us_p99 = causal_detail::percentile(cp_lens, 99.0);
  report.traces.reserve(by_trace.size());
  for (auto& [trace_id, ta] : by_trace) report.traces.push_back(std::move(ta));
  return report;
}

// Renders the report in the `pds-causal-report/1` schema (validated by
// `pdsreport validate`). `max_traces` caps the per-trace detail array; the
// summary always covers every trace.
inline std::string causal_report_json(const CausalReport& report,
                                      std::size_t max_traces = 64) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("pds-causal-report/1");
  w.key("summary").begin_object();
  w.key("traces").value(static_cast<std::uint64_t>(report.traces.size()));
  w.key("traces_with_path")
      .value(static_cast<std::uint64_t>(report.traces_with_path));
  w.key("orphans").value(static_cast<std::uint64_t>(report.total_orphans));
  w.key("dropped_events").value(report.dropped_events);
  w.key("cp_hops_p50").value(report.cp_hops_p50);
  w.key("cp_hops_p99").value(report.cp_hops_p99);
  w.key("cp_len_us_p50").value(report.cp_len_us_p50);
  w.key("cp_len_us_p99").value(report.cp_len_us_p99);
  w.key("dominant_edges").begin_object();
  for (const auto& [cls, count] : report.dominant_edges) {
    w.key(cls).value(static_cast<std::int64_t>(count));
  }
  w.end_object();
  w.end_object();
  w.key("traces").begin_array();
  std::size_t emitted = 0;
  for (const TraceAnalysis& ta : report.traces) {
    if (emitted++ >= max_traces) break;
    w.begin_object();
    w.key("trace_id").value(ta.trace_id);
    w.key("kind").value(ta.kind);
    w.key("spans").value(static_cast<std::uint64_t>(ta.spans.size()));
    w.key("orphans").value(static_cast<std::uint64_t>(ta.orphans.size()));
    w.key("cp_hops").value(static_cast<std::int64_t>(ta.cp_air_hops));
    w.key("cp_len_us").value(ta.cp_len_us);
    w.key("dominant_edge").value(ta.dominant_edge);
    w.key("bytes_on_air").value(ta.bytes_on_air);
    w.key("airtime_us").value(ta.airtime_us);
    w.key("retx").value(static_cast<std::int64_t>(ta.retx));
    w.key("delivers").value(static_cast<std::int64_t>(ta.delivers));
    w.key("overhears").value(static_cast<std::int64_t>(ta.overhears));
    w.key("suppressed").value(static_cast<std::int64_t>(ta.suppressed));
    w.key("critical_path").begin_array();
    for (const CriticalEdge& edge : ta.critical_path) {
      w.begin_object();
      w.key("from").value(edge.from);
      w.key("to").value(edge.to);
      w.key("class").value(edge.cls);
      w.key("dt_us").value(edge.dt_us);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace pds::tools
