// Shared plumbing for the repo's static-analysis tools (DESIGN.md §12, §17).
//
// pdslint (token-level invariant checks, tools/lint_rules.h) and pdsflow
// (flow-sensitive wire-taint/atomicity/layering analysis,
// tools/flow_analysis.h) share everything that is not a rule: the finding
// and summary types, the severity model, the audited suppression machinery,
// the deterministic JSON report rendering, and the CLI file-gathering
// helpers. Keeping these here means the two linters cannot diverge on
// suppression syntax or report shape.
//
// Suppressions are multi-tool by design: both linters parse BOTH the
// pdslint and pdsflow allow-comment families, so a typo
// in either tool's tag is a `bad-suppression` finding no matter which tool
// scans the file first — a misspelled suppression must never silently
// disable a gate. Each tool only *honors* its own prefix.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/report.h"
#include "tools/lint_lexer.h"

namespace pds::lint {

// Schema identifiers of the machine-readable findings reports.
inline constexpr const char* kLintReportSchema = "pds-lint-report/1";
inline constexpr const char* kFlowReportSchema = "pds-flow-report/1";

enum class Severity { kWarning, kError };

inline const char* severity_name(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

// One rule row. Adding a rule = adding a row to the owning tool's table plus
// a check routine there.
struct RuleSpec {
  const char* id;
  Severity severity;
  // The runtime invariant the rule protects, verbatim in `--list-rules` and
  // the JSON report.
  const char* invariant;
};

// ---------------------------------------------------------------------------
// pdslint rule table (checks live in tools/lint_rules.h).

inline constexpr RuleSpec kRules[] = {
    {"wall-clock", Severity::kError,
     "sim-time determinism: traces and bench reports are byte-identical "
     "run-to-run; ambient clocks would leak real time into results"},
    {"ambient-rng", Severity::kError,
     "seed reproducibility: every random draw derives from one explicit "
     "seed via pds::Rng; ambient RNGs differ across runs and platforms"},
    {"unordered-iter", Severity::kError,
     "output/RNG-order determinism: hash-order iteration feeding trace, "
     "report, stats or Rng-consuming paths varies across libstdc++ versions "
     "and seeds of the hash function"},
    {"pointer-order", Severity::kError,
     "cross-run determinism: pointer values change with ASLR, so ordering "
     "or hashing by pointer yields a different order every run"},
    {"ambient-parallelism", Severity::kError,
     "thread-count independence: same-seed runs are byte-identical on any "
     "machine, so worker counts come from explicit config (PDS_BENCH_JOBS, "
     "RadioConfig::shard_threads), never from probing the host"},
    {"uninit-field", Severity::kWarning,
     "wire correctness: codec/message scalar fields need default member "
     "initializers so partially-filled messages encode deterministically"},
    {"decode-assert", Severity::kWarning,
     "decode robustness: decoders must validate input (PDS_ENSURE / "
     "DecodeError / throw) instead of trusting wire bytes"},
    {"trace-schema", Severity::kError,
     "trace catalog completeness: every PDS_TRACE_* emission names a "
     "(subsystem, event) registered in tools/trace_schema.h, so trace_check "
     "can validate any capture and analysis tools never meet unknown events"},
    {"stats-schema", Severity::kError,
     "flight-recorder catalog completeness: every PDS_TS_COLUMN column and "
     "PDS_PROF_SCOPE scope names an entry registered in "
     "tools/stats_schema.h, so pdscli stats can render any capture and "
     "resource gates never meet unknown series"},
    {"bad-suppression", Severity::kError,
     "suppression hygiene: a misspelled pdslint:allow(...) must fail loudly "
     "rather than silently disabling a gate"},
};

// ---------------------------------------------------------------------------
// pdsflow rule table (checks live in tools/flow_analysis.h).

inline constexpr RuleSpec kFlowRules[] = {
    {"wire-taint", Severity::kError,
     "allocation/OOB safety: a length or count decoded from the wire is "
     "attacker-controlled until compared against a bound; it must not reach "
     "resize/reserve/new[]/an index expression/a loop bound unchecked"},
    {"decode-atomicity", Severity::kError,
     "decode transactionality: a function that can throw DecodeError must "
     "not mutate member/engine state before its last potential throw point, "
     "so a malformed frame never leaves caches half-updated"},
    {"layering", Severity::kError,
     "architecture DAG: includes must point from higher layers to lower "
     "ones (common < util < obs < sim < net < core < workload < tools); new "
     "back-edges fail CI unless baselined in tools/pdsflow_baseline.txt"},
    {"bad-suppression", Severity::kError,
     "suppression hygiene: a misspelled pdsflow:allow(...) must fail loudly "
     "rather than silently disabling a gate"},
};

inline const RuleSpec* find_rule_in(std::span<const RuleSpec> rules,
                                    std::string_view id) {
  for (const RuleSpec& r : rules) {
    if (id == r.id) return &r;
  }
  return nullptr;
}

inline const RuleSpec* find_rule(std::string_view id) {
  return find_rule_in(kRules, id);
}

inline const RuleSpec* find_flow_rule(std::string_view id) {
  return find_rule_in(kFlowRules, id);
}

// ---------------------------------------------------------------------------
// Findings & summaries.

struct Finding {
  std::string rule;
  Severity severity = Severity::kError;
  std::string file;  // repo-relative, forward slashes
  int line = 1;
  std::string message;
  bool suppressed = false;
  // pdsflow only: stable, line-free identity used by the baseline file and
  // emitted in the JSON report when non-empty. Empty for pdslint findings.
  std::string fingerprint;
  // True when the finding was waived by an entry in the baseline file (as
  // opposed to an inline allow comment). Baselined findings count as
  // suppressed in the summary.
  bool baselined = false;
};

struct LintSummary {
  int files_scanned = 0;
  int errors = 0;    // unsuppressed errors
  int warnings = 0;  // unsuppressed warnings
  int suppressed = 0;

  [[nodiscard]] int unsuppressed() const { return errors + warnings; }
};

inline void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
}

inline LintSummary summarize(const std::vector<Finding>& findings,
                             int files_scanned) {
  LintSummary s;
  s.files_scanned = files_scanned;
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++s.suppressed;
    } else if (f.severity == Severity::kError) {
      ++s.errors;
    } else {
      ++s.warnings;
    }
  }
  return s;
}

// ---------------------------------------------------------------------------
// Audited suppressions, shared across tools.

// One suppression-comment family. Every tool's family is parsed by every
// tool (for the bad-suppression audit); only the primary tool's tags
// actually suppress findings.
struct SuppressionTool {
  const char* prefix;               // "pdslint" / "pdsflow"
  std::span<const RuleSpec> rules;  // rule ids this tool's tags may name
};

inline const std::span<const SuppressionTool> suppression_tools() {
  static constexpr SuppressionTool kTools[] = {
      {"pdslint", kRules},
      {"pdsflow", kFlowRules},
  };
  return kTools;
}

// Parsed suppression state for one file.
struct Suppressions {
  // line -> rules allowed on that line (and the one below it).
  std::map<int, std::set<std::string>> by_line;
  std::set<std::string> file_wide;
  std::vector<Finding> bad;  // unknown rule names inside allow(...)
};

namespace common_detail {

inline void parse_allow_list(const std::string& args, const std::string& file,
                             int line, const SuppressionTool& tool,
                             std::set<std::string>* out,
                             std::vector<Finding>& bad) {
  std::size_t pos = 0;
  while (pos <= args.size()) {
    std::size_t comma = args.find(',', pos);
    if (comma == std::string::npos) comma = args.size();
    std::string name = args.substr(pos, comma - pos);
    // trim
    const auto b = name.find_first_not_of(" \t");
    const auto e = name.find_last_not_of(" \t");
    name = (b == std::string::npos) ? "" : name.substr(b, e - b + 1);
    if (!name.empty()) {
      if (find_rule_in(tool.rules, name) == nullptr ||
          name == "bad-suppression") {
        bad.push_back({"bad-suppression", Severity::kError, file, line,
                       "unknown rule '" + name + "' in " +
                           std::string(tool.prefix) + " suppression",
                       false, std::string(), false});
      } else if (out != nullptr) {
        out->insert(name);
      }
    }
    if (comma == args.size()) break;
    pos = comma + 1;
  }
}

}  // namespace common_detail

// Parses every tool's allow comments from `lexed`. Tags of `primary_prefix`
// populate by_line/file_wide; tags of every tool are audited for unknown
// rule names (the bad-suppression findings land in `bad` either way, so
// whichever linter scans the file reports the typo).
inline Suppressions collect_suppressions(const LexedFile& lexed,
                                         const std::string& file,
                                         std::string_view primary_prefix) {
  Suppressions sup;
  for (const Comment& c : lexed.comments) {
    for (const SuppressionTool& tool : suppression_tools()) {
      const bool primary = primary_prefix == tool.prefix;
      const std::string allow_file =
          std::string(tool.prefix) + ":allow-file(";
      const std::string allow_line = std::string(tool.prefix) + ":allow(";
      for (const std::string& marker : {allow_file, allow_line}) {
        std::size_t at = 0;
        while ((at = c.text.find(marker, at)) != std::string::npos) {
          const std::size_t open = at + marker.size();
          const std::size_t close = c.text.find(')', open);
          if (close == std::string::npos) break;
          const std::string args = c.text.substr(open, close - open);
          const bool file_wide = marker == allow_file;
          std::set<std::string>* out = nullptr;
          if (primary) {
            out = file_wide ? &sup.file_wide : &sup.by_line[c.end_line];
          }
          common_detail::parse_allow_list(args, file, c.line, tool, out,
                                          sup.bad);
          at = close;
        }
      }
    }
  }
  return sup;
}

inline bool suppressed_at(const Suppressions& sup, const std::string& rule,
                          int line) {
  if (sup.file_wide.count(rule) != 0) return true;
  for (int l : {line, line - 1}) {
    const auto it = sup.by_line.find(l);
    if (it != sup.by_line.end() && it->second.count(rule) != 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Deterministic JSON report, shared shape across schemas.

// Machine-readable findings report rendered with the same JsonWriter the
// bench telemetry uses, so output is byte-deterministic. `fingerprint` and
// `baselined` are emitted only when set (pdsflow), keeping pdslint's
// pds-lint-report/1 output unchanged.
inline std::string render_findings_json(const char* schema,
                                        std::span<const RuleSpec> rules,
                                        const std::vector<Finding>& findings,
                                        const LintSummary& summary) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value(schema);
  w.key("rules").begin_array();
  for (const RuleSpec& r : rules) {
    w.begin_object();
    w.key("id").value(r.id);
    w.key("severity").value(severity_name(r.severity));
    w.key("invariant").value(r.invariant);
    w.end_object();
  }
  w.end_array();
  w.key("findings").begin_array();
  for (const Finding& f : findings) {
    w.begin_object();
    w.key("rule").value(f.rule);
    w.key("severity").value(severity_name(f.severity));
    w.key("file").value(f.file);
    w.key("line").value(static_cast<std::int64_t>(f.line));
    w.key("message").value(f.message);
    w.key("suppressed").value(f.suppressed);
    if (!f.fingerprint.empty()) w.key("fingerprint").value(f.fingerprint);
    if (f.baselined) w.key("baselined").value(true);
    w.end_object();
  }
  w.end_array();
  w.key("summary").begin_object();
  w.key("files_scanned")
      .value(static_cast<std::int64_t>(summary.files_scanned));
  w.key("errors").value(static_cast<std::int64_t>(summary.errors));
  w.key("warnings").value(static_cast<std::int64_t>(summary.warnings));
  w.key("suppressed").value(static_cast<std::int64_t>(summary.suppressed));
  w.end_object();
  w.end_object();
  return w.take();
}

// ---------------------------------------------------------------------------
// CLI file-gathering helpers (shared by the pdslint/pdsflow drivers).

namespace cli {

namespace fs = std::filesystem;

inline bool has_source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".h" || e == ".cc" || e == ".cpp" || e == ".hpp";
}

inline bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

// Repo-relative display path with forward slashes.
inline std::string display_path(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(file, root, ec);
  if (ec || rel.empty()) rel = file;
  return rel.generic_string();
}

// Expands directories recursively into the sorted, deduplicated list of
// source files, so findings and reports are deterministic regardless of
// directory enumeration order. Returns false (and names the offender) when
// an input is neither a file nor a directory.
inline bool gather_files(const std::vector<fs::path>& inputs,
                         std::vector<fs::path>& files, std::string& error) {
  for (const fs::path& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      for (auto it = fs::recursive_directory_iterator(input, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && has_source_ext(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(input, ec)) {
      files.push_back(input);
    } else {
      error = input.string();
      return false;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return true;
}

}  // namespace cli

}  // namespace pds::lint
