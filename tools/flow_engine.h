// pdsflow analysis engine (DESIGN.md §17) — part 2 of tools/flow_analysis.h:
// the taint lattice walker, decode-atomicity event analysis, layering scan
// and the analyze() entry point. Split from the parser for readability;
// include tools/flow_analysis.h, never this file directly.
#pragma once

#include "tools/flow_analysis.h"

namespace pds::flow {

namespace flow_detail {

// ---------------------------------------------------------------------------
// Taint lattice. A value is tainted when it derives from wire bytes (`src`)
// and/or from one of the enclosing function's parameters (`params`, a
// bitmask used to build interprocedural summaries). Comparing a variable
// against anything in an if-condition or PDS_ENSURE argument sanitizes it
// (drops it from the environment); loop conditions do NOT sanitize — a
// tainted loop bound is the sink itself.

struct Taint {
  bool src = false;
  std::uint64_t params = 0;

  [[nodiscard]] bool any() const { return src || params != 0; }
  void join(const Taint& o) {
    src = src || o.src;
    params |= o.params;
  }
};

// Per-function interprocedural summary, keyed by unqualified name (same-name
// functions merge conservatively).
struct Summary {
  Taint returns;                  // taint of the returned value
  std::uint64_t sink_params = 0;  // params that reach a size/index sink
  bool may_throw = false;         // can throw DecodeError
};

using SummaryMap = std::map<std::string, Summary>;

// ByteReader/varint getters: method calls returning wire-derived values.
// All of them throw DecodeError on underrun, so a call is also a potential
// throw point for decode-atomicity.
inline bool is_source_method(const std::string& s) {
  static const std::set<std::string> kSources = {
      "get_u8",  "get_u16",    "get_u32",       "get_u64",   "get_i64",
      "get_f64", "get_varint", "get_varint_i64", "get_string", "get_bytes"};
  return kSources.count(s) != 0;
}

// Calls whose result is bounded regardless of argument taint.
inline bool is_sanitizer_call(const std::string& s) {
  return s == "min" || s == "clamp";
}

// Validation macros: arguments count as bounds-checked afterwards. These
// abort on failure (common/assert.h), so they are never throw points.
inline bool is_ensure_macro(const std::string& s) {
  return s == "PDS_ENSURE" || s == "PDS_ASSERT" || s == "assert";
}

// Container-mutating method names for the atomicity rule.
inline bool is_mutator_method(const std::string& s) {
  static const std::set<std::string> kMut = {
      "push_back", "emplace_back", "pop_back", "insert", "erase",
      "clear",     "resize",       "reserve",  "assign", "emplace",
      "swap",      "set_word"};
  return kMut.count(s) != 0;
}

inline bool is_member_name(const std::string& s) {
  return !s.empty() && s.back() == '_';
}

// Taint environment for one walk: variable taints plus the set of local
// references/iterators known to alias member state.
struct Env {
  std::map<std::string, Taint> vars;
  std::set<std::string> member_refs;

  void join(const Env& o) {
    for (const auto& [k, v] : o.vars) vars[k].join(v);
    member_refs.insert(o.member_refs.begin(), o.member_refs.end());
  }
};

// Mutation/throw event stream for decode-atomicity, in statement order.
struct Event {
  bool is_throw = false;
  std::string name;  // mutated member (empty for throws)
  int line = 1;
  int order = 0;
  std::vector<int> loops;  // enclosing loop ids
};

struct EvalResult {
  Taint taint;
  std::string who;  // representative tainted identifier, for messages
};

// Analysis context for one function in one file.
struct FnCtx {
  const std::vector<Token>* toks = nullptr;
  const Function* fn = nullptr;
  SummaryMap* summaries = nullptr;
  const std::string* file = nullptr;
  const Suppressions* sup = nullptr;
  std::vector<Finding>* out = nullptr;  // null during summary-only passes
  Summary self;
  std::vector<Event> events;
  int order_counter = 0;
  int next_loop_id = 0;
  std::vector<int> loop_stack;
  int try_depth = 0;
};

inline void add_flow_finding(FnCtx& ctx, const char* rule, int line,
                             std::string message, std::string fingerprint) {
  if (ctx.out == nullptr) return;
  const lint::RuleSpec* spec = lint::find_flow_rule(rule);
  Finding f;
  f.rule = rule;
  f.severity = spec != nullptr ? spec->severity : Severity::kError;
  f.file = *ctx.file;
  f.line = line;
  f.message = std::move(message);
  f.suppressed = lint::suppressed_at(*ctx.sup, f.rule, line);
  f.fingerprint = std::move(fingerprint);
  ctx.out->push_back(std::move(f));
}

// Evaluates the taint of the expression tokens in [b, e). Flat scan:
// identifiers pull their environment taint, `.get_*()` calls contribute
// `src`, calls to summarized functions contribute their return taint, and
// std::min/clamp mask the taint of their arguments.
inline EvalResult eval_expr(const FnCtx& ctx, const Env& env, std::size_t b,
                            std::size_t e) {
  const auto& toks = *ctx.toks;
  EvalResult r;
  std::size_t i = b;
  while (i < e) {
    const Token& t = toks[i];
    if (is_punct(t, ".") || is_punct(t, "->")) {
      // Member access / method call: the base identifier was already
      // evaluated; skip the member name (but credit source getters).
      if (i + 1 < e && toks[i + 1].kind == TokKind::kIdent) {
        if (i + 2 < e && is_punct(toks[i + 2], "(") &&
            is_source_method(toks[i + 1].text)) {
          r.taint.src = true;
          if (r.who.empty()) r.who = toks[i + 1].text + "()";
        }
        i += 2;
        continue;
      }
      ++i;
      continue;
    }
    if (t.kind == TokKind::kIdent) {
      // Explicit template arguments (`std::min<std::size_t>(...)`) sit
      // between the callee name and the call parens; skip them when
      // deciding whether this identifier is a call.
      std::size_t paren = i + 1;
      if (is_sanitizer_call(t.text) && paren < e &&
          is_punct(toks[paren], "<")) {
        int depth = 0;
        while (paren < e) {
          if (is_punct(toks[paren], "<")) ++depth;
          if (is_punct(toks[paren], ">") && --depth == 0) {
            ++paren;
            break;
          }
          ++paren;
        }
      }
      const bool call = paren < e && is_punct(toks[paren], "(");
      if (call && is_sanitizer_call(t.text)) {
        i = match_balanced(toks, paren, e) + 1;  // bounded result
        continue;
      }
      if (call) {
        const auto it = ctx.summaries->find(t.text);
        if (it != ctx.summaries->end() && it->second.returns.src) {
          r.taint.src = true;
          if (r.who.empty()) r.who = t.text + "()";
        }
        // Param passthrough and unknown calls both resolve to "result
        // carries the arguments' taint", which the flat scan of the
        // argument tokens below provides.
        ++i;
        continue;
      }
      const auto v = env.vars.find(t.text);
      if (v != env.vars.end() && v->second.any()) {
        r.taint.join(v->second);
        if (r.who.empty()) r.who = t.text;
      }
      ++i;
      continue;
    }
    ++i;
    continue;
  }
  return r;
}

inline bool range_has_comparison(const std::vector<Token>& toks,
                                 std::size_t b, std::size_t e) {
  for (std::size_t i = b; i < e; ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    const std::string& p = toks[i].text;
    if (p == "<" || p == ">") return true;
    if ((p == "=" || p == "!") && i + 1 < e && is_punct(toks[i + 1], "=")) {
      return true;
    }
  }
  return false;
}

// Drops every identifier in [b, e) from the taint environment — the
// comparison/ENSURE semantics of sanitization.
inline void sanitize_range(const FnCtx& ctx, Env& env, std::size_t b,
                           std::size_t e) {
  const auto& toks = *ctx.toks;
  for (std::size_t i = b; i < e; ++i) {
    if (toks[i].kind == TokKind::kIdent) env.vars.erase(toks[i].text);
  }
}

// Splits the balanced call at `open` (a `(`) into top-level argument
// ranges; returns the index of the closing paren.
inline std::size_t split_args(const std::vector<Token>& toks,
                              std::size_t open, std::size_t end,
                              std::vector<std::pair<std::size_t, std::size_t>>&
                                  args) {
  const std::size_t close = match_balanced(toks, open, end);
  std::size_t arg_start = open + 1;
  int d = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    const std::string& p = toks[i].text;
    if (p == "(" || p == "{" || p == "[") ++d;
    if (p == ")" || p == "}" || p == "]") --d;
    if (p == "," && d == 0) {
      args.emplace_back(arg_start, i);
      arg_start = i + 1;
    }
  }
  if (close > arg_start) args.emplace_back(arg_start, close);
  return close;
}

// ---------------------------------------------------------------------------
// Sink scan: resize/reserve/assign-count, new[] extents, index expressions,
// and calls passing tainted values into summarized sink parameters.

inline void scan_sinks(FnCtx& ctx, Env& env, std::size_t b, std::size_t e) {
  const auto& toks = *ctx.toks;
  std::set<std::size_t> claimed_brackets;  // new[] extents, not subscripts
  for (std::size_t i = b; i < e; ++i) {
    const Token& t = toks[i];
    // `.resize(n)` / `.reserve(n)` / `.assign(n, v)`
    if ((is_punct(t, ".") || is_punct(t, "->")) && i + 2 < e &&
        toks[i + 1].kind == TokKind::kIdent && is_punct(toks[i + 2], "(")) {
      const std::string& m = toks[i + 1].text;
      if (m == "resize" || m == "reserve" || m == "assign") {
        std::vector<std::pair<std::size_t, std::size_t>> args;
        split_args(toks, i + 2, e, args);
        if (!args.empty()) {
          const EvalResult a = eval_expr(ctx, env, args[0].first,
                                         args[0].second);
          if (a.taint.src) {
            add_flow_finding(
                ctx, "wire-taint", toks[i + 1].line,
                "wire-tainted value '" + a.who + "' reaches ." + m +
                    "() in '" + ctx.fn->display +
                    "' without a bounds check — validate it against "
                    "remaining() or a cap first (allocation bomb)",
                "taint:" + ctx.fn->name + ":" + m + ":" + a.who);
          }
          ctx.self.sink_params |= a.taint.params;
        }
      }
    }
    // `new T[n]`
    if (is_ident(t, "new")) {
      for (std::size_t k = i + 1; k < e && k < i + 8; ++k) {
        if (toks[k].kind == TokKind::kPunct &&
            (toks[k].text == "(" || toks[k].text == ";" ||
             toks[k].text == ",")) {
          break;
        }
        if (is_punct(toks[k], "[")) {
          const std::size_t close = match_balanced(toks, k, e);
          claimed_brackets.insert(k);
          const EvalResult a = eval_expr(ctx, env, k + 1, close);
          if (a.taint.src) {
            add_flow_finding(
                ctx, "wire-taint", toks[k].line,
                "wire-tainted value '" + a.who + "' sizes a new[] in '" +
                    ctx.fn->display +
                    "' without a bounds check (allocation bomb)",
                "taint:" + ctx.fn->name + ":new[]:" + a.who);
          }
          ctx.self.sink_params |= a.taint.params;
          break;
        }
      }
    }
    // subscript `expr[i]`
    if (is_punct(t, "[") && i > b && claimed_brackets.count(i) == 0 &&
        (toks[i - 1].kind == TokKind::kIdent || is_punct(toks[i - 1], "]") ||
         is_punct(toks[i - 1], ")"))) {
      const std::size_t close = match_balanced(toks, i, e);
      const EvalResult a = eval_expr(ctx, env, i + 1, close);
      if (a.taint.src) {
        add_flow_finding(
            ctx, "wire-taint", t.line,
            "wire-tainted value '" + a.who + "' used as an index in '" +
                ctx.fn->display + "' without a bounds check (OOB access)",
            "taint:" + ctx.fn->name + ":index:" + a.who);
      }
      ctx.self.sink_params |= a.taint.params;
    }
    // call passing tainted args into summarized sink parameters
    if (t.kind == TokKind::kIdent && i + 1 < e && is_punct(toks[i + 1], "(") &&
        (i == b || (!is_punct(toks[i - 1], ".") &&
                    !is_punct(toks[i - 1], "->")))) {
      const auto it = ctx.summaries->find(t.text);
      if (it != ctx.summaries->end() && it->second.sink_params != 0) {
        std::vector<std::pair<std::size_t, std::size_t>> args;
        split_args(toks, i + 1, e, args);
        for (std::size_t k = 0; k < args.size() && k < 64; ++k) {
          if ((it->second.sink_params & (1ULL << k)) == 0) continue;
          const EvalResult a =
              eval_expr(ctx, env, args[k].first, args[k].second);
          if (a.taint.src) {
            add_flow_finding(
                ctx, "wire-taint", t.line,
                "wire-tainted value '" + a.who + "' passed to '" + t.text +
                    "()' (parameter " + std::to_string(k) +
                    "), which uses it as a size or index without a bounds "
                    "check",
                "taint:" + ctx.fn->name + ":call-" + t.text + ":" + a.who);
          }
          ctx.self.sink_params |= a.taint.params;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Throw-point and mutation event scans (decode-atomicity).

inline void record_event(FnCtx& ctx, bool is_throw, std::string name,
                         int line) {
  Event ev;
  ev.is_throw = is_throw;
  ev.name = std::move(name);
  ev.line = line;
  ev.order = ctx.order_counter++;
  ev.loops = ctx.loop_stack;
  ctx.events.push_back(std::move(ev));
}

// Source-method calls and calls to may-throw functions inside [b, e) are
// potential DecodeError throw points.
inline void scan_throw_points(FnCtx& ctx, std::size_t b, std::size_t e) {
  const auto& toks = *ctx.toks;
  for (std::size_t i = b; i < e; ++i) {
    const Token& t = toks[i];
    bool throws = false;
    if ((is_punct(t, ".") || is_punct(t, "->")) && i + 2 < e &&
        toks[i + 1].kind == TokKind::kIdent && is_punct(toks[i + 2], "(") &&
        is_source_method(toks[i + 1].text)) {
      throws = true;
    }
    if (t.kind == TokKind::kIdent && i + 1 < e && is_punct(toks[i + 1], "(") &&
        (i == b || (!is_punct(toks[i - 1], ".") &&
                    !is_punct(toks[i - 1], "->")))) {
      const auto it = ctx.summaries->find(t.text);
      if (it != ctx.summaries->end() && it->second.may_throw) throws = true;
    }
    if (throws && ctx.try_depth == 0) {
      ctx.self.may_throw = true;
      record_event(ctx, true, std::string(), t.line);
    }
  }
}

// Walks back a `.`/`->`/`[...]` access chain ending just before `at` and
// returns the base identifier index, or `npos`.
inline std::size_t chain_base(const std::vector<Token>& toks, std::size_t at,
                              std::size_t b) {
  std::size_t i = at;
  while (i > b) {
    const Token& t = toks[i - 1];
    if (t.kind == TokKind::kIdent) {
      if (i - 1 == b || (!is_punct(toks[i - 2], ".") &&
                         !is_punct(toks[i - 2], "->"))) {
        return i - 1;
      }
      i -= 2;  // skip the member name and its accessor
      continue;
    }
    if (is_punct(t, "]")) {
      // skip back over the balanced [...]
      int d = 0;
      std::size_t k = i - 1;
      while (k > b) {
        if (is_punct(toks[k], "]")) ++d;
        if (is_punct(toks[k], "[")) {
          if (--d == 0) break;
        }
        --k;
      }
      i = k;
      continue;
    }
    if (is_punct(t, ")")) return std::string::npos;  // call result; ignore
    return std::string::npos;
  }
  return std::string::npos;
}

inline bool aliases_member(const Env& env, const std::string& name) {
  return is_member_name(name) || name == "this" ||
         env.member_refs.count(name) != 0;
}

// Mutating method calls (`x_.push_back(...)`) and member increments.
inline void scan_mutations(FnCtx& ctx, const Env& env, std::size_t b,
                           std::size_t e) {
  const auto& toks = *ctx.toks;
  for (std::size_t i = b; i < e; ++i) {
    const Token& t = toks[i];
    if ((is_punct(t, ".") || is_punct(t, "->")) && i + 2 < e &&
        toks[i + 1].kind == TokKind::kIdent && is_punct(toks[i + 2], "(") &&
        is_mutator_method(toks[i + 1].text)) {
      const std::size_t base = chain_base(toks, i, b);
      if (base != std::string::npos && aliases_member(env, toks[base].text)) {
        record_event(ctx, false, toks[base].text, toks[i + 1].line);
      }
    }
    // ++x_ / x_++ / --x_ / x_--
    if (t.kind == TokKind::kIdent && aliases_member(env, t.text)) {
      const bool pre =
          i >= b + 2 &&
          ((is_punct(toks[i - 1], "+") && is_punct(toks[i - 2], "+")) ||
           (is_punct(toks[i - 1], "-") && is_punct(toks[i - 2], "-")));
      const bool post =
          i + 2 < e &&
          ((is_punct(toks[i + 1], "+") && is_punct(toks[i + 2], "+")) ||
           (is_punct(toks[i + 1], "-") && is_punct(toks[i + 2], "-")));
      if (pre || post) record_event(ctx, false, t.text, t.line);
    }
  }
}

}  // namespace flow_detail

}  // namespace pds::flow

#include "tools/flow_engine2.h"
