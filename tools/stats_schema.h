// Time-series / profiler name catalog (DESIGN.md §15).
//
// Every literal column name passed to PDS_TS_COLUMN and every literal scope
// name passed to PDS_PROF_SCOPE must be registered here; pdslint's
// `stats-schema` rule enforces it (the mirror of `trace-schema` /
// trace_schema.h for the flight recorder). Keep the table in sync with the
// collector in src/workload/scenario.cc and the PDS_PROF_SCOPE sites in
// src/sim and src/core.
#pragma once

#include <array>

namespace pds::tools {

struct SeriesSchema {
  const char* name;  // column name, "subsystem.metric"
  const char* kind;  // "sim" (deterministic) or "wall" (thread/host facts)
  const char* unit;  // human unit for pdscli stats rendering
};

inline constexpr std::array<SeriesSchema, 24> kSeriesCatalog = {{
    // -- Scheduler / event queue (sim/event_queue.h) -------------------------
    {"sched.queue_len", "sim", "events"},
    {"sched.ring_live", "sim", "events"},
    {"sched.overflow_depth", "sim", "events"},
    {"sched.slot_pool", "sim", "slots"},
    {"sim.events", "sim", "events"},
    // -- Radio medium (sim/radio.h) ------------------------------------------
    {"radio.active_tx", "sim", "nodes"},
    {"radio.tx_cells", "sim", "cells"},
    {"radio.max_cell_tx", "sim", "nodes"},
    {"radio.air_us", "sim", "us"},
    {"radio.bytes", "sim", "bytes"},
    {"radio.os_backlog_bytes", "sim", "bytes"},
    // -- Transport (net/transport.h), summed over nodes ----------------------
    {"transport.inflight", "sim", "packets"},
    {"transport.send_queue", "sim", "packets"},
    {"transport.pending", "sim", "packets"},
    {"transport.reassembly", "sim", "messages"},
    {"transport.bucket_backlog_us_max", "sim", "us"},
    // -- Per-node protocol state, summed / maxed over nodes ------------------
    {"store.metadata", "sim", "entries"},
    {"store.items", "sim", "items"},
    {"store.chunk_bytes", "sim", "bytes"},
    {"lqt.entries", "sim", "queries"},
    {"lqt.bloom_fill_max", "sim", "ratio"},
    // -- Arena pools (common/arena.h) and host probes ------------------------
    {"arena.rx_pool_parked", "sim", "vectors"},
    {"arena.block_pool_bytes", "wall", "bytes"},
    {"rss.peak_mb", "wall", "MB"},
}};

// Allowed PDS_PROF_SCOPE subsystem names (hierarchy is runtime nesting; the
// catalog registers names, not paths).
inline constexpr std::array<const char*, 7> kProfileScopeCatalog = {
    "sim",  "radio", "scheduler", "pdd", "pdr", "transport",
    "classify-shards",
};

}  // namespace pds::tools
