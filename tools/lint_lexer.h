// Minimal C++ lexer for pdslint (tools/lint_rules.h).
//
// pdslint's rules operate on token streams, not ASTs: every invariant it
// guards (no wall-clock, no ambient RNG, no unordered iteration on output
// paths, ...) is detectable from identifier/punctuation sequences, so a
// self-contained lexer keeps the checker dependency-free (no libclang).
// The lexer understands exactly enough C++ to never misclassify source
// text: line/block comments (kept separately, they carry suppression
// directives), string/char literals with escapes, raw strings, and
// multi-char punctuators that matter to the rules (`::`, `->`).
// Everything else is a single-character punctuator.
#pragma once

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

namespace pds::lint {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (pp-numbers, good enough for matching)
  kString,  // "..." and R"(...)" — contents excluded from rule matching
  kChar,    // '...'
  kPunct,   // operators and punctuation
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 1;
};

// A comment with its line span; block comments may cover several lines.
struct Comment {
  int line = 1;      // first line
  int end_line = 1;  // last line (== line for `//` comments)
  std::string text;  // contents without the comment markers
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  int line_count = 1;
};

namespace lexer_detail {

inline bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

inline bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace lexer_detail

// Tokenizes `src`. Never fails: unterminated literals/comments simply end at
// EOF — pdslint lints code that already compiles, so recovery is moot.
inline LexedFile lex(std::string_view src) {
  using lexer_detail::ident_char;
  using lexer_detail::ident_start;

  LexedFile out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      i += 2;
      const std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      out.comments.push_back(
          {line, line, std::string(src.substr(start, i - start))});
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      const int first = line;
      const std::size_t start = i;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      const std::size_t len = (i + 1 < n) ? i - start : n - start;
      out.comments.push_back({first, line, std::string(src.substr(start, len))});
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(' && src[j] != '\n' && delim.size() < 16) {
        delim.push_back(src[j++]);
      }
      if (j < n && src[j] == '(') {
        const std::string close = ")" + delim + "\"";
        const std::size_t end = src.find(close, j + 1);
        const int first = line;
        const std::size_t stop = (end == std::string_view::npos)
                                     ? n
                                     : end + close.size();
        for (std::size_t k = i; k < stop; ++k) {
          if (src[k] == '\n') ++line;
        }
        out.tokens.push_back(
            {TokKind::kString, std::string(src.substr(i, stop - i)), first});
        i = stop;
        continue;
      }
      // Not actually a raw string ("R" identifier followed by a plain
      // string); fall through to identifier handling.
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const std::size_t start = i;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;  // unterminated; keep counts right
        ++i;
      }
      if (i < n) ++i;  // closing quote
      out.tokens.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                            std::string(src.substr(start, i - start)), line});
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      out.tokens.push_back(
          {TokKind::kIdent, std::string(src.substr(start, i - start)), line});
      continue;
    }
    // Number (pp-number: digits, dots, exponent signs, suffixes).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      const std::size_t start = i;
      while (i < n && (ident_char(src[i]) || src[i] == '.' || src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        ++i;
      }
      out.tokens.push_back(
          {TokKind::kNumber, std::string(src.substr(start, i - start)), line});
      continue;
    }
    // Multi-char punctuators the rules care about; `::` must stay one token
    // so a lone `:` reliably marks a range-for.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({TokKind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && src[i + 1] == '>') {
      out.tokens.push_back({TokKind::kPunct, "->", line});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  out.line_count = line;
  return out;
}

}  // namespace pds::lint
