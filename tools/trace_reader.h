// Minimal NDJSON trace reader for the format obs::Tracer emits (one flat
// JSON object per line, fixed field order, args values limited to numbers
// and strings). Used by `pdscli trace` and tools/trace_check; intentionally
// not a general JSON parser.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <istream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pds::tools {

struct ParsedEvent {
  std::int64_t t_us = 0;
  std::uint32_t node = 0;
  char ph = 'i';
  std::string sub;
  std::string ev;
  // Raw value text, unescaped for strings ("3", "1.5", "probability").
  std::vector<std::pair<std::string, std::string>> args;

  [[nodiscard]] const std::string* arg(const std::string& key) const {
    for (const auto& [k, v] : args) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] double num(const std::string& key, double dflt = 0.0) const {
    const std::string* v = arg(key);
    return v == nullptr ? dflt : std::atof(v->c_str());
  }
};

namespace detail {

inline void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
}

inline bool expect(const std::string& s, std::size_t& i, char c) {
  skip_ws(s, i);
  if (i >= s.size() || s[i] != c) return false;
  ++i;
  return true;
}

// Parses a JSON string at s[i] (opening quote included), appending the
// unescaped content to `out`.
inline bool parse_string(const std::string& s, std::size_t& i,
                         std::string& out) {
  if (!expect(s, i, '"')) return false;
  while (i < s.size() && s[i] != '"') {
    char c = s[i++];
    if (c == '\\') {
      if (i >= s.size()) return false;
      const char esc = s[i++];
      switch (esc) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'u': {
          if (i + 4 > s.size()) return false;
          c = static_cast<char>(
              std::strtol(s.substr(i, 4).c_str(), nullptr, 16));
          i += 4;
          break;
        }
        default: c = esc;
      }
    }
    out.push_back(c);
  }
  return expect(s, i, '"');
}

// Parses a bare scalar (number / true / false / null) as raw text.
inline bool parse_scalar(const std::string& s, std::size_t& i,
                         std::string& out) {
  skip_ws(s, i);
  const std::size_t start = i;
  while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ' ') ++i;
  out = s.substr(start, i - start);
  return !out.empty();
}

inline bool parse_value(const std::string& s, std::size_t& i,
                        std::string& out) {
  skip_ws(s, i);
  if (i < s.size() && s[i] == '"') return parse_string(s, i, out);
  return parse_scalar(s, i, out);
}

}  // namespace detail

// Parses one tracer NDJSON line; nullopt on malformed input.
inline std::optional<ParsedEvent> parse_trace_line(const std::string& line) {
  using detail::expect;
  using detail::parse_string;
  using detail::parse_value;
  ParsedEvent event;
  std::size_t i = 0;
  if (!expect(line, i, '{')) return std::nullopt;
  bool first = true;
  while (true) {
    detail::skip_ws(line, i);
    if (i < line.size() && line[i] == '}') break;
    if (!first && !expect(line, i, ',')) return std::nullopt;
    first = false;
    std::string key;
    if (!parse_string(line, i, key) || !expect(line, i, ':')) {
      return std::nullopt;
    }
    if (key == "args") {
      if (!expect(line, i, '{')) return std::nullopt;
      bool first_arg = true;
      while (true) {
        detail::skip_ws(line, i);
        if (i < line.size() && line[i] == '}') {
          ++i;
          break;
        }
        if (!first_arg && !expect(line, i, ',')) return std::nullopt;
        first_arg = false;
        std::string arg_key, arg_value;
        if (!parse_string(line, i, arg_key) || !expect(line, i, ':') ||
            !parse_value(line, i, arg_value)) {
          return std::nullopt;
        }
        event.args.emplace_back(std::move(arg_key), std::move(arg_value));
      }
    } else {
      std::string value;
      if (!parse_value(line, i, value)) return std::nullopt;
      if (key == "t") {
        event.t_us = std::atoll(value.c_str());
      } else if (key == "node") {
        event.node = static_cast<std::uint32_t>(std::atoll(value.c_str()));
      } else if (key == "ph") {
        if (value.size() != 1) return std::nullopt;
        event.ph = value[0];
      } else if (key == "sub") {
        event.sub = std::move(value);
      } else if (key == "ev") {
        event.ev = std::move(value);
      }  // Unknown top-level keys are ignored (forward compatibility).
    }
  }
  if (event.sub.empty() || event.ev.empty()) return std::nullopt;
  return event;
}

// Reads a whole NDJSON stream; stops and returns nullopt-free events read so
// far via `out`, reporting the first bad line number (1-based) in `bad_line`
// (0 = clean).
inline std::vector<ParsedEvent> read_trace(std::istream& is,
                                           std::size_t& bad_line) {
  std::vector<ParsedEvent> out;
  bad_line = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto event = parse_trace_line(line);
    if (!event.has_value()) {
      bad_line = line_no;
      break;
    }
    out.push_back(std::move(*event));
  }
  return out;
}

}  // namespace pds::tools
