// pdsflow — flow-sensitive static analysis gate (DESIGN.md §17).
//
// Scans the tree (or explicit paths) with the wire-taint, decode-atomicity
// and layering rule families from tools/flow_analysis.h, prints
// compiler-style diagnostics, and optionally writes a machine-readable JSON
// report (schema pds-flow-report/1) for CI artifacts. Grandfathered
// findings live in a checked-in baseline (tools/pdsflow_baseline.txt by
// default) keyed by (rule, file, fingerprint) so line drift never
// invalidates it; --write-baseline regenerates the file.
//
// Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/IO error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "tools/flow_analysis.h"

namespace fs = std::filesystem;
using pds::lint::cli::display_path;
using pds::lint::cli::read_file;

namespace {

constexpr const char* kUsage =
    "usage: pdsflow [--root=DIR] [--json=PATH] [--baseline=PATH]\n"
    "               [--write-baseline[=PATH]] [--no-baseline]\n"
    "               [--list-rules] [PATH...]\n"
    "\n"
    "Flow-sensitive analysis of C++ sources: wire-taint (unvalidated wire\n"
    "lengths reaching allocations/indices/loop bounds), decode-atomicity\n"
    "(member mutation before a later DecodeError throw) and layering\n"
    "(architecture-DAG include violations). With no PATH arguments, scans\n"
    "src/, tools/, bench/, tests/ and examples/ under --root (default: the\n"
    "current directory); wire-taint and decode-atomicity apply to src/\n"
    "only. Suppress a finding with // pdsflow:allow(<rule>) on the\n"
    "offending or preceding line, or file-wide with\n"
    "// pdsflow:allow-file(<rule>). Grandfathered findings are waived by\n"
    "the baseline file (default: tools/pdsflow_baseline.txt under --root).\n";

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string json_path;
  std::string baseline_path;
  std::string write_baseline_path;
  bool write_baseline = false;
  bool no_baseline = false;
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg == "--no-baseline") {
      no_baseline = true;
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline = true;
      write_baseline_path = arg.substr(17);
    } else if (arg == "--list-rules") {
      for (const pds::lint::RuleSpec& r : pds::lint::kFlowRules) {
        std::printf("%-18s %-8s %s\n", r.id,
                    pds::lint::severity_name(r.severity), r.invariant);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "pdsflow: unknown option %s\n%s", arg.c_str(),
                   kUsage);
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }

  if (inputs.empty()) {
    for (const char* dir : {"src", "tools", "bench", "tests", "examples"}) {
      const fs::path p = root / dir;
      if (fs::exists(p)) inputs.push_back(p);
    }
    if (inputs.empty()) {
      std::fprintf(stderr, "pdsflow: nothing to scan under %s\n",
                   root.string().c_str());
      return 2;
    }
  }

  std::vector<fs::path> files;
  std::string gather_error;
  if (!pds::lint::cli::gather_files(inputs, files, gather_error)) {
    std::fprintf(stderr, "pdsflow: cannot read %s\n", gather_error.c_str());
    return 2;
  }

  std::vector<pds::flow::SourceFile> sources;
  sources.reserve(files.size());
  for (const fs::path& file : files) {
    std::string content;
    if (!read_file(file, content)) {
      std::fprintf(stderr, "pdsflow: cannot read %s\n",
                   file.string().c_str());
      return 2;
    }
    sources.push_back({display_path(file, root), std::move(content)});
  }

  pds::flow::FlowOptions opts;
  if (!no_baseline) {
    fs::path bp = baseline_path.empty()
                      ? root / "tools" / "pdsflow_baseline.txt"
                      : fs::path(baseline_path);
    std::string text;
    if (read_file(bp, text)) {
      opts.baseline = pds::flow::parse_baseline(text);
    } else if (!baseline_path.empty()) {
      std::fprintf(stderr, "pdsflow: cannot read baseline %s\n",
                   bp.string().c_str());
      return 2;
    }
  }

  const pds::flow::FlowResult res = pds::flow::analyze(sources, opts);

  if (write_baseline) {
    const std::string text = pds::flow::render_baseline(res.findings);
    if (write_baseline_path.empty()) {
      std::fputs(text.c_str(), stdout);
    } else {
      std::ofstream out(write_baseline_path,
                        std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "pdsflow: cannot write %s\n",
                     write_baseline_path.c_str());
        return 2;
      }
      out << text;
    }
  }

  int baselined = 0;
  for (const pds::lint::Finding& f : res.findings) {
    if (f.baselined) ++baselined;
    if (f.suppressed) continue;
    std::fprintf(stderr, "%s:%d: %s: [%s] %s\n", f.file.c_str(), f.line,
                 pds::lint::severity_name(f.severity), f.rule.c_str(),
                 f.message.c_str());
  }
  std::fprintf(stderr,
               "pdsflow: %d file(s), %d error(s), %d warning(s), "
               "%d suppressed (%d baselined)\n",
               res.summary.files_scanned, res.summary.errors,
               res.summary.warnings, res.summary.suppressed, baselined);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "pdsflow: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << pds::flow::render_flow_json(res) << "\n";
  }

  return res.summary.unsuppressed() > 0 ? 1 : 0;
}
