// pdsflow analysis engine (DESIGN.md §17) — part 3 of tools/flow_analysis.h:
// the statement walker tying the taint/atomicity scans together, the
// layering scan, analyze() and the report renderer. Include
// tools/flow_analysis.h, never this file directly.
#pragma once

#include "tools/flow_engine.h"

namespace pds::flow {

namespace flow_detail {

// ---------------------------------------------------------------------------
// Statement walker.

inline void walk_stmts(FnCtx& ctx, Env& env, const std::vector<Stmt>& stmts);

// Handles assignments/declarations in a plain statement: updates the taint
// environment, tracks member-aliasing references, and records member
// mutation events.
inline void handle_assignment(FnCtx& ctx, Env& env, std::size_t b,
                              std::size_t e) {
  const auto& toks = *ctx.toks;
  // Find the first top-level simple `=` (not ==, <=, >=, !=, +=, ...).
  std::size_t eq = e;
  int d = 0;
  for (std::size_t i = b; i < e; ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    const std::string& p = toks[i].text;
    if (p == "(" || p == "{" || p == "[") ++d;
    if (p == ")" || p == "}" || p == "]") --d;
    if (p == "=" && d == 0) {
      const bool next_eq = i + 1 < e && is_punct(toks[i + 1], "=");
      const bool prev_op =
          i > b && toks[i - 1].kind == TokKind::kPunct &&
          std::string("=!<>+-*/%&|^").find(toks[i - 1].text) !=
              std::string::npos;
      if (!next_eq && !prev_op) {
        eq = i;
        break;
      }
      if (next_eq) ++i;  // skip ==
    }
  }
  if (eq == e) return;

  const EvalResult rhs = eval_expr(ctx, env, eq + 1, e);

  // Locate the assignment target in [b, eq).
  bool has_bracket = false;
  std::size_t last_ident = e, first_ident = e;
  for (std::size_t i = b; i < eq; ++i) {
    if (is_punct(toks[i], "[")) has_bracket = true;
    if (toks[i].kind == TokKind::kIdent) {
      if (first_ident == e) first_ident = i;
      last_ident = i;
    }
  }
  if (last_ident == e) return;

  const bool member_access =
      last_ident > b && (is_punct(toks[last_ident - 1], ".") ||
                         is_punct(toks[last_ident - 1], "->"));
  if (!has_bracket && !member_access) {
    // Strong update of a plain variable (declaration or reassignment).
    const std::string& var = toks[last_ident].text;
    if (rhs.taint.any()) {
      env.vars[var] = rhs.taint;
    } else {
      env.vars.erase(var);
    }
    // Reference declarations bound to member state alias it: mutations
    // through the reference are member mutations. Iterators obtained from
    // member containers alias the same way even without `&`.
    bool lhs_has_amp = false;
    for (std::size_t i = b; i < eq; ++i) {
      if (is_punct(toks[i], "&")) lhs_has_amp = true;
    }
    bool rhs_touches_member = false;
    for (std::size_t i = eq + 1; i < e; ++i) {
      if (toks[i].kind == TokKind::kIdent &&
          aliases_member(env, toks[i].text)) {
        rhs_touches_member = true;
        break;
      }
    }
    bool rhs_is_member_iter = false;
    for (std::size_t i = eq + 1; i + 2 < e; ++i) {
      if (toks[i].kind == TokKind::kIdent &&
          (is_punct(toks[i + 1], ".") || is_punct(toks[i + 1], "->")) &&
          toks[i + 2].kind == TokKind::kIdent &&
          (toks[i + 2].text == "find" || toks[i + 2].text == "begin" ||
           toks[i + 2].text == "end" || toks[i + 2].text == "lower_bound")) {
        // Only containers that are themselves member state count — the
        // chain base decides (`sessions_.find(x)` yes, `d.attrs_.begin()`
        // on a local `d` no).
        const std::size_t base = chain_base(toks, i + 1, eq + 1);
        if (base != std::string::npos &&
            aliases_member(env, toks[base].text)) {
          rhs_is_member_iter = true;
          break;
        }
      }
    }
    // Record the mutation BEFORE registering new aliases: binding a
    // reference/iterator to member state is not itself a mutation; only
    // assigning through an alias established earlier is.
    if (aliases_member(env, var)) {
      record_event(ctx, false, var, toks[last_ident].line);
    }
    if ((lhs_has_amp && rhs_touches_member) || rhs_is_member_iter) {
      env.member_refs.insert(var);
    }
    return;
  }

  // Member/array store: weak update of the base identifier.
  const std::size_t base = chain_base(toks, eq, b);
  const std::size_t base_at = base != std::string::npos ? base : first_ident;
  const std::string& base_name = toks[base_at].text;
  if (rhs.taint.any()) env.vars[base_name].join(rhs.taint);
  if (aliases_member(env, base_name)) {
    record_event(ctx, false, base_name, toks[base_at].line);
  }
}

inline void walk_plain(FnCtx& ctx, Env& env, const Stmt& s) {
  const auto& toks = *ctx.toks;
  // PDS_ENSURE(...) validates its arguments (and aborts on failure — it is
  // not a throw point).
  for (std::size_t i = s.head_begin; i < s.head_end; ++i) {
    if (toks[i].kind == TokKind::kIdent && is_ensure_macro(toks[i].text) &&
        i + 1 < s.head_end && is_punct(toks[i + 1], "(")) {
      const std::size_t close = match_balanced(toks, i + 1, s.head_end);
      sanitize_range(ctx, env, i + 2, close);
    }
  }
  scan_throw_points(ctx, s.head_begin, s.head_end);
  scan_sinks(ctx, env, s.head_begin, s.head_end);
  scan_mutations(ctx, env, s.head_begin, s.head_end);
  handle_assignment(ctx, env, s.head_begin, s.head_end);
}

inline void walk_stmt(FnCtx& ctx, Env& env, const Stmt& s) {
  const auto& toks = *ctx.toks;
  switch (s.kind) {
    case Stmt::Kind::kPlain:
      walk_plain(ctx, env, s);
      break;
    case Stmt::Kind::kBlock:
      walk_stmts(ctx, env, s.body);
      break;
    case Stmt::Kind::kIf: {
      scan_throw_points(ctx, s.head_begin, s.head_end);
      scan_sinks(ctx, env, s.head_begin, s.head_end);
      // Comparing a tainted variable in an if-condition sanitizes it — the
      // idiom `if (n > cap) throw ...;` as well as `if (n <= cap) use(n);`.
      if (range_has_comparison(toks, s.head_begin, s.head_end)) {
        sanitize_range(ctx, env, s.head_begin, s.head_end);
      }
      Env then_env = env;
      walk_stmts(ctx, then_env, s.body);
      Env else_env = env;
      walk_stmts(ctx, else_env, s.else_body);
      env = then_env;
      env.join(else_env);
      break;
    }
    case Stmt::Kind::kLoop: {
      scan_throw_points(ctx, s.head_begin, s.head_end);
      scan_sinks(ctx, env, s.head_begin, s.head_end);
      // A loop bound is a sink, not a sanitizer: iteration count driven by
      // an unchecked wire value is the allocation/CPU bomb itself.
      const EvalResult cond =
          eval_expr(ctx, env, s.head_begin, s.head_end);
      if (cond.taint.src) {
        const int line = s.head_begin < toks.size()
                             ? toks[s.head_begin > 0 ? s.head_begin - 1 : 0]
                                   .line
                             : ctx.fn->line;
        add_flow_finding(
            ctx, "wire-taint", line,
            "wire-tainted value '" + cond.who + "' bounds a loop in '" +
                ctx.fn->display +
                "' without validation — an attacker-controlled count drives "
                "iteration and allocation",
            "taint:" + ctx.fn->name + ":loop-bound:" + cond.who);
        // Avoid cascading findings from the same unchecked bound.
        sanitize_range(ctx, env, s.head_begin, s.head_end);
      }
      ctx.self.sink_params |= cond.taint.params;
      const int loop_id = ctx.next_loop_id++;
      ctx.loop_stack.push_back(loop_id);
      Env body_env = env;
      walk_stmts(ctx, body_env, s.body);
      ctx.loop_stack.pop_back();
      env.join(body_env);
      break;
    }
    case Stmt::Kind::kSwitch: {
      scan_throw_points(ctx, s.head_begin, s.head_end);
      scan_sinks(ctx, env, s.head_begin, s.head_end);
      walk_stmts(ctx, env, s.body);
      break;
    }
    case Stmt::Kind::kTry: {
      ++ctx.try_depth;  // caught exceptions are not atomicity hazards
      walk_stmts(ctx, env, s.body);
      --ctx.try_depth;
      walk_stmts(ctx, env, s.else_body);
      break;
    }
    case Stmt::Kind::kReturn: {
      scan_throw_points(ctx, s.head_begin, s.head_end);
      scan_sinks(ctx, env, s.head_begin, s.head_end);
      const EvalResult r = eval_expr(ctx, env, s.head_begin, s.head_end);
      ctx.self.returns.join(r.taint);
      break;
    }
    case Stmt::Kind::kThrow: {
      bool decode_error = false;
      for (std::size_t i = s.head_begin; i < s.head_end; ++i) {
        if (is_ident(toks[i], "DecodeError")) decode_error = true;
      }
      if (decode_error && ctx.try_depth == 0) {
        ctx.self.may_throw = true;
        record_event(ctx, true, std::string(),
                     s.head_begin < toks.size() ? toks[s.head_begin].line
                                                : ctx.fn->line);
      }
      break;
    }
    case Stmt::Kind::kJump:
      break;
  }
}

inline void walk_stmts(FnCtx& ctx, Env& env, const std::vector<Stmt>& stmts) {
  for (const Stmt& s : stmts) walk_stmt(ctx, env, s);
}

// ---------------------------------------------------------------------------
// Per-function analysis: one walk computes the summary; on the emitting
// pass it also produces wire-taint findings (during the walk) and
// decode-atomicity findings (from the event stream afterwards).

inline Summary analyze_function(const std::vector<Token>& toks,
                                const Function& fn, SummaryMap& summaries,
                                const std::string& file,
                                const Suppressions* sup,
                                std::vector<Finding>* out) {
  FnCtx ctx;
  ctx.toks = &toks;
  ctx.fn = &fn;
  ctx.summaries = &summaries;
  ctx.file = &file;
  ctx.sup = sup;
  ctx.out = out;

  Env env;
  for (std::size_t i = 0; i < fn.params.size() && i < 64; ++i) {
    if (fn.params[i].empty()) continue;
    Taint t;
    t.params = 1ULL << i;
    env.vars[fn.params[i]] = t;
  }
  walk_stmts(ctx, env, fn.stmts);

  // decode-atomicity: a member mutation is hazardous when a potential
  // DecodeError throw point follows it in statement order, or shares an
  // enclosing loop (the next iteration may throw after this one mutated).
  // Constructors are exempt: a throwing constructor discards the object.
  if (out != nullptr && !fn.is_ctor_or_dtor) {
    std::set<std::string> flagged;
    for (const Event& m : ctx.events) {
      if (m.is_throw || flagged.count(m.name) != 0) continue;
      bool hazard = false;
      for (const Event& t : ctx.events) {
        if (!t.is_throw) continue;
        if (t.order > m.order) {
          hazard = true;
          break;
        }
        for (int loop : t.loops) {
          if (std::find(m.loops.begin(), m.loops.end(), loop) !=
              m.loops.end()) {
            hazard = true;
            break;
          }
        }
        if (hazard) break;
      }
      if (hazard) {
        flagged.insert(m.name);
        FnCtx report = ctx;  // reuse the finding helper with ctx state
        add_flow_finding(
            report, "decode-atomicity", m.line,
            "member '" + m.name + "' is mutated in '" + fn.display +
                "' before a later potential DecodeError throw point — a "
                "malformed input leaves partial state; stage into locals "
                "and commit after the last throw (copy-then-swap)",
            "atomicity:" + fn.name + ":" + m.name);
      }
    }
  }
  return ctx.self;
}

// ---------------------------------------------------------------------------
// Layering scan over the include directives of one lexed file.

inline void scan_layering(const std::vector<Token>& toks,
                          const std::string& file, const Suppressions& sup,
                          std::vector<Finding>& out) {
  const int from_rank = file_layer_rank(file);
  if (from_rank < 0) return;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_punct(toks[i], "#") || !is_ident(toks[i + 1], "include") ||
        toks[i + 2].kind != TokKind::kString) {
      continue;
    }
    const std::string& quoted = toks[i + 2].text;
    if (quoted.size() < 2) continue;
    const std::string inc = quoted.substr(1, quoted.size() - 2);
    const int to_rank = layer_rank(first_path_component(inc));
    if (to_rank < 0 || to_rank <= from_rank) continue;
    const lint::RuleSpec* spec = lint::find_flow_rule("layering");
    Finding f;
    f.rule = "layering";
    f.severity = spec->severity;
    f.file = file;
    f.line = toks[i].line;
    f.message = "'" + file + "' (layer rank " + std::to_string(from_rank) +
                ") includes '" + inc + "' (rank " + std::to_string(to_rank) +
                "): lower layers must not depend on higher ones";
    f.suppressed = lint::suppressed_at(sup, f.rule, f.line);
    f.fingerprint = "includes:" + inc;
    out.push_back(std::move(f));
  }
}

inline bool in_flow_scope(const std::string& path) {
  return path.rfind("src/", 0) == 0;
}

}  // namespace flow_detail

// ---------------------------------------------------------------------------
// Entry point. Lexes and parses every file, builds interprocedural
// summaries over the src/ scope to a fixpoint (three joins — enough for the
// call-depths in this tree), then emits findings, applies the baseline and
// summarizes. Deterministic: files are processed in the given order and
// findings are fully sorted.

inline FlowResult analyze(const std::vector<SourceFile>& files,
                          const FlowOptions& opts = {}) {
  using namespace flow_detail;

  struct FileState {
    const SourceFile* src = nullptr;
    LexedFile lexed;
    Suppressions sup;
    std::vector<Function> fns;
  };
  std::vector<FileState> states;
  states.reserve(files.size());
  for (const SourceFile& f : files) {
    FileState st;
    st.src = &f;
    st.lexed = lint::lex(f.content);
    st.sup = lint::collect_suppressions(st.lexed, f.path, "pdsflow");
    if (in_flow_scope(f.path)) {
      st.fns = collect_functions(st.lexed.tokens);
    }
    states.push_back(std::move(st));
  }

  // Summary fixpoint: joins are monotone, so a few rounds suffice for the
  // transitive call chains in this tree.
  SummaryMap summaries;
  for (int round = 0; round < 3; ++round) {
    for (const FileState& st : states) {
      for (const Function& fn : st.fns) {
        const Summary s = analyze_function(st.lexed.tokens, fn, summaries,
                                           st.src->path, nullptr, nullptr);
        Summary& merged = summaries[fn.name];
        merged.returns.join(s.returns);
        merged.sink_params |= s.sink_params;
        merged.may_throw = merged.may_throw || s.may_throw;
      }
    }
  }

  // Emitting pass.
  std::vector<Finding> findings;
  for (const FileState& st : states) {
    findings.insert(findings.end(), st.sup.bad.begin(), st.sup.bad.end());
    scan_layering(st.lexed.tokens, st.src->path, st.sup, findings);
    for (const Function& fn : st.fns) {
      analyze_function(st.lexed.tokens, fn, summaries, st.src->path, &st.sup,
                       &findings);
    }
  }

  // Baseline: match on (rule, file, fingerprint); matched findings count as
  // suppressed but stay in the report flagged `baselined`.
  std::set<std::tuple<std::string, std::string, std::string>> baseline;
  for (const BaselineEntry& b : opts.baseline) {
    baseline.insert({b.rule, b.file, b.fingerprint});
  }
  for (Finding& f : findings) {
    if (!f.suppressed && !f.fingerprint.empty() &&
        baseline.count({f.rule, f.file, f.fingerprint}) != 0) {
      f.suppressed = true;
      f.baselined = true;
    }
  }

  lint::sort_findings(findings);
  FlowResult res;
  res.summary = lint::summarize(findings, static_cast<int>(files.size()));
  res.findings = std::move(findings);
  return res;
}

// Machine-readable findings report (schema pds-flow-report/1), shaped like
// pds-lint-report/1 plus per-finding fingerprints.
inline std::string render_flow_json(const FlowResult& res) {
  return lint::render_findings_json(lint::kFlowReportSchema, lint::kFlowRules,
                                    res.findings, res.summary);
}

}  // namespace pds::flow
