// trace_check — validates an NDJSON trace against the event schema catalog.
//
//   trace_check <trace.ndjson>      (or: trace_check - < trace.ndjson)
//
// Checks, in order:
//  * every line parses as a tracer NDJSON object;
//  * timestamps are non-negative and non-decreasing;
//  * ph is one of B/E/i and allowed for the event;
//  * every (sub, ev) pair appears in tools/trace_schema.h;
//  * each event carries its required payload keys;
//  * B/E spans balance per (node, sub, ev).
//
// Exit status 0 = valid, 1 = violations found (first few printed), 2 = usage
// or I/O error. CI runs this over a traced integration scenario.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "tools/trace_reader.h"
#include "tools/trace_schema.h"

namespace pds::tools {
namespace {

constexpr std::size_t kMaxReported = 20;

struct Checker {
  std::size_t violations = 0;

  void report(std::size_t line_no, const std::string& what) {
    ++violations;
    if (violations <= kMaxReported) {
      std::fprintf(stderr, "trace_check: line %zu: %s\n", line_no,
                   what.c_str());
    }
  }
};

const EventSchema* find_schema(const ParsedEvent& event) {
  for (const EventSchema& schema : kEventCatalog) {
    if (event.sub == schema.sub && event.ev == schema.ev) return &schema;
  }
  return nullptr;
}

int check(std::istream& is) {
  std::size_t bad_line = 0;
  const std::vector<ParsedEvent> events = read_trace(is, bad_line);
  Checker checker;
  if (bad_line != 0) {
    checker.report(bad_line, "malformed NDJSON line");
  }

  std::int64_t prev_t = -1;
  // Open span count per (node, sub, ev).
  std::map<std::tuple<std::uint32_t, std::string, std::string>, long> open;
  for (std::size_t idx = 0; idx < events.size(); ++idx) {
    const ParsedEvent& event = events[idx];
    const std::size_t line_no = idx + 1;
    if (event.sub == "trace" && event.ev == "drops") {
      // Ring-overflow trailer: the tracer discarded events, so any analysis
      // of this capture is silently incomplete — that is always a failure.
      // The trailer carries t=0 / an invalid node, so it skips the ordering
      // checks below.
      const std::string* count = event.arg("count");
      checker.report(line_no, "tracer dropped " +
                                  (count ? *count : std::string("?")) +
                                  " event(s) (ring buffer overflow)");
      continue;
    }
    if (event.t_us < 0) {
      checker.report(line_no, "negative timestamp");
    }
    if (event.t_us < prev_t) {
      checker.report(line_no, "timestamp decreased (events must be emitted "
                              "in simulation order)");
    }
    prev_t = event.t_us;
    if (event.ph != 'B' && event.ph != 'E' && event.ph != 'i') {
      checker.report(line_no, "bad phase '" + std::string(1, event.ph) + "'");
      continue;
    }
    const EventSchema* schema = find_schema(event);
    if (schema == nullptr) {
      checker.report(line_no,
                     "unknown event " + event.sub + "/" + event.ev);
      continue;
    }
    if (std::strchr(schema->phases, event.ph) == nullptr) {
      checker.report(line_no, "phase '" + std::string(1, event.ph) +
                                  "' not allowed for " + event.sub + "/" +
                                  event.ev);
    }
    const auto& required =
        event.ph == 'E' ? schema->end_keys : schema->begin_keys;
    for (const char* key : required) {
      if (key != nullptr && event.arg(key) == nullptr) {
        checker.report(line_no, event.sub + "/" + event.ev +
                                    " missing required arg \"" + key + "\"");
      }
    }
    if (event.ph == 'B') {
      ++open[{event.node, event.sub, event.ev}];
    } else if (event.ph == 'E') {
      long& count = open[{event.node, event.sub, event.ev}];
      if (count == 0) {
        checker.report(line_no, "span end without matching begin for " +
                                    event.sub + "/" + event.ev);
      } else {
        --count;
      }
    }
  }
  // A horizon can legitimately cut a run mid-span, so unclosed spans warn
  // rather than fail (span ends without a begin still fail above).
  for (const auto& [key, count] : open) {
    if (count != 0) {
      std::fprintf(stderr,
                   "trace_check: warning: %ld unclosed %s/%s span(s) at "
                   "node %u\n",
                   count, std::get<1>(key).c_str(), std::get<2>(key).c_str(),
                   std::get<0>(key));
    }
  }

  if (checker.violations > 0) {
    std::fprintf(stderr, "trace_check: %zu violation(s) in %zu event(s)\n",
                 checker.violations, events.size());
    return 1;
  }
  std::printf("trace_check: OK (%zu events)\n", events.size());
  return 0;
}

int run_main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: trace_check <trace.ndjson | ->\n");
    return 2;
  }
  if (std::strcmp(argv[1], "-") == 0) return check(std::cin);
  std::ifstream file(argv[1]);
  if (!file) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", argv[1]);
    return 2;
  }
  return check(file);
}

}  // namespace
}  // namespace pds::tools

int main(int argc, char** argv) { return pds::tools::run_main(argc, argv); }
