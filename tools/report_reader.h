// Minimal recursive-descent JSON reader for the documents obs::Report emits
// (BENCH_<experiment>.json, schema pds-bench-report/1). Unlike
// trace_reader.h (flat NDJSON lines), report JSON nests objects and arrays,
// so this parses a full value tree. Object member order is preserved —
// pdsreport re-renders tables in emission order. Intentionally not a
// general-purpose JSON library: no surrogate pairs, UTF-8 passed through.
#pragma once

#include <cctype>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pds::tools {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;  // string contents, or the raw number token
  std::vector<JsonValue> items;                            // array
  std::vector<std::pair<std::string, JsonValue>> members;  // object

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }

  // Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  // Renders the value the way a table cell would show it: strings verbatim,
  // numbers as their raw token, booleans as true/false.
  [[nodiscard]] std::string display() const {
    switch (type) {
      case Type::kString:
        return text;
      case Type::kNumber:
        return text;
      case Type::kBool:
        return boolean ? "true" : "false";
      default:
        return "null";
    }
  }
};

namespace report_detail {

inline constexpr int kMaxDepth = 32;

inline void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                          s[i] == '\r')) {
    ++i;
  }
}

inline bool fail(std::string* error, const std::string& message) {
  if (error != nullptr && error->empty()) *error = message;
  return false;
}

inline bool parse_string(const std::string& s, std::size_t& i,
                         std::string& out, std::string* error) {
  if (i >= s.size() || s[i] != '"') return fail(error, "expected string");
  ++i;
  while (i < s.size() && s[i] != '"') {
    char c = s[i++];
    if (c == '\\') {
      if (i >= s.size()) return fail(error, "truncated escape");
      const char esc = s[i++];
      switch (esc) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'b': c = '\b'; break;
        case 'f': c = '\f'; break;
        case 'r': c = '\r'; break;
        case 'u': {
          if (i + 4 > s.size()) return fail(error, "truncated \\u escape");
          c = static_cast<char>(
              std::strtol(s.substr(i, 4).c_str(), nullptr, 16));
          i += 4;
          break;
        }
        default:
          c = esc;
      }
    }
    out.push_back(c);
  }
  if (i >= s.size()) return fail(error, "unterminated string");
  ++i;  // closing quote
  return true;
}

bool parse_value(const std::string& s, std::size_t& i, JsonValue& out,
                 int depth, std::string* error);

inline bool parse_object(const std::string& s, std::size_t& i, JsonValue& out,
                         int depth, std::string* error) {
  out.type = JsonValue::Type::kObject;
  ++i;  // '{'
  skip_ws(s, i);
  if (i < s.size() && s[i] == '}') {
    ++i;
    return true;
  }
  while (true) {
    skip_ws(s, i);
    std::string key;
    if (!parse_string(s, i, key, error)) return false;
    skip_ws(s, i);
    if (i >= s.size() || s[i] != ':') return fail(error, "expected ':'");
    ++i;
    JsonValue value;
    if (!parse_value(s, i, value, depth + 1, error)) return false;
    out.members.emplace_back(std::move(key), std::move(value));
    skip_ws(s, i);
    if (i >= s.size()) return fail(error, "unterminated object");
    if (s[i] == ',') {
      ++i;
      continue;
    }
    if (s[i] == '}') {
      ++i;
      return true;
    }
    return fail(error, "expected ',' or '}'");
  }
}

inline bool parse_array(const std::string& s, std::size_t& i, JsonValue& out,
                        int depth, std::string* error) {
  out.type = JsonValue::Type::kArray;
  ++i;  // '['
  skip_ws(s, i);
  if (i < s.size() && s[i] == ']') {
    ++i;
    return true;
  }
  while (true) {
    JsonValue value;
    if (!parse_value(s, i, value, depth + 1, error)) return false;
    out.items.push_back(std::move(value));
    skip_ws(s, i);
    if (i >= s.size()) return fail(error, "unterminated array");
    if (s[i] == ',') {
      ++i;
      continue;
    }
    if (s[i] == ']') {
      ++i;
      return true;
    }
    return fail(error, "expected ',' or ']'");
  }
}

inline bool parse_value(const std::string& s, std::size_t& i, JsonValue& out,
                        int depth, std::string* error) {
  if (depth > kMaxDepth) return fail(error, "nesting too deep");
  skip_ws(s, i);
  if (i >= s.size()) return fail(error, "unexpected end of input");
  const char c = s[i];
  if (c == '{') return parse_object(s, i, out, depth, error);
  if (c == '[') return parse_array(s, i, out, depth, error);
  if (c == '"') {
    out.type = JsonValue::Type::kString;
    return parse_string(s, i, out.text, error);
  }
  if (s.compare(i, 4, "true") == 0) {
    out.type = JsonValue::Type::kBool;
    out.boolean = true;
    i += 4;
    return true;
  }
  if (s.compare(i, 5, "false") == 0) {
    out.type = JsonValue::Type::kBool;
    out.boolean = false;
    i += 5;
    return true;
  }
  if (s.compare(i, 4, "null") == 0) {
    out.type = JsonValue::Type::kNull;
    i += 4;
    return true;
  }
  // Number token.
  const std::size_t start = i;
  if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
  while (i < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[i])) != 0 || s[i] == '.' ||
          s[i] == 'e' || s[i] == 'E' || s[i] == '-' || s[i] == '+')) {
    ++i;
  }
  if (i == start) return fail(error, "unexpected character");
  out.type = JsonValue::Type::kNumber;
  out.text = s.substr(start, i - start);
  out.number = std::atof(out.text.c_str());
  return true;
}

}  // namespace report_detail

// Parses a full JSON document; nullopt (with `error` set, if given) on
// malformed input or trailing garbage.
inline std::optional<JsonValue> parse_json(const std::string& text,
                                           std::string* error = nullptr) {
  JsonValue root;
  std::size_t i = 0;
  if (!report_detail::parse_value(text, i, root, 0, error)) {
    return std::nullopt;
  }
  report_detail::skip_ws(text, i);
  if (i != text.size()) {
    report_detail::fail(error, "trailing characters after document");
    return std::nullopt;
  }
  return root;
}

}  // namespace pds::tools
