// Trace event schema catalog (DESIGN.md §9).
//
// Every event the instrumented subsystems may emit, with its allowed phases
// and required payload keys. tools/trace_check validates NDJSON traces
// against this table; keep it in sync with the PDS_TRACE_* sites in
// src/sim/radio.cc, src/net/transport.cc and src/core/*.cc.
#pragma once

#include <array>
#include <cstddef>

namespace pds::tools {

struct EventSchema {
  const char* sub;     // subsystem ("pdd", "lq", ...)
  const char* ev;      // event name
  const char* phases;  // allowed phase characters, e.g. "i" or "BE"
  // Required arg keys for phase B/i (begin_keys) and E (end_keys); extra
  // keys beyond the required set are allowed (e.g. flood/suppress "copies").
  std::array<const char*, 4> begin_keys;
  std::array<const char*, 4> end_keys;
};

// Shorthand: nullptr-padded key lists.
inline constexpr std::array<const char*, 4> keys(const char* a = nullptr,
                                                 const char* b = nullptr,
                                                 const char* c = nullptr,
                                                 const char* d = nullptr) {
  return {a, b, c, d};
}

inline constexpr std::array<EventSchema, 51> kEventCatalog = {{
    // -- PDD discovery round lifecycle (§IV-B) -------------------------------
    {"pdd", "round", "BE", keys("round", "arrivals"),
     keys("round", "new", "total", "responses")},
    {"pdd", "round_backoff", "i", keys("round", "delay_us"), keys()},
    {"pdd", "session_done", "i", keys("rounds", "total"), keys()},
    {"pdd", "serve", "i", keys("query", "entries"), keys()},
    {"pdd", "deliver_local", "i", keys("query", "entries"), keys()},
    {"pdd", "mixedcast", "i", keys("receivers", "union"), keys()},
    // -- Lingering query table (§IV-C) ---------------------------------------
    {"lq", "query_install", "i", keys("query", "upstream", "ttl"), keys()},
    {"lq", "query_duplicate", "i", keys("query"), keys()},
    {"lq", "query_forward", "i", keys("query", "ttl"), keys()},
    {"lq", "rewrite", "i", keys("query", "keys_added"), keys()},
    {"lq", "expired", "i", keys("count"), keys()},
    // -- Counter-based flooding (§IV-A) --------------------------------------
    {"flood", "forward", "i", keys("query", "copies"), keys()},
    {"flood", "suppress", "i", keys("query", "reason"), keys()},
    // -- PDR retrieval: CDI phase + chunk assignment (§V) --------------------
    {"pdr", "cdi_round", "i", keys("round"), keys()},
    {"pdr", "cdi_done", "i", keys("rounds", "missing"), keys()},
    {"pdr", "plan", "i", keys("missing", "neighbors", "unroutable"), keys()},
    {"pdr", "assign", "i", keys("neighbor", "chunks"), keys()},
    {"pdr", "chunk_arrival", "i", keys("chunk", "have", "total"), keys()},
    {"pdr", "session_done", "i", keys("complete", "chunks", "total"), keys()},
    // -- MDR baseline (§VI-B.3) ----------------------------------------------
    {"mdr", "round", "i", keys("round", "missing"), keys()},
    // -- Per-hop transport (§V.2/V.4) ----------------------------------------
    {"transport", "fragments", "i", keys("count", "bytes"), keys()},
    {"transport", "retransmit", "i", keys("round", "awaiting"), keys()},
    {"transport", "give_up", "i", keys("round", "awaiting"), keys()},
    {"transport", "drop_overflow", "i", keys("bytes"), keys()},
    // -- Radio medium --------------------------------------------------------
    {"radio", "tx", "i", keys("bytes", "control"), keys()},
    {"radio", "defer", "i", keys("wait_us"), keys()},
    {"radio", "collision", "i", keys("bytes"), keys()},
    {"radio", "os_drop", "i", keys("bytes"), keys()},
    // -- Fault injection & graceful degradation (DESIGN.md §11) --------------
    {"fault", "crash", "i", keys("wipe"), keys()},
    {"fault", "restart", "i", keys(), keys()},
    {"fault", "link_degrade", "i", keys("peer", "loss_pct"), keys()},
    {"fault", "link_restore", "i", keys("peer"), keys()},
    {"fault", "partition", "i", keys("pairs"), keys()},
    {"fault", "heal", "i", keys("pairs"), keys()},
    {"fault", "burst_on", "i", keys("loss_bad_pct"), keys()},
    {"fault", "burst_off", "i", keys(), keys()},
    {"fault", "storm", "i", keys("frames", "bytes"), keys()},
    {"fault", "peer_unreachable", "i", keys("peer"), keys()},
    {"fault", "pdd_purge", "i", keys("upstream", "queries"), keys()},
    {"fault", "pdr_purge", "i", keys("upstream", "queries", "cdi"), keys()},
    {"fault", "redispatch", "i", keys("peer", "missing"), keys()},
    // -- Causal cross-node spans (DESIGN.md §14) -----------------------------
    // Span ids are (node+1)<<40 | per-node sequence; "parent" links the event
    // to the span that caused it, letting tools/trace_causal stitch per-node
    // rings into one DAG. "trace" is the owning consumer session's first
    // query id.
    {"causal", "root", "i", keys("trace", "span", "kind"), keys()},
    {"causal", "round", "i", keys("trace", "span", "parent", "round"), keys()},
    {"causal", "tx", "i", keys("trace", "span", "parent", "hop"), keys()},
    {"causal", "recv", "i", keys("trace", "span", "parent", "hop"), keys()},
    {"causal", "deliver", "i", keys("trace", "span", "parent"), keys()},
    {"causal", "suppress", "i", keys("trace", "span", "parent", "reason"),
     keys()},
    {"causal", "overhear", "i", keys("trace", "span", "parent"), keys()},
    // One per on-air frame carrying a traced message; "span" names the tx
    // span whose payload went out, so >1 xmit per span = retransmissions.
    // Extra keys: "us" (airtime), "node" is the transmitting hop.
    {"causal", "xmit", "i", keys("trace", "span", "round", "bytes"), keys()},
    // -- Tracer self-reporting -----------------------------------------------
    // Synthetic trailer appended by Tracer::write_ndjson when the ring
    // buffer evicted events; analyzers treat its presence as truncation.
    {"trace", "drops", "i", keys("count"), keys()},
    // -- Microbenchmark-only events ------------------------------------------
    // bench/micro_primitives measures the PDS_TRACE_* macro overhead with a
    // synthetic event; registered so the trace-schema lint covers it.
    {"bench", "tick", "i", keys("i"), keys()},
}};

}  // namespace pds::tools
