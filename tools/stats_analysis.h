// Reader + summarizer for pds-timeseries/1 NDJSON files (DESIGN.md §15).
//
// Shared between `pdscli stats` and the bench binaries so the numbers a
// bench folds into its report's "stats" section are computed by exactly the
// code path a user sees on the command line — the same round-trip discipline
// bench_common.h's CausalCapture established for causal traces.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "tools/report_reader.h"

namespace pds::tools {

inline constexpr const char* kTimeSeriesSchemaName = "pds-timeseries/1";

struct SeriesColumn {
  std::string name;
  std::string kind;  // "sim" | "wall"
};

struct SeriesRow {
  std::int64_t t_us = 0;
  std::vector<double> v;
};

struct ProfileEntry {
  std::string path;
  int depth = 0;
  std::int64_t ns = 0;
  std::uint64_t calls = 0;
};

struct ParsedSeries {
  std::int64_t interval_us = 0;
  std::vector<SeriesColumn> columns;
  std::vector<SeriesRow> rows;
  std::vector<ProfileEntry> profile;  // optional trailing profile line
};

// Parses a pds-timeseries/1 NDJSON document: a header line, zero or more row
// lines, and at most one trailing `{"profile":[...]}` line. nullopt (with
// `error` set when given) on any malformed or out-of-schema line.
inline std::optional<ParsedSeries> parse_timeseries(const std::string& text,
                                                    std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr && error->empty()) *error = message;
    return std::nullopt;
  };
  ParsedSeries out;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string parse_error;
    const std::optional<JsonValue> root = parse_json(line, &parse_error);
    if (!root.has_value() || !root->is_object()) {
      return fail("bad NDJSON line: " + parse_error);
    }
    if (!saw_header) {
      const JsonValue* schema = root->find("schema");
      if (schema == nullptr || schema->text != kTimeSeriesSchemaName) {
        return fail(std::string("header schema must be ") +
                    kTimeSeriesSchemaName);
      }
      const JsonValue* interval = root->find("interval_us");
      const JsonValue* columns = root->find("columns");
      if (interval == nullptr || !interval->is_number() ||
          interval->number <= 0) {
        return fail("header missing positive interval_us");
      }
      if (columns == nullptr || !columns->is_array()) {
        return fail("header missing columns array");
      }
      out.interval_us = static_cast<std::int64_t>(interval->number);
      for (const JsonValue& c : columns->items) {
        const JsonValue* name = c.find("name");
        const JsonValue* kind = c.find("kind");
        if (name == nullptr || kind == nullptr ||
            (kind->text != "sim" && kind->text != "wall")) {
          return fail("bad column entry");
        }
        out.columns.push_back(SeriesColumn{name->text, kind->text});
      }
      saw_header = true;
      continue;
    }
    if (const JsonValue* profile = root->find("profile")) {
      if (!profile->is_array()) return fail("profile must be an array");
      for (const JsonValue& e : profile->items) {
        const JsonValue* path = e.find("path");
        const JsonValue* ns = e.find("ns");
        const JsonValue* calls = e.find("calls");
        if (path == nullptr || ns == nullptr || calls == nullptr) {
          return fail("bad profile entry");
        }
        ProfileEntry entry;
        entry.path = path->text;
        entry.depth = static_cast<int>(
            std::count(entry.path.begin(), entry.path.end(), '/'));
        entry.ns = static_cast<std::int64_t>(ns->number);
        entry.calls = static_cast<std::uint64_t>(calls->number);
        out.profile.push_back(std::move(entry));
      }
      continue;
    }
    const JsonValue* t_us = root->find("t_us");
    const JsonValue* v = root->find("v");
    if (t_us == nullptr || !t_us->is_number() || v == nullptr ||
        !v->is_array()) {
      return fail("row needs t_us and v");
    }
    if (v->items.size() != out.columns.size()) {
      return fail("row width does not match header columns");
    }
    SeriesRow row;
    row.t_us = static_cast<std::int64_t>(t_us->number);
    row.v.reserve(v->items.size());
    for (const JsonValue& x : v->items) {
      if (!x.is_number()) return fail("row values must be numbers");
      row.v.push_back(x.number);
    }
    out.rows.push_back(std::move(row));
  }
  if (!saw_header) return fail("empty series (no header line)");
  return out;
}

inline std::optional<ParsedSeries> read_timeseries(const std::string& path,
                                                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr && error->empty()) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_timeseries(buf.str(), error);
}

// Per-column summary: peak, time-to-peak, mean, tail percentiles, last value.
struct SeriesSummary {
  std::string name;
  std::string kind;
  double peak = 0.0;
  std::int64_t t_peak_us = 0;  // first row at which the peak was seen
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double last = 0.0;
};

// Linear-interpolated percentile over a sorted copy (p in [0, 100]).
inline double series_percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const double rank =
      p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

inline std::vector<SeriesSummary> summarize_series(const ParsedSeries& s) {
  std::vector<SeriesSummary> out;
  for (std::size_t c = 0; c < s.columns.size(); ++c) {
    SeriesSummary sum;
    sum.name = s.columns[c].name;
    sum.kind = s.columns[c].kind;
    std::vector<double> values;
    values.reserve(s.rows.size());
    double total = 0.0;
    for (const SeriesRow& row : s.rows) {
      const double v = row.v[c];
      values.push_back(v);
      total += v;
      if (v > sum.peak || values.size() == 1) {
        sum.peak = v;
        sum.t_peak_us = row.t_us;
      }
    }
    if (!values.empty()) {
      sum.mean = total / static_cast<double>(values.size());
      sum.p50 = series_percentile(values, 50.0);
      sum.p95 = series_percentile(values, 95.0);
      sum.p99 = series_percentile(values, 99.0);
      sum.last = values.back();
    }
    out.push_back(std::move(sum));
  }
  return out;
}

// Column index by name; -1 when absent.
inline int series_column(const ParsedSeries& s, const std::string& name) {
  for (std::size_t i = 0; i < s.columns.size(); ++i) {
    if (s.columns[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

// Channel utilization per interval, derived from the cumulative airtime
// column: util[i] = (air_us[i] - air_us[i-1]) / interval — the average
// number of concurrent transmissions over the interval. Empty when the
// airtime column is missing.
inline std::vector<double> channel_utilization(const ParsedSeries& s) {
  std::vector<double> out;
  const int col = series_column(s, "radio.air_us");
  if (col < 0 || s.interval_us <= 0) return out;
  double prev = 0.0;
  for (const SeriesRow& row : s.rows) {
    const double cur = row.v[static_cast<std::size_t>(col)];
    out.push_back((cur - prev) / static_cast<double>(s.interval_us));
    prev = cur;
  }
  return out;
}

}  // namespace pds::tools
