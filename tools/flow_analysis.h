// pdsflow rule engine (DESIGN.md §17): flow-sensitive static analysis over
// the repo's pragmatic C++ subset, built on the same dependency-free lexer
// as pdslint (tools/lint_lexer.h) plus a declaration/statement parser with
// per-function statement trees and def-use taint tracking.
//
// Three rule families:
//
//   wire-taint       — values originating from ByteReader/varint getters
//                      (get_u8 ... get_varint, get_string, get_bytes) are
//                      tainted until compared against a bound; tainted
//                      values must not reach resize/reserve/assign-count,
//                      new[] extents, index expressions or loop bounds.
//                      Interprocedural via per-function summaries: taint
//                      through locals, arguments and return values.
//   decode-atomicity — a function that can throw DecodeError must not
//                      mutate member state (`x_`, `this->x`, references
//                      bound to members, container mutators) before a later
//                      potential-throw point; copy-then-swap passes.
//   layering         — the include graph must follow the architecture DAG
//                      (common < util < obs < sim < net < core < workload
//                      < tools < bench/tests/examples); grandfathered edges
//                      live in a checked-in baseline file.
//
// Scope: wire-taint and decode-atomicity run only over files under src/
// (tests construct malformed inputs on purpose); layering covers the whole
// tree. Suppress with a pdsflow:allow comment naming rule ids in
// parentheses on or above the line, or the pdsflow:allow-file form
// file-wide — audited exactly like pdslint's tags (lint_common.h).
// PDS_ENSURE aborts rather than throwing,
// so it counts as validation for taint but never as a throw point.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "tools/lint_common.h"
#include "tools/lint_lexer.h"

namespace pds::flow {

using lint::Finding;
using lint::LexedFile;
using lint::LintSummary;
using lint::Severity;
using lint::Suppressions;
using lint::Token;
using lint::TokKind;

// One input to analyze(); `path` is the repo-relative display path and
// decides rule scoping (src/ vs the rest).
struct SourceFile {
  std::string path;
  std::string content;
};

// One waived finding: matches on (rule, file, fingerprint), never on line
// numbers, so unrelated edits don't invalidate the baseline.
struct BaselineEntry {
  std::string rule;
  std::string file;
  std::string fingerprint;
};

struct FlowOptions {
  std::vector<BaselineEntry> baseline;
};

struct FlowResult {
  std::vector<Finding> findings;
  LintSummary summary;
};

// ---------------------------------------------------------------------------
// Baseline file format: `<rule> <file> <fingerprint>` per line, `#` comments.

inline std::vector<BaselineEntry> parse_baseline(std::string_view text) {
  std::vector<BaselineEntry> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    // split on runs of spaces/tabs
    std::vector<std::string> fields;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
      std::size_t b = i;
      while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
      if (i > b) fields.emplace_back(line.substr(b, i - b));
    }
    if (fields.empty() || fields[0][0] == '#') {
      if (pos > text.size()) break;
      continue;
    }
    if (fields.size() == 3) out.push_back({fields[0], fields[1], fields[2]});
    if (pos > text.size()) break;
  }
  return out;
}

// Regenerates the baseline from findings: every finding that is not waived
// by an inline allow comment (baselined ones included, so the output is a
// full replacement for the checked-in file). Byte-deterministic.
inline std::string render_baseline(const std::vector<Finding>& findings) {
  std::vector<std::string> lines;
  for (const Finding& f : findings) {
    if (f.suppressed && !f.baselined) continue;  // inline-suppressed
    if (f.fingerprint.empty()) continue;
    lines.push_back(f.rule + " " + f.file + " " + f.fingerprint);
  }
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  std::string out =
      "# pdsflow baseline — waived findings, one per line:\n"
      "#   <rule> <file> <fingerprint>\n"
      "# Regenerate with: pdsflow --write-baseline=tools/pdsflow_baseline.txt\n";
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Layering: the architecture DAG. A file may include headers of its own
// layer or lower ranks; an include pointing at a strictly higher rank is a
// back-edge. Paths are matched on their first component (after stripping a
// leading `src/`), so `src/net/codec.cc`, `tools/pdsflow.cc` and
// `tests/foo.cc` all resolve; includes without a known first component
// (same-directory, system, third-party) are exempt.

struct LayerSpec {
  const char* dir;
  int rank;
};

inline constexpr LayerSpec kLayers[] = {
    {"common", 0}, {"util", 1},     {"obs", 2},   {"sim", 3},
    {"net", 4},    {"core", 5},     {"workload", 6}, {"tools", 7},
    {"bench", 8},  {"tests", 8},    {"examples", 8},
};

inline int layer_rank(std::string_view first_component) {
  for (const LayerSpec& l : kLayers) {
    if (first_component == l.dir) return l.rank;
  }
  return -1;
}

inline std::string_view first_path_component(std::string_view path) {
  const std::size_t slash = path.find('/');
  return slash == std::string_view::npos ? std::string_view{}
                                         : path.substr(0, slash);
}

// Layer rank of a repo-relative file path, or -1 when it lives outside the
// layered tree.
inline int file_layer_rank(std::string_view path) {
  if (path.rfind("src/", 0) == 0) path.remove_prefix(4);
  return layer_rank(first_path_component(path));
}

namespace flow_detail {

// ---------------------------------------------------------------------------
// Token helpers.

inline bool is_punct(const Token& t, std::string_view s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

inline bool is_ident(const Token& t, std::string_view s) {
  return t.kind == TokKind::kIdent && t.text == s;
}

// Index of the token matching `open` at `i` (whose text is `open`), or
// `end` when unbalanced. Balances (), {} and [] jointly.
inline std::size_t match_balanced(const std::vector<Token>& toks,
                                  std::size_t i, std::size_t end) {
  int depth = 0;
  for (; i < end; ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    const std::string& t = toks[i].text;
    if (t == "(" || t == "{" || t == "[") ++depth;
    if (t == ")" || t == "}" || t == "]") {
      if (--depth == 0) return i;
    }
  }
  return end;
}

// Skips every token of the preprocessor directive starting at the `#`
// token, including backslash-continued lines. Returns the next index.
inline std::size_t skip_pp_line(const std::vector<Token>& toks,
                                std::size_t i, std::size_t end) {
  int line = toks[i].line;
  while (i < end) {
    if (toks[i].line > line) {
      if (i > 0 && is_punct(toks[i - 1], "\\")) {
        line = toks[i].line;  // continued directive
      } else {
        break;
      }
    }
    ++i;
  }
  return i;
}

inline bool is_control_keyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",     "for",      "while",   "switch",  "catch",   "return",
      "sizeof", "alignof",  "decltype", "noexcept", "new",    "delete",
      "else",   "do",       "case",    "operator", "static_assert",
      "alignas", "defined", "assert",  "throw",   "typeid",  "requires"};
  return kw.count(s) != 0;
}

// ---------------------------------------------------------------------------
// Pragmatic statement parser. The subset: blocks, if/else, for/while/do,
// switch, try/catch, return/throw/break/continue, and "plain" statements
// (declarations, expressions) consumed up to the next top-level `;`.
// Lambdas and nested class bodies inside a plain statement are swallowed
// into it (their tokens are still scanned, flat). Labels and case/default
// markers are skipped.

struct Stmt {
  enum class Kind {
    kPlain,
    kIf,
    kLoop,
    kSwitch,
    kTry,
    kBlock,
    kReturn,
    kThrow,
    kJump,
  };
  Kind kind = Kind::kPlain;
  // Token range of the full statement and of its "head" (the condition of
  // if/loop/switch, the value of return/throw, the whole plain statement).
  std::size_t begin = 0, end = 0;
  std::size_t head_begin = 0, head_end = 0;
  std::vector<Stmt> body;       // then / loop body / block / try body
  std::vector<Stmt> else_body;  // else branch / merged catch bodies
};

inline void parse_stmts(const std::vector<Token>& toks, std::size_t begin,
                        std::size_t end, std::vector<Stmt>& out, int depth);

// Parses one statement starting at `i`; appends zero or one Stmt to `out`
// and returns the index just past it.
inline std::size_t parse_stmt(const std::vector<Token>& toks, std::size_t i,
                              std::size_t end, std::vector<Stmt>& out,
                              int depth) {
  if (i >= end || depth > 64) return end;
  const Token& t = toks[i];

  if (is_punct(t, "#")) return skip_pp_line(toks, i, end);
  if (is_punct(t, ";")) return i + 1;

  if (is_punct(t, "{")) {
    const std::size_t close = match_balanced(toks, i, end);
    Stmt s;
    s.kind = Stmt::Kind::kBlock;
    s.begin = i;
    s.end = close;
    parse_stmts(toks, i + 1, close, s.body, depth + 1);
    out.push_back(std::move(s));
    return close >= end ? end : close + 1;
  }

  if (t.kind == TokKind::kIdent) {
    const std::string& w = t.text;

    if (w == "if") {
      std::size_t j = i + 1;
      if (j < end && is_ident(toks[j], "constexpr")) ++j;
      if (j >= end || !is_punct(toks[j], "(")) return i + 1;
      const std::size_t close = match_balanced(toks, j, end);
      Stmt s;
      s.kind = Stmt::Kind::kIf;
      s.begin = i;
      s.head_begin = j + 1;
      s.head_end = close;
      std::size_t next = parse_stmt(toks, close + 1, end, s.body, depth + 1);
      if (next < end && is_ident(toks[next], "else")) {
        next = parse_stmt(toks, next + 1, end, s.else_body, depth + 1);
      }
      s.end = next;
      out.push_back(std::move(s));
      return next;
    }

    if (w == "for" || w == "while") {
      std::size_t j = i + 1;
      if (j >= end || !is_punct(toks[j], "(")) return i + 1;
      const std::size_t close = match_balanced(toks, j, end);
      Stmt s;
      s.kind = Stmt::Kind::kLoop;
      s.begin = i;
      if (w == "while") {
        s.head_begin = j + 1;
        s.head_end = close;
      } else {
        // for (init; cond; step) — the head is the condition. A range-for
        // (top-level `:`) has no numeric bound; its head stays empty.
        std::size_t semi1 = close, semi2 = close;
        int d = 0;
        for (std::size_t k = j; k < close; ++k) {
          if (toks[k].kind != TokKind::kPunct) continue;
          const std::string& p = toks[k].text;
          if (p == "(" || p == "{" || p == "[") ++d;
          if (p == ")" || p == "}" || p == "]") --d;
          if (p == ";" && d == 1) {
            if (semi1 == close) {
              semi1 = k;
            } else if (semi2 == close) {
              semi2 = k;
            }
          }
        }
        if (semi1 != close && semi2 != close) {
          s.head_begin = semi1 + 1;
          s.head_end = semi2;
        } else {
          s.head_begin = s.head_end = close;
        }
      }
      const std::size_t next =
          parse_stmt(toks, close + 1, end, s.body, depth + 1);
      s.end = next;
      out.push_back(std::move(s));
      return next;
    }

    if (w == "do") {
      Stmt s;
      s.kind = Stmt::Kind::kLoop;
      s.begin = i;
      std::size_t next = parse_stmt(toks, i + 1, end, s.body, depth + 1);
      if (next < end && is_ident(toks[next], "while") && next + 1 < end &&
          is_punct(toks[next + 1], "(")) {
        const std::size_t close = match_balanced(toks, next + 1, end);
        s.head_begin = next + 2;
        s.head_end = close;
        next = close + 1;
        if (next < end && is_punct(toks[next], ";")) ++next;
      }
      s.end = next;
      out.push_back(std::move(s));
      return next;
    }

    if (w == "switch") {
      std::size_t j = i + 1;
      if (j >= end || !is_punct(toks[j], "(")) return i + 1;
      const std::size_t close = match_balanced(toks, j, end);
      Stmt s;
      s.kind = Stmt::Kind::kSwitch;
      s.begin = i;
      s.head_begin = j + 1;
      s.head_end = close;
      const std::size_t next =
          parse_stmt(toks, close + 1, end, s.body, depth + 1);
      s.end = next;
      out.push_back(std::move(s));
      return next;
    }

    if (w == "try") {
      Stmt s;
      s.kind = Stmt::Kind::kTry;
      s.begin = i;
      std::size_t next = parse_stmt(toks, i + 1, end, s.body, depth + 1);
      while (next < end && is_ident(toks[next], "catch") && next + 1 < end &&
             is_punct(toks[next + 1], "(")) {
        const std::size_t close = match_balanced(toks, next + 1, end);
        next = parse_stmt(toks, close + 1, end, s.else_body, depth + 1);
      }
      s.end = next;
      out.push_back(std::move(s));
      return next;
    }

    if (w == "return" || w == "throw") {
      Stmt s;
      s.kind = w == "return" ? Stmt::Kind::kReturn : Stmt::Kind::kThrow;
      s.begin = i;
      s.head_begin = i + 1;
      std::size_t k = i + 1;
      int d = 0;
      while (k < end) {
        if (toks[k].kind == TokKind::kPunct) {
          const std::string& p = toks[k].text;
          if (p == "(" || p == "{" || p == "[") ++d;
          if (p == ")" || p == "}" || p == "]") {
            if (d == 0) break;
            --d;
          }
          if (p == ";" && d == 0) break;
        }
        ++k;
      }
      s.head_end = k;
      s.end = k < end && is_punct(toks[k], ";") ? k + 1 : k;
      const std::size_t next = s.end;
      out.push_back(std::move(s));
      return next;
    }

    if (w == "break" || w == "continue" || w == "goto") {
      std::size_t k = i + 1;
      while (k < end && !is_punct(toks[k], ";")) ++k;
      Stmt s;
      s.kind = Stmt::Kind::kJump;
      s.begin = i;
      s.end = k < end ? k + 1 : end;
      out.push_back(std::move(s));
      return s.end;
    }

    if (w == "case" || w == "default") {
      // `case expr:` / `default:` — skip the label, no statement emitted
      // (the following statements parse on their own).
      std::size_t k = i + 1;
      int d = 0;
      while (k < end) {
        if (toks[k].kind == TokKind::kPunct) {
          const std::string& p = toks[k].text;
          if (p == "(" || p == "{" || p == "[") ++d;
          if (p == ")" || p == "}" || p == "]") --d;
          if (p == ":" && d == 0) return k + 1;
          if (p == ";" && d == 0) return k + 1;  // malformed; recover
        }
        ++k;
      }
      return end;
    }

    if (w == "else") return i + 1;  // stray else; recover
  }

  // Plain statement: consume to the next top-level `;`. A `}` at depth 0
  // ends the statement without being consumed (recovery at block ends).
  Stmt s;
  s.kind = Stmt::Kind::kPlain;
  s.begin = i;
  s.head_begin = i;
  std::size_t k = i;
  int d = 0;
  while (k < end) {
    if (toks[k].kind == TokKind::kPunct) {
      const std::string& p = toks[k].text;
      if (p == "(" || p == "{" || p == "[") ++d;
      if (p == ")" || p == "]") --d;
      if (p == "}") {
        if (d == 0) break;
        --d;
      }
      if (p == ";" && d == 0) break;
    }
    ++k;
  }
  s.head_end = k;
  s.end = k < end && is_punct(toks[k], ";") ? k + 1 : k;
  const std::size_t next = s.end > i ? s.end : i + 1;
  out.push_back(std::move(s));
  return next;
}

inline void parse_stmts(const std::vector<Token>& toks, std::size_t begin,
                        std::size_t end, std::vector<Stmt>& out, int depth) {
  std::size_t i = begin;
  while (i < end) {
    const std::size_t next = parse_stmt(toks, i, end, out, depth);
    i = next > i ? next : i + 1;
  }
}

// ---------------------------------------------------------------------------
// Function extraction: `name (params) [quals] [ctor-init] {` at any scope.
// Function bodies are not scanned for nested definitions (lambdas belong to
// the enclosing statement).

struct Function {
  std::string name;       // unqualified
  std::string display;    // Class::name when the definition is qualified
  int line = 1;
  std::vector<std::string> params;  // declared parameter names, in order
  std::size_t body_begin = 0, body_end = 0;  // token range inside the braces
  bool is_ctor_or_dtor = false;
  std::vector<Stmt> stmts;
};

// Extracts declared parameter names from the token range between the parens.
inline std::vector<std::string> parse_param_names(
    const std::vector<Token>& toks, std::size_t begin, std::size_t end) {
  std::vector<std::string> names;
  std::size_t arg_start = begin;
  int d = 0;
  for (std::size_t i = begin; i <= end; ++i) {
    const bool at_end = i == end;
    bool boundary = at_end;
    if (!at_end && toks[i].kind == TokKind::kPunct) {
      const std::string& p = toks[i].text;
      if (p == "(" || p == "{" || p == "[" || p == "<") ++d;
      if (p == ")" || p == "}" || p == "]" || p == ">") --d;
      if (p == "," && d == 0) boundary = true;
    }
    if (!boundary) continue;
    // Parameter text is [arg_start, i): cut at a top-level `=` (default
    // argument), then the last identifier is the name.
    std::size_t stop = i;
    int dd = 0;
    for (std::size_t k = arg_start; k < i; ++k) {
      if (toks[k].kind != TokKind::kPunct) continue;
      const std::string& p = toks[k].text;
      if (p == "(" || p == "{" || p == "[" || p == "<") ++dd;
      if (p == ")" || p == "}" || p == "]" || p == ">") --dd;
      if (p == "=" && dd == 0 && k + 1 < i && toks[k + 1].text != "=") {
        stop = k;
        break;
      }
    }
    std::string name;
    for (std::size_t k = stop; k > arg_start; --k) {
      if (toks[k - 1].kind == TokKind::kIdent) {
        name = toks[k - 1].text;
        break;
      }
    }
    if (name == "void" || name == "const") name.clear();
    names.push_back(name);  // may be empty (unnamed param); keeps positions
    arg_start = i + 1;
  }
  // A sole empty entry means `()`.
  if (names.size() == 1 && names[0].empty() && begin == end) names.clear();
  return names;
}

inline std::vector<Function> collect_functions(
    const std::vector<Token>& toks) {
  std::vector<Function> fns;
  const std::size_t n = toks.size();
  std::size_t i = 0;
  while (i < n) {
    if (is_punct(toks[i], "#")) {
      i = skip_pp_line(toks, i, n);
      continue;
    }
    if (toks[i].kind != TokKind::kIdent || is_control_keyword(toks[i].text) ||
        i + 1 >= n || !is_punct(toks[i + 1], "(")) {
      ++i;
      continue;
    }
    if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->") ||
                  is_ident(toks[i - 1], "operator"))) {
      ++i;
      continue;
    }
    const std::size_t name_at = i;
    const std::size_t open = i + 1;
    const std::size_t close = match_balanced(toks, open, n);
    if (close >= n) {
      ++i;
      continue;
    }
    // Qualifier tail after the parameter list.
    std::size_t j = close + 1;
    bool init_list = false;
    while (j < n) {
      const std::string& w = toks[j].text;
      if (toks[j].kind == TokKind::kIdent &&
          (w == "const" || w == "override" || w == "final" ||
           w == "mutable" || w == "volatile")) {
        ++j;
        continue;
      }
      if (is_ident(toks[j], "noexcept")) {
        ++j;
        if (j < n && is_punct(toks[j], "(")) j = match_balanced(toks, j, n) + 1;
        continue;
      }
      if (is_punct(toks[j], "&")) {
        ++j;
        continue;
      }
      if (is_punct(toks[j], "->")) {
        // Trailing return type: scan to the body/terminator.
        ++j;
        while (j < n && !is_punct(toks[j], "{") && !is_punct(toks[j], ";") &&
               !is_punct(toks[j], "=")) {
          ++j;
        }
        continue;
      }
      break;
    }
    if (j < n && is_punct(toks[j], ":")) {
      // Constructor initializer list: `: member(expr), member{expr}, ... {`.
      // Each initializer is a (possibly qualified/templated) name followed
      // by a balanced `(...)` or `{...}`; initializers chain via `,` and
      // the token after the last one is the body `{`.
      init_list = true;
      ++j;
      while (j < n) {
        while (j < n && (toks[j].kind == TokKind::kIdent ||
                         is_punct(toks[j], "::"))) {
          ++j;
        }
        if (j < n && is_punct(toks[j], "<")) {
          int d = 0;
          while (j < n) {
            if (is_punct(toks[j], "<")) ++d;
            if (is_punct(toks[j], ">") && --d == 0) {
              ++j;
              break;
            }
            ++j;
          }
        }
        if (j >= n || (!is_punct(toks[j], "(") && !is_punct(toks[j], "{"))) {
          break;
        }
        j = match_balanced(toks, j, n) + 1;
        if (j < n && is_punct(toks[j], ",")) {
          ++j;
          continue;
        }
        break;
      }
    }
    if (j >= n || !is_punct(toks[j], "{")) {
      ++i;
      continue;
    }
    const std::size_t body_open = j;
    const std::size_t body_close = match_balanced(toks, body_open, n);
    Function fn;
    fn.name = toks[name_at].text;
    fn.display = fn.name;
    fn.line = toks[name_at].line;
    if (name_at >= 2 && is_punct(toks[name_at - 1], "::") &&
        toks[name_at - 2].kind == TokKind::kIdent) {
      fn.display = toks[name_at - 2].text + "::" + fn.name;
      if (toks[name_at - 2].text == fn.name) fn.is_ctor_or_dtor = true;
    }
    if (name_at >= 1 && is_punct(toks[name_at - 1], "~")) {
      fn.is_ctor_or_dtor = true;
    }
    if (init_list) fn.is_ctor_or_dtor = true;
    // Inline constructors with no init list have no return type: the token
    // before the name is `explicit`, a brace/semicolon, or an access label
    // rather than a type.
    if (name_at >= 1) {
      const Token& before = toks[name_at - 1];
      if (is_ident(before, "explicit") || is_punct(before, "{") ||
          is_punct(before, "}") || is_punct(before, ";") ||
          is_punct(before, ":")) {
        fn.is_ctor_or_dtor = true;
      }
    }
    fn.params = parse_param_names(toks, open + 1, close);
    fn.body_begin = body_open + 1;
    fn.body_end = body_close;
    parse_stmts(toks, fn.body_begin, fn.body_end, fn.stmts, 0);
    fns.push_back(std::move(fn));
    i = body_close >= n ? n : body_close + 1;
  }
  return fns;
}

}  // namespace flow_detail

}  // namespace pds::flow

// (part 2: taint/atomicity engines, layering scan and analyze() follow)
#include "tools/flow_engine.h"
