// pdsreport — works over the BENCH_<experiment>.json reports every bench
// binary emits (schema pds-bench-report/1, DESIGN.md §10).
//
//   pdsreport validate <dir|file...>           schema-check reports
//   pdsreport render   <dir|file...>           markdown tables to stdout
//   pdsreport diff     <dirA> <dirB> [--tol=X] compare two result sets
//   pdsreport gate     <dir|file...>           per-experiment shape asserts
//
// validate/gate exit 0 only when every report passes; diff exits 0 only when
// all matched metrics agree within --tol (default 0.05 relative). render is
// what EXPERIMENTS.md's tables are regenerated from. CI runs the smoke bench
// subset, then `pdsreport validate` + `pdsreport gate` over the artifacts.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "tools/report_checks.h"
#include "tools/report_reader.h"

namespace pds::tools {
namespace {

namespace fs = std::filesystem;

int usage() {
  std::fprintf(stderr,
               "usage: pdsreport <validate|render|gate> <dir|file...>\n"
               "       pdsreport diff <dirA> <dirB> [--tol=REL]\n");
  return 2;
}

// Expands each argument: a directory contributes its BENCH_*.json files
// (sorted), anything else is taken as a file path.
std::vector<std::string> collect_reports(const std::vector<std::string>& args,
                                         bool& ok) {
  std::vector<std::string> files;
  ok = true;
  for (const std::string& arg : args) {
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      std::vector<std::string> found;
      for (const auto& entry : fs::directory_iterator(arg, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 &&
            entry.path().extension() == ".json") {
          found.push_back(entry.path().string());
        }
      }
      if (found.empty()) {
        std::fprintf(stderr, "pdsreport: no BENCH_*.json under %s\n",
                     arg.c_str());
        ok = false;
      }
      std::sort(found.begin(), found.end());
      files.insert(files.end(), found.begin(), found.end());
    } else {
      files.push_back(arg);
    }
  }
  return files;
}

// `sidecar`, when non-null, is set to "causal", "stats" or "flow" for
// pds-causal-report/1 / pds-stats-report/1 / pds-flow-report/1 documents
// (which validate against their own schema and produce no ParsedReport).
std::optional<ParsedReport> load_report(const std::string& path,
                                        std::vector<std::string>& errors,
                                        const char** sidecar = nullptr) {
  std::ifstream in(path);
  if (!in) {
    errors.push_back("cannot open " + path);
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string parse_error;
  const std::optional<JsonValue> root = parse_json(buffer.str(), &parse_error);
  if (!root.has_value()) {
    errors.push_back(path + ": " + parse_error);
    return std::nullopt;
  }
  if (const JsonValue* schema = root->find("schema");
      schema != nullptr && schema->is_string()) {
    if (schema->text == kCausalReportSchema) {
      if (sidecar != nullptr) *sidecar = "causal";
      validate_causal_report(*root, errors);
      return std::nullopt;
    }
    if (schema->text == kStatsReportSchema) {
      if (sidecar != nullptr) *sidecar = "stats";
      validate_stats_report(*root, errors);
      return std::nullopt;
    }
    if (schema->text == kFlowReportSchema) {
      if (sidecar != nullptr) *sidecar = "flow";
      validate_flow_report(*root, errors);
      return std::nullopt;
    }
  }
  ParsedReport rep = parse_report(*root, errors);
  // The filename is part of the contract: BENCH_<experiment>.json.
  const std::string expected = "BENCH_" + rep.experiment + ".json";
  if (!rep.experiment.empty() &&
      fs::path(path).filename().string() != expected) {
    errors.push_back(path + ": filename does not match experiment \"" +
                     rep.experiment + "\" (want " + expected + ")");
  }
  return rep;
}

int run_validate(const std::vector<std::string>& files) {
  int bad = 0;
  for (const std::string& path : files) {
    std::vector<std::string> errors;
    const char* sidecar = nullptr;
    load_report(path, errors, &sidecar);
    if (errors.empty()) {
      std::printf("%s: OK%s%s%s\n", path.c_str(), sidecar ? " (" : "",
                  sidecar ? sidecar : "", sidecar ? ")" : "");
    } else {
      ++bad;
      for (const std::string& e : errors) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), e.c_str());
      }
    }
  }
  std::printf("%zu report(s), %d invalid\n", files.size(), bad);
  return bad == 0 ? 0 : 1;
}

int run_gate(const std::vector<std::string>& files) {
  int bad = 0;
  for (const std::string& path : files) {
    std::vector<std::string> errors;
    const char* sidecar = nullptr;
    const std::optional<ParsedReport> rep =
        load_report(path, errors, &sidecar);
    if (sidecar != nullptr && errors.empty()) {
      // Sidecar reports carry no per-experiment shape gates; the DAG-health
      // and flight-recorder gates run against the bench report's "causal"
      // and "stats" sections instead.
      std::printf("%s: PASS (%s report, no gates)\n", path.c_str(), sidecar);
      continue;
    }
    if (!rep.has_value() || !errors.empty()) {
      ++bad;
      for (const std::string& e : errors) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), e.c_str());
      }
      continue;
    }
    const std::vector<GateFailure> failures = run_gates(*rep);
    if (failures.empty()) {
      std::printf("%s: PASS\n", rep->experiment.c_str());
    } else {
      ++bad;
      for (const GateFailure& f : failures) {
        std::fprintf(stderr, "%s: GATE FAIL [%s]: %s\n",
                     f.experiment.c_str(), f.assertion.c_str(),
                     f.detail.c_str());
      }
    }
  }
  std::printf("%zu report(s), %d failing\n", files.size(), bad);
  return bad == 0 ? 0 : 1;
}

// One markdown block per report: title, provenance, run params, then each
// table section as a pipe table (param columns, then metric means with
// stddev when more than one seed contributed).
void render_report(const ParsedReport& rep) {
  std::printf("## %s (`%s`)\n\n", rep.title.c_str(), rep.experiment.c_str());
  std::printf("paper reports: %s\n\n", rep.paper.c_str());
  std::printf("`runs=%d jobs=%d` · git `%s` · %s build · sanitizers: %s",
              rep.runs, rep.jobs, rep.git_sha.c_str(),
              rep.build_type.c_str(), rep.sanitizers.c_str());
  for (const auto& [name, value] : rep.params) {
    std::printf(" · %s=%s", name.c_str(), value.display().c_str());
  }
  std::printf("\n");

  // Group points by section, preserving first-appearance order.
  std::vector<std::string> sections;
  for (const ReportPoint& p : rep.points) {
    if (std::find(sections.begin(), sections.end(), p.section) ==
        sections.end()) {
      sections.push_back(p.section);
    }
  }
  for (const std::string& section : sections) {
    const std::vector<const ReportPoint*> pts = rep.section(section);
    if (pts.empty()) continue;
    std::printf("\n### %s\n\n", section.c_str());
    // Column set = union of param and metric names in emission order.
    std::vector<std::string> param_cols;
    std::vector<std::string> metric_cols;
    for (const ReportPoint* p : pts) {
      for (const auto& [name, value] : p->params) {
        if (std::find(param_cols.begin(), param_cols.end(), name) ==
            param_cols.end()) {
          param_cols.push_back(name);
        }
      }
      for (const auto& [name, metric] : p->metrics) {
        if (std::find(metric_cols.begin(), metric_cols.end(), name) ==
            metric_cols.end()) {
          metric_cols.push_back(name);
        }
      }
    }
    std::printf("|");
    for (const std::string& c : param_cols) std::printf(" %s |", c.c_str());
    for (const std::string& c : metric_cols) std::printf(" %s |", c.c_str());
    std::printf("\n|");
    for (std::size_t i = 0; i < param_cols.size() + metric_cols.size(); ++i) {
      std::printf("---|");
    }
    std::printf("\n");
    for (const ReportPoint* p : pts) {
      std::printf("|");
      for (const std::string& c : param_cols) {
        const JsonValue* v = p->param(c);
        std::printf(" %s |", v != nullptr ? v->display().c_str() : "");
      }
      for (const std::string& c : metric_cols) {
        const ReportMetric* m = p->metric(c);
        if (m == nullptr) {
          std::printf("  |");
        } else if (m->count > 1) {
          std::printf(" %g ± %g |", m->mean, m->stddev);
        } else {
          std::printf(" %g |", m->mean);
        }
      }
      std::printf("\n");
    }
  }
  std::printf("\n");
}

int run_render(const std::vector<std::string>& files) {
  int bad = 0;
  for (const std::string& path : files) {
    std::vector<std::string> errors;
    const char* sidecar = nullptr;
    const std::optional<ParsedReport> rep =
        load_report(path, errors, &sidecar);
    if (sidecar != nullptr && errors.empty()) continue;  // no markdown form
    if (!rep.has_value() || !errors.empty()) {
      ++bad;
      for (const std::string& e : errors) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), e.c_str());
      }
      continue;
    }
    render_report(*rep);
  }
  return bad == 0 ? 0 : 1;
}

int run_diff(const std::string& dir_a, const std::string& dir_b, double tol) {
  bool ok_a = false;
  bool ok_b = false;
  const std::vector<std::string> files_a = collect_reports({dir_a}, ok_a);
  if (!ok_a) return 2;
  collect_reports({dir_b}, ok_b);
  if (!ok_b) return 2;

  int differing = 0;
  std::size_t compared = 0;
  for (const std::string& path_a : files_a) {
    const std::string name = fs::path(path_a).filename().string();
    const std::string path_b = (fs::path(dir_b) / name).string();
    std::error_code ec;
    if (!fs::exists(path_b, ec)) {
      std::fprintf(stderr, "diff: %s only in %s\n", name.c_str(),
                   dir_a.c_str());
      ++differing;
      continue;
    }
    std::vector<std::string> errors;
    const std::optional<ParsedReport> a = load_report(path_a, errors);
    const std::optional<ParsedReport> b = load_report(path_b, errors);
    if (!a.has_value() || !b.has_value() || !errors.empty()) {
      for (const std::string& e : errors) {
        std::fprintf(stderr, "diff: %s\n", e.c_str());
      }
      ++differing;
      continue;
    }
    ++compared;
    const std::vector<DiffEntry> entries = diff_reports(*a, *b, tol);
    if (entries.empty()) continue;
    ++differing;
    for (const DiffEntry& d : entries) {
      if (d.missing) {
        std::fprintf(stderr, "diff: %s: %s [%s] present on one side only\n",
                     name.c_str(), d.point_key.c_str(), d.metric.c_str());
      } else {
        std::fprintf(stderr,
                     "diff: %s: %s [%s] %g vs %g (rel %.3f > tol %.3f)\n",
                     name.c_str(), d.point_key.c_str(), d.metric.c_str(),
                     d.a, d.b, d.rel, tol);
      }
    }
  }
  std::printf("%zu report(s) compared, %d differing (tol %.3f)\n", compared,
              differing, tol);
  return differing == 0 ? 0 : 1;
}

int run_main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];

  if (command == "diff") {
    double tol = 0.05;
    std::vector<std::string> dirs;
    for (int i = 2; i < argc; ++i) {
      if (std::strncmp(argv[i], "--tol=", 6) == 0) {
        tol = std::atof(argv[i] + 6);
        if (tol <= 0.0) {
          std::fprintf(stderr, "pdsreport: bad --tol value \"%s\"\n",
                       argv[i] + 6);
          return 2;
        }
      } else {
        dirs.emplace_back(argv[i]);
      }
    }
    if (dirs.size() != 2) return usage();
    return run_diff(dirs[0], dirs[1], tol);
  }

  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);
  bool ok = false;
  const std::vector<std::string> files = collect_reports(args, ok);
  if (!ok || files.empty()) return 2;
  if (command == "validate") return run_validate(files);
  if (command == "render") return run_render(files);
  if (command == "gate") return run_gate(files);
  return usage();
}

}  // namespace
}  // namespace pds::tools

int main(int argc, char** argv) { return pds::tools::run_main(argc, argv); }
