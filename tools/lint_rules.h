// pdslint rule engine (DESIGN.md §12).
//
// A table-driven, token-level static-analysis pass over src/, bench/ and
// tools/ that guards the repo's determinism and protocol invariants:
//
//   wall-clock      — no ambient time sources; the simulator owns time
//                     (SimClock), and bench reports must be byte-identical
//                     run-to-run. Timing benches are whitelisted by table.
//   ambient-rng     — no std::random_device / rand() / srand(); every
//                     stochastic draw must come from a seeded pds::Rng so a
//                     whole simulation is a function of one seed.
//   unordered-iter  — no iteration over std::unordered_{map,set} in files
//                     that emit trace/report/stats output or consume Rng;
//                     hash-order iteration feeding either breaks trace byte
//                     determinism or reorders RNG draws across platforms.
//   pointer-order   — no ordered containers keyed by pointers and no
//                     std::hash over pointers: pointer values differ between
//                     runs (ASLR), so any order derived from them is
//                     nondeterministic.
//   uninit-field    — scalar struct fields in codec/message headers must
//                     have default member initializers; a garbage field that
//                     survives an encode/decode round trip corrupts traffic
//                     silently.
//   decode-assert   — every decode() definition must validate its input
//                     (PDS_ENSURE, DecodeError or another throw); decoders
//                     that trust the wire turn fuzzed bytes into UB.
//
// Findings can be suppressed per line with a `pdslint:allow` comment naming
// rule ids in parentheses (same line or the line above) or per file with the
// `pdslint:allow-file` form; suppressed findings still land in the
// JSON report with `"suppressed": true` so the suppression surface is
// auditable. Unknown rule names in a suppression are themselves findings
// (`bad-suppression`) — a typo must not silently disable a gate.
#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tools/lint_common.h"
#include "tools/lint_lexer.h"
#include "tools/stats_schema.h"
#include "tools/trace_schema.h"

namespace pds::lint {

// Rule table, finding/summary types, audited suppressions and JSON
// rendering live in tools/lint_common.h, shared with pdsflow. This header
// owns only what is pdslint-specific: the token-level ban tables and the
// check routines. Adding a rule = adding a row to kRules in lint_common.h
// plus a check routine below.

// Identifier-level bans. `call_only` rows fire only when the identifier is
// followed by `(` — `time` and `clock` are too common as substrings of
// member names to ban as bare tokens.
struct TokenRule {
  const char* rule;
  const char* token;
  bool call_only;
  const char* message;
};

inline constexpr TokenRule kBannedTokens[] = {
    {"ambient-rng", "random_device", false,
     "std::random_device is nondeterministic; seed a pds::Rng instead"},
    {"ambient-rng", "rand", true,
     "rand() draws from hidden global state; use pds::Rng"},
    {"ambient-rng", "srand", true,
     "srand() reseeds hidden global state; use pds::Rng"},
    {"ambient-rng", "drand48", true,
     "drand48() draws from hidden global state; use pds::Rng"},
    {"ambient-rng", "lrand48", true,
     "lrand48() draws from hidden global state; use pds::Rng"},
    {"wall-clock", "system_clock", false,
     "std::chrono::system_clock reads wall time; use sim::SimClock"},
    {"wall-clock", "steady_clock", false,
     "std::chrono::steady_clock reads host time; use sim::SimClock"},
    {"wall-clock", "high_resolution_clock", false,
     "std::chrono::high_resolution_clock reads host time; use sim::SimClock"},
    {"wall-clock", "gettimeofday", true,
     "gettimeofday() reads wall time; use sim::SimClock"},
    {"wall-clock", "clock_gettime", true,
     "clock_gettime() reads host time; use sim::SimClock"},
    {"wall-clock", "timespec_get", true,
     "timespec_get() reads wall time; use sim::SimClock"},
    {"wall-clock", "time", true,
     "time() reads wall time; use sim::SimClock"},
    {"wall-clock", "clock", true,
     "clock() reads CPU time; use sim::SimClock"},
    {"ambient-parallelism", "hardware_concurrency", true,
     "std::thread::hardware_concurrency() keys behavior on the host; plumb "
     "an explicit thread count instead"},
};

// Per-rule file whitelist (path-suffix match on the repo-relative path).
// Timing benches measure host time on purpose: wall-clock durations are
// their *output*, they never feed simulation state.
struct FileAllowEntry {
  const char* rule;
  const char* path_suffix;
};

inline constexpr FileAllowEntry kFileAllowlist[] = {
    {"wall-clock", "bench/micro_primitives.cc"},
    {"wall-clock", "bench/perf_radio.cc"},
    {"wall-clock", "bench/tab_scale.cc"},
    // The one sanctioned probe: PDS_BENCH_JOBS's default. Worker counts
    // parallelise identical per-seed work; merge order stays fixed.
    {"ambient-parallelism", "bench/parallel_runs.h"},
    // Exercises the tracer with synthetic (sub, ev) names on purpose; the
    // catalog only covers events real captures can contain.
    {"trace-schema", "tests/obs_test.cc"},
    // The profiler's whole job is reading host time; its readings are
    // observability output and never feed simulation state (DESIGN.md §15).
    {"wall-clock", "src/obs/profiler.cc"},
    // Unit tests drive TimeSeries/Profiler with synthetic names on purpose.
    {"stats-schema", "tests/obs_test.cc"},
    {"stats-schema", "tests/timeseries_test.cc"},
};

// unordered-iter fires only in determinism-sensitive files: ones that emit
// trace/report/stats/log output or consume Rng. Sensitivity is detected
// from the file's own tokens.
inline constexpr const char* kOutputTokens[] = {
    "Tracer",         "PDS_TRACE_EMIT", "PDS_TRACE_INSTANT",
    "PDS_TRACE_BEGIN", "PDS_TRACE_END", "PDS_LOG_DEBUG",
    "PDS_LOG_INFO",   "PDS_LOG_WARN",  "Report",
    "JsonWriter",     "Table",         "printf",
    "fprintf",        "snprintf",      "cout",
    "cerr",           "Rng",           "Stats",
};

// uninit-field scans only codec/message-type headers (path-suffix match):
// the types that cross the wire or describe what does.
inline constexpr const char* kCodecTypeFiles[] = {
    "src/net/message.h",    "src/net/codec.h",     "src/net/transport.h",
    "src/net/face.h",       "src/core/descriptor.h", "src/core/attribute.h",
    "src/core/predicate.h", "src/net/bloom_delta.h",
};

// Scalar type heads: a member whose type starts with one of these and that
// lacks an initializer is flagged by uninit-field. Class types (StrongId,
// SimTime, vectors, ...) value-initialize themselves and are exempt.
inline constexpr const char* kScalarTypeTokens[] = {
    "bool",     "char",     "short",    "int",      "long",     "unsigned",
    "signed",   "float",    "double",   "int8_t",   "int16_t",  "int32_t",
    "int64_t",  "uint8_t",  "uint16_t", "uint32_t", "uint64_t", "size_t",
    "intptr_t", "uintptr_t", "byte",    "ChunkIndex",
};

// ---------------------------------------------------------------------------

namespace rules_detail {

inline bool has_suffix(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

inline bool file_allowlisted(std::string_view rule, std::string_view path) {
  for (const FileAllowEntry& e : kFileAllowlist) {
    if (rule == e.rule && has_suffix(path, e.path_suffix)) return true;
  }
  return false;
}

// Skips a balanced template argument list: `tokens[i]` must be `<`; returns
// the index one past the matching `>`, or `tokens.size()` when unbalanced.
inline std::size_t skip_template_args(const std::vector<Token>& tokens,
                                      std::size_t i) {
  if (i >= tokens.size() || tokens[i].text != "<") return tokens.size();
  int depth = 0;
  for (; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokKind::kPunct) continue;
    if (tokens[i].text == "<") ++depth;
    if (tokens[i].text == ">") {
      if (--depth == 0) return i + 1;
    }
    // `;` inside template args means we mis-lexed an operator< expression;
    // bail instead of swallowing the rest of the file.
    if (tokens[i].text == ";") return tokens.size();
  }
  return tokens.size();
}

inline bool is_unordered_container(std::string_view ident) {
  return ident == "unordered_map" || ident == "unordered_set" ||
         ident == "unordered_multimap" || ident == "unordered_multiset";
}

inline bool is_ordered_container(std::string_view ident) {
  return ident == "map" || ident == "set" || ident == "multimap" ||
         ident == "multiset";
}

}  // namespace rules_detail

// Names (variables, members, accessor functions) declared in `lexed` whose
// type is an unordered container. A .cc file is linted with the names
// collected from its paired header merged in, so member iteration in the
// implementation file is attributed correctly.
inline std::vector<std::string> collect_unordered_names(
    const LexedFile& lexed) {
  using rules_detail::is_unordered_container;
  using rules_detail::skip_template_args;
  std::vector<std::string> names;
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent ||
        !is_unordered_container(toks[i].text)) {
      continue;
    }
    std::size_t j = skip_template_args(toks, i + 1);
    // Skip cv/ref/ptr decorations between the type and the declared name.
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const")) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
      names.push_back(toks[j].text);
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

// Whether the file emits output or consumes Rng (see kOutputTokens).
inline bool is_determinism_sensitive(const LexedFile& lexed) {
  for (const Token& t : lexed.tokens) {
    if (t.kind != TokKind::kIdent) continue;
    for (const char* s : kOutputTokens) {
      if (t.text == s) return true;
    }
  }
  return false;
}

namespace rules_detail {

inline void add_finding(std::vector<Finding>& out, const Suppressions& sup,
                        const std::string& file, const char* rule, int line,
                        std::string message) {
  const RuleSpec* spec = find_rule(rule);
  Finding f;
  f.rule = rule;
  f.severity = spec != nullptr ? spec->severity : Severity::kError;
  f.file = file;
  f.line = line;
  f.message = std::move(message);
  f.suppressed = suppressed_at(sup, f.rule, line);
  out.push_back(std::move(f));
}

// wall-clock + ambient-rng: banned identifier scan.
inline void check_banned_tokens(const LexedFile& lexed,
                                const std::string& file,
                                const Suppressions& sup,
                                std::vector<Finding>& out) {
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    for (const TokenRule& b : kBannedTokens) {
      if (toks[i].text != b.token) continue;
      if (b.call_only &&
          (i + 1 >= toks.size() || toks[i + 1].text != "(")) {
        continue;
      }
      // Member calls (`x.time()`, `obj->clock()`) are the object's own API,
      // not the C library; only flag free/qualified calls.
      if (b.call_only && i > 0 &&
          (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
        continue;
      }
      if (file_allowlisted(b.rule, file)) continue;
      add_finding(out, sup, file, b.rule, toks[i].line, b.message);
      break;
    }
  }
}

// unordered-iter: range-for over an unordered name, or iterator loops via
// name.begin()/name.cbegin(), in determinism-sensitive files.
inline void check_unordered_iteration(const LexedFile& lexed,
                                      const std::string& file,
                                      const std::vector<std::string>& names,
                                      const Suppressions& sup,
                                      std::vector<Finding>& out) {
  if (names.empty()) return;
  if (!is_determinism_sensitive(lexed)) return;
  const auto known = [&](const std::string& n) {
    return std::binary_search(names.begin(), names.end(), n);
  };
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // for ( ... : range-expr )
    if (toks[i].kind == TokKind::kIdent && toks[i].text == "for" &&
        i + 1 < toks.size() && toks[i + 1].text == "(") {
      int depth = 0;
      std::size_t colon = 0, close = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].kind != TokKind::kPunct) continue;
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")") {
          if (--depth == 0) {
            close = j;
            break;
          }
        }
        if (toks[j].text == ":" && depth == 1 && colon == 0) colon = j;
      }
      if (colon != 0 && close != 0) {
        // Last identifier of the range expression names the container
        // (handles `m_`, `obj.m_`, `node.arrivals()`).
        for (std::size_t j = close; j > colon; --j) {
          if (toks[j - 1].kind == TokKind::kIdent) {
            if (known(toks[j - 1].text)) {
              add_finding(out, sup, file, "unordered-iter", toks[j - 1].line,
                          "range-for over unordered container '" +
                              toks[j - 1].text +
                              "' in a determinism-sensitive file; iterate a "
                              "sorted copy or use std::map");
            }
            break;
          }
        }
      }
    }
    // name.begin() / name.cbegin()
    if (toks[i].kind == TokKind::kIdent && known(toks[i].text) &&
        i + 2 < toks.size() && toks[i + 1].text == "." &&
        (toks[i + 2].text == "begin" || toks[i + 2].text == "cbegin")) {
      add_finding(out, sup, file, "unordered-iter", toks[i].line,
                  "iterator walk over unordered container '" + toks[i].text +
                      "' in a determinism-sensitive file; iterate a sorted "
                      "copy or use std::map");
    }
  }
}

// pointer-order: ordered/unordered containers keyed by a pointer type, and
// std::hash<T*> specializations/uses.
inline void check_pointer_ordering(const LexedFile& lexed,
                                   const std::string& file,
                                   const Suppressions& sup,
                                   std::vector<Finding>& out) {
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const bool container = is_ordered_container(toks[i].text) ||
                           is_unordered_container(toks[i].text);
    const bool hash = toks[i].text == "hash";
    if (!container && !hash) continue;
    if (i + 1 >= toks.size() || toks[i + 1].text != "<") continue;
    // Examine the first top-level template argument for a trailing `*`.
    int depth = 0;
    bool pointer_key = false;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      const std::string& t = toks[j].text;
      if (toks[j].kind == TokKind::kPunct) {
        if (t == "<") ++depth;
        else if (t == ">") {
          if (--depth == 0) break;
        } else if (t == "," && depth == 1) {
          break;  // end of first argument
        } else if (t == "*" && depth == 1) {
          pointer_key = true;
        } else if (t == ";") {
          break;  // operator< mis-parse; bail
        }
      }
    }
    if (pointer_key) {
      add_finding(out, sup, file, "pointer-order", toks[i].line,
                  container
                      ? "container keyed by pointer value; pointer order "
                        "varies with ASLR — key by a stable id instead"
                      : "std::hash over a pointer; hash order varies with "
                        "ASLR — hash a stable id instead");
    }
  }
}

// uninit-field: scalar struct members without default initializers in
// codec/message headers.
inline void check_uninit_fields(const LexedFile& lexed,
                                const std::string& file,
                                const Suppressions& sup,
                                std::vector<Finding>& out) {
  bool in_scope = false;
  for (const char* f : kCodecTypeFiles) {
    if (has_suffix(file, f)) in_scope = true;
  }
  if (!in_scope) return;
  const auto is_scalar_head = [](const std::string& t) {
    for (const char* s : kScalarTypeTokens) {
      if (t == s) return true;
    }
    return false;
  };
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != "struct") continue;
    // struct NAME [final] [: bases] {
    std::size_t j = i + 1;
    if (j >= toks.size() || toks[j].kind != TokKind::kIdent) continue;
    ++j;
    while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") ++j;
    if (j >= toks.size() || toks[j].text != "{") continue;  // fwd decl
    // Walk the struct body at depth 1, statement by statement.
    int depth = 1;
    std::size_t k = j + 1;
    std::size_t stmt = k;  // first token of the current member declaration
    while (k < toks.size() && depth > 0) {
      const Token& t = toks[k];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "{") {
          // Function body / nested type / init list: skip it wholesale.
          int d = 1;
          ++k;
          while (k < toks.size() && d > 0) {
            if (toks[k].text == "{") ++d;
            if (toks[k].text == "}") --d;
            ++k;
          }
          stmt = k;
          continue;
        }
        if (t.text == "}") {
          --depth;
          ++k;
          continue;
        }
        if (t.text == ";") {
          // Statement [stmt, k) is a member declaration candidate.
          const std::size_t b = stmt, e = k;
          stmt = k + 1;
          ++k;
          if (b >= e) continue;
          // Reject non-field statements.
          bool skip = false;
          for (std::size_t m = b; m < e; ++m) {
            const std::string& w = toks[m].text;
            if (w == "(" || w == "=" || w == "using" || w == "friend" ||
                w == "static" || w == "typedef" || w == "enum" ||
                w == "operator" || w == "~") {
              skip = true;
              break;
            }
          }
          if (skip) continue;
          // Strip leading qualifiers; the first remaining identifier is the
          // type head, possibly std::-qualified.
          std::size_t m = b;
          while (m < e && (toks[m].text == "const" ||
                           toks[m].text == "mutable" ||
                           toks[m].text == "volatile")) {
            ++m;
          }
          if (m < e && toks[m].text == "std" && m + 1 < e &&
              toks[m + 1].text == "::") {
            m += 2;
          }
          if (m >= e || toks[m].kind != TokKind::kIdent ||
              !is_scalar_head(toks[m].text)) {
            continue;
          }
          // Multi-token scalar heads (`unsigned long long`, `long double`).
          std::size_t name_at = m + 1;
          while (name_at < e && toks[name_at].kind == TokKind::kIdent &&
                 is_scalar_head(toks[name_at].text)) {
            ++name_at;
          }
          if (name_at >= e || toks[name_at].kind != TokKind::kIdent) continue;
          if (name_at + 1 != e) continue;  // arrays, bitfields — not fields
          add_finding(out, sup, file, "uninit-field", toks[name_at].line,
                      "scalar field '" + toks[name_at].text +
                          "' has no default initializer in a codec/message "
                          "type");
          continue;
        }
      }
      // `public:` / `private:` reset the statement start.
      if (t.kind == TokKind::kPunct && t.text == ":") stmt = k + 1;
      ++k;
    }
  }
}

// trace-schema: every PDS_TRACE_* emission whose subsystem and event are
// literal strings must name a (sub, ev) pair registered in the
// tools/trace_schema.h catalog. Computed names cannot be checked statically
// and are skipped (the repo's emission sites all use literals).
inline void check_trace_schema(const LexedFile& lexed,
                               const std::string& file,
                               const Suppressions& sup,
                               std::vector<Finding>& out) {
  if (file_allowlisted("trace-schema", file)) return;
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    // 0-indexed macro argument holding the subsystem string; the event name
    // is the next argument. PDS_TRACE_{INSTANT,BEGIN,END}(tracer, t, node,
    // sub, ev, ...) vs PDS_TRACE_EMIT(tracer, phase, t, node, sub, ev, ...).
    std::size_t sub_arg = 0;
    if (toks[i].text == "PDS_TRACE_INSTANT" ||
        toks[i].text == "PDS_TRACE_BEGIN" ||
        toks[i].text == "PDS_TRACE_END") {
      sub_arg = 3;
    } else if (toks[i].text == "PDS_TRACE_EMIT") {
      sub_arg = 4;
    } else {
      continue;
    }
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
    // Split the macro call at top-level commas; record whether the sub/ev
    // arguments are lone string literals and which ones.
    int depth = 0;
    std::size_t arg = 0;
    std::size_t arg_start = i + 2;
    const Token* sub_tok = nullptr;
    const Token* ev_tok = nullptr;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind != TokKind::kPunct) continue;
      const std::string& t = toks[j].text;
      bool boundary = false;
      if (t == "(" || t == "{" || t == "[") {
        ++depth;
      } else if (t == ")" || t == "}" || t == "]") {
        --depth;
        if (depth == 0) boundary = true;
      } else if (t == "," && depth == 1) {
        boundary = true;
      }
      if (!boundary) continue;
      const bool lone_string =
          j == arg_start + 1 && toks[arg_start].kind == TokKind::kString;
      if (arg == sub_arg && lone_string) sub_tok = &toks[arg_start];
      if (arg == sub_arg + 1 && lone_string) ev_tok = &toks[arg_start];
      ++arg;
      arg_start = j + 1;
      if (depth == 0) break;
    }
    if (sub_tok == nullptr || ev_tok == nullptr) continue;
    // Lexer string tokens keep their quotes.
    const auto unquote = [](const std::string& s) {
      return s.size() >= 2 ? s.substr(1, s.size() - 2) : s;
    };
    const std::string sub = unquote(sub_tok->text);
    const std::string ev = unquote(ev_tok->text);
    bool registered = false;
    for (const tools::EventSchema& schema : tools::kEventCatalog) {
      if (sub == schema.sub && ev == schema.ev) {
        registered = true;
        break;
      }
    }
    if (!registered) {
      add_finding(out, sup, file, "trace-schema", toks[i].line,
                  "trace event " + sub + "/" + ev +
                      " is not registered in tools/trace_schema.h");
    }
  }
}

// stats-schema: every PDS_TS_COLUMN registration and PDS_PROF_SCOPE site
// whose name is a literal string must be registered in tools/stats_schema.h
// (kSeriesCatalog / kProfileScopeCatalog). Computed names cannot be checked
// statically and are skipped.
inline void check_stats_schema(const LexedFile& lexed, const std::string& file,
                               const Suppressions& sup,
                               std::vector<Finding>& out) {
  if (file_allowlisted("stats-schema", file)) return;
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent) continue;
    const bool is_column = toks[i].text == "PDS_TS_COLUMN";
    const bool is_scope = toks[i].text == "PDS_PROF_SCOPE";
    if (!is_column && !is_scope) continue;
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
    // Both macros carry the name as argument 1 (0-indexed):
    // PDS_TS_COLUMN(ts, name[, kind]) / PDS_PROF_SCOPE(profiler, name).
    constexpr std::size_t kNameArg = 1;
    int depth = 0;
    std::size_t arg = 0;
    std::size_t arg_start = i + 2;
    const Token* name_tok = nullptr;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].kind != TokKind::kPunct) continue;
      const std::string& t = toks[j].text;
      bool boundary = false;
      if (t == "(" || t == "{" || t == "[") {
        ++depth;
      } else if (t == ")" || t == "}" || t == "]") {
        --depth;
        if (depth == 0) boundary = true;
      } else if (t == "," && depth == 1) {
        boundary = true;
      }
      if (!boundary) continue;
      if (arg == kNameArg && j == arg_start + 1 &&
          toks[arg_start].kind == TokKind::kString) {
        name_tok = &toks[arg_start];
      }
      ++arg;
      arg_start = j + 1;
      if (depth == 0) break;
    }
    if (name_tok == nullptr) continue;
    const std::string name =
        name_tok->text.size() >= 2
            ? name_tok->text.substr(1, name_tok->text.size() - 2)
            : name_tok->text;
    bool registered = false;
    if (is_column) {
      for (const tools::SeriesSchema& s : tools::kSeriesCatalog) {
        if (name == s.name) {
          registered = true;
          break;
        }
      }
    } else {
      for (const char* s : tools::kProfileScopeCatalog) {
        if (name == s) {
          registered = true;
          break;
        }
      }
    }
    if (!registered) {
      add_finding(out, sup, file, "stats-schema", toks[i].line,
                  std::string(is_column ? "series column '"
                                        : "profiler scope '") +
                      name + "' is not registered in tools/stats_schema.h");
    }
  }
}

// decode-assert: decode() definitions whose body never validates.
inline void check_decode_assert(const LexedFile& lexed,
                                const std::string& file,
                                const Suppressions& sup,
                                std::vector<Finding>& out) {
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != "decode") continue;
    if (i + 1 >= toks.size() || toks[i + 1].text != "(") continue;
    // Method calls (`r.decode(...)`) are uses, not definitions.
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
      continue;
    }
    // Find the parameter list's closing paren.
    int depth = 0;
    std::size_t close = 0;
    for (std::size_t j = i + 1; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) {
        close = j;
        break;
      }
    }
    if (close == 0) continue;
    std::size_t j = close + 1;
    while (j < toks.size() &&
           (toks[j].text == "const" || toks[j].text == "noexcept")) {
      ++j;
    }
    if (j >= toks.size() || toks[j].text != "{") continue;  // declaration
    // Scan the body for validation tokens.
    int d = 1;
    bool validated = false;
    std::size_t k = j + 1;
    while (k < toks.size() && d > 0) {
      const std::string& t = toks[k].text;
      if (t == "{") ++d;
      if (t == "}") --d;
      if (t == "PDS_ENSURE" || t == "DecodeError" || t == "throw") {
        validated = true;
      }
      ++k;
    }
    if (!validated) {
      add_finding(out, sup, file, "decode-assert", toks[i].line,
                  "decode() body performs no input validation (expected "
                  "PDS_ENSURE, DecodeError or throw)");
    }
  }
}

}  // namespace rules_detail

// Lints one file's contents. `path` is the repo-relative display path;
// `header_names` carries unordered-container names collected from the paired
// header when linting a .cc file.
inline std::vector<Finding> lint_source(
    const std::string& path, std::string_view content,
    const std::vector<std::string>& header_names = {}) {
  using namespace rules_detail;
  const LexedFile lexed = lex(content);
  // "pdslint" is the primary prefix: pdsflow:allow tags are audited for
  // typos here too, but only pdslint:allow tags suppress these findings.
  const Suppressions sup = collect_suppressions(lexed, path, "pdslint");

  std::vector<Finding> findings = sup.bad;
  check_banned_tokens(lexed, path, sup, findings);

  std::vector<std::string> names = collect_unordered_names(lexed);
  names.insert(names.end(), header_names.begin(), header_names.end());
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  check_unordered_iteration(lexed, path, names, sup, findings);

  check_pointer_ordering(lexed, path, sup, findings);
  check_uninit_fields(lexed, path, sup, findings);
  check_decode_assert(lexed, path, sup, findings);
  check_trace_schema(lexed, path, sup, findings);
  check_stats_schema(lexed, path, sup, findings);

  sort_findings(findings);
  return findings;
}

// Machine-readable findings report (schema pds-lint-report/1), rendered via
// the shared writer in lint_common.h so pdslint and pdsflow reports stay
// shape-compatible.
inline std::string render_json(const std::vector<Finding>& findings,
                               const LintSummary& summary) {
  return render_findings_json(kLintReportSchema, kRules, findings, summary);
}

}  // namespace pds::lint
