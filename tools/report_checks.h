// Validation, shape gates and diffing for pds-bench-report/1 documents
// (DESIGN.md §10). Header-only so tests/report_test.cc can exercise the gate
// logic against both freshly emitted and deliberately doctored reports.
//
// Three layers:
//   parse_report()    raw JsonValue -> typed ParsedReport, collecting schema
//                     violations (missing fields, stat/sample mismatches).
//   run_gates()       per-experiment shape assertions — monotonicity,
//                     who-wins orderings, recall floors. Catches a simulator
//                     that still runs but no longer reproduces the paper's
//                     qualitative behavior.
//   diff_reports()    point-by-point metric comparison of two runs of the
//                     same experiment within a relative tolerance.
#pragma once

#include <cmath>
#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "tools/report_reader.h"

namespace pds::tools {

inline constexpr const char* kBenchReportSchema = "pds-bench-report/1";
inline constexpr const char* kCausalReportSchema = "pds-causal-report/1";
inline constexpr const char* kStatsReportSchema = "pds-stats-report/1";
inline constexpr const char* kFlowReportSchema = "pds-flow-report/1";

// Peak-RSS ceiling for the 50k-node scale run (ROADMAP's 0.8 GB target plus
// allocator/measurement headroom), enforced by the `rss-peak-50k-budget`
// gate on tab_scale's "stats" section.
inline constexpr double kRssPeak50kBudgetMb = 850.0;

struct ReportMetric {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> samples;
};

struct ReportPoint {
  std::string section;
  std::vector<std::pair<std::string, JsonValue>> params;
  std::vector<std::pair<std::string, ReportMetric>> metrics;

  [[nodiscard]] const JsonValue* param(const std::string& name) const {
    for (const auto& [k, v] : params) {
      if (k == name) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] double num_param(const std::string& name,
                                 double dflt = 0.0) const {
    const JsonValue* v = param(name);
    return v != nullptr && v->is_number() ? v->number : dflt;
  }
  [[nodiscard]] std::string str_param(const std::string& name) const {
    const JsonValue* v = param(name);
    return v != nullptr ? v->display() : std::string();
  }
  [[nodiscard]] const ReportMetric* metric(const std::string& name) const {
    for (const auto& [k, v] : metrics) {
      if (k == name) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] double mean(const std::string& name, double dflt = 0.0) const {
    const ReportMetric* m = metric(name);
    return m != nullptr ? m->mean : dflt;
  }
  // Stable identity for matching points across two runs: section plus every
  // identifying parameter.
  [[nodiscard]] std::string key() const {
    std::string k = section;
    for (const auto& [name, value] : params) {
      k += '|';
      k += name;
      k += '=';
      k += value.display();
    }
    return k;
  }
};

struct ParsedReport {
  std::string experiment;
  std::string title;
  std::string paper;
  int runs = 0;
  int jobs = 0;
  std::vector<std::pair<std::string, JsonValue>> params;
  std::string git_sha;
  std::string build_type;
  std::string sanitizers;
  std::vector<ReportPoint> points;

  [[nodiscard]] std::vector<const ReportPoint*> section(
      const std::string& id) const {
    std::vector<const ReportPoint*> out;
    for (const ReportPoint& p : points) {
      if (p.section == id) out.push_back(&p);
    }
    return out;
  }
};

// -- Schema validation --------------------------------------------------------

namespace check_detail {

inline bool close(double a, double b) {
  const double scale = std::fmax(1.0, std::fmax(std::fabs(a), std::fabs(b)));
  return std::fabs(a - b) <= 1e-9 * scale;
}

inline void require_string(const JsonValue& obj, const char* key,
                           std::string& out, const char* where,
                           std::vector<std::string>& errors) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_string()) {
    errors.push_back(std::string(where) + ": missing string \"" + key + "\"");
    return;
  }
  out = v->text;
}

}  // namespace check_detail

// Parses and schema-checks one report document. Returns the typed report
// even when `errors` is non-empty, so callers can report every violation in
// one pass; a report is valid iff `errors` stays empty.
inline ParsedReport parse_report(const JsonValue& root,
                                 std::vector<std::string>& errors) {
  using check_detail::close;
  using check_detail::require_string;
  ParsedReport rep;
  if (!root.is_object()) {
    errors.emplace_back("document is not a JSON object");
    return rep;
  }
  std::string schema;
  require_string(root, "schema", schema, "root", errors);
  if (!schema.empty() && schema != kBenchReportSchema) {
    errors.push_back("unsupported schema \"" + schema + "\" (want " +
                     kBenchReportSchema + ")");
  }
  require_string(root, "experiment", rep.experiment, "root", errors);
  require_string(root, "title", rep.title, "root", errors);
  require_string(root, "paper", rep.paper, "root", errors);

  const JsonValue* run = root.find("run");
  if (run == nullptr || !run->is_object()) {
    errors.emplace_back("root: missing object \"run\"");
  } else {
    const JsonValue* runs = run->find("runs");
    const JsonValue* jobs = run->find("jobs");
    if (runs == nullptr || !runs->is_number() || runs->number < 1) {
      errors.emplace_back("run.runs must be a positive number");
    } else {
      rep.runs = static_cast<int>(runs->number);
    }
    if (jobs == nullptr || !jobs->is_number() || jobs->number < 1) {
      errors.emplace_back("run.jobs must be a positive number");
    } else {
      rep.jobs = static_cast<int>(jobs->number);
    }
  }

  const JsonValue* params = root.find("params");
  if (params == nullptr || !params->is_object()) {
    errors.emplace_back("root: missing object \"params\"");
  } else {
    rep.params = params->members;
  }

  const JsonValue* provenance = root.find("provenance");
  if (provenance == nullptr || !provenance->is_object()) {
    errors.emplace_back("root: missing object \"provenance\"");
  } else {
    require_string(*provenance, "git_sha", rep.git_sha, "provenance", errors);
    require_string(*provenance, "build_type", rep.build_type, "provenance",
                   errors);
    require_string(*provenance, "sanitizers", rep.sanitizers, "provenance",
                   errors);
  }

  const JsonValue* points = root.find("points");
  if (points == nullptr || !points->is_array()) {
    errors.emplace_back("root: missing array \"points\"");
    return rep;
  }
  for (std::size_t i = 0; i < points->items.size(); ++i) {
    const std::string where = "points[" + std::to_string(i) + "]";
    const JsonValue& pv = points->items[i];
    if (!pv.is_object()) {
      errors.push_back(where + ": not an object");
      continue;
    }
    ReportPoint point;
    require_string(pv, "section", point.section, where.c_str(), errors);
    const JsonValue* pparams = pv.find("params");
    if (pparams == nullptr || !pparams->is_object()) {
      errors.push_back(where + ": missing object \"params\"");
    } else {
      point.params = pparams->members;
    }
    const JsonValue* metrics = pv.find("metrics");
    if (metrics == nullptr || !metrics->is_object()) {
      errors.push_back(where + ": missing object \"metrics\"");
    } else {
      for (const auto& [name, mv] : metrics->members) {
        const std::string mwhere = where + ".metrics." + name;
        if (!mv.is_object()) {
          errors.push_back(mwhere + ": not an object");
          continue;
        }
        ReportMetric metric;
        const JsonValue* samples = mv.find("samples");
        if (samples == nullptr || !samples->is_array() ||
            samples->items.empty()) {
          errors.push_back(mwhere + ": missing non-empty \"samples\"");
          continue;
        }
        bool numeric = true;
        double sum = 0.0;
        double lo = 0.0;
        double hi = 0.0;
        for (std::size_t s = 0; s < samples->items.size(); ++s) {
          const JsonValue& sv = samples->items[s];
          if (!sv.is_number()) {
            errors.push_back(mwhere + ": non-numeric sample");
            numeric = false;
            break;
          }
          metric.samples.push_back(sv.number);
          sum += sv.number;
          lo = s == 0 ? sv.number : std::fmin(lo, sv.number);
          hi = s == 0 ? sv.number : std::fmax(hi, sv.number);
        }
        if (!numeric) continue;
        const auto get = [&](const char* key, double& out) {
          const JsonValue* v = mv.find(key);
          if (v == nullptr || !v->is_number()) {
            errors.push_back(mwhere + ": missing number \"" + key + "\"");
            return;
          }
          out = v->number;
        };
        double count = 0.0;
        get("count", count);
        get("mean", metric.mean);
        get("stddev", metric.stddev);
        get("min", metric.min);
        get("max", metric.max);
        metric.count = static_cast<std::size_t>(count);
        if (metric.count != metric.samples.size()) {
          errors.push_back(mwhere + ": count does not match samples");
        }
        const double n = static_cast<double>(metric.samples.size());
        if (!close(metric.mean, sum / n)) {
          errors.push_back(mwhere + ": mean inconsistent with samples");
        }
        if (!close(metric.min, lo) || !close(metric.max, hi)) {
          errors.push_back(mwhere + ": min/max inconsistent with samples");
        }
        point.metrics.emplace_back(name, std::move(metric));
      }
    }
    rep.points.push_back(std::move(point));
  }
  return rep;
}

// Schema check for pds-causal-report/1 documents (the JSON `pdscli trace
// critpath --json` emits from tools/trace_causal.h). Same contract as
// parse_report: valid iff `errors` stays empty.
inline void validate_causal_report(const JsonValue& root,
                                   std::vector<std::string>& errors) {
  using check_detail::require_string;
  if (!root.is_object()) {
    errors.emplace_back("document is not a JSON object");
    return;
  }
  std::string schema;
  require_string(root, "schema", schema, "root", errors);
  if (!schema.empty() && schema != kCausalReportSchema) {
    errors.push_back("unsupported schema \"" + schema + "\" (want " +
                     kCausalReportSchema + ")");
  }
  const auto require_number = [&errors](const JsonValue& obj, const char* key,
                                        const std::string& where) -> double {
    const JsonValue* v = obj.find(key);
    if (v == nullptr || !v->is_number()) {
      errors.push_back(where + ": missing number \"" + key + "\"");
      return 0.0;
    }
    return v->number;
  };

  double total_traces = 0.0;
  double with_path = 0.0;
  const JsonValue* summary = root.find("summary");
  if (summary == nullptr || !summary->is_object()) {
    errors.emplace_back("root: missing object \"summary\"");
  } else {
    total_traces = require_number(*summary, "traces", "summary");
    with_path = require_number(*summary, "traces_with_path", "summary");
    for (const char* key : {"orphans", "dropped_events", "cp_hops_p50",
                            "cp_hops_p99", "cp_len_us_p50", "cp_len_us_p99"}) {
      require_number(*summary, key, "summary");
    }
    if (with_path > total_traces) {
      errors.emplace_back("summary: traces_with_path exceeds traces");
    }
    const JsonValue* dom = summary->find("dominant_edges");
    if (dom == nullptr || !dom->is_object()) {
      errors.emplace_back("summary: missing object \"dominant_edges\"");
    } else {
      double dom_total = 0.0;
      bool numeric = true;
      for (const auto& [cls, count] : dom->members) {
        if (!count.is_number()) {
          errors.push_back("summary.dominant_edges." + cls +
                           ": not a number");
          numeric = false;
        } else {
          dom_total += count.number;
        }
      }
      // Every trace with a critical path contributes exactly one dominant
      // edge, so the histogram must account for all of them.
      if (numeric && dom_total != with_path) {
        errors.emplace_back(
            "summary: dominant_edges counts do not sum to traces_with_path");
      }
    }
  }

  const JsonValue* traces = root.find("traces");
  if (traces == nullptr || !traces->is_array()) {
    errors.emplace_back("root: missing array \"traces\"");
    return;
  }
  // The detail array may be capped (--max-traces) but never padded.
  if (static_cast<double>(traces->items.size()) > total_traces) {
    errors.emplace_back("root: traces array longer than summary.traces");
  }
  for (std::size_t i = 0; i < traces->items.size(); ++i) {
    const std::string where = "traces[" + std::to_string(i) + "]";
    const JsonValue& entry = traces->items[i];
    if (!entry.is_object()) {
      errors.push_back(where + ": not an object");
      continue;
    }
    for (const char* key :
         {"trace_id", "spans", "orphans", "cp_hops", "cp_len_us",
          "bytes_on_air", "airtime_us", "retx", "delivers", "overhears",
          "suppressed"}) {
      require_number(entry, key, where);
    }
    std::string text;
    require_string(entry, "kind", text, where.c_str(), errors);
    require_string(entry, "dominant_edge", text, where.c_str(), errors);
    const JsonValue* cp = entry.find("critical_path");
    if (cp == nullptr || !cp->is_array()) {
      errors.push_back(where + ": missing array \"critical_path\"");
      continue;
    }
    for (std::size_t j = 0; j < cp->items.size(); ++j) {
      const std::string ewhere =
          where + ".critical_path[" + std::to_string(j) + "]";
      const JsonValue& edge = cp->items[j];
      if (!edge.is_object()) {
        errors.push_back(ewhere + ": not an object");
        continue;
      }
      for (const char* key : {"from", "to", "dt_us"}) {
        require_number(edge, key, ewhere);
      }
      require_string(edge, "class", text, ewhere.c_str(), errors);
    }
  }
}

// Schema check for pds-stats-report/1 documents (the JSON `pdscli stats
// --json` emits from tools/stats_analysis.h summaries). Same contract as
// parse_report: valid iff `errors` stays empty.
inline void validate_stats_report(const JsonValue& root,
                                  std::vector<std::string>& errors) {
  using check_detail::require_string;
  if (!root.is_object()) {
    errors.emplace_back("document is not a JSON object");
    return;
  }
  std::string schema;
  require_string(root, "schema", schema, "root", errors);
  if (!schema.empty() && schema != kStatsReportSchema) {
    errors.push_back("unsupported schema \"" + schema + "\" (want " +
                     kStatsReportSchema + ")");
  }
  const auto require_number = [&errors](const JsonValue& obj, const char* key,
                                        const std::string& where) -> double {
    const JsonValue* v = obj.find(key);
    if (v == nullptr || !v->is_number()) {
      errors.push_back(where + ": missing number \"" + key + "\"");
      return 0.0;
    }
    return v->number;
  };

  std::string text;
  require_string(root, "file", text, "root", errors);
  if (require_number(root, "interval_us", "root") <= 0.0) {
    errors.emplace_back("root: interval_us must be positive");
  }
  require_number(root, "rows", "root");

  const JsonValue* columns = root.find("columns");
  if (columns == nullptr || !columns->is_array()) {
    errors.emplace_back("root: missing array \"columns\"");
  } else {
    for (std::size_t i = 0; i < columns->items.size(); ++i) {
      const std::string where = "columns[" + std::to_string(i) + "]";
      const JsonValue& c = columns->items[i];
      if (!c.is_object()) {
        errors.push_back(where + ": not an object");
        continue;
      }
      require_string(c, "name", text, where.c_str(), errors);
      std::string kind;
      require_string(c, "kind", kind, where.c_str(), errors);
      if (!kind.empty() && kind != "sim" && kind != "wall") {
        errors.push_back(where + ": kind must be \"sim\" or \"wall\"");
      }
      double peak = 0.0;
      double lo = 0.0;
      double hi = 0.0;
      for (const char* key :
           {"peak", "t_peak_us", "mean", "p50", "p95", "p99", "last"}) {
        const double v = require_number(c, key, where);
        if (std::string(key) == "peak") peak = v;
        if (std::string(key) == "p50") lo = v;
        if (std::string(key) == "p99") hi = v;
      }
      if (hi < lo) errors.push_back(where + ": p99 below p50");
      if (peak < hi) errors.push_back(where + ": peak below p99");
    }
  }

  // Optional blocks — validated only when emitted (a capture with no
  // radio.air_us column has no channel_utilization; one with no profiler
  // attached has no profile).
  if (const JsonValue* util = root.find("channel_utilization")) {
    if (!util->is_object()) {
      errors.emplace_back("root: channel_utilization is not an object");
    } else {
      for (const char* key : {"peak", "mean", "p99"}) {
        if (require_number(*util, key, "channel_utilization") < 0.0) {
          errors.push_back(std::string("channel_utilization: negative \"") +
                           key + "\"");
        }
      }
    }
  }
  if (const JsonValue* profile = root.find("profile")) {
    if (!profile->is_array()) {
      errors.emplace_back("root: profile is not an array");
    } else {
      for (std::size_t i = 0; i < profile->items.size(); ++i) {
        const std::string where = "profile[" + std::to_string(i) + "]";
        const JsonValue& e = profile->items[i];
        if (!e.is_object()) {
          errors.push_back(where + ": not an object");
          continue;
        }
        require_string(e, "path", text, where.c_str(), errors);
        for (const char* key : {"depth", "ns", "calls", "share"}) {
          require_number(e, key, where);
        }
      }
    }
  }
}

// Schema check for pds-flow-report/1 documents (pdsflow --json findings,
// tools/flow_analysis.h). Valid iff `errors` stays empty: rule table,
// per-finding fields (fingerprint required on unsuppressed findings so the
// baseline workflow can always key them), and a summary whose counts match
// the findings actually listed.
inline void validate_flow_report(const JsonValue& root,
                                 std::vector<std::string>& errors) {
  using check_detail::require_string;
  if (!root.is_object()) {
    errors.emplace_back("document is not a JSON object");
    return;
  }
  std::string schema;
  require_string(root, "schema", schema, "root", errors);
  if (!schema.empty() && schema != kFlowReportSchema) {
    errors.push_back("unsupported schema \"" + schema + "\" (want " +
                     kFlowReportSchema + ")");
  }

  std::string text;
  const JsonValue* rules = root.find("rules");
  if (rules == nullptr || !rules->is_array() || rules->items.empty()) {
    errors.emplace_back("root: missing non-empty array \"rules\"");
  } else {
    for (std::size_t i = 0; i < rules->items.size(); ++i) {
      const std::string where = "rules[" + std::to_string(i) + "]";
      const JsonValue& r = rules->items[i];
      if (!r.is_object()) {
        errors.push_back(where + ": not an object");
        continue;
      }
      require_string(r, "id", text, where.c_str(), errors);
      require_string(r, "invariant", text, where.c_str(), errors);
      std::string severity;
      require_string(r, "severity", severity, where.c_str(), errors);
      if (!severity.empty() && severity != "error" && severity != "warning") {
        errors.push_back(where + ": severity must be error or warning");
      }
    }
  }

  int errors_seen = 0;
  int warnings_seen = 0;
  int suppressed_seen = 0;
  const JsonValue* findings = root.find("findings");
  if (findings == nullptr || !findings->is_array()) {
    errors.emplace_back("root: missing array \"findings\"");
  } else {
    for (std::size_t i = 0; i < findings->items.size(); ++i) {
      const std::string where = "findings[" + std::to_string(i) + "]";
      const JsonValue& f = findings->items[i];
      if (!f.is_object()) {
        errors.push_back(where + ": not an object");
        continue;
      }
      std::string rule;
      require_string(f, "rule", rule, where.c_str(), errors);
      require_string(f, "file", text, where.c_str(), errors);
      require_string(f, "message", text, where.c_str(), errors);
      const JsonValue* line = f.find("line");
      if (line == nullptr || !line->is_number() || line->number < 1) {
        errors.push_back(where + ": missing positive number \"line\"");
      }
      std::string severity;
      require_string(f, "severity", severity, where.c_str(), errors);
      const JsonValue* suppressed = f.find("suppressed");
      const bool is_suppressed = suppressed != nullptr &&
                                 suppressed->type == JsonValue::Type::kBool &&
                                 suppressed->boolean;
      if (suppressed == nullptr ||
          suppressed->type != JsonValue::Type::kBool) {
        errors.push_back(where + ": missing bool \"suppressed\"");
      }
      // bad-suppression findings carry no fingerprint; every flow-rule
      // finding must, or the baseline cannot key it.
      const JsonValue* fingerprint = f.find("fingerprint");
      if ((fingerprint == nullptr || !fingerprint->is_string() ||
           fingerprint->text.empty()) &&
          rule != "bad-suppression") {
        errors.push_back(where + ": missing string \"fingerprint\"");
      }
      if (is_suppressed) {
        ++suppressed_seen;
      } else if (severity == "warning") {
        ++warnings_seen;
      } else {
        ++errors_seen;
      }
    }
  }

  const JsonValue* summary = root.find("summary");
  if (summary == nullptr || !summary->is_object()) {
    errors.emplace_back("root: missing object \"summary\"");
  } else {
    const auto count = [&](const char* key) -> int {
      const JsonValue* v = summary->find(key);
      if (v == nullptr || !v->is_number()) {
        errors.push_back(std::string("summary: missing number \"") + key +
                         "\"");
        return -1;
      }
      return static_cast<int>(v->number);
    };
    count("files_scanned");
    const int e = count("errors");
    const int w = count("warnings");
    const int s = count("suppressed");
    if (findings != nullptr && findings->is_array()) {
      if (e >= 0 && e != errors_seen) {
        errors.push_back("summary: errors=" + std::to_string(e) +
                         " but findings list " + std::to_string(errors_seen));
      }
      if (w >= 0 && w != warnings_seen) {
        errors.push_back("summary: warnings=" + std::to_string(w) +
                         " but findings list " +
                         std::to_string(warnings_seen));
      }
      if (s >= 0 && s != suppressed_seen) {
        errors.push_back("summary: suppressed=" + std::to_string(s) +
                         " but findings list " +
                         std::to_string(suppressed_seen));
      }
    }
  }
}

// -- Shape gates --------------------------------------------------------------

struct GateFailure {
  std::string experiment;
  std::string assertion;  // short name, e.g. "mdr-overhead-monotone"
  std::string detail;
};

namespace check_detail {

class GateContext {
 public:
  GateContext(const ParsedReport& rep, std::vector<GateFailure>& failures)
      : rep_(rep), failures_(failures) {}

  void fail(const std::string& assertion, const std::string& detail) {
    failures_.push_back({rep_.experiment, assertion, detail});
  }

  // metric[i+1] >= metric[i] * (1 - tol) across `pts` in emission order.
  void non_decreasing(const std::vector<const ReportPoint*>& pts,
                      const char* metric, double tol,
                      const std::string& assertion) {
    for (std::size_t i = 1; i < pts.size(); ++i) {
      const double prev = pts[i - 1]->mean(metric);
      const double cur = pts[i]->mean(metric);
      if (cur < prev * (1.0 - tol) - 1e-12) {
        fail(assertion, std::string(metric) + " falls from " +
                            std::to_string(prev) + " to " +
                            std::to_string(cur) + " at point " +
                            std::to_string(i));
        return;
      }
    }
  }

  void non_increasing(const std::vector<const ReportPoint*>& pts,
                      const char* metric, double tol,
                      const std::string& assertion) {
    for (std::size_t i = 1; i < pts.size(); ++i) {
      const double prev = pts[i - 1]->mean(metric);
      const double cur = pts[i]->mean(metric);
      if (cur > prev * (1.0 + tol) + 1e-12) {
        fail(assertion, std::string(metric) + " rises from " +
                            std::to_string(prev) + " to " +
                            std::to_string(cur) + " at point " +
                            std::to_string(i));
        return;
      }
    }
  }

  void floor(const std::vector<const ReportPoint*>& pts, const char* metric,
             double minimum, const std::string& assertion) {
    for (const ReportPoint* p : pts) {
      const double v = p->mean(metric);
      if (v < minimum) {
        fail(assertion, std::string(metric) + " = " + std::to_string(v) +
                            " below floor " + std::to_string(minimum) +
                            " (point " + p->key() + ")");
        return;
      }
    }
  }

 private:
  const ParsedReport& rep_;
  std::vector<GateFailure>& failures_;
};

}  // namespace check_detail

// Per-experiment shape assertions. Tolerances are deliberately loose — the
// gate guards the paper's qualitative claims (orderings, trends, floors),
// not exact values, so it stays green across seeds and machines.
inline std::vector<GateFailure> run_gates(const ParsedReport& rep) {
  std::vector<GateFailure> failures;
  check_detail::GateContext gate(rep, failures);
  const std::string& e = rep.experiment;

  // Benches that capture a causal trace publish its health in a "causal"
  // section (bench_common.h). Wherever one exists, the reconstructed span
  // DAG must be complete: no orphan spans (a parent edge pointing at a span
  // that was never emitted) and no ring-buffer drops — either one means the
  // critical-path numbers are computed from a partial DAG. Reports without
  // the section pass vacuously.
  for (const ReportPoint* p : rep.section("causal")) {
    if (p->mean("orphans") > 0.0) {
      gate.fail("causal-dag-complete",
                "orphan spans in causal section (" + p->key() + ")");
    }
    if (p->mean("dropped") > 0.0) {
      gate.fail("causal-no-dropped-events",
                "tracer dropped events behind causal section (" + p->key() +
                    ")");
    }
  }

  // Benches that capture a flight-recorder series publish its health in a
  // "stats" section (bench_common.h::StatsCapture). Wherever one exists:
  // the deterministic (sim-kind) projection must be byte-identical across
  // re-runs with different thread counts wherever the bench performed that
  // A/B (`identical` param), and derived channel utilization must be sane —
  // non-negative and below the bench's concurrency ceiling (`util_bounded`,
  // computed against the radio.max_cell_tx peak). Reports without the
  // section pass vacuously.
  for (const ReportPoint* p : rep.section("stats")) {
    const JsonValue* identical = p->param("identical");
    if (identical != nullptr &&
        (identical->type != JsonValue::Type::kBool || !identical->boolean)) {
      gate.fail("timeseries-deterministic",
                "sim-kind series projection differs across thread counts (" +
                    p->key() + ")");
    }
    if (const ReportMetric* util = p->metric("channel_util_max")) {
      const JsonValue* bounded = p->param("util_bounded");
      if (util->mean < 0.0 || bounded == nullptr ||
          bounded->type != JsonValue::Type::kBool || !bounded->boolean) {
        gate.fail("channel-utilization-bounded",
                  "channel utilization negative or above the concurrent-tx "
                  "ceiling (" + p->key() + ")");
      }
    }
  }

  if (e == "fig03_singlehop") {
    // Paper §V.4: raw UDP saturates low; leaky bucket much better; adding
    // ack/retransmission wins at every sender count.
    for (const ReportPoint& p : rep.points) {
      const std::string mode = p.str_param("mode");
      const double reception = p.mean("reception");
      if (mode == "raw UDP" && reception > 0.35) {
        gate.fail("raw-udp-saturates", "raw UDP reception " +
                                           std::to_string(reception) +
                                           " above 0.35");
      }
      if (mode == "leaky + ack" && reception < 0.8) {
        gate.fail("ack-reception-floor", "leaky+ack reception " +
                                             std::to_string(reception) +
                                             " below 0.8");
      }
    }
    for (const ReportPoint& p : rep.points) {
      if (p.str_param("mode") != "leaky + ack") continue;
      const double senders = p.num_param("senders");
      for (const ReportPoint& q : rep.points) {
        if (q.str_param("mode") == "leaky bucket" &&
            q.num_param("senders") == senders &&
            p.mean("reception") + 0.05 < q.mean("reception")) {
          gate.fail("ack-beats-leaky",
                    "at " + std::to_string(static_cast<int>(senders)) +
                        " senders ack reception " +
                        std::to_string(p.mean("reception")) +
                        " below leaky-only " +
                        std::to_string(q.mean("reception")));
        }
      }
    }
  } else if (e == "fig04_hopcount") {
    const auto pts = rep.section("main");
    gate.non_increasing(pts, "recall", 0.02, "recall-nonincreasing-in-hops");
    gate.non_decreasing(pts, "latency_s", 0.05, "latency-grows-with-hops");
    gate.non_decreasing(pts, "overhead_mb", 0.05,
                        "overhead-grows-with-hops");
    if (!pts.empty() && pts.front()->mean("recall") < 0.99) {
      gate.fail("one-hop-full-recall",
                "3x3 recall " + std::to_string(pts.front()->mean("recall")) +
                    " below 0.99");
    }
  } else if (e == "fig05_round_params") {
    // Larger windows must reach full recall at T_d = 0; the T_r sweep is
    // flat by design.
    for (const ReportPoint* p : rep.section("window_td")) {
      if (p->num_param("td") == 0.0 && p->num_param("window_s") >= 1.0 &&
          p->mean("recall") < 0.99) {
        gate.fail("td0-wide-window-recall",
                  "recall " + std::to_string(p->mean("recall")) +
                      " below 0.99 at window " +
                      std::to_string(p->num_param("window_s")));
      }
    }
    const auto tr = rep.section("tr_sweep");
    for (std::size_t i = 1; i < tr.size(); ++i) {
      if (std::fabs(tr[i]->mean("recall") - tr[0]->mean("recall")) > 0.05) {
        gate.fail("tr-sweep-flat", "recall varies by more than 0.05 across "
                                   "T_r values");
      }
    }
  } else if (e == "fig06_metadata_amount") {
    const auto pts = rep.section("main");
    gate.floor(pts, "recall", 0.99, "recall-stays-full");
    // Latency grows sub-linearly and dips between adjacent loads on single
    // seeds; the trend gate tolerates 25% local regression.
    gate.non_decreasing(pts, "latency_s", 0.25, "latency-grows-with-load");
    gate.non_decreasing(pts, "overhead_mb", 0.05,
                        "overhead-grows-with-load");
  } else if (e == "pdd_rounds") {
    gate.floor(rep.section("consumers"), "recall", 0.99,
               "per-consumer-recall");
    // Cumulative totals can only grow within each consumer's round log.
    const auto rounds = rep.section("rounds");
    for (std::size_t i = 1; i < rounds.size(); ++i) {
      if (rounds[i]->num_param("consumer") !=
          rounds[i - 1]->num_param("consumer")) {
        continue;
      }
      if (rounds[i]->mean("total") < rounds[i - 1]->mean("total")) {
        gate.fail("cumulative-monotone",
                  "total falls between rounds of consumer " +
                      std::to_string(static_cast<int>(
                          rounds[i]->num_param("consumer"))));
      }
    }
  } else if (e == "fig08_simultaneous_pdd") {
    gate.floor(rep.section("main"), "recall", 0.99, "recall-stays-full");
    // fig08 carries the worker-pool side of the determinism claim: when it
    // publishes a stats section, the A/B (series re-captured on a serial
    // re-run vs the pooled run) must have been performed.
    for (const ReportPoint* p : rep.section("stats")) {
      if (p->param("identical") == nullptr) {
        gate.fail("timeseries-deterministic",
                  "fig08 stats section missing the worker-pool determinism "
                  "A/B (" + p->key() + ")");
      }
    }
  } else if (e == "fig09_10_mobility_pdd") {
    gate.floor(rep.section("student_center"), "recall", 0.95,
               "student-center-recall");
    gate.floor(rep.section("classroom"), "recall", 0.95, "classroom-recall");
  } else if (e == "fig11_item_size") {
    const auto pts = rep.section("main");
    gate.floor(pts, "recall", 0.99, "recall-stays-full");
    gate.non_decreasing(pts, "latency_s", 0.05, "latency-grows-with-size");
    gate.non_decreasing(pts, "overhead_mb", 0.05,
                        "overhead-grows-with-size");
  } else if (e == "fig12_mobility_pdr") {
    // Under mobility a departing copy can strand a chunk; near-full recall
    // is the claim, not a perfect score on every seed (single-seed runs at
    // 2x event rates measure ~0.92).
    gate.floor(rep.section("main"), "recall", 0.9, "recall-stays-high");
  } else if (e == "fig13_14_redundancy") {
    // The paper's headline comparison: MDR overhead grows ~linearly with
    // redundancy while PDR stays flat, so MDR pays ~2x at 5 copies.
    std::vector<const ReportPoint*> mdr;
    std::vector<const ReportPoint*> pdr;
    for (const ReportPoint* p : rep.section("main")) {
      (p->str_param("method") == "MDR" ? mdr : pdr).push_back(p);
    }
    // Single-seed MDR overhead is noisy point-to-point (measured 658 -> 391
    // at redundancy 2 -> 3 on the CI smoke seed — also present at the seed
    // commit, the causal instrumentation is outcome-neutral); 50% relative
    // slack keeps the ~linear-growth claim while tolerating one-seed dips.
    gate.non_decreasing(mdr, "overhead_mb", 0.5, "mdr-overhead-monotone");
    if (!pdr.empty() && !mdr.empty()) {
      const ReportPoint* pdr5 = pdr.back();
      const ReportPoint* pdr1 = pdr.front();
      if (pdr5->mean("overhead_mb") > pdr1->mean("overhead_mb") * 1.15) {
        gate.fail("pdr-overhead-flat",
                  "PDR overhead grows more than 15% from redundancy 1 to 5");
      }
      const ReportPoint* mdr5 = mdr.back();
      if (mdr5->mean("overhead_mb") < pdr5->mean("overhead_mb")) {
        gate.fail("mdr-pays-at-high-redundancy",
                  "MDR overhead below PDR at redundancy 5");
      }
    }
    // Causal restatement of the figure: with more copies of every chunk the
    // nearest holder is closer, so PDR's median retrieval critical-path
    // *length* must not lengthen as redundancy rises. Hop count is the wrong
    // metric here — the path follows the single slowest chunk, and retx
    // bounces can triple its hops on one seed (measured 2,2,8,6,4 over
    // redundancy 1..5) — while path length shrinks cleanly (measured
    // 83.6 s -> 50.4 s with a worst adjacent uptick of +11%, far inside the
    // 50% relative tolerance non_increasing allows).
    std::vector<const ReportPoint*> causal_pdr;
    for (const ReportPoint* p : rep.section("causal")) {
      if (p->str_param("method") == "PDR") causal_pdr.push_back(p);
    }
    gate.non_increasing(causal_pdr, "cp_len_ms_p50", 0.5,
                        "pdr-critpath-shrinks-with-redundancy");
  } else if (e == "fig15_sequential_pdr") {
    const auto pts = rep.section("consumers");
    gate.floor(pts, "recall", 0.99, "recall-stays-full");
    // Per-consumer latency is noisy (position relative to the cached
    // corridor); the robust claim is that SOME later consumer beats the
    // first, cold-cache one.
    if (pts.size() >= 2) {
      double best_later = pts[1]->mean("latency_s");
      for (std::size_t i = 2; i < pts.size(); ++i) {
        best_later = std::fmin(best_later, pts[i]->mean("latency_s"));
      }
      if (best_later > pts.front()->mean("latency_s")) {
        gate.fail("caching-helps-later-consumers",
                  "no later consumer beat the first's latency");
      }
    }
  } else if (e == "fig16_simultaneous_pdr") {
    const auto pts = rep.section("main");
    gate.floor(pts, "recall", 0.99, "recall-stays-full");
    if (pts.size() >= 2 && pts.back()->mean("overhead_mb") <
                               pts.front()->mean("overhead_mb") * 0.95) {
      gate.fail("overhead-grows-with-consumers",
                "overhead at 5 consumers below the single-consumer run");
    }
  } else if (e == "tab_saturation") {
    // Two copies must not do worse than one at the same load. Scoped to the
    // "main" table: the stats section reuses the entries/redundancy params to
    // label its flight-recorder point but carries no recall metric.
    const auto main_pts = rep.section("main");
    for (const ReportPoint* pp : main_pts) {
      const ReportPoint& p = *pp;
      if (p.num_param("redundancy") != 2) continue;
      for (const ReportPoint* qp : main_pts) {
        const ReportPoint& q = *qp;
        if (q.num_param("redundancy") == 1 &&
            q.num_param("entries") == p.num_param("entries") &&
            p.mean("recall") + 0.05 < q.mean("recall")) {
          gate.fail("redundancy-helps",
                    "2-copy recall below 1-copy at " +
                        std::to_string(static_cast<int>(
                            p.num_param("entries"))) +
                        " entries");
        }
      }
    }
  } else if (e == "tab_transport_params") {
    const auto rates = rep.section("leaking_rate");
    if (rates.size() >= 2 && rates.back()->mean("reception") >
                                 rates.front()->mean("reception") + 0.05) {
      gate.fail("overdriven-leak-rate-hurts",
                "reception at the highest leak rate above the lowest");
    }
    const auto caps = rep.section("bucket_capacity");
    if (caps.size() >= 2 && caps.back()->mean("reception") >
                                caps.front()->mean("reception") + 0.05) {
      gate.fail("oversized-bucket-hurts",
                "reception at the largest bucket above the smallest");
    }
  } else if (e == "tab_ablations") {
    for (const char* section : {"pdd_simultaneous", "pdd_sequential"}) {
      const auto pts = rep.section(section);
      const ReportPoint* full = nullptr;
      for (const ReportPoint* p : pts) {
        if (p->str_param("variant") == "full PDS (baseline)") full = p;
      }
      if (full == nullptr) {
        gate.fail("baseline-present",
                  std::string("no full-PDS baseline row in ") + section);
        continue;
      }
      if (full->mean("recall") < 0.99) {
        gate.fail("baseline-recall", std::string(section) +
                                         " baseline recall below 0.99");
      }
      // No recall floor for the ablated variants: removing lingering
      // queries legitimately collapses recall — that collapse is the point
      // of the ablation.
    }
  } else if (e == "tab_energy") {
    // Radio energy can never undercut a silent, idle-listening network.
    for (const ReportPoint& p : rep.points) {
      if (p.mean("vs_idle") < 1.0) {
        gate.fail("energy-at-least-idle",
                  "total energy below pure idle for " + p.key());
      }
    }
  } else if (e == "tab_timeline") {
    gate.non_decreasing(rep.section("pdd"), "time_s", 0.0,
                        "pdd-progress-monotone");
    gate.non_decreasing(rep.section("pdr"), "time_s", 0.0,
                        "pdr-progress-monotone");
  } else if (e == "tab_cache_policies") {
    gate.floor(rep.section("main"), "recall", 0.99, "recall-stays-full");
  } else if (e == "faults") {
    // DESIGN.md §11: every fault class must recover — recall >= 0.9 after
    // restart/heal, and no session may hang past the horizon. The clean
    // baseline row additionally proves the fault plumbing itself costs
    // nothing: it must stay at the unfaulted experiments' full recall.
    for (const char* section : {"pdd", "pdr"}) {
      const auto pts = rep.section(section);
      if (pts.empty()) {
        gate.fail("fault-sections-present",
                  std::string("no points in section ") + section);
        continue;
      }
      gate.floor(pts, "recall", 0.9, "recall-recovers");
      for (const ReportPoint* p : pts) {
        if (p->mean("hung") > 0.0) {
          gate.fail("no-hung-sessions",
                    "hung sessions under class " + p->str_param("class") +
                        " in " + section);
        }
        if (p->str_param("class") == "baseline" && p->mean("recall") < 0.99) {
          gate.fail("baseline-full-recall",
                    std::string(section) + " baseline recall " +
                        std::to_string(p->mean("recall")) + " below 0.99");
        }
      }
    }
  } else if (e == "sim_perf") {
    for (const ReportPoint* p : rep.section("scenarios")) {
      const JsonValue* identical = p->param("stats_identical");
      if (identical == nullptr || identical->type != JsonValue::Type::kBool ||
          !identical->boolean) {
        gate.fail("grid-matches-brute-force",
                  "stats_identical not true for " + p->key());
      }
      if (p->mean("speedup") <= 0.0) {
        gate.fail("speedup-positive", "non-positive speedup for " + p->key());
      }
    }
  } else if (e == "scale") {
    // City-scale sweep (bench/tab_scale.cc). The determinism claims are
    // absolute: the calendar queue and the sharded radio are pure
    // optimisations, so the oracle and every shard row must report
    // bit-identical outcomes.
    const auto bit_identical = [&](const char* section,
                                   const char* assertion) {
      const auto pts = rep.section(section);
      if (pts.empty()) {
        gate.fail(assertion, std::string("no points in section ") + section);
        return;
      }
      for (const ReportPoint* p : pts) {
        const JsonValue* identical = p->param("identical");
        if (identical == nullptr ||
            identical->type != JsonValue::Type::kBool ||
            !identical->boolean) {
          gate.fail(assertion, "identical not true for " + p->key());
        }
      }
    };
    bit_identical("oracle", "calendar-matches-heap-oracle");
    bit_identical("shards", "outcome-independent-of-shard-threads");
    // Perf floors are loose (an order below a Release build on CI
    // hardware) — they catch collapses, not noise; CI layers stricter
    // env-driven floors on the bench binary itself.
    const auto scheduler = rep.section("scheduler");
    gate.floor(scheduler, "speedup", 2.0, "calendar-beats-heap");
    const auto scenarios = rep.section("scenarios");
    gate.floor(scenarios, "pdd.events_per_s", 20'000.0,
               "pdd-events-per-sec-floor");
    gate.floor(scenarios, "pdr.events_per_s", 20'000.0,
               "pdr-events-per-sec-floor");
    // Pervasive-caching workload: discovery and retrieval both complete at
    // every grid size; a recall drop at scale means the sim core (not the
    // protocol) broke under load.
    gate.floor(scenarios, "pdd.recall", 0.95, "pdd-recall-at-scale");
    gate.floor(scenarios, "pdr.recall", 0.95, "pdr-recall-at-scale");
    // Flight-recorder resource budget: the largest grid's peak RSS must hold
    // ROADMAP's memory target, and the determinism A/B must actually have
    // been run (the cross-experiment stats loop above only checks the
    // `identical` param when present).
    const auto stats = rep.section("stats");
    if (stats.empty()) {
      gate.fail("rss-peak-50k-budget", "no stats section in scale report");
    }
    for (const ReportPoint* p : stats) {
      if (p->param("identical") == nullptr) {
        gate.fail("timeseries-deterministic",
                  "scale stats section missing the shard-thread determinism "
                  "A/B (" + p->key() + ")");
      }
      if (p->mean("peak_rss_mb", -1.0) < 0.0) {
        gate.fail("rss-peak-50k-budget",
                  "scale stats section missing peak_rss_mb (" + p->key() +
                      ")");
      } else if (p->mean("peak_rss_mb") > kRssPeak50kBudgetMb) {
        gate.fail("rss-peak-50k-budget",
                  "peak RSS " + std::to_string(p->mean("peak_rss_mb")) +
                      " MB above the " +
                      std::to_string(kRssPeak50kBudgetMb) + " MB budget (" +
                      p->key() + ")");
      }
    }
  } else if (e == "wire") {
    // Wire-efficiency sweep (bench/tab_wire.cc; DESIGN.md §16). The v2
    // extensions are pure encoding changes, so recall must match classic
    // everywhere — and at the densest point the claim is quantitative:
    // bytes on the air per discovered entry drops at least 20%.
    const auto pts = rep.section("main");
    gate.floor(pts, "recall", 0.99, "wire-recall-stays-full");
    double densest = 0.0;
    for (const ReportPoint* p : pts) {
      densest = std::fmax(densest, p->num_param("entries"));
    }
    const ReportPoint* classic = nullptr;
    const ReportPoint* v2 = nullptr;
    for (const ReportPoint* p : pts) {
      if (p->num_param("entries") != densest) continue;
      if (p->str_param("variant") == "classic") classic = p;
      if (p->str_param("variant") == "v2") v2 = p;
    }
    if (classic == nullptr || v2 == nullptr) {
      gate.fail("wire-legs-present",
                "main section missing the classic or v2 leg at the densest "
                "point");
    } else {
      const double base = classic->mean("bytes_per_entry");
      const double opt = v2->mean("bytes_per_entry");
      if (opt > base * 0.8) {
        gate.fail("wire-bytes-per-entry-drop",
                  "v2 bytes/entry " + std::to_string(opt) +
                      " not >=20% below classic " + std::to_string(base) +
                      " at " + std::to_string(static_cast<int>(densest)) +
                      " entries");
      }
      if (std::fabs(v2->mean("recall") - classic->mean("recall")) > 0.005) {
        gate.fail("wire-recall-unchanged",
                  "v2 recall " + std::to_string(v2->mean("recall")) +
                      " differs from classic " +
                      std::to_string(classic->mean("recall")) +
                      " by more than 0.005");
      }
    }
    // PDR leg: the chunk bitmap is a strict re-encoding of the same
    // reconciliation state; retrieval must stay complete and overhead must
    // not regress (small slack for round-timing ripple).
    const auto pdr = rep.section("pdr");
    gate.floor(pdr, "recall", 0.99, "wire-pdr-complete");
    const ReportPoint* pdr_classic = nullptr;
    const ReportPoint* pdr_v2 = nullptr;
    for (const ReportPoint* p : pdr) {
      if (p->str_param("variant") == "classic") pdr_classic = p;
      if (p->str_param("variant") == "v2") pdr_v2 = p;
    }
    if (pdr_classic != nullptr && pdr_v2 != nullptr &&
        pdr_v2->mean("overhead_mb") >
            pdr_classic->mean("overhead_mb") * 1.05) {
      gate.fail("wire-pdr-bitmap-no-regression",
                "v2 retrieval overhead " +
                    std::to_string(pdr_v2->mean("overhead_mb")) +
                    " MB above classic " +
                    std::to_string(pdr_classic->mean("overhead_mb")) +
                    " MB by more than 5%");
    }
    // Adaptive spacing may trade latency for fewer low-yield rounds but can
    // never cost recall.
    gate.floor(rep.section("adaptive"), "recall", 0.99,
               "wire-adaptive-recall");
  }
  // Experiments without assertions (micro_primitives) pass vacuously.
  return failures;
}

// -- Diff ---------------------------------------------------------------------

struct DiffEntry {
  std::string point_key;
  std::string metric;
  double a = 0.0;
  double b = 0.0;
  double rel = 0.0;     // |a-b| / max(|a|,|b|,1e-12)
  bool missing = false;  // point or metric absent on one side
};

// Compares two runs of the same experiment; entries exceeding `tol` (or
// missing on one side) are returned, worst first left as emitted order.
inline std::vector<DiffEntry> diff_reports(const ParsedReport& a,
                                           const ParsedReport& b,
                                           double tol) {
  std::vector<DiffEntry> out;
  for (const ReportPoint& pa : a.points) {
    const ReportPoint* pb = nullptr;
    for (const ReportPoint& q : b.points) {
      if (q.key() == pa.key()) {
        pb = &q;
        break;
      }
    }
    if (pb == nullptr) {
      out.push_back({pa.key(), "<point>", 0.0, 0.0, 0.0, true});
      continue;
    }
    for (const auto& [name, ma] : pa.metrics) {
      const ReportMetric* mb = pb->metric(name);
      if (mb == nullptr) {
        out.push_back({pa.key(), name, ma.mean, 0.0, 0.0, true});
        continue;
      }
      const double scale =
          std::fmax(std::fabs(ma.mean), std::fmax(std::fabs(mb->mean), 1e-12));
      const double rel = std::fabs(ma.mean - mb->mean) / scale;
      if (rel > tol) {
        out.push_back({pa.key(), name, ma.mean, mb->mean, rel, false});
      }
    }
  }
  for (const ReportPoint& pb : b.points) {
    bool found = false;
    for (const ReportPoint& q : a.points) {
      if (q.key() == pb.key()) {
        found = true;
        break;
      }
    }
    if (!found) out.push_back({pb.key(), "<point>", 0.0, 0.0, 0.0, true});
  }
  return out;
}

}  // namespace pds::tools
