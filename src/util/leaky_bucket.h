// Application-level leaky bucket pacer (paper §V.2).
//
// The Android prototype found that the non-blocking UDP send API silently
// drops packets once the OS internal send buffer overflows (MAC broadcast
// drains at only ~7.2 Mb/s). PDS therefore paces its own sends with a leaky
// bucket of BucketCapacity bytes draining at LeakingRate.
//
// We model it with token-bucket semantics, which reproduce both observations
// in §V.4: a send may burst up to BucketCapacity bytes instantly (so a
// too-large capacity overestimates the free OS buffer and still overflows
// it), while sustained traffic is shaped to LeakingRate. Messages that find
// insufficient tokens wait (FIFO) rather than drop; `offer` returns the
// virtual time at which the message may be handed to the OS.
//
// A default-constructed bucket is disabled (raw-UDP behaviour): messages pass
// through immediately and overflow is left to the OS-buffer model in the
// radio layer.
#pragma once

#include <cstddef>

#include "common/sim_time.h"

namespace pds::util {

class LeakyBucket {
 public:
  // Disabled pacer: everything released immediately.
  LeakyBucket() = default;

  // `capacity_bytes` — maximum token accumulation (burst size);
  // `leak_rate_bps` — token refill rate in bits per second.
  LeakyBucket(std::size_t capacity_bytes, double leak_rate_bps);

  // Offer a message of `bytes` at time `now` (calls must be in nondecreasing
  // `now` order). Returns the time the message is released to the OS; FIFO
  // order is preserved across queued messages.
  [[nodiscard]] SimTime offer(SimTime now, std::size_t bytes);

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] double leak_rate_bps() const { return leak_rate_bps_; }

  // Release time of the last accepted message; messages offered before this
  // time queue behind it.
  [[nodiscard]] SimTime next_free() const { return last_release_; }

 private:
  bool enabled_ = false;
  std::size_t capacity_ = 0;
  double leak_rate_bps_ = 1.0;
  double tokens_ = 0.0;
  SimTime last_refill_ = SimTime::zero();
  SimTime last_release_ = SimTime::zero();
};

}  // namespace pds::util
