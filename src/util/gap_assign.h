// Min–max chunk-to-neighbor assignment (paper §IV-B, Eq. 1).
//
// Phase-2 retrieval must split the requested chunk set among neighbors so
// that (a) every chunk goes to a neighbor that can reach it at the minimum
// hop count and (b) the maximum per-neighbor load is minimized. The paper
// notes this is a max–min Generalized Assignment Problem (NP-hard) and uses a
// simple O(|N||C|^2) heuristic: assign each chunk to a least-hop-count
// neighbor, then repeatedly move one chunk off the most loaded neighbor onto
// another eligible neighbor while the maximum load still decreases.
//
// `solve_exact` does a brute-force search over assignments; it is exponential
// and exists only so tests can validate the heuristic on small instances.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pds::util {

struct GapInstance {
  // eligible[c] — indices of neighbors that can retrieve chunk c at the
  // least distance (the e_ij = 1 set, restricted as the paper's constraint
  // x_ij <= e_ij requires). Every chunk must have at least one eligible
  // neighbor. hop[c][k] is the hop count via eligible[c][k]; it only breaks
  // ties when a chunk is movable to a next-smallest-hop neighbor.
  std::size_t neighbor_count = 0;
  std::vector<std::vector<std::size_t>> eligible;
  std::vector<std::vector<int>> hop;
};

struct GapAssignment {
  // assignment[c] — neighbor index chunk c is requested from.
  std::vector<std::size_t> assignment;
  std::size_t max_load = 0;
};

// The paper's load-balancing heuristic.
[[nodiscard]] GapAssignment solve_min_max_heuristic(const GapInstance& inst);

// Naive assignment (first eligible neighbor, no balancing); the ablation
// baseline for DESIGN.md's "GAP balancing vs naive nearest" item.
[[nodiscard]] GapAssignment solve_naive(const GapInstance& inst);

// Exhaustive optimum; only call with |C| small (tests).
[[nodiscard]] GapAssignment solve_exact(const GapInstance& inst);

}  // namespace pds::util
