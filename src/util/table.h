// Aligned text tables for the experiment harnesses.
//
// Every bench binary prints the paper's reported series next to the measured
// one; this helper keeps that output consistent and readable.
#pragma once

#include <string>
#include <vector>

namespace pds::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  [[nodiscard]] std::string to_string() const;
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pds::util
