#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/assert.h"

namespace pds::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (const double x : samples_) m2 += (x - m) * (x - m);
  return std::sqrt(m2 / static_cast<double>(samples_.size() - 1));
}

double SampleSet::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::percentile(double p) const {
  PDS_ENSURE(p >= 0.0 && p <= 100.0);
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace pds::util
