// DedupCache is header-only (class template); this translation unit exists to
// anchor the target and explicitly instantiate the common configurations so
// template errors surface when the library builds, not first use.
#include "util/dedup_cache.h"

#include <cstdint>

namespace pds::util {

template class DedupCache<std::uint64_t>;

}  // namespace pds::util
