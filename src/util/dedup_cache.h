// Bounded set of recently seen identifiers.
//
// Used for the "Recent Responses" check (paper Alg. 2, step RR Lookup) and
// duplicate query suppression. Eviction is FIFO: in a broadcast medium a
// duplicate arrives within a handful of transmissions of the original, so a
// modest window suffices and memory stays bounded on small devices.
#pragma once

#include <cstddef>
#include <deque>
#include <unordered_set>

namespace pds::util {

template <typename Id>
class DedupCache {
 public:
  explicit DedupCache(std::size_t max_entries) : max_entries_(max_entries) {}

  // Returns true if `id` was newly inserted, false if it was already present
  // (i.e., a duplicate).
  bool insert(const Id& id) {
    if (seen_.contains(id)) return false;
    seen_.insert(id);
    order_.push_back(id);
    while (order_.size() > max_entries_) {
      seen_.erase(order_.front());
      order_.pop_front();
    }
    return true;
  }

  [[nodiscard]] bool contains(const Id& id) const { return seen_.contains(id); }
  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] std::size_t capacity() const { return max_entries_; }

  // Forget everything (crash-with-wipe fault semantics).
  void clear() {
    seen_.clear();
    order_.clear();
  }

 private:
  std::size_t max_entries_;
  std::unordered_set<Id> seen_;
  std::deque<Id> order_;
};

}  // namespace pds::util
