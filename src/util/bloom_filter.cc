#include "util/bloom_filter.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/assert.h"
#include "common/bytes.h"
#include "common/hash.h"

namespace pds::util {

BloomFilter::BloomFilter(std::size_t bits, std::uint32_t hash_count,
                         std::uint64_t seed)
    : bits_((bits + 63) / 64, 0), hash_count_(hash_count), seed_(seed) {
  PDS_ENSURE(bits > 0);
  PDS_ENSURE(hash_count > 0);
}

BloomFilter BloomFilter::with_capacity(std::size_t expected_items, double fpp,
                                       std::uint64_t seed) {
  PDS_ENSURE(fpp > 0.0 && fpp < 1.0);
  if (expected_items == 0) expected_items = 1;
  const double ln2 = std::log(2.0);
  const double m =
      -static_cast<double>(expected_items) * std::log(fpp) / (ln2 * ln2);
  const double k = m / static_cast<double>(expected_items) * ln2;
  const auto bits = static_cast<std::size_t>(std::ceil(m));
  const auto hashes =
      static_cast<std::uint32_t>(std::max(1.0, std::round(k)));
  return BloomFilter(std::max<std::size_t>(bits, 64), hashes, seed);
}

std::size_t BloomFilter::bit_index(std::uint64_t key, std::uint32_t i) const {
  // Kirsch–Mitzenmacher double hashing: h_i = h1 + i * h2, with both halves
  // derived from the (key, seed) pair so each round's family is independent.
  const std::uint64_t h1 = mix64(key ^ seed_);
  const std::uint64_t h2 = mix64(h1 ^ 0x5851f42d4c957f2dULL) | 1;
  return static_cast<std::size_t>((h1 + i * h2) % bit_count());
}

void BloomFilter::insert(std::uint64_t key) {
  PDS_ENSURE(!empty_filter());
  for (std::uint32_t i = 0; i < hash_count_; ++i) {
    const std::size_t b = bit_index(key, i);
    bits_[b / 64] |= (std::uint64_t{1} << (b % 64));
  }
  ++inserted_;
}

void BloomFilter::set_word(std::size_t index, std::uint64_t value) {
  PDS_ENSURE(index < bits_.size());
  bits_[index] = value;
}

bool BloomFilter::maybe_contains(std::uint64_t key) const {
  if (empty_filter()) return false;
  for (std::uint32_t i = 0; i < hash_count_; ++i) {
    const std::size_t b = bit_index(key, i);
    if ((bits_[b / 64] & (std::uint64_t{1} << (b % 64))) == 0) return false;
  }
  return true;
}

std::size_t BloomFilter::wire_size() const {
  if (empty_filter()) return 1;  // presence byte only
  return 1 + 4 + 1 + 8 + bits_.size() * 8;
}

double BloomFilter::fill_ratio() const {
  if (empty_filter()) return 0.0;
  std::size_t set = 0;
  for (std::uint64_t word : bits_) set += std::popcount(word);
  return static_cast<double>(set) / static_cast<double>(bit_count());
}

void BloomFilter::encode(std::vector<std::byte>& out) const {
  ByteWriter w;
  w.put_u8(empty_filter() ? 0 : 1);
  if (!empty_filter()) {
    w.put_u32(static_cast<std::uint32_t>(bit_count()));
    w.put_u8(static_cast<std::uint8_t>(hash_count_));
    w.put_u64(seed_);
    for (std::uint64_t word : bits_) w.put_u64(word);
  }
  auto bytes = w.take();
  out.insert(out.end(), bytes.begin(), bytes.end());
}

BloomFilter BloomFilter::decode(std::span<const std::byte> in) {
  ByteReader r(in);
  const std::uint8_t present = r.get_u8();
  if (present == 0) return BloomFilter{};
  const std::uint32_t bits = r.get_u32();
  const std::uint8_t hashes = r.get_u8();
  const std::uint64_t seed = r.get_u64();
  // Validate before constructing: the constructor's PDS_ENSUREs guard
  // against programmer error and abort, but malformed *wire* input must
  // surface as a catchable DecodeError. The size cap (32 MiB of bits)
  // keeps a hostile header from forcing a huge allocation.
  if (bits == 0 || hashes == 0 || bits > (1u << 28)) {
    throw DecodeError("malformed Bloom filter header");
  }
  // The header promises one u64 per 64-bit word; a short buffer would
  // fail word-by-word below anyway, but checking up front keeps a hostile
  // header from forcing the full (up to 32 MiB) zeroed allocation first
  // (pdsflow wire-taint).
  const std::size_t words = (std::size_t{bits} + 63) / 64;
  if (r.remaining() < words * 8) {
    throw DecodeError("Bloom filter body exceeds buffer");
  }
  BloomFilter f(bits, hashes, seed);
  for (auto& word : f.bits_) word = r.get_u64();
  return f;
}

}  // namespace pds::util
