#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/assert.h"

namespace pds::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  PDS_ENSURE(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << "  " << row[i];
      for (std::size_t pad = row[i].size(); pad < widths[i]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace pds::util
