#include "util/leaky_bucket.h"

#include <algorithm>

#include "common/assert.h"

namespace pds::util {

LeakyBucket::LeakyBucket(std::size_t capacity_bytes, double leak_rate_bps)
    : enabled_(true),
      capacity_(capacity_bytes),
      leak_rate_bps_(leak_rate_bps),
      tokens_(static_cast<double>(capacity_bytes)) {
  PDS_ENSURE(capacity_bytes > 0);
  PDS_ENSURE(leak_rate_bps > 0.0);
}

SimTime LeakyBucket::offer(SimTime now, std::size_t bytes) {
  if (!enabled_) return now;

  // FIFO: a message cannot be released before previously queued ones.
  SimTime t = std::max(now, last_release_);

  // Refill tokens up to capacity for the elapsed interval.
  const double elapsed = (t - last_refill_).as_seconds();
  tokens_ = std::min(static_cast<double>(capacity_),
                     tokens_ + elapsed * leak_rate_bps_ / 8.0);
  last_refill_ = t;

  const auto need = static_cast<double>(bytes);
  if (tokens_ >= need) {
    tokens_ -= need;
    last_release_ = t;
    return t;
  }

  // Wait until continued refill covers the deficit. For messages larger than
  // the bucket this still terminates: accumulation is uncapped while a
  // message is at the head of the queue (the pacer simply shapes it to the
  // leak rate).
  const double deficit = need - tokens_;
  const double wait_seconds = deficit * 8.0 / leak_rate_bps_;
  const SimTime release = t + SimTime::seconds(wait_seconds);
  tokens_ = 0.0;
  last_refill_ = release;
  last_release_ = release;
  return release;
}

}  // namespace pds::util
