// Running statistics and metric accumulation for experiments.
#pragma once

#include <cstddef>
#include <vector>

namespace pds::util {

// Welford online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Stores all samples; supports exact percentiles. Used where experiment
// harnesses report medians/p95 over runs.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  // Sample (n-1) standard deviation; 0 for fewer than two samples.
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  // Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  // Per-seed samples in insertion order (the obs::Report emitter records
  // them verbatim so aggregated JSON keeps the raw distribution).
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace pds::util
