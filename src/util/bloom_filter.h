// Bloom filter used for en-route redundancy detection (paper §III-B.2, §V.3).
//
// A consumer appends to each multi-round query a Bloom filter of the metadata
// entries it has already received; nodes on return paths test entries against
// it and transmit only the missing ones. Per the paper's §V.3, each discovery
// round uses a *different hash-function family* (here: a round-derived seed)
// so that an entry that is a false positive in one round is very unlikely to
// remain one across rounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pds::util {

class BloomFilter {
 public:
  // Empty filter that rejects nothing and contains nothing (m == 0). Useful
  // as "no filter attached" in first-round queries.
  BloomFilter() = default;

  // Filter with `bits` bits and `hash_count` hash functions drawn from the
  // family identified by `seed`.
  BloomFilter(std::size_t bits, std::uint32_t hash_count, std::uint64_t seed);

  // Sizes a filter for `expected_items` with target false-positive rate
  // `fpp`, using the standard optimum m = -n ln p / (ln 2)^2, k = m/n ln 2.
  static BloomFilter with_capacity(std::size_t expected_items, double fpp,
                                   std::uint64_t seed);

  void insert(std::uint64_t key);
  [[nodiscard]] bool maybe_contains(std::uint64_t key) const;

  [[nodiscard]] bool empty_filter() const { return bits_.empty(); }
  [[nodiscard]] std::size_t bit_count() const { return bits_.size() * 64; }
  [[nodiscard]] std::uint32_t hash_count() const { return hash_count_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::size_t inserted_count() const { return inserted_; }

  // Wire size in bytes: bit array + 13-byte header (u32 bit count, u8 hash
  // count, u64 seed). This is what the codec charges a query carrying it.
  [[nodiscard]] std::size_t wire_size() const;

  // Raw 64-bit block access for the delta-sync wire path (net/bloom_delta.h):
  // a frame patches individual words of a base filter instead of re-shipping
  // the whole bit array. `set_word` does not touch inserted_count(), which
  // only tracks keys added through insert().
  [[nodiscard]] std::span<const std::uint64_t> words() const { return bits_; }
  void set_word(std::size_t index, std::uint64_t value);

  // Fraction of bits set; diagnostic for tests.
  [[nodiscard]] double fill_ratio() const;

  void encode(std::vector<std::byte>& out) const;
  static BloomFilter decode(std::span<const std::byte> in);

 private:
  [[nodiscard]] std::size_t bit_index(std::uint64_t key,
                                      std::uint32_t i) const;

  std::vector<std::uint64_t> bits_;
  std::uint32_t hash_count_ = 0;
  std::uint64_t seed_ = 0;
  std::size_t inserted_ = 0;
};

}  // namespace pds::util
