#include "util/gap_assign.h"

#include <algorithm>
#include <limits>

#include "common/assert.h"

namespace pds::util {

namespace {

std::vector<std::size_t> loads_of(const GapInstance& inst,
                                  const std::vector<std::size_t>& assignment) {
  std::vector<std::size_t> loads(inst.neighbor_count, 0);
  for (std::size_t n : assignment) ++loads[n];
  return loads;
}

std::size_t max_load_of(const std::vector<std::size_t>& loads) {
  return loads.empty() ? 0 : *std::max_element(loads.begin(), loads.end());
}

void validate(const GapInstance& inst) {
  PDS_ENSURE(inst.eligible.size() == inst.hop.size());
  for (std::size_t c = 0; c < inst.eligible.size(); ++c) {
    PDS_ENSURE(!inst.eligible[c].empty());
    PDS_ENSURE(inst.eligible[c].size() == inst.hop[c].size());
    for (std::size_t n : inst.eligible[c]) PDS_ENSURE(n < inst.neighbor_count);
  }
}

}  // namespace

GapAssignment solve_naive(const GapInstance& inst) {
  validate(inst);
  GapAssignment out;
  out.assignment.reserve(inst.eligible.size());
  for (std::size_t c = 0; c < inst.eligible.size(); ++c) {
    // Pick the smallest-hop eligible neighbor, ties broken by listing order.
    std::size_t best = 0;
    for (std::size_t k = 1; k < inst.eligible[c].size(); ++k) {
      if (inst.hop[c][k] < inst.hop[c][best]) best = k;
    }
    out.assignment.push_back(inst.eligible[c][best]);
  }
  out.max_load = max_load_of(loads_of(inst, out.assignment));
  return out;
}

GapAssignment solve_min_max_heuristic(const GapInstance& inst) {
  validate(inst);
  GapAssignment out = solve_naive(inst);
  if (inst.eligible.empty()) return out;

  std::vector<std::size_t> loads = loads_of(inst, out.assignment);
  while (true) {
    const std::size_t current_max = max_load_of(loads);
    // Find a move (chunk from a max-loaded neighbor to another eligible
    // neighbor) that strictly lowers the maximum load. Among candidate
    // targets prefer the smallest hop count, as the paper's heuristic moves
    // the chunk to the neighbor with the "(possibly next) smallest" one.
    bool moved = false;
    for (std::size_t c = 0; c < inst.eligible.size() && !moved; ++c) {
      const std::size_t from = out.assignment[c];
      if (loads[from] != current_max) continue;
      std::size_t best_target = inst.neighbor_count;
      int best_hop = std::numeric_limits<int>::max();
      for (std::size_t k = 0; k < inst.eligible[c].size(); ++k) {
        const std::size_t to = inst.eligible[c][k];
        if (to == from) continue;
        if (loads[to] + 1 >= current_max) continue;  // would not improve
        if (inst.hop[c][k] < best_hop) {
          best_hop = inst.hop[c][k];
          best_target = to;
        }
      }
      if (best_target != inst.neighbor_count) {
        --loads[from];
        ++loads[best_target];
        out.assignment[c] = best_target;
        moved = true;
      }
    }
    if (!moved) break;
  }
  out.max_load = max_load_of(loads);
  return out;
}

namespace {

void exact_rec(const GapInstance& inst, std::size_t c,
               std::vector<std::size_t>& assignment,
               std::vector<std::size_t>& loads, std::size_t& best_max,
               std::vector<std::size_t>& best_assignment) {
  const std::size_t current = max_load_of(loads);
  if (current >= best_max) return;  // prune: can only grow
  if (c == inst.eligible.size()) {
    best_max = current;
    best_assignment = assignment;
    return;
  }
  for (std::size_t n : inst.eligible[c]) {
    ++loads[n];
    assignment[c] = n;
    exact_rec(inst, c + 1, assignment, loads, best_max, best_assignment);
    --loads[n];
  }
}

}  // namespace

GapAssignment solve_exact(const GapInstance& inst) {
  validate(inst);
  std::vector<std::size_t> assignment(inst.eligible.size(), 0);
  std::vector<std::size_t> loads(inst.neighbor_count, 0);
  std::size_t best_max = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> best_assignment = assignment;
  exact_rec(inst, 0, assignment, loads, best_max, best_assignment);
  GapAssignment out;
  out.assignment = std::move(best_assignment);
  out.max_load = best_max;
  return out;
}

}  // namespace pds::util
