// Unified metrics registry (DESIGN.md §9).
//
// Named monotonic counters, gauges and histograms, registered once per
// node/subsystem and incremented on the hot path through stable handles —
// after registration an increment is a plain pointer bump, no hashing, no
// lookup. Existing plain-struct statistics (sim::MediumStats,
// net::Transport::Stats) are surfaced through `expose_counter`, which makes
// the registry a *view* over the struct's fields: the structs keep their
// layout, `operator==` and bit-identical-stats guarantees, and the registry
// reads through the pointer at snapshot time.
//
// Snapshots are ordinary value types supporting diff (per-phase attribution:
// snapshot before and after a phase, subtract) and merge (aggregate per-node
// registries or per-seed runs into fleet totals).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace pds::obs {

// Monotonic event count. Handles returned by MetricsRegistry stay valid for
// the registry's lifetime (deque storage — no reallocation moves).
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// Last-written instantaneous value (queue depths, table sizes).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Fixed-bound histogram: `bounds` are upper bucket edges (ascending); one
// implicit overflow bucket collects everything above the last bound.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;  // bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

// A point-in-time copy of every registered metric, keyed by name.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

// later - earlier, per metric: counters/histogram buckets subtract (missing
// keys in `earlier` count as zero), gauges keep the later value.
[[nodiscard]] MetricsSnapshot diff(const MetricsSnapshot& later,
                                   const MetricsSnapshot& earlier);

// Element-wise sum: counters and histogram buckets add; gauges add (fleet
// totals of additive gauges like queue depths). Histograms with mismatched
// bounds keep `a`'s and add only counts/sums.
[[nodiscard]] MetricsSnapshot merge(const MetricsSnapshot& a,
                                    const MetricsSnapshot& b);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registers (or re-finds) a metric by name. Re-registration under the same
  // name returns the existing handle, so per-node adapters can be idempotent.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name, std::vector<double> bounds);

  // Adapter for existing stats structs: the registry reads `*source` at
  // snapshot time. The caller guarantees `source` outlives the registry use.
  void expose_counter(const std::string& name, const std::uint64_t* source);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  [[nodiscard]] std::size_t size() const;

 private:
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::map<std::string, Counter*> counter_by_name_;
  std::map<std::string, Gauge*> gauge_by_name_;
  std::map<std::string, Histogram*> histogram_by_name_;
  std::map<std::string, const std::uint64_t*> exposed_;
};

}  // namespace pds::obs
