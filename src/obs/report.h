// Experiment telemetry emitter (DESIGN.md §10).
//
// Every bench/ binary routes its results through a Report: the same points
// that render the human-readable stdout table (via util::Table, so printed
// bytes are identical to the pre-Report harnesses) are serialized as a
// schema-versioned BENCH_<experiment>.json — experiment id, the paper's
// expected series, per-point per-seed samples with mean/stddev/min/max, run
// parameters (runs, jobs, radio profile, ...) and a provenance stamp (git
// sha, build type, sanitizer flags). tools/pdsreport validates, renders,
// diffs and gates these files; CI archives them so the bench trajectory is
// an append-only, machine-diffable record.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.h"
#include "util/table.h"

namespace pds::obs {

// Schema identifier written into every report ("pds-bench-report/<version>").
inline constexpr const char* kReportSchema = "pds-bench-report/1";

// Minimal streaming JSON writer with deterministic output: doubles print in
// shortest round-trip form (std::to_chars), keys keep insertion order, and
// commas are managed by a nesting stack. Shared by Report and the `pdscli
// trace --json` renderer.
class JsonWriter {
 public:
  JsonWriter();

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  // Appends pre-rendered JSON (already quoted/escaped) as a value.
  JsonWriter& raw(std::string_view json);

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void comma();

  std::string out_;
  // One flag per open container: true until the first element is written.
  std::vector<bool> first_;
  bool after_key_ = false;
};

// Appends `v` to `out` in shortest round-trip decimal form.
void append_json_double(std::string& out, double v);
// Appends a quoted, escaped JSON string.
void append_json_string(std::string& out, std::string_view s);

class Report {
 public:
  struct Options {
    std::string experiment;  // id; JSON lands in BENCH_<experiment>.json
    std::string title;       // human title, e.g. "Fig. 4 — ..."
    std::string paper;       // the paper's expected series, quoted verbatim
    int runs = 0;            // seeds averaged per point
    int jobs = 0;            // PDS_BENCH_JOBS worker threads
  };

  // One data point: display cells (stdout table) and structured values
  // (JSON) are appended by the same call, so the two outputs cannot drift.
  class Point {
   public:
    // Identifying parameters: cell text is the JSON value (or `cell`).
    Point& param(const std::string& name, const std::string& value);
    Point& param(const std::string& name, std::int64_t value);
    // Real-valued sweep axis; the cell prints with the given precision, the
    // JSON value keeps full precision.
    Point& param(const std::string& name, double value, int precision);
    Point& param(const std::string& name, bool value, const char* cell);
    // JSON-only parameter (no table column).
    Point& hidden_param(const std::string& name, std::int64_t value);
    // Measured metric over per-seed samples; the cell prints the mean with
    // the given precision, exactly as util::Table::num did pre-migration.
    Point& metric(const std::string& name, const util::SampleSet& samples,
                  int precision);
    // Single-sample scalar metric (derived values, one-shot measurements).
    Point& metric(const std::string& name, double value, int precision);
    // Integer scalar metric; the cell prints without decimals.
    Point& metric(const std::string& name, std::int64_t value);
    // JSON-only metrics (no table column).
    Point& hidden_metric(const std::string& name, double value);
    Point& hidden_metric(const std::string& name,
                         const util::SampleSet& samples);

   private:
    friend class Report;
    struct Param {
      std::string name;
      std::string text;     // JSON string form (quoted) unless literal
      bool literal = false;  // true: emit text raw (numbers, booleans)
      bool hidden = false;
    };
    struct Metric {
      std::string name;
      std::vector<double> samples;
      bool hidden = false;
    };
    std::size_t section = 0;
    std::vector<Param> params;
    std::vector<Metric> metrics;
    std::vector<std::string> cells;
  };

  explicit Report(Options options);

  // Run-level parameters recorded under "params" (radio profile, mode, ...).
  void set_param(const std::string& name, const std::string& value);
  void set_param(const std::string& name, std::int64_t value);

  // Starts a printed table: subsequent point() calls belong to it and
  // contribute one row each. `section` names the point group in JSON.
  void begin_table(const std::string& section,
                   std::vector<std::string> headers);
  // Starts a JSON-only section (points carry no table cells).
  void begin_section(const std::string& section);
  Point& point();

  // Prints the current section's table — byte-identical to building the
  // same util::Table by hand.
  void print_table() const;

  [[nodiscard]] std::string to_json() const;
  // Writes to_json() to json_path() in the working directory. Returns false
  // (with a note on stderr) when the file cannot be written.
  bool write_json() const;
  [[nodiscard]] std::string json_path() const;

 private:
  Options options_;
  std::vector<std::pair<std::string, std::string>> params_;  // pre-rendered
  struct Section {
    std::string id;
    std::vector<std::string> headers;  // empty: JSON-only section
  };
  std::vector<Section> sections_;
  std::vector<Point> points_;
};

}  // namespace pds::obs
