// Sim-time structured event tracer (DESIGN.md §9).
//
// Protocol seams emit typed events keyed by (sim_time, node, subsystem,
// event) into a bounded ring buffer; a trace can be rendered as NDJSON (one
// JSON object per line — grep/jq-friendly, byte-deterministic for a given
// seed) or as Chrome `trace_event` JSON for chrome://tracing / Perfetto.
//
// Cost model, in order:
//  * compiled out — defining PDS_TRACE_DISABLED turns every PDS_TRACE_*
//    macro into a no-op statement; argument expressions are never evaluated;
//  * attached but disabled — the macro is one pointer test plus one branch;
//    argument expressions are never evaluated (they live inside the branch).
//    bench/micro_primitives --trace-overhead-gate verifies this costs <1%;
//  * enabled — a bounded-copy append into the ring (no allocation per event
//    beyond deque chunking, no I/O); rendering happens after the run.
//
// Emission never draws randomness and never schedules events, so a traced
// run is bit-identical (outcomes AND trace bytes) to an untraced one — the
// property tests/trace_determinism_test.cc locks in.
//
// All subsystem/event/arg-key strings must be string literals (the event
// stores the pointers). The schema catalog lives in tools/trace_schema.h and
// is enforced by tools/trace_check.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <ostream>
#include <string>

#include "common/sim_time.h"
#include "common/types.h"

namespace pds::obs {

// One typed key/value payload field. Only static strings are storable — the
// payload must stay POD-ish so ring-buffer churn never allocates.
struct Arg {
  enum class Kind : std::uint8_t { kNone, kInt, kUint, kDouble, kStr };

  const char* key = nullptr;
  Kind kind = Kind::kNone;
  union {
    std::int64_t i;
    std::uint64_t u;
    double d;
    const char* s;
  };

  constexpr Arg() : i(0) {}
  constexpr Arg(const char* k, std::int64_t v)
      : key(k), kind(Kind::kInt), i(v) {}
  constexpr Arg(const char* k, int v)
      : Arg(k, static_cast<std::int64_t>(v)) {}
  constexpr Arg(const char* k, std::uint64_t v)
      : key(k), kind(Kind::kUint), u(v) {}
  constexpr Arg(const char* k, std::uint32_t v)
      : Arg(k, static_cast<std::uint64_t>(v)) {}
  constexpr Arg(const char* k, double v)
      : key(k), kind(Kind::kDouble), d(v) {}
  constexpr Arg(const char* k, const char* v)
      : key(k), kind(Kind::kStr), s(v) {}
  Arg(const char* k, NodeId v) : Arg(k, static_cast<std::uint64_t>(v.value())) {}
};

// Span begin / span end / instant, mirroring Chrome trace_event phases.
enum class Phase : char { kBegin = 'B', kEnd = 'E', kInstant = 'i' };

struct TraceEvent {
  static constexpr std::size_t kMaxArgs = 6;

  std::int64_t t_us = 0;
  std::uint32_t node = NodeId::invalid().value();
  Phase phase = Phase::kInstant;
  const char* subsystem = "";
  const char* name = "";
  std::array<Arg, kMaxArgs> args;
  std::uint8_t arg_count = 0;
};

class Tracer {
 public:
  // `capacity` bounds the ring; 0 keeps every event (full-trace export).
  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  void emit(Phase phase, SimTime t, NodeId node, const char* subsystem,
            const char* name, std::initializer_list<Arg> args);

  void instant(SimTime t, NodeId node, const char* subsystem, const char* name,
               std::initializer_list<Arg> args = {}) {
    emit(Phase::kInstant, t, node, subsystem, name, args);
  }
  void begin(SimTime t, NodeId node, const char* subsystem, const char* name,
             std::initializer_list<Arg> args = {}) {
    emit(Phase::kBegin, t, node, subsystem, name, args);
  }
  void end(SimTime t, NodeId node, const char* subsystem, const char* name,
           std::initializer_list<Arg> args = {}) {
    emit(Phase::kEnd, t, node, subsystem, name, args);
  }

  [[nodiscard]] const std::deque<TraceEvent>& events() const {
    return events_;
  }
  // Events overwritten by ring wrap-around since the last clear().
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  void clear();

  // One JSON object per line, field order fixed — byte-deterministic.
  void write_ndjson(std::ostream& os) const;
  [[nodiscard]] std::string ndjson() const;
  // Chrome trace_event JSON array ({"traceEvents": [...]}); node maps to tid.
  void write_chrome_trace(std::ostream& os) const;

  static void format_ndjson(const TraceEvent& event, std::ostream& os);

  static constexpr std::size_t kDefaultCapacity = 1u << 16;

 private:
  bool enabled_ = true;
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace pds::obs

// Emission macros: `tracer` is a possibly-null pds::obs::Tracer*. Payload
// argument expressions are only evaluated when the tracer is attached and
// enabled. Build with -DPDS_TRACE_DISABLED to compile all of it out.
#ifndef PDS_TRACE_DISABLED
#define PDS_TRACE_EMIT(tracer, phase, t, node, subsystem, name, ...)         \
  do {                                                                       \
    ::pds::obs::Tracer* pds_trace_tr = (tracer);                             \
    if (pds_trace_tr != nullptr && pds_trace_tr->enabled()) {                \
      pds_trace_tr->emit((phase), (t), (node), (subsystem), (name),          \
                         {__VA_ARGS__});                                     \
    }                                                                        \
  } while (false)
#else
#define PDS_TRACE_EMIT(tracer, phase, t, node, subsystem, name, ...) \
  do {                                                               \
  } while (false)
#endif

#define PDS_TRACE_INSTANT(tracer, t, node, subsystem, name, ...)          \
  PDS_TRACE_EMIT(tracer, ::pds::obs::Phase::kInstant, t, node, subsystem, \
                 name, __VA_ARGS__)
#define PDS_TRACE_BEGIN(tracer, t, node, subsystem, name, ...)          \
  PDS_TRACE_EMIT(tracer, ::pds::obs::Phase::kBegin, t, node, subsystem, \
                 name, __VA_ARGS__)
#define PDS_TRACE_END(tracer, t, node, subsystem, name, ...)          \
  PDS_TRACE_EMIT(tracer, ::pds::obs::Phase::kEnd, t, node, subsystem, \
                 name, __VA_ARGS__)
