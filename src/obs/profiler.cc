#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "obs/report.h"

namespace pds::obs {

namespace {

// Wall-clock source. The profiler is the one library component allowed to
// read the host clock (pdslint wall-clock allowlist): its readings feed only
// wall-side observability output, never simulation state.
std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Current open scope per thread: nesting parent for the next Scope opened on
// this thread against the same profiler. A scope opened against a different
// profiler starts its own root — interleaved profilers stay independent.
struct Cursor {
  const Profiler* profiler = nullptr;
  int node = -1;
};
thread_local Cursor t_cursor;

}  // namespace

int Profiler::intern(int parent, const char* name) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->parent == parent &&
        (nodes_[i]->name == name ||
         std::strcmp(nodes_[i]->name, name) == 0)) {
      return static_cast<int>(i);
    }
  }
  nodes_.push_back(std::make_unique<Node>(name, parent));
  return static_cast<int>(nodes_.size() - 1);
}

Profiler::Scope::Scope(Profiler* profiler, const char* name) {
  if (profiler == nullptr || !profiler->enabled()) return;
  profiler_ = profiler;
  parent_ = t_cursor.profiler == profiler ? t_cursor.node : -1;
  node_ = profiler->intern(parent_, name);
  t_cursor = Cursor{profiler, node_};
  start_ns_ = now_ns();
}

Profiler::Scope::~Scope() {
  if (profiler_ == nullptr) return;
  const std::int64_t elapsed = now_ns() - start_ns_;
  Node& node = *profiler_->nodes_[static_cast<std::size_t>(node_)];
  node.ns.fetch_add(elapsed, std::memory_order_relaxed);
  node.calls.fetch_add(1, std::memory_order_relaxed);
  t_cursor = Cursor{profiler_, parent_};
}

std::vector<Profiler::Entry> Profiler::snapshot() const {
  std::vector<Entry> out;
  std::vector<std::string> paths;
  std::vector<int> depths;
  const std::lock_guard<std::mutex> lock(mu_);
  paths.resize(nodes_.size());
  depths.resize(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = *nodes_[i];
    if (n.parent < 0) {
      paths[i] = n.name;
      depths[i] = 0;
    } else {
      // Parents are always interned before their children, so parent paths
      // are already built when we reach `i`.
      paths[i] = paths[static_cast<std::size_t>(n.parent)] + "/" + n.name;
      depths[i] = depths[static_cast<std::size_t>(n.parent)] + 1;
    }
    out.push_back(Entry{paths[i], depths[i],
                        n.ns.load(std::memory_order_relaxed),
                        n.calls.load(std::memory_order_relaxed)});
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.path < b.path; });
  return out;
}

std::vector<Profiler::Entry> Profiler::merge_snapshots(
    const std::vector<std::vector<Entry>>& parts) {
  std::vector<Entry> out;
  for (const std::vector<Entry>& part : parts) {
    for (const Entry& e : part) {
      auto it = std::find_if(out.begin(), out.end(), [&](const Entry& o) {
        return o.path == e.path;
      });
      if (it == out.end()) {
        out.push_back(e);
      } else {
        it->ns += e.ns;
        it->calls += e.calls;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.path < b.path; });
  return out;
}

std::string Profiler::profile_json_line(const std::vector<Entry>& entries) {
  std::string out = "{\"profile\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    if (i > 0) out += ',';
    out += "{\"path\":";
    append_json_string(out, e.path);
    out += ",\"depth\":";
    append_json_double(out, static_cast<double>(e.depth));
    out += ",\"ns\":";
    append_json_double(out, static_cast<double>(e.ns));
    out += ",\"calls\":";
    append_json_double(out, static_cast<double>(e.calls));
    out += '}';
  }
  out += "]}\n";
  return out;
}

}  // namespace pds::obs
