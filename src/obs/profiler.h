// Scoped wall-clock profiler with a hierarchical subsystem tree.
//
// A Profiler accumulates wall-clock time per named scope, nested by runtime
// scope nesting: `PDS_PROF_SCOPE(prof, "radio")` inside an open "sim" scope
// accumulates under the path "sim/radio". Scope names are string literals
// registered in tools/stats_schema.h (pdslint rule `stats-schema`).
//
// Threading: accumulation is atomic and the current-scope cursor is
// thread-local, so shard workers (sim/shard_executor.h) and
// bench::run_indexed seed workers can all hold scopes against the same
// Profiler concurrently. Tree registration takes a mutex but only on first
// sight of a (parent, name) pair; steady state is two atomic adds per scope.
// `snapshot()` flattens the tree sorted by path — the *structure* is
// deterministic for a deterministic run even though the wall durations are
// not, and `merge_snapshots` folds per-run snapshots together in argument
// order so a PDS_BENCH_JOBS sweep merges identically however runs were
// scheduled across workers.
//
// Wall-clock readings never feed simulation state; a null or disabled
// profiler costs one pointer compare per scope.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pds::obs {

class Profiler {
 public:
  Profiler() = default;

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  // RAII scope. Inert when `profiler` is null or disabled.
  class Scope {
   public:
    Scope(Profiler* profiler, const char* name);
    ~Scope();

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Profiler* profiler_ = nullptr;
    int node_ = -1;
    int parent_ = -1;
    std::int64_t start_ns_ = 0;
  };

  struct Entry {
    std::string path;  // "sim/radio/classify-shards"
    int depth = 0;
    std::int64_t ns = 0;
    std::uint64_t calls = 0;
  };

  // Flattened tree, sorted by path (deterministic structure).
  [[nodiscard]] std::vector<Entry> snapshot() const;

  // Folds many per-run snapshots into one, summing ns/calls by path; output
  // sorted by path regardless of input order.
  [[nodiscard]] static std::vector<Entry> merge_snapshots(
      const std::vector<std::vector<Entry>>& parts);

  // One NDJSON line `{"profile":[{"path":...,"depth":N,"ns":...,
  // "calls":...},...]}\n` — appended after a TimeSeries body so one file
  // carries both captures (tools/stats_analysis.h parses it back).
  [[nodiscard]] static std::string profile_json_line(
      const std::vector<Entry>& entries);

 private:
  struct Node {
    const char* name;
    int parent;  // -1 = root
    std::atomic<std::int64_t> ns{0};
    std::atomic<std::uint64_t> calls{0};

    Node(const char* n, int p) : name(n), parent(p) {}
  };

  // Finds or creates the child of `parent` named `name`; lock-free on the
  // hit path (nodes are append-only and never reallocated).
  int intern(int parent, const char* name);

  mutable std::mutex mu_;
  // deque-like stable storage: nodes never move once created.
  std::vector<std::unique_ptr<Node>> nodes_;
  std::atomic<bool> enabled_{true};

  friend class Scope;
};

}  // namespace pds::obs

// Token-pasting indirection so two scopes on different lines coexist.
#define PDS_PROF_CONCAT_INNER(a, b) a##b
#define PDS_PROF_CONCAT(a, b) PDS_PROF_CONCAT_INNER(a, b)
// Opens a profiler scope for the rest of the enclosing block. `name` must be
// a literal registered in tools/stats_schema.h (pdslint `stats-schema`).
#define PDS_PROF_SCOPE(profiler, name)                  \
  const pds::obs::Profiler::Scope PDS_PROF_CONCAT(      \
      pds_prof_scope_, __LINE__)((profiler), (name))
