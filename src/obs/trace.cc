#include "obs/trace.h"

#include <charconv>
#include <sstream>

namespace pds::obs {
namespace {

// Doubles print via shortest round-trip form (std::to_chars) so NDJSON output
// is byte-deterministic across runs and build hosts.
void append_double(std::ostream& os, double v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec == std::errc{}) {
    os.write(buf, ptr - buf);
  } else {
    os << v;
  }
}

// Subsystem/event/key strings are literals we control (no quotes/control
// characters), but escape defensively so output is always valid JSON.
void append_json_string(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_arg_value(std::ostream& os, const Arg& arg) {
  switch (arg.kind) {
    case Arg::Kind::kInt:
      os << arg.i;
      break;
    case Arg::Kind::kUint:
      os << arg.u;
      break;
    case Arg::Kind::kDouble:
      append_double(os, arg.d);
      break;
    case Arg::Kind::kStr:
      append_json_string(os, arg.s);
      break;
    case Arg::Kind::kNone:
      os << "null";
      break;
  }
}

void append_args_object(std::ostream& os, const TraceEvent& event) {
  os << '{';
  for (std::uint8_t i = 0; i < event.arg_count; ++i) {
    if (i > 0) os << ',';
    append_json_string(os, event.args[i].key);
    os << ':';
    append_arg_value(os, event.args[i]);
  }
  os << '}';
}

}  // namespace

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {}

void Tracer::emit(Phase phase, SimTime t, NodeId node, const char* subsystem,
                  const char* name, std::initializer_list<Arg> args) {
  if (!enabled_) return;
  if (capacity_ != 0 && events_.size() == capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  TraceEvent& event = events_.emplace_back();
  event.t_us = t.as_micros();
  event.node = node.value();
  event.phase = phase;
  event.subsystem = subsystem;
  event.name = name;
  for (const Arg& arg : args) {
    if (event.arg_count == TraceEvent::kMaxArgs) break;
    event.args[event.arg_count++] = arg;
  }
}

void Tracer::clear() {
  events_.clear();
  dropped_ = 0;
}

void Tracer::format_ndjson(const TraceEvent& event, std::ostream& os) {
  os << "{\"t\":" << event.t_us << ",\"node\":" << event.node << ",\"ph\":\""
     << static_cast<char>(event.phase) << "\",\"sub\":";
  append_json_string(os, event.subsystem);
  os << ",\"ev\":";
  append_json_string(os, event.name);
  os << ",\"args\":";
  append_args_object(os, event);
  os << "}";
}

void Tracer::write_ndjson(std::ostream& os) const {
  for (const TraceEvent& event : events_) {
    format_ndjson(event, os);
    os << '\n';
  }
  // Ring-buffer overflow is data loss an analyzer must not paper over: a
  // synthetic trailer records how many events were silently evicted so
  // trace_check / causal analysis can refuse truncated captures.
  if (dropped_ > 0) {
    os << "{\"t\":0,\"node\":" << NodeId::invalid().value()
       << ",\"ph\":\"i\",\"sub\":\"trace\",\"ev\":\"drops\",\"args\":{\"count\":"
       << dropped_ << "}}\n";
  }
}

std::string Tracer::ndjson() const {
  std::ostringstream os;
  write_ndjson(os);
  return os.str();
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events_) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":";
    append_json_string(os, event.name);
    os << ",\"cat\":";
    append_json_string(os, event.subsystem);
    os << ",\"ph\":\"" << static_cast<char>(event.phase)
       << "\",\"ts\":" << event.t_us << ",\"pid\":0,\"tid\":" << event.node;
    // Chrome renders instants with a scope field; 't' = thread-scoped.
    if (event.phase == Phase::kInstant) os << ",\"s\":\"t\"";
    os << ",\"args\":";
    append_args_object(os, event);
    os << '}';
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace pds::obs
