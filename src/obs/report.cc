#include "obs/report.h"

#include <charconv>
#include <cstdio>

#include "common/assert.h"

// Provenance stamp: filled in by CMake (git sha at configure time, build
// type, sanitizer flags); "unknown" when built outside the tree.
#ifndef PDS_BUILD_GIT_SHA
#define PDS_BUILD_GIT_SHA "unknown"
#endif
#ifndef PDS_BUILD_TYPE
#define PDS_BUILD_TYPE "unknown"
#endif
#ifndef PDS_BUILD_SANITIZERS
#define PDS_BUILD_SANITIZERS "unknown"
#endif

namespace pds::obs {

void append_json_double(std::string& out, double v) {
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  PDS_ENSURE(ec == std::errc{});
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

// -- JsonWriter ---------------------------------------------------------------

JsonWriter::JsonWriter() { out_.reserve(4096); }

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_.push_back(',');
    }
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_.push_back('{');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  PDS_ENSURE(!first_.empty());
  first_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_.push_back('[');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  PDS_ENSURE(!first_.empty());
  first_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma();
  append_json_string(out_, k);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  append_json_string(out_, s);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  append_json_double(out_, v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  comma();
  out_ += json;
  return *this;
}

// -- Report::Point ------------------------------------------------------------

Report::Point& Report::Point::param(const std::string& name,
                                    const std::string& value) {
  params.push_back({name, value, /*literal=*/false, /*hidden=*/false});
  cells.push_back(value);
  return *this;
}

Report::Point& Report::Point::param(const std::string& name,
                                    std::int64_t value) {
  params.push_back(
      {name, std::to_string(value), /*literal=*/true, /*hidden=*/false});
  cells.push_back(std::to_string(value));
  return *this;
}

Report::Point& Report::Point::param(const std::string& name, double value,
                                    int precision) {
  std::string rendered;
  append_json_double(rendered, value);
  params.push_back({name, std::move(rendered), /*literal=*/true,
                    /*hidden=*/false});
  cells.push_back(util::Table::num(value, precision));
  return *this;
}

Report::Point& Report::Point::param(const std::string& name, bool value,
                                    const char* cell) {
  params.push_back(
      {name, value ? "true" : "false", /*literal=*/true, /*hidden=*/false});
  cells.emplace_back(cell);
  return *this;
}

Report::Point& Report::Point::hidden_param(const std::string& name,
                                           std::int64_t value) {
  params.push_back(
      {name, std::to_string(value), /*literal=*/true, /*hidden=*/true});
  return *this;
}

Report::Point& Report::Point::metric(const std::string& name,
                                     const util::SampleSet& samples,
                                     int precision) {
  metrics.push_back({name, samples.samples(), /*hidden=*/false});
  cells.push_back(util::Table::num(samples.mean(), precision));
  return *this;
}

Report::Point& Report::Point::metric(const std::string& name, double value,
                                     int precision) {
  metrics.push_back({name, {value}, /*hidden=*/false});
  cells.push_back(util::Table::num(value, precision));
  return *this;
}

Report::Point& Report::Point::metric(const std::string& name,
                                     std::int64_t value) {
  metrics.push_back({name, {static_cast<double>(value)}, /*hidden=*/false});
  cells.push_back(std::to_string(value));
  return *this;
}

Report::Point& Report::Point::hidden_metric(const std::string& name,
                                            double value) {
  metrics.push_back({name, {value}, /*hidden=*/true});
  return *this;
}

Report::Point& Report::Point::hidden_metric(const std::string& name,
                                            const util::SampleSet& samples) {
  metrics.push_back({name, samples.samples(), /*hidden=*/true});
  return *this;
}

// -- Report -------------------------------------------------------------------

Report::Report(Options options) : options_(std::move(options)) {
  PDS_ENSURE(!options_.experiment.empty());
}

void Report::set_param(const std::string& name, const std::string& value) {
  std::string rendered;
  append_json_string(rendered, value);
  params_.emplace_back(name, std::move(rendered));
}

void Report::set_param(const std::string& name, std::int64_t value) {
  params_.emplace_back(name, std::to_string(value));
}

void Report::begin_table(const std::string& section,
                         std::vector<std::string> headers) {
  PDS_ENSURE(!headers.empty());
  sections_.push_back({section, std::move(headers)});
}

void Report::begin_section(const std::string& section) {
  sections_.push_back({section, {}});
}

Report::Point& Report::point() {
  PDS_ENSURE(!sections_.empty());
  points_.emplace_back();
  points_.back().section = sections_.size() - 1;
  return points_.back();
}

void Report::print_table() const {
  PDS_ENSURE(!sections_.empty());
  const Section& section = sections_.back();
  PDS_ENSURE(!section.headers.empty());
  util::Table table(section.headers);
  const std::size_t index = sections_.size() - 1;
  for (const Point& p : points_) {
    if (p.section == index) table.add_row(p.cells);
  }
  table.print();
}

std::string Report::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kReportSchema);
  w.key("experiment").value(options_.experiment);
  w.key("title").value(options_.title);
  w.key("paper").value(options_.paper);
  w.key("run").begin_object();
  w.key("runs").value(static_cast<std::int64_t>(options_.runs));
  w.key("jobs").value(static_cast<std::int64_t>(options_.jobs));
  w.end_object();
  w.key("params").begin_object();
  for (const auto& [name, rendered] : params_) {
    // Values are pre-rendered JSON (quoted strings or bare numbers).
    w.key(name).raw(rendered);
  }
  w.end_object();
  w.key("provenance").begin_object();
  w.key("git_sha").value(PDS_BUILD_GIT_SHA);
  w.key("build_type").value(PDS_BUILD_TYPE);
  w.key("sanitizers").value(PDS_BUILD_SANITIZERS);
  w.end_object();
  w.key("points").begin_array();
  for (const Point& p : points_) {
    w.begin_object();
    w.key("section").value(sections_[p.section].id);
    w.key("params").begin_object();
    for (const Point::Param& param : p.params) {
      if (param.literal) {
        w.key(param.name).raw(param.text);
      } else {
        w.key(param.name).value(param.text);
      }
    }
    w.end_object();
    w.key("metrics").begin_object();
    for (const Point::Metric& m : p.metrics) {
      util::SampleSet set;
      for (const double s : m.samples) set.add(s);
      w.key(m.name).begin_object();
      w.key("count").value(static_cast<std::uint64_t>(set.count()));
      w.key("mean").value(set.mean());
      w.key("stddev").value(set.stddev());
      w.key("min").value(set.min());
      w.key("max").value(set.max());
      w.key("samples").begin_array();
      for (const double s : m.samples) w.value(s);
      w.end_array();
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string json = w.take();
  json.push_back('\n');
  return json;
}

std::string Report::json_path() const {
  return "BENCH_" + options_.experiment + ".json";
}

bool Report::write_json() const {
  const std::string path = json_path();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "report: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string json = to_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    std::fprintf(stderr, "report: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace pds::obs
