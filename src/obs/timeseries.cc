#include "obs/timeseries.h"

#include <cstdio>
#include <cstring>

#include "obs/report.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace pds::obs {

double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // kilobytes
#endif
#else
  return 0.0;
#endif
}

int TimeSeries::column(const char* name, Kind kind) {
  for (std::size_t i = 0; i < cols_.size(); ++i) {
    if (std::strcmp(cols_[i].name, name) == 0) return static_cast<int>(i);
  }
  cols_.push_back(Column{name, kind});
  staged_.push_back(0.0);
  return static_cast<int>(cols_.size() - 1);
}

void TimeSeries::reset(SimTime start) {
  rows_.clear();
  next_at_ = start + interval_;
}

void TimeSeries::step() {
  const SimTime at = next_at_;
  next_at_ = next_at_ + interval_;
  if (!enabled_ || !collector_) return;
  staged_.assign(cols_.size(), 0.0);
  collector_(at, *this);
  rows_.push_back(Row{at, staged_});
}

std::string TimeSeries::ndjson(bool include_wall) const {
  std::string out;
  out.reserve(64 + rows_.size() * (16 + cols_.size() * 8));
  out += "{\"schema\":\"";
  out += kTimeSeriesSchema;
  out += "\",\"interval_us\":";
  out += std::to_string(interval_.as_micros());
  out += ",\"columns\":[";
  bool first = true;
  for (const Column& c : cols_) {
    if (!include_wall && c.kind == Kind::kWall) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, c.name);
    out += ",\"kind\":\"";
    out += c.kind == Kind::kSim ? "sim" : "wall";
    out += "\"}";
  }
  out += "]}\n";
  for (const Row& row : rows_) {
    out += "{\"t_us\":";
    out += std::to_string(row.at.as_micros());
    out += ",\"v\":[";
    first = true;
    for (std::size_t i = 0; i < cols_.size(); ++i) {
      if (!include_wall && cols_[i].kind == Kind::kWall) continue;
      if (!first) out += ',';
      first = false;
      append_json_double(out, row.v[i]);
    }
    out += "]}\n";
  }
  return out;
}

bool TimeSeries::write_ndjson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = ndjson(true);
  const bool wrote = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return (std::fclose(f) == 0) && wrote;
}

}  // namespace pds::obs
