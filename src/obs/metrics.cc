#include "obs/metrics.h"

#include <algorithm>

#include "common/assert.h"

namespace pds::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  PDS_ENSURE(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++buckets_[i];
  ++count_;
  sum_ += v;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  if (auto it = counter_by_name_.find(name); it != counter_by_name_.end()) {
    return it->second;
  }
  counters_.emplace_back();
  Counter* handle = &counters_.back();
  counter_by_name_.emplace(name, handle);
  return handle;
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  if (auto it = gauge_by_name_.find(name); it != gauge_by_name_.end()) {
    return it->second;
  }
  gauges_.emplace_back();
  Gauge* handle = &gauges_.back();
  gauge_by_name_.emplace(name, handle);
  return handle;
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  if (auto it = histogram_by_name_.find(name);
      it != histogram_by_name_.end()) {
    return it->second;
  }
  histograms_.emplace_back(std::move(bounds));
  Histogram* handle = &histograms_.back();
  histogram_by_name_.emplace(name, handle);
  return handle;
}

void MetricsRegistry::expose_counter(const std::string& name,
                                     const std::uint64_t* source) {
  PDS_ENSURE(source != nullptr);
  exposed_[name] = source;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  for (const auto& [name, c] : counter_by_name_) {
    out.counters.emplace(name, c->value());
  }
  for (const auto& [name, source] : exposed_) {
    out.counters.emplace(name, *source);
  }
  for (const auto& [name, g] : gauge_by_name_) {
    out.gauges.emplace(name, g->value());
  }
  for (const auto& [name, h] : histogram_by_name_) {
    out.histograms.emplace(name,
                           HistogramSnapshot{.bounds = h->bounds(),
                                             .buckets = h->buckets(),
                                             .count = h->count(),
                                             .sum = h->sum()});
  }
  return out;
}

std::size_t MetricsRegistry::size() const {
  return counter_by_name_.size() + exposed_.size() + gauge_by_name_.size() +
         histogram_by_name_.size();
}

MetricsSnapshot diff(const MetricsSnapshot& later,
                     const MetricsSnapshot& earlier) {
  MetricsSnapshot out = later;
  for (auto& [name, value] : out.counters) {
    if (auto it = earlier.counters.find(name); it != earlier.counters.end()) {
      value -= std::min(value, it->second);
    }
  }
  for (auto& [name, h] : out.histograms) {
    auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end() || it->second.bounds != h.bounds) {
      continue;
    }
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      h.buckets[i] -= std::min(h.buckets[i], it->second.buckets[i]);
    }
    h.count -= std::min(h.count, it->second.count);
    h.sum -= it->second.sum;
  }
  return out;
}

MetricsSnapshot merge(const MetricsSnapshot& a, const MetricsSnapshot& b) {
  MetricsSnapshot out = a;
  for (const auto& [name, value] : b.counters) out.counters[name] += value;
  for (const auto& [name, value] : b.gauges) out.gauges[name] += value;
  for (const auto& [name, h] : b.histograms) {
    auto [it, inserted] = out.histograms.emplace(name, h);
    if (inserted) continue;
    HistogramSnapshot& dst = it->second;
    if (dst.bounds == h.bounds) {
      for (std::size_t i = 0; i < dst.buckets.size(); ++i) {
        dst.buckets[i] += h.buckets[i];
      }
    }
    dst.count += h.count;
    dst.sum += h.sum;
  }
  return out;
}

}  // namespace pds::obs
