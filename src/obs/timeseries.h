// Deterministic sim-time resource sampler ("flight recorder", DESIGN.md §15).
//
// A TimeSeries records fixed-interval snapshots of simulation state: the
// owner registers named columns up front, installs a collector callback that
// reads whatever subsystems it wants to watch, and the Simulator drives
// `advance_to` from its run loop so a row is committed at every interval
// boundary the virtual clock crosses. Sampling sits entirely off the outcome
// path — the collector only *reads* state, consumes no RNG and schedules no
// events — so a sampled run is byte-identical to an unsampled one
// (tests/timeseries_test.cc), and a detached sampler costs the run loop one
// pointer compare per event (<1% gated by
// `micro_primitives --stats-overhead-gate`).
//
// Columns carry a kind:
//  * kSim  — derived purely from simulation state; byte-identical for the
//    same seed across shard_threads and PDS_BENCH_JOBS (the
//    `timeseries-deterministic` gate compares this projection);
//  * kWall — address-space / wall-clock facts (peak RSS, thread-local pool
//    occupancy) that legitimately vary with thread count; excluded from the
//    deterministic projection.
//
// Serialized form is a compact columnar NDJSON (`pds-timeseries/1`): one
// header object naming the columns, then one row object per interval with
// the values in column order. `pdscli stats` renders/summarizes these files
// and `tools/stats_schema.h` is the catalog every literal column name must
// be registered in (pdslint rule `stats-schema`).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace pds::obs {

inline constexpr const char* kTimeSeriesSchema = "pds-timeseries/1";

// Peak resident-set size of this process in megabytes (Linux getrusage);
// 0 when the platform does not report it. A wall-clock-side probe: feeds
// kWall columns and end-of-run report points, never simulation state.
[[nodiscard]] double peak_rss_mb();

class TimeSeries {
 public:
  enum class Kind : std::uint8_t {
    kSim,   // deterministic simulation state
    kWall,  // wall-clock/address-space probe, excluded from determinism
  };

  // The collector fires once per committed row, at most once per boundary.
  // It must only read state and call set(); `now` is the boundary time (the
  // simulator's clock may already sit on the event that crossed it).
  using Collector = std::function<void(SimTime now, TimeSeries& ts)>;

  explicit TimeSeries(SimTime interval) : interval_(interval) {
    next_at_ = interval_;
  }

  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // Registers (or finds) a column. `name` must be a string literal or other
  // storage outliving the series; literal names are linted against
  // tools/stats_schema.h via the PDS_TS_COLUMN macro below. Registration
  // order is the column order in every row and in the NDJSON header.
  int column(const char* name, Kind kind = Kind::kSim);

  // Stages a value for the row being collected. Unset columns default to 0.
  void set(int col, double v) {
    staged_[static_cast<std::size_t>(col)] = v;
  }

  void set_collector(Collector collector) {
    collector_ = std::move(collector);
  }

  // Commits one row per interval boundary in (last committed, t]. Driven by
  // Simulator::run before executing each event and once more at the horizon;
  // safe to call with a non-monotone `t` (stale boundaries are skipped).
  void advance_to(SimTime t) {
    while (next_at_ <= t) step();
  }

  // Drops committed rows and rewinds the boundary cursor; column
  // registrations and the collector survive (a warm sampler re-attaches to
  // the next run).
  void reset(SimTime start = SimTime::zero());

  [[nodiscard]] SimTime interval() const { return interval_; }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const { return cols_.size(); }
  [[nodiscard]] const char* column_name(int col) const {
    return cols_[static_cast<std::size_t>(col)].name;
  }
  [[nodiscard]] Kind column_kind(int col) const {
    return cols_[static_cast<std::size_t>(col)].kind;
  }
  [[nodiscard]] double value(std::size_t row, int col) const {
    return rows_[row].v[static_cast<std::size_t>(col)];
  }
  [[nodiscard]] SimTime row_time(std::size_t row) const {
    return rows_[row].at;
  }

  // Columnar NDJSON (`pds-timeseries/1`). With include_wall=false the kWall
  // columns are dropped from the header and every row — the deterministic
  // projection the `timeseries-deterministic` gate byte-compares.
  [[nodiscard]] std::string ndjson(bool include_wall = true) const;
  // Writes ndjson(true) to `path`; returns false on I/O failure.
  bool write_ndjson(const std::string& path) const;

 private:
  struct Column {
    const char* name;
    Kind kind;
  };
  struct Row {
    SimTime at;
    std::vector<double> v;
  };

  void step();

  SimTime interval_;
  SimTime next_at_;
  bool enabled_ = true;
  std::vector<Column> cols_;
  std::vector<double> staged_;
  std::vector<Row> rows_;
  Collector collector_;
};

}  // namespace pds::obs

// Column registration with a lint-checked literal name: pdslint's
// `stats-schema` rule requires the string literal to be registered in
// tools/stats_schema.h (mirroring PDS_TRACE_* / trace_schema.h).
#define PDS_TS_COLUMN(ts, name, ...) (ts).column((name), ##__VA_ARGS__)
