// Per-node transport: leaky-bucket pacing + per-hop ack/retransmission over
// the broadcast medium (paper §V.1–§V.2).
//
// Outgoing messages pass through the application-level leaky bucket (pacing
// around the OS UDP send-buffer overflow) and are then handed to the OS
// buffer of the simulated radio. A message with a non-empty intended-receiver
// list is sent reliably: the sender waits for an Ack from every intended
// receiver and, on RetrTimeout, retransmits with the receiver list rewritten
// to the not-yet-acknowledged subset, up to MaxRetrTime times. Messages with
// an empty receiver list (flooded queries — the sender cannot enumerate "all
// neighbors") are unreliable; multi-round discovery recovers their losses.
//
// Acks are tiny control frames and bypass the leaky bucket (pacing them
// behind a queued 256 KB chunk would guarantee spurious retransmissions of
// that very chunk); they still occupy the OS buffer and airtime.
//
// Every received non-ack frame — intended or overheard — is delivered to the
// node's handler; opportunistic caching lives a layer above.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "net/codec.h"
#include "net/face.h"
#include "net/message.h"
#include "sim/radio.h"
#include "sim/simulator.h"
#include "util/dedup_cache.h"
#include "util/leaky_bucket.h"

namespace pds::net {

struct TransportConfig {
  // Leaky bucket (§V.2): best-performing parameters from the prototype.
  bool pacing_enabled = true;
  std::size_t bucket_capacity_bytes = 300'000;
  double leak_rate_bps = 4.5e6;

  // Ack/retransmission (§V.1): benefits plateau beyond 0.2 s / 4 retries.
  bool reliability_enabled = true;
  SimTime retr_timeout = SimTime::millis(200);
  int max_retransmissions = 4;
  // Reliable packets in flight at once. The prototype sends a message and
  // then waits for its acks (§V.1), i.e., ack-clocked flow control; a small
  // window generalizes that without changing the stop-and-wait character.
  // Further reliable sends queue until a slot frees (full ack or give-up).
  std::size_t max_inflight = 4;
  // Messages larger than this are fragmented into packets of at most this
  // wire size, acked and retransmitted individually, and reassembled at
  // every receiver (including overhearers). The prototype sends 1.5 KB UDP
  // packets; a 256 KB chunk is ~171 of them, so a collision costs one packet
  // rather than 285 ms of airtime.
  std::size_t mtu_bytes = 1500;
  // Delayed-ack aggregation: acks accumulate for this long and leave as one
  // control frame. Without batching, a node receiving several fragment
  // streams emits hundreds of tiny ack frames per second and they starve in
  // the contended medium, firing spurious data retransmissions.
  SimTime ack_aggregation_delay = SimTime::millis(8);
  std::size_t max_ack_tokens_per_frame = 64;
  // Selective repair of reassembly holes: an intended receiver whose
  // fragment reassembly stalls asks the sender to re-send the missing
  // fragments instead of abandoning the whole message.
  bool repair_enabled = true;
  SimTime repair_timeout = SimTime::millis(150);
  int max_repair_attempts = 3;
  std::size_t max_repair_indices_per_request = 64;
};

// Wire/frame representation of one fragment of a large message. The whole
// message rides along by pointer; the simulator charges `wire_bytes` (the
// fragment's share of the message plus the fragment header).
struct FragmentPayload final : sim::FramePayload {
  MessagePtr whole;
  std::uint64_t token = 0;  // whole-message token
  std::uint32_t index = 0;
  std::uint32_t count = 1;
  std::size_t wire_bytes = 0;
  std::vector<NodeId> receivers;  // intended receivers of this transmission
};

class Transport final {
 public:
  // The transport owns no link state: it talks to whatever Face it is
  // given (§V's uniform interface over heterogeneous links). The owner
  // guarantees both outlive the simulation run.
  Transport(sim::Simulator& sim, Face& face, NodeId self, TransportConfig cfg,
            Codec codec);

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  using MessageHandler = std::function<void(const MessagePtr&)>;
  void set_handler(MessageHandler handler) { handler_ = std::move(handler); }

  // Called once per receiver still unacknowledged when a reliable packet
  // exhausts its retransmission budget — the transport's peer-failure
  // signal. The protocol layer uses it to invalidate routing/query state
  // pointing at the silent peer (DESIGN.md §11) instead of hanging on it.
  using UnreachableCallback = std::function<void(NodeId)>;
  void set_unreachable_callback(UnreachableCallback cb) {
    unreachable_cb_ = std::move(cb);
  }

  // Crash semantics (fault injection): drop every pending reliable packet,
  // queued send, partial reassembly and batched ack, and reset pacing — the
  // state a process loses when it dies. Cumulative stats survive (they
  // belong to the observer, not the process). Timers already scheduled
  // against the old state become no-ops.
  void reset();

  // Queues `msg` for transmission. Reliability is implied by the message:
  // non-ack messages with explicit receivers are acked/retransmitted.
  void send(MessagePtr msg);

  // Frame upcall from the face (public for faces and tests that inject
  // frames directly).
  void on_frame(const sim::Frame& frame);

  struct Stats {
    std::uint64_t messages_sent = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t acks_received = 0;
    std::uint64_t deliveries_gave_up = 0;
    std::uint64_t repair_requests_sent = 0;
    std::uint64_t repair_requests_served = 0;
    // Fragment frames handed to the face (fragmented messages only).
    std::uint64_t fragments_sent = 0;
    // Frames the face refused (OS send-buffer overflow). Previously these
    // losses were invisible at the transport: the frame silently never flew.
    std::uint64_t frames_dropped_overflow = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] const Codec& codec() const { return codec_; }

  // -- Flight-recorder sampling accessors (DESIGN.md §15) --------------------
  // Instantaneous backlog snapshots, read-only. Summed (or maxed) across
  // nodes by the Scenario collector.
  [[nodiscard]] std::size_t inflight() const { return inflight_; }
  [[nodiscard]] std::size_t queued_sends() const { return send_queue_.size(); }
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] std::size_t reassembly_count() const {
    return reassembly_.size();
  }
  // Pacing backlog: how far the leaky bucket's next free slot sits past
  // `now` (µs); 0 when the bucket would admit a send immediately.
  [[nodiscard]] std::int64_t bucket_backlog_us(SimTime now) const {
    const SimTime free_at = bucket_.next_free();
    return free_at > now ? (free_at - now).as_micros() : 0;
  }

  // Surfaces Stats through a metrics registry as "<prefix>messages_sent"
  // etc. — a view over the same fields, read at snapshot time.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const;

 private:
  // One reliable in-flight packet: a whole small message or one fragment.
  struct Packet {
    MessagePtr whole;
    std::uint64_t ack_token = 0;  // per-packet token
    std::uint32_t index = 0;
    std::uint32_t count = 1;
    std::size_t wire_bytes = 0;
    std::vector<NodeId> receivers;
  };
  struct Pending {
    Packet packet;
    std::unordered_set<NodeId> awaiting;
    int retransmissions = 0;
  };
  struct Reassembly {
    MessagePtr whole;
    std::vector<bool> have;
    std::uint32_t received = 0;
    SimTime last_update = SimTime::zero();
    bool addressed = false;
    bool repair_scheduled = false;
    int repair_attempts = 0;
    std::uint32_t last_progress = 0;
  };

  [[nodiscard]] std::vector<Packet> packetize(const MessagePtr& msg) const;
  void enqueue_packet(Packet packet, bool reliable);
  void start_reliable(Packet packet);
  void transmit(const Packet& packet, bool track_reliably);
  void check_pending(std::uint64_t token, int expected_round);
  void complete_pending(std::uint64_t token);
  void send_ack(std::uint64_t token);
  void flush_acks();
  void check_repair(std::uint64_t msg_token);
  void handle_repair_request(const Message& request);
  [[nodiscard]] bool explicitly_addressed_for_repair(
      const MessagePtr& whole) const;
  void on_data_packet(const MessagePtr& whole, std::uint64_t msg_token,
                      std::uint32_t index, std::uint32_t count,
                      std::uint64_t packet_ack_token,
                      const std::vector<NodeId>& receivers);

  sim::Simulator& sim_;
  Face& face_;
  NodeId self_;
  TransportConfig cfg_;
  Codec codec_;
  util::LeakyBucket bucket_;
  MessageHandler handler_;
  UnreachableCallback unreachable_cb_;
  // Bumped by reset(); scheduled transmissions from a previous life check it
  // and abort, so a crashed-then-restarted node does not send zombie frames.
  std::uint64_t epoch_ = 0;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::deque<Packet> send_queue_;  // reliable packets awaiting a slot
  std::size_t inflight_ = 0;
  // Ordered by message token: the stale-assembly eviction scan walks this
  // map, and with hash order the tie-break between equally-old assemblies
  // would differ across runs and standard libraries.
  std::map<std::uint64_t, Reassembly> reassembly_;
  util::DedupCache<std::uint64_t> completed_messages_{4096};
  // Recently sent fragmented messages, kept for selective repair.
  std::unordered_map<std::uint64_t, MessagePtr> sent_fragmented_;
  std::deque<std::uint64_t> sent_fragmented_order_;
  std::vector<std::uint64_t> ack_batch_;
  bool ack_flush_scheduled_ = false;
  Stats stats_;
};

}  // namespace pds::net
