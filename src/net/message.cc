#include "net/message.h"

#include <algorithm>

namespace pds::net {

bool Message::addressed_to(NodeId id) const {
  if (is_ack() || is_repair()) return false;  // transport-internal frames
  if (receivers.empty()) return true;  // all neighbors are intended
  return std::find(receivers.begin(), receivers.end(), id) != receivers.end();
}

}  // namespace pds::net
