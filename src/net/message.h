// PDS message model (paper §III-A, §IV-A, §V.1).
//
// All PDS exchanges use three message types over one broadcast face:
//
//  * Query    — carries a globally unique query id, the transmitting node's
//               id at the current hop, an optional intended-receiver list
//               (empty = all neighbors relay), an expiration beyond which the
//               lingering query is removed, attribute filters, and for
//               multi-round redundancy detection a Bloom filter of entries
//               the consumer already holds. CDI and chunk queries additionally
//               name the target item and (for chunk queries) the requested
//               chunk ids.
//  * Response — carries a globally unique response id, intended receivers
//               (the upstream nodes whose lingering queries matched), and a
//               payload of metadata entries, CDI ChunkId–HopCount pairs, one
//               data chunk, or whole small data items.
//  * Ack      — per-hop acknowledgment: the acked message's id and the
//               acker's own id (§V.1).
//
// Messages are value types; forwarding nodes copy and rewrite them (receiver
// lists, Bloom filters, sender id) before relaying — exactly the paper's
// en-route message rewriting.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "core/descriptor.h"
#include "core/predicate.h"
#include "net/bloom_delta.h"
#include "sim/radio.h"
#include "util/bloom_filter.h"

namespace pds::net {

enum class MessageType : std::uint8_t {
  kQuery = 0,
  kResponse = 1,
  kAck = 2,
  // Selective-repair request: a receiver whose reassembly of a fragmented
  // message stalled asks the transmitting hop to re-send the missing
  // fragments (ack_tokens[0] = message token, requested_chunks = missing
  // fragment indices). Repairing a 1.5 KB hole this way costs three orders
  // of magnitude less than re-requesting the whole 256 KB chunk.
  kRepair = 3,
};

// Which content stream a message belongs to; dispatches to the right engine.
enum class ContentKind : std::uint8_t {
  kMetadata = 0,  // PDD: metadata discovery
  kItem = 1,      // PDD-style retrieval of many small data items
  kCdi = 2,       // PDR phase 1: chunk distribution information
  kChunk = 3,     // PDR phase 2 / MDR: data chunks
};

// One ChunkId–HopCount pair of a CDI response (§IV-A).
struct CdiEntry {
  ChunkIndex chunk = 0;
  std::uint32_t hop_count = 0;

  friend bool operator==(const CdiEntry&, const CdiEntry&) = default;
};

// A data chunk in flight. Simulated payloads carry a content hash instead of
// size_bytes of real data; the codec charges the full size on the wire.
struct ChunkPayload {
  ChunkIndex index = 0;
  std::uint32_t size_bytes = 0;
  std::uint64_t content_hash = 0;

  friend bool operator==(const ChunkPayload&, const ChunkPayload&) = default;
};

// A complete small data item (descriptor + payload) for the many-small-items
// scenario (§IV intro).
struct ItemPayload {
  core::DataDescriptor descriptor;
  std::uint32_t size_bytes = 0;
  std::uint64_t content_hash = 0;

  friend bool operator==(const ItemPayload&, const ItemPayload&) = default;
};

// Causal trace context riding every message (DESIGN.md §14). `trace_id`
// names the consumer session the message serves (the session's first query
// id, already globally unique); `parent_span` is the span id of the tx event
// that put this copy on the path, so receivers can link their recv spans
// into one cross-node DAG; `origin` is the consuming node; `hop` counts
// forwards from the origin. A zero trace_id means "no context" — the
// default, and what single messages built outside a session carry.
//
// The context is simulation metadata: it is stamped unconditionally (so a
// traced run stays bit-identical to an untraced one) and costs nothing on
// the wire unless WireConfig::carry_trace_context opts the codec into the
// versioned extension (net/codec.h).
struct TraceContext {
  std::uint64_t trace_id = 0;     // 0 = no context
  std::uint64_t parent_span = 0;  // span id of the sending tx event
  std::uint32_t origin = 0xffffffffu;  // NodeId::invalid().value()
  std::uint8_t hop = 0;           // forwards from the origin

  [[nodiscard]] bool valid() const { return trace_id != 0; }

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

struct Message : sim::FramePayload {
  MessageType type = MessageType::kQuery;
  ContentKind kind = ContentKind::kMetadata;

  QueryId query_id;        // queries; echoed in responses for bookkeeping
  ResponseId response_id;  // responses
  NodeId sender;           // transmitting node at the current hop
  std::vector<NodeId> receivers;  // empty = all neighbors should relay
  SimTime expire_at = SimTime::max();  // lingering-query expiration
  // Remaining hop budget for queries; 0 means unlimited. The paper notes
  // propagation "can be limited easily with a hop counter if needed"
  // (§III-A.1); recursive chunk queries rely on it to cut routing loops from
  // stale CDI entries.
  std::uint8_t ttl = 0;

  core::Filter filter;                           // metadata/item queries
  std::optional<core::DataDescriptor> target;    // CDI/chunk: requested item
  util::BloomFilter exclude;                     // redundancy detection
  // Delta-sync form of the exclude filter (DESIGN.md §16): when a
  // delta-aware discovery session attaches a frame, `exclude` stays empty
  // and receivers reconstruct their view of it through the node's
  // BloomSyncCache. Relays that rewrote the filter en route drop back to
  // the classic `exclude` encoding.
  std::optional<BloomDeltaFrame> exclude_delta;
  std::vector<ChunkIndex> requested_chunks;      // chunk queries

  std::vector<core::DataDescriptor> metadata;    // metadata responses
  std::vector<CdiEntry> cdi;                     // CDI responses
  std::optional<ChunkPayload> chunk;             // chunk responses
  std::vector<ItemPayload> items;                // item responses

  // Acks: ids of the acknowledged packets. Receivers batch acks for a few
  // milliseconds and send one control frame (delayed-ack aggregation); under
  // saturation hundreds of per-packet ack frames would otherwise starve in
  // the contended medium and trigger spurious data retransmissions.
  std::vector<std::uint64_t> ack_tokens;
  NodeId acker;  // acks: who acknowledges

  // Causal trace context (see TraceContext above). Never consulted by
  // protocol logic — only by trace emission and, when enabled, the codec.
  TraceContext trace;

  [[nodiscard]] bool is_query() const { return type == MessageType::kQuery; }
  [[nodiscard]] bool is_response() const {
    return type == MessageType::kResponse;
  }
  [[nodiscard]] bool is_ack() const { return type == MessageType::kAck; }
  [[nodiscard]] bool is_repair() const {
    return type == MessageType::kRepair;
  }

  // Token identifying this message for per-hop ack/retransmission.
  [[nodiscard]] std::uint64_t ack_key() const {
    return is_query() ? query_id.value() : response_id.value();
  }

  [[nodiscard]] bool addressed_to(NodeId id) const;
};

using MessagePtr = std::shared_ptr<const Message>;

}  // namespace pds::net
