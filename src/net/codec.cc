#include "net/codec.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/assert.h"
#include "common/bytes.h"

namespace pds::net {

namespace {

// type + kind + sender(4) + query/response id(8) + expire(8) + ttl(1).
constexpr std::size_t kCommonHeaderBytes = 1 + 1 + 4 + 8 + 8 + 1;

// Decode-side caps for the reconciliation extensions: large enough for any
// protocol-generated frame, small enough that hostile headers cannot force
// huge allocations.
constexpr std::uint64_t kMaxDictNames = 4096;
constexpr std::uint64_t kMaxEntryAttrs = 1024;
constexpr std::uint64_t kMaxCompressedEntries = 65535;
constexpr std::uint64_t kMaxBitmapSpan = 1u << 22;
constexpr std::uint64_t kMaxBitmapGroups = 65535;
constexpr std::uint64_t kMaxStringBytes = 65535;

std::size_t receiver_list_bytes(const Message& m) {
  return 1 + 4 * m.receivers.size();
}

// Whether this message carries the trace-context wire extension under `cfg`
// — only query/response frames (acks and repairs are hop-local control and
// never cross more than one link).
bool carries_trace(const WireConfig& cfg, const Message& m) {
  return cfg.carry_trace_context && (m.is_query() || m.is_response()) &&
         m.trace.valid();
}

bool strictly_increasing(const std::vector<ChunkIndex>& v) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] <= v[i - 1]) return false;
  }
  return true;
}

bool cdi_strictly_increasing(const std::vector<CdiEntry>& v) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i].chunk <= v[i - 1].chunk) return false;
  }
  return true;
}

// The bitmap wire form caps its span; a wider id range (possible for
// decoded foreign messages, never for protocol-produced ones) must fall
// back to the list encoding or encode() would emit frames its own decoder
// rejects — and allocate span/8 bytes doing it.
bool bitmap_span_fits(std::uint64_t lo, std::uint64_t hi) {
  return hi - lo + 1 <= kMaxBitmapSpan;
}

bool cdi_spans_fit(const std::vector<CdiEntry>& v) {
  std::map<std::uint32_t, std::pair<ChunkIndex, ChunkIndex>> range;
  for (const CdiEntry& e : v) {
    auto [it, fresh] = range.try_emplace(e.hop_count, e.chunk, e.chunk);
    if (!fresh) {
      it->second.first = std::min(it->second.first, e.chunk);
      it->second.second = std::max(it->second.second, e.chunk);
    }
  }
  for (const auto& [hop, lo_hi] : range) {
    if (!bitmap_span_fits(lo_hi.first, lo_hi.second)) return false;
  }
  return true;
}

// Which reconciliation-extension bits this (config, message) pair emits.
// The bitmap forms require canonically ordered inputs — anything else (which
// protocol code never produces) falls back to the classic list encodings so
// no content is ever silently reordered.
std::uint8_t ext_bits(const WireConfig& cfg, const Message& m) {
  std::uint8_t bits = 0;
  if (m.is_query()) {
    if (m.exclude_delta.has_value()) bits |= kExtDeltaBloom;
    if (cfg.chunk_bitmap && !m.requested_chunks.empty() &&
        strictly_increasing(m.requested_chunks) &&
        bitmap_span_fits(m.requested_chunks.front(),
                         m.requested_chunks.back())) {
      bits |= kExtChunkBitmap;
    }
  } else if (m.is_response()) {
    if (cfg.compress_entries && (!m.metadata.empty() || !m.items.empty())) {
      bits |= kExtCompressedEntries;
    }
    if (cfg.chunk_bitmap && !m.cdi.empty() &&
        cdi_strictly_increasing(m.cdi) && cdi_spans_fit(m.cdi)) {
      bits |= kExtChunkBitmap;
    }
  }
  return bits;
}

// -- Chunk bitmaps (kExtChunkBitmap) ----------------------------------------
//
// A run of strictly increasing chunk ids as base + span + bit array. The
// encoding is canonical: base is the first id, the span's last bit is set,
// and no bit lies past the span.

void encode_chunk_bitmap(ByteWriter& w, std::span<const ChunkIndex> chunks) {
  const ChunkIndex base = chunks.front();
  const std::uint32_t span = chunks.back() - base + 1;
  w.put_varint(base);
  w.put_varint(span);
  std::vector<std::uint8_t> bytes((span + 7) / 8, 0);
  for (ChunkIndex c : chunks) {
    const std::uint32_t bit = c - base;
    bytes[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  for (std::uint8_t b : bytes) w.put_u8(b);
}

std::size_t chunk_bitmap_size(std::span<const ChunkIndex> chunks) {
  const ChunkIndex base = chunks.front();
  const std::uint32_t span = chunks.back() - base + 1;
  return varint_size(base) + varint_size(span) + (span + 7) / 8;
}

std::vector<ChunkIndex> decode_chunk_bitmap(ByteReader& r) {
  const std::uint64_t base = r.get_varint();
  const std::uint64_t span = r.get_varint();
  if (span == 0 || span > kMaxBitmapSpan) {
    throw DecodeError("chunk bitmap span out of range");
  }
  if (base > 0xffffffffULL - (span - 1)) {
    throw DecodeError("chunk bitmap base out of range");
  }
  std::vector<ChunkIndex> out;
  const std::size_t n_bytes = (span + 7) / 8;
  for (std::size_t i = 0; i < n_bytes; ++i) {
    const std::uint8_t b = r.get_u8();
    for (std::uint32_t bit = 0; bit < 8; ++bit) {
      if (((b >> bit) & 1) == 0) continue;
      const std::uint64_t pos = i * 8 + bit;
      if (pos >= span) {
        throw DecodeError("chunk bitmap has bits past its span");
      }
      out.push_back(static_cast<ChunkIndex>(base + pos));
    }
  }
  if (out.empty() || out.front() != base || out.back() != base + span - 1) {
    throw DecodeError("chunk bitmap not canonical");
  }
  return out;
}

// CDI entries as hop-count groups of chunk bitmaps, hop strictly increasing.

void encode_cdi_bitmap(ByteWriter& w, const std::vector<CdiEntry>& cdi) {
  std::map<std::uint32_t, std::vector<ChunkIndex>> groups;
  for (const CdiEntry& e : cdi) groups[e.hop_count].push_back(e.chunk);
  w.put_varint(groups.size());
  for (const auto& [hop, chunks] : groups) {
    w.put_varint(hop);
    encode_chunk_bitmap(w, chunks);
  }
}

std::size_t cdi_bitmap_size(const std::vector<CdiEntry>& cdi) {
  std::map<std::uint32_t, std::vector<ChunkIndex>> groups;
  for (const CdiEntry& e : cdi) groups[e.hop_count].push_back(e.chunk);
  std::size_t size = varint_size(groups.size());
  for (const auto& [hop, chunks] : groups) {
    size += varint_size(hop) + chunk_bitmap_size(chunks);
  }
  return size;
}

std::vector<CdiEntry> decode_cdi_bitmap(ByteReader& r) {
  const std::uint64_t n_groups = r.get_varint();
  if (n_groups == 0 || n_groups > kMaxBitmapGroups) {
    throw DecodeError("CDI bitmap group count out of range");
  }
  std::vector<CdiEntry> out;
  std::uint64_t prev_hop = 0;
  for (std::uint64_t g = 0; g < n_groups; ++g) {
    const std::uint64_t hop = r.get_varint();
    if (hop > 0xffffffffULL || (g > 0 && hop <= prev_hop)) {
      throw DecodeError("CDI bitmap groups not canonical");
    }
    prev_hop = hop;
    for (ChunkIndex c : decode_chunk_bitmap(r)) {
      out.push_back({c, static_cast<std::uint32_t>(hop)});
    }
    if (out.size() > kMaxCompressedEntries) {
      throw DecodeError("CDI bitmap entry count out of range");
    }
  }
  std::sort(out.begin(), out.end(), [](const CdiEntry& a, const CdiEntry& b) {
    return a.chunk < b.chunk;
  });
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (out[i].chunk == out[i - 1].chunk) {
      throw DecodeError("duplicate chunk in CDI bitmap");
    }
  }
  return out;
}

// -- Compressed entries (kExtCompressedEntries) ------------------------------
//
// A per-message dictionary of attribute names, then per entry: attribute
// count, and per attribute a dictionary index, a type tag and the value —
// ints as zigzag varints, doubles raw, strings as (shared-prefix length
// against the previous value of the same attribute, suffix). Attribute
// order inside an entry stays the canonical sorted-by-name order, so the
// decoded descriptor is byte-for-byte the classic one.

class EntryCompressor {
 public:
  explicit EntryCompressor(const Message& m) {
    for (const core::DataDescriptor& d : m.metadata) add_names(d);
    for (const ItemPayload& item : m.items) add_names(item.descriptor);
    prev_.resize(names_.size());
  }

  void encode_dict(ByteWriter& w) const {
    w.put_varint(names_.size());
    for (const std::string& n : names_) w.put_string(n);
  }

  void encode_entry(ByteWriter& w, const core::DataDescriptor& d) {
    const auto& attrs = d.attributes();
    w.put_varint(attrs.size());
    for (const core::Attribute& a : attrs) {
      const std::size_t idx = index_.at(a.name);
      w.put_varint(idx);
      w.put_u8(static_cast<std::uint8_t>(a.value.index()));
      if (const auto* i = std::get_if<std::int64_t>(&a.value)) {
        w.put_varint_i64(*i);
      } else if (const auto* f = std::get_if<double>(&a.value)) {
        w.put_f64(*f);
      } else {
        const std::string& s = std::get<std::string>(a.value);
        std::string& prev = prev_[idx];
        const std::size_t limit = std::min(prev.size(), s.size());
        std::size_t common = 0;
        while (common < limit && prev[common] == s[common]) ++common;
        w.put_varint(common);
        w.put_string(std::string_view(s).substr(common));
        prev = s;
      }
    }
  }

 private:
  void add_names(const core::DataDescriptor& d) {
    for (const core::Attribute& a : d.attributes()) {
      if (index_.emplace(a.name, names_.size()).second) {
        names_.push_back(a.name);
      }
    }
  }

  std::vector<std::string> names_;  // first-appearance order
  std::map<std::string, std::size_t> index_;
  std::vector<std::string> prev_;  // previous string value per name
};

class EntryDecompressor {
 public:
  void decode_dict(ByteReader& r) {
    const std::uint64_t n = r.get_varint();
    if (n > kMaxDictNames) {
      throw DecodeError("attribute dictionary too large");
    }
    // Stage into a local and commit after the last throw point so a
    // malformed dictionary never leaves the decompressor holding a
    // partial name table (pdsflow decode-atomicity).
    std::set<std::string> seen;
    std::vector<std::string> names;
    names.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string name = r.get_string();
      if (!seen.insert(name).second) {
        throw DecodeError("duplicate attribute dictionary name");
      }
      names.push_back(std::move(name));
    }
    names_ = std::move(names);
    prev_.assign(names_.size(), {});
  }

  core::DataDescriptor decode_entry(ByteReader& r) {
    const std::uint64_t n_attrs = r.get_varint();
    if (n_attrs > kMaxEntryAttrs) {
      throw DecodeError("too many attributes in compressed entry");
    }
    core::DataDescriptor d;
    const std::string* last = nullptr;
    for (std::uint64_t i = 0; i < n_attrs; ++i) {
      const std::uint64_t idx = r.get_varint();
      if (idx >= names_.size()) {
        throw DecodeError("attribute name index out of range");
      }
      const std::string& name = names_[idx];
      if (last != nullptr && !(*last < name)) {
        throw DecodeError("descriptor attributes not canonical");
      }
      last = &name;
      const std::uint8_t tag = r.get_u8();
      core::AttrValue value;
      switch (tag) {
        case 0:
          value = r.get_varint_i64();
          break;
        case 1:
          value = r.get_f64();
          break;
        case 2: {
          const std::uint64_t common = r.get_varint();
          std::string& prev = prev_[idx];
          if (common > prev.size()) {
            throw DecodeError("string prefix length out of range");
          }
          std::string s = prev.substr(0, common) + r.get_string();
          if (s.size() > kMaxStringBytes) {
            throw DecodeError("string value too long");
          }
          // The prefix chain must advance per attribute; if a later field
          // of this message throws, the whole decompressor (and with it
          // this partial chain state) is discarded by Codec::decode, so
          // the mid-loop member write is safe here.
          prev = s;  // pdsflow:allow(decode-atomicity)
          value = std::move(s);
          break;
        }
        default:
          throw DecodeError("unknown attribute value tag");
      }
      d.set(name, std::move(value));
    }
    return d;
  }

 private:
  std::vector<std::string> names_;
  std::vector<std::string> prev_;
};

}  // namespace

std::size_t Codec::entry_wire_size(const core::DataDescriptor& d) const {
  if (cfg_.metadata_entry_bytes > 0) return cfg_.metadata_entry_bytes;
  return d.encoded_size();
}

std::size_t Codec::wire_size(const Message& m) const {
  if (m.is_ack()) {
    // type + count(2) + tokens(8 each) + acker(4).
    return 1 + 2 + 8 * m.ack_tokens.size() + 4;
  }
  if (m.is_repair()) {
    // type + token(8) + requester(4) + count(2) + indices(4 each).
    return 1 + 8 + 4 + 2 + 4 * m.requested_chunks.size();
  }
  const std::uint8_t ext = ext_bits(cfg_, m);
  std::size_t size = kCommonHeaderBytes + receiver_list_bytes(m);
  if (ext != 0) size += 1;  // extension bitmap byte
  if (m.target.has_value()) size += m.target->encoded_size();
  size += 1;  // target-present flag
  if (m.is_query()) {
    size += m.filter.encoded_size();
    if ((ext & kExtDeltaBloom) != 0) {
      size += m.exclude_delta->wire_size();
    } else {
      size += m.exclude.wire_size();
    }
    if ((ext & kExtChunkBitmap) != 0) {
      size += chunk_bitmap_size(m.requested_chunks);
    } else {
      size += 2 + 4 * m.requested_chunks.size();
    }
  } else {
    // The paper's flat per-entry charge (metadata_entry_bytes > 0) wins
    // over entry compression: honest compression measurements set it to 0.
    const bool compressed_sizing =
        (ext & kExtCompressedEntries) != 0 && cfg_.metadata_entry_bytes == 0;
    if (compressed_sizing) {
      EntryCompressor enc(m);
      ByteWriter scratch;
      enc.encode_dict(scratch);
      scratch.put_varint(m.metadata.size());
      for (const core::DataDescriptor& d : m.metadata) {
        enc.encode_entry(scratch, d);
      }
      scratch.put_varint(m.items.size());
      for (const ItemPayload& item : m.items) {
        enc.encode_entry(scratch, item.descriptor);
        // Length field + simulated payload (the content hash stands in for
        // the payload on the wire and is not charged, as in the classic
        // item encoding).
        size += varint_size(item.size_bytes) + item.size_bytes;
      }
      size += scratch.size();
    } else {
      size += 2;  // metadata count
      for (const core::DataDescriptor& d : m.metadata) {
        size += entry_wire_size(d);
      }
      size += 2;  // item count
      for (const ItemPayload& item : m.items) {
        size += entry_wire_size(item.descriptor) + 4 + item.size_bytes;
      }
    }
    if ((ext & kExtChunkBitmap) != 0) {
      size += cdi_bitmap_size(m.cdi);
    } else {
      size += 2 + 8 * m.cdi.size();
    }
    size += 1;  // chunk-present flag
    if (m.chunk.has_value()) {
      size += 4 + 4 + m.chunk->size_bytes;  // index + length + payload
    }
  }
  if (carries_trace(cfg_, m)) size += kTraceContextBytes;
  return size;
}

std::vector<std::byte> Codec::encode(const Message& m) const {
  ByteWriter w;
  const bool with_trace = carries_trace(cfg_, m);
  const std::uint8_t ext =
      (m.is_ack() || m.is_repair()) ? 0 : ext_bits(cfg_, m);
  w.put_u8(static_cast<std::uint8_t>(m.type) |
           (with_trace ? kTraceContextFlag : 0) |
           (ext != 0 ? kWireExtFlag : 0));
  if (m.is_ack()) {
    w.put_u16(static_cast<std::uint16_t>(m.ack_tokens.size()));
    for (std::uint64_t token : m.ack_tokens) w.put_u64(token);
    w.put_u32(m.acker.value());
    return w.take();
  }
  if (m.is_repair()) {
    w.put_u64(m.ack_tokens.empty() ? 0 : m.ack_tokens.front());
    w.put_u32(m.acker.value());
    w.put_u16(static_cast<std::uint16_t>(m.requested_chunks.size()));
    for (ChunkIndex c : m.requested_chunks) w.put_u32(c);
    return w.take();
  }
  if (ext != 0) w.put_u8(ext);
  w.put_u8(static_cast<std::uint8_t>(m.kind));
  w.put_u32(m.sender.value());
  w.put_u64(m.is_query() ? m.query_id.value() : m.response_id.value());
  w.put_i64(m.expire_at.as_micros());
  w.put_u8(m.ttl);
  w.put_u8(static_cast<std::uint8_t>(m.receivers.size()));
  for (NodeId r : m.receivers) w.put_u32(r.value());
  w.put_u8(m.target.has_value() ? 1 : 0);
  if (m.target.has_value()) m.target->encode(w);
  if (m.is_query()) {
    m.filter.encode(w);
    if ((ext & kExtDeltaBloom) != 0) {
      m.exclude_delta->encode(w);
    } else {
      std::vector<std::byte> bloom_bytes;
      m.exclude.encode(bloom_bytes);
      w.put_bytes(bloom_bytes);
    }
    if ((ext & kExtChunkBitmap) != 0) {
      encode_chunk_bitmap(w, m.requested_chunks);
    } else {
      w.put_u16(static_cast<std::uint16_t>(m.requested_chunks.size()));
      for (ChunkIndex c : m.requested_chunks) w.put_u32(c);
    }
  } else {
    std::optional<EntryCompressor> enc;
    if ((ext & kExtCompressedEntries) != 0) {
      enc.emplace(m);
      enc->encode_dict(w);
      w.put_varint(m.metadata.size());
      for (const core::DataDescriptor& d : m.metadata) {
        enc->encode_entry(w, d);
      }
    } else {
      w.put_u16(static_cast<std::uint16_t>(m.metadata.size()));
      for (const core::DataDescriptor& d : m.metadata) d.encode(w);
    }
    if ((ext & kExtChunkBitmap) != 0) {
      encode_cdi_bitmap(w, m.cdi);
    } else {
      w.put_u16(static_cast<std::uint16_t>(m.cdi.size()));
      for (const CdiEntry& e : m.cdi) {
        w.put_u32(e.chunk);
        w.put_u32(e.hop_count);
      }
    }
    w.put_u8(m.chunk.has_value() ? 1 : 0);
    if (m.chunk.has_value()) {
      w.put_u32(m.chunk->index);
      w.put_u32(m.chunk->size_bytes);
      w.put_u64(m.chunk->content_hash);
    }
    if ((ext & kExtCompressedEntries) != 0) {
      w.put_varint(m.items.size());
      for (const ItemPayload& item : m.items) {
        enc->encode_entry(w, item.descriptor);
        w.put_varint(item.size_bytes);
        w.put_u64(item.content_hash);
      }
    } else {
      w.put_u16(static_cast<std::uint16_t>(m.items.size()));
      for (const ItemPayload& item : m.items) {
        item.descriptor.encode(w);
        w.put_u32(item.size_bytes);
        w.put_u64(item.content_hash);
      }
    }
  }
  if (with_trace) {
    w.put_u64(m.trace.trace_id);
    w.put_u64(m.trace.parent_span);
    w.put_u32(m.trace.origin);
    w.put_u8(m.trace.hop);
  }
  return w.take();
}

Message Codec::decode(std::span<const std::byte> bytes) const {
  ByteReader r(bytes);
  Message m;
  const std::uint8_t type_byte = r.get_u8();
  const bool has_trace = (type_byte & kTraceContextFlag) != 0;
  const bool has_ext = (type_byte & kWireExtFlag) != 0;
  m.type = static_cast<MessageType>(
      type_byte & ~(kTraceContextFlag | kWireExtFlag));
  if (static_cast<std::uint8_t>(m.type) > 3) {
    throw DecodeError("unknown message type");
  }
  if (has_trace && !(m.is_query() || m.is_response())) {
    throw DecodeError("trace context on control frame");
  }
  if (has_ext && !(m.is_query() || m.is_response())) {
    throw DecodeError("wire extension on control frame");
  }
  if (m.is_ack()) {
    const std::uint16_t n_tokens = r.get_u16();
    // Every wire count below is validated against the bytes actually left
    // in the buffer (scaled by the element's minimum encoded size) before
    // it bounds a loop, so a hostile length prefix cannot drive iteration
    // or allocation past the frame (pdsflow wire-taint).
    if (std::size_t{n_tokens} * 8 > r.remaining()) {
      throw DecodeError("ack token count exceeds buffer");
    }
    m.ack_tokens.reserve(n_tokens);
    for (std::uint16_t i = 0; i < n_tokens; ++i) {
      m.ack_tokens.push_back(r.get_u64());
    }
    m.acker = NodeId(r.get_u32());
    return m;
  }
  if (m.is_repair()) {
    m.ack_tokens.push_back(r.get_u64());
    m.acker = NodeId(r.get_u32());
    const std::uint16_t n_missing = r.get_u16();
    if (std::size_t{n_missing} * 4 > r.remaining()) {
      throw DecodeError("repair chunk count exceeds buffer");
    }
    m.requested_chunks.reserve(n_missing);
    for (std::uint16_t i = 0; i < n_missing; ++i) {
      m.requested_chunks.push_back(r.get_u32());
    }
    return m;
  }
  std::uint8_t ext = 0;
  if (has_ext) {
    ext = r.get_u8();
    if (ext == 0) throw DecodeError("empty wire extension byte");
    if ((ext &
         ~(kExtDeltaBloom | kExtCompressedEntries | kExtChunkBitmap)) != 0) {
      throw DecodeError("unknown wire extension");
    }
  }
  m.kind = static_cast<ContentKind>(r.get_u8());
  if (static_cast<std::uint8_t>(m.kind) > 3) {
    throw DecodeError("unknown content kind");
  }
  m.sender = NodeId(r.get_u32());
  const std::uint64_t id = r.get_u64();
  if (m.is_query()) {
    m.query_id = QueryId(id);
  } else {
    m.response_id = ResponseId(id);
  }
  m.expire_at = SimTime::micros(r.get_i64());
  m.ttl = r.get_u8();
  const std::uint8_t n_recv = r.get_u8();
  if (std::size_t{n_recv} * 4 > r.remaining()) {
    throw DecodeError("receiver count exceeds buffer");
  }
  m.receivers.reserve(n_recv);
  for (std::uint8_t i = 0; i < n_recv; ++i) {
    m.receivers.emplace_back(r.get_u32());
  }
  if (r.get_u8() != 0) m.target = core::DataDescriptor::decode(r);
  if (m.is_query()) {
    if ((ext & kExtCompressedEntries) != 0) {
      throw DecodeError("compressed entries on query frame");
    }
    m.filter = core::Filter::decode(r);
    if ((ext & kExtDeltaBloom) != 0) {
      m.exclude_delta = BloomDeltaFrame::decode(r);
    } else {
      const std::vector<std::byte> bloom_bytes = r.get_bytes();
      m.exclude = util::BloomFilter::decode(bloom_bytes);
    }
    if ((ext & kExtChunkBitmap) != 0) {
      m.requested_chunks = decode_chunk_bitmap(r);
    } else {
      const std::uint16_t n_chunks = r.get_u16();
      if (std::size_t{n_chunks} * 4 > r.remaining()) {
        throw DecodeError("requested chunk count exceeds buffer");
      }
      m.requested_chunks.reserve(n_chunks);
      for (std::uint16_t i = 0; i < n_chunks; ++i) {
        m.requested_chunks.push_back(r.get_u32());
      }
    }
  } else {
    if ((ext & kExtDeltaBloom) != 0) {
      throw DecodeError("Bloom sync frame on response");
    }
    EntryDecompressor dec;
    if ((ext & kExtCompressedEntries) != 0) {
      dec.decode_dict(r);
      const std::uint64_t n_meta = r.get_varint();
      if (n_meta > kMaxCompressedEntries) {
        throw DecodeError("compressed entry count out of range");
      }
      for (std::uint64_t i = 0; i < n_meta; ++i) {
        m.metadata.push_back(dec.decode_entry(r));
      }
    } else {
      const std::uint16_t n_meta = r.get_u16();
      // A descriptor is at least its u16 attribute count on the wire.
      if (std::size_t{n_meta} * 2 > r.remaining()) {
        throw DecodeError("metadata count exceeds buffer");
      }
      m.metadata.reserve(n_meta);
      for (std::uint16_t i = 0; i < n_meta; ++i) {
        m.metadata.push_back(core::DataDescriptor::decode(r));
      }
    }
    if ((ext & kExtChunkBitmap) != 0) {
      m.cdi = decode_cdi_bitmap(r);
    } else {
      const std::uint16_t n_cdi = r.get_u16();
      if (std::size_t{n_cdi} * 8 > r.remaining()) {
        throw DecodeError("CDI entry count exceeds buffer");
      }
      m.cdi.reserve(n_cdi);
      for (std::uint16_t i = 0; i < n_cdi; ++i) {
        CdiEntry e;
        e.chunk = r.get_u32();
        e.hop_count = r.get_u32();
        m.cdi.push_back(e);
      }
    }
    if (r.get_u8() != 0) {
      ChunkPayload c;
      c.index = r.get_u32();
      c.size_bytes = r.get_u32();
      c.content_hash = r.get_u64();
      m.chunk = c;
    }
    if ((ext & kExtCompressedEntries) != 0) {
      const std::uint64_t n_items = r.get_varint();
      if (n_items > kMaxCompressedEntries) {
        throw DecodeError("compressed entry count out of range");
      }
      for (std::uint64_t i = 0; i < n_items; ++i) {
        ItemPayload item;
        item.descriptor = dec.decode_entry(r);
        const std::uint64_t size = r.get_varint();
        if (size > 0xffffffffULL) {
          throw DecodeError("item payload size out of range");
        }
        item.size_bytes = static_cast<std::uint32_t>(size);
        item.content_hash = r.get_u64();
        m.items.push_back(std::move(item));
      }
    } else {
      const std::uint16_t n_items = r.get_u16();
      // Item = descriptor (>= 2 bytes) + u32 size + u64 hash.
      if (std::size_t{n_items} * 14 > r.remaining()) {
        throw DecodeError("item count exceeds buffer");
      }
      m.items.reserve(n_items);
      for (std::uint16_t i = 0; i < n_items; ++i) {
        ItemPayload item;
        item.descriptor = core::DataDescriptor::decode(r);
        item.size_bytes = r.get_u32();
        item.content_hash = r.get_u64();
        m.items.push_back(std::move(item));
      }
    }
  }
  if (has_trace) {
    m.trace.trace_id = r.get_u64();
    m.trace.parent_span = r.get_u64();
    m.trace.origin = r.get_u32();
    m.trace.hop = r.get_u8();
  }
  return m;
}

}  // namespace pds::net
