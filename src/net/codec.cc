#include "net/codec.h"

#include "common/assert.h"
#include "common/bytes.h"

namespace pds::net {

namespace {

// type + kind + sender(4) + query/response id(8) + expire(8) + ttl(1).
constexpr std::size_t kCommonHeaderBytes = 1 + 1 + 4 + 8 + 8 + 1;

std::size_t receiver_list_bytes(const Message& m) {
  return 1 + 4 * m.receivers.size();
}

// Whether this message carries the trace-context wire extension under `cfg`
// — only query/response frames (acks and repairs are hop-local control and
// never cross more than one link).
bool carries_trace(const WireConfig& cfg, const Message& m) {
  return cfg.carry_trace_context && (m.is_query() || m.is_response()) &&
         m.trace.valid();
}

}  // namespace

std::size_t Codec::entry_wire_size(const core::DataDescriptor& d) const {
  if (cfg_.metadata_entry_bytes > 0) return cfg_.metadata_entry_bytes;
  return d.encoded_size();
}

std::size_t Codec::wire_size(const Message& m) const {
  if (m.is_ack()) {
    // type + count(2) + tokens(8 each) + acker(4).
    return 1 + 2 + 8 * m.ack_tokens.size() + 4;
  }
  if (m.is_repair()) {
    // type + token(8) + requester(4) + count(2) + indices(4 each).
    return 1 + 8 + 4 + 2 + 4 * m.requested_chunks.size();
  }
  std::size_t size = kCommonHeaderBytes + receiver_list_bytes(m);
  if (m.target.has_value()) size += m.target->encoded_size();
  size += 1;  // target-present flag
  if (m.is_query()) {
    size += m.filter.encoded_size();
    size += m.exclude.wire_size();
    size += 2 + 4 * m.requested_chunks.size();
  } else {
    size += 2;  // metadata count
    for (const core::DataDescriptor& d : m.metadata) {
      size += entry_wire_size(d);
    }
    size += 2 + 8 * m.cdi.size();
    size += 1;  // chunk-present flag
    if (m.chunk.has_value()) {
      size += 4 + 4 + m.chunk->size_bytes;  // index + length + payload
    }
    size += 2;  // item count
    for (const ItemPayload& item : m.items) {
      size += entry_wire_size(item.descriptor) + 4 + item.size_bytes;
    }
  }
  if (carries_trace(cfg_, m)) size += kTraceContextBytes;
  return size;
}

std::vector<std::byte> Codec::encode(const Message& m) const {
  ByteWriter w;
  const bool with_trace = carries_trace(cfg_, m);
  w.put_u8(static_cast<std::uint8_t>(m.type) |
           (with_trace ? kTraceContextFlag : 0));
  if (m.is_ack()) {
    w.put_u16(static_cast<std::uint16_t>(m.ack_tokens.size()));
    for (std::uint64_t token : m.ack_tokens) w.put_u64(token);
    w.put_u32(m.acker.value());
    return w.take();
  }
  if (m.is_repair()) {
    w.put_u64(m.ack_tokens.empty() ? 0 : m.ack_tokens.front());
    w.put_u32(m.acker.value());
    w.put_u16(static_cast<std::uint16_t>(m.requested_chunks.size()));
    for (ChunkIndex c : m.requested_chunks) w.put_u32(c);
    return w.take();
  }
  w.put_u8(static_cast<std::uint8_t>(m.kind));
  w.put_u32(m.sender.value());
  w.put_u64(m.is_query() ? m.query_id.value() : m.response_id.value());
  w.put_i64(m.expire_at.as_micros());
  w.put_u8(m.ttl);
  w.put_u8(static_cast<std::uint8_t>(m.receivers.size()));
  for (NodeId r : m.receivers) w.put_u32(r.value());
  w.put_u8(m.target.has_value() ? 1 : 0);
  if (m.target.has_value()) m.target->encode(w);
  if (m.is_query()) {
    m.filter.encode(w);
    std::vector<std::byte> bloom_bytes;
    m.exclude.encode(bloom_bytes);
    w.put_bytes(bloom_bytes);
    w.put_u16(static_cast<std::uint16_t>(m.requested_chunks.size()));
    for (ChunkIndex c : m.requested_chunks) w.put_u32(c);
  } else {
    w.put_u16(static_cast<std::uint16_t>(m.metadata.size()));
    for (const core::DataDescriptor& d : m.metadata) d.encode(w);
    w.put_u16(static_cast<std::uint16_t>(m.cdi.size()));
    for (const CdiEntry& e : m.cdi) {
      w.put_u32(e.chunk);
      w.put_u32(e.hop_count);
    }
    w.put_u8(m.chunk.has_value() ? 1 : 0);
    if (m.chunk.has_value()) {
      w.put_u32(m.chunk->index);
      w.put_u32(m.chunk->size_bytes);
      w.put_u64(m.chunk->content_hash);
    }
    w.put_u16(static_cast<std::uint16_t>(m.items.size()));
    for (const ItemPayload& item : m.items) {
      item.descriptor.encode(w);
      w.put_u32(item.size_bytes);
      w.put_u64(item.content_hash);
    }
  }
  if (with_trace) {
    w.put_u64(m.trace.trace_id);
    w.put_u64(m.trace.parent_span);
    w.put_u32(m.trace.origin);
    w.put_u8(m.trace.hop);
  }
  return w.take();
}

Message Codec::decode(std::span<const std::byte> bytes) const {
  ByteReader r(bytes);
  Message m;
  const std::uint8_t type_byte = r.get_u8();
  const bool has_trace = (type_byte & kTraceContextFlag) != 0;
  m.type = static_cast<MessageType>(type_byte & ~kTraceContextFlag);
  if (static_cast<std::uint8_t>(m.type) > 3) {
    throw DecodeError("unknown message type");
  }
  if (has_trace && !(m.is_query() || m.is_response())) {
    throw DecodeError("trace context on control frame");
  }
  if (m.is_ack()) {
    const std::uint16_t n_tokens = r.get_u16();
    for (std::uint16_t i = 0; i < n_tokens; ++i) {
      m.ack_tokens.push_back(r.get_u64());
    }
    m.acker = NodeId(r.get_u32());
    return m;
  }
  if (m.is_repair()) {
    m.ack_tokens.push_back(r.get_u64());
    m.acker = NodeId(r.get_u32());
    const std::uint16_t n_missing = r.get_u16();
    for (std::uint16_t i = 0; i < n_missing; ++i) {
      m.requested_chunks.push_back(r.get_u32());
    }
    return m;
  }
  m.kind = static_cast<ContentKind>(r.get_u8());
  if (static_cast<std::uint8_t>(m.kind) > 3) {
    throw DecodeError("unknown content kind");
  }
  m.sender = NodeId(r.get_u32());
  const std::uint64_t id = r.get_u64();
  if (m.is_query()) {
    m.query_id = QueryId(id);
  } else {
    m.response_id = ResponseId(id);
  }
  m.expire_at = SimTime::micros(r.get_i64());
  m.ttl = r.get_u8();
  const std::uint8_t n_recv = r.get_u8();
  for (std::uint8_t i = 0; i < n_recv; ++i) {
    m.receivers.emplace_back(r.get_u32());
  }
  if (r.get_u8() != 0) m.target = core::DataDescriptor::decode(r);
  if (m.is_query()) {
    m.filter = core::Filter::decode(r);
    const std::vector<std::byte> bloom_bytes = r.get_bytes();
    m.exclude = util::BloomFilter::decode(bloom_bytes);
    const std::uint16_t n_chunks = r.get_u16();
    for (std::uint16_t i = 0; i < n_chunks; ++i) {
      m.requested_chunks.push_back(r.get_u32());
    }
  } else {
    const std::uint16_t n_meta = r.get_u16();
    for (std::uint16_t i = 0; i < n_meta; ++i) {
      m.metadata.push_back(core::DataDescriptor::decode(r));
    }
    const std::uint16_t n_cdi = r.get_u16();
    for (std::uint16_t i = 0; i < n_cdi; ++i) {
      CdiEntry e;
      e.chunk = r.get_u32();
      e.hop_count = r.get_u32();
      m.cdi.push_back(e);
    }
    if (r.get_u8() != 0) {
      ChunkPayload c;
      c.index = r.get_u32();
      c.size_bytes = r.get_u32();
      c.content_hash = r.get_u64();
      m.chunk = c;
    }
    const std::uint16_t n_items = r.get_u16();
    for (std::uint16_t i = 0; i < n_items; ++i) {
      ItemPayload item;
      item.descriptor = core::DataDescriptor::decode(r);
      item.size_bytes = r.get_u32();
      item.content_hash = r.get_u64();
      m.items.push_back(std::move(item));
    }
  }
  if (has_trace) {
    m.trace.trace_id = r.get_u64();
    m.trace.parent_span = r.get_u64();
    m.trace.origin = r.get_u32();
    m.trace.hop = r.get_u8();
  }
  return m;
}

}  // namespace pds::net
