// Delta-synchronized Bloom filters for multi-round discovery (DESIGN.md §16).
//
// PDD's baseline ships the consumer's full exclude filter with every round's
// query, and every relay re-transmits it. After round 2 the filter changes
// only where newly arrived entries set bits, so later rounds can ship just
// the changed 64-bit blocks. The sync protocol is content-addressed rather
// than sequence-reliable:
//
//  * A frame names its base by checksum (`base_check` = bloom_check of the
//    filter the delta applies to) and its result (`self_check`). A receiver
//    applies a delta only if its cached filter for the session matches
//    base_check, and verifies self_check after patching. Any mismatch —
//    missed round, state heard from a rewriting relay, corruption — makes
//    the receiver fall back to the last filter it successfully applied for
//    the session (or the empty filter if it has none). Both fallbacks are
//    recall-safe: every cached filter is one the consumer shipped, so it
//    only suppresses entries the consumer already held.
//  * Full frames (a sparse list of all non-zero blocks plus the filter
//    parameters) re-seed the cache; senders emit one every kFullFrameEvery
//    frames and whenever the epoch changes, so a desynced receiver is back
//    in sync within a bounded number of rounds.
//  * `epoch` names the hash-function family. The paper (§V.3) re-seeds the
//    family every round so false positives die out; deltas require a stable
//    family, so delta mode keeps one family per epoch and the discovery
//    session starts a fresh epoch (new seed, exact sizing, full frame)
//    on every round after novelty — the family rotation preserves the
//    per-round false-positive die-out for entries still outstanding.
//  * Delta frames are only emitted after silent rounds (no new arrivals
//    since the previous frame): any round that surfaced entries had a relay
//    rewrite the forwarded filter into classic form, which hides the
//    session's frames from downstream caches — the round after novelty
//    always ships a full frame to resync them (see DiscoverySession).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "util/bloom_filter.h"

namespace pds::net {

// Senders emit a full frame at least every this many frames per session, so
// a receiver that fell back to the empty filter resyncs within a bounded
// number of rounds even without hearing the epoch change.
inline constexpr std::uint32_t kFullFrameEvery = 4;

// Order-independent 64-bit digest of a filter's parameters and bit array;
// the content address used by base_check/self_check.
[[nodiscard]] std::uint64_t bloom_check(const util::BloomFilter& f);

// One Bloom-sync frame: either a full sparse snapshot of the filter or a
// delta against the sender's previous frame.
struct BloomDeltaFrame {
  // One changed (or, in full frames, non-zero) 64-bit word of the bit array.
  struct Block {
    std::uint32_t index = 0;
    std::uint64_t word = 0;

    friend bool operator==(const Block&, const Block&) = default;
  };

  std::uint64_t session = 0;  // consumer session id (first query id)
  std::uint32_t epoch = 0;    // hash-family generation
  std::uint32_t seq = 0;      // frame number within the session
  bool full = false;          // snapshot vs delta
  // Full frames: filter parameters for reconstruction.
  std::uint32_t bit_count = 0;
  std::uint8_t hash_count = 0;
  std::uint64_t seed = 0;
  // Delta frames: checksum of the base filter this delta applies to.
  std::uint64_t base_check = 0;
  // Checksum of the filter that results from applying this frame.
  std::uint64_t self_check = 0;
  // Strictly increasing by index; words are always non-zero (within an
  // epoch the filter only ever gains bits, and full frames elide zero
  // words — which is what makes a snapshot of a sparse filter cheap).
  std::vector<Block> blocks;

  void encode(ByteWriter& w) const;
  // Throws DecodeError on any malformed input: unordered or zero blocks,
  // out-of-range parameters, truncation.
  static BloomDeltaFrame decode(ByteReader& r);
  [[nodiscard]] std::size_t wire_size() const;

  friend bool operator==(const BloomDeltaFrame&,
                         const BloomDeltaFrame&) = default;
};

// Consumer-side frame producer: remembers the last filter shipped for the
// session and diffs the next one against it. Owned by the DiscoverySession
// (only consumers originate sync frames; relays either pass frames through
// verbatim or drop to the classic full-filter encoding when they rewrote
// the filter en route).
class DeltaBloomSender {
 public:
  // Builds the next frame for `filter` under hash-family generation
  // `epoch`. Emits a full frame on the first call, whenever the epoch
  // changes, every kFullFrameEvery frames, and when `force_full` is set;
  // otherwise a delta against the previously shipped filter.
  [[nodiscard]] BloomDeltaFrame next_frame(std::uint64_t session,
                                           std::uint32_t epoch,
                                           const util::BloomFilter& filter,
                                           bool force_full = false);

  [[nodiscard]] std::uint32_t frames_sent() const { return seq_; }
  [[nodiscard]] std::uint32_t full_frames_sent() const { return fulls_; }

 private:
  std::optional<util::BloomFilter> last_;
  std::uint64_t last_check_ = 0;
  std::uint32_t last_epoch_ = 0;
  std::uint32_t seq_ = 0;
  std::uint32_t fulls_ = 0;
};

// Receiver-side reconstruction cache, one per node, keyed by session.
// `apply` returns the reconstructed exclude filter for a frame. When the
// frame cannot be applied (unknown base, checksum mismatch) it returns the
// session's last successfully applied filter — stale but shipped by the
// consumer, so recall-safe — or the empty filter for an unknown session.
// Bounded: least-recently-used sessions are evicted deterministically.
class BloomSyncCache {
 public:
  explicit BloomSyncCache(std::size_t max_sessions = 256)
      : max_sessions_(max_sessions) {}

  [[nodiscard]] util::BloomFilter apply(const BloomDeltaFrame& frame);

  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] std::uint64_t fallbacks() const { return fallbacks_; }
  void clear() { sessions_.clear(); }

 private:
  struct Entry {
    util::BloomFilter filter;
    std::uint32_t epoch = 0;
    std::uint32_t seq = 0;
    std::uint64_t check = 0;
    std::uint64_t last_used = 0;  // tick of last apply, for LRU eviction
  };

  util::BloomFilter fallback(std::uint64_t session);

  std::map<std::uint64_t, Entry> sessions_;
  std::size_t max_sessions_;
  std::uint64_t tick_ = 0;
  std::uint64_t fallbacks_ = 0;
};

}  // namespace pds::net
