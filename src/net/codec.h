// Wire codec: byte encoding and on-air sizing of PDS messages.
//
// The simulator charges every transmission its wire size, which makes the
// paper's "message overhead" metric (total bytes of all messages) concrete.
// Following the paper's parameterization (§VI-A), metadata entries are
// charged a fixed 30 bytes each by default; set `metadata_entry_bytes = 0`
// to charge the true canonical encoding instead.
//
// `encode`/`decode` provide a lossless round trip of the control structure
// (payload *content* is synthetic in simulation, so a chunk's bytes are
// represented by size + content hash, while `wire_size` charges the full
// payload length).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "net/message.h"

namespace pds::net {

struct WireConfig {
  // Fixed per-entry charge for metadata entries; 0 = actual encoded size.
  std::size_t metadata_entry_bytes = 30;
  // Versioned wire extension (DESIGN.md §14): when set, query/response
  // frames whose Message::trace is valid carry the causal trace context
  // in-band — the type byte's high bit marks the extension and
  // kTraceContextBytes are appended after the regular layout. Off by
  // default, so disabled tracing costs zero wire bytes and the encoding is
  // byte-identical to the pre-extension codec.
  bool carry_trace_context = false;
};

// trace_id(8) + parent_span(8) + origin(4) + hop(1).
inline constexpr std::size_t kTraceContextBytes = 8 + 8 + 4 + 1;
// High bit of the leading type byte: trace-context extension present.
inline constexpr std::uint8_t kTraceContextFlag = 0x80;

class Codec {
 public:
  explicit Codec(WireConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] std::size_t wire_size(const Message& m) const;

  [[nodiscard]] std::vector<std::byte> encode(const Message& m) const;
  [[nodiscard]] Message decode(std::span<const std::byte> bytes) const;

  [[nodiscard]] const WireConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] std::size_t entry_wire_size(
      const core::DataDescriptor& d) const;

  WireConfig cfg_;
};

}  // namespace pds::net
