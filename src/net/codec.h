// Wire codec: byte encoding and on-air sizing of PDS messages.
//
// The simulator charges every transmission its wire size, which makes the
// paper's "message overhead" metric (total bytes of all messages) concrete.
// Following the paper's parameterization (§VI-A), metadata entries are
// charged a fixed 30 bytes each by default; set `metadata_entry_bytes = 0`
// to charge the true canonical encoding instead. The flat charge wins over
// `compress_entries` sizing — measuring what entry compression buys
// requires `metadata_entry_bytes = 0` (bench/tab_wire does exactly that).
//
// `encode`/`decode` provide a lossless round trip of the control structure
// (payload *content* is synthetic in simulation, so a chunk's bytes are
// represented by size + content hash, while `wire_size` charges the full
// payload length).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "net/message.h"

namespace pds::net {

struct WireConfig {
  // Fixed per-entry charge for metadata entries; 0 = actual encoded size.
  std::size_t metadata_entry_bytes = 30;
  // Versioned wire extension (DESIGN.md §14): when set, query/response
  // frames whose Message::trace is valid carry the causal trace context
  // in-band — the type byte's high bit marks the extension and
  // kTraceContextBytes are appended after the regular layout. Off by
  // default, so disabled tracing costs zero wire bytes and the encoding is
  // byte-identical to the pre-extension codec.
  bool carry_trace_context = false;

  // Reconciliation wire extensions (DESIGN.md §16). Each flag gates what
  // this codec *emits*; every codec *decodes* all extensions regardless, so
  // upgraded and legacy-configured nodes interoperate (a legacy node simply
  // never produces the new frames). All three default off, keeping the
  // encoding byte-identical to the pre-extension codec.
  //
  // Multi-round discovery queries ship their exclude filter as a
  // Bloom-sync frame (net/bloom_delta.h): full sparse snapshots
  // re-anchor receivers, deltas carry only the 64-bit blocks that changed
  // since the previous round. Emission additionally requires the message
  // to carry a frame (Message::exclude_delta), which only delta-aware
  // discovery sessions produce.
  bool delta_bloom = false;
  // Response metadata/item descriptors use the dictionary + varint +
  // shared-prefix entry encoding instead of one self-contained canonical
  // encoding per entry.
  bool compress_entries = false;
  // CDI responses advertise chunk holdings as per-hop-count bitmaps, and
  // chunk queries name requested chunks as a bitmap, instead of per-chunk
  // u32 lists.
  bool chunk_bitmap = false;
};

// trace_id(8) + parent_span(8) + origin(4) + hop(1).
inline constexpr std::size_t kTraceContextBytes = 8 + 8 + 4 + 1;
// High bit of the leading type byte: trace-context extension present.
inline constexpr std::uint8_t kTraceContextFlag = 0x80;
// Second-highest bit of the type byte: a reconciliation-extension bitmap
// byte follows the type byte (DESIGN.md §16). Never set on control frames.
inline constexpr std::uint8_t kWireExtFlag = 0x40;

// Bits of the reconciliation-extension byte. A frame with kWireExtFlag set
// and no bits (or an unknown bit) is malformed.
inline constexpr std::uint8_t kExtDeltaBloom = 0x01;     // queries only
inline constexpr std::uint8_t kExtCompressedEntries = 0x02;  // responses only
inline constexpr std::uint8_t kExtChunkBitmap = 0x04;    // cdi / chunk lists

class Codec {
 public:
  explicit Codec(WireConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] std::size_t wire_size(const Message& m) const;

  [[nodiscard]] std::vector<std::byte> encode(const Message& m) const;
  [[nodiscard]] Message decode(std::span<const std::byte> bytes) const;

  [[nodiscard]] const WireConfig& config() const { return cfg_; }

 private:
  [[nodiscard]] std::size_t entry_wire_size(
      const core::DataDescriptor& d) const;

  WireConfig cfg_;
};

}  // namespace pds::net
