// Faces (paper §V): "PDS treats all network/link technologies as 'faces'.
// Such abstraction provides a uniform high-level interface while hiding
// heterogeneous lower level details of different network/link technologies."
//
// A Face is where the transport hands frames to a link and receives frames
// from it. Two implementations ship:
//
//  * BroadcastFace — the simulated UDP-broadcast face over RadioMedium,
//    which every PdsNode uses;
//  * LoopbackFace  — a deterministic in-process pipe connecting a set of
//    transports directly (perfect delivery, configurable per-frame delay),
//    for unit tests that want protocol behaviour without a radio model.
//
// Porting PDS to real hardware means writing one more Face (e.g., over a
// UDP socket joined to a broadcast group) — nothing above this interface
// changes.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/sim_time.h"
#include "sim/radio.h"
#include "sim/simulator.h"

namespace pds::net {

class Face {
 public:
  virtual ~Face() = default;

  using Receiver = std::function<void(const sim::Frame&)>;

  // Hands a frame to the link. Returns false when the link's buffer
  // overflowed and the frame was silently dropped.
  virtual bool send(sim::Frame frame) = 0;

  // Bytes queued on the link but not yet transmitted; the transport's
  // retransmission timers account for this drain time.
  [[nodiscard]] virtual std::size_t backlog_bytes() const = 0;

  // Nominal link transmit rate (for drain estimates).
  [[nodiscard]] virtual double link_rate_bps() const = 0;

  // Registers the upcall for received frames (intended and overheard).
  virtual void set_receiver(Receiver receiver) = 0;
};

// The simulated one-hop UDP-broadcast face (§V: all prototype messages are
// sent by UDP broadcast).
class BroadcastFace final : public Face, private sim::FrameSink {
 public:
  BroadcastFace(sim::RadioMedium& medium, NodeId self, sim::Vec2 position,
                bool enabled = true);

  bool send(sim::Frame frame) override;
  [[nodiscard]] std::size_t backlog_bytes() const override;
  [[nodiscard]] double link_rate_bps() const override;
  void set_receiver(Receiver receiver) override;

 private:
  void on_frame(const sim::Frame& frame) override;

  sim::RadioMedium& medium_;
  NodeId self_;
  Receiver receiver_;
};

// In-process face: frames sent on one endpoint arrive at every other
// endpoint of the same hub after `delay` (plus serialization at
// `rate_bps`), with no loss and no contention. Deterministic protocol unit
// tests plug transports together through this.
class LoopbackHub {
 public:
  LoopbackHub(sim::Simulator& sim, double rate_bps = 7.2e6,
              SimTime delay = SimTime::micros(50))
      : sim_(sim), rate_bps_(rate_bps), delay_(delay) {}

  [[nodiscard]] std::unique_ptr<Face> make_face(NodeId self);

 private:
  friend class LoopbackFace;
  struct Endpoint {
    NodeId id;
    Face::Receiver receiver;
  };

  void broadcast(NodeId from, sim::Frame frame);

  sim::Simulator& sim_;
  double rate_bps_;
  SimTime delay_;
  std::vector<std::shared_ptr<Endpoint>> endpoints_;
};

}  // namespace pds::net
