#include "net/face.h"

#include "common/assert.h"

namespace pds::net {

BroadcastFace::BroadcastFace(sim::RadioMedium& medium, NodeId self,
                             sim::Vec2 position, bool enabled)
    : medium_(medium), self_(self) {
  medium_.add_node(self, *this, position, enabled);
}

bool BroadcastFace::send(sim::Frame frame) {
  return medium_.send(self_, std::move(frame));
}

std::size_t BroadcastFace::backlog_bytes() const {
  return medium_.os_backlog_bytes(self_);
}

double BroadcastFace::link_rate_bps() const {
  return medium_.config().mac_rate_bps;
}

void BroadcastFace::set_receiver(Receiver receiver) {
  receiver_ = std::move(receiver);
}

void BroadcastFace::on_frame(const sim::Frame& frame) {
  if (receiver_) receiver_(frame);
}

class LoopbackFace final : public Face {
 public:
  LoopbackFace(LoopbackHub& hub,
               std::shared_ptr<LoopbackHub::Endpoint> endpoint)
      : hub_(hub), endpoint_(std::move(endpoint)) {}

  bool send(sim::Frame frame) override;
  [[nodiscard]] std::size_t backlog_bytes() const override { return 0; }
  [[nodiscard]] double link_rate_bps() const override;
  void set_receiver(Receiver receiver) override {
    endpoint_->receiver = std::move(receiver);
  }

 private:
  LoopbackHub& hub_;
  std::shared_ptr<LoopbackHub::Endpoint> endpoint_;
};

std::unique_ptr<Face> LoopbackHub::make_face(NodeId self) {
  auto endpoint = std::make_shared<Endpoint>();
  endpoint->id = self;
  endpoints_.push_back(endpoint);
  return std::make_unique<LoopbackFace>(*this, std::move(endpoint));
}

void LoopbackHub::broadcast(NodeId from, sim::Frame frame) {
  const SimTime arrival =
      delay_ + transmission_time(frame.size_bytes, rate_bps_);
  for (const auto& endpoint : endpoints_) {
    if (endpoint->id == from) continue;
    sim_.schedule(arrival, [endpoint, frame] {
      if (endpoint->receiver) endpoint->receiver(frame);
    });
  }
}

bool LoopbackFace::send(sim::Frame frame) {
  hub_.broadcast(endpoint_->id, std::move(frame));
  return true;
}

double LoopbackFace::link_rate_bps() const { return hub_.rate_bps_; }

}  // namespace pds::net
