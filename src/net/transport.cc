#include "net/transport.h"

#include <algorithm>
#include <memory>

#include "common/arena.h"
#include "common/assert.h"
#include "common/hash.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace pds::net {

namespace {

// Wire overhead of a fragment header (token, index/count, sizes).
constexpr std::size_t kFragmentHeaderBytes = 24;

std::uint64_t packet_ack_token(std::uint64_t msg_token, std::uint32_t index) {
  return hash_combine(msg_token, index);
}

// Whole-message token for fragmentation/acks. Relays rewrite and re-send
// responses under the same response id at every hop, so the hop's sender id
// is mixed in to keep concurrent transmissions of "the same" message from
// different nodes distinct at receivers.
std::uint64_t message_token(const Message& m) {
  return hash_combine(m.ack_key(), m.sender.value());
}

}  // namespace

Transport::Transport(sim::Simulator& sim, Face& face, NodeId self,
                     TransportConfig cfg, Codec codec)
    : sim_(sim),
      face_(face),
      self_(self),
      cfg_(cfg),
      codec_(std::move(codec)),
      bucket_(cfg.pacing_enabled
                  ? util::LeakyBucket(cfg.bucket_capacity_bytes,
                                      cfg.leak_rate_bps)
                  : util::LeakyBucket()) {
  PDS_ENSURE(cfg.mtu_bytes > kFragmentHeaderBytes);
  face_.set_receiver([this](const sim::Frame& frame) { on_frame(frame); });
}

std::vector<Transport::Packet> Transport::packetize(
    const MessagePtr& msg) const {
  const std::size_t wire = codec_.wire_size(*msg);
  std::vector<Packet> out;
  if (wire <= cfg_.mtu_bytes) {
    Packet p;
    p.whole = msg;
    p.ack_token = message_token(*msg);
    p.index = 0;
    p.count = 1;
    p.wire_bytes = wire;
    p.receivers = msg->receivers;
    out.push_back(std::move(p));
    return out;
  }
  const std::size_t budget = cfg_.mtu_bytes - kFragmentHeaderBytes;
  const auto count =
      static_cast<std::uint32_t>((wire + budget - 1) / budget);
  const std::uint64_t msg_token = message_token(*msg);
  std::size_t remaining = wire;
  for (std::uint32_t i = 0; i < count; ++i) {
    Packet p;
    p.whole = msg;
    p.ack_token = packet_ack_token(msg_token, i);
    p.index = i;
    p.count = count;
    p.wire_bytes = std::min(budget, remaining) + kFragmentHeaderBytes;
    p.receivers = msg->receivers;
    remaining -= std::min(budget, remaining);
    out.push_back(std::move(p));
  }
  return out;
}

void Transport::send(MessagePtr msg) {
  PDS_PROF_SCOPE(sim_.profiler(), "transport");
  PDS_ENSURE(msg != nullptr);
  const bool reliable = cfg_.reliability_enabled && !msg->is_ack() &&
                        !msg->receivers.empty();
  ++stats_.messages_sent;
  std::vector<Packet> packets = packetize(msg);
  if (packets.size() > 1) {
    PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), self_, "transport",
                      "fragments", {"count", packets.size()},
                      {"bytes", codec_.wire_size(*msg)});
  }
  if (cfg_.repair_enabled && packets.size() > 1) {
    // Keep the message around so receivers can ask for missing fragments.
    const std::uint64_t token = message_token(*msg);
    if (sent_fragmented_.emplace(token, msg).second) {
      sent_fragmented_order_.push_back(token);
      while (sent_fragmented_order_.size() > 64) {
        sent_fragmented_.erase(sent_fragmented_order_.front());
        sent_fragmented_order_.pop_front();
      }
    }
  }
  for (Packet& p : packets) {
    enqueue_packet(std::move(p), reliable);
  }
}

void Transport::enqueue_packet(Packet packet, bool reliable) {
  if (!reliable) {
    transmit(packet, false);
    return;
  }
  if (auto it = pending_.find(packet.ack_token); it != pending_.end()) {
    // Same packet sent again (e.g., a relay serving a later-arriving
    // matching query): extend the awaited set and retransmit outside the
    // window accounting.
    it->second.awaiting.insert(packet.receivers.begin(),
                               packet.receivers.end());
    it->second.packet = packet;
    transmit(packet, true);
    return;
  }
  if (cfg_.max_inflight > 0 && inflight_ >= cfg_.max_inflight) {
    send_queue_.push_back(std::move(packet));
    return;
  }
  start_reliable(std::move(packet));
}

void Transport::start_reliable(Packet packet) {
  ++inflight_;
  Pending& p = pending_[packet.ack_token];
  p.packet = packet;
  p.awaiting.insert(packet.receivers.begin(), packet.receivers.end());
  transmit(p.packet, true);
}

void Transport::complete_pending(std::uint64_t token) {
  if (pending_.erase(token) == 0) return;
  PDS_ENSURE(inflight_ > 0);
  --inflight_;
  while (!send_queue_.empty() &&
         (cfg_.max_inflight == 0 || inflight_ < cfg_.max_inflight)) {
    Packet next = std::move(send_queue_.front());
    send_queue_.pop_front();
    if (pending_.contains(next.ack_token)) continue;  // merged duplicate
    start_reliable(std::move(next));
  }
}

void Transport::transmit(const Packet& packet, bool track_reliably) {
  const SimTime release = bucket_.offer(sim_.now(), packet.wire_bytes);
  const std::uint64_t token = packet.ack_token;
  const int round = track_reliably ? pending_[token].retransmissions : 0;

  // Build the frame payload: small messages travel as-is (with their own
  // receiver list); fragments get a wrapper carrying this transmission's
  // receiver subset.
  std::shared_ptr<const sim::FramePayload> payload;
  if (packet.count == 1 && packet.receivers == packet.whole->receivers) {
    payload = packet.whole;
  } else if (packet.count == 1) {
    auto copy = make_pooled<Message>(*packet.whole);
    copy->receivers = packet.receivers;
    payload = std::move(copy);
  } else {
    auto frag = make_pooled<FragmentPayload>();
    frag->whole = packet.whole;
    frag->token = message_token(*packet.whole);
    frag->index = packet.index;
    frag->count = packet.count;
    frag->wire_bytes = packet.wire_bytes;
    frag->receivers = packet.receivers;
    payload = std::move(frag);
  }

  if (packet.count > 1) ++stats_.fragments_sent;
  sim_.schedule_at(release, [this, payload = std::move(payload),
                             size = packet.wire_bytes, track_reliably, token,
                             round, epoch = epoch_,
                             trace = packet.whole->trace] {
    if (epoch != epoch_) return;  // transport reset while queued: stale send
    if (!face_.send(sim::Frame{.sender = self_,
                               .size_bytes = size,
                               .payload = payload})) {
      ++stats_.frames_dropped_overflow;
      PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), self_, "transport",
                        "drop_overflow", {"bytes", size});
    } else if (trace.valid()) {
      // Per-frame cost attribution (DESIGN.md §14): one xmit per on-air
      // frame of a traced message, keyed by the tx span that put it on this
      // hop. round > 0 marks retransmissions; "us" charges the airtime.
      PDS_TRACE_INSTANT(
          sim_.tracer(), sim_.now(), self_, "causal", "xmit",
          {"trace", trace.trace_id}, {"span", trace.parent_span},
          {"round", round}, {"bytes", size},
          {"us",
           transmission_time(size, face_.link_rate_bps()).as_micros()});
    }
    if (track_reliably) {
      // The ack round trip cannot complete before this packet drains through
      // the link's buffer and crosses the air, so the timer starts after an
      // estimate of that backlog.
      const SimTime drain = transmission_time(
          face_.backlog_bytes() + size, face_.link_rate_bps());
      sim_.schedule(drain + cfg_.retr_timeout, [this, token, round] {
        check_pending(token, round);
      });
    }
  });
}

void Transport::check_pending(std::uint64_t token, int expected_round) {
  auto it = pending_.find(token);
  if (it == pending_.end()) return;  // fully acknowledged
  Pending& p = it->second;
  if (p.retransmissions != expected_round) return;  // a newer timer exists
  if (p.awaiting.empty()) {
    complete_pending(token);
    return;
  }
  if (p.retransmissions >= cfg_.max_retransmissions) {
    ++stats_.deliveries_gave_up;
    PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), self_, "transport", "give_up",
                      {"round", p.retransmissions},
                      {"awaiting", p.awaiting.size()});
    PDS_LOG_DEBUG("transport",
                  "node " << self_ << " gave up on packet after "
                          << p.retransmissions << " retransmissions ("
                          << p.awaiting.size() << " receiver(s) silent)");
    // Degrade instead of hanging: surface every still-silent receiver so the
    // protocol layer can drop routes/queries through it. The set is sorted
    // before the callbacks fire — unordered_set iteration order must never
    // leak into protocol behaviour.
    std::vector<NodeId> silent(  // pdslint:allow(unordered-iter)
        p.awaiting.begin(), p.awaiting.end());
    std::sort(silent.begin(), silent.end());
    complete_pending(token);
    if (unreachable_cb_) {
      for (NodeId peer : silent) unreachable_cb_(peer);
    }
    return;
  }
  // Retransmit with the receiver list rewritten to the unacked subset; the
  // hash-order copy is sorted on the next line before anything observes it.
  p.packet.receivers.assign(  // pdslint:allow(unordered-iter)
      p.awaiting.begin(), p.awaiting.end());
  std::sort(p.packet.receivers.begin(), p.packet.receivers.end());
  ++p.retransmissions;
  ++stats_.retransmissions;
  PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), self_, "transport",
                    "retransmit", {"round", p.retransmissions},
                    {"awaiting", p.awaiting.size()});
  transmit(p.packet, true);
}

void Transport::send_ack(std::uint64_t token) {
  ack_batch_.push_back(token);
  if (!ack_flush_scheduled_) {
    ack_flush_scheduled_ = true;
    sim_.schedule(cfg_.ack_aggregation_delay, [this] { flush_acks(); });
  }
}

void Transport::flush_acks() {
  ack_flush_scheduled_ = false;
  std::size_t i = 0;
  while (i < ack_batch_.size()) {
    auto ack = make_pooled<Message>();
    ack->type = MessageType::kAck;
    ack->acker = self_;
    ack->sender = self_;
    const std::size_t end =
        std::min(i + cfg_.max_ack_tokens_per_frame, ack_batch_.size());
    ack->ack_tokens.assign(ack_batch_.begin() + static_cast<std::ptrdiff_t>(i),
                           ack_batch_.begin() + static_cast<std::ptrdiff_t>(end));
    i = end;
    ++stats_.acks_sent;
    // Acks bypass the leaky bucket and ride as priority control frames.
    const std::size_t ack_bytes = codec_.wire_size(*ack);
    if (!face_.send(sim::Frame{.sender = self_,
                               .size_bytes = ack_bytes,
                               .control = true,
                               .payload = std::move(ack)})) {
      ++stats_.frames_dropped_overflow;
      PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), self_, "transport",
                        "drop_overflow", {"bytes", ack_bytes});
    }
  }
  ack_batch_.clear();
}

bool Transport::explicitly_addressed_for_repair(const MessagePtr& whole) const {
  return !whole->receivers.empty() &&
         std::find(whole->receivers.begin(), whole->receivers.end(), self_) !=
             whole->receivers.end();
}

void Transport::on_data_packet(const MessagePtr& whole,
                               std::uint64_t msg_token, std::uint32_t index,
                               std::uint32_t count,
                               std::uint64_t packet_token,
                               const std::vector<NodeId>& receivers) {
  // Per-hop ack: only when explicitly listed; an empty receiver list means
  // "all neighbors", whom the sender cannot enumerate to await acks from.
  const bool explicitly_addressed =
      !receivers.empty() &&
      std::find(receivers.begin(), receivers.end(), self_) != receivers.end();
  if (explicitly_addressed && cfg_.reliability_enabled) {
    send_ack(packet_token);
  }

  if (count == 1) {
    if (handler_) handler_(whole);
    return;
  }

  // Reassemble fragmented messages; every receiver (including overhearers)
  // reassembles so opportunistic caching sees whole messages.
  if (completed_messages_.contains(msg_token)) return;  // retx duplicate
  Reassembly& r = reassembly_[msg_token];
  if (r.whole == nullptr) {
    r.whole = whole;
    r.have.assign(count, false);
  }
  r.last_update = sim_.now();
  if (index < r.have.size() && !r.have[index]) {
    r.have[index] = true;
    ++r.received;
  }
  const bool complete = r.received == count;
  if (complete) {
    reassembly_.erase(msg_token);
    completed_messages_.insert(msg_token);
    if (handler_) handler_(whole);
    return;
  }
  if (cfg_.repair_enabled) {
    if (explicitly_addressed_for_repair(whole)) r.addressed = true;
    if (r.addressed && !r.repair_scheduled &&
        r.repair_attempts < cfg_.max_repair_attempts) {
      r.repair_scheduled = true;
      sim_.schedule(cfg_.repair_timeout,
                    [this, msg_token] { check_repair(msg_token); });
    }
  }
  if (reassembly_.size() > 256) {
    // Drop the stalest partial assembly to bound memory. reassembly_ is an
    // ordered map, so the strict `<` tie-breaks equally-old assemblies by
    // lowest token — deterministically, unlike the former hash-order walk.
    auto oldest = reassembly_.begin();
    for (auto it = reassembly_.begin(); it != reassembly_.end(); ++it) {
      if (it->second.last_update < oldest->second.last_update) oldest = it;
    }
    reassembly_.erase(oldest);
  }
}

void Transport::check_repair(std::uint64_t msg_token) {
  auto it = reassembly_.find(msg_token);
  if (it == reassembly_.end()) return;  // completed or evicted
  Reassembly& r = it->second;
  r.repair_scheduled = false;
  if (r.received > r.last_progress) {
    // Fragments still trickling in; check again later.
    r.last_progress = r.received;
    r.repair_scheduled = true;
    sim_.schedule(cfg_.repair_timeout,
                  [this, msg_token] { check_repair(msg_token); });
    return;
  }
  if (r.repair_attempts >= cfg_.max_repair_attempts) {
    // Stop asking, but keep the partial bitmap: fragments still in flight
    // (retransmissions, other receivers' repairs) continue to accumulate.
    // Erasing here would restart reassembly from scratch and re-request
    // nearly the whole message, looping forever.
    return;
  }
  ++r.repair_attempts;
  ++stats_.repair_requests_sent;
  auto request = make_pooled<Message>();
  request->type = MessageType::kRepair;
  request->sender = self_;
  request->acker = self_;
  request->ack_tokens = {msg_token};
  for (std::uint32_t i = 0;
       i < r.have.size() &&
       request->requested_chunks.size() < cfg_.max_repair_indices_per_request;
       ++i) {
    if (!r.have[i]) request->requested_chunks.push_back(i);
  }
  const std::size_t request_bytes = codec_.wire_size(*request);
  if (!face_.send(sim::Frame{.sender = self_,
                             .size_bytes = request_bytes,
                             .control = true,
                             .payload = std::move(request)})) {
    ++stats_.frames_dropped_overflow;
    PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), self_, "transport",
                      "drop_overflow", {"bytes", request_bytes});
  }
  r.repair_scheduled = true;
  sim_.schedule(cfg_.repair_timeout,
                [this, msg_token] { check_repair(msg_token); });
}

void Transport::handle_repair_request(const Message& request) {
  if (request.ack_tokens.empty()) return;
  auto it = sent_fragmented_.find(request.ack_tokens.front());
  if (it == sent_fragmented_.end()) return;  // not ours or evicted
  ++stats_.repair_requests_served;
  const MessagePtr& whole = it->second;
  std::vector<Packet> packets = packetize(whole);
  for (ChunkIndex index : request.requested_chunks) {
    if (index >= packets.size()) continue;
    Packet p = packets[index];
    p.receivers = {request.acker};
    enqueue_packet(std::move(p), cfg_.reliability_enabled);
  }
}

void Transport::on_frame(const sim::Frame& frame) {
  PDS_PROF_SCOPE(sim_.profiler(), "transport");
  if (auto msg = std::dynamic_pointer_cast<const Message>(frame.payload)) {
    if (msg->is_repair()) {
      handle_repair_request(*msg);
      return;
    }
    if (msg->is_ack()) {
      for (std::uint64_t token : msg->ack_tokens) {
        auto it = pending_.find(token);
        if (it == pending_.end()) continue;
        ++stats_.acks_received;
        it->second.awaiting.erase(msg->acker);
        if (it->second.awaiting.empty()) complete_pending(token);
      }
      return;
    }
    on_data_packet(msg, message_token(*msg), 0, 1, message_token(*msg),
                   msg->receivers);
    return;
  }
  auto frag = std::dynamic_pointer_cast<const FragmentPayload>(frame.payload);
  // Unknown payloads (e.g. fault-injected junk traffic) are ignored, like a
  // real radio overhearing foreign frames; their cost is airtime and OS
  // buffer space, not an abort.
  if (frag == nullptr) return;
  on_data_packet(frag->whole, frag->token, frag->index, frag->count,
                 packet_ack_token(frag->token, frag->index), frag->receivers);
}

void Transport::reset() {
  ++epoch_;
  pending_.clear();
  send_queue_.clear();
  inflight_ = 0;
  reassembly_.clear();
  sent_fragmented_.clear();
  sent_fragmented_order_.clear();
  ack_batch_.clear();
  ack_flush_scheduled_ = false;
  completed_messages_.clear();
  bucket_ = cfg_.pacing_enabled ? util::LeakyBucket(cfg_.bucket_capacity_bytes,
                                                    cfg_.leak_rate_bps)
                                : util::LeakyBucket();
}

void Transport::register_metrics(obs::MetricsRegistry& registry,
                                 const std::string& prefix) const {
  registry.expose_counter(prefix + "messages_sent", &stats_.messages_sent);
  registry.expose_counter(prefix + "retransmissions", &stats_.retransmissions);
  registry.expose_counter(prefix + "acks_sent", &stats_.acks_sent);
  registry.expose_counter(prefix + "acks_received", &stats_.acks_received);
  registry.expose_counter(prefix + "deliveries_gave_up",
                          &stats_.deliveries_gave_up);
  registry.expose_counter(prefix + "repair_requests_sent",
                          &stats_.repair_requests_sent);
  registry.expose_counter(prefix + "repair_requests_served",
                          &stats_.repair_requests_served);
  registry.expose_counter(prefix + "fragments_sent", &stats_.fragments_sent);
  registry.expose_counter(prefix + "frames_dropped_overflow",
                          &stats_.frames_dropped_overflow);
}

}  // namespace pds::net
