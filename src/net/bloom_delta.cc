#include "net/bloom_delta.h"

#include <utility>

#include "common/assert.h"
#include "common/hash.h"

namespace pds::net {

namespace {

// Frame flag bits (byte after seq).
constexpr std::uint8_t kFlagFull = 0x01;

// Caps mirrored from BloomFilter::decode: at most 32 MiB of filter bits,
// so at most this many 64-bit words can legitimately appear in a frame.
constexpr std::uint32_t kMaxBitCount = 1u << 28;
constexpr std::uint32_t kMaxWordIndex = kMaxBitCount / 64;

}  // namespace

std::uint64_t bloom_check(const util::BloomFilter& f) {
  std::uint64_t h = hash_combine(f.bit_count(), f.hash_count());
  h = hash_combine(h, f.seed());
  for (std::uint64_t word : f.words()) h = hash_combine(h, word);
  return h;
}

void BloomDeltaFrame::encode(ByteWriter& w) const {
  w.put_u64(session);
  w.put_varint(epoch);
  w.put_varint(seq);
  w.put_u8(full ? kFlagFull : 0);
  if (full) {
    w.put_varint(bit_count);
    w.put_u8(hash_count);
    w.put_u64(seed);
  } else {
    w.put_u64(base_check);
  }
  w.put_u64(self_check);
  w.put_varint(blocks.size());
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    // First index raw; later ones as the gap to the previous index, which
    // is >= 1 because blocks are strictly increasing.
    w.put_varint(i == 0 ? blocks[i].index : blocks[i].index - prev);
    w.put_u64(blocks[i].word);
    prev = blocks[i].index;
  }
}

BloomDeltaFrame BloomDeltaFrame::decode(ByteReader& r) {
  BloomDeltaFrame f;
  f.session = r.get_u64();
  const std::uint64_t epoch = r.get_varint();
  const std::uint64_t seq = r.get_varint();
  if (epoch > 0xffffffffULL || seq > 0xffffffffULL) {
    throw DecodeError("Bloom sync epoch/seq out of range");
  }
  f.epoch = static_cast<std::uint32_t>(epoch);
  f.seq = static_cast<std::uint32_t>(seq);
  const std::uint8_t flags = r.get_u8();
  if ((flags & ~kFlagFull) != 0) {
    throw DecodeError("unknown Bloom sync frame flags");
  }
  f.full = (flags & kFlagFull) != 0;
  if (f.full) {
    const std::uint64_t bits = r.get_varint();
    f.hash_count = r.get_u8();
    f.seed = r.get_u64();
    if (bits == 0 || bits > kMaxBitCount || f.hash_count == 0) {
      throw DecodeError("malformed Bloom sync filter parameters");
    }
    f.bit_count = static_cast<std::uint32_t>(bits);
  } else {
    f.base_check = r.get_u64();
  }
  f.self_check = r.get_u64();
  const std::uint64_t n_blocks = r.get_varint();
  if (n_blocks > kMaxWordIndex) {
    throw DecodeError("Bloom sync block count out of range");
  }
  const std::uint32_t word_limit =
      f.full ? (f.bit_count + 63) / 64 : kMaxWordIndex;
  std::uint32_t prev = 0;
  for (std::uint64_t i = 0; i < n_blocks; ++i) {
    const std::uint64_t gap = r.get_varint();
    const std::uint64_t index = (i == 0) ? gap : gap + prev;
    if ((i > 0 && gap == 0) || index >= word_limit) {
      throw DecodeError("Bloom sync blocks not strictly increasing");
    }
    Block b;
    b.index = static_cast<std::uint32_t>(index);
    b.word = r.get_u64();
    if (b.word == 0) throw DecodeError("zero word in Bloom sync block");
    f.blocks.push_back(b);
    prev = b.index;
  }
  return f;
}

std::size_t BloomDeltaFrame::wire_size() const {
  std::size_t size = 8 + varint_size(epoch) + varint_size(seq) + 1;
  size += full ? (varint_size(bit_count) + 1 + 8) : 8;
  size += 8;  // self_check
  size += varint_size(blocks.size());
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    size += varint_size(i == 0 ? blocks[i].index : blocks[i].index - prev) + 8;
    prev = blocks[i].index;
  }
  return size;
}

BloomDeltaFrame DeltaBloomSender::next_frame(std::uint64_t session,
                                             std::uint32_t epoch,
                                             const util::BloomFilter& filter,
                                             bool force_full) {
  PDS_ENSURE(!filter.empty_filter());
  BloomDeltaFrame f;
  f.session = session;
  f.epoch = epoch;
  f.seq = seq_++;
  const std::uint64_t check = bloom_check(filter);
  const bool full = force_full || !last_.has_value() || epoch != last_epoch_ ||
                    f.seq % kFullFrameEvery == 0;
  if (full) {
    f.full = true;
    f.bit_count = static_cast<std::uint32_t>(filter.bit_count());
    f.hash_count = static_cast<std::uint8_t>(filter.hash_count());
    f.seed = filter.seed();
    const auto words = filter.words();
    for (std::uint32_t i = 0; i < words.size(); ++i) {
      if (words[i] != 0) f.blocks.push_back({i, words[i]});
    }
    ++fulls_;
  } else {
    // Same epoch means the same capacity, so the word arrays line up.
    PDS_ENSURE(last_->bit_count() == filter.bit_count());
    f.base_check = last_check_;
    const auto prev = last_->words();
    const auto cur = filter.words();
    for (std::uint32_t i = 0; i < cur.size(); ++i) {
      if (cur[i] != prev[i]) f.blocks.push_back({i, cur[i]});
    }
  }
  f.self_check = check;
  last_ = filter;
  last_check_ = check;
  last_epoch_ = epoch;
  return f;
}

util::BloomFilter BloomSyncCache::fallback(std::uint64_t session) {
  ++fallbacks_;
  // Prefer the stale filter over the empty one: every cached filter is one
  // the consumer actually shipped, so it only suppresses entries the
  // consumer already held — still recall-safe, but it bounds duplicate
  // serving to the handful of entries that arrived since, instead of the
  // node re-serving its whole store. The stale entry stays cached (at its
  // old seq/check) until the next full frame resyncs it.
  const auto it = sessions_.find(session);
  if (it != sessions_.end()) {
    it->second.last_used = tick_;
    return it->second.filter;
  }
  return util::BloomFilter{};
}

util::BloomFilter BloomSyncCache::apply(const BloomDeltaFrame& frame) {
  ++tick_;
  if (frame.full) {
    // An out-of-order full frame must not roll a session back: the sender's
    // next delta would base-check against the newest state, not this one.
    const auto it = sessions_.find(frame.session);
    if (it != sessions_.end() && it->second.epoch == frame.epoch &&
        frame.seq < it->second.seq) {
      it->second.last_used = tick_;
      return it->second.filter;
    }
    util::BloomFilter f(frame.bit_count, frame.hash_count, frame.seed);
    const std::size_t words = f.words().size();
    for (const BloomDeltaFrame::Block& b : frame.blocks) {
      if (b.index >= words) return fallback(frame.session);
      f.set_word(b.index, b.word);
    }
    if (bloom_check(f) != frame.self_check) return fallback(frame.session);
    if (sessions_.size() >= max_sessions_ &&
        !sessions_.contains(frame.session)) {
      // Evict the least recently used session; ties (impossible — ticks are
      // unique) aside, this is deterministic because the map is ordered.
      auto lru = sessions_.begin();
      for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
        if (it->second.last_used < lru->second.last_used) lru = it;
      }
      sessions_.erase(lru);
    }
    Entry& e = sessions_[frame.session];
    e.filter = f;
    e.epoch = frame.epoch;
    e.seq = frame.seq;
    e.check = frame.self_check;
    e.last_used = tick_;
    return f;
  }
  const auto it = sessions_.find(frame.session);
  if (it == sessions_.end()) return fallback(frame.session);
  Entry& e = it->second;
  // A re-heard or out-of-order frame from the current state: if we already
  // are at (or past) this frame, just return what we have — re-applying a
  // delta whose base we no longer hold would needlessly drop the session.
  if (e.epoch == frame.epoch && frame.seq <= e.seq) {
    e.last_used = tick_;
    return e.filter;
  }
  if (e.check != frame.base_check) return fallback(frame.session);
  util::BloomFilter f = e.filter;
  const std::size_t words = f.words().size();
  for (const BloomDeltaFrame::Block& b : frame.blocks) {
    if (b.index >= words) return fallback(frame.session);
    f.set_word(b.index, b.word);
  }
  if (bloom_check(f) != frame.self_check) return fallback(frame.session);
  e.filter = f;
  e.epoch = frame.epoch;
  e.seq = frame.seq;
  e.check = frame.self_check;
  e.last_used = tick_;
  return f;
}

}  // namespace pds::net
