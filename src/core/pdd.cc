#include "core/pdd.h"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>

#include "common/assert.h"
#include "core/causal.h"
#include "core/flood.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace pds::core {

namespace {

bool is_pdd_kind(net::ContentKind kind) {
  return kind == net::ContentKind::kMetadata ||
         kind == net::ContentKind::kItem;
}

// Does this lingering query still need the entry with the given descriptor
// and key? (filter match, not yet served through this node, not already held
// by the consumer per the query's Bloom filter)
bool wants(const LingeringQuery& lq, const DataDescriptor& d,
           std::uint64_t key) {
  if (!lq.query->filter.matches(d)) return false;
  if (lq.served_keys.contains(key)) return false;
  if (lq.exclude.maybe_contains(key)) return false;
  return true;
}

void mark_served(LingeringQuery& lq, std::uint64_t key, bool bloom_rewriting) {
  lq.served_keys.insert(key);
  if (bloom_rewriting && !lq.exclude.empty_filter()) lq.exclude.insert(key);
}

// Builds a copy of `r` whose payload is restricted to the given indices
// (sorted). Used both for pruned relays and local delivery.
net::Message prune_payload(const net::Message& r,
                           const std::vector<std::size_t>& keep) {
  net::Message out = r;
  if (r.kind == net::ContentKind::kMetadata) {
    out.metadata.clear();
    for (std::size_t i : keep) out.metadata.push_back(r.metadata[i]);
  } else {
    out.items.clear();
    for (std::size_t i : keep) out.items.push_back(r.items[i]);
  }
  return out;
}

}  // namespace

std::vector<std::uint64_t> PddEngine::payload_keys(const net::Message& r) {
  std::vector<std::uint64_t> keys;
  if (r.kind == net::ContentKind::kMetadata) {
    keys.reserve(r.metadata.size());
    for (const DataDescriptor& d : r.metadata) keys.push_back(d.entry_key());
  } else {
    keys.reserve(r.items.size());
    for (const net::ItemPayload& item : r.items) {
      keys.push_back(item.descriptor.entry_key());
    }
  }
  return keys;
}

void PddEngine::handle_query(const net::MessagePtr& query) {
  PDS_PROF_SCOPE(ctx_.sim.profiler(), "pdd");
  PDS_ENSURE(query->is_query() && is_pdd_kind(query->kind));
  const SimTime now = ctx_.now();
  if (query->expire_at <= now) return;

  // {LQT Lookup} — discard redundant copies of an already-lingering query
  // (counting them for counter-based flood suppression).
  if (ctx_.lqt.contains(query->query_id)) {
    note_duplicate_flood_copy(ctx_, query->query_id);
    PDS_TRACE_INSTANT(ctx_.sim.tracer(), now, ctx_.self, "lq",
                      "query_duplicate", {"query", query->query_id.value()});
    return;
  }
  LingeringQuery& lq = ctx_.lqt.insert(query, now);
  lq.recv_span = causal_recv(ctx_, query->trace);
  if (query->exclude_delta.has_value()) {
    // Delta-synced exclude filter (DESIGN.md §16): reconstruct the
    // consumer's filter from the sync frame. On any base/checksum mismatch
    // this yields the empty filter — recall-safe, because the exclude
    // filter only suppresses duplicate replies.
    lq.exclude = ctx_.bloom_sync.apply(*query->exclude_delta);
  }
  // Inserted-key count before serving: if serving adds nothing, a received
  // sync frame can be relayed verbatim instead of as a full filter.
  const std::size_t installed_inserts = lq.exclude.inserted_count();
  PDS_TRACE_INSTANT(ctx_.sim.tracer(), now, ctx_.self, "lq", "query_install",
                    {"query", query->query_id.value()},
                    {"upstream", query->sender}, {"ttl", query->ttl});

  // {DS Lookup} — answer with matching local entries.
  serve_from_store(lq);

  // {Receiver Check}.
  if (!query->addressed_to(ctx_.self)) return;

  // {Forwarding} — rewrite sender and receiver list; with en-route query
  // rewriting the forwarded Bloom filter includes the entries just served so
  // downstream nodes do not return them again. An optional hop budget
  // (§III-A.1: "a hop counter if needed") limits flood scope.
  if (query->ttl == 1) return;
  auto fwd = std::make_shared<net::Message>(*query);
  fwd->sender = ctx_.self;
  fwd->receivers.clear();
  if (fwd->ttl > 0) --fwd->ttl;
  if (ctx_.config.enable_bloom_rewriting) {
    if (query->exclude_delta.has_value() &&
        lq.exclude.inserted_count() == installed_inserts) {
      // Nothing served here: pass the consumer's sync frame through
      // verbatim (the copy above kept it), so downstream caches stay
      // anchored to the consumer's state even across multi-hop relays.
    } else {
      // The filter was rewritten en route (keys served at this hop) — or a
      // classic query: ship the updated filter in the classic full form.
      fwd->exclude_delta.reset();
      fwd->exclude = lq.exclude;
    }
  }
  causal_tx(ctx_, *fwd, query->trace, lq.recv_span, /*hop_delta=*/1);
  PDS_TRACE_INSTANT(ctx_.sim.tracer(), now, ctx_.self, "lq", "query_forward",
                    {"query", query->query_id.value()}, {"ttl", fwd->ttl});
  maybe_forward_flood(ctx_, query->query_id, std::move(fwd));
}

void PddEngine::serve_from_store(LingeringQuery& lq) {
  const SimTime now = ctx_.now();
  const net::Message& q = *lq.query;
  const PdsConfig& cfg = ctx_.config;

  if (q.kind == net::ContentKind::kMetadata) {
    std::vector<DataDescriptor> fresh;
    for (DataStore::MetaMatch& m :
         ctx_.store.match_metadata_records(q.filter, now)) {
      const std::uint64_t key = m.descriptor.entry_key();
      if (lq.served_keys.contains(key) || lq.exclude.maybe_contains(key)) {
        continue;
      }
      // Serve cooldown (DESIGN.md §16): a cached-only copy that just came
      // off the air is still in flight toward its consumer through the node
      // it was heard from; re-serving it from every cache along the path
      // multiplies response traffic. Publisher copies are never suppressed,
      // so a lost in-flight copy is recovered by the next round's filter
      // gap.
      if (!m.has_payload &&
          now < m.cached_at + cfg.entry_serve_cooldown) {
        continue;
      }
      fresh.push_back(std::move(m.descriptor));
    }
    for (std::size_t begin = 0; begin < fresh.size();
         begin += cfg.max_entries_per_response) {
      const std::size_t end =
          std::min(begin + cfg.max_entries_per_response, fresh.size());
      auto resp = std::make_shared<net::Message>();
      resp->type = net::MessageType::kResponse;
      resp->kind = q.kind;
      resp->response_id = ctx_.new_response_id();
      resp->sender = ctx_.self;
      resp->receivers = {lq.upstream};
      resp->metadata.assign(fresh.begin() + static_cast<std::ptrdiff_t>(begin),
                            fresh.begin() + static_cast<std::ptrdiff_t>(end));
      for (const DataDescriptor& d : resp->metadata) {
        mark_served(lq, d.entry_key(), cfg.enable_bloom_rewriting);
      }
      causal_tx(ctx_, *resp, lq.trace, lq.recv_span);
      ctx_.transport.send(std::move(resp));
    }
    trace_serve(lq, fresh.size());
    return;
  }

  // Small items: batch by payload bytes rather than entry count.
  std::vector<net::ItemPayload> fresh;
  for (net::ItemPayload& item : ctx_.store.match_items(q.filter, now)) {
    const std::uint64_t key = item.descriptor.entry_key();
    if (lq.served_keys.contains(key) || lq.exclude.maybe_contains(key)) {
      continue;
    }
    fresh.push_back(std::move(item));
  }
  std::size_t begin = 0;
  while (begin < fresh.size()) {
    auto resp = std::make_shared<net::Message>();
    resp->type = net::MessageType::kResponse;
    resp->kind = q.kind;
    resp->response_id = ctx_.new_response_id();
    resp->sender = ctx_.self;
    resp->receivers = {lq.upstream};
    std::size_t bytes = 0;
    while (begin < fresh.size() &&
           (resp->items.empty() ||
            bytes + fresh[begin].size_bytes <= cfg.max_item_payload_bytes)) {
      bytes += fresh[begin].size_bytes;
      resp->items.push_back(std::move(fresh[begin]));
      ++begin;
    }
    for (const net::ItemPayload& item : resp->items) {
      mark_served(lq, item.descriptor.entry_key(),
                  cfg.enable_bloom_rewriting);
    }
    causal_tx(ctx_, *resp, lq.trace, lq.recv_span);
    ctx_.transport.send(std::move(resp));
  }
  trace_serve(lq, fresh.size());
}

void PddEngine::trace_serve(const LingeringQuery& lq, std::size_t entries) {
  if (entries == 0) return;
  PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "pdd", "serve",
                    {"query", lq.query->query_id.value()},
                    {"entries", entries});
  // En-route rewriting: the keys just served were folded into the query's
  // Bloom filter, so downstream copies stop returning them (§III-B.1).
  if (ctx_.config.enable_bloom_rewriting && !lq.exclude.empty_filter()) {
    PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "lq",
                      "rewrite", {"query", lq.query->query_id.value()},
                      {"keys_added", entries});
  }
}

namespace {

// Shared by both serve_new_publication overloads: collect the matching
// lingering queries' upstreams (mixedcast — one transmission, many
// overlapping subscriptions) and mark the entry served everywhere.
struct PushPlan {
  std::vector<NodeId> relay_receivers;
  std::vector<QueryId> local_queries;
  // Causal attribution for the one pushed response: of all matched traced
  // queries, the one with the smallest (trace_id, parent span) — a total
  // order, so the choice is deterministic under unordered LQT iteration.
  net::TraceContext trace;
  std::uint64_t parent = 0;
};

PushPlan plan_push(NodeContext& ctx, net::ContentKind kind,
                   const DataDescriptor& descriptor, std::uint64_t key) {
  PushPlan plan;
  for (LingeringQuery* lq : ctx.lqt.live_queries(kind, ctx.now())) {
    if (!wants(*lq, descriptor, key)) continue;
    mark_served(*lq, key, ctx.config.enable_bloom_rewriting);
    if (lq->upstream == ctx.self) {
      plan.local_queries.push_back(lq->query->query_id);
    } else {
      plan.relay_receivers.push_back(lq->upstream);
    }
    const std::uint64_t cand_parent =
        lq->recv_span != 0 ? lq->recv_span : lq->trace.parent_span;
    if (lq->trace.valid() &&
        (!plan.trace.valid() ||
         std::pair(lq->trace.trace_id, cand_parent) <
             std::pair(plan.trace.trace_id, plan.parent))) {
      plan.trace = lq->trace;
      plan.parent = cand_parent;
    }
  }
  std::sort(plan.relay_receivers.begin(), plan.relay_receivers.end());
  plan.relay_receivers.erase(
      std::unique(plan.relay_receivers.begin(), plan.relay_receivers.end()),
      plan.relay_receivers.end());
  return plan;
}

}  // namespace

void PddEngine::serve_new_publication(const DataDescriptor& entry) {
  const PushPlan plan = plan_push(ctx_, net::ContentKind::kMetadata, entry,
                                  entry.entry_key());
  if (plan.relay_receivers.empty() && plan.local_queries.empty()) return;
  auto resp = std::make_shared<net::Message>();
  resp->type = net::MessageType::kResponse;
  resp->kind = net::ContentKind::kMetadata;
  resp->response_id = ctx_.new_response_id();
  resp->sender = ctx_.self;
  resp->metadata = {entry};
  if (!plan.local_queries.empty()) {
    causal_deliver(ctx_, plan.trace, plan.parent);
  }
  for (QueryId q : plan.local_queries) ctx_.deliver_local(q, *resp);
  if (!plan.relay_receivers.empty()) {
    resp->receivers = plan.relay_receivers;
    causal_tx(ctx_, *resp, plan.trace, plan.parent);
    ctx_.transport.send(std::move(resp));
  }
}

void PddEngine::serve_new_publication(const net::ItemPayload& item) {
  const PushPlan plan = plan_push(ctx_, net::ContentKind::kItem,
                                  item.descriptor,
                                  item.descriptor.entry_key());
  if (plan.relay_receivers.empty() && plan.local_queries.empty()) return;
  auto resp = std::make_shared<net::Message>();
  resp->type = net::MessageType::kResponse;
  resp->kind = net::ContentKind::kItem;
  resp->response_id = ctx_.new_response_id();
  resp->sender = ctx_.self;
  resp->items = {item};
  if (!plan.local_queries.empty()) {
    causal_deliver(ctx_, plan.trace, plan.parent);
  }
  for (QueryId q : plan.local_queries) ctx_.deliver_local(q, *resp);
  if (!plan.relay_receivers.empty()) {
    resp->receivers = plan.relay_receivers;
    causal_tx(ctx_, *resp, plan.trace, plan.parent);
    ctx_.transport.send(std::move(resp));
  }
}

void PddEngine::handle_response(const net::MessagePtr& response) {
  PDS_PROF_SCOPE(ctx_.sim.profiler(), "pdd");
  PDS_ENSURE(response->is_response() && is_pdd_kind(response->kind));
  const SimTime now = ctx_.now();
  const PdsConfig& cfg = ctx_.config;

  // {RR Lookup} — discard redundant copies (retransmissions, multi-path).
  if (!ctx_.recent_responses.insert(response->response_id.value())) return;

  const bool addressed = response->addressed_to(ctx_.self) &&
                         !response->receivers.empty();

  const std::uint64_t recv_span =
      addressed ? causal_recv(ctx_, response->trace) : 0;
  if (!addressed && cfg.enable_overhearing_cache) {
    causal_overhear(ctx_, response->trace);
  }

  // {DS Lookup} — opportunistic caching, including overheard responses.
  if (addressed || cfg.enable_overhearing_cache) {
    for (const DataDescriptor& d : response->metadata) {
      ctx_.store.insert_metadata(d, /*has_payload=*/false, now,
                                 cfg.metadata_ttl);
    }
    for (const net::ItemPayload& item : response->items) {
      ctx_.store.insert_item(item, now);
    }
  }

  // {Receiver Check} — only intended receivers relay.
  if (!addressed) return;

  // {LQT Lookup} + {Forwarding} with mixedcast and en-route rewriting.
  const std::vector<std::uint64_t> keys = payload_keys(*response);
  const auto& descriptors_of = [&](std::size_t i) -> const DataDescriptor& {
    return response->kind == net::ContentKind::kMetadata
               ? response->metadata[i]
               : response->items[i].descriptor;
  };

  std::vector<NodeId> relay_receivers;
  std::vector<std::size_t> relay_union;
  std::unordered_set<std::size_t> relay_union_set;

  for (LingeringQuery* lq : ctx_.lqt.live_queries(response->kind, now)) {
    if (lq->upstream == response->sender) continue;  // never bounce back
    std::vector<std::size_t> needed;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (wants(*lq, descriptors_of(i), keys[i])) needed.push_back(i);
    }
    if (needed.empty()) continue;

    for (std::size_t i : needed) {
      mark_served(*lq, keys[i], cfg.enable_bloom_rewriting);
    }
    if (!cfg.enable_lingering_queries) lq->consumed = true;

    if (lq->upstream == ctx_.self) {
      // Locally originated query: deliver to the consumer session.
      PDS_TRACE_INSTANT(ctx_.sim.tracer(), now, ctx_.self, "pdd",
                        "deliver_local", {"query", lq->query->query_id.value()},
                        {"entries", needed.size()});
      causal_deliver(ctx_, response->trace, recv_span);
      ctx_.deliver_local(lq->query->query_id,
                         prune_payload(*response, needed));
      continue;
    }
    if (cfg.enable_mixedcast) {
      relay_receivers.push_back(lq->upstream);
      for (std::size_t i : needed) {
        if (relay_union_set.insert(i).second) relay_union.push_back(i);
      }
    } else {
      // Ablation: one response per matching query, fresh id each (no joint
      // payload, no shared redundancy detection across paths).
      auto single = std::make_shared<net::Message>(
          prune_payload(*response, needed));
      single->response_id = ctx_.new_response_id();
      single->sender = ctx_.self;
      single->receivers = {lq->upstream};
      causal_tx(ctx_, *single, response->trace, recv_span, /*hop_delta=*/1);
      ctx_.transport.send(std::move(single));
    }
  }

  if (!relay_receivers.empty()) {
    std::sort(relay_receivers.begin(), relay_receivers.end());
    relay_receivers.erase(
        std::unique(relay_receivers.begin(), relay_receivers.end()),
        relay_receivers.end());
    std::sort(relay_union.begin(), relay_union.end());
    PDS_TRACE_INSTANT(ctx_.sim.tracer(), now, ctx_.self, "pdd", "mixedcast",
                      {"receivers", relay_receivers.size()},
                      {"union", relay_union.size()});
    auto relay =
        std::make_shared<net::Message>(prune_payload(*response, relay_union));
    relay->sender = ctx_.self;
    relay->receivers = std::move(relay_receivers);
    causal_tx(ctx_, *relay, response->trace, recv_span, /*hop_delta=*/1);
    ctx_.transport.send(std::move(relay));
  }
}

void PddEngine::on_peer_unreachable(NodeId peer) {
  const std::size_t purged =
      ctx_.lqt.purge_upstream(peer, net::ContentKind::kMetadata) +
      ctx_.lqt.purge_upstream(peer, net::ContentKind::kItem);
  if (purged == 0) return;
  PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "fault",
                    "pdd_purge", {"upstream", peer}, {"queries", purged});
}

}  // namespace pds::core
