// Consumer-side multi-round discovery controller (paper §III-B.2).
//
// One session discovers metadata entries (PDD proper) or collects small data
// items (§IV's first scenario, which "follows almost the same process as
// metadata discovery"). Each round floods one lingering query and watches the
// stream of returning responses; the round ends when responses diminish —
// the fraction of responses received within the recent window T, out of all
// responses this round, drops to threshold T_r — and a new round starts when
// the round contributed more than fraction T_d of everything received so far
// (redundancy detection: later rounds carry a Bloom filter of everything
// already received, rebuilt each round with a fresh hash family, §V.3).
//
// The paper's Latency metric is the interval from sending the first query to
// the arrival of the last returned (new) entry, which is what `Result::
// latency` reports.
#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/context.h"
#include "net/bloom_delta.h"
#include "util/bloom_filter.h"

namespace pds::core {

class DiscoverySession {
 public:
  struct Result {
    std::size_t distinct_received = 0;
    SimTime latency = SimTime::zero();
    int rounds = 0;
    SimTime finished_at = SimTime::zero();
  };
  using Callback = std::function<void(const Result&)>;

  // Per-round timeline (paper Figs. 5–8 reason about per-round recall
  // growth). A record closes when the diminishing rule ends the round.
  struct RoundRecord {
    int round = 0;
    SimTime start = SimTime::zero();
    SimTime end = SimTime::zero();
    std::size_t new_keys = 0;    // distinct entries first seen this round
    std::size_t cumulative = 0;  // distinct entries held after the round
    std::size_t responses = 0;   // response messages heard this round
  };

  // `kind` must be kMetadata or kItem.
  DiscoverySession(NodeContext& ctx, net::ContentKind kind, Filter filter,
                   Callback done);

  DiscoverySession(const DiscoverySession&) = delete;
  DiscoverySession& operator=(const DiscoverySession&) = delete;

  void start();

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const Result& result() const { return result_; }

  // Distinct entry keys received so far with their arrival times.
  [[nodiscard]] const std::unordered_map<std::uint64_t, SimTime>& arrivals()
      const {
    return arrivals_;
  }
  // Item mode: the received payloads.
  [[nodiscard]] const std::vector<net::ItemPayload>& received_items() const {
    return items_;
  }
  // Metadata mode: the received descriptors.
  [[nodiscard]] const std::vector<DataDescriptor>& received_entries() const {
    return entries_;
  }

  // Closed rounds, in order; the live round is not included.
  [[nodiscard]] const std::vector<RoundRecord>& round_history() const {
    return round_history_;
  }

 private:
  void start_round();
  void close_round();
  void on_local_response(const net::Message& response);
  void schedule_check();
  void check_round();
  void finish();
  void record_key(std::uint64_t key);
  // Starts the next round — immediately, or (adaptive spacing, DESIGN.md
  // §16) after an exponential backoff when the closed round contributed
  // little novelty.
  void schedule_next_round(double novelty);

  NodeContext& ctx_;
  net::ContentKind kind_;
  Filter filter_;
  Callback done_;
  std::uint64_t bloom_seed_base_;

  bool started_ = false;
  bool finished_ = false;
  Result result_;

  SimTime start_time_ = SimTime::zero();
  SimTime last_new_arrival_ = SimTime::zero();
  std::unordered_map<std::uint64_t, SimTime> arrivals_;
  std::vector<DataDescriptor> entries_;
  std::vector<net::ItemPayload> items_;

  // Causal tracing (DESIGN.md §14): trace id = first query id of the
  // session; root/round spans parent the per-round tx spans.
  std::uint64_t trace_id_ = 0;
  std::uint64_t root_span_ = 0;
  std::uint64_t round_span_ = 0;

  int rounds_ = 0;
  int empty_retries_ = 0;
  SimTime round_start_ = SimTime::zero();
  std::size_t round_new_ = 0;
  std::vector<SimTime> round_response_times_;
  std::vector<RoundRecord> round_history_;

  // Delta-Bloom sync state (wire.delta_bloom; DESIGN.md §16). One hash
  // family per epoch: `session_filter_` only gains bits within an epoch.
  // Every round after novelty starts a fresh epoch (new family, exact
  // sizing) shipped as a full frame — relays that served rewrote the
  // forwarded filter into classic form, so downstream caches missed the
  // session's frames and a delta against them would fall back, and the
  // family rotation restores classic's per-round false-positive die-out.
  // Deltas ship only after silent rounds, where verbatim relay kept every
  // cache in step and the frame is a few bytes.
  net::DeltaBloomSender delta_sender_;
  util::BloomFilter session_filter_;
  std::uint32_t epoch_ = 0;
  std::size_t arrivals_at_last_frame_ = 0;
  bool confirmation_round_ = false;
  SimTime spacing_ = SimTime::zero();
};

}  // namespace pds::core
