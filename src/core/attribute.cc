#include "core/attribute.h"

#include "common/assert.h"

namespace pds::core {

namespace {

enum class Tag : std::uint8_t { kInt = 0, kDouble = 1, kString = 2 };

[[nodiscard]] bool is_numeric(const AttrValue& v) {
  return !std::holds_alternative<std::string>(v);
}

[[nodiscard]] double as_double(const AttrValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  return std::get<double>(v);
}

}  // namespace

std::partial_ordering compare_values(const AttrValue& a, const AttrValue& b) {
  if (is_numeric(a) && is_numeric(b)) {
    // Compare exactly when both are integers to avoid double rounding.
    if (std::holds_alternative<std::int64_t>(a) &&
        std::holds_alternative<std::int64_t>(b)) {
      return std::get<std::int64_t>(a) <=> std::get<std::int64_t>(b);
    }
    return std::partial_ordering(as_double(a) <=> as_double(b));
  }
  if (std::holds_alternative<std::string>(a) &&
      std::holds_alternative<std::string>(b)) {
    return std::partial_ordering(std::get<std::string>(a) <=>
                                 std::get<std::string>(b));
  }
  return std::partial_ordering::unordered;
}

void encode_value(ByteWriter& w, const AttrValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    w.put_u8(static_cast<std::uint8_t>(Tag::kInt));
    w.put_i64(*i);
  } else if (const auto* d = std::get_if<double>(&v)) {
    w.put_u8(static_cast<std::uint8_t>(Tag::kDouble));
    w.put_f64(*d);
  } else {
    w.put_u8(static_cast<std::uint8_t>(Tag::kString));
    w.put_string(std::get<std::string>(v));
  }
}

AttrValue decode_value(ByteReader& r) {
  switch (static_cast<Tag>(r.get_u8())) {
    case Tag::kInt:
      return AttrValue(r.get_i64());
    case Tag::kDouble:
      return AttrValue(r.get_f64());
    case Tag::kString:
      return AttrValue(r.get_string());
  }
  throw DecodeError("unknown attribute value tag");
}

void encode_attribute(ByteWriter& w, const Attribute& a) {
  w.put_string(a.name);
  encode_value(w, a.value);
}

Attribute decode_attribute(ByteReader& r) {
  Attribute a;
  a.name = r.get_string();
  a.value = decode_value(r);
  return a;
}

}  // namespace pds::core
