#include "core/pdr.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <unordered_map>

#include "common/assert.h"
#include "core/causal.h"
#include "core/flood.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace pds::core {

namespace {

std::shared_ptr<net::Message> make_response(NodeContext& ctx,
                                            net::ContentKind kind,
                                            const DataDescriptor& target,
                                            NodeId receiver) {
  auto resp = std::make_shared<net::Message>();
  resp->type = net::MessageType::kResponse;
  resp->kind = kind;
  resp->response_id = ctx.new_response_id();
  resp->sender = ctx.self;
  resp->receivers = {receiver};
  resp->target = target;
  return resp;
}

}  // namespace

std::vector<net::CdiEntry> PdrEngine::local_cdi_view(
    ItemId item, const DataDescriptor& item_descriptor) const {
  (void)item_descriptor;
  const SimTime now = ctx_.now();
  // Ordered map: the CDI view goes straight onto the wire, so it is built in
  // chunk order instead of hash order.
  std::map<ChunkIndex, std::uint32_t> best;
  for (ChunkIndex c : ctx_.store.chunks_of(item)) best[c] = 0;
  for (const auto& [chunk, rec] : ctx_.cdi.lookup_item(item, now)) {
    auto it = best.find(chunk);
    if (it == best.end() || rec.hop_count < it->second) {
      best[chunk] = rec.hop_count;
    }
  }
  std::vector<net::CdiEntry> view;
  view.reserve(best.size());
  for (const auto& [chunk, hop] : best) {
    view.push_back(net::CdiEntry{.chunk = chunk, .hop_count = hop});
  }
  return view;
}

void PdrEngine::answer_cdi(LingeringQuery& lq,
                           const std::vector<net::CdiEntry>& view,
                           const net::TraceContext& cause,
                           std::uint64_t cause_span, int hop_delta) {
  std::vector<net::CdiEntry> fresh;
  for (const net::CdiEntry& e : view) {
    auto it = lq.relayed_cdi_hops.find(e.chunk);
    if (it != lq.relayed_cdi_hops.end() && it->second <= e.hop_count) {
      continue;  // already told this upstream something at least as good
    }
    fresh.push_back(e);
  }
  if (fresh.empty()) return;
  for (const net::CdiEntry& e : fresh) {
    lq.relayed_cdi_hops[e.chunk] = e.hop_count;
  }

  auto resp = make_response(ctx_, net::ContentKind::kCdi, *lq.query->target,
                            lq.upstream);
  resp->cdi = std::move(fresh);
  if (lq.upstream == ctx_.self) {
    causal_deliver(ctx_, cause,
                   cause_span != 0 ? cause_span : cause.parent_span);
    ctx_.deliver_local(lq.query->query_id, *resp);
    return;
  }
  causal_tx(ctx_, *resp, cause, cause_span, hop_delta);
  ctx_.transport.send(std::move(resp));
}

void PdrEngine::handle_cdi_query(const net::MessagePtr& query) {
  PDS_PROF_SCOPE(ctx_.sim.profiler(), "pdr");
  PDS_ENSURE(query->is_query() && query->kind == net::ContentKind::kCdi);
  PDS_ENSURE(query->target.has_value());
  const SimTime now = ctx_.now();
  if (query->expire_at <= now) return;
  if (ctx_.lqt.contains(query->query_id)) {
    note_duplicate_flood_copy(ctx_, query->query_id);
    return;
  }
  LingeringQuery& lq = ctx_.lqt.insert(query, now);
  lq.recv_span = causal_recv(ctx_, query->trace);

  const ItemId item = query->target->item_id();
  answer_cdi(lq, local_cdi_view(item, *query->target), lq.trace,
             lq.recv_span);

  if (!query->addressed_to(ctx_.self)) return;
  if (query->ttl == 1) return;  // hop budget exhausted
  auto fwd = std::make_shared<net::Message>(*query);
  fwd->sender = ctx_.self;
  fwd->receivers.clear();
  if (fwd->ttl > 0) --fwd->ttl;
  causal_tx(ctx_, *fwd, query->trace, lq.recv_span, /*hop_delta=*/1);
  maybe_forward_flood(ctx_, query->query_id, std::move(fwd));
}

void PdrEngine::handle_cdi_response(const net::MessagePtr& response) {
  PDS_PROF_SCOPE(ctx_.sim.profiler(), "pdr");
  PDS_ENSURE(response->is_response() &&
             response->kind == net::ContentKind::kCdi);
  PDS_ENSURE(response->target.has_value());
  const SimTime now = ctx_.now();
  if (!ctx_.recent_responses.insert(response->response_id.value())) return;

  const bool addressed = !response->receivers.empty() &&
                         response->addressed_to(ctx_.self);
  const ItemId item = response->target->item_id();

  const std::uint64_t recv_span =
      addressed ? causal_recv(ctx_, response->trace) : 0;
  if (!addressed && ctx_.config.enable_overhearing_cache) {
    causal_overhear(ctx_, response->trace);
  }

  // Learn distance-vector state: each pair is HopCount from the transmitting
  // neighbor, so it is HopCount+1 from here via that neighbor (§IV-A).
  if (addressed || ctx_.config.enable_overhearing_cache) {
    for (const net::CdiEntry& e : response->cdi) {
      ctx_.cdi.update(item, e.chunk, e.hop_count + 1, response->sender, now,
                      ctx_.config.cdi_ttl);
    }
  }

  if (!addressed) return;

  // Relay improvements toward upstreams of matching lingering CDI queries,
  // with pairs rebuilt relative to this node. Relays carry fresh response ids
  // because their content (hop counts) differs per path; duplicate
  // suppression is done by the per-query relayed_cdi_hops bookkeeping
  // instead of the recent-responses check.
  const std::vector<net::CdiEntry> view = local_cdi_view(item, *response->target);
  for (LingeringQuery* lq : ctx_.lqt.live_queries(net::ContentKind::kCdi, now)) {
    if (lq->upstream == response->sender) continue;
    if (lq->query->target->item_id() != item) continue;
    answer_cdi(*lq, view, response->trace, recv_span, /*hop_delta=*/1);
  }
}

bool PdrEngine::claim_chunk_delivery(ItemId item, ChunkIndex chunk,
                                     NodeId receiver) {
  const SimTime now = ctx_.now();
  const auto key = std::make_tuple(item, chunk, receiver);
  if (const auto it = delivered_.find(key);
      it != delivered_.end() &&
      now - it->second < ctx_.config.chunk_serve_cooldown) {
    return false;
  }
  delivered_[key] = now;
  return true;
}

void PdrEngine::note_chunk_delivery(ItemId item, ChunkIndex chunk,
                                    NodeId receiver) {
  delivered_[std::make_tuple(item, chunk, receiver)] = ctx_.now();
}

std::vector<ChunkIndex> PdrEngine::serve_chunks(
    LingeringQuery& lq, const DataDescriptor& item_descriptor,
    const std::vector<ChunkIndex>& wanted) {
  const ItemId item = item_descriptor.item_id();
  std::vector<ChunkIndex> satisfied;
  for (ChunkIndex c : wanted) {
    if (lq.served_chunks.contains(c)) {
      satisfied.push_back(c);
      continue;
    }
    const std::optional<net::ChunkPayload> payload = ctx_.store.chunk(item, c);
    if (!payload.has_value()) continue;
    // Suppression: a copy of this chunk went toward this upstream moments
    // ago — our own earlier serve, or another holder's overheard one. Treat
    // as satisfied without transmitting again.
    if (lq.upstream != ctx_.self &&
        !claim_chunk_delivery(item, c, lq.upstream)) {
      satisfied.push_back(c);
      continue;
    }
    lq.served_chunks.insert(c);
    satisfied.push_back(c);

    auto resp = make_response(ctx_, net::ContentKind::kChunk, item_descriptor,
                              lq.upstream);
    resp->chunk = *payload;
    if (lq.upstream == ctx_.self) {
      causal_deliver(ctx_, lq.trace,
                     lq.recv_span != 0 ? lq.recv_span : lq.trace.parent_span);
      ctx_.deliver_local(lq.query->query_id, *resp);
    } else {
      causal_tx(ctx_, *resp, lq.trace, lq.recv_span);
      ctx_.transport.send(std::move(resp));
    }
  }
  return satisfied;
}

ChunkPlan plan_chunk_requests(const NodeContext& ctx, ItemId item,
                              const std::vector<ChunkIndex>& chunks,
                              NodeId exclude) {
  const SimTime now = ctx.now();
  ChunkPlan plan;

  std::vector<NodeId> neighbors;
  std::unordered_map<NodeId, std::size_t> neighbor_index;
  util::GapInstance inst;
  std::vector<ChunkIndex> routable;

  for (ChunkIndex c : chunks) {
    const CdiRecord* rec = ctx.cdi.lookup(item, c, now);
    if (rec == nullptr || rec->neighbors.empty()) {
      plan.unroutable.push_back(c);
      continue;
    }
    std::vector<std::size_t> eligible;
    std::vector<int> hops;
    for (NodeId n : rec->neighbors) {
      if (n == exclude) continue;  // split horizon
      auto [it, inserted] = neighbor_index.emplace(n, neighbors.size());
      if (inserted) neighbors.push_back(n);
      eligible.push_back(it->second);
      hops.push_back(static_cast<int>(rec->hop_count));
    }
    if (eligible.empty()) {
      plan.unroutable.push_back(c);
      continue;
    }
    inst.eligible.push_back(std::move(eligible));
    inst.hop.push_back(std::move(hops));
    routable.push_back(c);
  }
  if (routable.empty()) return plan;
  inst.neighbor_count = neighbors.size();

  const util::GapAssignment assignment =
      ctx.config.enable_gap_balancing ? util::solve_min_max_heuristic(inst)
                                      : util::solve_naive(inst);

  // Buckets preserve the caller's chunk order; every call site passes an
  // ascending missing-chunk list, so per-neighbor request lists stay
  // ascending — which is what lets the wire codec's chunk-bitmap extension
  // (WireConfig::chunk_bitmap) engage instead of falling back to the
  // classic per-chunk list.
  std::vector<std::vector<ChunkIndex>> buckets(neighbors.size());
  for (std::size_t i = 0; i < routable.size(); ++i) {
    buckets[assignment.assignment[i]].push_back(routable[i]);
  }
  for (std::size_t n = 0; n < neighbors.size(); ++n) {
    if (!buckets[n].empty()) {
      plan.by_neighbor.emplace_back(neighbors[n], std::move(buckets[n]));
    }
  }
  return plan;
}

void PdrEngine::handle_chunk_query(const net::MessagePtr& query) {
  PDS_PROF_SCOPE(ctx_.sim.profiler(), "pdr");
  PDS_ENSURE(query->is_query() && query->kind == net::ContentKind::kChunk);
  PDS_ENSURE(query->target.has_value());
  const SimTime now = ctx_.now();
  if (query->expire_at <= now) return;
  if (ctx_.lqt.contains(query->query_id)) return;

  // Overhearers of a *directed* chunk query do not linger it: a chunk must
  // flow back through exactly the node it was requested from, or copies
  // would be relayed toward the requester along several paths at chunk-size
  // cost each.
  const bool addressed = query->addressed_to(ctx_.self);
  if (!addressed) return;

  LingeringQuery& lq = ctx_.lqt.insert(query, now);
  lq.recv_span = causal_recv(ctx_, query->trace);
  const DataDescriptor& item_descriptor = *query->target;
  const ItemId item = item_descriptor.item_id();

  if (query->receivers.empty()) {
    // MDR flood. Forward immediately with the requested list rewritten to
    // exclude the chunks held here (en-route redundancy detection), but
    // defer the serving itself by a random jitter: holders on overlapping
    // branches desynchronize, and whoever hears a copy in flight suppresses
    // its own (chunks this node intends to serve may still be suppressed;
    // the consumer's next round recovers such gaps).
    std::vector<ChunkIndex> held;
    std::vector<ChunkIndex> remaining;
    for (ChunkIndex c : query->requested_chunks) {
      (ctx_.store.has_chunk(item, c) ? held : remaining).push_back(c);
    }
    if (!held.empty()) {
      const QueryId id = query->query_id;
      const double spread = std::sqrt(static_cast<double>(held.size()));
      for (ChunkIndex c : held) {
        const SimTime jitter =
            ctx_.config.mdr_serve_jitter * (spread * ctx_.rng.uniform());
        ctx_.sim.schedule(jitter, [this, id, item_descriptor, c, item] {
          LingeringQuery* pending = ctx_.lqt.find(id);
          if (pending == nullptr || pending->expired(ctx_.now())) return;
          const auto seen = seen_in_flight_.find({item, c});
          if (seen != seen_in_flight_.end() &&
              ctx_.now() - seen->second < ctx_.config.mdr_suppression_window) {
            return;  // someone else's copy is in flight; don't duplicate
          }
          serve_chunks(*pending, item_descriptor, {c});
        });
      }
    }
    if (remaining.empty() || query->ttl == 1) return;
    auto fwd = std::make_shared<net::Message>(*query);
    fwd->sender = ctx_.self;
    if (fwd->ttl > 0) --fwd->ttl;
    fwd->requested_chunks = std::move(remaining);
    causal_tx(ctx_, *fwd, query->trace, lq.recv_span, /*hop_delta=*/1);
    ctx_.transport.send(std::move(fwd));
    return;
  }

  const std::vector<ChunkIndex> satisfied =
      serve_chunks(lq, item_descriptor, query->requested_chunks);

  std::vector<ChunkIndex> remaining;
  for (ChunkIndex c : query->requested_chunks) {
    if (std::find(satisfied.begin(), satisfied.end(), c) == satisfied.end()) {
      remaining.push_back(c);
    }
  }
  if (remaining.empty()) return;

  // PDR recursive division: split the remaining chunks among the neighbors
  // that hold (or lead to) their nearest copies. The hop budget stops
  // loops through stale CDI state, and split horizon keeps a division from
  // pointing straight back at the node that sent the query.
  if (query->ttl == 1) return;  // budget exhausted
  const ChunkPlan plan =
      plan_chunk_requests(ctx_, item, remaining, query->sender);
  for (const auto& [neighbor, chunk_list] : plan.by_neighbor) {
    auto sub = std::make_shared<net::Message>();
    sub->type = net::MessageType::kQuery;
    sub->kind = net::ContentKind::kChunk;
    sub->query_id = ctx_.new_query_id();
    sub->sender = ctx_.self;
    sub->receivers = {neighbor};
    sub->expire_at = query->expire_at;
    sub->ttl = query->ttl > 0 ? static_cast<std::uint8_t>(query->ttl - 1)
                              : ctx_.config.chunk_query_ttl;
    sub->target = item_descriptor;
    sub->requested_chunks = chunk_list;
    causal_tx(ctx_, *sub, query->trace, lq.recv_span, /*hop_delta=*/1);
    ctx_.transport.send(std::move(sub));
  }
  // plan.unroutable chunks are dropped here; the consumer's stall timer
  // re-plans them (possibly after refreshing CDI).
}

void PdrEngine::handle_chunk_response(const net::MessagePtr& response) {
  PDS_PROF_SCOPE(ctx_.sim.profiler(), "pdr");
  PDS_ENSURE(response->is_response() &&
             response->kind == net::ContentKind::kChunk);
  PDS_ENSURE(response->target.has_value());
  const SimTime now = ctx_.now();
  if (!ctx_.recent_responses.insert(response->response_id.value())) return;
  if (!response->chunk.has_value()) return;

  const bool addressed = !response->receivers.empty() &&
                         response->addressed_to(ctx_.self);
  const DataDescriptor& item_descriptor = *response->target;
  const ItemId item = item_descriptor.item_id();
  const ChunkIndex chunk = response->chunk->index;

  const std::uint64_t recv_span =
      addressed ? causal_recv(ctx_, response->trace) : 0;
  if (!addressed && ctx_.config.enable_overhearing_cache) {
    causal_overhear(ctx_, response->trace);
  }

  // Any reception — intended or overheard — proves a copy of this chunk was
  // just delivered to these receivers; serving or relaying another copy to
  // them within the cooldown would be redundant, and flooded serves of the
  // chunk anywhere nearby are suppressed while it is in flight.
  for (NodeId r : response->receivers) note_chunk_delivery(item, chunk, r);
  seen_in_flight_[{item, chunk}] = now;

  // Opportunistic caching of the chunk itself (§II-A: nodes cache others'
  // data, both relayed and overheard).
  if (addressed || ctx_.config.enable_overhearing_cache) {
    ctx_.store.insert_chunk(item_descriptor, chunk, *response->chunk, now);
  }

  if (!addressed) return;

  std::vector<NodeId> relay_receivers;
  for (LingeringQuery* lq :
       ctx_.lqt.live_queries(net::ContentKind::kChunk, now)) {
    if (lq->upstream == response->sender) continue;
    if (lq->query->target->item_id() != item) continue;
    const auto& wanted = lq->query->requested_chunks;
    if (std::find(wanted.begin(), wanted.end(), chunk) == wanted.end()) {
      continue;
    }
    if (lq->served_chunks.contains(chunk)) continue;
    lq->served_chunks.insert(chunk);
    if (lq->upstream == ctx_.self) {
      causal_deliver(ctx_, response->trace, recv_span);
      ctx_.deliver_local(lq->query->query_id, *response);
      continue;
    }
    // A consumer's successive request rounds leave several lingering
    // queries with different upstream neighbors at this relay; forwarding
    // the chunk along each would fork one passing copy into several. The
    // shared delivery map keeps each direction to one copy per window.
    if (!claim_chunk_delivery(item, chunk, lq->upstream)) continue;
    relay_receivers.push_back(lq->upstream);
  }

  if (!relay_receivers.empty()) {
    std::sort(relay_receivers.begin(), relay_receivers.end());
    relay_receivers.erase(
        std::unique(relay_receivers.begin(), relay_receivers.end()),
        relay_receivers.end());
    // Same response id: identical chunk copies arriving at a junction via
    // different paths are redundant and the RR check drops them.
    auto relay = std::make_shared<net::Message>(*response);
    relay->sender = ctx_.self;
    relay->receivers = std::move(relay_receivers);
    causal_tx(ctx_, *relay, response->trace, recv_span, /*hop_delta=*/1);
    ctx_.transport.send(std::move(relay));
  }
}

void PdrEngine::on_peer_unreachable(NodeId peer) {
  const std::size_t cdi_records = ctx_.cdi.invalidate_neighbor(peer);
  const std::size_t purged =
      ctx_.lqt.purge_upstream(peer, net::ContentKind::kCdi) +
      ctx_.lqt.purge_upstream(peer, net::ContentKind::kChunk);
  if (cdi_records == 0 && purged == 0) return;
  PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "fault",
                    "pdr_purge", {"upstream", peer}, {"queries", purged},
                    {"cdi", cdi_records});
}

}  // namespace pds::core
