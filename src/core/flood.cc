#include "core/flood.h"

#include <memory>
#include <utility>

#include "core/causal.h"
#include "obs/trace.h"

namespace pds::core {

void note_duplicate_flood_copy(NodeContext& ctx, QueryId query_id) {
  if (LingeringQuery* lq = ctx.lqt.find(query_id)) {
    ++lq->duplicate_copies_heard;
  }
}

void maybe_forward_flood(NodeContext& ctx, QueryId query_id,
                         std::shared_ptr<net::Message> fwd) {
  const PdsConfig& cfg = ctx.config;

  if (cfg.flood_forward_probability < 1.0 &&
      !ctx.rng.bernoulli(cfg.flood_forward_probability)) {
    // Probabilistic scheme: this node sits the flood out.
    PDS_TRACE_INSTANT(ctx.sim.tracer(), ctx.now(), ctx.self, "flood",
                      "suppress", {"query", query_id.value()},
                      {"reason", "probability"});
    causal_suppress(ctx, fwd->trace, "probability");
    return;
  }

  if (cfg.flood_assessment_delay <= SimTime::zero()) {
    PDS_TRACE_INSTANT(ctx.sim.tracer(), ctx.now(), ctx.self, "flood",
                      "forward", {"query", query_id.value()}, {"copies", 0});
    ctx.transport.send(std::move(fwd));
    return;
  }

  // Counter-based scheme: wait a random fraction of the assessment delay,
  // then forward only if few duplicate copies were overheard meanwhile.
  const SimTime delay = cfg.flood_assessment_delay * ctx.rng.uniform();
  ctx.sim.schedule(delay, [&ctx, query_id, fwd = std::move(fwd)] {
    LingeringQuery* lq = ctx.lqt.find(query_id);
    if (lq == nullptr || lq->expired(ctx.now())) return;
    if (lq->duplicate_copies_heard >= ctx.config.flood_copy_threshold) {
      // Neighbors already covered by other copies.
      PDS_TRACE_INSTANT(ctx.sim.tracer(), ctx.now(), ctx.self, "flood",
                        "suppress", {"query", query_id.value()},
                        {"reason", "copies"},
                        {"copies", lq->duplicate_copies_heard});
      causal_suppress(ctx, fwd->trace, "copies");
      return;
    }
    PDS_TRACE_INSTANT(ctx.sim.tracer(), ctx.now(), ctx.self, "flood",
                      "forward", {"query", query_id.value()},
                      {"copies", lq->duplicate_copies_heard});
    ctx.transport.send(fwd);
  });
}

}  // namespace pds::core
