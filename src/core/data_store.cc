#include "core/data_store.h"

#include "common/assert.h"

namespace pds::core {

bool DataStore::insert_metadata(const DataDescriptor& d, bool has_payload,
                                SimTime now, SimTime ttl) {
  const std::uint64_t key = d.entry_key();
  auto it = metadata_.find(key);
  if (it == metadata_.end()) {
    MetaRecord rec;
    rec.descriptor = d;
    rec.has_payload = has_payload;
    rec.expire_at = has_payload ? SimTime::max() : now + ttl;
    if (!has_payload) rec.cached_at = now;
    metadata_.emplace(key, std::move(rec));
    return true;
  }
  MetaRecord& rec = it->second;
  const bool was_expired = rec.expired(now);
  if (has_payload) {
    rec.has_payload = true;
    rec.expire_at = SimTime::max();
  } else if (!rec.has_payload) {
    rec.expire_at = std::max(rec.expire_at, now + ttl);
    rec.cached_at = now;
  }
  return was_expired;
}

bool DataStore::has_metadata(std::uint64_t entry_key, SimTime now) const {
  auto it = metadata_.find(entry_key);
  return it != metadata_.end() && !it->second.expired(now);
}

std::vector<DataDescriptor> DataStore::match_metadata(const Filter& f,
                                                      SimTime now) const {
  std::vector<DataDescriptor> out;
  for (const auto& [key, rec] : metadata_) {
    if (rec.expired(now)) continue;
    if (f.matches(rec.descriptor)) out.push_back(rec.descriptor);
  }
  return out;
}

std::vector<DataStore::MetaMatch> DataStore::match_metadata_records(
    const Filter& f, SimTime now) const {
  std::vector<MetaMatch> out;
  for (const auto& [key, rec] : metadata_) {
    if (rec.expired(now)) continue;
    if (f.matches(rec.descriptor)) {
      out.push_back({rec.descriptor, rec.has_payload, rec.cached_at});
    }
  }
  return out;
}

std::size_t DataStore::metadata_count(SimTime now) const {
  std::size_t n = 0;
  for (const auto& [key, rec] : metadata_) {
    if (!rec.expired(now)) ++n;
  }
  return n;
}

void DataStore::set_chunk_cache_limit(std::size_t bytes,
                                      ChunkEvictionPolicy policy,
                                      SimTime metadata_ttl) {
  chunk_cache_limit_ = bytes;
  chunk_policy_ = policy;
  eviction_metadata_ttl_ = metadata_ttl;
}

void DataStore::insert_chunk(const DataDescriptor& item_descriptor,
                             ChunkIndex index, net::ChunkPayload payload,
                             SimTime now, bool pinned) {
  PDS_ENSURE(payload.index == index);
  const ItemId item = item_descriptor.item_id();
  auto it = chunks_.find({item, index});
  if (it != chunks_.end()) {
    // Re-insertion refreshes recency and may pin a previously cached copy.
    ChunkRecord& rec = it->second;
    if (pinned && !rec.pinned) {
      PDS_ENSURE(cached_chunk_bytes_ >= rec.payload.size_bytes);
      cached_chunk_bytes_ -= rec.payload.size_bytes;
      rec.pinned = true;
    }
    rec.last_access = ++access_clock_;
    return;
  }
  ChunkRecord rec;
  rec.payload = payload;
  rec.item_descriptor = item_descriptor;
  rec.pinned = pinned;
  rec.last_access = ++access_clock_;
  rec.accesses = 1;  // insertion counts, or LFU would evict every newcomer
  if (!pinned) cached_chunk_bytes_ += payload.size_bytes;
  chunks_.emplace(std::make_pair(item, index), std::move(rec));
  insert_metadata(item_descriptor.chunk_descriptor(index),
                  /*has_payload=*/true, now, SimTime::zero());
  evict_cached_chunks_if_needed(now);
}

void DataStore::evict_cached_chunks_if_needed(SimTime now) {
  if (chunk_cache_limit_ == 0) return;
  while (cached_chunk_bytes_ > chunk_cache_limit_) {
    auto victim = chunks_.end();
    for (auto it = chunks_.begin(); it != chunks_.end(); ++it) {
      if (it->second.pinned) continue;
      if (victim == chunks_.end()) {
        victim = it;
        continue;
      }
      const ChunkRecord& a = it->second;
      const ChunkRecord& b = victim->second;
      const bool worse = chunk_policy_ == ChunkEvictionPolicy::kLru
                             ? a.last_access < b.last_access
                             : (a.accesses < b.accesses ||
                                (a.accesses == b.accesses &&
                                 a.last_access < b.last_access));
      if (worse) victim = it;
    }
    if (victim == chunks_.end()) return;  // nothing evictable
    // The chunk is gone; its metadata entry may only linger with an
    // expiration now (paper §II-C).
    const std::uint64_t key = victim->second.item_descriptor
                                  .chunk_descriptor(victim->first.second)
                                  .entry_key();
    if (auto meta = metadata_.find(key); meta != metadata_.end()) {
      meta->second.has_payload = false;
      meta->second.expire_at = now + eviction_metadata_ttl_;
    }
    PDS_ENSURE(cached_chunk_bytes_ >= victim->second.payload.size_bytes);
    cached_chunk_bytes_ -= victim->second.payload.size_bytes;
    chunks_.erase(victim);
  }
}

bool DataStore::has_chunk(ItemId item, ChunkIndex index) const {
  return chunks_.contains({item, index});
}

std::optional<net::ChunkPayload> DataStore::chunk(ItemId item,
                                                  ChunkIndex index) {
  auto it = chunks_.find({item, index});
  if (it == chunks_.end()) return std::nullopt;
  it->second.last_access = ++access_clock_;
  ++it->second.accesses;
  return it->second.payload;
}

std::vector<ChunkIndex> DataStore::chunks_of(ItemId item) const {
  std::vector<ChunkIndex> out;
  for (auto it = chunks_.lower_bound({item, 0});
       it != chunks_.end() && it->first.first == item; ++it) {
    out.push_back(it->first.second);
  }
  return out;
}

std::size_t DataStore::chunk_count() const { return chunks_.size(); }

void DataStore::insert_item(const net::ItemPayload& item, SimTime now) {
  items_[item.descriptor.entry_key()] = item;
  insert_metadata(item.descriptor, /*has_payload=*/true, now,
                  SimTime::zero());
}

bool DataStore::has_item(std::uint64_t entry_key) const {
  return items_.contains(entry_key);
}

std::vector<net::ItemPayload> DataStore::match_items(const Filter& f,
                                                     SimTime now) const {
  (void)now;
  std::vector<net::ItemPayload> out;
  for (const auto& [key, item] : items_) {
    if (f.matches(item.descriptor)) out.push_back(item);
  }
  return out;
}

std::size_t DataStore::item_count() const { return items_.size(); }

void DataStore::sweep(SimTime now) {
  for (auto it = metadata_.begin(); it != metadata_.end();) {
    it = it->second.expired(now) ? metadata_.erase(it) : std::next(it);
  }
}

}  // namespace pds::core
