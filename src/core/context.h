// Shared per-node context handed to protocol engines and consumer sessions.
//
// PdsNode owns all the state (stores, tables, transport) and wires this
// context together; engines and sessions hold a reference and never own
// anything, which keeps the dependency graph acyclic: engines depend only on
// this header, the node depends on the engines.
#pragma once

#include <functional>

#include "common/rng.h"
#include "common/types.h"
#include "core/cdi_table.h"
#include "core/config.h"
#include "core/data_store.h"
#include "core/lingering_query_table.h"
#include "net/bloom_delta.h"
#include "net/message.h"
#include "net/transport.h"
#include "sim/simulator.h"
#include "util/dedup_cache.h"

namespace pds::core {

// Invoked when a response reaches a locally originated query; the message's
// payload has already been pruned to what this query still needs.
using LocalResponseHandler = std::function<void(const net::Message&)>;

struct NodeContext {
  NodeId self;
  sim::Simulator& sim;
  net::Transport& transport;
  const PdsConfig& config;
  DataStore& store;
  LingeringQueryTable& lqt;
  util::DedupCache<std::uint64_t>& recent_responses;
  CdiTable& cdi;
  // Bloom-sync reconstruction cache (DESIGN.md §16): per-session state for
  // rebuilding consumers' exclude filters from delta frames. Consulted by
  // PddEngine whenever a query carries Message::exclude_delta — regardless
  // of this node's own wire config, so legacy-configured nodes still
  // understand delta-aware consumers.
  net::BloomSyncCache& bloom_sync;
  Rng& rng;

  // Registers a locally originated query: inserts it into the LQT (with this
  // node as upstream) and remembers the handler for responses that arrive
  // for it. Provided by PdsNode.
  std::function<void(const net::MessagePtr&, LocalResponseHandler)>
      register_local_query;

  // Routes a response that reached a locally originated query to its
  // session. Provided by PdsNode.
  std::function<void(QueryId, const net::Message&)> deliver_local;

  // Per-node causal span sequence (DESIGN.md §14). Span ids pack the node id
  // and a local counter, so they are unique across the whole simulation
  // without coordination and identical across reruns: the counter advances
  // only at deterministic protocol events, never from wall-clock or RNG
  // state, and it ticks whether or not a tracer is attached.
  std::uint64_t causal_seq = 0;

  [[nodiscard]] std::uint64_t new_span() {
    return (static_cast<std::uint64_t>(self.value()) + 1) << 40 | ++causal_seq;
  }

  [[nodiscard]] QueryId new_query_id() { return QueryId(rng.next_u64()); }
  [[nodiscard]] ResponseId new_response_id() {
    return ResponseId(rng.next_u64());
  }
  [[nodiscard]] SimTime now() const { return sim.now(); }
};

}  // namespace pds::core
