// All PDS protocol knobs in one place.
//
// Defaults are the paper's best-performing parameters: leaky bucket 300 KB /
// 4.5 Mb/s, RetrTimeout 0.2 s, MaxRetrTime 4 (§V.4); discovery window T = 1 s
// with T_r = T_d = 0 (§VI-B.2); 256 KB chunks and 30-byte metadata entries
// (§VI-A). The feature toggles at the bottom exist for the ablations listed
// in DESIGN.md §5.
#pragma once

#include <cstddef>

#include "common/sim_time.h"
#include "core/data_store.h"
#include "net/codec.h"
#include "net/transport.h"

namespace pds::core {

struct PdsConfig {
  net::TransportConfig transport;
  net::WireConfig wire;

  // -- Lingering queries and caches ---------------------------------------
  // How long a lingering query stays in the LQT, directing the continuous
  // stream of returning responses (§III-A.1). Must comfortably exceed one
  // discovery round.
  SimTime query_lifetime = SimTime::seconds(15.0);
  // Expiration added to metadata entries cached without payload (§II-C).
  SimTime metadata_ttl = SimTime::minutes(10.0);
  // Expiration of CDI entries for chunks not held locally (§IV-A).
  SimTime cdi_ttl = SimTime::seconds(30.0);
  // Recent-response dedup window (ids remembered per node).
  std::size_t recent_response_capacity = 4096;
  // Serve-time suppression for off-the-air metadata copies (DESIGN.md §16):
  // when a node installs a query, it skips entries whose only copy was
  // cached from a relayed/overheard response this recently — that copy is
  // still in flight toward the consumer, and re-serving it from every cache
  // along the path multiplies response traffic (single-frame compressed
  // responses make overhear-caching much more effective, which is exactly
  // when the echo shows up). Publisher copies are never suppressed, so a
  // lost in-flight copy is recovered by the next round. Purely local
  // policy — no wire impact, nodes may enable it unilaterally. Zero keeps
  // the paper's serve-everything rule.
  SimTime entry_serve_cooldown = SimTime::zero();

  // -- Multi-round discovery (§III-B.2, §VI-B.2) ---------------------------
  // Recent time window T for the diminishing-responses rule.
  SimTime window = SimTime::seconds(1.0);
  // Round ends when responses-in-window / responses-this-round <= T_r.
  double threshold_tr = 0.0;
  // New round starts when new-entries-this-round / all-entries > T_d.
  double threshold_td = 0.0;
  int max_rounds = 12;
  // Re-issue the first query while nothing at all has been received (a fully
  // lost flooded query would otherwise terminate discovery with recall 0,
  // which a real consumer would never accept).
  int empty_round_retries = 3;
  // Bloom filter sizing for redundancy detection (§V.3). Delta-Bloom mode
  // (wire.delta_bloom; DESIGN.md §16) sizes each epoch's filter exactly for
  // the arrivals at hand — any growth starts a fresh epoch anyway, so
  // headroom would only inflate the full snapshot floods.
  double bloom_fpp = 0.01;

  // -- Adaptive round spacing (DESIGN.md §16) -------------------------------
  // When enabled, every re-flood waits at least the base spacing so
  // in-flight responses land and the next filter excludes them, instead of
  // a back-to-back re-flood that re-collects stragglers; a round that
  // contributed little novelty (new/total below the threshold) backs off
  // exponentially up to the max. Off by default: round timing is
  // byte-identical to the paper's schedule.
  bool adaptive_round_spacing = false;
  SimTime adaptive_spacing_base = SimTime::millis(250);
  SimTime adaptive_spacing_max = SimTime::seconds(2.0);
  double adaptive_novelty_threshold = 0.05;

  // -- Payload shaping ------------------------------------------------------
  // Metadata entries per response message; ~45 × 30 B entries keeps response
  // frames near the prototype's 1.5 KB packets.
  std::size_t max_entries_per_response = 45;
  // Byte budget for small-item response payloads.
  std::size_t max_item_payload_bytes = 1400;

  // -- Retrieval (§IV) ------------------------------------------------------
  std::size_t chunk_size_bytes = 256 * 1024;
  // Diminishing window for the CDI collection phase; CDI responses are tiny
  // and return fast, so this is shorter than the discovery window.
  SimTime cdi_window = SimTime::millis(600);
  int max_cdi_rounds = 4;
  // A PDR consumer re-plans retrieval of still-missing chunks when no new
  // chunk has arrived for this long. Chunks stream store-and-forward per
  // hop, so this comfortably exceeds a few chunk transfer times.
  SimTime retrieval_stall_timeout = SimTime::seconds(6.0);
  int max_retrieval_rounds = 20;
  // Hop budget on recursive chunk queries; stale CDI entries can otherwise
  // bounce a query between neighbors indefinitely (each division mints a
  // fresh query id, so LQT duplicate detection cannot catch the loop).
  std::uint8_t chunk_query_ttl = 10;
  // Bounded opportunistic chunk cache (§VII future work): bytes of
  // overheard/relayed chunks a node keeps. Locally published chunks are
  // never evicted. 0 = unlimited, the paper's default behaviour.
  std::size_t chunk_cache_bytes = 0;
  ChunkEvictionPolicy chunk_eviction_policy = ChunkEvictionPolicy::kLru;

  // Duplicate suppression window for chunk traffic: a node that sent — or
  // overheard anyone send — a copy of a chunk toward some receiver treats
  // further requests to send that chunk to that receiver as satisfied while
  // the window lasts (the first copy is still in flight). Copies launched
  // from branches out of overhearing range still duplicate — the
  // linear-in-redundancy cost the paper reports for MDR.
  SimTime chunk_serve_cooldown = SimTime::seconds(3.0);
  // MDR floods reach every holder of every requested chunk at once; holders
  // delay each flooded chunk serve by a random jitter (scaled by the square
  // root of the batch size) so the earliest copy can suppress the rest, and
  // skip a serve entirely while any copy of the chunk was seen in flight
  // within the suppression window. Copies on branches out of overhearing
  // range still duplicate — MDR's linear-in-redundancy cost.
  SimTime mdr_serve_jitter = SimTime::seconds(1.0);
  SimTime mdr_suppression_window = SimTime::seconds(4.0);

  // -- Subscriptions (§IV future work) --------------------------------------
  // A subscription re-floods its (same-id) lingering query this often so
  // losses heal and late joiners learn it.
  SimTime subscription_refresh = SimTime::seconds(5.0);

  // -- Flood control (§VII; broadcast-storm countermeasures) ----------------
  // Probability that a node re-broadcasts a flooded query (1.0 = classic
  // flooding; the paper's default).
  double flood_forward_probability = 1.0;
  // Counter-based suppression: defer re-broadcast by a random delay up to
  // this bound and cancel it if `flood_copy_threshold` duplicate copies of
  // the query are overheard meanwhile. Zero disables the scheme.
  SimTime flood_assessment_delay = SimTime::zero();
  int flood_copy_threshold = 3;

  // -- Feature toggles (ablations; DESIGN.md §5) ---------------------------
  bool enable_mixedcast = true;
  bool enable_bloom_rewriting = true;
  bool enable_overhearing_cache = true;
  // When false, a lingering query is consumed by the first response it
  // relays (NDN-style one-shot Interests).
  bool enable_lingering_queries = true;
  // When false, phase-2 chunk assignment uses naive nearest-neighbor
  // assignment instead of the min–max GAP heuristic.
  bool enable_gap_balancing = true;
  // Treat transport retransmission-budget exhaustion as a peer-failure
  // signal: invalidate CDI routes through the silent peer, purge lingering
  // queries it originated, and re-dispatch in-flight retrievals
  // (DESIGN.md §11). When false, recovery falls back to TTL expiry and the
  // stall timer alone.
  bool enable_peer_failure_detection = true;
};

}  // namespace pds::core
