// Chunk Distribution Information table (paper §IV-A).
//
// Distance-vector routing state per (item, chunk): the least hop count at
// which a copy of the chunk is reachable and the neighbor(s) through which
// that least-hop copy can be retrieved. When a chunk is reachable at the same
// least hop count via several neighbors, an entry is kept for each (the GAP
// assigner exploits the choice). Entries for chunks not held locally expire
// so obsolete information does not stay forever.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"

namespace pds::core {

struct CdiRecord {
  std::uint32_t hop_count = 0;
  std::vector<NodeId> neighbors;  // all giving the least hop count
  SimTime expire_at;

  [[nodiscard]] bool expired(SimTime now) const { return expire_at <= now; }
};

class CdiTable {
 public:
  // Learns that `chunk` of `item` is reachable via `neighbor` at `hop_count`.
  // Replaces the record when strictly closer, extends the neighbor set when
  // equal, and is ignored when farther than the current record. Returns true
  // when the record improved (new chunk, smaller hop, or new neighbor).
  bool update(ItemId item, ChunkIndex chunk, std::uint32_t hop_count,
              NodeId neighbor, SimTime now, SimTime ttl);

  [[nodiscard]] const CdiRecord* lookup(ItemId item, ChunkIndex chunk,
                                        SimTime now) const;
  // All unexpired records for an item.
  [[nodiscard]] std::vector<std::pair<ChunkIndex, CdiRecord>> lookup_item(
      ItemId item, SimTime now) const;

  void sweep(SimTime now);
  [[nodiscard]] std::size_t size() const { return table_.size(); }

 private:
  std::map<std::pair<ItemId, ChunkIndex>, CdiRecord> table_;
};

}  // namespace pds::core
