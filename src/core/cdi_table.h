// Chunk Distribution Information table (paper §IV-A).
//
// Distance-vector routing state per (item, chunk): the least hop count at
// which a copy of the chunk is reachable and the neighbor(s) through which
// that least-hop copy can be retrieved. When a chunk is reachable at the same
// least hop count via several neighbors, an entry is kept for each (the GAP
// assigner exploits the choice). Entries for chunks not held locally expire
// so obsolete information does not stay forever.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"

namespace pds::core {

struct CdiRecord {
  std::uint32_t hop_count = 0;
  std::vector<NodeId> neighbors;  // all giving the least hop count
  SimTime expire_at;

  [[nodiscard]] bool expired(SimTime now) const { return expire_at <= now; }
};

class CdiTable {
 public:
  // Learns that `chunk` of `item` is reachable via `neighbor` at `hop_count`.
  // Replaces the record when strictly closer, extends the neighbor set when
  // equal, and is ignored when farther than the current record. Returns true
  // when the record improved (new chunk, smaller hop, or new neighbor).
  bool update(ItemId item, ChunkIndex chunk, std::uint32_t hop_count,
              NodeId neighbor, SimTime now, SimTime ttl);

  [[nodiscard]] const CdiRecord* lookup(ItemId item, ChunkIndex chunk,
                                        SimTime now) const;
  // All unexpired records for an item.
  [[nodiscard]] std::vector<std::pair<ChunkIndex, CdiRecord>> lookup_item(
      ItemId item, SimTime now) const;

  void sweep(SimTime now);
  [[nodiscard]] std::size_t size() const { return table_.size(); }

  // Staleness invalidation on peer failure (DESIGN.md §11): removes
  // `neighbor` from every record's next-hop set and drops records left with
  // no next hop at all. Returns the number of records touched. Without this
  // a crashed provider keeps attracting directed chunk queries until its
  // records' TTL runs out.
  std::size_t invalidate_neighbor(NodeId neighbor);

  // Unexpired records whose next-hop set still contains `neighbor`
  // (fault-invariant checks: never route to a node known crashed).
  [[nodiscard]] std::size_t routes_via(NodeId neighbor, SimTime now) const;

  // Crash-with-wipe fault semantics.
  void clear() { table_.clear(); }

 private:
  std::map<std::pair<ItemId, ChunkIndex>, CdiRecord> table_;
};

}  // namespace pds::core
