#include "core/node.h"

#include "common/assert.h"
#include "common/sim_clock.h"
#include "obs/trace.h"

namespace pds::core {

PdsNode::PdsNode(sim::Simulator& sim, sim::RadioMedium& medium, NodeId id,
                 const PdsConfig& config, sim::Vec2 position, bool enabled)
    : sim_(sim),
      id_(id),
      config_(config),
      rng_(sim.rng().fork()),
      recent_responses_(config.recent_response_capacity),
      face_(medium, id, position, enabled),
      transport_(sim, face_, id, config.transport, net::Codec(config.wire)),
      ctx_{.self = id,
           .sim = sim,
           .transport = transport_,
           .config = config_,
           .store = store_,
           .lqt = lqt_,
           .recent_responses = recent_responses_,
           .cdi = cdi_,
           .bloom_sync = bloom_sync_,
           .rng = rng_,
           .register_local_query = {},
           .deliver_local = {}},
      pdd_(ctx_),
      pdr_(ctx_) {
  ctx_.register_local_query = [this](const net::MessagePtr& query,
                                     LocalResponseHandler handler) {
    PDS_ENSURE(query->sender == id_);
    // upstream == self: local delivery
    LingeringQuery& lq = lqt_.insert(query, sim_.now());
    if (query->exclude_delta.has_value()) {
      // Reconstruct the session's exclude filter locally too, so the
      // consumer's own LQT entry suppresses relayed duplicates exactly like
      // a classic full-filter query would.
      lq.exclude = bloom_sync_.apply(*query->exclude_delta);
    }
    local_handlers_[query->query_id] = std::move(handler);
  };
  ctx_.deliver_local = [this](QueryId query, const net::Message& response) {
    auto it = local_handlers_.find(query);
    if (it != local_handlers_.end()) it->second(response);
  };
  if (config_.chunk_cache_bytes > 0) {
    store_.set_chunk_cache_limit(config_.chunk_cache_bytes,
                                 config_.chunk_eviction_policy,
                                 config_.metadata_ttl);
  }
  transport_.set_handler(
      [this](const net::MessagePtr& msg) { on_message(msg); });
  if (config_.enable_peer_failure_detection) {
    transport_.set_unreachable_callback(
        [this](NodeId peer) { on_peer_unreachable(peer); });
  }
}

void PdsNode::crash(bool wipe_state) {
  if (crashed_) return;
  crashed_ = true;
  transport_.reset();
  if (wipe_state) {
    store_.clear();
    cdi_.clear();
    lqt_.clear();
    recent_responses_.clear();
    bloom_sync_.clear();
    local_handlers_.clear();
  }
}

void PdsNode::restart() { crashed_ = false; }

void PdsNode::publish_metadata(const DataDescriptor& descriptor) {
  store_.insert_metadata(descriptor, /*has_payload=*/true, sim_.now(),
                         SimTime::zero());
  pdd_.serve_new_publication(descriptor);
}

void PdsNode::publish_item(const net::ItemPayload& item) {
  store_.insert_item(item, sim_.now());
  pdd_.serve_new_publication(item);
}

void PdsNode::publish_chunk(const DataDescriptor& item_descriptor,
                            const net::ChunkPayload& chunk) {
  PDS_ENSURE(!item_descriptor.is_chunk());
  store_.insert_chunk(item_descriptor, chunk.index, chunk, sim_.now(),
                      /*pinned=*/true);
  // The item-level metadata entry is discoverable as long as any chunk is
  // held (paper §II-C).
  store_.insert_metadata(item_descriptor, /*has_payload=*/true, sim_.now(),
                         SimTime::zero());
}

DiscoverySession& PdsNode::discover(Filter filter,
                                    DiscoverySession::Callback done) {
  discovery_sessions_.push_back(std::make_unique<DiscoverySession>(
      ctx_, net::ContentKind::kMetadata, std::move(filter), std::move(done)));
  discovery_sessions_.back()->start();
  return *discovery_sessions_.back();
}

DiscoverySession& PdsNode::collect_items(Filter filter,
                                         DiscoverySession::Callback done) {
  discovery_sessions_.push_back(std::make_unique<DiscoverySession>(
      ctx_, net::ContentKind::kItem, std::move(filter), std::move(done)));
  discovery_sessions_.back()->start();
  return *discovery_sessions_.back();
}

PdrSession& PdsNode::retrieve(const DataDescriptor& item_descriptor,
                              PdrSession::Callback done) {
  pdr_sessions_.push_back(
      std::make_unique<PdrSession>(ctx_, item_descriptor, std::move(done)));
  pdr_sessions_.back()->start();
  return *pdr_sessions_.back();
}

MdrSession& PdsNode::retrieve_mdr(const DataDescriptor& item_descriptor,
                                  MdrSession::Callback done) {
  mdr_sessions_.push_back(
      std::make_unique<MdrSession>(ctx_, item_descriptor, std::move(done)));
  mdr_sessions_.back()->start();
  return *mdr_sessions_.back();
}

SubscriptionSession& PdsNode::subscribe(
    Filter filter, SimTime duration,
    SubscriptionSession::EntryCallback on_entry) {
  subscriptions_.push_back(std::make_unique<SubscriptionSession>(
      ctx_, net::ContentKind::kMetadata, std::move(filter), duration,
      std::move(on_entry)));
  subscriptions_.back()->start();
  return *subscriptions_.back();
}

SubscriptionSession& PdsNode::subscribe_items(
    Filter filter, SimTime duration,
    SubscriptionSession::EntryCallback on_entry) {
  subscriptions_.push_back(std::make_unique<SubscriptionSession>(
      ctx_, net::ContentKind::kItem, std::move(filter), duration,
      std::move(on_entry)));
  subscriptions_.back()->start();
  return *subscriptions_.back();
}

void PdsNode::on_message(const net::MessagePtr& msg) {
  PDS_ENSURE(!msg->is_ack());
  // Crash semantics: the medium is normally detached too, but a message can
  // race the crash event through the transport's delivery queue.
  if (crashed_) return;
  // Attribute any PDS_LOG line emitted while handling to this node.
  const ScopedLogNode log_node(id_);
  ++messages_handled_;
  maybe_sweep();
  switch (msg->kind) {
    case net::ContentKind::kMetadata:
    case net::ContentKind::kItem:
      if (msg->is_query()) {
        pdd_.handle_query(msg);
      } else {
        pdd_.handle_response(msg);
      }
      break;
    case net::ContentKind::kCdi:
      if (msg->is_query()) {
        pdr_.handle_cdi_query(msg);
      } else {
        pdr_.handle_cdi_response(msg);
      }
      break;
    case net::ContentKind::kChunk:
      if (msg->is_query()) {
        pdr_.handle_chunk_query(msg);
      } else {
        pdr_.handle_chunk_response(msg);
      }
      break;
  }
}

void PdsNode::on_peer_unreachable(NodeId peer) {
  if (crashed_) return;
  PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), id_, "fault",
                    "peer_unreachable", {"peer", peer});
  pdd_.on_peer_unreachable(peer);
  pdr_.on_peer_unreachable(peer);
  for (auto& session : pdr_sessions_) {
    if (!session->finished()) session->on_peer_unreachable(peer);
  }
}

void PdsNode::maybe_sweep() {
  // Amortized housekeeping: expired lingering queries, cached-only metadata
  // and CDI entries are dropped every few hundred handled messages, so a
  // node's tables track the paper's expiration rules without a dedicated
  // recurring event (which would keep the event queue from draining).
  if (messages_handled_ % 512 != 0) return;
  const SimTime now = sim_.now();
  if (const std::size_t expired = lqt_.sweep(now); expired > 0) {
    PDS_TRACE_INSTANT(sim_.tracer(), now, id_, "lq", "expired",
                      {"count", expired});
  }
  store_.sweep(now);
  cdi_.sweep(now);
  // Local response handlers live exactly as long as their lingering query;
  // long-running nodes (subscriptions refresh every few seconds) would
  // otherwise accumulate dead handlers.
  // Pure filter: which handlers survive depends only on lqt_ membership,
  // never on visit order, and nothing is emitted. pdslint:allow(unordered-iter)
  for (auto it = local_handlers_.begin(); it != local_handlers_.end();) {
    it = lqt_.contains(it->first) ? std::next(it) : local_handlers_.erase(it);
  }
}

}  // namespace pds::core
