#include "core/retrieval.h"

#include <algorithm>
#include <memory>

#include "common/assert.h"
#include "common/logging.h"
#include "core/causal.h"
#include "core/pdr.h"
#include "obs/trace.h"

namespace pds::core {

PdrSession::PdrSession(NodeContext& ctx, DataDescriptor item_descriptor,
                       Callback done)
    : ctx_(ctx),
      item_descriptor_(std::move(item_descriptor)),
      item_(item_descriptor_.item_id()),
      done_(std::move(done)) {
  const auto total = item_descriptor_.total_chunks();
  PDS_ENSURE(total.has_value() && *total > 0);
  total_chunks_ = static_cast<std::size_t>(*total);
}

std::vector<ChunkIndex> PdrSession::missing_chunks() const {
  std::vector<ChunkIndex> out;
  for (ChunkIndex c = 0; c < total_chunks_; ++c) {
    if (!chunks_.contains(c)) out.push_back(c);
  }
  return out;
}

void PdrSession::start() {
  PDS_ENSURE(phase_ == Phase::kIdle);
  start_time_ = ctx_.now();
  last_new_chunk_ = start_time_;

  // Chunks already cached locally (overheard during earlier retrievals)
  // count immediately.
  for (ChunkIndex c : ctx_.store.chunks_of(item_)) {
    if (const auto payload = ctx_.store.chunk(item_, c)) {
      chunks_[c] = *payload;
      arrivals_[c] = ctx_.now();
    }
  }
  if (chunks_.size() >= total_chunks_) {
    phase_ = Phase::kCdi;  // finish() requires a non-idle phase transition
    finish(true);
    return;
  }
  phase_ = Phase::kCdi;
  send_cdi_query();
  ctx_.sim.schedule(ctx_.config.cdi_window * 0.5, [this] { check_cdi(); });
}

void PdrSession::send_cdi_query() {
  ++cdi_rounds_;
  last_cdi_activity_ = ctx_.now();
  PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "pdr",
                    "cdi_round", {"round", cdi_rounds_});

  auto query = std::make_shared<net::Message>();
  query->type = net::MessageType::kQuery;
  query->kind = net::ContentKind::kCdi;
  query->query_id = ctx_.new_query_id();
  query->sender = ctx_.self;
  query->expire_at = ctx_.now() + ctx_.config.query_lifetime;
  query->target = item_descriptor_;

  // Causal spans (DESIGN.md §14): the session's trace id is its first CDI
  // query id; each CDI round hangs off the root span.
  if (trace_id_ == 0) {
    trace_id_ = query->query_id.value();
    root_span_ = ctx_.new_span();
    PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "causal",
                      "root", {"trace", trace_id_}, {"span", root_span_},
                      {"kind", "pdr"});
  }
  const std::uint64_t round_span = ctx_.new_span();
  PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "causal",
                    "round", {"trace", trace_id_}, {"span", round_span},
                    {"parent", root_span_}, {"round", cdi_rounds_});
  const std::uint64_t tx_span = ctx_.new_span();
  PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "causal", "tx",
                    {"trace", trace_id_}, {"span", tx_span},
                    {"parent", round_span}, {"hop", 0});
  query->trace = {trace_id_, tx_span, ctx_.self.value(), 0};

  ctx_.register_local_query(
      query, [this](const net::Message& r) { on_local_response(r); });
  ctx_.transport.send(query);
}

bool PdrSession::cdi_covers_missing() const {
  for (ChunkIndex c : missing_chunks()) {
    if (ctx_.cdi.lookup(item_, c, ctx_.now()) == nullptr) return false;
  }
  return true;
}

void PdrSession::check_cdi() {
  if (phase_ != Phase::kCdi) return;
  if (cdi_covers_missing()) {
    begin_fetch();
    return;
  }
  if (ctx_.now() - last_cdi_activity_ >= ctx_.config.cdi_window) {
    // CDI collection went silent without full coverage.
    if (cdi_rounds_ < ctx_.config.max_cdi_rounds) {
      send_cdi_query();
    } else if (ctx_.cdi.lookup_item(item_, ctx_.now()).empty() &&
               chunks_.empty()) {
      finish(false);  // nothing reachable at all
      return;
    } else {
      begin_fetch();  // proceed with partial coverage
      return;
    }
  }
  ctx_.sim.schedule(ctx_.config.cdi_window * 0.5, [this] { check_cdi(); });
}

void PdrSession::begin_fetch() {
  PDS_ENSURE(phase_ == Phase::kCdi);
  PDS_LOG_DEBUG("pdr", "node " << ctx_.self << " CDI phase done after "
                               << cdi_rounds_ << " round(s); fetching "
                               << missing_chunks().size() << " chunks");
  PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "pdr",
                    "cdi_done", {"rounds", cdi_rounds_},
                    {"missing", missing_chunks().size()});
  phase_ = Phase::kFetch;
  last_progress_ = ctx_.now();
  issue_requests();
  ctx_.sim.schedule(ctx_.config.retrieval_stall_timeout * 0.5,
                    [this] { check_stall(); });
}

void PdrSession::sync_from_store() {
  for (ChunkIndex c : ctx_.store.chunks_of(item_)) {
    if (chunks_.contains(c)) continue;
    const auto payload = ctx_.store.chunk(item_, c);
    if (!payload.has_value()) continue;
    chunks_[c] = *payload;
    arrivals_[c] = ctx_.now();
    last_new_chunk_ = ctx_.now();
    last_progress_ = ctx_.now();
  }
  if (phase_ != Phase::kDone && chunks_.size() >= total_chunks_) finish(true);
}

void PdrSession::issue_requests() {
  ++request_rounds_;
  sync_from_store();
  if (phase_ == Phase::kDone) return;
  const std::vector<ChunkIndex> missing = missing_chunks();
  if (missing.empty()) {
    finish(true);
    return;
  }
  const ChunkPlan plan = plan_chunk_requests(ctx_, item_, missing);
  if (!plan.unroutable.empty()) {
    PDS_LOG_DEBUG("pdr", "node " << ctx_.self << ": " << plan.unroutable.size()
                                 << " chunk(s) unroutable; refreshing CDI");
  }
  PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "pdr", "plan",
                    {"missing", missing.size()},
                    {"neighbors", plan.by_neighbor.size()},
                    {"unroutable", plan.unroutable.size()});
  // Fetch rounds get their own causal round span under the session root;
  // every directed chunk query of the round is a tx child of it.
  std::uint64_t round_span = 0;
  if (trace_id_ != 0 && !plan.by_neighbor.empty()) {
    round_span = ctx_.new_span();
    PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "causal",
                      "round", {"trace", trace_id_}, {"span", round_span},
                      {"parent", root_span_}, {"round", request_rounds_});
  }
  for (const auto& [neighbor, chunk_list] : plan.by_neighbor) {
    PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "pdr",
                      "assign", {"neighbor", neighbor},
                      {"chunks", chunk_list.size()});
    auto query = std::make_shared<net::Message>();
    query->type = net::MessageType::kQuery;
    query->kind = net::ContentKind::kChunk;
    query->query_id = ctx_.new_query_id();
    query->sender = ctx_.self;
    query->receivers = {neighbor};
    // Bounded by the stall timeout: a re-plan should find the previous
    // generation gone from relays, not fork chunks down both paths.
    query->expire_at = ctx_.now() + 2.0 * ctx_.config.retrieval_stall_timeout;
    query->ttl = ctx_.config.chunk_query_ttl;
    query->target = item_descriptor_;
    query->requested_chunks = chunk_list;
    if (trace_id_ != 0) {
      const std::uint64_t tx_span = ctx_.new_span();
      PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "causal",
                        "tx", {"trace", trace_id_}, {"span", tx_span},
                        {"parent", round_span}, {"hop", 0});
      query->trace = {trace_id_, tx_span, ctx_.self.value(), 0};
    }
    ctx_.register_local_query(
        query, [this](const net::Message& r) { on_local_response(r); });
    ctx_.transport.send(std::move(query));
  }
  if (!plan.unroutable.empty() && cdi_rounds_ < ctx_.config.max_cdi_rounds) {
    send_cdi_query();  // refresh routing state for the unroutable chunks
  }
  if (plan.by_neighbor.empty() &&
      cdi_rounds_ >= ctx_.config.max_cdi_rounds) {
    finish(false);  // no way to route any request and no CDI budget left
  }
}

void PdrSession::on_peer_unreachable(NodeId peer) {
  if (phase_ != Phase::kFetch) return;
  if (request_rounds_ >= ctx_.config.max_retrieval_rounds) return;
  // A crash makes every in-flight message toward the peer give up in quick
  // succession; one re-plan covers them all.
  const SimTime cooldown = ctx_.config.retrieval_stall_timeout * 0.25;
  if (ctx_.now() - last_redispatch_ < cooldown &&
      last_redispatch_ != SimTime::zero()) {
    return;
  }
  last_redispatch_ = ctx_.now();
  PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "fault",
                    "redispatch", {"peer", peer},
                    {"missing", missing_chunks().size()});
  last_progress_ = ctx_.now();
  issue_requests();
}

void PdrSession::check_stall() {
  if (phase_ != Phase::kFetch) return;
  sync_from_store();
  if (phase_ != Phase::kFetch) return;
  if (ctx_.now() - last_progress_ >= ctx_.config.retrieval_stall_timeout) {
    if (request_rounds_ >= ctx_.config.max_retrieval_rounds) {
      finish(chunks_.size() >= total_chunks_);
      return;
    }
    last_progress_ = ctx_.now();
    issue_requests();
    if (phase_ != Phase::kFetch) return;  // issue_requests may finish()
  }
  ctx_.sim.schedule(ctx_.config.retrieval_stall_timeout * 0.5,
                    [this] { check_stall(); });
}

void PdrSession::on_local_response(const net::Message& response) {
  if (phase_ == Phase::kDone) return;
  if (response.kind == net::ContentKind::kCdi) {
    last_cdi_activity_ = ctx_.now();
    return;
  }
  if (response.kind != net::ContentKind::kChunk || !response.chunk) return;
  const ChunkIndex c = response.chunk->index;
  if (chunks_.emplace(c, *response.chunk).second) {
    arrivals_[c] = ctx_.now();
    last_new_chunk_ = ctx_.now();
    last_progress_ = ctx_.now();
    PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "pdr",
                      "chunk_arrival", {"chunk", c},
                      {"have", chunks_.size()}, {"total", total_chunks_});
    if (chunks_.size() >= total_chunks_ && phase_ != Phase::kDone) {
      finish(true);
    }
  }
}

void PdrSession::finish(bool complete) {
  PDS_ENSURE(phase_ != Phase::kDone && phase_ != Phase::kIdle);
  PDS_LOG_DEBUG("pdr", "node " << ctx_.self << " retrieval "
                               << (complete ? "complete" : "INCOMPLETE")
                               << ": " << chunks_.size() << "/"
                               << total_chunks_ << " chunks");
  PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "pdr",
                    "session_done",
                    {"complete", static_cast<std::int64_t>(complete)},
                    {"chunks", chunks_.size()}, {"total", total_chunks_});
  phase_ = Phase::kDone;
  result_.complete = complete;
  result_.chunks_received = chunks_.size();
  result_.total_chunks = total_chunks_;
  result_.latency =
      chunks_.empty() ? SimTime::zero() : last_new_chunk_ - start_time_;
  result_.cdi_rounds = cdi_rounds_;
  result_.request_rounds = request_rounds_;
  result_.finished_at = ctx_.now();
  if (done_) done_(result_);
}

}  // namespace pds::core
