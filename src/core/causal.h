// Causal span helpers (DESIGN.md §14).
//
// Every protocol seam that moves a traced message calls one of these: they
// allocate a span id from the per-node sequence, emit the matching "causal"
// trace event, and (for tx) stamp the outgoing message's TraceContext so the
// next hop can link its recv span back. Span allocation ticks whether or not
// a tracer is attached — NodeContext::new_span advances on protocol events
// only — so attaching a tracer never perturbs ids, timing, or wire bytes.
//
// Untraced messages (trace_id 0, e.g. unit-test singles) pass through as
// no-ops: no span is allocated and nothing is emitted, which keeps the
// behavior a pure function of protocol state, identical across reruns.
#pragma once

#include <cstdint>

#include "core/context.h"
#include "obs/trace.h"

namespace pds::core {

// A traced message cleared dedup at this node: allocate its recv span and
// link it under the sender's tx span. Returns 0 for untraced messages.
inline std::uint64_t causal_recv(NodeContext& ctx,
                                 const net::TraceContext& t) {
  if (!t.valid()) return 0;
  const std::uint64_t span = ctx.new_span();
  PDS_TRACE_INSTANT(ctx.sim.tracer(), ctx.now(), ctx.self, "causal", "recv",
                    {"trace", t.trace_id}, {"span", span},
                    {"parent", t.parent_span}, {"hop", t.hop});
  return span;
}

// Stamps an outgoing message with a fresh tx span parented on `parent` (the
// recv/round span on this node that caused the send) and the trace identity
// inherited from `src`. `hop_delta` is +1 for forwards/relays that move the
// content one hop further from where `src` put it.
inline void causal_tx(NodeContext& ctx, net::Message& m,
                      const net::TraceContext& src, std::uint64_t parent,
                      int hop_delta = 0) {
  if (!src.valid()) return;
  const std::uint64_t span = ctx.new_span();
  const auto hop = static_cast<std::uint8_t>(src.hop + hop_delta);
  PDS_TRACE_INSTANT(ctx.sim.tracer(), ctx.now(), ctx.self, "causal", "tx",
                    {"trace", src.trace_id}, {"span", span},
                    {"parent", parent}, {"hop", hop});
  m.trace = {src.trace_id, span, src.origin, hop};
}

// A traced response reached the consumer session (or a locally registered
// query); `parent` is the recv span that carried it here — or, for purely
// local serves, the tx span of the consumer's own query.
inline void causal_deliver(NodeContext& ctx, const net::TraceContext& t,
                           std::uint64_t parent) {
  if (!t.valid()) return;
  const std::uint64_t span = ctx.new_span();
  PDS_TRACE_INSTANT(ctx.sim.tracer(), ctx.now(), ctx.self, "causal",
                    "deliver", {"trace", t.trace_id}, {"span", span},
                    {"parent", parent});
}

// A stamped traced forward was dropped by flood suppression. `t` is the
// *outgoing* message's context, so t.parent_span is the tx span allocated
// when it was stamped — the analyzer sees a tx with a suppress child and no
// xmit children, i.e. a duplicate-suppressed frame that never hit the air.
inline void causal_suppress(NodeContext& ctx, const net::TraceContext& t,
                            const char* reason) {
  if (!t.valid()) return;
  const std::uint64_t span = ctx.new_span();
  PDS_TRACE_INSTANT(ctx.sim.tracer(), ctx.now(), ctx.self, "causal",
                    "suppress", {"trace", t.trace_id}, {"span", span},
                    {"parent", t.parent_span}, {"reason", reason});
}

// A traced response not addressed to this node was cached opportunistically
// (the overhearing cache, §V.3) — attribution for "free" cache fills.
inline void causal_overhear(NodeContext& ctx, const net::TraceContext& t) {
  if (!t.valid()) return;
  const std::uint64_t span = ctx.new_span();
  PDS_TRACE_INSTANT(ctx.sim.tracer(), ctx.now(), ctx.self, "causal",
                    "overhear", {"trace", t.trace_id}, {"span", span},
                    {"parent", t.parent_span});
}

}  // namespace pds::core
