// Per-node Data Store (paper §II-C).
//
// Holds three kinds of state:
//  * metadata entries — descriptors indicating potential data availability.
//    An entry cached without its payload carries an expiration and is removed
//    once it expires without the payload arriving, keeping metadata and data
//    roughly synchronized network-wide;
//  * data chunks — pieces of large items (payload represented by size +
//    content hash in simulation);
//  * small data items — complete descriptor+payload units.
//
// Inserting a chunk or item refreshes the corresponding metadata entry to
// payload-backed (no expiration), per the rule that a metadata entry exists
// as long as any part of the data item does.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "core/descriptor.h"
#include "core/predicate.h"
#include "net/message.h"

namespace pds::core {

// Eviction policy for the bounded opportunistic chunk cache (§VII: caching
// strategies based on popularity and resource availability).
enum class ChunkEvictionPolicy {
  kLru,  // evict the least recently inserted/accessed cached chunk
  // Evict the least frequently accessed (popularity-based). Note that a
  // just-inserted chunk has one access, so LFU denies admission to
  // newcomers while the cache is full of chunks that have actually been
  // served — the cache keeps what is popular, per §VII.
  kLfu,
};

class DataStore {
 public:
  // -- Metadata --------------------------------------------------------------
  // Inserts (or refreshes) a metadata entry. `has_payload` entries never
  // expire; cached-only entries expire at now + ttl. Returns true when the
  // entry was not present before.
  bool insert_metadata(const DataDescriptor& d, bool has_payload, SimTime now,
                       SimTime ttl);
  [[nodiscard]] bool has_metadata(std::uint64_t entry_key, SimTime now) const;
  // All unexpired entries matching the filter.
  [[nodiscard]] std::vector<DataDescriptor> match_metadata(const Filter& f,
                                                           SimTime now) const;
  // Matching entries with their caching provenance: whether this node holds
  // the payload (publisher/retriever copy) and, for cached-only copies, when
  // the copy last arrived off the air. Serve-time suppression
  // (`entry_serve_cooldown`, DESIGN.md §16) needs both.
  struct MetaMatch {
    DataDescriptor descriptor;
    bool has_payload = false;
    SimTime cached_at = SimTime::zero();
  };
  [[nodiscard]] std::vector<MetaMatch> match_metadata_records(
      const Filter& f, SimTime now) const;
  [[nodiscard]] std::size_t metadata_count(SimTime now) const;

  // -- Chunks ------------------------------------------------------------
  // Limits the bytes of *cached* (unpinned) chunks; locally published
  // chunks are pinned and never evicted. Evicted chunks demote their
  // metadata entry to cached-only with `metadata_ttl` so it can expire
  // (paper §II-C: a metadata entry exists as long as the data does).
  // 0 = unlimited (the default; the paper caches everything it overhears).
  void set_chunk_cache_limit(std::size_t bytes, ChunkEvictionPolicy policy,
                             SimTime metadata_ttl);

  // `item_descriptor` must be the chunk's parent item descriptor. Also
  // records the chunk's metadata entry as payload-backed. `pinned` chunks
  // (locally published) are exempt from cache eviction.
  void insert_chunk(const DataDescriptor& item_descriptor, ChunkIndex index,
                    net::ChunkPayload payload, SimTime now,
                    bool pinned = false);
  [[nodiscard]] bool has_chunk(ItemId item, ChunkIndex index) const;
  // Counts as an access for eviction purposes (LRU recency / LFU
  // popularity).
  [[nodiscard]] std::optional<net::ChunkPayload> chunk(ItemId item,
                                                       ChunkIndex index);
  [[nodiscard]] std::vector<ChunkIndex> chunks_of(ItemId item) const;
  [[nodiscard]] std::size_t chunk_count() const;
  [[nodiscard]] std::size_t cached_chunk_bytes() const {
    return cached_chunk_bytes_;
  }

  // -- Small items -----------------------------------------------------------
  void insert_item(const net::ItemPayload& item, SimTime now);
  [[nodiscard]] bool has_item(std::uint64_t entry_key) const;
  [[nodiscard]] std::vector<net::ItemPayload> match_items(const Filter& f,
                                                          SimTime now) const;
  [[nodiscard]] std::size_t item_count() const;

  // Drops expired cached-only metadata entries.
  void sweep(SimTime now);

  // Crash-with-wipe fault semantics: the process's entire store is gone.
  // Cache limits and eviction policy survive (they are configuration).
  void clear() {
    metadata_.clear();
    chunks_.clear();
    items_.clear();
    cached_chunk_bytes_ = 0;
  }

 private:
  struct MetaRecord {
    DataDescriptor descriptor;
    bool has_payload = false;
    SimTime expire_at = SimTime::max();
    // Last time a cached-only copy of this entry arrived off the air
    // (relayed or overheard response). Meaningless once payload-backed.
    SimTime cached_at = SimTime::zero();

    [[nodiscard]] bool expired(SimTime now) const {
      return !has_payload && expire_at <= now;
    }
  };

  struct ChunkRecord {
    net::ChunkPayload payload;
    DataDescriptor item_descriptor;
    bool pinned = false;
    std::uint64_t last_access = 0;  // logical clock (recency)
    std::uint64_t accesses = 0;     // popularity
  };

  void evict_cached_chunks_if_needed(SimTime now);

  std::unordered_map<std::uint64_t, MetaRecord> metadata_;
  std::map<std::pair<ItemId, ChunkIndex>, ChunkRecord> chunks_;
  std::unordered_map<std::uint64_t, net::ItemPayload> items_;

  std::size_t chunk_cache_limit_ = 0;  // 0 = unlimited
  ChunkEvictionPolicy chunk_policy_ = ChunkEvictionPolicy::kLru;
  SimTime eviction_metadata_ttl_ = SimTime::minutes(10.0);
  std::size_t cached_chunk_bytes_ = 0;  // unpinned bytes held
  std::uint64_t access_clock_ = 0;
};

}  // namespace pds::core
