#include "core/mdr.h"

#include <algorithm>
#include <memory>

#include "common/assert.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace pds::core {

MdrSession::MdrSession(NodeContext& ctx, DataDescriptor item_descriptor,
                       Callback done)
    : ctx_(ctx),
      item_descriptor_(std::move(item_descriptor)),
      item_(item_descriptor_.item_id()),
      done_(std::move(done)) {
  const auto total = item_descriptor_.total_chunks();
  PDS_ENSURE(total.has_value() && *total > 0);
  total_chunks_ = static_cast<std::size_t>(*total);
}

// The discovery window T is calibrated for 30-byte metadata entries; a
// 256 KB chunk takes ~0.46 s just to pace through the leaky bucket per hop,
// so chunk rounds judge "diminishing" on a window scaled to the chunk
// transfer time, and never end before a couple of multi-hop transfers could
// possibly complete.
SimTime MdrSession::round_window() const {
  const SimTime chunk_tx = transmission_time(
      ctx_.config.chunk_size_bytes, ctx_.config.transport.leak_rate_bps);
  // Patience scales with remaining work: while dozens of chunks are still
  // streaming store-and-forward across a contended medium, multi-second
  // arrival gaps are normal, and a premature round floods duplicate
  // requests for everything already in flight.
  const double missing = static_cast<double>(missing_chunks().size());
  return std::max(ctx_.config.window,
                  std::max(4.0, missing / 4.0) * chunk_tx);
}

SimTime MdrSession::min_round_duration() const {
  // A round must live long enough for the requested volume to stream
  // through the network at the paced rate (store-and-forward per hop, with
  // contention); ending rounds early just floods duplicate requests into an
  // already saturated medium. Rounds that made no progress back off
  // exponentially: the missing chunks are usually still crawling through a
  // backlogged region, and hammering them helps nobody.
  const SimTime chunk_tx = transmission_time(
      ctx_.config.chunk_size_bytes, ctx_.config.transport.leak_rate_bps);
  const auto requested = static_cast<double>(missing_chunks().size());
  const SimTime base =
      std::max(2.0 * round_window(), requested * chunk_tx);
  return base * static_cast<double>(1 << std::min(no_progress_rounds_, 3));
}

std::vector<ChunkIndex> MdrSession::missing_chunks() const {
  std::vector<ChunkIndex> out;
  for (ChunkIndex c = 0; c < total_chunks_; ++c) {
    if (!chunks_.contains(c)) out.push_back(c);
  }
  return out;
}

void MdrSession::start() {
  PDS_ENSURE(!started_);
  started_ = true;
  start_time_ = ctx_.now();
  last_new_chunk_ = start_time_;

  for (ChunkIndex c : ctx_.store.chunks_of(item_)) {
    if (const auto payload = ctx_.store.chunk(item_, c)) chunks_[c] = *payload;
  }
  if (chunks_.size() >= total_chunks_) {
    finish(true);
    return;
  }
  start_round();
}

void MdrSession::sync_from_store() {
  for (ChunkIndex c : ctx_.store.chunks_of(item_)) {
    if (chunks_.contains(c)) continue;
    const auto payload = ctx_.store.chunk(item_, c);
    if (!payload.has_value()) continue;
    chunks_[c] = *payload;
    last_new_chunk_ = ctx_.now();
    ++round_new_;
    // Counts as round activity: a chunk that arrived outside the session's
    // lingering query is still progress, and starting a fresh round while
    // data is flowing only floods duplicate requests.
    round_response_times_.push_back(ctx_.now());
  }
  if (!finished_ && chunks_.size() >= total_chunks_) finish(true);
}

void MdrSession::start_round() {
  ++rounds_;
  PDS_LOG_DEBUG("mdr", "node " << ctx_.self << " MDR round " << rounds_
                               << " requesting " << missing_chunks().size()
                               << " chunks");
  PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "mdr", "round",
                    {"round", rounds_}, {"missing", missing_chunks().size()});
  round_start_ = ctx_.now();
  round_new_ = 0;
  round_response_times_.clear();

  // Each round floods a query for every chunk not yet received (§VI-B.3).
  auto query = std::make_shared<net::Message>();
  query->type = net::MessageType::kQuery;
  query->kind = net::ContentKind::kChunk;
  query->query_id = ctx_.new_query_id();
  query->sender = ctx_.self;
  // A round's query must not outlive the round by much: stale generations
  // lingering at relays fork every passing chunk into extra reverse paths.
  query->expire_at =
      ctx_.now() + min_round_duration() + 4.0 * round_window();
  query->target = item_descriptor_;
  query->requested_chunks = missing_chunks();

  // Causal spans (DESIGN.md §14): the session's trace id is its first
  // flooded query id; each round's flood is a tx child of a round span.
  if (trace_id_ == 0) {
    trace_id_ = query->query_id.value();
    root_span_ = ctx_.new_span();
    PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "causal",
                      "root", {"trace", trace_id_}, {"span", root_span_},
                      {"kind", "mdr"});
  }
  const std::uint64_t round_span = ctx_.new_span();
  PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "causal",
                    "round", {"trace", trace_id_}, {"span", round_span},
                    {"parent", root_span_}, {"round", rounds_});
  const std::uint64_t tx_span = ctx_.new_span();
  PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "causal", "tx",
                    {"trace", trace_id_}, {"span", tx_span},
                    {"parent", round_span}, {"hop", 0});
  query->trace = {trace_id_, tx_span, ctx_.self.value(), 0};

  ctx_.register_local_query(
      query, [this](const net::Message& r) { on_local_response(r); });
  ctx_.transport.send(std::move(query));

  const SimTime interval =
      std::max(round_window() * 0.25, SimTime::millis(50));
  ctx_.sim.schedule(interval, [this] { check_round(); });
}

void MdrSession::on_local_response(const net::Message& response) {
  if (finished_) return;
  if (response.kind != net::ContentKind::kChunk || !response.chunk) return;
  round_response_times_.push_back(ctx_.now());
  const ChunkIndex c = response.chunk->index;
  if (chunks_.emplace(c, *response.chunk).second) {
    last_new_chunk_ = ctx_.now();
    ++round_new_;
    if (chunks_.size() >= total_chunks_) finish(true);
  }
}

void MdrSession::check_round() {
  if (finished_) return;
  sync_from_store();
  if (finished_) return;
  const SimTime now = ctx_.now();
  const SimTime window = round_window();
  const SimTime interval = std::max(window * 0.25, SimTime::millis(50));

  if (now - round_start_ < min_round_duration()) {
    ctx_.sim.schedule(interval, [this] { check_round(); });
    return;
  }
  const auto total = static_cast<double>(round_response_times_.size());
  std::size_t in_window = 0;
  for (SimTime t : round_response_times_) {
    if (t > now - window) ++in_window;
  }
  if (static_cast<double>(in_window) > ctx_.config.threshold_tr * total) {
    ctx_.sim.schedule(interval, [this] { check_round(); });
    return;
  }

  // Round over: request the remainder, or give up once rounds stop making
  // progress.
  no_progress_rounds_ = round_new_ == 0 ? no_progress_rounds_ + 1 : 0;
  if (no_progress_rounds_ >= 4 ||
      rounds_ >= ctx_.config.max_retrieval_rounds) {
    finish(chunks_.size() >= total_chunks_);
    return;
  }
  start_round();
}

void MdrSession::finish(bool complete) {
  if (finished_) return;
  finished_ = true;
  result_.complete = complete;
  result_.chunks_received = chunks_.size();
  result_.total_chunks = total_chunks_;
  result_.latency =
      chunks_.empty() ? SimTime::zero() : last_new_chunk_ - start_time_;
  result_.request_rounds = rounds_;
  result_.finished_at = ctx_.now();
  if (done_) done_(result_);
}

}  // namespace pds::core
