// Lingering Query Table (paper §III-A.1).
//
// A lingering query stays in the table until its expiration and can direct a
// continuous stream of returning responses back toward the consumer — unlike
// NDN/CCN Interests, which are consumed by a single Data message. Each entry
// remembers:
//  * the query itself (filter, target item, requested chunks),
//  * the upstream neighbor that transmitted it (the reverse-path next hop),
//  * a mutable copy of the query's Bloom filter, updated by en-route message
//    rewriting as entries are served or relayed through this node,
//  * for CDI/chunk streams, per-chunk bookkeeping that suppresses relaying
//    the same information to the same upstream twice.
//
// An entry whose upstream is this node itself represents a locally
// originated query; responses that reach it are delivered to the consumer
// session instead of being relayed.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "net/message.h"
#include "util/bloom_filter.h"

namespace pds::core {

struct LingeringQuery {
  net::MessagePtr query;
  NodeId upstream;
  SimTime expire_at;
  // Mutable Bloom filter for redundancy detection (metadata/item streams).
  util::BloomFilter exclude;
  // Entry keys already relayed/served toward this query's upstream; backs up
  // the Bloom filter when rewriting is disabled and suppresses duplicates.
  std::unordered_set<std::uint64_t> served_keys;
  // CDI streams: best hop count already relayed per chunk (relay only
  // improvements).
  std::unordered_map<ChunkIndex, std::uint32_t> relayed_cdi_hops;
  // Chunk streams: chunk ids already relayed/served for this query.
  std::unordered_set<ChunkIndex> served_chunks;
  // When true this query was consumed (one-shot mode for the lingering-query
  // ablation).
  bool consumed = false;
  // Duplicate copies of this flooded query overheard from other relays;
  // feeds counter-based flood suppression (core/flood.h).
  int duplicate_copies_heard = 0;
  // Causal tracing (DESIGN.md §14): trace context as carried by the query
  // when installed (copied from query->trace by insert()) and the span id of
  // the recv event this node emitted for it. Deferred work triggered by this
  // entry — flood forwards after the assessment delay, jittered serves —
  // parents its tx spans on `recv_span` so the DAG keeps the true cause.
  net::TraceContext trace;
  std::uint64_t recv_span = 0;

  [[nodiscard]] bool expired(SimTime now) const { return expire_at <= now; }
};

class LingeringQueryTable {
 public:
  [[nodiscard]] bool contains(QueryId id) const { return table_.contains(id); }

  // Inserts a newly received query; captures upstream = query->sender and
  // copies its Bloom filter. Returns the new entry.
  LingeringQuery& insert(const net::MessagePtr& query, SimTime now);

  [[nodiscard]] LingeringQuery* find(QueryId id);

  // All live (unexpired, unconsumed) queries of the given content kind.
  [[nodiscard]] std::vector<LingeringQuery*> live_queries(
      net::ContentKind kind, SimTime now);

  // Erases expired entries; returns how many were dropped (lq.expired trace).
  std::size_t sweep(SimTime now);

  // Peer-failure cleanup (DESIGN.md §11): erases every `kind` entry whose
  // upstream is the departed `upstream` — the query, its Bloom filter and
  // per-chunk bookkeeping all go; responses relayed toward a dead upstream
  // are wasted airtime. Entries whose upstream is this node (locally
  // originated queries) are never passed here. Returns how many entries
  // were dropped.
  std::size_t purge_upstream(NodeId upstream, net::ContentKind kind);

  // Crash-with-wipe fault semantics.
  void clear() { table_.clear(); }

  [[nodiscard]] std::size_t size() const { return table_.size(); }

  // Flight-recorder snapshot (DESIGN.md §15): how many entries carry a
  // non-empty Bloom filter and the fullest filter among them. Max over an
  // unordered map is iteration-order independent, so the sample is
  // deterministic.
  struct BloomStats {
    std::size_t filters = 0;
    double max_fill = 0.0;
  };
  [[nodiscard]] BloomStats bloom_stats() const;

 private:
  std::unordered_map<QueryId, LingeringQuery> table_;
};

}  // namespace pds::core
