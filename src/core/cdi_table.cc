#include "core/cdi_table.h"

#include <algorithm>

namespace pds::core {

bool CdiTable::update(ItemId item, ChunkIndex chunk, std::uint32_t hop_count,
                      NodeId neighbor, SimTime now, SimTime ttl) {
  const SimTime expire = now + ttl;
  auto it = table_.find({item, chunk});
  if (it == table_.end() || it->second.expired(now) ||
      hop_count < it->second.hop_count) {
    table_[{item, chunk}] = CdiRecord{.hop_count = hop_count,
                                      .neighbors = {neighbor},
                                      .expire_at = expire};
    return true;
  }
  CdiRecord& rec = it->second;
  if (hop_count > rec.hop_count) return false;
  rec.expire_at = std::max(rec.expire_at, expire);
  if (std::find(rec.neighbors.begin(), rec.neighbors.end(), neighbor) ==
      rec.neighbors.end()) {
    rec.neighbors.push_back(neighbor);
    return true;
  }
  return false;
}

const CdiRecord* CdiTable::lookup(ItemId item, ChunkIndex chunk,
                                  SimTime now) const {
  auto it = table_.find({item, chunk});
  if (it == table_.end() || it->second.expired(now)) return nullptr;
  return &it->second;
}

std::vector<std::pair<ChunkIndex, CdiRecord>> CdiTable::lookup_item(
    ItemId item, SimTime now) const {
  std::vector<std::pair<ChunkIndex, CdiRecord>> out;
  for (auto it = table_.lower_bound({item, 0});
       it != table_.end() && it->first.first == item; ++it) {
    if (!it->second.expired(now)) out.emplace_back(it->first.second, it->second);
  }
  return out;
}

std::size_t CdiTable::invalidate_neighbor(NodeId neighbor) {
  std::size_t touched = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    auto& neighbors = it->second.neighbors;
    const auto pos = std::find(neighbors.begin(), neighbors.end(), neighbor);
    if (pos == neighbors.end()) {
      ++it;
      continue;
    }
    neighbors.erase(pos);
    ++touched;
    it = neighbors.empty() ? table_.erase(it) : std::next(it);
  }
  return touched;
}

std::size_t CdiTable::routes_via(NodeId neighbor, SimTime now) const {
  std::size_t count = 0;
  for (const auto& [key, rec] : table_) {
    if (rec.expired(now)) continue;
    if (std::find(rec.neighbors.begin(), rec.neighbors.end(), neighbor) !=
        rec.neighbors.end()) {
      ++count;
    }
  }
  return count;
}

void CdiTable::sweep(SimTime now) {
  for (auto it = table_.begin(); it != table_.end();) {
    it = it->second.expired(now) ? table_.erase(it) : std::next(it);
  }
}

}  // namespace pds::core
