#include "core/discovery.h"

#include <algorithm>
#include <memory>

#include "common/assert.h"
#include "common/hash.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace pds::core {

DiscoverySession::DiscoverySession(NodeContext& ctx, net::ContentKind kind,
                                   Filter filter, Callback done)
    : ctx_(ctx),
      kind_(kind),
      filter_(std::move(filter)),
      done_(std::move(done)),
      bloom_seed_base_(ctx.rng.next_u64()) {
  PDS_ENSURE(kind == net::ContentKind::kMetadata ||
             kind == net::ContentKind::kItem);
}

void DiscoverySession::record_key(std::uint64_t key) {
  const auto [it, inserted] = arrivals_.emplace(key, ctx_.now());
  if (inserted) {
    last_new_arrival_ = ctx_.now();
    ++round_new_;
  }
}

void DiscoverySession::start() {
  PDS_ENSURE(!started_);
  started_ = true;
  start_time_ = ctx_.now();
  last_new_arrival_ = start_time_;

  // Entries already cached locally (opportunistic caching from earlier
  // traffic) count as received immediately; the paper's 5th sequential
  // consumer finishes in 0.2 s because >95% of entries were pre-cached.
  if (kind_ == net::ContentKind::kMetadata) {
    for (DataDescriptor& d : ctx_.store.match_metadata(filter_, ctx_.now())) {
      const std::uint64_t key = d.entry_key();
      if (!arrivals_.contains(key)) entries_.push_back(d);
      record_key(key);
    }
  } else {
    for (net::ItemPayload& item : ctx_.store.match_items(filter_, ctx_.now())) {
      const std::uint64_t key = item.descriptor.entry_key();
      if (!arrivals_.contains(key)) items_.push_back(item);
      record_key(key);
    }
  }
  round_new_ = 0;  // pre-cached entries do not count as round progress
  start_round();
}

void DiscoverySession::start_round() {
  ++rounds_;
  PDS_LOG_DEBUG("pdd", "node " << ctx_.self << " discovery round " << rounds_
                               << " (" << arrivals_.size()
                               << " entries so far)");
  PDS_TRACE_BEGIN(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "pdd",
                  "round", {"round", rounds_},
                  {"arrivals", arrivals_.size()});
  round_start_ = ctx_.now();
  round_new_ = 0;
  round_response_times_.clear();

  auto query = std::make_shared<net::Message>();
  query->type = net::MessageType::kQuery;
  query->kind = kind_;
  query->query_id = ctx_.new_query_id();
  query->sender = ctx_.self;
  query->expire_at = ctx_.now() + ctx_.config.query_lifetime;
  query->filter = filter_;

  // Causal spans (DESIGN.md §14): the session's trace id is its first query
  // id (already globally unique and on the wire); span ids tick whether or
  // not a tracer is attached, so traced and untraced runs stay identical.
  if (trace_id_ == 0) {
    trace_id_ = query->query_id.value();
    root_span_ = ctx_.new_span();
    PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "causal",
                      "root", {"trace", trace_id_}, {"span", root_span_},
                      {"kind", kind_ == net::ContentKind::kMetadata
                                   ? "pdd-metadata"
                                   : "pdd-item"});
  }
  round_span_ = ctx_.new_span();
  PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "causal",
                    "round", {"trace", trace_id_}, {"span", round_span_},
                    {"parent", root_span_}, {"round", rounds_});
  const std::uint64_t tx_span = ctx_.new_span();
  PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "causal", "tx",
                    {"trace", trace_id_}, {"span", tx_span},
                    {"parent", round_span_}, {"hop", 0});
  query->trace = {trace_id_, tx_span, ctx_.self.value(), 0};

  // Redundancy detection: from the second round on (or whenever something is
  // already held), attach a Bloom filter of everything received, built with
  // a per-round hash family so persistent false positives die out (§V.3).
  if (ctx_.config.enable_bloom_rewriting && !arrivals_.empty()) {
    if (ctx_.config.wire.delta_bloom) {
      // Delta-Bloom mode (DESIGN.md §16): every round after novelty starts
      // a fresh epoch — new hash family, filter sized exactly for the
      // current arrivals — and ships it as a full frame. Two reasons a
      // delta cannot follow a productive round anyway: (a) a relay that
      // served rewrote the forwarded filter into classic form, so caches
      // downstream of it missed the session's frames and a delta would
      // push them to the fallback path; (b) rotating the family on every
      // full frame restores classic's per-round false-positive die-out for
      // entries still outstanding. Deltas ship only after silent rounds,
      // where frames relayed verbatim (no serve, no rewrite), every cache
      // is known to be in step, and the frame carries no blocks — a few
      // bytes per hop to confirm the quiesced state.
      const bool novelty = arrivals_.size() != arrivals_at_last_frame_;
      const bool fresh_epoch = session_filter_.empty_filter() || novelty;
      if (fresh_epoch) {
        ++epoch_;
        session_filter_ = util::BloomFilter::with_capacity(
            arrivals_.size() + 64, ctx_.config.bloom_fpp,
            hash_combine(bloom_seed_base_,
                         static_cast<std::uint64_t>(epoch_)));
      }
      // Insertion is an idempotent bit-OR: re-inserting everything each
      // round only touches the words of keys new since the last frame.
      // pdslint:allow(unordered-iter)
      for (const auto& [key, when] : arrivals_) session_filter_.insert(key);
      query->exclude_delta = delta_sender_.next_frame(
          trace_id_, epoch_, session_filter_, fresh_epoch);
      arrivals_at_last_frame_ = arrivals_.size();
    } else {
      util::BloomFilter bloom = util::BloomFilter::with_capacity(
          arrivals_.size(), ctx_.config.bloom_fpp,
          hash_combine(bloom_seed_base_, static_cast<std::uint64_t>(rounds_)));
      // Bloom insertion is commutative (bitwise OR), so hash-order iteration
      // cannot reach the wire or the trace. pdslint:allow(unordered-iter)
      for (const auto& [key, when] : arrivals_) bloom.insert(key);
      query->exclude = std::move(bloom);
    }
  }

  ctx_.register_local_query(
      query, [this](const net::Message& r) { on_local_response(r); });
  ctx_.transport.send(query);
  schedule_check();
}

void DiscoverySession::on_local_response(const net::Message& response) {
  if (finished_) return;
  round_response_times_.push_back(ctx_.now());
  if (kind_ == net::ContentKind::kMetadata) {
    for (const DataDescriptor& d : response.metadata) {
      const std::uint64_t key = d.entry_key();
      if (!arrivals_.contains(key)) entries_.push_back(d);
      record_key(key);
    }
  } else {
    for (const net::ItemPayload& item : response.items) {
      const std::uint64_t key = item.descriptor.entry_key();
      if (!arrivals_.contains(key)) items_.push_back(item);
      record_key(key);
    }
  }
}

void DiscoverySession::schedule_check() {
  // Poll round state at a fraction of the window so a silent round ends
  // within roughly T of its last response.
  const SimTime interval =
      std::max(ctx_.config.window * 0.25, SimTime::millis(50));
  ctx_.sim.schedule(interval, [this] { check_round(); });
}

void DiscoverySession::check_round() {
  if (finished_) return;
  const SimTime now = ctx_.now();
  const SimTime window = ctx_.config.window;

  if (now - round_start_ < window) {
    schedule_check();
    return;
  }
  const auto total = static_cast<double>(round_response_times_.size());
  std::size_t in_window = 0;
  for (SimTime t : round_response_times_) {
    if (t > now - window) ++in_window;
  }
  // Diminishing rule: responses still arriving within the recent window —
  // round continues.
  if (static_cast<double>(in_window) > ctx_.config.threshold_tr * total) {
    schedule_check();
    return;
  }

  // Round finished; decide whether to start another (§III-B.2).
  close_round();
  if (arrivals_.empty()) {
    // Nothing received at all: the flooded query itself was probably lost.
    // The paper's rule would terminate with recall 0; a real consumer
    // retries, so we re-issue a bounded number of times.
    if (empty_retries_ < ctx_.config.empty_round_retries) {
      ++empty_retries_;
      start_round();
      return;
    }
    finish();
    return;
  }
  const double new_ratio = static_cast<double>(round_new_) /
                           static_cast<double>(arrivals_.size());
  if (round_new_ > 0) confirmation_round_ = false;
  if (new_ratio > ctx_.config.threshold_td &&
      rounds_ < ctx_.config.max_rounds) {
    schedule_next_round(new_ratio);
  } else if (ctx_.config.wire.delta_bloom &&
             ctx_.config.enable_bloom_rewriting &&
             !confirmation_round_ && rounds_ < ctx_.config.max_rounds) {
    // Confirmation round (DESIGN.md §16): before finishing, re-query once
    // more. The round it confirms was silent — nothing served, so every
    // sync cache relayed the epoch's snapshot verbatim and is in step —
    // and the query ships a no-op delta frame, a few bytes per hop instead
    // of a snapshot flood. It catches two things the classic
    // terminate-on-silence rule misses: responses still in flight when the
    // previous round closed, and nodes whose sync cache fell back (their
    // stale filter makes them re-offer anything the consumer gained
    // since). If it surfaces new entries, discovery continues normally and
    // a later finish confirms again.
    confirmation_round_ = true;
    start_round();
  } else {
    finish();
  }
}

void DiscoverySession::schedule_next_round(double novelty) {
  if (!ctx_.config.adaptive_round_spacing) {
    spacing_ = SimTime::zero();
    start_round();
    return;
  }
  // Adaptive spacing: every re-flood waits at least the base spacing, so
  // responses still in flight land before the next round's filter is built
  // — the re-flood excludes them instead of re-collecting them, and the
  // round after a now-silent round can ship a no-op delta frame. Rounds
  // that contributed little novelty back off exponentially up to the max.
  spacing_ = novelty >= ctx_.config.adaptive_novelty_threshold ||
                     spacing_ == SimTime::zero()
                 ? ctx_.config.adaptive_spacing_base
                 : std::min(spacing_ * 2.0, ctx_.config.adaptive_spacing_max);
  PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "pdd",
                    "round_backoff", {"round", rounds_},
                    {"delay_us", spacing_.as_micros()});
  ctx_.sim.schedule(spacing_, [this] {
    if (!finished_) start_round();
  });
}

void DiscoverySession::close_round() {
  RoundRecord rec;
  rec.round = rounds_;
  rec.start = round_start_;
  rec.end = ctx_.now();
  rec.new_keys = round_new_;
  rec.cumulative = arrivals_.size();
  rec.responses = round_response_times_.size();
  round_history_.push_back(rec);
  PDS_TRACE_END(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "pdd", "round",
                {"round", rec.round}, {"new", rec.new_keys},
                {"total", rec.cumulative}, {"responses", rec.responses});
}

void DiscoverySession::finish() {
  PDS_ENSURE(!finished_);
  PDS_LOG_DEBUG("pdd", "node " << ctx_.self << " discovery finished: "
                               << arrivals_.size() << " entries in "
                               << rounds_ << " round(s)");
  finished_ = true;
  result_.distinct_received = arrivals_.size();
  result_.latency = arrivals_.empty() ? SimTime::zero()
                                      : last_new_arrival_ - start_time_;
  result_.rounds = rounds_;
  result_.finished_at = ctx_.now();
  PDS_TRACE_INSTANT(ctx_.sim.tracer(), ctx_.now(), ctx_.self, "pdd",
                    "session_done", {"rounds", rounds_},
                    {"total", arrivals_.size()});
  if (done_) done_(result_);
}

}  // namespace pds::core
