// Peer Data Retrieval engine (paper §IV).
//
// Phase 1 — Chunk Distribution Information (CDI): CDI queries flood like PDD
// queries; every node holding chunks or unexpired CDI entries of the target
// item answers with ChunkId–HopCount pairs *relative to itself* (hop 0 for
// chunks in its own Data Store). A node receiving a CDI response creates
// table entries at HopCount+1 via the transmitting neighbor, then relays
// pairs rebuilt from its own (possibly improved) view toward upstreams of
// matching lingering CDI queries. Per-query bookkeeping relays only strict
// hop-count improvements, so the distance-vector computation converges
// without flooding storms.
//
// Phase 2 — recursive chunk retrieval: a chunk query directed at this node
// is answered with requested chunks held locally (one chunk per response
// message); the remaining set is divided among neighbors according to the
// CDI table with the min–max GAP heuristic balancing per-neighbor load, and
// one sub-query is sent to each. Chunk responses travel back along the
// reverse paths of the lingering chunk queries and are cached by every
// overhearing node.
//
// The MDR baseline (§VI-B.3) shares these handlers: an MDR chunk query is
// flooded (empty receiver list) instead of directed, is answered from the
// local store, and is re-flooded with its requested-chunk list rewritten to
// exclude the chunks just served (redundancy detection en route).
#pragma once

#include <vector>

#include "core/context.h"
#include "util/gap_assign.h"

namespace pds::core {

// Splits `chunks` of `item` among neighbors according to the node's CDI
// table, balancing per-neighbor load with the min–max GAP heuristic (or
// naive nearest assignment when the ablation toggle disables balancing).
// Chunks with no live CDI record are returned in `unroutable`. Used both by
// the engine's recursive division and by the consumer session's initial
// requests.
struct ChunkPlan {
  std::vector<std::pair<NodeId, std::vector<ChunkIndex>>> by_neighbor;
  std::vector<ChunkIndex> unroutable;
};
// `exclude` (split horizon): never assign a chunk to this neighbor — used
// so a division never sends a sub-query back to the node it came from.
[[nodiscard]] ChunkPlan plan_chunk_requests(
    const NodeContext& ctx, ItemId item, const std::vector<ChunkIndex>& chunks,
    NodeId exclude = NodeId::invalid());

class PdrEngine {
 public:
  explicit PdrEngine(NodeContext& ctx) : ctx_(ctx) {}

  PdrEngine(const PdrEngine&) = delete;
  PdrEngine& operator=(const PdrEngine&) = delete;

  void handle_cdi_query(const net::MessagePtr& query);
  void handle_cdi_response(const net::MessagePtr& response);
  void handle_chunk_query(const net::MessagePtr& query);
  void handle_chunk_response(const net::MessagePtr& response);

  // Peer-failure degradation (DESIGN.md §11): drops CDI routes through the
  // silent peer (stale distance-vector state would keep directing chunk
  // queries at a crashed provider until TTL expiry) and purges the CDI and
  // chunk lingering queries it installed here.
  void on_peer_unreachable(NodeId peer);

 private:
  // Best local view of ChunkId→HopCount for an item: hop 0 for chunks in the
  // Data Store, CDI-table distance otherwise.
  [[nodiscard]] std::vector<net::CdiEntry> local_cdi_view(
      ItemId item, const DataDescriptor& item_descriptor) const;

  // Sends pairs that improve on what was already relayed for `lq`. `cause`
  // and `cause_span` name the event that triggered the answer for causal
  // tracing (the query's recv span, or the recv span of the CDI response
  // being relayed — with hop_delta 1 for relays).
  void answer_cdi(LingeringQuery& lq, const std::vector<net::CdiEntry>& view,
                  const net::TraceContext& cause, std::uint64_t cause_span,
                  int hop_delta = 0);

  // Sends one response per requested chunk present in the store; returns the
  // chunks treated as satisfied.
  std::vector<ChunkIndex> serve_chunks(LingeringQuery& lq,
                                       const DataDescriptor& item_descriptor,
                                       const std::vector<ChunkIndex>& wanted);

  // True (and records the send) when no copy of the chunk was sent — by this
  // node or, overheard, by anyone nearby — toward `receiver` within the
  // serve-cooldown window. The single map backs all chunk duplicate
  // suppression: own serves, relay forks across query generations, and
  // parallel holders answering the same flood.
  bool claim_chunk_delivery(ItemId item, ChunkIndex chunk, NodeId receiver);
  void note_chunk_delivery(ItemId item, ChunkIndex chunk, NodeId receiver);

  NodeContext& ctx_;
  std::map<std::tuple<ItemId, ChunkIndex, NodeId>, SimTime> delivered_;
  // (item, chunk) -> last time any copy was received or overheard in
  // flight; flooded serves within mdr_suppression_window are skipped (not
  // marked served — the consumer's next round retries if the observed copy
  // never arrives).
  std::map<std::pair<ItemId, ChunkIndex>, SimTime> seen_in_flight_;
};

}  // namespace pds::core
