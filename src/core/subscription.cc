#include "core/subscription.h"

#include <memory>

#include "common/assert.h"
#include "common/hash.h"

namespace pds::core {

SubscriptionSession::SubscriptionSession(NodeContext& ctx,
                                         net::ContentKind kind, Filter filter,
                                         SimTime duration,
                                         EntryCallback on_entry)
    : ctx_(ctx),
      kind_(kind),
      filter_(std::move(filter)),
      expire_at_(ctx.now() + duration),
      on_entry_(std::move(on_entry)),
      bloom_seed_base_(ctx.rng.next_u64()) {
  PDS_ENSURE(kind == net::ContentKind::kMetadata ||
             kind == net::ContentKind::kItem);
}

bool SubscriptionSession::active() const {
  return started_ && !cancelled_ && ctx_.now() < expire_at_;
}

void SubscriptionSession::start() {
  PDS_ENSURE(!started_);
  started_ = true;
  flood_query();
  schedule_refresh();
}

void SubscriptionSession::flood_query() {
  // The first flood installs a lingering query for the subscription's whole
  // remaining lifetime: it anchors publish-time pushes along its reverse
  // paths. Refresh floods are *fresh* queries (relays forward them; a
  // repeated id would be dropped as a duplicate at the first hop) carrying
  // a Bloom filter of everything already seen — exactly the multi-round
  // redundancy detection of §III-B.2 — and live only a few refresh
  // intervals: they patch losses and install the query on late joiners,
  // whose pushes then flow until the patch expires and the next refresh
  // renews it.
  ++floods_;
  auto query = std::make_shared<net::Message>();
  query->type = net::MessageType::kQuery;
  query->kind = kind_;
  query->query_id = ctx_.new_query_id();
  query->sender = ctx_.self;
  query->filter = filter_;
  query->expire_at =
      floods_ == 1 ? expire_at_
                   : std::min(expire_at_,
                              ctx_.now() + 3.0 * ctx_.config.subscription_refresh);
  if (ctx_.config.enable_bloom_rewriting && !seen_.empty()) {
    util::BloomFilter bloom = util::BloomFilter::with_capacity(
        seen_.size(), ctx_.config.bloom_fpp,
        hash_combine(bloom_seed_base_, static_cast<std::uint64_t>(floods_)));
    for (std::uint64_t key : seen_) bloom.insert(key);
    query->exclude = std::move(bloom);
  }
  ctx_.register_local_query(
      query, [this](const net::Message& r) { on_local_response(r); });
  ctx_.transport.send(std::move(query));
}

void SubscriptionSession::schedule_refresh() {
  const SimTime interval = ctx_.config.subscription_refresh;
  ctx_.sim.schedule(interval, [this] {
    if (!active()) return;
    flood_query();
    schedule_refresh();
  });
}

void SubscriptionSession::on_local_response(const net::Message& response) {
  if (!active()) return;
  if (kind_ == net::ContentKind::kMetadata) {
    for (const DataDescriptor& d : response.metadata) {
      if (seen_.insert(d.entry_key()).second && on_entry_) on_entry_(d);
    }
  } else {
    for (const net::ItemPayload& item : response.items) {
      if (seen_.insert(item.descriptor.entry_key()).second) {
        items_.push_back(item);
        if (on_entry_) on_entry_(item.descriptor);
      }
    }
  }
}

}  // namespace pds::core
