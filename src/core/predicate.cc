#include "core/predicate.h"

#include "common/assert.h"

namespace pds::core {

bool Predicate::matches(const DataDescriptor& d) const {
  const AttrValue* v = d.find(attr);
  if (v == nullptr) return false;
  const std::partial_ordering cmp = compare_values(*v, value);
  if (cmp == std::partial_ordering::unordered) return false;
  switch (rel) {
    case Relation::kEq:
      return cmp == std::partial_ordering::equivalent;
    case Relation::kNe:
      return cmp != std::partial_ordering::equivalent;
    case Relation::kLt:
      return cmp == std::partial_ordering::less;
    case Relation::kLe:
      return cmp != std::partial_ordering::greater;
    case Relation::kGt:
      return cmp == std::partial_ordering::greater;
    case Relation::kGe:
      return cmp != std::partial_ordering::less;
    case Relation::kInRange: {
      if (cmp == std::partial_ordering::less) return false;
      const std::partial_ordering hi = compare_values(*v, value_hi);
      return hi == std::partial_ordering::less ||
             hi == std::partial_ordering::equivalent;
    }
  }
  return false;
}

Filter& Filter::where(std::string attr, Relation rel, AttrValue value) {
  PDS_ENSURE(rel != Relation::kInRange);
  preds_.push_back(Predicate{.attr = std::move(attr),
                             .rel = rel,
                             .value = std::move(value),
                             .value_hi = {}});
  return *this;
}

Filter& Filter::where_range(std::string attr, AttrValue lo, AttrValue hi) {
  preds_.push_back(Predicate{.attr = std::move(attr),
                             .rel = Relation::kInRange,
                             .value = std::move(lo),
                             .value_hi = std::move(hi)});
  return *this;
}

bool Filter::matches(const DataDescriptor& d) const {
  for (const Predicate& p : preds_) {
    if (!p.matches(d)) return false;
  }
  return true;
}

void Filter::encode(ByteWriter& w) const {
  w.put_u16(static_cast<std::uint16_t>(preds_.size()));
  for (const Predicate& p : preds_) {
    w.put_string(p.attr);
    w.put_u8(static_cast<std::uint8_t>(p.rel));
    encode_value(w, p.value);
    if (p.rel == Relation::kInRange) encode_value(w, p.value_hi);
  }
}

Filter Filter::decode(ByteReader& r) {
  Filter f;
  const std::uint16_t n = r.get_u16();
  // A serialized predicate is at least 6 bytes (u16 attr length + u8
  // relation + value tag + u16 string length); reject counts the buffer
  // cannot hold before they bound the loop (pdsflow wire-taint).
  if (std::size_t{n} * 6 > r.remaining()) {
    throw DecodeError("predicate count exceeds buffer");
  }
  f.preds_.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    Predicate p;
    p.attr = r.get_string();
    p.rel = static_cast<Relation>(r.get_u8());
    if (static_cast<std::uint8_t>(p.rel) >
        static_cast<std::uint8_t>(Relation::kInRange)) {
      throw DecodeError("unknown predicate relation");
    }
    p.value = decode_value(r);
    if (p.rel == Relation::kInRange) p.value_hi = decode_value(r);
    f.preds_.push_back(std::move(p));
  }
  return f;
}

std::size_t Filter::encoded_size() const {
  ByteWriter w;
  encode(w);
  return w.size();
}

}  // namespace pds::core
