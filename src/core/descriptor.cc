#include "core/descriptor.h"

#include <algorithm>

#include "common/assert.h"
#include "common/hash.h"

namespace pds::core {

DataDescriptor& DataDescriptor::set(std::string_view name, AttrValue value) {
  key_cache_.reset();
  auto it = std::lower_bound(
      attrs_.begin(), attrs_.end(), name,
      [](const Attribute& a, std::string_view n) { return a.name < n; });
  if (it != attrs_.end() && it->name == name) {
    it->value = std::move(value);
  } else {
    attrs_.insert(it, Attribute{std::string(name), std::move(value)});
  }
  return *this;
}

const AttrValue* DataDescriptor::find(std::string_view name) const {
  auto it = std::lower_bound(
      attrs_.begin(), attrs_.end(), name,
      [](const Attribute& a, std::string_view n) { return a.name < n; });
  if (it != attrs_.end() && it->name == name) return &it->value;
  return nullptr;
}

namespace {

std::string_view string_attr(const DataDescriptor& d, std::string_view name) {
  const AttrValue* v = d.find(name);
  if (v == nullptr) return {};
  if (const auto* s = std::get_if<std::string>(v)) return *s;
  return {};
}

std::optional<std::int64_t> int_attr(const DataDescriptor& d,
                                     std::string_view name) {
  const AttrValue* v = d.find(name);
  if (v == nullptr) return std::nullopt;
  if (const auto* i = std::get_if<std::int64_t>(v)) return *i;
  return std::nullopt;
}

}  // namespace

std::string_view DataDescriptor::namespace_name() const {
  return string_attr(*this, kAttrNamespace);
}

std::string_view DataDescriptor::data_type() const {
  return string_attr(*this, kAttrDataType);
}

std::optional<std::int64_t> DataDescriptor::total_chunks() const {
  return int_attr(*this, kAttrTotalChunks);
}

std::optional<ChunkIndex> DataDescriptor::chunk_id() const {
  const auto v = int_attr(*this, kAttrChunkId);
  if (!v.has_value()) return std::nullopt;
  return static_cast<ChunkIndex>(*v);
}

DataDescriptor DataDescriptor::chunk_descriptor(ChunkIndex index) const {
  DataDescriptor d = *this;
  d.set(kAttrChunkId, static_cast<std::int64_t>(index));
  return d;
}

DataDescriptor DataDescriptor::item_descriptor() const {
  DataDescriptor d;
  for (const Attribute& a : attrs_) {
    if (a.name != kAttrChunkId) d.attrs_.push_back(a);
  }
  return d;
}

ItemId DataDescriptor::item_id() const {
  ByteWriter w;
  item_descriptor().encode(w);
  return ItemId(fnv1a64(w.bytes()));
}

std::uint64_t DataDescriptor::entry_key() const {
  if (!key_cache_.has_value()) {
    ByteWriter w;
    encode(w);
    key_cache_ = fnv1a64(w.bytes());
  }
  return *key_cache_;
}

void DataDescriptor::encode(ByteWriter& w) const {
  w.put_u16(static_cast<std::uint16_t>(attrs_.size()));
  for (const Attribute& a : attrs_) encode_attribute(w, a);
}

DataDescriptor DataDescriptor::decode(ByteReader& r) {
  DataDescriptor d;
  const std::uint16_t n = r.get_u16();
  // A serialized attribute is at least 5 bytes (u16 name length + value
  // tag + u16 string length), so a count the remaining buffer cannot hold
  // is malformed; reject it before it drives the loop and the vector
  // growth below (pdsflow wire-taint).
  if (std::size_t{n} * 5 > r.remaining()) {
    throw DecodeError("descriptor attribute count exceeds buffer");
  }
  d.attrs_.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    d.attrs_.push_back(decode_attribute(r));
  }
  // The wire is produced by encode() and is therefore strictly sorted
  // (set() keeps names unique); a malformed message must not break that
  // invariant. Strictness matters: a duplicate name would pass a plain
  // is_sorted check here yet be rejected by the compressed-entry encoding,
  // so the same descriptor would round-trip on one wire form and not the
  // other.
  const bool canonical =
      std::adjacent_find(d.attrs_.begin(), d.attrs_.end(),
                         [](const Attribute& a, const Attribute& b) {
                           return !(a.name < b.name);
                         }) == d.attrs_.end();
  if (!canonical) throw DecodeError("descriptor attributes not canonical");
  return d;
}

std::vector<std::byte> DataDescriptor::canonical_bytes() const {
  ByteWriter w;
  encode(w);
  return w.take();
}

std::size_t DataDescriptor::encoded_size() const {
  ByteWriter w;
  encode(w);
  return w.size();
}

}  // namespace pds::core
