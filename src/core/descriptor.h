// Data descriptors — the self-contained metadata identifying a data item or
// chunk (paper §II-B).
//
// A descriptor is a set of attributes, kept sorted by name so that logically
// equal descriptors have identical canonical encodings. Identity is
// hash-based:
//
//  * item_id()   — hash of the canonical encoding *excluding* chunk_id:
//                  all chunks of one large item share it;
//  * entry_key() — hash *including* chunk_id: the key used in Bloom filters
//                  and redundancy detection, unique per metadata entry.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/types.h"
#include "core/attribute.h"

namespace pds::core {

// Well-known attribute names.
inline constexpr std::string_view kAttrNamespace = "ns";
inline constexpr std::string_view kAttrDataType = "type";
inline constexpr std::string_view kAttrName = "name";
inline constexpr std::string_view kAttrTime = "time";
inline constexpr std::string_view kAttrTotalChunks = "total_chunks";
inline constexpr std::string_view kAttrChunkId = "chunk_id";

// Reserved namespace / data types for protocol-internal exchanges (§III-A:
// metadata queries use namespace "system", data type "metadata"; §IV-A: CDI
// uses data type "cdi").
inline constexpr std::string_view kSystemNamespace = "system";
inline constexpr std::string_view kMetadataType = "metadata";
inline constexpr std::string_view kCdiType = "cdi";

class DataDescriptor {
 public:
  DataDescriptor() = default;

  // Sets (or replaces) an attribute.
  DataDescriptor& set(std::string_view name, AttrValue value);

  [[nodiscard]] const AttrValue* find(std::string_view name) const;
  [[nodiscard]] const std::vector<Attribute>& attributes() const {
    return attrs_;
  }

  // Convenience accessors for well-known attributes.
  [[nodiscard]] std::string_view namespace_name() const;
  [[nodiscard]] std::string_view data_type() const;
  [[nodiscard]] std::optional<std::int64_t> total_chunks() const;
  [[nodiscard]] std::optional<ChunkIndex> chunk_id() const;
  [[nodiscard]] bool is_chunk() const { return chunk_id().has_value(); }

  // The descriptor of chunk `index` of this item: this descriptor with a
  // chunk_id attribute appended (paper §II-B).
  [[nodiscard]] DataDescriptor chunk_descriptor(ChunkIndex index) const;
  // This descriptor with the chunk_id attribute removed.
  [[nodiscard]] DataDescriptor item_descriptor() const;

  [[nodiscard]] ItemId item_id() const;
  [[nodiscard]] std::uint64_t entry_key() const;

  void encode(ByteWriter& w) const;
  [[nodiscard]] static DataDescriptor decode(ByteReader& r);
  [[nodiscard]] std::vector<std::byte> canonical_bytes() const;

  // Size of the canonical encoding; the wire codec may override this with
  // the paper's parameterized 30-byte entry size.
  [[nodiscard]] std::size_t encoded_size() const;

  friend bool operator==(const DataDescriptor& a, const DataDescriptor& b) {
    return a.attrs_ == b.attrs_;
  }

 private:
  // Sorted by attribute name; unique names.
  std::vector<Attribute> attrs_;
  // entry_key() is on several hot paths (store matching, Bloom pruning); the
  // canonical-encoding hash is memoized and invalidated by set().
  mutable std::optional<std::uint64_t> key_cache_;
};

}  // namespace pds::core
