// Long-lived subscription sessions (paper §IV future work: "subscribing to
// a data item that keeps growing, e.g., live video streams").
//
// A subscription is one long-lived lingering query: it is flooded once,
// stays in every node's LQT for the subscription's duration, and anything
// matching that appears anywhere in the network — published after the
// subscription started, carried in by a joining node, or cached en route —
// streams back to the subscriber with no re-querying. The flood is
// refreshed periodically with short-lived patch queries (Bloom-pruned, like
// discovery rounds) that heal losses and install the query on late joiners.
//
// This is the lingering-query mechanism doing exactly what §III-A.1 designed
// it for, extended in time; nothing new is needed at relays.
//
// Relays cap how long any lingering query may stay in their table (10
// minutes); a subscription outliving that cap degrades gracefully: pushes
// stop flowing through expired anchors, and the periodic patch floods keep
// pulling matching entries at refresh-interval latency.
#pragma once

#include <functional>
#include <unordered_set>

#include "core/context.h"

namespace pds::core {

class SubscriptionSession {
 public:
  // Invoked once per newly seen matching entry. Item subscriptions receive
  // the item's descriptor here; payloads are available via `items()`.
  using EntryCallback = std::function<void(const DataDescriptor&)>;

  SubscriptionSession(NodeContext& ctx, net::ContentKind kind, Filter filter,
                      SimTime duration, EntryCallback on_entry);

  SubscriptionSession(const SubscriptionSession&) = delete;
  SubscriptionSession& operator=(const SubscriptionSession&) = delete;

  void start();
  // Stops delivering and refreshing; the flooded query simply expires.
  void cancel() { cancelled_ = true; }

  [[nodiscard]] bool active() const;
  [[nodiscard]] std::size_t distinct_received() const {
    return seen_.size();
  }
  [[nodiscard]] const std::vector<net::ItemPayload>& items() const {
    return items_;
  }

 private:
  void flood_query();
  void schedule_refresh();
  void on_local_response(const net::Message& response);

  NodeContext& ctx_;
  net::ContentKind kind_;
  Filter filter_;
  SimTime expire_at_;
  EntryCallback on_entry_;

  bool started_ = false;
  bool cancelled_ = false;
  std::uint64_t bloom_seed_base_ = 0;
  int floods_ = 0;
  std::unordered_set<std::uint64_t> seen_;
  std::vector<net::ItemPayload> items_;
};

}  // namespace pds::core
