#include "core/lingering_query_table.h"

#include <algorithm>

#include "common/assert.h"

namespace pds::core {

LingeringQuery& LingeringQueryTable::insert(const net::MessagePtr& query,
                                            SimTime now) {
  PDS_ENSURE(query->is_query());
  PDS_ENSURE(!table_.contains(query->query_id));
  LingeringQuery lq;
  lq.query = query;
  lq.upstream = query->sender;
  lq.expire_at = std::min(query->expire_at, now + SimTime::minutes(10.0));
  lq.exclude = query->exclude;
  lq.trace = query->trace;
  auto [it, inserted] = table_.emplace(query->query_id, std::move(lq));
  PDS_ENSURE(inserted);
  return it->second;
}

LingeringQuery* LingeringQueryTable::find(QueryId id) {
  auto it = table_.find(id);
  return it == table_.end() ? nullptr : &it->second;
}

std::vector<LingeringQuery*> LingeringQueryTable::live_queries(
    net::ContentKind kind, SimTime now) {
  std::vector<LingeringQuery*> out;
  for (auto& [id, lq] : table_) {
    if (lq.expired(now) || lq.consumed) continue;
    if (lq.query->kind != kind) continue;
    out.push_back(&lq);
  }
  return out;
}

std::size_t LingeringQueryTable::purge_upstream(NodeId upstream,
                                                net::ContentKind kind) {
  std::size_t dropped = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->second.upstream == upstream && it->second.query->kind == kind) {
      it = table_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

LingeringQueryTable::BloomStats LingeringQueryTable::bloom_stats() const {
  BloomStats out;
  for (const auto& [id, lq] : table_) {
    if (lq.exclude.empty_filter()) continue;
    ++out.filters;
    out.max_fill = std::max(out.max_fill, lq.exclude.fill_ratio());
  }
  return out;
}

std::size_t LingeringQueryTable::sweep(SimTime now) {
  std::size_t expired = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->second.expired(now)) {
      it = table_.erase(it);
      ++expired;
    } else {
      ++it;
    }
  }
  return expired;
}

}  // namespace pds::core
