// Peer Data Discovery engine (paper §III, Algorithms 1 and 2).
//
// Handles the metadata stream (ContentKind::kMetadata) and the small-item
// stream (ContentKind::kItem), which follows "almost the same process as
// metadata discovery" (§IV) with whole items as payload.
//
// Query processing (Alg. 1):  LQT Lookup → DS Lookup → Receiver Check →
// Forwarding, extended with en-route query rewriting: entries served from the
// local Data Store are inserted into the forwarded query's Bloom filter so
// downstream nodes do not return them again (§III-B.2).
//
// Response processing (Alg. 2): RR Lookup → DS Lookup (opportunistic
// caching) → Receiver Check → LQT Lookup → Forwarding, extended with
// mixedcast (§III-B.1): one relayed response carries the union of the entries
// still needed by all matching lingering queries, its receiver list is the
// set of their upstreams, and every relayed entry is inserted into each
// matching query's Bloom filter (en-route response rewriting).
#pragma once

#include "core/context.h"

namespace pds::core {

class PddEngine {
 public:
  explicit PddEngine(NodeContext& ctx) : ctx_(ctx) {}

  PddEngine(const PddEngine&) = delete;
  PddEngine& operator=(const PddEngine&) = delete;

  void handle_query(const net::MessagePtr& query);
  void handle_response(const net::MessagePtr& response);

  // Publish-time serving: a freshly produced entry/item is offered to every
  // live lingering query immediately. This is what makes long-lived
  // subscriptions stream (§IV's future-work scenario): the lingering query
  // sits in the LQT and newly appearing data flows back without any
  // re-query.
  void serve_new_publication(const DataDescriptor& entry);
  void serve_new_publication(const net::ItemPayload& item);

  // Peer-failure degradation (DESIGN.md §11): a consumer/relay that
  // departed mid-protocol stops acking, the transport gives up, and this
  // purges every metadata/item lingering query it installed here — the
  // query entry, its rewritten Bloom filter and served-key bookkeeping.
  // Responses already queued toward it die at the transport layer.
  void on_peer_unreachable(NodeId peer);

 private:
  // Serves matching local entries to a just-inserted lingering query;
  // updates the query's Bloom filter / served sets.
  void serve_from_store(LingeringQuery& lq);

  // Emits serve/rewrite trace events for `entries` entries just served.
  void trace_serve(const LingeringQuery& lq, std::size_t entries);

  // Keys (entry_key) of payload units in a response, parallel to payload
  // order.
  static std::vector<std::uint64_t> payload_keys(const net::Message& r);

  NodeContext& ctx_;
};

}  // namespace pds::core
