// Flood-control countermeasures (paper §VII).
//
// The paper floods queries when no routing state exists and notes that
// "well studied mechanisms reducing broadcast and contentions in flooding
// can be used" (its refs [26][27]: the broadcast-storm problem and
// probabilistic broadcast). Two classic schemes are provided, off by
// default:
//
//  * probabilistic forwarding — each node re-broadcasts a flooded query
//    only with probability p;
//  * counter-based suppression — a node defers its re-broadcast by a random
//    assessment delay and cancels it if it overhears enough duplicate
//    copies of the same query meanwhile (its neighbors are already
//    covered).
//
// Both engines (PDD and the CDI phase of PDR) route their flood forwarding
// through maybe_forward_flood so the schemes apply uniformly.
#pragma once

#include "core/context.h"

namespace pds::core {

// Forwards the (already rewritten) flooded query `fwd`, subject to the
// configured flood-control scheme. `query_id` identifies the lingering
// query whose duplicate-copy counter gates counter-based suppression.
void maybe_forward_flood(NodeContext& ctx, QueryId query_id,
                         std::shared_ptr<net::Message> fwd);

// Records an overheard duplicate copy of a flooded query (LQT hit); feeds
// the counter-based scheme.
void note_duplicate_flood_copy(NodeContext& ctx, QueryId query_id);

}  // namespace pds::core
