// Attributes: the typed name/value pairs data descriptors are made of
// (paper §II-B). Values are one of the primitive types the paper lists —
// integers (also used for Unix times), floats (e.g., GPS coordinates) and
// strings (names, types, namespaces).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <variant>

#include "common/bytes.h"

namespace pds::core {

using AttrValue = std::variant<std::int64_t, double, std::string>;

struct Attribute {
  std::string name;
  AttrValue value;

  friend bool operator==(const Attribute&, const Attribute&) = default;
};

// Total order over values of the same alternative; numeric alternatives
// (int64/double) compare with each other numerically so a query written with
// an integer literal matches a float attribute. Strings are ordered
// lexicographically and never compare equal/less against numbers.
//
// Returns std::partial_ordering::unordered for string-vs-number.
[[nodiscard]] std::partial_ordering compare_values(const AttrValue& a,
                                                   const AttrValue& b);

// Canonical encoding (type tag + value, little endian); identical values
// encode identically, which descriptor hashing depends on.
void encode_value(ByteWriter& w, const AttrValue& v);
[[nodiscard]] AttrValue decode_value(ByteReader& r);

void encode_attribute(ByteWriter& w, const Attribute& a);
[[nodiscard]] Attribute decode_attribute(ByteReader& r);

}  // namespace pds::core
