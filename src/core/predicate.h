// Query predicates and filters (paper §II-C).
//
// A query carries a collection of predicates, each constraining one attribute
// with a relation to a value or value range; a filter is their conjunction.
// An empty filter matches everything (the "give me all metadata" query of
// basic PDD).
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "core/attribute.h"
#include "core/descriptor.h"

namespace pds::core {

enum class Relation : std::uint8_t {
  kEq = 0,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kInRange,  // value <= attr <= value_hi
};

struct Predicate {
  std::string attr;
  Relation rel = Relation::kEq;
  AttrValue value;
  AttrValue value_hi;  // only meaningful for kInRange

  // A descriptor missing the attribute, or with an incomparable value type,
  // does not match.
  [[nodiscard]] bool matches(const DataDescriptor& d) const;

  friend bool operator==(const Predicate&, const Predicate&) = default;
};

class Filter {
 public:
  Filter() = default;

  Filter& where(std::string attr, Relation rel, AttrValue value);
  Filter& where_range(std::string attr, AttrValue lo, AttrValue hi);

  [[nodiscard]] bool matches(const DataDescriptor& d) const;
  [[nodiscard]] bool match_all() const { return preds_.empty(); }
  [[nodiscard]] const std::vector<Predicate>& predicates() const {
    return preds_;
  }

  void encode(ByteWriter& w) const;
  [[nodiscard]] static Filter decode(ByteReader& r);
  [[nodiscard]] std::size_t encoded_size() const;

  friend bool operator==(const Filter&, const Filter&) = default;

 private:
  std::vector<Predicate> preds_;
};

}  // namespace pds::core
