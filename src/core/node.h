// PdsNode — the public facade of the library: one peer device.
//
// A node owns all per-device protocol state (Data Store, Lingering Query
// Table, CDI table, recent-response cache), its transport (leaky-bucket
// pacing + per-hop ack/retransmission over the shared broadcast medium) and
// the PDD/PDR engines. Applications:
//
//  * publish data — `publish_metadata` / `publish_item` / `publish_chunk`;
//  * discover what exists nearby — `discover` (multi-round PDD);
//  * collect many small matching items — `collect_items`;
//  * retrieve a large chunked item — `retrieve` (two-phase PDR) or
//    `retrieve_mdr` (the multi-round baseline).
//
// Consumer sessions are owned by the node and remain valid until the node is
// destroyed; completion is signaled through their callbacks.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/cdi_table.h"
#include "core/config.h"
#include "core/context.h"
#include "core/data_store.h"
#include "core/discovery.h"
#include "core/lingering_query_table.h"
#include "core/mdr.h"
#include "core/pdd.h"
#include "core/pdr.h"
#include "core/retrieval.h"
#include "core/subscription.h"
#include "net/face.h"
#include "net/transport.h"
#include "sim/radio.h"
#include "sim/simulator.h"

namespace pds::core {

class PdsNode {
 public:
  // Registers the node with the medium at `position`. The node must outlive
  // the simulation run (scheduled events capture `this`).
  PdsNode(sim::Simulator& sim, sim::RadioMedium& medium, NodeId id,
          const PdsConfig& config, sim::Vec2 position, bool enabled = true);

  PdsNode(const PdsNode&) = delete;
  PdsNode& operator=(const PdsNode&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }

  // -- Producer API ---------------------------------------------------------
  // Announces a locally produced data item (its metadata entry never
  // expires on this node).
  void publish_metadata(const DataDescriptor& descriptor);
  // Stores a complete small data item (descriptor + payload).
  void publish_item(const net::ItemPayload& item);
  // Stores one chunk of a large item; `item_descriptor` is the item-level
  // descriptor (carrying total_chunks), not the chunk descriptor.
  void publish_chunk(const DataDescriptor& item_descriptor,
                     const net::ChunkPayload& chunk);

  // -- Consumer API ---------------------------------------------------------
  DiscoverySession& discover(Filter filter, DiscoverySession::Callback done);
  DiscoverySession& collect_items(Filter filter,
                                  DiscoverySession::Callback done);
  PdrSession& retrieve(const DataDescriptor& item_descriptor,
                       PdrSession::Callback done);
  MdrSession& retrieve_mdr(const DataDescriptor& item_descriptor,
                           MdrSession::Callback done);
  // Long-lived subscriptions: entries matching `filter` stream to the
  // callback as they appear anywhere in the network, until `duration`
  // elapses (§IV future work; one lingering query does all the work).
  SubscriptionSession& subscribe(Filter filter, SimTime duration,
                                 SubscriptionSession::EntryCallback on_entry);
  SubscriptionSession& subscribe_items(
      Filter filter, SimTime duration,
      SubscriptionSession::EntryCallback on_entry);

  // -- Fault semantics (DESIGN.md §11) --------------------------------------
  // Crash: the node stops processing messages and its transport drops all
  // in-flight state (pending retransmissions, queued sends, partial
  // reassemblies). With `wipe_state` the persistent tables go too — Data
  // Store, CDI, lingering queries, response dedup — modeling a device whose
  // storage does not survive the failure. The caller (fault injector) is
  // responsible for detaching the node from the radio medium.
  void crash(bool wipe_state);
  // Clears the crashed flag; protocol state is whatever crash() left.
  void restart();
  [[nodiscard]] bool crashed() const { return crashed_; }

  // -- Introspection ----------------------------------------------------------
  [[nodiscard]] DataStore& store() { return store_; }
  [[nodiscard]] const DataStore& store() const { return store_; }
  [[nodiscard]] CdiTable& cdi_table() { return cdi_; }
  [[nodiscard]] LingeringQueryTable& lqt() { return lqt_; }
  [[nodiscard]] net::Transport& transport() { return transport_; }
  [[nodiscard]] NodeContext& context() { return ctx_; }
  [[nodiscard]] const PdsConfig& config() const { return config_; }

 private:
  void on_message(const net::MessagePtr& msg);
  // Transport retransmission budget exhausted toward `peer`: fan the signal
  // out to the engines (LQT/CDI cleanup) and to unfinished retrieval
  // sessions (immediate re-dispatch).
  void on_peer_unreachable(NodeId peer);
  void maybe_sweep();

  sim::Simulator& sim_;
  NodeId id_;
  PdsConfig config_;
  Rng rng_;
  DataStore store_;
  LingeringQueryTable lqt_;
  util::DedupCache<std::uint64_t> recent_responses_;
  CdiTable cdi_;
  net::BloomSyncCache bloom_sync_;
  net::BroadcastFace face_;
  net::Transport transport_;
  NodeContext ctx_;
  PddEngine pdd_;
  PdrEngine pdr_;

  std::unordered_map<QueryId, LocalResponseHandler> local_handlers_;
  std::vector<std::unique_ptr<DiscoverySession>> discovery_sessions_;
  std::vector<std::unique_ptr<PdrSession>> pdr_sessions_;
  std::vector<std::unique_ptr<MdrSession>> mdr_sessions_;
  std::vector<std::unique_ptr<SubscriptionSession>> subscriptions_;
  std::uint64_t messages_handled_ = 0;
  bool crashed_ = false;
};

}  // namespace pds::core
