// Consumer-side two-phase retrieval session (paper §IV).
//
// Phase 1 floods a CDI query for the target item and waits for the
// distance-vector state to build (coverage of every chunk, or a silent
// window — CDI responses are tiny and return fast). Phase 2 partitions the
// missing chunks among the least-hop neighbors (min–max GAP balancing) and
// sends one directed chunk query per neighbor; nodes along the way serve and
// recursively divide. A stall timer re-plans still-missing chunks, and
// refreshes CDI when some chunks have no routing entry at all.
#pragma once

#include <functional>
#include <map>
#include <unordered_set>

#include "core/context.h"
#include "core/descriptor.h"

namespace pds::core {

struct RetrievalResult {
  bool complete = false;
  std::size_t chunks_received = 0;
  std::size_t total_chunks = 0;
  SimTime latency = SimTime::zero();
  int cdi_rounds = 0;       // PDR only
  int request_rounds = 0;   // chunk request (re)planning rounds
  SimTime finished_at = SimTime::zero();
};

class PdrSession {
 public:
  using Callback = std::function<void(const RetrievalResult&)>;

  // `item_descriptor` must carry a total_chunks attribute (it came from
  // discovery).
  PdrSession(NodeContext& ctx, DataDescriptor item_descriptor, Callback done);

  PdrSession(const PdrSession&) = delete;
  PdrSession& operator=(const PdrSession&) = delete;

  void start();

  // Peer-failure re-dispatch (DESIGN.md §11): the transport exhausted its
  // retransmission budget toward `peer` and the engine already invalidated
  // CDI routes through it. Re-plans the missing chunks right away instead
  // of waiting out the stall timer; a short cooldown coalesces the burst of
  // give-ups a single crash produces.
  void on_peer_unreachable(NodeId peer);

  [[nodiscard]] bool finished() const { return phase_ == Phase::kDone; }
  [[nodiscard]] const RetrievalResult& result() const { return result_; }
  [[nodiscard]] const std::map<ChunkIndex, net::ChunkPayload>& chunks() const {
    return chunks_;
  }
  // Arrival time of each chunk (progress-over-time instrumentation).
  [[nodiscard]] const std::map<ChunkIndex, SimTime>& arrivals() const {
    return arrivals_;
  }

 private:
  enum class Phase { kIdle, kCdi, kFetch, kDone };

  void send_cdi_query();
  void check_cdi();
  [[nodiscard]] bool cdi_covers_missing() const;
  void begin_fetch();
  void issue_requests();
  void check_stall();
  // Picks up chunks that reached the local Data Store outside the session's
  // lingering queries (overheard copies, arrivals after query expiry).
  void sync_from_store();
  void on_local_response(const net::Message& response);
  [[nodiscard]] std::vector<ChunkIndex> missing_chunks() const;
  void finish(bool complete);

  NodeContext& ctx_;
  DataDescriptor item_descriptor_;
  ItemId item_;
  std::size_t total_chunks_ = 0;
  Callback done_;

  Phase phase_ = Phase::kIdle;
  RetrievalResult result_;
  SimTime start_time_ = SimTime::zero();
  SimTime last_new_chunk_ = SimTime::zero();
  SimTime last_cdi_activity_ = SimTime::zero();
  SimTime last_progress_ = SimTime::zero();
  SimTime last_redispatch_ = SimTime::zero();

  std::map<ChunkIndex, net::ChunkPayload> chunks_;
  std::map<ChunkIndex, SimTime> arrivals_;
  int cdi_rounds_ = 0;
  int request_rounds_ = 0;

  // Causal tracing (DESIGN.md §14): trace id = the session's first CDI query
  // id; the root span parents every CDI/fetch round span.
  std::uint64_t trace_id_ = 0;
  std::uint64_t root_span_ = 0;
};

}  // namespace pds::core
