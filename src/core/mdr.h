// Multi-round Data Retrieval — the baseline PDS is compared against in
// Figs. 13/14 (paper §VI-B.3).
//
// MDR retrieves chunks the way PDD retrieves metadata: the consumer floods a
// chunk query for everything it is still missing, nodes holding requested
// chunks reply them, and redundancy detection (en-route rewriting of the
// requested list, per-lingering-query served sets) limits — but cannot fully
// eliminate — duplicate copies arriving along different reverse paths. Rounds
// repeat with the remaining chunks until everything arrives or progress
// stops.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "core/context.h"
#include "core/descriptor.h"
#include "core/retrieval.h"

namespace pds::core {

class MdrSession {
 public:
  using Callback = std::function<void(const RetrievalResult&)>;

  MdrSession(NodeContext& ctx, DataDescriptor item_descriptor, Callback done);

  MdrSession(const MdrSession&) = delete;
  MdrSession& operator=(const MdrSession&) = delete;

  void start();

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const RetrievalResult& result() const { return result_; }

 private:
  void start_round();
  void on_local_response(const net::Message& response);
  void check_round();
  // Picks up chunks that reached the local Data Store outside the session's
  // lingering query (overheard copies, arrivals after query expiry).
  void sync_from_store();
  [[nodiscard]] SimTime round_window() const;
  [[nodiscard]] SimTime min_round_duration() const;
  [[nodiscard]] std::vector<ChunkIndex> missing_chunks() const;
  void finish(bool complete);

  NodeContext& ctx_;
  DataDescriptor item_descriptor_;
  ItemId item_;
  std::size_t total_chunks_ = 0;
  Callback done_;

  bool started_ = false;
  bool finished_ = false;
  RetrievalResult result_;
  SimTime start_time_ = SimTime::zero();
  SimTime last_new_chunk_ = SimTime::zero();

  std::map<ChunkIndex, net::ChunkPayload> chunks_;
  int rounds_ = 0;
  int no_progress_rounds_ = 0;
  std::size_t round_new_ = 0;
  std::vector<SimTime> round_response_times_;
  SimTime round_start_ = SimTime::zero();

  // Causal tracing (DESIGN.md §14): trace id = the session's first flooded
  // query id; the root span parents the per-round spans.
  std::uint64_t trace_id_ = 0;
  std::uint64_t root_span_ = 0;
};

}  // namespace pds::core
