// Deterministic fault-schedule engine (DESIGN.md §11).
//
// A FaultSchedule is plain data: a list of scripted events — node crashes
// and restarts (with or without state wipe), churn departures/arrivals,
// link degradation and network partitions (per-pair loss overrides in
// RadioMedium), Gilbert–Elliott burst-loss channels and send-buffer
// overflow storms. A FaultInjector installs a schedule into a running
// Simulator: every event is applied at its scripted sim time, through the
// same event queue as protocol traffic, so a faulted run is exactly as
// seed-reproducible as an unfaulted one (no wall clock, no extra RNG
// streams — the only randomness faults introduce is the medium's own
// per-frame draws for sub-unity loss overrides and burst channels).
//
// The injector operates on the medium directly (radio on/off, pair loss,
// burst channels, junk frames) and delegates protocol-level crash/restart
// semantics to caller-provided hooks: the sim layer cannot depend on core,
// so wl::Scenario wires the hooks to core::PdsNode::crash()/restart().
// Every applied event emits a "fault" trace event and bumps a FaultStats
// counter, so pdsreport and the metrics registry can gate on fault
// exposure.
#pragma once

#include <functional>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "sim/radio.h"
#include "sim/simulator.h"

namespace pds::obs {
class MetricsRegistry;
}  // namespace pds::obs

namespace pds::sim {

enum class FaultKind {
  kCrash,        // nodes[]: radio off + protocol crash hook (wipe_state)
  kRestart,      // nodes[]: radio on + protocol restart hook
  kLinkLoss,     // nodes[] × peers[]: per-pair loss override = loss
  kLinkRestore,  // nodes[] × peers[]: clear the per-pair override
  kPartition,    // nodes[] × peers[]: hard cut (loss 1.0) on every cross pair
  kHeal,         // nodes[] × peers[]: clear every cross-pair override
  kBurstOn,      // nodes[]: attach a Gilbert–Elliott burst channel
  kBurstOff,     // nodes[]: detach it
  kBufferStorm,  // nodes[]: flood the OS send buffer with junk frames
};

struct FaultEvent {
  SimTime at = SimTime::zero();
  FaultKind kind = FaultKind::kCrash;
  std::vector<NodeId> nodes;
  std::vector<NodeId> peers;  // link/partition events: the other side
  bool wipe_state = false;    // kCrash: also wipe DataStore/CDI/LQT
  double loss = 1.0;          // kLinkLoss
  GilbertElliottParams burst;         // kBurstOn
  std::size_t storm_bytes = 2'000'000;  // kBufferStorm: junk volume
  std::size_t storm_frame_bytes = 1500;
};

// Builder-style schedule; every helper appends event(s) and returns *this
// so scripted timelines read top to bottom.
struct FaultSchedule {
  std::vector<FaultEvent> events;

  FaultSchedule& crash(SimTime at, NodeId node, bool wipe = false);
  FaultSchedule& restart(SimTime at, NodeId node);
  // Churn: depart at `leave` (state kept — the device walks away, it does
  // not reboot) and rejoin at `rejoin`.
  FaultSchedule& churn(SimTime leave, SimTime rejoin, NodeId node);
  FaultSchedule& link_loss(SimTime at, NodeId a, NodeId b, double loss);
  FaultSchedule& link_restore(SimTime at, NodeId a, NodeId b);
  // Cuts every (a ∈ side_a) × (b ∈ side_b) pair at `at`; heals at `heal_at`
  // (skipped when heal_at <= at: a permanent partition).
  FaultSchedule& partition(SimTime at, SimTime heal_at,
                           std::vector<NodeId> side_a,
                           std::vector<NodeId> side_b);
  // Burst channel on `node` from `at` until `until` (until <= at: forever).
  FaultSchedule& burst(SimTime at, SimTime until, NodeId node,
                       GilbertElliottParams params = {});
  FaultSchedule& buffer_storm(SimTime at, NodeId node,
                              std::size_t bytes = 2'000'000,
                              std::size_t frame_bytes = 1500);

  [[nodiscard]] bool empty() const { return events.empty(); }
};

struct FaultStats {
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t links_degraded = 0;  // pairs overridden
  std::uint64_t links_restored = 0;  // pairs cleared
  std::uint64_t partitions = 0;      // partition events applied
  std::uint64_t heals = 0;
  std::uint64_t bursts_started = 0;
  std::uint64_t bursts_stopped = 0;
  std::uint64_t storms = 0;
  std::uint64_t storm_frames = 0;  // junk frames offered to OS buffers

  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

// Junk payload used by buffer storms. Transports ignore frames whose
// payload they do not recognize (a real radio overhears foreign traffic
// all the time); the damage is done in the OS buffer and on the air.
struct StormPayload final : FramePayload {};

class FaultInjector {
 public:
  // Protocol-level crash/restart semantics, wired by the scenario layer.
  // Optional: with no hooks a crash is radio-only (the medium still stops
  // delivering to and from the node).
  struct Hooks {
    std::function<void(NodeId, bool wipe)> crash;
    std::function<void(NodeId)> restart;
  };

  FaultInjector(Simulator& sim, RadioMedium& medium, Hooks hooks = {});

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedules every event of `schedule` on the simulator. May be called
  // more than once; schedules merge.
  void install(const FaultSchedule& schedule);

  // Nodes currently down (crashed and not yet restarted).
  [[nodiscard]] bool is_crashed(NodeId id) const {
    return crashed_.contains(id.value());
  }
  [[nodiscard]] std::size_t crashed_count() const { return crashed_.size(); }

  [[nodiscard]] const FaultStats& stats() const { return stats_; }

  // Exposes FaultStats as "<prefix>crashes" etc.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix = "faults.") const;

 private:
  void apply(const FaultEvent& event);
  void apply_crash(NodeId node, bool wipe);
  void apply_restart(NodeId node);
  void apply_storm(const FaultEvent& event, NodeId node);

  Simulator& sim_;
  RadioMedium& medium_;
  Hooks hooks_;
  std::unordered_set<std::uint32_t> crashed_;
  std::shared_ptr<const StormPayload> storm_payload_;
  FaultStats stats_;
};

}  // namespace pds::sim
