#include "sim/topology.h"

#include "common/assert.h"

namespace pds::sim {

std::vector<Vec2> grid_positions(std::size_t nx, std::size_t ny,
                                 double spacing) {
  PDS_ENSURE(nx > 0 && ny > 0 && spacing > 0.0);
  std::vector<Vec2> out;
  out.reserve(nx * ny);
  for (std::size_t row = 0; row < ny; ++row) {
    for (std::size_t col = 0; col < nx; ++col) {
      out.push_back(Vec2{static_cast<double>(col) * spacing,
                         static_cast<double>(row) * spacing});
    }
  }
  return out;
}

double grid_spacing_for_range(double range_m) {
  // s*sqrt(2) <= r < 2s  ==>  r/2 < s <= r/sqrt(2). Pick s = r / 1.5: the
  // diagonal neighbor at s*1.414 is comfortably in range, the 2-hop neighbor
  // at 2s = 1.33r is out.
  PDS_ENSURE(range_m > 0.0);
  return range_m / 1.5;
}

std::size_t grid_center_index(std::size_t nx, std::size_t ny) {
  return (ny / 2) * nx + nx / 2;
}

WifiDirectLayout wifi_direct_groups(std::size_t groups,
                                    std::size_t members_per_group,
                                    double range_m, Rng& rng) {
  PDS_ENSURE(groups >= 1);
  PDS_ENSURE(members_per_group >= 1);
  WifiDirectLayout layout;

  // Geometry with unit-disk range r: clusters of radius r/8 spaced 1.6r
  // apart. Any two members of one group are ≤ r/4 apart (single hop);
  // members of adjacent groups are ≥ 1.6r − 2·(r/8) = 1.35r apart (never
  // direct); a bridge at the midpoint is ≤ 0.8r + r/8 = 0.925r from every
  // member of both groups it spans.
  const double spacing = 1.6 * range_m;
  const double radius = range_m / 8.0;

  for (std::size_t g = 0; g < groups; ++g) {
    const Vec2 center{static_cast<double>(g) * spacing, 0.0};
    layout.owners.push_back(layout.positions.size());
    layout.positions.push_back(center);
    layout.group_of.push_back(g);
    for (std::size_t m = 1; m < members_per_group; ++m) {
      const double angle = rng.uniform(0.0, 2.0 * 3.14159265358979);
      const double dist = rng.uniform(0.0, radius);
      layout.positions.push_back(
          Vec2{center.x + dist * std::cos(angle),
               center.y + dist * std::sin(angle)});
      layout.group_of.push_back(g);
    }
  }
  for (std::size_t g = 0; g + 1 < groups; ++g) {
    layout.bridges.push_back(layout.positions.size());
    layout.positions.push_back(
        Vec2{(static_cast<double>(g) + 0.5) * spacing, 0.0});
    layout.group_of.push_back(g);
  }
  return layout;
}

}  // namespace pds::sim
