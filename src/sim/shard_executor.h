// Deterministic intra-run parallelism for the simulator's RNG-free phases.
//
// ShardExecutor runs one job over [0, n) split into `shards()` contiguous
// ranges — shard 0 on the calling thread, the rest on persistent workers —
// and returns only when every shard has finished (a conservative lockstep
// window: the simulator never advances while shards are in flight).
//
// Determinism argument (DESIGN.md §13): a phase may be sharded only if each
// item's work (a) consumes no RNG, (b) writes only item-private state plus
// per-shard partials, and (c) per-shard partials are merged by the caller in
// fixed shard order (0, 1, ..., S-1). Under those rules the merged result is
// identical to the serial loop for *any* shard count — byte-identical
// traces, stats and BENCH JSON across 1, 2 or 8 threads, which
// trace_determinism_test asserts and the TSan CI job watches for races.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pds::sim {

class ShardExecutor {
 public:
  // `threads` is the total shard count including the calling thread;
  // `threads - 1` persistent workers are spawned. Must be >= 1.
  explicit ShardExecutor(int threads);
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  [[nodiscard]] int shards() const { return shards_; }

  // Invokes fn(begin, end, shard) for every shard's contiguous range of
  // [0, n); blocks until all shards complete. fn must follow the
  // determinism rules above. Ranges are a fixed function of (n, shards()):
  // shard s gets [s*n/S, (s+1)*n/S).
  void run(std::size_t n,
           const std::function<void(std::size_t, std::size_t, std::size_t)>&
               fn);

 private:
  void worker_loop(std::size_t worker_index);

  int shards_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  // Job state, all guarded by mu_.
  std::uint64_t generation_ = 0;
  std::size_t job_n_ = 0;
  const std::function<void(std::size_t, std::size_t, std::size_t)>* job_ =
      nullptr;
  std::size_t pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace pds::sim
