#include "sim/radio.h"

#include <algorithm>
#include <cmath>

#include <unordered_map>

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace pds::sim {

RadioConfig contended_radio_profile() {
  return RadioConfig{};  // defaults: interference ring at 1.5× range
}

RadioConfig clean_radio_profile() {
  RadioConfig cfg;
  cfg.interference_range_m = cfg.range_m;  // no corruption beyond decode range
  return cfg;
}

RadioMedium::RadioMedium(Simulator& sim, RadioConfig cfg)
    : sim_(sim), cfg_(cfg), rng_(sim.rng().fork()) {
  // A nonzero explicit range with default interference keeps the 1.5× rule;
  // profiles that pin interference to the decode range must track range_m.
  if (cfg_.interference_range_m > 0.0 &&
      cfg_.interference_range_m < cfg_.range_m) {
    cfg_.interference_range_m = cfg_.range_m;
  }
  // Fine cell size = interference range: delivery fan-out (the most frequent
  // radius query) always resolves to a 3×3 fine-cell scan; the wider
  // carrier-sense radius never touches the grid (see transmitting_).
  cell_size_m_ = interference_range();
  PDS_ENSURE(cell_size_m_ > 0.0);

  const int threads = std::max(1, cfg_.shard_threads);
  if (threads > 1) shards_ = std::make_unique<ShardExecutor>(threads);
  shard_receivers_.resize(static_cast<std::size_t>(threads));
  shard_half_duplex_.resize(static_cast<std::size_t>(threads), 0);
}

RadioMedium::Index RadioMedium::index_of(NodeId id) const {
  auto it = index_of_.find(id);
  PDS_ENSURE(it != index_of_.end());
  return it->second;
}

std::int32_t RadioMedium::fine_coord(double v) const {
  return static_cast<std::int32_t>(std::floor(v / cell_size_m_));
}

void RadioMedium::grid_insert(Index idx) {
  const std::int32_t fx = cell_fx_[idx];
  const std::int32_t fy = cell_fy_[idx];
  auto [it, inserted] = coarse_map_.try_emplace(
      coarse_key(fx >> kCoarseShift, fy >> kCoarseShift), 0);
  if (inserted) {
    if (!coarse_free_.empty()) {
      it->second = coarse_free_.back();
      coarse_free_.pop_back();
    } else {
      it->second = static_cast<std::uint32_t>(coarse_cells_.size());
      coarse_cells_.emplace_back();
    }
  }
  CoarseCell& cell = coarse_cells_[it->second];
  std::int32_t& head = cell.heads[sub_cell(fx, fy)];
  const auto node = static_cast<std::int32_t>(idx);
  grid_prev_[idx] = -1;
  grid_next_[idx] = head;
  if (head >= 0) grid_prev_[static_cast<Index>(head)] = node;
  head = node;
  ++cell.count;
}

void RadioMedium::grid_remove(Index idx) {
  const std::int32_t fx = cell_fx_[idx];
  const std::int32_t fy = cell_fy_[idx];
  auto it =
      coarse_map_.find(coarse_key(fx >> kCoarseShift, fy >> kCoarseShift));
  PDS_ENSURE(it != coarse_map_.end());
  CoarseCell& cell = coarse_cells_[it->second];
  const std::int32_t nxt = grid_next_[idx];
  const std::int32_t prv = grid_prev_[idx];
  if (prv >= 0) {
    grid_next_[static_cast<Index>(prv)] = nxt;
  } else {
    cell.heads[sub_cell(fx, fy)] = nxt;
  }
  if (nxt >= 0) grid_prev_[static_cast<Index>(nxt)] = prv;
  PDS_ENSURE(cell.count > 0);
  if (--cell.count == 0) {
    // Empty sub-lists leave every head at -1 again, so the pooled cell is
    // ready for its next tenant without a reset pass.
    coarse_free_.push_back(it->second);
    coarse_map_.erase(it);
  }
}

const std::vector<RadioMedium::Index>& RadioMedium::candidates_near(
    Index self, Vec2 pos, double radius) const {
  scratch_.clear();
  if (!cfg_.use_spatial_grid) {
    // Brute-force reference: the historical implementation walked the
    // registration list and resolved each node through the id hash map
    // (`state_of(other)`); reproduce that lookup so this path stays a
    // faithful perf baseline for the pre-grid code, not just a correctness
    // oracle.
    for (const NodeState& st : states_) {
      const Index i = index_of_.find(st.id)->second;
      if (i != self) scratch_.push_back(i);
    }
    return scratch_;  // ascending == registration order already
  }
  const std::int32_t cfx = fine_coord(pos.x);
  const std::int32_t cfy = fine_coord(pos.y);
  const auto reach =
      static_cast<std::int32_t>(std::ceil(radius / cell_size_m_));
  const std::int32_t fx0 = cfx - reach;
  const std::int32_t fx1 = cfx + reach;
  const std::int32_t fy0 = cfy - reach;
  const std::int32_t fy1 = cfy + reach;
  // One coarse lookup covers an 8×8 block of fine cells, so the usual 3×3
  // fine query costs at most four hash probes.
  for (std::int32_t cx = fx0 >> kCoarseShift; cx <= (fx1 >> kCoarseShift);
       ++cx) {
    for (std::int32_t cy = fy0 >> kCoarseShift; cy <= (fy1 >> kCoarseShift);
         ++cy) {
      auto it = coarse_map_.find(coarse_key(cx, cy));
      if (it == coarse_map_.end()) continue;
      const CoarseCell& cell = coarse_cells_[it->second];
      const std::int32_t gx0 = std::max(fx0, cx * kCoarseSpan);
      const std::int32_t gx1 = std::min(fx1, cx * kCoarseSpan + kCoarseSpan - 1);
      const std::int32_t gy0 = std::max(fy0, cy * kCoarseSpan);
      const std::int32_t gy1 = std::min(fy1, cy * kCoarseSpan + kCoarseSpan - 1);
      for (std::int32_t fy = gy0; fy <= gy1; ++fy) {
        for (std::int32_t fx = gx0; fx <= gx1; ++fx) {
          for (std::int32_t n = cell.heads[sub_cell(fx, fy)]; n >= 0;
               n = grid_next_[static_cast<Index>(n)]) {
            if (static_cast<Index>(n) != self) {
              scratch_.push_back(static_cast<Index>(n));
            }
          }
        }
      }
    }
  }
  // Registration order keeps grid and brute-force scans byte-for-byte
  // equivalent: same reception scheduling order, same RNG draw order.
  std::sort(scratch_.begin(), scratch_.end());
  return scratch_;
}

void RadioMedium::add_node(NodeId id, FrameSink& sink, Vec2 pos,
                           bool enabled) {
  const auto idx = static_cast<Index>(states_.size());
  const bool inserted = index_of_.try_emplace(id, idx).second;
  PDS_ENSURE(inserted);
  NodeState state;
  state.id = id;
  state.sink = &sink;
  states_.push_back(std::move(state));
  pos_.push_back(pos);
  enabled_.push_back(enabled ? 1 : 0);
  tx_active_.push_back(0);
  tx_end_.push_back(SimTime::zero());
  cell_fx_.push_back(fine_coord(pos.x));
  cell_fy_.push_back(fine_coord(pos.y));
  grid_next_.push_back(-1);
  grid_prev_.push_back(-1);
  grid_insert(idx);
}

void RadioMedium::set_position(NodeId id, Vec2 pos) {
  const Index idx = index_of(id);
  pos_[idx] = pos;
  const std::int32_t fx = fine_coord(pos.x);
  const std::int32_t fy = fine_coord(pos.y);
  if (fx != cell_fx_[idx] || fy != cell_fy_[idx]) {
    grid_remove(idx);
    cell_fx_[idx] = fx;
    cell_fy_[idx] = fy;
    grid_insert(idx);
  }
}

void RadioMedium::set_enabled(NodeId id, bool enabled) {
  const Index idx = index_of(id);
  if ((enabled_[idx] != 0) == enabled) return;
  enabled_[idx] = enabled ? 1 : 0;
  NodeState& st = states_[idx];
  if (!enabled) {
    // Radio off: pending sends and in-flight receptions are gone. An ongoing
    // transmission is allowed to finish (the tail of the frame is already on
    // the air as far as other nodes can tell).
    st.os_queue.clear();
    st.os_bytes = 0;
    st.receptions.clear();
  } else if (!st.os_queue.empty()) {
    maybe_schedule_attempt(idx, SimTime::zero());
  }
}

bool RadioMedium::is_enabled(NodeId id) const {
  return enabled_[index_of(id)] != 0;
}

Vec2 RadioMedium::position(NodeId id) const { return pos_[index_of(id)]; }

bool RadioMedium::send(NodeId sender, Frame frame) {
  ++stats_.frames_offered;
  const Index idx = index_of(sender);
  if (enabled_[idx] == 0) return false;
  NodeState& st = states_[idx];
  if (st.os_bytes + frame.size_bytes > cfg_.os_buffer_bytes) {
    ++stats_.os_buffer_drops;
    PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), sender, "radio", "os_drop",
                      {"bytes", frame.size_bytes});
    return false;
  }
  st.os_bytes += frame.size_bytes;
  if (frame.control) {
    st.os_queue.push_front(std::move(frame));  // control frames jump the queue
  } else {
    st.os_queue.push_back(std::move(frame));
  }
  maybe_schedule_attempt(idx, SimTime::zero());
  return true;
}

std::vector<NodeId> RadioMedium::neighbors(NodeId id) const {
  std::vector<NodeId> out;
  const Index idx = index_of(id);
  if (enabled_[idx] == 0) return out;
  const Vec2 self_pos = pos_[idx];
  for (Index i : candidates_near(idx, self_pos, cfg_.range_m)) {
    if (enabled_[i] != 0 && distance(self_pos, pos_[i]) <= cfg_.range_m) {
      out.push_back(states_[i].id);
    }
  }
  return out;
}

void RadioMedium::set_pair_loss(NodeId a, NodeId b, double loss) {
  PDS_ENSURE(a != b);
  pair_loss_[pair_key(a, b)] = loss;
}

void RadioMedium::clear_pair_loss(NodeId a, NodeId b) {
  pair_loss_.erase(pair_key(a, b));
}

void RadioMedium::set_burst_channel(NodeId id, GilbertElliottParams params) {
  NodeState& st = state_of(id);
  st.burst_enabled = true;
  st.burst_bad = false;  // a fresh channel starts in the good state
  st.burst = params;
}

void RadioMedium::clear_burst_channel(NodeId id) {
  NodeState& st = state_of(id);
  st.burst_enabled = false;
  st.burst_bad = false;
}

std::size_t RadioMedium::os_backlog_bytes(NodeId id) const {
  return state_of(id).os_bytes;
}

const RadioActivity& RadioMedium::activity(NodeId id) const {
  return state_of(id).activity;
}

double RadioMedium::energy_joules(NodeId id, SimTime elapsed) const {
  const RadioActivity& a = state_of(id).activity;
  return cfg_.idle_power_w * elapsed.as_seconds() +
         (cfg_.tx_power_w - cfg_.idle_power_w) * a.tx_airtime.as_seconds() +
         (cfg_.rx_power_w - cfg_.idle_power_w) * a.rx_airtime.as_seconds();
}

double RadioMedium::total_energy_joules(SimTime elapsed) const {
  double sum = 0.0;
  for (const NodeState& st : states_) sum += energy_joules(st.id, elapsed);
  return sum;
}

bool RadioMedium::medium_busy_around(Index idx) const {
  const Vec2 self_pos = pos_[idx];
  const double cs = carrier_sense_range();
  if (cfg_.use_spatial_grid) {
    for (Index other : transmitting_) {
      if (other == idx) continue;
      if (distance(self_pos, pos_[other]) <= cs) return true;
    }
    return false;
  }
  // Brute-force reference: full registration-order scan with the historical
  // per-node hash lookup (see candidates_near).
  for (Index other = 0; other < states_.size(); ++other) {
    if (other == idx) continue;
    const Index i = index_of_.find(states_[other].id)->second;
    if (tx_active_[i] != 0 && distance(self_pos, pos_[i]) <= cs) return true;
  }
  return false;
}

SimTime RadioMedium::busy_end_around(Index idx) const {
  const Vec2 self_pos = pos_[idx];
  const double cs = carrier_sense_range();
  SimTime latest = sim_.now();
  if (cfg_.use_spatial_grid) {
    for (Index other : transmitting_) {
      if (other == idx) continue;
      if (distance(self_pos, pos_[other]) <= cs) {
        latest = std::max(latest, tx_end_[other]);
      }
    }
    return latest;
  }
  // Brute-force reference: full registration-order scan with the historical
  // per-node hash lookup (see candidates_near).
  for (Index other = 0; other < states_.size(); ++other) {
    if (other == idx) continue;
    const Index i = index_of_.find(states_[other].id)->second;
    if (tx_active_[i] != 0 && distance(self_pos, pos_[i]) <= cs) {
      latest = std::max(latest, tx_end_[i]);
    }
  }
  return latest;
}

SimTime RadioMedium::random_backoff() {
  const auto slots = rng_.uniform_int(0, cfg_.max_backoff_slots - 1);
  return cfg_.backoff_slot * static_cast<double>(slots);
}

SimTime RadioMedium::access_delay(const NodeState& st) {
  // Control frames (acks) contend with a shorter inter-frame space and a
  // small backoff window, like MAC control traffic.
  const bool control = !st.os_queue.empty() && st.os_queue.front().control;
  if (control) {
    return 0.5 * cfg_.difs + cfg_.backoff_slot *
                                 static_cast<double>(rng_.uniform_int(0, 7));
  }
  return cfg_.difs + random_backoff();
}

void RadioMedium::maybe_schedule_attempt(Index idx, SimTime extra_delay) {
  NodeState& st = states_[idx];
  if (st.attempt_scheduled || tx_active_[idx] != 0 || st.os_queue.empty() ||
      enabled_[idx] == 0) {
    return;
  }
  st.attempt_scheduled = true;
  sim_.schedule(extra_delay + access_delay(st),
                [this, idx] { attempt_transmission(idx); });
}

void RadioMedium::attempt_transmission(Index idx) {
  NodeState& st = states_[idx];
  st.attempt_scheduled = false;
  if (enabled_[idx] == 0 || tx_active_[idx] != 0 || st.os_queue.empty()) {
    return;
  }
  if (medium_busy_around(idx)) {
    // Defer: retry after the sensed busy period plus fresh backoff.
    const SimTime wait = busy_end_around(idx) - sim_.now();
    PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), st.id, "radio", "defer",
                      {"wait_us", wait.as_micros()});
    st.attempt_scheduled = true;
    sim_.schedule(wait + access_delay(st),
                  [this, idx] { attempt_transmission(idx); });
    return;
  }
  start_transmission(idx);
}

void RadioMedium::start_transmission(Index idx) {
  PDS_PROF_SCOPE(sim_.profiler(), "radio");
  NodeState& st = states_[idx];
  Frame frame = std::move(st.os_queue.front());
  st.os_queue.pop_front();
  PDS_ENSURE(st.os_bytes >= frame.size_bytes);
  st.os_bytes -= frame.size_bytes;

  const SimTime airtime = transmission_time(frame.size_bytes, cfg_.mac_rate_bps);
  tx_active_[idx] = 1;
  tx_end_[idx] = sim_.now() + airtime;
  st.activity.tx_airtime += airtime;
  transmitting_.push_back(idx);

  ++stats_.frames_transmitted;
  stats_.bytes_transmitted += frame.size_bytes;
  stats_.air_time_us += static_cast<std::uint64_t>(airtime.as_micros());
  PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), st.id, "radio", "tx",
                    {"bytes", frame.size_bytes},
                    {"control", static_cast<std::int64_t>(frame.control)});
  if (tx_observer_) tx_observer_(st.id, frame);

  const std::uint64_t tx_seq = next_tx_seq_++;
  const Vec2 sender_pos = pos_[idx];
  const double interference = interference_range();
  const std::vector<Index>& cands =
      candidates_near(idx, sender_pos, interference);

  // Classify every candidate: does this transmission reach it, decodably or
  // as interference, and does it survive half-duplex? The per-candidate work
  // consumes no RNG and writes only receiver-private state (receptions,
  // rx_airtime) plus per-shard partials, so it may run sharded; partials
  // merge in fixed shard order below, making the result byte-identical to
  // the serial loop for any thread count (DESIGN.md §13).
  auto classify = [&](std::size_t begin, std::size_t end, std::size_t shard) {
    std::vector<Index>& out = shard_receivers_[shard];
    std::uint64_t half_duplex = 0;
    for (std::size_t c = begin; c < end; ++c) {
      const Index ridx = cands[c];
      if (enabled_[ridx] == 0) continue;
      const double new_dist = distance(sender_pos, pos_[ridx]);
      if (new_dist > interference) continue;
      const bool decodable = new_dist <= cfg_.range_m;
      if (tx_active_[ridx] != 0) {
        // Half-duplex: a busy transmitter cannot decode incoming frames.
        if (decodable) ++half_duplex;
        continue;
      }
      NodeState& rx = states_[ridx];
      // Overlapping receptions interfere; a frame survives only if its
      // transmitter is decisively closer than the competing one (physical
      // capture). Hidden terminals — senders out of each other's
      // carrier-sense range whose signals meet at this receiver, possibly
      // too weak to decode but strong enough to corrupt — are what make
      // multi-hop floods lossy.
      if (decodable) rx.activity.rx_airtime += airtime;
      Reception incoming{.tx_seq = tx_seq,
                         .sender_distance = new_dist,
                         .corrupted = false,
                         .decodable = decodable};
      for (Reception& ongoing : rx.receptions) {
        if (new_dist > ongoing.sender_distance * cfg_.capture_ratio) {
          incoming.corrupted = true;
        }
        if (ongoing.sender_distance > new_dist * cfg_.capture_ratio) {
          ongoing.corrupted = true;
        }
      }
      rx.receptions.push_back(incoming);
      out.push_back(ridx);
    }
    shard_half_duplex_[shard] = half_duplex;
  };

  if (shards_ && cands.size() >= cfg_.shard_min_candidates) {
    PDS_PROF_SCOPE(sim_.profiler(), "classify-shards");
    shards_->run(cands.size(), classify);
  } else {
    classify(0, cands.size(), 0);
    for (std::size_t s = 1; s < shard_receivers_.size(); ++s) {
      shard_receivers_[s].clear();
      shard_half_duplex_[s] = 0;
    }
  }

  // Merge per-shard partials in shard order: shards cover contiguous,
  // ascending candidate ranges, so concatenation reproduces the serial
  // receiver order exactly.
  std::vector<Index> receivers = receiver_pool_.acquire();
  for (std::size_t s = 0; s < shard_receivers_.size(); ++s) {
    std::vector<Index>& part = shard_receivers_[s];
    receivers.insert(receivers.end(), part.begin(), part.end());
    part.clear();
    stats_.losses_half_duplex += shard_half_duplex_[s];
    shard_half_duplex_[s] = 0;
  }

  // One completion event per transmission, iterating receivers in candidate
  // (registration) order — the same per-receiver sequence the historical
  // per-receiver events produced, since those carried consecutive sequence
  // numbers at the identical timestamp. The receiver list returns to the
  // pool once delivered.
  if (!receivers.empty()) {
    sim_.schedule_at(
        tx_end_[idx],
        [this, recv = std::move(receivers), fr = std::move(frame),
         tx_seq]() mutable {
          for (Index ridx : recv) finish_reception(ridx, tx_seq, fr);
          receiver_pool_.release(std::move(recv));
        });
  } else {
    receiver_pool_.release(std::move(receivers));
  }

  sim_.schedule_at(tx_end_[idx], [this, idx] { finish_transmission(idx); });
}

void RadioMedium::finish_transmission(Index idx) {
  tx_active_[idx] = 0;
  auto it = std::find(transmitting_.begin(), transmitting_.end(), idx);
  PDS_ENSURE(it != transmitting_.end());
  *it = transmitting_.back();
  transmitting_.pop_back();
  maybe_schedule_attempt(idx, SimTime::zero());
}

void RadioMedium::finish_reception(Index ridx, std::uint64_t tx_seq,
                                   const Frame& frame) {
  NodeState& rx = states_[ridx];
  auto it = std::find_if(rx.receptions.begin(), rx.receptions.end(),
                         [tx_seq](const Reception& r) {
                           return r.tx_seq == tx_seq;
                         });
  if (it == rx.receptions.end()) return;  // node left mid-frame
  const Reception rec = *it;
  rx.receptions.erase(it);

  if (enabled_[ridx] == 0 || !rec.decodable) return;
  if (rec.corrupted) {
    ++stats_.losses_collision;
    PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), rx.id, "radio", "collision",
                      {"bytes", frame.size_bytes});
    return;
  }
  // Scripted per-pair override (partition / degraded link) replaces the
  // noise/burst draw for this sender–receiver pair. A hard partition edge
  // (loss >= 1) drops without consuming randomness so the RNG stream stays
  // aligned across schedules that only differ in partitioned pairs.
  if (!pair_loss_.empty()) {
    if (auto it = pair_loss_.find(pair_key(frame.sender, rx.id));
        it != pair_loss_.end()) {
      if (it->second >= 1.0 || rng_.bernoulli(it->second)) {
        ++stats_.losses_fault;
        return;
      }
      ++stats_.deliveries;
      rx.sink->on_frame(frame);
      return;
    }
  }
  if (rx.burst_enabled) {
    // Gilbert–Elliott channel: advance the two-state chain once per
    // decodable frame, then draw from the current state's loss rate.
    if (rx.burst_bad) {
      if (rng_.bernoulli(rx.burst.p_bad_to_good)) rx.burst_bad = false;
    } else {
      if (rng_.bernoulli(rx.burst.p_good_to_bad)) rx.burst_bad = true;
    }
    const double p = rx.burst_bad ? rx.burst.loss_bad : rx.burst.loss_good;
    if (rng_.bernoulli(p)) {
      ++stats_.losses_burst;
      return;
    }
    ++stats_.deliveries;
    rx.sink->on_frame(frame);
    return;
  }
  if (rng_.bernoulli(cfg_.loss_probability)) {
    ++stats_.losses_noise;
    return;
  }
  ++stats_.deliveries;
  rx.sink->on_frame(frame);
}

RadioMedium::TxCellOccupancy RadioMedium::tx_cell_occupancy() const {
  TxCellOccupancy out;
  // Small map: |transmitting_| concurrent transmitters, not N nodes. Only
  // the distinct-cell count and the per-cell max leave this function, both
  // independent of hash iteration order.
  std::unordered_map<std::uint64_t, std::size_t> per_cell;
  per_cell.reserve(transmitting_.size());
  for (Index idx : transmitting_) {
    const std::uint64_t key = coarse_key(cell_fx_[idx] >> kCoarseShift,
                                         cell_fy_[idx] >> kCoarseShift);
    const std::size_t n = ++per_cell[key];
    out.max_per_cell = std::max(out.max_per_cell, n);
  }
  out.cells = per_cell.size();
  return out;
}

std::size_t RadioMedium::total_os_backlog_bytes() const {
  std::size_t total = 0;
  for (const NodeState& st : states_) total += st.os_bytes;
  return total;
}

void RadioMedium::register_metrics(obs::MetricsRegistry& registry,
                                   const std::string& prefix) const {
  registry.expose_counter(prefix + "frames_offered", &stats_.frames_offered);
  registry.expose_counter(prefix + "os_buffer_drops", &stats_.os_buffer_drops);
  registry.expose_counter(prefix + "frames_transmitted",
                          &stats_.frames_transmitted);
  registry.expose_counter(prefix + "bytes_transmitted",
                          &stats_.bytes_transmitted);
  registry.expose_counter(prefix + "air_time_us", &stats_.air_time_us);
  registry.expose_counter(prefix + "deliveries", &stats_.deliveries);
  registry.expose_counter(prefix + "losses_collision",
                          &stats_.losses_collision);
  registry.expose_counter(prefix + "losses_noise", &stats_.losses_noise);
  registry.expose_counter(prefix + "losses_half_duplex",
                          &stats_.losses_half_duplex);
  registry.expose_counter(prefix + "losses_fault", &stats_.losses_fault);
  registry.expose_counter(prefix + "losses_burst", &stats_.losses_burst);
}

}  // namespace pds::sim
