#include "sim/radio.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pds::sim {

RadioConfig contended_radio_profile() {
  return RadioConfig{};  // defaults: interference ring at 1.5× range
}

RadioConfig clean_radio_profile() {
  RadioConfig cfg;
  cfg.interference_range_m = cfg.range_m;  // no corruption beyond decode range
  return cfg;
}

RadioMedium::RadioMedium(Simulator& sim, RadioConfig cfg)
    : sim_(sim), cfg_(cfg), rng_(sim.rng().fork()) {
  // A nonzero explicit range with default interference keeps the 1.5× rule;
  // profiles that pin interference to the decode range must track range_m.
  if (cfg_.interference_range_m > 0.0 &&
      cfg_.interference_range_m < cfg_.range_m) {
    cfg_.interference_range_m = cfg_.range_m;
  }
  // Cell size = interference range: delivery fan-out (the most frequent
  // radius query) always resolves to a 3×3 cell scan; the wider
  // carrier-sense radius never touches the grid (see transmitting_).
  cell_size_m_ = interference_range();
  PDS_ENSURE(cell_size_m_ > 0.0);
}

RadioMedium::Index RadioMedium::index_of(NodeId id) const {
  auto it = index_of_.find(id);
  PDS_ENSURE(it != index_of_.end());
  return it->second;
}

std::uint64_t RadioMedium::cell_key(Vec2 pos) const {
  const auto cx = static_cast<std::int32_t>(std::floor(pos.x / cell_size_m_));
  const auto cy = static_cast<std::int32_t>(std::floor(pos.y / cell_size_m_));
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
}

void RadioMedium::grid_insert(Index idx, std::uint64_t key) {
  grid_[key].push_back(idx);
}

void RadioMedium::grid_remove(Index idx, std::uint64_t key) {
  auto it = grid_.find(key);
  PDS_ENSURE(it != grid_.end());
  auto& cell = it->second;
  auto pos = std::find(cell.begin(), cell.end(), idx);
  PDS_ENSURE(pos != cell.end());
  // Swap-erase: within-cell order is irrelevant, candidates_near re-sorts.
  *pos = cell.back();
  cell.pop_back();
  if (cell.empty()) grid_.erase(it);
}

const std::vector<RadioMedium::Index>& RadioMedium::candidates_near(
    Index self, Vec2 pos, double radius) const {
  scratch_.clear();
  if (!cfg_.use_spatial_grid) {
    // Brute-force reference: the historical implementation walked the
    // registration list and resolved each node through the id hash map
    // (`state_of(other)`); reproduce that lookup so this path stays a
    // faithful perf baseline for the pre-grid code, not just a correctness
    // oracle.
    for (const NodeState& st : states_) {
      const Index i = index_of_.find(st.id)->second;
      if (i != self) scratch_.push_back(i);
    }
    return scratch_;  // ascending == registration order already
  }
  const auto cx = static_cast<std::int32_t>(std::floor(pos.x / cell_size_m_));
  const auto cy = static_cast<std::int32_t>(std::floor(pos.y / cell_size_m_));
  const auto reach =
      static_cast<std::int32_t>(std::ceil(radius / cell_size_m_));
  for (std::int32_t dx = -reach; dx <= reach; ++dx) {
    for (std::int32_t dy = -reach; dy <= reach; ++dy) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx + dx))
           << 32) |
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy + dy));
      auto it = grid_.find(key);
      if (it == grid_.end()) continue;
      for (Index i : it->second) {
        if (i != self) scratch_.push_back(i);
      }
    }
  }
  // Registration order keeps grid and brute-force scans byte-for-byte
  // equivalent: same reception scheduling order, same RNG draw order.
  std::sort(scratch_.begin(), scratch_.end());
  return scratch_;
}

void RadioMedium::add_node(NodeId id, FrameSink& sink, Vec2 pos,
                           bool enabled) {
  const auto idx = static_cast<Index>(states_.size());
  const bool inserted = index_of_.try_emplace(id, idx).second;
  PDS_ENSURE(inserted);
  NodeState state;
  state.id = id;
  state.sink = &sink;
  state.pos = pos;
  state.cell = cell_key(pos);
  state.enabled = enabled;
  states_.push_back(std::move(state));
  grid_insert(idx, states_.back().cell);
}

void RadioMedium::set_position(NodeId id, Vec2 pos) {
  const Index idx = index_of(id);
  NodeState& st = states_[idx];
  st.pos = pos;
  const std::uint64_t key = cell_key(pos);
  if (key != st.cell) {
    grid_remove(idx, st.cell);
    grid_insert(idx, key);
    st.cell = key;
  }
}

void RadioMedium::set_enabled(NodeId id, bool enabled) {
  const Index idx = index_of(id);
  NodeState& st = states_[idx];
  if (st.enabled == enabled) return;
  st.enabled = enabled;
  if (!enabled) {
    // Radio off: pending sends and in-flight receptions are gone. An ongoing
    // transmission is allowed to finish (the tail of the frame is already on
    // the air as far as other nodes can tell).
    st.os_queue.clear();
    st.os_bytes = 0;
    st.receptions.clear();
  } else if (!st.os_queue.empty()) {
    maybe_schedule_attempt(idx, SimTime::zero());
  }
}

bool RadioMedium::is_enabled(NodeId id) const { return state_of(id).enabled; }

Vec2 RadioMedium::position(NodeId id) const { return state_of(id).pos; }

bool RadioMedium::send(NodeId sender, Frame frame) {
  ++stats_.frames_offered;
  const Index idx = index_of(sender);
  NodeState& st = states_[idx];
  if (!st.enabled) return false;
  if (st.os_bytes + frame.size_bytes > cfg_.os_buffer_bytes) {
    ++stats_.os_buffer_drops;
    PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), sender, "radio", "os_drop",
                      {"bytes", frame.size_bytes});
    return false;
  }
  st.os_bytes += frame.size_bytes;
  if (frame.control) {
    st.os_queue.push_front(std::move(frame));  // control frames jump the queue
  } else {
    st.os_queue.push_back(std::move(frame));
  }
  maybe_schedule_attempt(idx, SimTime::zero());
  return true;
}

std::vector<NodeId> RadioMedium::neighbors(NodeId id) const {
  std::vector<NodeId> out;
  const Index idx = index_of(id);
  const NodeState& self = states_[idx];
  if (!self.enabled) return out;
  for (Index i : candidates_near(idx, self.pos, cfg_.range_m)) {
    const NodeState& st = states_[i];
    if (st.enabled && distance(self.pos, st.pos) <= cfg_.range_m) {
      out.push_back(st.id);
    }
  }
  return out;
}

void RadioMedium::set_pair_loss(NodeId a, NodeId b, double loss) {
  PDS_ENSURE(a != b);
  pair_loss_[pair_key(a, b)] = loss;
}

void RadioMedium::clear_pair_loss(NodeId a, NodeId b) {
  pair_loss_.erase(pair_key(a, b));
}

void RadioMedium::set_burst_channel(NodeId id, GilbertElliottParams params) {
  NodeState& st = state_of(id);
  st.burst_enabled = true;
  st.burst_bad = false;  // a fresh channel starts in the good state
  st.burst = params;
}

void RadioMedium::clear_burst_channel(NodeId id) {
  NodeState& st = state_of(id);
  st.burst_enabled = false;
  st.burst_bad = false;
}

std::size_t RadioMedium::os_backlog_bytes(NodeId id) const {
  return state_of(id).os_bytes;
}

const RadioActivity& RadioMedium::activity(NodeId id) const {
  return state_of(id).activity;
}

double RadioMedium::energy_joules(NodeId id, SimTime elapsed) const {
  const RadioActivity& a = state_of(id).activity;
  return cfg_.idle_power_w * elapsed.as_seconds() +
         (cfg_.tx_power_w - cfg_.idle_power_w) * a.tx_airtime.as_seconds() +
         (cfg_.rx_power_w - cfg_.idle_power_w) * a.rx_airtime.as_seconds();
}

double RadioMedium::total_energy_joules(SimTime elapsed) const {
  double sum = 0.0;
  for (const NodeState& st : states_) sum += energy_joules(st.id, elapsed);
  return sum;
}

bool RadioMedium::medium_busy_around(Index idx) const {
  const NodeState& self = states_[idx];
  const double cs = carrier_sense_range();
  if (cfg_.use_spatial_grid) {
    for (Index other : transmitting_) {
      if (other == idx) continue;
      if (distance(self.pos, states_[other].pos) <= cs) return true;
    }
    return false;
  }
  // Brute-force reference: full registration-order scan with the historical
  // per-node hash lookup (see candidates_near).
  for (Index other = 0; other < states_.size(); ++other) {
    if (other == idx) continue;
    const NodeState& st = states_[index_of_.find(states_[other].id)->second];
    if (st.transmitting && distance(self.pos, st.pos) <= cs) return true;
  }
  return false;
}

SimTime RadioMedium::busy_end_around(Index idx) const {
  const NodeState& self = states_[idx];
  const double cs = carrier_sense_range();
  SimTime latest = sim_.now();
  if (cfg_.use_spatial_grid) {
    for (Index other : transmitting_) {
      if (other == idx) continue;
      const NodeState& st = states_[other];
      if (distance(self.pos, st.pos) <= cs) latest = std::max(latest, st.tx_end);
    }
    return latest;
  }
  // Brute-force reference: full registration-order scan with the historical
  // per-node hash lookup (see candidates_near).
  for (Index other = 0; other < states_.size(); ++other) {
    if (other == idx) continue;
    const NodeState& st = states_[index_of_.find(states_[other].id)->second];
    if (st.transmitting && distance(self.pos, st.pos) <= cs) {
      latest = std::max(latest, st.tx_end);
    }
  }
  return latest;
}

SimTime RadioMedium::random_backoff() {
  const auto slots = rng_.uniform_int(0, cfg_.max_backoff_slots - 1);
  return cfg_.backoff_slot * static_cast<double>(slots);
}

SimTime RadioMedium::access_delay(const NodeState& st) {
  // Control frames (acks) contend with a shorter inter-frame space and a
  // small backoff window, like MAC control traffic.
  const bool control = !st.os_queue.empty() && st.os_queue.front().control;
  if (control) {
    return 0.5 * cfg_.difs + cfg_.backoff_slot *
                                 static_cast<double>(rng_.uniform_int(0, 7));
  }
  return cfg_.difs + random_backoff();
}

void RadioMedium::maybe_schedule_attempt(Index idx, SimTime extra_delay) {
  NodeState& st = states_[idx];
  if (st.attempt_scheduled || st.transmitting || st.os_queue.empty() ||
      !st.enabled) {
    return;
  }
  st.attempt_scheduled = true;
  sim_.schedule(extra_delay + access_delay(st),
                [this, idx] { attempt_transmission(idx); });
}

void RadioMedium::attempt_transmission(Index idx) {
  NodeState& st = states_[idx];
  st.attempt_scheduled = false;
  if (!st.enabled || st.transmitting || st.os_queue.empty()) return;
  if (medium_busy_around(idx)) {
    // Defer: retry after the sensed busy period plus fresh backoff.
    const SimTime wait = busy_end_around(idx) - sim_.now();
    PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), st.id, "radio", "defer",
                      {"wait_us", wait.as_micros()});
    st.attempt_scheduled = true;
    sim_.schedule(wait + access_delay(st),
                  [this, idx] { attempt_transmission(idx); });
    return;
  }
  start_transmission(idx);
}

void RadioMedium::start_transmission(Index idx) {
  NodeState& st = states_[idx];
  Frame frame = std::move(st.os_queue.front());
  st.os_queue.pop_front();
  PDS_ENSURE(st.os_bytes >= frame.size_bytes);
  st.os_bytes -= frame.size_bytes;

  const SimTime airtime = transmission_time(frame.size_bytes, cfg_.mac_rate_bps);
  st.transmitting = true;
  st.tx_end = sim_.now() + airtime;
  st.activity.tx_airtime += airtime;
  transmitting_.push_back(idx);

  ++stats_.frames_transmitted;
  stats_.bytes_transmitted += frame.size_bytes;
  PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), st.id, "radio", "tx",
                    {"bytes", frame.size_bytes},
                    {"control", static_cast<std::int64_t>(frame.control)});
  if (tx_observer_) tx_observer_(st.id, frame);

  const std::uint64_t tx_seq = next_tx_seq_++;

  std::vector<Index> receivers;
  for (Index ridx : candidates_near(idx, st.pos, interference_range())) {
    NodeState& rx = states_[ridx];
    if (!rx.enabled) continue;
    const double new_dist = distance(st.pos, rx.pos);
    if (new_dist > interference_range()) continue;
    const bool decodable = new_dist <= cfg_.range_m;
    if (rx.transmitting) {
      // Half-duplex: a busy transmitter cannot decode incoming frames.
      if (decodable) ++stats_.losses_half_duplex;
      continue;
    }
    // Overlapping receptions interfere; a frame survives only if its
    // transmitter is decisively closer than the competing one (physical
    // capture). Hidden terminals — senders out of each other's carrier-sense
    // range whose signals meet at this receiver, possibly too weak to decode
    // but strong enough to corrupt — are what make multi-hop floods lossy.
    if (decodable) rx.activity.rx_airtime += airtime;
    Reception incoming{.tx_seq = tx_seq,
                       .sender_distance = new_dist,
                       .corrupted = false,
                       .decodable = decodable};
    for (Reception& ongoing : rx.receptions) {
      if (new_dist > ongoing.sender_distance * cfg_.capture_ratio) {
        incoming.corrupted = true;
      }
      if (ongoing.sender_distance > new_dist * cfg_.capture_ratio) {
        ongoing.corrupted = true;
      }
    }
    rx.receptions.push_back(incoming);
    receivers.push_back(ridx);
  }

  // One completion event per transmission, iterating receivers in candidate
  // (registration) order — the same per-receiver sequence the historical
  // per-receiver events produced, since those carried consecutive sequence
  // numbers at the identical timestamp.
  if (!receivers.empty()) {
    sim_.schedule_at(
        st.tx_end,
        [this, recv = std::move(receivers), fr = std::move(frame), tx_seq] {
          for (Index ridx : recv) finish_reception(ridx, tx_seq, fr);
        });
  }

  sim_.schedule_at(st.tx_end, [this, idx] { finish_transmission(idx); });
}

void RadioMedium::finish_transmission(Index idx) {
  NodeState& sender = states_[idx];
  sender.transmitting = false;
  auto it = std::find(transmitting_.begin(), transmitting_.end(), idx);
  PDS_ENSURE(it != transmitting_.end());
  *it = transmitting_.back();
  transmitting_.pop_back();
  maybe_schedule_attempt(idx, SimTime::zero());
}

void RadioMedium::finish_reception(Index ridx, std::uint64_t tx_seq,
                                   const Frame& frame) {
  NodeState& rx = states_[ridx];
  auto it = std::find_if(rx.receptions.begin(), rx.receptions.end(),
                         [tx_seq](const Reception& r) {
                           return r.tx_seq == tx_seq;
                         });
  if (it == rx.receptions.end()) return;  // node left mid-frame
  const Reception rec = *it;
  rx.receptions.erase(it);

  if (!rx.enabled || !rec.decodable) return;
  if (rec.corrupted) {
    ++stats_.losses_collision;
    PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), rx.id, "radio", "collision",
                      {"bytes", frame.size_bytes});
    return;
  }
  // Scripted per-pair override (partition / degraded link) replaces the
  // noise/burst draw for this sender–receiver pair. A hard partition edge
  // (loss >= 1) drops without consuming randomness so the RNG stream stays
  // aligned across schedules that only differ in partitioned pairs.
  if (!pair_loss_.empty()) {
    if (auto it = pair_loss_.find(pair_key(frame.sender, rx.id));
        it != pair_loss_.end()) {
      if (it->second >= 1.0 || rng_.bernoulli(it->second)) {
        ++stats_.losses_fault;
        return;
      }
      ++stats_.deliveries;
      rx.sink->on_frame(frame);
      return;
    }
  }
  if (rx.burst_enabled) {
    // Gilbert–Elliott channel: advance the two-state chain once per
    // decodable frame, then draw from the current state's loss rate.
    if (rx.burst_bad) {
      if (rng_.bernoulli(rx.burst.p_bad_to_good)) rx.burst_bad = false;
    } else {
      if (rng_.bernoulli(rx.burst.p_good_to_bad)) rx.burst_bad = true;
    }
    const double p = rx.burst_bad ? rx.burst.loss_bad : rx.burst.loss_good;
    if (rng_.bernoulli(p)) {
      ++stats_.losses_burst;
      return;
    }
    ++stats_.deliveries;
    rx.sink->on_frame(frame);
    return;
  }
  if (rng_.bernoulli(cfg_.loss_probability)) {
    ++stats_.losses_noise;
    return;
  }
  ++stats_.deliveries;
  rx.sink->on_frame(frame);
}

void RadioMedium::register_metrics(obs::MetricsRegistry& registry,
                                   const std::string& prefix) const {
  registry.expose_counter(prefix + "frames_offered", &stats_.frames_offered);
  registry.expose_counter(prefix + "os_buffer_drops", &stats_.os_buffer_drops);
  registry.expose_counter(prefix + "frames_transmitted",
                          &stats_.frames_transmitted);
  registry.expose_counter(prefix + "bytes_transmitted",
                          &stats_.bytes_transmitted);
  registry.expose_counter(prefix + "deliveries", &stats_.deliveries);
  registry.expose_counter(prefix + "losses_collision",
                          &stats_.losses_collision);
  registry.expose_counter(prefix + "losses_noise", &stats_.losses_noise);
  registry.expose_counter(prefix + "losses_half_duplex",
                          &stats_.losses_half_duplex);
  registry.expose_counter(prefix + "losses_fault", &stats_.losses_fault);
  registry.expose_counter(prefix + "losses_burst", &stats_.losses_burst);
}

}  // namespace pds::sim
