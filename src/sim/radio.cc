#include "sim/radio.h"

#include <algorithm>

#include "common/assert.h"

namespace pds::sim {

RadioConfig contended_radio_profile() {
  return RadioConfig{};  // defaults: interference ring at 1.5× range
}

RadioConfig clean_radio_profile() {
  RadioConfig cfg;
  cfg.interference_range_m = cfg.range_m;  // no corruption beyond decode range
  return cfg;
}

RadioMedium::RadioMedium(Simulator& sim, RadioConfig cfg)
    : sim_(sim), cfg_(cfg), rng_(sim.rng().fork()) {
  // A nonzero explicit range with default interference keeps the 1.5× rule;
  // profiles that pin interference to the decode range must track range_m.
  if (cfg_.interference_range_m > 0.0 &&
      cfg_.interference_range_m < cfg_.range_m) {
    cfg_.interference_range_m = cfg_.range_m;
  }
}

void RadioMedium::add_node(NodeId id, FrameSink& sink, Vec2 pos,
                           bool enabled) {
  PDS_ENSURE(!nodes_.contains(id));
  NodeState state;
  state.sink = &sink;
  state.pos = pos;
  state.enabled = enabled;
  nodes_.emplace(id, std::move(state));
  node_order_.push_back(id);
}

RadioMedium::NodeState& RadioMedium::state_of(NodeId id) {
  auto it = nodes_.find(id);
  PDS_ENSURE(it != nodes_.end());
  return it->second;
}

const RadioMedium::NodeState& RadioMedium::state_of(NodeId id) const {
  auto it = nodes_.find(id);
  PDS_ENSURE(it != nodes_.end());
  return it->second;
}

void RadioMedium::set_position(NodeId id, Vec2 pos) { state_of(id).pos = pos; }

void RadioMedium::set_enabled(NodeId id, bool enabled) {
  NodeState& st = state_of(id);
  if (st.enabled == enabled) return;
  st.enabled = enabled;
  if (!enabled) {
    // Radio off: pending sends and in-flight receptions are gone. An ongoing
    // transmission is allowed to finish (the tail of the frame is already on
    // the air as far as other nodes can tell).
    st.os_queue.clear();
    st.os_bytes = 0;
    st.receptions.clear();
  } else if (!st.os_queue.empty()) {
    maybe_schedule_attempt(id, SimTime::zero());
  }
}

bool RadioMedium::is_enabled(NodeId id) const { return state_of(id).enabled; }

Vec2 RadioMedium::position(NodeId id) const { return state_of(id).pos; }

bool RadioMedium::in_range(const NodeState& a, const NodeState& b) const {
  return distance(a.pos, b.pos) <= cfg_.range_m;
}

bool RadioMedium::send(NodeId sender, Frame frame) {
  ++stats_.frames_offered;
  NodeState& st = state_of(sender);
  if (!st.enabled) return false;
  if (st.os_bytes + frame.size_bytes > cfg_.os_buffer_bytes) {
    ++stats_.os_buffer_drops;
    return false;
  }
  st.os_bytes += frame.size_bytes;
  if (frame.control) {
    st.os_queue.push_front(std::move(frame));  // control frames jump the queue
  } else {
    st.os_queue.push_back(std::move(frame));
  }
  maybe_schedule_attempt(sender, SimTime::zero());
  return true;
}

std::vector<NodeId> RadioMedium::neighbors(NodeId id) const {
  const NodeState& self = state_of(id);
  std::vector<NodeId> out;
  for (NodeId other : node_order_) {
    if (other == id) continue;
    const NodeState& st = state_of(other);
    if (st.enabled && self.enabled && in_range(self, st)) out.push_back(other);
  }
  return out;
}

std::size_t RadioMedium::os_backlog_bytes(NodeId id) const {
  return state_of(id).os_bytes;
}

const RadioActivity& RadioMedium::activity(NodeId id) const {
  return state_of(id).activity;
}

double RadioMedium::energy_joules(NodeId id, SimTime elapsed) const {
  const RadioActivity& a = state_of(id).activity;
  return cfg_.idle_power_w * elapsed.as_seconds() +
         (cfg_.tx_power_w - cfg_.idle_power_w) * a.tx_airtime.as_seconds() +
         (cfg_.rx_power_w - cfg_.idle_power_w) * a.rx_airtime.as_seconds();
}

double RadioMedium::total_energy_joules(SimTime elapsed) const {
  double sum = 0.0;
  for (NodeId id : node_order_) sum += energy_joules(id, elapsed);
  return sum;
}

bool RadioMedium::medium_busy_around(NodeId id) const {
  const NodeState& self = state_of(id);
  const double cs = carrier_sense_range();
  for (NodeId other : node_order_) {
    if (other == id) continue;
    const NodeState& st = state_of(other);
    if (st.transmitting && distance(self.pos, st.pos) <= cs) return true;
  }
  return false;
}

SimTime RadioMedium::busy_end_around(NodeId id) const {
  const NodeState& self = state_of(id);
  const double cs = carrier_sense_range();
  SimTime latest = sim_.now();
  for (NodeId other : node_order_) {
    if (other == id) continue;
    const NodeState& st = state_of(other);
    if (st.transmitting && distance(self.pos, st.pos) <= cs) {
      latest = std::max(latest, st.tx_end);
    }
  }
  return latest;
}

SimTime RadioMedium::random_backoff() {
  const auto slots = rng_.uniform_int(0, cfg_.max_backoff_slots - 1);
  return cfg_.backoff_slot * static_cast<double>(slots);
}

SimTime RadioMedium::access_delay(const NodeState& st) {
  // Control frames (acks) contend with a shorter inter-frame space and a
  // small backoff window, like MAC control traffic.
  const bool control = !st.os_queue.empty() && st.os_queue.front().control;
  if (control) {
    return 0.5 * cfg_.difs + cfg_.backoff_slot *
                                 static_cast<double>(rng_.uniform_int(0, 7));
  }
  return cfg_.difs + random_backoff();
}

void RadioMedium::maybe_schedule_attempt(NodeId id, SimTime extra_delay) {
  NodeState& st = state_of(id);
  if (st.attempt_scheduled || st.transmitting || st.os_queue.empty() ||
      !st.enabled) {
    return;
  }
  st.attempt_scheduled = true;
  sim_.schedule(extra_delay + access_delay(st),
                [this, id] { attempt_transmission(id); });
}

void RadioMedium::attempt_transmission(NodeId id) {
  NodeState& st = state_of(id);
  st.attempt_scheduled = false;
  if (!st.enabled || st.transmitting || st.os_queue.empty()) return;
  if (medium_busy_around(id)) {
    // Defer: retry after the sensed busy period plus fresh backoff.
    const SimTime wait = busy_end_around(id) - sim_.now();
    st.attempt_scheduled = true;
    sim_.schedule(wait + access_delay(st),
                  [this, id] { attempt_transmission(id); });
    return;
  }
  start_transmission(id);
}

void RadioMedium::start_transmission(NodeId id) {
  NodeState& st = state_of(id);
  Frame frame = std::move(st.os_queue.front());
  st.os_queue.pop_front();
  PDS_ENSURE(st.os_bytes >= frame.size_bytes);
  st.os_bytes -= frame.size_bytes;

  const SimTime airtime = transmission_time(frame.size_bytes, cfg_.mac_rate_bps);
  st.transmitting = true;
  st.tx_end = sim_.now() + airtime;
  st.activity.tx_airtime += airtime;

  ++stats_.frames_transmitted;
  stats_.bytes_transmitted += frame.size_bytes;
  if (tx_observer_) tx_observer_(id, frame);

  const std::uint64_t tx_seq = next_tx_seq_++;

  for (NodeId other : node_order_) {
    if (other == id) continue;
    NodeState& rx = state_of(other);
    if (!rx.enabled) continue;
    const double new_dist = distance(st.pos, rx.pos);
    if (new_dist > interference_range()) continue;
    const bool decodable = new_dist <= cfg_.range_m;
    if (rx.transmitting) {
      // Half-duplex: a busy transmitter cannot decode incoming frames.
      if (decodable) ++stats_.losses_half_duplex;
      continue;
    }
    // Overlapping receptions interfere; a frame survives only if its
    // transmitter is decisively closer than the competing one (physical
    // capture). Hidden terminals — senders out of each other's carrier-sense
    // range whose signals meet at this receiver, possibly too weak to decode
    // but strong enough to corrupt — are what make multi-hop floods lossy.
    if (decodable) rx.activity.rx_airtime += airtime;
    Reception incoming{.tx_seq = tx_seq,
                       .frame = frame,
                       .sender_distance = new_dist,
                       .corrupted = false,
                       .decodable = decodable};
    for (Reception& ongoing : rx.receptions) {
      if (new_dist > ongoing.sender_distance * cfg_.capture_ratio) {
        incoming.corrupted = true;
      }
      if (ongoing.sender_distance > new_dist * cfg_.capture_ratio) {
        ongoing.corrupted = true;
      }
    }
    rx.receptions.push_back(std::move(incoming));
    sim_.schedule_at(st.tx_end,
                     [this, other, tx_seq] { finish_reception(other, tx_seq); });
  }

  sim_.schedule_at(st.tx_end, [this, id] {
    NodeState& sender = state_of(id);
    sender.transmitting = false;
    maybe_schedule_attempt(id, SimTime::zero());
  });
}

void RadioMedium::finish_reception(NodeId receiver, std::uint64_t tx_seq) {
  NodeState& rx = state_of(receiver);
  auto it = std::find_if(rx.receptions.begin(), rx.receptions.end(),
                         [tx_seq](const Reception& r) {
                           return r.tx_seq == tx_seq;
                         });
  if (it == rx.receptions.end()) return;  // node left mid-frame
  Reception rec = std::move(*it);
  rx.receptions.erase(it);

  if (!rx.enabled || !rec.decodable) return;
  if (rec.corrupted) {
    ++stats_.losses_collision;
    return;
  }
  if (rng_.bernoulli(cfg_.loss_probability)) {
    ++stats_.losses_noise;
    return;
  }
  ++stats_.deliveries;
  rx.sink->on_frame(rec.frame);
}

}  // namespace pds::sim
