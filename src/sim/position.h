// 2-D positions for node placement and mobility.
#pragma once

#include <cmath>
#include <ostream>

namespace pds::sim {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Vec2 operator+(Vec2 a, Vec2 b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Vec2 operator-(Vec2 a, Vec2 b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr bool operator==(Vec2 a, Vec2 b) = default;

  friend std::ostream& operator<<(std::ostream& os, Vec2 v) {
    return os << "(" << v.x << ", " << v.y << ")";
  }
};

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace pds::sim
