#include "sim/event_queue.h"

#include "common/assert.h"

namespace pds::sim {

EventQueue::EventId EventQueue::push(SimTime at, Action action) {
  const EventId id = next_seq_;
  heap_.push(Entry{.at = at, .seq = next_seq_, .id = id});
  ++next_seq_;
  actions_.emplace(id, std::move(action));
  ++live_count_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (actions_.erase(id) > 0) --live_count_;
}

void EventQueue::skip_dead() {
  while (!heap_.empty() && !actions_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  auto* self = const_cast<EventQueue*>(this);
  self->skip_dead();
  PDS_ENSURE(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Popped EventQueue::pop() {
  skip_dead();
  PDS_ENSURE(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  auto it = actions_.find(top.id);
  PDS_ENSURE(it != actions_.end());
  Popped out{.at = top.at, .action = std::move(it->second)};
  actions_.erase(it);
  --live_count_;
  return out;
}

}  // namespace pds::sim
