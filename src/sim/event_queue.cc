#include "sim/event_queue.h"

#include <algorithm>

#include "common/assert.h"

namespace pds::sim {

namespace {
// Simulations schedule thousands of events before draining; pre-sizing the
// heap and the live-id set keeps the hottest structure in the simulator out
// of the allocator during warm-up.
constexpr std::size_t kInitialCapacity = 1024;
}  // namespace

EventQueue::EventQueue() {
  heap_.reserve(kInitialCapacity);
  live_.reserve(kInitialCapacity);
}

EventQueue::EventId EventQueue::push(SimTime at, Action action) {
  const EventId id = next_seq_;
  heap_.push_back(
      Entry{.at = at, .seq = next_seq_, .id = id, .action = std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++next_seq_;
  live_.insert(id);
  ++live_count_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (live_.erase(id) > 0) --live_count_;
}

void EventQueue::skip_dead() {
  while (!heap_.empty() && !live_.contains(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() const {
  auto* self = const_cast<EventQueue*>(this);
  self->skip_dead();
  PDS_ENSURE(!heap_.empty());
  return heap_.front().at;
}

EventQueue::Popped EventQueue::pop() {
  // One hash probe per entry: the erase() below both detects cancelled
  // entries (skipping them) and retires live ones.
  while (true) {
    PDS_ENSURE(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry top = std::move(heap_.back());
    heap_.pop_back();
    if (live_.erase(top.id) == 0) continue;  // cancelled
    --live_count_;
    return Popped{.at = top.at, .action = std::move(top.action)};
  }
}

}  // namespace pds::sim
