#include "sim/event_queue.h"

#include <algorithm>

#include "common/assert.h"

namespace pds::sim {

namespace {
// Simulations schedule thousands of events before draining; pre-sizing the
// hottest structures keeps the scheduler out of the allocator during
// warm-up.
constexpr std::size_t kInitialCapacity = 1024;
}  // namespace

EventQueue::EventQueue(SchedulerKind kind) : kind_(kind) {
  if (kind_ == SchedulerKind::kHeap) {
    heap_.heap.reserve(kInitialCapacity);
    heap_.live.reserve(kInitialCapacity);
  } else {
    cal_.slots.reserve(kInitialCapacity);
    cal_.buckets.resize(CalendarImpl::kBuckets);
  }
}

// -- Heap oracle -------------------------------------------------------------

void EventQueue::HeapImpl::skip_dead() {
  while (!heap.empty() && !live.contains(heap.front().id)) {
    std::pop_heap(heap.begin(), heap.end(), Later{});
    heap.pop_back();
  }
}

// -- Calendar queue ----------------------------------------------------------

std::uint32_t EventQueue::CalendarImpl::alloc_slot() {
  if (!free_slots.empty()) {
    const std::uint32_t idx = free_slots.back();
    free_slots.pop_back();
    return idx;
  }
  slots.emplace_back();
  return static_cast<std::uint32_t>(slots.size() - 1);
}

void EventQueue::CalendarImpl::retire_slot(std::uint32_t idx) {
  Slot& s = slots[idx];
  s.action.reset();
  ++s.gen;  // stale EventIds can never touch the slot's next tenant
  free_slots.push_back(idx);
}

void EventQueue::CalendarImpl::bucket_insert(std::vector<Ref>& bucket,
                                             Ref r) {
  // Descending (at, seq): the bucket minimum lives at the back, so popping
  // it is pop_back. Buckets are a few entries deep by construction (width is
  // tuned below the typical event gap), so a backward linear scan beats a
  // branchy binary search and the insert's memmove is small.
  auto it = bucket.end();
  while (it != bucket.begin() && later(r, *std::prev(it))) --it;
  bucket.insert(it, r);
}

void EventQueue::CalendarImpl::overflow_push(Ref r) {
  overflow.push_back(r);
  std::push_heap(overflow.begin(), overflow.end(), later);
}

EventQueue::CalendarImpl::Ref EventQueue::CalendarImpl::overflow_pop_top() {
  std::pop_heap(overflow.begin(), overflow.end(), later);
  const Ref r = overflow.back();
  overflow.pop_back();
  return r;
}

void EventQueue::CalendarImpl::prune_overflow_top() {
  while (!overflow.empty() && !slots[overflow.front().idx].live) {
    retire_slot(overflow_pop_top().idx);
  }
}

void EventQueue::CalendarImpl::advance_window_to(SimTime at) {
  window_start_abs = abs_bucket(at);
  window_set = true;
  cur = 0;
  cached.valid = false;
  // Entries already in the ring need no touch-up: a bucket's position is
  // abs & mask, which is lap-independent — relocating the window simply
  // reinterprets which laps are current. Only the overflow heap must hand
  // over the entries the new window now covers.
  prune_overflow_top();
  while (!overflow.empty() && in_window(abs_bucket(overflow.front().at))) {
    const Ref r = overflow_pop_top();
    slots[r.idx].in_ring = true;
    ++ring_live;
    bucket_insert(ring_at(abs_bucket(r.at)), r);
    prune_overflow_top();
  }
}

void EventQueue::CalendarImpl::slide_window_to_cursor() {
  // Drop the consumed buckets behind the cursor: advancing the window start
  // to the cursor's bucket restores push headroom ahead of `cur` without
  // touching ring entries (positions are lap-independent, exactly as in
  // advance_window_to). Without this, pushes targeting the last fraction of
  // the lap detour through the overflow heap only to be drained right back
  // into the ring when the window finally relocates.
  window_start_abs += static_cast<std::int64_t>(cur);
  cur = 0;
  prune_overflow_top();
  while (!overflow.empty() && in_window(abs_bucket(overflow.front().at))) {
    const Ref r = overflow_pop_top();
    slots[r.idx].in_ring = true;
    ++ring_live;
    bucket_insert(ring_at(abs_bucket(r.at)), r);
    prune_overflow_top();
  }
}

const EventQueue::CalendarImpl::Min& EventQueue::CalendarImpl::find_min() {
  if (cached.valid) return cached;
  if (cur >= kBuckets / 2) slide_window_to_cursor();

  // In-window ring candidate: first bucket at or after the cursor whose live
  // minimum belongs to the current window lap.
  bool have_ring = false;
  if (ring_live > 0) {
    for (std::size_t off = cur; off < kBuckets; ++off) {
      auto& bucket = ring_at(window_start_abs + static_cast<std::int64_t>(off));
      while (!bucket.empty() && !slots[bucket.back().idx].live) {
        retire_slot(bucket.back().idx);
        bucket.pop_back();
      }
      if (bucket.empty()) continue;
      const Ref& r = bucket.back();
      // The bucket minimum may belong to a future lap (ring positions alias
      // every kBuckets * width of simulated time); such a bucket holds no
      // current-window entries at all — later laps sort later in the
      // descending order, i.e. the whole bucket is future — skip it.
      if (!in_window(abs_bucket(r.at))) continue;
      cur = off;
      cached = Min{.valid = true,
                   .far = false,
                   .offset = off,
                   .at = r.at,
                   .seq = r.seq};
      have_ring = true;
      break;
    }
  }

  // No in-window candidate but live ring entries remain: they all sit on
  // future laps (a later push or pop re-anchored the window below entries
  // already in the ring). Full sweep for the earliest bucket minimum;
  // pop() relocates the window there. An in-window candidate, when one
  // exists, always precedes every future-lap entry (their times lie beyond
  // the window's end), so the sweep is only needed on this path.
  if (!have_ring && ring_live > 0) {
    bool found = false;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      auto& bucket = buckets[b];
      while (!bucket.empty() && !slots[bucket.back().idx].live) {
        retire_slot(bucket.back().idx);
        bucket.pop_back();
      }
      if (bucket.empty()) continue;
      const Ref& r = bucket.back();
      if (!found || r.at < cached.at ||
          (r.at == cached.at && r.seq < cached.seq)) {
        cached = Min{.valid = true,
                     .far = true,
                     .offset = 0,
                     .at = r.at,
                     .seq = r.seq};
        found = true;
      }
    }
    have_ring = found;
  }

  // Overflow candidate (always outside the window by construction); may
  // precede or follow a future-lap ring candidate, so compare explicitly.
  prune_overflow_top();
  if (!overflow.empty()) {
    const Ref& top = overflow.front();
    if (!have_ring || top.at < cached.at ||
        (top.at == cached.at && top.seq < cached.seq)) {
      cached = Min{.valid = true,
                   .far = true,
                   .offset = 0,
                   .at = top.at,
                   .seq = top.seq};
    }
    return cached;
  }
  PDS_ENSURE(have_ring);
  return cached;
}

// -- Public API --------------------------------------------------------------

EventQueue::EventId EventQueue::push(SimTime at, Action action) {
  if (kind_ == SchedulerKind::kHeap) {
    const EventId id = next_seq_;
    heap_.heap.push_back(HeapImpl::Entry{
        .at = at, .seq = next_seq_, .id = id, .action = std::move(action)});
    std::push_heap(heap_.heap.begin(), heap_.heap.end(), HeapImpl::Later{});
    ++next_seq_;
    heap_.live.insert(id);
    ++live_count_;
    return id;
  }

  const std::uint32_t idx = cal_.alloc_slot();
  CalendarImpl::Slot& s = cal_.slots[idx];
  s.at = at;
  s.seq = next_seq_++;
  s.live = true;
  s.action = std::move(action);
  const EventId id = (static_cast<std::uint64_t>(s.gen) << 32) | idx;
  const CalendarImpl::Ref ref{.at = at, .seq = s.seq, .idx = idx};

  const std::int64_t abs = CalendarImpl::abs_bucket(at);
  if (live_count_ == 0 || !cal_.window_set) {
    // (Re-)anchor an empty queue's window at the incoming event so dense
    // near-future activity lands in the ring from the first push.
    cal_.window_start_abs = abs;
    cal_.window_set = true;
    cal_.cur = 0;
  }
  if (cal_.in_window(abs)) {
    s.in_ring = true;
    ++cal_.ring_live;
    cal_.bucket_insert(cal_.ring_at(abs), ref);
    const auto off = static_cast<std::size_t>(abs - cal_.window_start_abs);
    if (off < cal_.cur) cal_.cur = off;
  } else {
    s.in_ring = false;
    cal_.overflow_push(ref);
  }
  // Inserting an entry at or after the cached minimum cannot change the
  // minimum (equal times lose the seq tie-break to the incumbent), so the
  // cache — and with it the next pop's scan — survives most pushes.
  if (cal_.cached.valid && at < cal_.cached.at) cal_.cached.valid = false;
  ++live_count_;
  return id;
}

void EventQueue::cancel(EventId id) {
  if (kind_ == SchedulerKind::kHeap) {
    if (heap_.live.erase(id) > 0) --live_count_;
    return;
  }
  const auto idx = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= cal_.slots.size()) return;
  CalendarImpl::Slot& s = cal_.slots[idx];
  if (!s.live || s.gen != gen) return;  // already fired/cancelled/recycled
  s.live = false;
  if (s.in_ring) {
    // Eager removal — the structural edge over the heap's lazy deletion.
    // The entry's bucket is position-stable (abs & mask is lap-independent)
    // and a few entries deep, so erasing it is a small memmove; the slot
    // recycles immediately and no dead entry is left for find_min to probe.
    auto& bucket = cal_.ring_at(CalendarImpl::abs_bucket(s.at));
    for (auto it = bucket.begin(); it != bucket.end(); ++it) {
      if (it->idx == idx) {
        bucket.erase(it);
        break;
      }
    }
    --cal_.ring_live;
    cal_.retire_slot(idx);
  } else {
    // Overflow entries prune lazily (heap middle-erase is O(n)); cancels of
    // far-future events are rare.
    s.action.reset();
  }
  --live_count_;
  // Removing anything but the minimum leaves the minimum in place; seq is
  // unique, so it identifies the cached entry exactly.
  if (cal_.cached.valid && s.seq == cal_.cached.seq) cal_.cached.valid = false;
}

SimTime EventQueue::next_time() const {
  if (kind_ == SchedulerKind::kHeap) {
    heap_.skip_dead();
    PDS_ENSURE(!heap_.heap.empty());
    return heap_.heap.front().at;
  }
  PDS_ENSURE(live_count_ > 0);
  return cal_.find_min().at;
}

EventQueue::Popped EventQueue::pop() {
  if (kind_ == SchedulerKind::kHeap) {
    // One hash probe per entry: the erase() below both detects cancelled
    // entries (skipping them) and retires live ones.
    while (true) {
      PDS_ENSURE(!heap_.heap.empty());
      std::pop_heap(heap_.heap.begin(), heap_.heap.end(), HeapImpl::Later{});
      HeapImpl::Entry top = std::move(heap_.heap.back());
      heap_.heap.pop_back();
      if (heap_.live.erase(top.id) == 0) continue;  // cancelled
      --live_count_;
      return Popped{.at = top.at, .action = std::move(top.action)};
    }
  }

  PDS_ENSURE(live_count_ > 0);
  const CalendarImpl::Min* m = &cal_.find_min();
  if (m->far) {
    // The minimum lives outside the current window (overflow, or a future
    // ring lap): relocate the window to its bucket and look again.
    cal_.advance_window_to(m->at);
    m = &cal_.find_min();
    PDS_ENSURE(!m->far);
  }
  const std::size_t off = m->offset;
  auto& bucket =
      cal_.ring_at(cal_.window_start_abs + static_cast<std::int64_t>(off));
  const std::uint32_t idx = bucket.back().idx;
  bucket.pop_back();
  CalendarImpl::Slot& s = cal_.slots[idx];
  Popped out{.at = s.at, .action = std::move(s.action)};
  s.live = false;
  --cal_.ring_live;
  cal_.retire_slot(idx);
  // If the popped bucket still holds an in-window entry, its back is the
  // next global minimum: buckets below the cursor are exhausted, later
  // in-window buckets hold strictly later times, and overflow/future-lap
  // entries lie beyond the window's end. Refill the cache in place and the
  // next pop skips its scan.
  if (!bucket.empty() &&
      cal_.in_window(CalendarImpl::abs_bucket(bucket.back().at))) {
    cal_.cached = CalendarImpl::Min{.valid = true,
                                    .far = false,
                                    .offset = off,
                                    .at = bucket.back().at,
                                    .seq = bucket.back().seq};
  } else {
    cal_.cached.valid = false;
  }
  --live_count_;
  return out;
}

}  // namespace pds::sim
