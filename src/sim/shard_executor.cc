#include "sim/shard_executor.h"

#include "common/assert.h"

namespace pds::sim {

ShardExecutor::ShardExecutor(int threads) : shards_(threads) {
  PDS_ENSURE(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int w = 1; w < threads; ++w) {
    workers_.emplace_back(
        [this, w] { worker_loop(static_cast<std::size_t>(w)); });
  }
}

ShardExecutor::~ShardExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ShardExecutor::run(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  const auto total = static_cast<std::size_t>(shards_);
  if (total == 1 || n == 0) {
    fn(0, n, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_n_ = n;
    job_ = &fn;
    pending_ = total - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  // Shard 0 runs inline on the simulation thread.
  fn(0, n / total, 0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
}

void ShardExecutor::worker_loop(std::size_t worker_index) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* job =
        nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(
          lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
      n = job_n_;
    }
    const auto total = static_cast<std::size_t>(shards_);
    const std::size_t begin = worker_index * n / total;
    const std::size_t end = (worker_index + 1) * n / total;
    (*job)(begin, end, worker_index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace pds::sim
