// Priority queue of timed events for the discrete-event simulator.
//
// Events with equal timestamps fire in insertion order (a monotone sequence
// number breaks ties) so simulations are fully deterministic.
//
// Two interchangeable implementations sit behind one API (SchedulerKind):
//
//  * kCalendar (default) — a bucketed calendar queue tuned for the sim's
//    dense near-future event distribution: a ring of fixed-width time
//    buckets covers the active window (backoffs, airtimes, protocol timers),
//    an overflow min-heap holds the far future (mobility replay, horizons).
//    Push and pop are O(1) amortized; all entries live in a recycled slot
//    pool, so a warm queue does zero per-event heap traffic.
//  * kHeap — the original binary heap (std::push_heap/pop_heap over a
//    vector plus a live-id set). Kept as the correctness oracle and the perf
//    baseline: for any sequence of push/cancel/pop both kinds return events
//    in the identical order, including equal-timestamp ties
//    (tests/scheduler_property_test.cc drives both in lockstep).
//
// EventId values are opaque: unique per push, usable with cancel() until the
// event fires, no-ops afterwards. The two kinds emit different numeric ids
// (the heap reuses the sequence number, the calendar encodes a pooled slot
// plus a generation) but identical semantics.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/inline_function.h"
#include "common/sim_time.h"

namespace pds::sim {

enum class SchedulerKind {
  kCalendar,
  kHeap,
};

class EventQueue {
 public:
  // Inline capacity covers every closure the hot paths schedule (radio
  // completion ~80 bytes, mobility replay ~40); see common/inline_function.h.
  using Action = InlineFunction<void(), 104>;

  // Token that allows cancelling a scheduled event.
  using EventId = std::uint64_t;

  explicit EventQueue(SchedulerKind kind = SchedulerKind::kCalendar);

  EventId push(SimTime at, Action action);
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] SimTime next_time() const;
  [[nodiscard]] std::size_t size() const { return live_count_; }
  [[nodiscard]] SchedulerKind kind() const { return kind_; }

  // -- Occupancy introspection (flight recorder, DESIGN.md §15) --------------
  // Read-only structural counters the sim-time sampler snapshots; none of
  // them prune dead entries or move the window, so sampling never perturbs
  // the queue. For kHeap, ring/overflow decompose as "everything is
  // overflow" so the columns stay meaningful under the oracle scheduler.
  [[nodiscard]] std::size_t ring_live() const {
    return kind_ == SchedulerKind::kCalendar ? cal_.ring_live : 0;
  }
  [[nodiscard]] std::size_t overflow_depth() const {
    return kind_ == SchedulerKind::kCalendar ? cal_.overflow.size()
                                             : heap_.heap.size();
  }
  // Entries allocated in the backing store (calendar slot pool including the
  // free list, or the heap vector including dead entries awaiting lazy
  // cleanup) — the queue's memory footprint in entries.
  [[nodiscard]] std::size_t slot_pool_size() const {
    return kind_ == SchedulerKind::kCalendar ? cal_.slots.size()
                                             : heap_.heap.size();
  }

  // Pops and returns the earliest live event. Precondition: !empty().
  struct Popped {
    SimTime at;
    Action action;
  };
  Popped pop();

 private:
  // Both implementations defer cancelled-entry cleanup to the next lookup:
  // the observable state (the multiset of live events) never changes under a
  // const call, but pruning dead entries and advancing cursors does touch
  // the containers. The impl structs are therefore `mutable` members — the
  // const-correct form of the lazy skip (no const_cast).

  // -- Binary-heap oracle (the original implementation) ----------------------
  struct HeapImpl {
    struct Entry {
      SimTime at;
      std::uint64_t seq;
      EventId id;
      Action action;
    };
    struct Later {
      bool operator()(const Entry& a, const Entry& b) const {
        if (a.at != b.at) return a.at > b.at;
        return a.seq > b.seq;
      }
    };

    // Manual binary heap (std::push_heap/pop_heap) over a pre-reserved
    // vector. Actions live inside the heap entries; `live` tracks which ids
    // are still scheduled, so the hot path costs one hash-set insert on push
    // and one erase on pop — no id->action map churn. A cancelled entry's
    // closure is only released when its entry surfaces at the top (cancels
    // are rare: protocol timers fire far more often than they are torn
    // down).
    std::vector<Entry> heap;
    std::unordered_set<EventId> live;

    void skip_dead();
  };

  // -- Calendar queue ---------------------------------------------------------
  struct CalendarImpl {
    // One pooled entry. `gen` is bumped every time the slot is recycled so a
    // stale EventId (fired or long-cancelled) can never cancel the slot's
    // next tenant.
    struct Slot {
      SimTime at;
      std::uint64_t seq = 0;
      std::uint32_t gen = 0;
      bool live = false;
      bool in_ring = false;
      Action action;
    };

    // Ring geometry: kBucketWidthUs-wide buckets, kBuckets of them. The
    // window covers ~0.5 s of simulated time — backoffs (µs), airtimes (ms)
    // and protocol timers (hundreds of ms) land in-window; far-future events
    // (round horizons, mobility replay) take the overflow heap and drain in
    // as the window slides. The shape is measured, not guessed: narrower
    // buckets keep the clusters that form around popular timer offsets
    // (every retransmission timer lands at now + retr_timeout) shallow, so
    // sorted-insert memmoves stay small, while 8192 bucket headers are few
    // enough to stay cache-resident — 16384×64 µs and 2048×512 µs both
    // measure slower on the tab_scale hold model. Buckets are sorted
    // descending by (at, seq) so the bucket minimum pops from the back.
    static constexpr std::int64_t kBucketWidthUs = 64;
    static constexpr std::size_t kBuckets = 8192;  // power of two
    static constexpr std::int64_t kMask =
        static_cast<std::int64_t>(kBuckets) - 1;

    // Ring/overflow entry: (at, seq) are denormalized out of the slot so
    // ordered inserts and heap sifts compare within the (small, contiguous)
    // bucket instead of dereferencing the slot pool — at tens of thousands
    // of pending events the pool is far larger than L2 and every probe was
    // a cache miss. Liveness stays in the slot (cancel marks it dead); the
    // copies here are immutable for the entry's lifetime.
    struct Ref {
      SimTime at;
      std::uint64_t seq = 0;
      std::uint32_t idx = 0;
    };

    std::vector<Slot> slots;
    std::vector<std::uint32_t> free_slots;
    std::vector<std::vector<Ref>> buckets;  // ring, size kBuckets
    // Overflow min-heap ordered by (at, seq).
    std::vector<Ref> overflow;
    // Absolute bucket number (at_us / width) of the window's first bucket.
    std::int64_t window_start_abs = 0;
    bool window_set = false;
    // Scan cursor: no live ring entry sits in a window offset < cur.
    std::size_t cur = 0;
    // Live entries currently in the ring (cheap "is the ring worth
    // scanning" test when the queue drains down to far-future events).
    std::size_t ring_live = 0;

    // Cached location of the current minimum, so Simulator::run's
    // next_time()+pop() pair costs one scan, not two.
    struct Min {
      bool valid = false;
      // True when the minimum lies outside the current window (overflow heap
      // or a future ring lap); pop() relocates the window before extracting.
      bool far = false;
      std::size_t offset = 0;  // window offset of the bucket holding the min
      SimTime at;
      std::uint64_t seq = 0;
    };
    Min cached;

    [[nodiscard]] static std::int64_t abs_bucket(SimTime at) {
      // Floor division (times can be negative in standalone use).
      const std::int64_t us = at.as_micros();
      return us >= 0 ? us / kBucketWidthUs
                     : -((-us + kBucketWidthUs - 1) / kBucketWidthUs);
    }
    [[nodiscard]] bool in_window(std::int64_t abs) const {
      return window_set && abs >= window_start_abs &&
             abs < window_start_abs + static_cast<std::int64_t>(kBuckets);
    }
    [[nodiscard]] std::vector<Ref>& ring_at(std::int64_t abs) {
      return buckets[static_cast<std::size_t>(
          static_cast<std::uint64_t>(abs) & static_cast<std::uint64_t>(kMask))];
    }
    // (at, seq) lexicographic "fires later" — the shared ordering of the
    // sorted buckets and the overflow heap.
    [[nodiscard]] static bool later(const Ref& a, const Ref& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }

    std::uint32_t alloc_slot();
    void retire_slot(std::uint32_t idx);
    void bucket_insert(std::vector<Ref>& bucket, Ref r);
    void overflow_push(Ref r);
    Ref overflow_pop_top();
    void prune_overflow_top();
    void advance_window_to(SimTime at);
    void slide_window_to_cursor();
    // Locates the earliest live entry (pruning dead ones met on the way) and
    // caches the location. Precondition: at least one live entry.
    const Min& find_min();
  };

  SchedulerKind kind_;
  mutable HeapImpl heap_;
  mutable CalendarImpl cal_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace pds::sim
