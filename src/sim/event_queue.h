// Priority queue of timed events for the discrete-event simulator.
//
// Events with equal timestamps fire in insertion order (a monotone sequence
// number breaks ties) so simulations are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/sim_time.h"

namespace pds::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  // Token that allows cancelling a scheduled event.
  using EventId = std::uint64_t;

  EventQueue();

  EventId push(SimTime at, Action action);
  void cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] SimTime next_time() const;
  [[nodiscard]] std::size_t size() const { return live_count_; }

  // Pops and returns the earliest live event. Precondition: !empty().
  struct Popped {
    SimTime at;
    Action action;
  };
  Popped pop();

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    EventId id;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Manual binary heap (std::push_heap/pop_heap) over a pre-reserved vector.
  // Actions live inside the heap entries; `live_` tracks which ids are still
  // scheduled, so the hot path costs one hash-set insert on push and one
  // erase on pop — no id->action map churn. A cancelled entry's closure is
  // only released when its entry surfaces at the top (cancels are rare:
  // protocol timers fire far more often than they are torn down).
  std::vector<Entry> heap_;
  std::unordered_set<EventId> live_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;

  void skip_dead();
};

}  // namespace pds::sim
