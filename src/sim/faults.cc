#include "sim/faults.h"

#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pds::sim {

namespace {

// Every FaultEvent field has a default member initializer, so builders fill
// in only what each event kind needs, starting from this base. (Plain
// designated initializers would trip -Wmissing-field-initializers.)
FaultEvent make_event(SimTime at, FaultKind kind, std::vector<NodeId> nodes) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = kind;
  ev.nodes = std::move(nodes);
  return ev;
}

}  // namespace

FaultSchedule& FaultSchedule::crash(SimTime at, NodeId node, bool wipe) {
  FaultEvent ev = make_event(at, FaultKind::kCrash, {node});
  ev.wipe_state = wipe;
  events.push_back(std::move(ev));
  return *this;
}

FaultSchedule& FaultSchedule::restart(SimTime at, NodeId node) {
  events.push_back(make_event(at, FaultKind::kRestart, {node}));
  return *this;
}

FaultSchedule& FaultSchedule::churn(SimTime leave, SimTime rejoin,
                                    NodeId node) {
  PDS_ENSURE(rejoin > leave);
  crash(leave, node, /*wipe=*/false);
  return restart(rejoin, node);
}

FaultSchedule& FaultSchedule::link_loss(SimTime at, NodeId a, NodeId b,
                                        double loss) {
  FaultEvent ev = make_event(at, FaultKind::kLinkLoss, {a});
  ev.peers = {b};
  ev.loss = loss;
  events.push_back(std::move(ev));
  return *this;
}

FaultSchedule& FaultSchedule::link_restore(SimTime at, NodeId a, NodeId b) {
  FaultEvent ev = make_event(at, FaultKind::kLinkRestore, {a});
  ev.peers = {b};
  events.push_back(std::move(ev));
  return *this;
}

FaultSchedule& FaultSchedule::partition(SimTime at, SimTime heal_at,
                                        std::vector<NodeId> side_a,
                                        std::vector<NodeId> side_b) {
  FaultEvent cut = make_event(at, FaultKind::kPartition, std::move(side_a));
  cut.peers = std::move(side_b);
  events.push_back(cut);
  if (heal_at > at) {
    cut.at = heal_at;
    cut.kind = FaultKind::kHeal;
    events.push_back(std::move(cut));
  }
  return *this;
}

FaultSchedule& FaultSchedule::burst(SimTime at, SimTime until, NodeId node,
                                    GilbertElliottParams params) {
  FaultEvent on = make_event(at, FaultKind::kBurstOn, {node});
  on.burst = params;
  events.push_back(std::move(on));
  if (until > at) {
    events.push_back(make_event(until, FaultKind::kBurstOff, {node}));
  }
  return *this;
}

FaultSchedule& FaultSchedule::buffer_storm(SimTime at, NodeId node,
                                           std::size_t bytes,
                                           std::size_t frame_bytes) {
  PDS_ENSURE(frame_bytes > 0);
  FaultEvent ev = make_event(at, FaultKind::kBufferStorm, {node});
  ev.storm_bytes = bytes;
  ev.storm_frame_bytes = frame_bytes;
  events.push_back(std::move(ev));
  return *this;
}

FaultInjector::FaultInjector(Simulator& sim, RadioMedium& medium, Hooks hooks)
    : sim_(sim),
      medium_(medium),
      hooks_(std::move(hooks)),
      storm_payload_(std::make_shared<StormPayload>()) {}

void FaultInjector::install(const FaultSchedule& schedule) {
  for (const FaultEvent& event : schedule.events) {
    sim_.schedule_at(event.at, [this, event] { apply(event); });
  }
}

void FaultInjector::apply_crash(NodeId node, bool wipe) {
  if (!crashed_.insert(node.value()).second) return;  // already down
  medium_.set_enabled(node, false);
  if (hooks_.crash) hooks_.crash(node, wipe);
  ++stats_.crashes;
  PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), node, "fault", "crash",
                    {"wipe", static_cast<std::int64_t>(wipe)});
}

void FaultInjector::apply_restart(NodeId node) {
  if (crashed_.erase(node.value()) == 0) return;  // not down
  medium_.set_enabled(node, true);
  if (hooks_.restart) hooks_.restart(node);
  ++stats_.restarts;
  PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), node, "fault", "restart", );
}

void FaultInjector::apply_storm(const FaultEvent& event, NodeId node) {
  if (is_crashed(node)) return;  // a dead node's app cannot flood its OS
  const std::size_t frames =
      (event.storm_bytes + event.storm_frame_bytes - 1) /
      event.storm_frame_bytes;
  for (std::size_t i = 0; i < frames; ++i) {
    medium_.send(node, Frame{.sender = node,
                             .size_bytes = event.storm_frame_bytes,
                             .payload = storm_payload_});
  }
  ++stats_.storms;
  stats_.storm_frames += frames;
  PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), node, "fault", "storm",
                    {"frames", frames}, {"bytes", event.storm_bytes});
}

void FaultInjector::apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kCrash:
      for (NodeId node : event.nodes) apply_crash(node, event.wipe_state);
      break;
    case FaultKind::kRestart:
      for (NodeId node : event.nodes) apply_restart(node);
      break;
    case FaultKind::kLinkLoss:
      for (NodeId a : event.nodes) {
        for (NodeId b : event.peers) {
          medium_.set_pair_loss(a, b, event.loss);
          ++stats_.links_degraded;
          PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), a, "fault",
                            "link_degrade", {"peer", b},
                            {"loss_pct", event.loss * 100.0});
        }
      }
      break;
    case FaultKind::kLinkRestore:
      for (NodeId a : event.nodes) {
        for (NodeId b : event.peers) {
          medium_.clear_pair_loss(a, b);
          ++stats_.links_restored;
          PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), a, "fault",
                            "link_restore", {"peer", b});
        }
      }
      break;
    case FaultKind::kPartition: {
      std::uint64_t pairs = 0;
      for (NodeId a : event.nodes) {
        for (NodeId b : event.peers) {
          medium_.set_pair_loss(a, b, 1.0);
          ++pairs;
        }
      }
      ++stats_.partitions;
      PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(),
                        event.nodes.empty() ? NodeId::invalid()
                                            : event.nodes.front(),
                        "fault", "partition", {"pairs", pairs});
      break;
    }
    case FaultKind::kHeal: {
      std::uint64_t pairs = 0;
      for (NodeId a : event.nodes) {
        for (NodeId b : event.peers) {
          medium_.clear_pair_loss(a, b);
          ++pairs;
        }
      }
      ++stats_.heals;
      PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(),
                        event.nodes.empty() ? NodeId::invalid()
                                            : event.nodes.front(),
                        "fault", "heal", {"pairs", pairs});
      break;
    }
    case FaultKind::kBurstOn:
      for (NodeId node : event.nodes) {
        medium_.set_burst_channel(node, event.burst);
        ++stats_.bursts_started;
        PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), node, "fault", "burst_on",
                          {"loss_bad_pct", event.burst.loss_bad * 100.0});
      }
      break;
    case FaultKind::kBurstOff:
      for (NodeId node : event.nodes) {
        medium_.clear_burst_channel(node);
        ++stats_.bursts_stopped;
        PDS_TRACE_INSTANT(sim_.tracer(), sim_.now(), node, "fault",
                          "burst_off", );
      }
      break;
    case FaultKind::kBufferStorm:
      for (NodeId node : event.nodes) apply_storm(event, node);
      break;
  }
}

void FaultInjector::register_metrics(obs::MetricsRegistry& registry,
                                     const std::string& prefix) const {
  registry.expose_counter(prefix + "crashes", &stats_.crashes);
  registry.expose_counter(prefix + "restarts", &stats_.restarts);
  registry.expose_counter(prefix + "links_degraded", &stats_.links_degraded);
  registry.expose_counter(prefix + "links_restored", &stats_.links_restored);
  registry.expose_counter(prefix + "partitions", &stats_.partitions);
  registry.expose_counter(prefix + "heals", &stats_.heals);
  registry.expose_counter(prefix + "bursts_started", &stats_.bursts_started);
  registry.expose_counter(prefix + "bursts_stopped", &stats_.bursts_stopped);
  registry.expose_counter(prefix + "storms", &stats_.storms);
  registry.expose_counter(prefix + "storm_frames", &stats_.storm_frames);
}

}  // namespace pds::sim
