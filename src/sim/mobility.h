// Trace-driven mobility (paper §VI-B.2).
//
// The paper generates mobility traces from 8 hours of human observation of
// two university locations, reduced to aggregate rates:
//
//   Student Center: 120×120 m², ~20 people present; per minute on average
//                   1 join, 1 leave, 4 within-area moves.
//   Classrooms:     20×20 m², ~30 people; 0.5 join / 0.5 leave / 0.5 move.
//
// We generate traces from exactly those rates with independent Poisson
// processes, with a frequency multiplier (×0.5–×2) as swept in Figs. 9/10/12.
//
// Moves and joins reposition a node instantaneously. People cross these areas
// in tens of seconds to minutes while the protocols under study converge in
// seconds, and the paper's own traces are event-based (join/leave/move), so
// step updates preserve the relevant dynamics: neighborhoods change, data
// leaves with departing nodes, and paths break between rounds.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "common/types.h"
#include "sim/position.h"
#include "sim/radio.h"
#include "sim/simulator.h"

namespace pds::sim {

struct MobilityParams {
  double area_width_m = 120.0;
  double area_height_m = 120.0;
  std::size_t population = 20;
  double joins_per_minute = 1.0;
  double leaves_per_minute = 1.0;
  double moves_per_minute = 4.0;
  // Scales all three event rates (the paper's ×0.5–×2 sweep).
  double frequency_multiplier = 1.0;
  SimTime duration = SimTime::minutes(10);
};

// Presets matching the paper's observed rates.
[[nodiscard]] MobilityParams student_center_params();
[[nodiscard]] MobilityParams classroom_params();

struct MobilityEvent {
  enum class Kind { kJoin, kLeave, kMove };
  SimTime at;
  Kind kind = Kind::kMove;
  NodeId node;
  Vec2 pos;  // destination for kJoin / kMove
};

struct InitialPlacement {
  NodeId node;
  Vec2 pos;
  bool present = true;
};

class MobilityTrace {
 public:
  // `pool` — all node ids that may ever appear (present + churn reserve);
  // `pinned` — nodes (consumers) that are always initially present and never
  // leave, though they may move.
  static MobilityTrace generate(const MobilityParams& params,
                                std::span<const NodeId> pool,
                                std::span<const NodeId> pinned, Rng& rng);

  [[nodiscard]] const std::vector<MobilityEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const std::vector<InitialPlacement>& initial() const {
    return initial_;
  }

  // Schedules all events against the medium: joins/leaves toggle the radio,
  // moves update positions.
  void install(Simulator& sim, RadioMedium& medium) const;

  // Text serialization, one record per line — lets generated traces be
  // saved, inspected and replayed across runs (the paper generated traces
  // offline from its observations).
  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] static MobilityTrace from_text(const std::string& text);

 private:
  std::vector<MobilityEvent> events_;
  std::vector<InitialPlacement> initial_;
};

}  // namespace pds::sim
