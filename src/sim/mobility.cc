#include "sim/mobility.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/assert.h"

namespace pds::sim {

MobilityParams student_center_params() {
  return MobilityParams{.area_width_m = 120.0,
                        .area_height_m = 120.0,
                        .population = 20,
                        .joins_per_minute = 1.0,
                        .leaves_per_minute = 1.0,
                        .moves_per_minute = 4.0};
}

MobilityParams classroom_params() {
  return MobilityParams{.area_width_m = 20.0,
                        .area_height_m = 20.0,
                        .population = 30,
                        .joins_per_minute = 0.5,
                        .leaves_per_minute = 0.5,
                        .moves_per_minute = 0.5};
}

namespace {

Vec2 random_position(const MobilityParams& p, Rng& rng) {
  return Vec2{rng.uniform(0.0, p.area_width_m),
              rng.uniform(0.0, p.area_height_m)};
}

}  // namespace

MobilityTrace MobilityTrace::generate(const MobilityParams& params,
                                      std::span<const NodeId> pool,
                                      std::span<const NodeId> pinned,
                                      Rng& rng) {
  PDS_ENSURE(pool.size() >= params.population);
  PDS_ENSURE(pinned.size() <= params.population);

  MobilityTrace trace;
  const std::unordered_set<NodeId> pinned_set(pinned.begin(), pinned.end());
  for (NodeId n : pinned)
    PDS_ENSURE(std::find(pool.begin(), pool.end(), n) != pool.end());

  // Initial placement: pinned first, then fill to `population` from the pool.
  std::vector<NodeId> present;
  std::vector<NodeId> absent;
  for (NodeId n : pool) {
    if (pinned_set.contains(n)) continue;
    (present.size() + pinned.size() < params.population ? present : absent)
        .push_back(n);
  }
  present.insert(present.end(), pinned.begin(), pinned.end());

  std::unordered_set<NodeId> present_set(present.begin(), present.end());
  for (NodeId n : pool) {
    trace.initial_.push_back(InitialPlacement{
        .node = n,
        .pos = random_position(params, rng),
        .present = present_set.contains(n)});
  }

  // Three independent Poisson processes over the duration.
  struct Process {
    MobilityEvent::Kind kind;
    double per_minute;
  };
  const double k = params.frequency_multiplier;
  const Process processes[] = {
      {MobilityEvent::Kind::kJoin, params.joins_per_minute * k},
      {MobilityEvent::Kind::kLeave, params.leaves_per_minute * k},
      {MobilityEvent::Kind::kMove, params.moves_per_minute * k},
  };
  for (const Process& proc : processes) {
    if (proc.per_minute <= 0.0) continue;
    const double mean_gap_seconds = 60.0 / proc.per_minute;
    double t = rng.exponential(mean_gap_seconds);
    while (t < params.duration.as_seconds()) {
      trace.events_.push_back(MobilityEvent{.at = SimTime::seconds(t),
                                            .kind = proc.kind,
                                            .node = NodeId::invalid(),
                                            .pos = {}});
      t += rng.exponential(mean_gap_seconds);
    }
  }
  std::sort(trace.events_.begin(), trace.events_.end(),
            [](const MobilityEvent& a, const MobilityEvent& b) {
              return a.at < b.at;
            });

  // Resolve which node each event touches by replaying presence state.
  std::vector<NodeId> in = present;
  std::vector<NodeId> out = absent;
  auto take_random = [&rng](std::vector<NodeId>& v,
                            std::size_t index) -> NodeId {
    (void)rng;
    const NodeId n = v[index];
    v[index] = v.back();
    v.pop_back();
    return n;
  };

  std::vector<MobilityEvent> resolved;
  resolved.reserve(trace.events_.size());
  for (MobilityEvent ev : trace.events_) {
    switch (ev.kind) {
      case MobilityEvent::Kind::kJoin: {
        if (out.empty()) continue;  // pool exhausted; skip this join
        const auto idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(out.size()) - 1));
        ev.node = take_random(out, idx);
        ev.pos = random_position(params, rng);
        in.push_back(ev.node);
        break;
      }
      case MobilityEvent::Kind::kLeave: {
        // Pinned nodes never leave.
        std::vector<std::size_t> candidates;
        for (std::size_t i = 0; i < in.size(); ++i) {
          if (!pinned_set.contains(in[i])) candidates.push_back(i);
        }
        if (candidates.empty()) continue;
        const auto pick = candidates[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(candidates.size()) - 1))];
        ev.node = take_random(in, pick);
        out.push_back(ev.node);
        break;
      }
      case MobilityEvent::Kind::kMove: {
        if (in.empty()) continue;
        const auto idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(in.size()) - 1));
        ev.node = in[idx];
        ev.pos = random_position(params, rng);
        break;
      }
    }
    resolved.push_back(ev);
  }
  trace.events_ = std::move(resolved);
  return trace;
}

std::string MobilityTrace::to_text() const {
  std::ostringstream os;
  os.precision(17);
  for (const InitialPlacement& p : initial_) {
    os << "init " << p.node.value() << ' ' << p.pos.x << ' ' << p.pos.y << ' '
       << (p.present ? 1 : 0) << '\n';
  }
  for (const MobilityEvent& ev : events_) {
    const char* kind = ev.kind == MobilityEvent::Kind::kJoin    ? "join"
                       : ev.kind == MobilityEvent::Kind::kLeave ? "leave"
                                                                : "move";
    os << kind << ' ' << ev.at.as_micros() << ' ' << ev.node.value() << ' '
       << ev.pos.x << ' ' << ev.pos.y << '\n';
  }
  return os.str();
}

MobilityTrace MobilityTrace::from_text(const std::string& text) {
  MobilityTrace trace;
  std::istringstream is(text);
  std::string kind;
  while (is >> kind) {
    if (kind == "init") {
      std::uint32_t node = 0;
      InitialPlacement p;
      int present = 0;
      is >> node >> p.pos.x >> p.pos.y >> present;
      p.node = NodeId(node);
      p.present = present != 0;
      trace.initial_.push_back(p);
      continue;
    }
    MobilityEvent ev;
    std::int64_t at_us = 0;
    std::uint32_t node = 0;
    is >> at_us >> node >> ev.pos.x >> ev.pos.y;
    ev.at = SimTime::micros(at_us);
    ev.node = NodeId(node);
    ev.kind = kind == "join"    ? MobilityEvent::Kind::kJoin
              : kind == "leave" ? MobilityEvent::Kind::kLeave
                                : MobilityEvent::Kind::kMove;
    PDS_ENSURE(kind == "join" || kind == "leave" || kind == "move");
    trace.events_.push_back(ev);
  }
  return trace;
}

void MobilityTrace::install(Simulator& sim, RadioMedium& medium) const {
  for (const MobilityEvent& ev : events_) {
    switch (ev.kind) {
      case MobilityEvent::Kind::kJoin:
        sim.schedule_at(ev.at, [&medium, ev] {
          medium.set_position(ev.node, ev.pos);
          medium.set_enabled(ev.node, true);
        });
        break;
      case MobilityEvent::Kind::kLeave:
        sim.schedule_at(ev.at,
                        [&medium, ev] { medium.set_enabled(ev.node, false); });
        break;
      case MobilityEvent::Kind::kMove:
        sim.schedule_at(ev.at,
                        [&medium, ev] { medium.set_position(ev.node, ev.pos); });
        break;
    }
  }
}

}  // namespace pds::sim
