#include "sim/simulator.h"

#include "common/assert.h"

namespace pds::sim {

EventQueue::EventId Simulator::schedule_at(SimTime when,
                                           EventQueue::Action action) {
  PDS_ENSURE(when >= now_);
  return queue_.push(when, std::move(action));
}

void Simulator::run(SimTime horizon) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    if (queue_.next_time() > horizon) break;
    auto [at, action] = queue_.pop();
    now_ = at;
    ++events_executed_;
    action();
  }
  if (now_ < horizon && horizon != SimTime::max()) now_ = horizon;
}

}  // namespace pds::sim
