#include "sim/simulator.h"

#include "common/assert.h"
#include "obs/profiler.h"
#include "obs/timeseries.h"

namespace pds::sim {

EventQueue::EventId Simulator::schedule_at(SimTime when,
                                           EventQueue::Action action) {
  PDS_ENSURE(when >= now_);
  return queue_.push(when, std::move(action));
}

void Simulator::run(SimTime horizon) {
  PDS_PROF_SCOPE(profiler_, "sim");
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    if (queue_.next_time() > horizon) break;
    auto [at, action] = [&] {
      PDS_PROF_SCOPE(profiler_, "scheduler");
      return queue_.pop();
    }();
    // Commit sampler rows for every interval boundary in (now_, at]: the row
    // reflects the state just before the event that crosses the boundary
    // executes. Reading state only — no scheduling, no RNG — so sampled and
    // unsampled runs stay byte-identical.
    if (sampler_ != nullptr) sampler_->advance_to(at);
    now_ = at;
    ++events_executed_;
    action();
  }
  if (now_ < horizon && horizon != SimTime::max()) now_ = horizon;
  // Boundaries between the last event and the horizon still get rows, so a
  // quiet tail keeps its (flat) trajectory instead of truncating the series.
  if (sampler_ != nullptr && horizon != SimTime::max()) {
    sampler_->advance_to(now_);
  }
}

}  // namespace pds::sim
