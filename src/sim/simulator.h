// Discrete-event simulator: virtual clock plus event queue plus root RNG.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/sim_time.h"
#include "sim/event_queue.h"

namespace pds::obs {
class Profiler;
class TimeSeries;
class Tracer;
}  // namespace pds::obs

namespace pds::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed,
                     SchedulerKind scheduler = SchedulerKind::kCalendar)
      : queue_(scheduler), rng_(seed) {
    push_sim_clock(&now_);
  }
  ~Simulator() { pop_sim_clock(); }

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  // Observability hooks: a structured-event tracer owned by the caller
  // (Scenario or test). Null means untraced; subsystems guard every emit.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_; }

  // Sim-time resource sampler (obs/timeseries.h), owned by the caller. The
  // run loop commits a row at every interval boundary the clock crosses —
  // before executing the event that crosses it, so a row reflects the state
  // "just before t". Null means unsampled; the disabled cost is one pointer
  // compare per event (gated <1% like the tracer).
  void set_sampler(obs::TimeSeries* sampler) { sampler_ = sampler; }
  [[nodiscard]] obs::TimeSeries* sampler() const { return sampler_; }

  // Scoped wall-clock profiler (obs/profiler.h), owned by the caller;
  // subsystems open PDS_PROF_SCOPE scopes against it. Wall readings never
  // feed simulation state.
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }
  [[nodiscard]] obs::Profiler* profiler() const { return profiler_; }

  // Schedule `action` to run `delay` after the current time.
  EventQueue::EventId schedule(SimTime delay, EventQueue::Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }
  EventQueue::EventId schedule_at(SimTime when, EventQueue::Action action);
  void cancel(EventQueue::EventId id) { queue_.cancel(id); }

  // Run until the queue drains, `stop()` is called, or the horizon passes.
  void run(SimTime horizon = SimTime::max());
  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }
  [[nodiscard]] SchedulerKind scheduler() const { return queue_.kind(); }
  // Read-only queue view for occupancy sampling (size, ring/overflow split).
  [[nodiscard]] const EventQueue& queue() const { return queue_; }

 private:
  SimTime now_ = SimTime::zero();
  EventQueue queue_;
  Rng rng_;
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
  obs::Tracer* tracer_ = nullptr;
  obs::TimeSeries* sampler_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
};

}  // namespace pds::sim
