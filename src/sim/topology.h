// Static node placements for the paper's grid scenarios.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "sim/position.h"

namespace pds::sim {

// nx × ny grid with the given spacing, origin at (0, 0), row-major order.
// The paper's static scenario places 100 nodes as a 10×10 grid "at proper
// neighboring distances such that each node can communicate directly with
// its 8 surrounding neighbors": with unit-disk range r, any spacing s with
// s*sqrt(2) <= r < 2s works; grid_spacing_for_range returns such an s.
[[nodiscard]] std::vector<Vec2> grid_positions(std::size_t nx, std::size_t ny,
                                               double spacing);

// Spacing that yields exactly 8-neighbor connectivity for the given range.
[[nodiscard]] double grid_spacing_for_range(double range_m);

// Index of the node closest to the grid center (the paper's consumer spot).
[[nodiscard]] std::size_t grid_center_index(std::size_t nx, std::size_t ny);

// Multi-group Wi-Fi Direct layout (paper §V/§VII, refs [21][22]): several
// single-hop groups, each a tight cluster around its group owner, chained
// left to right; one bridge device sits between each pair of adjacent
// groups, in radio range of both, providing the only inter-group
// connectivity. With unit-disk range `range_m`, members of one group all
// hear each other, members of different groups never do directly.
struct WifiDirectLayout {
  std::vector<Vec2> positions;          // owners, then members, then bridges
  std::vector<std::size_t> group_of;    // per node; bridges belong to the
                                        // lower-indexed group they span
  std::vector<std::size_t> owners;      // node index of each group owner
  std::vector<std::size_t> bridges;     // node indices of bridge devices
};

[[nodiscard]] WifiDirectLayout wifi_direct_groups(std::size_t groups,
                                                  std::size_t members_per_group,
                                                  double range_m, Rng& rng);

}  // namespace pds::sim
