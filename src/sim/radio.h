// Broadcast wireless medium.
//
// Models exactly the effects PDS's evaluation depends on, and nothing more:
//
//  * unit-disk connectivity over mobile 2-D positions;
//  * every frame is a broadcast: all in-range enabled nodes receive it unless
//    lost, which is what enables opportunistic overhearing and mixedcast;
//  * a finite per-node OS send buffer drained at the MAC broadcast rate,
//    with silent tail drop — reproduces the Android UDP send-API overflow
//    (paper §V.2: lost messages "were never transmitted");
//  * CSMA-style deferral with DIFS + random backoff; senders that start
//    within the same microsecond, and hidden terminals that cannot hear each
//    other, overlap at common receivers and corrupt each other's frames;
//  * half-duplex radios (a transmitting node cannot receive);
//  * independent per-receiver random noise loss.
//
// There is no capture effect, no rate adaptation and no exponential backoff;
// the paper's protocol recovers residual losses at the application layer
// (ack/retransmission, multi-round discovery), which is the behaviour under
// study.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "common/types.h"
#include "sim/position.h"
#include "sim/shard_executor.h"
#include "sim/simulator.h"

namespace pds::obs {
class MetricsRegistry;
}  // namespace pds::obs

namespace pds::sim {

// Base for anything carried inside a frame; the net layer derives its
// message type from this so sim stays independent of message formats.
class FramePayload {
 public:
  virtual ~FramePayload() = default;
};

struct Frame {
  NodeId sender;
  std::size_t size_bytes = 0;
  // Control frames (acks) jump the OS queue and contend with a shorter
  // inter-frame space and smaller backoff window, like MAC-level control
  // traffic; without priority, acks starve under saturation and trigger
  // spurious data retransmissions.
  bool control = false;
  std::shared_ptr<const FramePayload> payload;
};

// Receiver interface a device registers with the medium.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  // Called for every successfully received frame, whether or not this node
  // is an intended receiver (overhearing).
  virtual void on_frame(const Frame& frame) = 0;
};

struct RadioConfig {
  // Communication range (unit disk).
  double range_m = 15.0;
  // Carrier-sense range: real radios detect channel energy below the decode
  // threshold, so the sensing range exceeds the data range; transmitters
  // closer than this to each other serialize. <= 0 means "2 × range_m".
  double carrier_sense_range_m = 0.0;
  // Interference range: a signal too weak to decode still corrupts other
  // receptions out to roughly 1.5× the data range. Transmitters beyond each
  // other's carrier-sense range but within this ring of a receiver are the
  // hidden terminals that make multi-hop floods lossy (paper Fig. 4's recall
  // decline with hop count). <= 0 means "1.5 × range_m".
  double interference_range_m = 0.0;
  // MAC broadcast data rate; 802.11n 20 MHz broadcasts at ~7.2 Mb/s (§V.2).
  double mac_rate_bps = 7.2e6;
  // OS UDP send buffer. The prototype observed ~658 1.5 KB packets (≈1 MB)
  // surviving before overflow drops began.
  std::size_t os_buffer_bytes = 1'000'000;
  // Per-frame, per-receiver noise loss.
  double loss_probability = 0.02;
  SimTime difs = SimTime::micros(34);
  SimTime backoff_slot = SimTime::micros(9);
  // Contention window. Broadcast frames get no MAC-level loss feedback, so
  // there is no exponential backoff; a window wider than unicast 802.11's
  // initial CW=16 keeps same-slot collisions rare even with a handful of
  // concurrent chunk streams (fragment trains are hundreds of frames long —
  // per-frame collision rates compound fast).
  int max_backoff_slots = 64;
  // Radio power draw for the energy accountant (§VII: overhearing keeps the
  // radio on). Typical smartphone Wi-Fi figures: transmit ~1.3 W, receive
  // ~0.9 W, idle listening ~0.75 W. Energy per node =
  // idle_power × wall time + (tx_power − idle) × tx airtime +
  // (rx_power − idle) × rx airtime (receptions and overhears both count —
  // the radio demodulates either way).
  double tx_power_w = 1.3;
  double rx_power_w = 0.9;
  double idle_power_w = 0.75;

  // Physical capture: when two frames overlap at a receiver, the one whose
  // transmitter is at most `capture_ratio` times the other's distance is
  // decoded anyway (SINR capture); comparable distances corrupt both. This
  // keeps hidden-terminal interference from two hops away from destroying
  // every adjacent-neighbor transfer, matching the per-link loss rates the
  // paper measured and ported into its simulator.
  double capture_ratio = 0.6;

  // When true (default), delivery fan-out, carrier sensing and neighbors()
  // use the spatial grid / active-transmitter index and visit only nearby
  // nodes. When false, every query scans the whole fleet — the original O(N)
  // reference path, kept for determinism regression tests and as the perf
  // baseline. Both paths produce bit-identical results for the same seed
  // (DESIGN.md §"Spatial index").
  bool use_spatial_grid = true;

  // Deterministic intra-run parallelism: total threads (including the sim
  // thread) classifying delivery fan-out for large candidate sets. The
  // sharded phase consumes no RNG, writes only receiver-private state plus
  // per-shard partials, and partials merge in fixed shard order, so results
  // are byte-identical for any value (DESIGN.md §13; trace_determinism_test
  // asserts 1/2/8 agree). 1 = serial.
  int shard_threads = 1;
  // Fan-outs below this stay serial even when shard_threads > 1: waking the
  // worker pool costs more than scanning a small candidate list.
  std::size_t shard_min_candidates = 192;
};

// Calibrated radio environments.
//
// The paper plugs single-hop rates *measured on real phones* into its
// simulator instead of simulating PHY contention; its discovery experiments
// exhibit heavy flood-time losses (32% single-round recall without ack)
// while its retrieval experiments move 20 MB at near-wire efficiency — two
// regimes no single simple PHY reproduces at once. We therefore calibrate
// two profiles and state per experiment which one is used (EXPERIMENTS.md):
//
//  * contended — interference ring at 1.5× range with strict capture;
//    reproduces the paper's discovery-time loss rates (saturation, Fig. 4);
//  * clean     — interference limited to decode range (capture still
//    applies); reproduces the paper's streaming efficiency (Figs. 11–16).
[[nodiscard]] RadioConfig contended_radio_profile();
[[nodiscard]] RadioConfig clean_radio_profile();

// Two-state Gilbert–Elliott burst-loss channel (per receiver, on top of the
// i.i.d. noise model): the chain advances once per decodable frame; the
// "bad" state models a deep fade where most frames are lost in a burst.
struct GilbertElliottParams {
  double p_good_to_bad = 0.05;
  double p_bad_to_good = 0.25;
  double loss_good = 0.02;
  double loss_bad = 0.85;
};

struct MediumStats {
  std::uint64_t frames_offered = 0;
  std::uint64_t os_buffer_drops = 0;
  std::uint64_t frames_transmitted = 0;
  std::uint64_t bytes_transmitted = 0;
  // Cumulative on-air time across all transmissions (µs). The flight
  // recorder differentiates this per sample interval to get channel
  // utilization: Δair_us / interval_us = average concurrent transmissions.
  std::uint64_t air_time_us = 0;
  std::uint64_t deliveries = 0;  // per-receiver successful receptions
  std::uint64_t losses_collision = 0;
  std::uint64_t losses_noise = 0;
  std::uint64_t losses_half_duplex = 0;
  // Drops from scripted per-pair loss overrides (partitions, degraded links).
  std::uint64_t losses_fault = 0;
  // Drops from Gilbert–Elliott burst channels.
  std::uint64_t losses_burst = 0;

  friend bool operator==(const MediumStats&, const MediumStats&) = default;

  void reset() { *this = MediumStats{}; }
};

// Per-node radio activity for energy accounting.
struct RadioActivity {
  SimTime tx_airtime = SimTime::zero();
  SimTime rx_airtime = SimTime::zero();  // includes overheard/corrupted frames
};

class RadioMedium {
 public:
  RadioMedium(Simulator& sim, RadioConfig cfg);

  RadioMedium(const RadioMedium&) = delete;
  RadioMedium& operator=(const RadioMedium&) = delete;

  void add_node(NodeId id, FrameSink& sink, Vec2 pos, bool enabled = true);
  void set_position(NodeId id, Vec2 pos);
  void set_enabled(NodeId id, bool enabled);
  [[nodiscard]] bool is_enabled(NodeId id) const;
  [[nodiscard]] Vec2 position(NodeId id) const;

  // Hand a frame to the node's OS send buffer. Returns false when the buffer
  // overflows and the frame is silently dropped (never transmitted).
  bool send(NodeId sender, Frame frame);

  // Enabled nodes currently within range of `id`.
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId id) const;

  // -- Scripted channel faults (src/sim/faults.h drives these) --------------
  // Symmetric per-pair loss override: frames between `a` and `b` are dropped
  // with probability `loss` instead of the i.i.d. noise draw. loss >= 1 is a
  // hard partition edge and drops deterministically (no randomness consumed,
  // so schedules differing only in partitioned pairs stay comparable).
  // Overrides compose identically with the spatial grid and the brute-force
  // path: both decide losses in finish_reception, in registration order.
  void set_pair_loss(NodeId a, NodeId b, double loss);
  void clear_pair_loss(NodeId a, NodeId b);
  [[nodiscard]] std::size_t pair_loss_count() const {
    return pair_loss_.size();
  }

  // Attaches / detaches a Gilbert–Elliott burst channel to a receiver. The
  // chain starts in the good state and replaces the i.i.d. noise draw while
  // attached.
  void set_burst_channel(NodeId id, GilbertElliottParams params);
  void clear_burst_channel(NodeId id);

  [[nodiscard]] MediumStats& stats() { return stats_; }
  [[nodiscard]] const MediumStats& stats() const { return stats_; }

  [[nodiscard]] std::size_t os_backlog_bytes(NodeId id) const;

  // Energy consumed by `id`'s radio over `elapsed` of wall-clock time,
  // given the activity recorded so far (joules).
  [[nodiscard]] double energy_joules(NodeId id, SimTime elapsed) const;
  [[nodiscard]] const RadioActivity& activity(NodeId id) const;
  // Sum over all registered nodes.
  [[nodiscard]] double total_energy_joules(SimTime elapsed) const;

  // Observes every started transmission; experiment harnesses use this to
  // attribute on-air bytes to protocol phases.
  using TxObserver = std::function<void(NodeId, const Frame&)>;
  void set_tx_observer(TxObserver observer) {
    tx_observer_ = std::move(observer);
  }

  [[nodiscard]] const RadioConfig& config() const { return cfg_; }

  // -- Flight-recorder sampling accessors (DESIGN.md §15) --------------------
  // Read-only structural snapshots for the sim-time sampler; none mutate
  // state, so sampling never perturbs the medium.
  [[nodiscard]] std::size_t active_transmitters() const {
    return transmitting_.size();
  }
  // Spatial spread of the instantaneous transmitter set over coarse grid
  // cells: how many distinct cells hold a transmitter, and the deepest
  // single-cell pileup (local contention hot spot).
  struct TxCellOccupancy {
    std::size_t cells = 0;
    std::size_t max_per_cell = 0;
  };
  [[nodiscard]] TxCellOccupancy tx_cell_occupancy() const;
  // Total OS send-buffer backlog across all nodes (bytes).
  [[nodiscard]] std::size_t total_os_backlog_bytes() const;
  // Receiver-list vectors parked in the recycling pool. Per-run state used
  // identically by the serial and sharded paths, so it samples as a
  // deterministic sim column.
  [[nodiscard]] std::size_t receiver_pool_parked() const {
    return receiver_pool_.parked();
  }
  [[nodiscard]] const PoolStats& receiver_pool_stats() const {
    return receiver_pool_.stats();
  }

  // Surfaces MediumStats through a metrics registry as
  // "<prefix>frames_offered" etc. — registry-backed views over the same
  // struct fields (the struct keeps its layout and operator==).
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix = "radio.") const;

 private:
  // Dense registration index into `states_`; doubles as the deterministic
  // iteration order (registration order), matching the historical
  // `node_order_` scan.
  using Index = std::uint32_t;

  // In-flight reception bookkeeping at one receiver. The frame itself is
  // carried once per transmission (in the batched completion event), not
  // copied per receiver.
  struct Reception {
    std::uint64_t tx_seq = 0;
    double sender_distance = 0.0;
    bool corrupted = false;
    // False for interference-only receptions (transmitter inside the
    // interference ring but outside decode range): they corrupt others but
    // never deliver.
    bool decodable = true;
  };

  // Cold / medium-rate per-node state. The fields every neighbor query and
  // fan-out classification touches (position, enabled, transmitting,
  // tx deadline, grid links) live in parallel arrays below instead — a
  // structure-of-arrays layout that keeps a 50k-node sweep cache-resident
  // where an array of these structs would drag the deque and reception
  // vectors through the cache line by line.
  struct NodeState {
    NodeId id;
    FrameSink* sink = nullptr;
    std::deque<Frame> os_queue;
    std::size_t os_bytes = 0;
    bool attempt_scheduled = false;
    std::vector<Reception> receptions;
    RadioActivity activity;
    // Gilbert–Elliott burst channel state (faults.h).
    bool burst_enabled = false;
    bool burst_bad = false;
    GilbertElliottParams burst;
  };

  // Symmetric pair key for the per-pair loss overrides.
  [[nodiscard]] static std::uint64_t pair_key(NodeId a, NodeId b) {
    const std::uint32_t lo = std::min(a.value(), b.value());
    const std::uint32_t hi = std::max(a.value(), b.value());
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }

  [[nodiscard]] Index index_of(NodeId id) const;
  NodeState& state_of(NodeId id) { return states_[index_of(id)]; }
  const NodeState& state_of(NodeId id) const { return states_[index_of(id)]; }
  [[nodiscard]] double carrier_sense_range() const {
    return cfg_.carrier_sense_range_m > 0.0 ? cfg_.carrier_sense_range_m
                                            : 2.0 * cfg_.range_m;
  }
  [[nodiscard]] double interference_range() const {
    return cfg_.interference_range_m > 0.0 ? cfg_.interference_range_m
                                           : 1.5 * cfg_.range_m;
  }

  // -- Two-level spatial grid -------------------------------------------------
  // Fine cells are interference-range-sized (a radius query is a 3×3 fine
  // scan); 8×8 fine cells group into one coarse cell so a query resolves in
  // at most four hash lookups instead of nine, and each hit walks intrusive
  // per-fine-cell linked lists threaded through the node index arrays — no
  // per-cell vectors, O(1) pointer-splice moves, and the whole occupancy
  // structure recycles through a pool as nodes churn.
  static constexpr std::int32_t kCoarseShift = 3;  // 8×8 fine per coarse
  static constexpr std::int32_t kCoarseSpan = 1 << kCoarseShift;
  struct CoarseCell {
    // Head of the intrusive node list per fine sub-cell; -1 = empty.
    std::array<std::int32_t, kCoarseSpan * kCoarseSpan> heads;
    std::uint32_t count = 0;  // nodes across all sub-cells
    CoarseCell() { heads.fill(-1); }
  };

  [[nodiscard]] std::int32_t fine_coord(double v) const;
  [[nodiscard]] static std::uint64_t coarse_key(std::int32_t cx,
                                                std::int32_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
  }
  [[nodiscard]] static std::size_t sub_cell(std::int32_t fx, std::int32_t fy) {
    // Low bits of the fine coords index within the coarse cell; & works for
    // negatives the same way >> groups them (two's complement low bits).
    return static_cast<std::size_t>(((fy & (kCoarseSpan - 1)) << kCoarseShift) |
                                    (fx & (kCoarseSpan - 1)));
  }
  void grid_insert(Index idx);
  void grid_remove(Index idx);
  // Indices of all nodes other than `self` whose fine cell intersects the
  // disk (pos, radius) — a superset of the nodes actually within `radius` —
  // sorted by registration index so callers iterate in the same order as a
  // full registration-order scan. Falls back to "everyone but self" when the
  // grid is disabled. Returns a reusable scratch buffer.
  const std::vector<Index>& candidates_near(Index self, Vec2 pos,
                                            double radius) const;

  [[nodiscard]] bool medium_busy_around(Index idx) const;
  [[nodiscard]] SimTime busy_end_around(Index idx) const;
  [[nodiscard]] SimTime random_backoff();
  [[nodiscard]] SimTime access_delay(const NodeState& st);

  void maybe_schedule_attempt(Index idx, SimTime extra_delay);
  void attempt_transmission(Index idx);
  void start_transmission(Index idx);
  void finish_reception(Index ridx, std::uint64_t tx_seq, const Frame& frame);
  void finish_transmission(Index idx);

  Simulator& sim_;
  RadioConfig cfg_;
  Rng rng_;
  double cell_size_m_ = 0.0;
  std::vector<NodeState> states_;  // dense, in registration order
  std::unordered_map<NodeId, Index> index_of_;

  // -- Hot per-node state, structure-of-arrays (parallel to states_) ---------
  std::vector<Vec2> pos_;
  std::vector<std::uint8_t> enabled_;
  std::vector<std::uint8_t> tx_active_;  // frame on the air right now
  std::vector<SimTime> tx_end_;
  std::vector<std::int32_t> cell_fx_;  // fine grid cell currently occupied
  std::vector<std::int32_t> cell_fy_;
  // Intrusive doubly-linked occupancy lists (indices into the arrays; -1
  // terminates). grid_prev_ lets grid_remove splice in O(1).
  std::vector<std::int32_t> grid_next_;
  std::vector<std::int32_t> grid_prev_;

  // coarse cell key -> slot in coarse_cells_; empty cells return to
  // coarse_free_ so mobility churn stops allocating once warm.
  std::unordered_map<std::uint64_t, std::uint32_t> coarse_map_;
  std::vector<CoarseCell> coarse_cells_;
  std::vector<std::uint32_t> coarse_free_;

  // Nodes with a frame on the air right now; carrier sensing only ever asks
  // about these, so scanning this list replaces the O(N) busy scans.
  std::vector<Index> transmitting_;
  mutable std::vector<Index> scratch_;  // candidate buffer, reused per query

  // -- Sharded fan-out classification (cfg_.shard_threads > 1) ---------------
  std::unique_ptr<ShardExecutor> shards_;
  // Per-shard partials, merged in shard order after every sharded phase.
  std::vector<std::vector<Index>> shard_receivers_;
  std::vector<std::uint64_t> shard_half_duplex_;
  // Recycles the merged receiver list each transmission carries into its
  // completion event.
  VectorPool<Index> receiver_pool_;

  // Scripted per-pair loss overrides, keyed by pair_key (symmetric).
  std::unordered_map<std::uint64_t, double> pair_loss_;
  MediumStats stats_;
  TxObserver tx_observer_;
  std::uint64_t next_tx_seq_ = 1;
};

}  // namespace pds::sim
