// Broadcast wireless medium.
//
// Models exactly the effects PDS's evaluation depends on, and nothing more:
//
//  * unit-disk connectivity over mobile 2-D positions;
//  * every frame is a broadcast: all in-range enabled nodes receive it unless
//    lost, which is what enables opportunistic overhearing and mixedcast;
//  * a finite per-node OS send buffer drained at the MAC broadcast rate,
//    with silent tail drop — reproduces the Android UDP send-API overflow
//    (paper §V.2: lost messages "were never transmitted");
//  * CSMA-style deferral with DIFS + random backoff; senders that start
//    within the same microsecond, and hidden terminals that cannot hear each
//    other, overlap at common receivers and corrupt each other's frames;
//  * half-duplex radios (a transmitting node cannot receive);
//  * independent per-receiver random noise loss.
//
// There is no capture effect, no rate adaptation and no exponential backoff;
// the paper's protocol recovers residual losses at the application layer
// (ack/retransmission, multi-round discovery), which is the behaviour under
// study.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/position.h"
#include "sim/simulator.h"

namespace pds::sim {

// Base for anything carried inside a frame; the net layer derives its
// message type from this so sim stays independent of message formats.
class FramePayload {
 public:
  virtual ~FramePayload() = default;
};

struct Frame {
  NodeId sender;
  std::size_t size_bytes = 0;
  // Control frames (acks) jump the OS queue and contend with a shorter
  // inter-frame space and smaller backoff window, like MAC-level control
  // traffic; without priority, acks starve under saturation and trigger
  // spurious data retransmissions.
  bool control = false;
  std::shared_ptr<const FramePayload> payload;
};

// Receiver interface a device registers with the medium.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  // Called for every successfully received frame, whether or not this node
  // is an intended receiver (overhearing).
  virtual void on_frame(const Frame& frame) = 0;
};

struct RadioConfig {
  // Communication range (unit disk).
  double range_m = 15.0;
  // Carrier-sense range: real radios detect channel energy below the decode
  // threshold, so the sensing range exceeds the data range; transmitters
  // closer than this to each other serialize. <= 0 means "2 × range_m".
  double carrier_sense_range_m = 0.0;
  // Interference range: a signal too weak to decode still corrupts other
  // receptions out to roughly 1.5× the data range. Transmitters beyond each
  // other's carrier-sense range but within this ring of a receiver are the
  // hidden terminals that make multi-hop floods lossy (paper Fig. 4's recall
  // decline with hop count). <= 0 means "1.5 × range_m".
  double interference_range_m = 0.0;
  // MAC broadcast data rate; 802.11n 20 MHz broadcasts at ~7.2 Mb/s (§V.2).
  double mac_rate_bps = 7.2e6;
  // OS UDP send buffer. The prototype observed ~658 1.5 KB packets (≈1 MB)
  // surviving before overflow drops began.
  std::size_t os_buffer_bytes = 1'000'000;
  // Per-frame, per-receiver noise loss.
  double loss_probability = 0.02;
  SimTime difs = SimTime::micros(34);
  SimTime backoff_slot = SimTime::micros(9);
  // Contention window. Broadcast frames get no MAC-level loss feedback, so
  // there is no exponential backoff; a window wider than unicast 802.11's
  // initial CW=16 keeps same-slot collisions rare even with a handful of
  // concurrent chunk streams (fragment trains are hundreds of frames long —
  // per-frame collision rates compound fast).
  int max_backoff_slots = 64;
  // Radio power draw for the energy accountant (§VII: overhearing keeps the
  // radio on). Typical smartphone Wi-Fi figures: transmit ~1.3 W, receive
  // ~0.9 W, idle listening ~0.75 W. Energy per node =
  // idle_power × wall time + (tx_power − idle) × tx airtime +
  // (rx_power − idle) × rx airtime (receptions and overhears both count —
  // the radio demodulates either way).
  double tx_power_w = 1.3;
  double rx_power_w = 0.9;
  double idle_power_w = 0.75;

  // Physical capture: when two frames overlap at a receiver, the one whose
  // transmitter is at most `capture_ratio` times the other's distance is
  // decoded anyway (SINR capture); comparable distances corrupt both. This
  // keeps hidden-terminal interference from two hops away from destroying
  // every adjacent-neighbor transfer, matching the per-link loss rates the
  // paper measured and ported into its simulator.
  double capture_ratio = 0.6;
};

// Calibrated radio environments.
//
// The paper plugs single-hop rates *measured on real phones* into its
// simulator instead of simulating PHY contention; its discovery experiments
// exhibit heavy flood-time losses (32% single-round recall without ack)
// while its retrieval experiments move 20 MB at near-wire efficiency — two
// regimes no single simple PHY reproduces at once. We therefore calibrate
// two profiles and state per experiment which one is used (EXPERIMENTS.md):
//
//  * contended — interference ring at 1.5× range with strict capture;
//    reproduces the paper's discovery-time loss rates (saturation, Fig. 4);
//  * clean     — interference limited to decode range (capture still
//    applies); reproduces the paper's streaming efficiency (Figs. 11–16).
[[nodiscard]] RadioConfig contended_radio_profile();
[[nodiscard]] RadioConfig clean_radio_profile();

struct MediumStats {
  std::uint64_t frames_offered = 0;
  std::uint64_t os_buffer_drops = 0;
  std::uint64_t frames_transmitted = 0;
  std::uint64_t bytes_transmitted = 0;
  std::uint64_t deliveries = 0;  // per-receiver successful receptions
  std::uint64_t losses_collision = 0;
  std::uint64_t losses_noise = 0;
  std::uint64_t losses_half_duplex = 0;

  void reset() { *this = MediumStats{}; }
};

// Per-node radio activity for energy accounting.
struct RadioActivity {
  SimTime tx_airtime = SimTime::zero();
  SimTime rx_airtime = SimTime::zero();  // includes overheard/corrupted frames
};

class RadioMedium {
 public:
  RadioMedium(Simulator& sim, RadioConfig cfg);

  RadioMedium(const RadioMedium&) = delete;
  RadioMedium& operator=(const RadioMedium&) = delete;

  void add_node(NodeId id, FrameSink& sink, Vec2 pos, bool enabled = true);
  void set_position(NodeId id, Vec2 pos);
  void set_enabled(NodeId id, bool enabled);
  [[nodiscard]] bool is_enabled(NodeId id) const;
  [[nodiscard]] Vec2 position(NodeId id) const;

  // Hand a frame to the node's OS send buffer. Returns false when the buffer
  // overflows and the frame is silently dropped (never transmitted).
  bool send(NodeId sender, Frame frame);

  // Enabled nodes currently within range of `id`.
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId id) const;

  [[nodiscard]] MediumStats& stats() { return stats_; }
  [[nodiscard]] const MediumStats& stats() const { return stats_; }

  [[nodiscard]] std::size_t os_backlog_bytes(NodeId id) const;

  // Energy consumed by `id`'s radio over `elapsed` of wall-clock time,
  // given the activity recorded so far (joules).
  [[nodiscard]] double energy_joules(NodeId id, SimTime elapsed) const;
  [[nodiscard]] const RadioActivity& activity(NodeId id) const;
  // Sum over all registered nodes.
  [[nodiscard]] double total_energy_joules(SimTime elapsed) const;

  // Observes every started transmission; experiment harnesses use this to
  // attribute on-air bytes to protocol phases.
  using TxObserver = std::function<void(NodeId, const Frame&)>;
  void set_tx_observer(TxObserver observer) {
    tx_observer_ = std::move(observer);
  }

  [[nodiscard]] const RadioConfig& config() const { return cfg_; }

 private:
  struct Reception {
    std::uint64_t tx_seq = 0;
    Frame frame;
    double sender_distance = 0.0;
    bool corrupted = false;
    // False for interference-only receptions (transmitter inside the
    // interference ring but outside decode range): they corrupt others but
    // never deliver.
    bool decodable = true;
  };

  struct NodeState {
    FrameSink* sink = nullptr;
    Vec2 pos;
    bool enabled = true;
    std::deque<Frame> os_queue;
    std::size_t os_bytes = 0;
    bool transmitting = false;
    SimTime tx_end = SimTime::zero();
    bool attempt_scheduled = false;
    std::vector<Reception> receptions;
    RadioActivity activity;
  };

  NodeState& state_of(NodeId id);
  const NodeState& state_of(NodeId id) const;
  [[nodiscard]] bool in_range(const NodeState& a, const NodeState& b) const;
  [[nodiscard]] double carrier_sense_range() const {
    return cfg_.carrier_sense_range_m > 0.0 ? cfg_.carrier_sense_range_m
                                            : 2.0 * cfg_.range_m;
  }
  [[nodiscard]] double interference_range() const {
    return cfg_.interference_range_m > 0.0 ? cfg_.interference_range_m
                                           : 1.5 * cfg_.range_m;
  }
  [[nodiscard]] bool medium_busy_around(NodeId id) const;
  [[nodiscard]] SimTime busy_end_around(NodeId id) const;
  [[nodiscard]] SimTime random_backoff();
  [[nodiscard]] SimTime access_delay(const NodeState& st);

  void maybe_schedule_attempt(NodeId id, SimTime extra_delay);
  void attempt_transmission(NodeId id);
  void start_transmission(NodeId id);
  void finish_reception(NodeId receiver, std::uint64_t tx_seq);

  Simulator& sim_;
  RadioConfig cfg_;
  Rng rng_;
  std::unordered_map<NodeId, NodeState> nodes_;
  // Stable iteration order for determinism.
  std::vector<NodeId> node_order_;
  MediumStats stats_;
  TxObserver tx_observer_;
  std::uint64_t next_tx_seq_ = 1;
};

}  // namespace pds::sim
