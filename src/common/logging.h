// Minimal leveled logging, off by default.
//
// Set PDS_LOG=error|warn|info|debug to enable. Logging is for debugging
// protocol traces; metrics never flow through the logger.
#pragma once

#include <sstream>
#include <string_view>

namespace pds {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug };

[[nodiscard]] LogLevel log_level();
[[nodiscard]] inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

void log_line(LogLevel level, std::string_view module, std::string_view msg);

// Usage: PDS_LOG_DEBUG("pdd", "round " << n << " finished");
#define PDS_LOG_AT(level, module, expr)                     \
  do {                                                      \
    if (::pds::log_enabled(level)) {                        \
      std::ostringstream pds_log_os;                        \
      pds_log_os << expr;                                   \
      ::pds::log_line(level, module, pds_log_os.str());     \
    }                                                       \
  } while (false)

#define PDS_LOG_DEBUG(module, expr) \
  PDS_LOG_AT(::pds::LogLevel::kDebug, module, expr)
#define PDS_LOG_INFO(module, expr) \
  PDS_LOG_AT(::pds::LogLevel::kInfo, module, expr)
#define PDS_LOG_WARN(module, expr) \
  PDS_LOG_AT(::pds::LogLevel::kWarn, module, expr)

}  // namespace pds
