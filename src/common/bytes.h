// Byte-level serialization.
//
// Messages are encoded to concrete bytes so that (1) the simulator charges
// every transmission its true wire size — the paper's "message overhead"
// metric is bytes on air — and (2) descriptor identity is a hash of a
// canonical encoding rather than of in-memory layout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace pds {

class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  void put_f64(double v);
  // LEB128 base-128 varint, 1–10 bytes. The compressed wire paths
  // (net/codec.cc v2 extensions, net/bloom_delta.cc) use varints for counts,
  // indices and deltas that are small in the common case.
  void put_varint(std::uint64_t v);
  // Zigzag-mapped signed varint: small magnitudes of either sign stay short.
  void put_varint_i64(std::int64_t v);
  // Length-prefixed (u16) string.
  void put_string(std::string_view s);
  // Length-prefixed (u32) raw bytes.
  void put_bytes(std::span<const std::byte> bytes);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::span<const std::byte> bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

// Thrown when a reader runs past the end of its buffer or a length prefix is
// inconsistent — i.e., a malformed message.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint16_t get_u16();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::int64_t get_i64() {
    return static_cast<std::int64_t>(get_u64());
  }
  [[nodiscard]] double get_f64();
  // Throws DecodeError on truncation and on non-canonical encodings
  // (more than 10 bytes, bits past the 64th, or a zero-valued trailing
  // continuation group), so decode(encode(x)) is the unique byte form.
  [[nodiscard]] std::uint64_t get_varint();
  [[nodiscard]] std::int64_t get_varint_i64();
  [[nodiscard]] std::string get_string();
  [[nodiscard]] std::vector<std::byte> get_bytes();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool done() const { return remaining() == 0; }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) throw DecodeError("buffer underrun");
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

// Encoded length of `v` as a varint (1–10 bytes); lets sizing code charge
// varint fields without a scratch encode.
[[nodiscard]] constexpr std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace pds
