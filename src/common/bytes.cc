#include "common/bytes.h"

#include <bit>
#include <cstring>
#include <limits>

namespace pds {

namespace {

template <typename T>
void append_le(std::vector<std::byte>& buf, T v) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

}  // namespace

void ByteWriter::put_u16(std::uint16_t v) { append_le(buf_, v); }
void ByteWriter::put_u32(std::uint32_t v) { append_le(buf_, v); }
void ByteWriter::put_u64(std::uint64_t v) { append_le(buf_, v); }

void ByteWriter::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<std::byte>(v));
}

void ByteWriter::put_varint_i64(std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  put_varint((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void ByteWriter::put_string(std::string_view s) {
  if (s.size() > std::numeric_limits<std::uint16_t>::max()) {
    throw DecodeError("string too long to encode");
  }
  put_u16(static_cast<std::uint16_t>(s.size()));
  for (char c : s) buf_.push_back(static_cast<std::byte>(c));
}

void ByteWriter::put_bytes(std::span<const std::byte> bytes) {
  put_u32(static_cast<std::uint32_t>(bytes.size()));
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::uint8_t ByteReader::get_u8() {
  require(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

namespace {

template <typename T>
T read_le(std::span<const std::byte> data, std::size_t pos) {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<std::uint8_t>(data[pos + i])) << (8 * i);
  }
  return v;
}

}  // namespace

std::uint16_t ByteReader::get_u16() {
  require(2);
  auto v = read_le<std::uint16_t>(data_, pos_);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::get_u32() {
  require(4);
  auto v = read_le<std::uint32_t>(data_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::get_u64() {
  require(8);
  auto v = read_le<std::uint64_t>(data_, pos_);
  pos_ += 8;
  return v;
}

double ByteReader::get_f64() { return std::bit_cast<double>(get_u64()); }

std::uint64_t ByteReader::get_varint() {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    const std::uint8_t b = get_u8();
    const std::uint64_t group = b & 0x7f;
    // Byte 10 may only carry the top bit of a 64-bit value; anything more
    // overflows. A zero continuation group (other than a lone 0) would give
    // the value a second byte form, so reject it to keep encodings unique.
    if (i == 9 && group > 1) throw DecodeError("varint overflows 64 bits");
    if (i > 0 && group == 0 && (b & 0x80) == 0) {
      throw DecodeError("non-canonical varint");
    }
    v |= group << (7 * i);
    if ((b & 0x80) == 0) return v;
  }
  throw DecodeError("varint longer than 10 bytes");
}

std::int64_t ByteReader::get_varint_i64() {
  const std::uint64_t u = get_varint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

std::string ByteReader::get_string() {
  const std::uint16_t n = get_u16();
  require(n);
  std::string s(n, '\0');
  std::memcpy(s.data(), data_.data() + pos_, n);
  pos_ += n;
  return s;
}

std::vector<std::byte> ByteReader::get_bytes() {
  const std::uint32_t n = get_u32();
  require(n);
  std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                             data_.begin() +
                                 static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace pds
