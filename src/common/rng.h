// Deterministic random number generation.
//
// Every stochastic component (channel loss, workload placement, mobility,
// backoff jitter) draws from an explicitly seeded Rng so that simulations are
// reproducible run-to-run; `fork()` derives independent streams for
// subcomponents without sharing state.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/assert.h"

namespace pds {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

  // Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  // Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    PDS_ENSURE(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  [[nodiscard]] bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  // Exponential variate with the given mean (inter-arrival times of Poisson
  // processes in the mobility trace generator).
  [[nodiscard]] double exponential(double mean) {
    PDS_ENSURE(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& v) {
    PDS_ENSURE(!v.empty());
    return v[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  // Derive an independent stream; used to give each node / subsystem its own
  // generator while keeping the whole simulation a function of one seed.
  [[nodiscard]] Rng fork();

 private:
  std::mt19937_64 engine_;
};

}  // namespace pds
