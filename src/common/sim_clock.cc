#include "common/sim_clock.h"

#include <array>

#include "common/assert.h"

namespace pds {
namespace {

// Fixed-depth stack: a thread never nests more than a couple of simulators
// (tests that build a scratch sim inside a scenario are the deep case).
constexpr std::size_t kMaxClockDepth = 8;

thread_local std::array<const SimTime*, kMaxClockDepth> g_clock_stack{};
thread_local std::size_t g_clock_depth = 0;
thread_local std::uint32_t g_log_node = NodeId::invalid().value();

}  // namespace

void push_sim_clock(const SimTime* now) {
  PDS_ENSURE(g_clock_depth < kMaxClockDepth);
  g_clock_stack[g_clock_depth++] = now;
}

void pop_sim_clock() {
  PDS_ENSURE(g_clock_depth > 0);
  --g_clock_depth;
}

const SimTime* current_sim_clock() {
  return g_clock_depth == 0 ? nullptr : g_clock_stack[g_clock_depth - 1];
}

std::uint32_t current_log_node() { return g_log_node; }

ScopedLogNode::ScopedLogNode(NodeId node) : previous_(g_log_node) {
  g_log_node = node.value();
}

ScopedLogNode::~ScopedLogNode() { g_log_node = previous_; }

}  // namespace pds
