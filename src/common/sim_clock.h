// Thread-local simulation clock / node context for log enrichment.
//
// A Simulator pushes a pointer to its `now_` on construction and pops it on
// destruction; PdsNode message handlers wrap dispatch in ScopedLogNode. The
// logger (logging.cc) consults both so every PDS_LOG line carries
// `[t=<sim seconds> n=<node>]` without touching the 8 existing call sites.
//
// The stack is thread-local: under PDS_BENCH_JOBS>1 each worker thread runs
// its own Simulator, so contexts never interleave across runs. Nesting (a
// simulator constructed while another is live on the same thread) restores
// the outer clock on pop.
#pragma once

#include <cstdint>

#include "common/sim_time.h"
#include "common/types.h"

namespace pds {

// Clock registration — `now` must stay valid until the matching pop.
void push_sim_clock(const SimTime* now);
void pop_sim_clock();

// Innermost registered clock, or nullptr when no simulator is live.
[[nodiscard]] const SimTime* current_sim_clock();

// Node attribution for log lines emitted while handling a node's messages.
// Returns NodeId::invalid().value() when outside any node scope.
[[nodiscard]] std::uint32_t current_log_node();

class ScopedLogNode {
 public:
  explicit ScopedLogNode(NodeId node);
  ~ScopedLogNode();

  ScopedLogNode(const ScopedLogNode&) = delete;
  ScopedLogNode& operator=(const ScopedLogNode&) = delete;

 private:
  std::uint32_t previous_;
};

}  // namespace pds
