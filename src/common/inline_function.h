// Move-only callable wrapper with large inline storage.
//
// std::function's small-buffer optimization tops out around two pointers on
// libstdc++, so the simulator's event closures — a radio completion handler
// captures ~80 bytes (receiver list, frame, sequence number), a mobility
// replay step ~40 — heap-allocate on every schedule() call. At city scale
// that is one malloc/free pair per simulated event. InlineFunction raises the
// inline capacity so every closure the hot paths create stays in-place; only
// pathological captures fall back to the heap.
//
// Differences from std::function, on purpose:
//   * move-only (no copy): closures may own pooled buffers;
//   * no target_type()/target() introspection;
//   * invoking an empty InlineFunction is a programming error (asserted),
//     not std::bad_function_call.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "common/assert.h"

namespace pds {

template <typename Signature, std::size_t Capacity = 104>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>, InlineFunction>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    assign(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>, InlineFunction>>>
  InlineFunction& operator=(F&& f) {
    reset();
    assign(std::forward<F>(f));
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    PDS_ENSURE(invoke_ != nullptr);
    return invoke_(storage(), std::forward<Args>(args)...);
  }

  void reset() {
    if (manage_ != nullptr) {
      manage_(Op::kDestroy, storage(), nullptr);
      manage_ = nullptr;
    }
    invoke_ = nullptr;
  }

  // True when the wrapped callable lives in the inline buffer (diagnostic;
  // the arena micro-benchmarks assert hot-path closures never spill).
  [[nodiscard]] bool is_inline() const {
    return invoke_ != nullptr && !heap_;
  }

  static constexpr std::size_t capacity() { return Capacity; }

 private:
  enum class Op { kDestroy, kMove };

  using Invoke = R (*)(void*, Args&&...);
  // kDestroy: destroy the callable at `self` (and free it when heap-backed).
  // kMove: move-construct from `self` into `to` and destroy `self`.
  using Manage = void (*)(Op, void* self, void* to);

  template <typename F>
  void assign(F&& f) {
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<R, D&, Args...>);
    if constexpr (sizeof(D) <= Capacity &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (storage()) D(std::forward<F>(f));
      heap_ = false;
      invoke_ = [](void* s, Args&&... args) -> R {
        return (*std::launder(static_cast<D*>(s)))(
            std::forward<Args>(args)...);
      };
      manage_ = [](Op op, void* self, void* to) {
        D* src = std::launder(static_cast<D*>(self));
        if (op == Op::kMove) ::new (to) D(std::move(*src));
        src->~D();
      };
    } else {
      // Oversized or over-aligned callable: single heap cell, pointer stored
      // inline. The pointer itself moves trivially.
      D* cell = new D(std::forward<F>(f));
      ::new (storage()) D*(cell);
      heap_ = true;
      invoke_ = [](void* s, Args&&... args) -> R {
        return (**std::launder(static_cast<D**>(s)))(
            std::forward<Args>(args)...);
      };
      manage_ = [](Op op, void* self, void* to) {
        D** src = std::launder(static_cast<D**>(self));
        if (op == Op::kMove) {
          ::new (to) D*(*src);
        } else {
          delete *src;
        }
      };
    }
  }

  void move_from(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    heap_ = other.heap_;
    if (other.manage_ != nullptr) {
      other.manage_(Op::kMove, other.storage(), storage());
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void* storage() { return static_cast<void*>(buf_); }

  alignas(std::max_align_t) std::byte buf_[Capacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
  bool heap_ = false;
};

}  // namespace pds
