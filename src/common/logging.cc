#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/sim_clock.h"
#include "common/types.h"

namespace pds {

namespace {

LogLevel parse_env_level() {
  const char* env = std::getenv("PDS_LOG");
  if (env == nullptr) return LogLevel::kOff;
  const std::string v(env);
  if (v == "error") return LogLevel::kError;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "info") return LogLevel::kInfo;
  if (v == "debug") return LogLevel::kDebug;
  return LogLevel::kOff;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kOff:
      break;
  }
  return "OFF";
}

}  // namespace

LogLevel log_level() {
  static const LogLevel level = parse_env_level();
  return level;
}

void log_line(LogLevel level, std::string_view module, std::string_view msg) {
  // Prefix sim time and node id when a simulator/node context is live so
  // protocol traces line up with the structured tracer's timeline.
  char context[64];
  context[0] = '\0';
  if (const SimTime* now = current_sim_clock(); now != nullptr) {
    const std::uint32_t node = current_log_node();
    if (node != NodeId::invalid().value()) {
      std::snprintf(context, sizeof(context), " [t=%.6fs n=%u]",
                    now->as_seconds(), node);
    } else {
      std::snprintf(context, sizeof(context), " [t=%.6fs]", now->as_seconds());
    }
  }
  std::fprintf(stderr, "[%s]%s %.*s: %.*s\n", level_name(level), context,
               static_cast<int>(module.size()), module.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace pds
