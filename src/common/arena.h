// Object-recycling pools for the simulator's steady-state hot paths.
//
// A warm simulation allocates in three places: scheduled-event closures
// (fixed by InlineFunction's inline storage), per-transmission receiver
// lists, and per-frame payload objects in the net layer. The pools here
// retire the last two: freed storage parks in a free list and is handed back
// on the next acquire, so steady-state simulation does zero per-event heap
// traffic once the pools are warm.
//
// Determinism: recycling changes *which addresses* come back, never any
// simulated outcome — no code orders or hashes by pointer (pdslint's
// pointer-order rule guards that), so reuse is invisible to traces, stats
// and RNG draws.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pds {

// Pool accounting the flight recorder samples (DESIGN.md §15): lifetime
// counters plus a high-water mark. Counters survive reset()/release_all() —
// the recorder wants "how hard was this pool worked over the whole run",
// not "since the last trim".
struct PoolStats {
  std::uint64_t acquires = 0;   // total acquire()/allocate() calls
  std::uint64_t reuses = 0;     // calls served from the free list
  std::size_t high_water = 0;   // peak parked entries (or bytes for BlockPool)
};

// Recycles std::vector buffers: acquire() returns an empty vector that keeps
// the capacity it had when released, so a stable working set stops touching
// the allocator entirely.
template <typename T>
class VectorPool {
 public:
  explicit VectorPool(std::size_t max_parked = 64) : max_parked_(max_parked) {}

  [[nodiscard]] std::vector<T> acquire() {
    ++stats_.acquires;
    if (parked_.empty()) return {};
    ++stats_.reuses;
    std::vector<T> v = std::move(parked_.back());
    parked_.pop_back();
    return v;
  }

  void release(std::vector<T>&& v) {
    v.clear();
    if (parked_.size() < max_parked_ && v.capacity() > 0) {
      parked_.push_back(std::move(v));
      stats_.high_water = std::max(stats_.high_water, parked_.size());
    }
  }

  // Frees every parked buffer; lifetime stats are preserved.
  void reset() { parked_.clear(); }

  [[nodiscard]] std::size_t parked() const { return parked_.size(); }
  [[nodiscard]] const PoolStats& stats() const { return stats_; }

 private:
  std::vector<std::vector<T>> parked_;
  std::size_t max_parked_;
  PoolStats stats_;
};

// Size-class keyed free lists of raw blocks, one pool per thread. Backs
// PoolAllocator: allocate_shared'd payload objects (control block + object
// in one cell) come from here, so frame payload churn stops hitting
// malloc/free once each size class is warm. Thread-local by design: worker
// threads in bench::run_indexed each own an independent pool, so no locks
// and no cross-thread traffic (TSan-clean).
class BlockPool {
 public:
  static BlockPool& local() {
    thread_local BlockPool pool;
    return pool;
  }

  void* allocate(std::size_t bytes) {
    ++stats_.acquires;
    auto it = free_.find(bytes);
    if (it != free_.end() && !it->second.empty()) {
      ++stats_.reuses;
      parked_bytes_ -= bytes;
      void* p = it->second.back();
      it->second.pop_back();
      return p;
    }
    return ::operator new(bytes);
  }

  void deallocate(void* p, std::size_t bytes) {
    if (bytes > kMaxBlockBytes) {
      ::operator delete(p);
      return;
    }
    std::vector<void*>& list = free_[bytes];
    if (list.size() >= kMaxPerClass) {
      ::operator delete(p);
      return;
    }
    list.push_back(p);
    parked_bytes_ += bytes;
    stats_.high_water = std::max(stats_.high_water, parked_bytes_);
  }

  // Returns every parked block to the system; lifetime stats survive. The
  // flight recorder reads parked_bytes() as a wall-kind column (the pool is
  // thread-local, so its occupancy depends on which worker thread — and how
  // many prior seeds — warmed it).
  void release_all() {
    for (auto& [bytes, list] : free_) {
      for (void* p : list) ::operator delete(p);
      list.clear();
    }
    parked_bytes_ = 0;
  }

  [[nodiscard]] std::size_t parked_bytes() const { return parked_bytes_; }
  [[nodiscard]] const PoolStats& stats() const { return stats_; }

  ~BlockPool() {
    // Lookup-only map: never iterated for output (the parked blocks hold no
    // simulation state), so hash order is immaterial.
    for (auto& [bytes, list] : free_) {
      for (void* p : list) ::operator delete(p);
    }
  }

  BlockPool(const BlockPool&) = delete;
  BlockPool& operator=(const BlockPool&) = delete;

 private:
  BlockPool() = default;

  static constexpr std::size_t kMaxBlockBytes = 1 << 16;
  static constexpr std::size_t kMaxPerClass = 4096;

  std::unordered_map<std::size_t, std::vector<void*>> free_;
  std::size_t parked_bytes_ = 0;
  PoolStats stats_;
};

// Standard allocator over BlockPool::local(); drop-in for allocate_shared.
// Only single-object, normally-aligned allocations are pooled — array or
// over-aligned requests fall through to global new.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}  // NOLINT

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 1 && alignof(T) <= alignof(std::max_align_t)) {
      return static_cast<T*>(BlockPool::local().allocate(sizeof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) {
    if (n == 1 && alignof(T) <= alignof(std::max_align_t)) {
      BlockPool::local().deallocate(p, sizeof(T));
      return;
    }
    ::operator delete(p);
  }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) {
    return true;
  }
};

// allocate_shared through the thread-local block pool: one pooled cell holds
// control block + object, exactly like make_shared but recycled.
template <typename T, typename... Args>
[[nodiscard]] std::shared_ptr<T> make_pooled(Args&&... args) {
  return std::allocate_shared<T>(PoolAllocator<T>{},
                                 std::forward<Args>(args)...);
}

}  // namespace pds
