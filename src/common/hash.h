// Hashing primitives used for content identity and Bloom filters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace pds {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

[[nodiscard]] constexpr std::uint64_t fnv1a64(
    std::span<const std::byte> bytes, std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= kFnvPrime;
  }
  return h;
}

[[nodiscard]] inline std::uint64_t fnv1a64(std::string_view s,
                                           std::uint64_t seed = kFnvOffset) {
  return fnv1a64(std::as_bytes(std::span(s.data(), s.size())), seed);
}

// Strong 64-bit mix (SplitMix64 finalizer); turns one hash into a family of
// hashes for Bloom filter double hashing with per-round seeds.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace pds
