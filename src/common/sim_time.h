// Simulation time.
//
// A single microsecond-resolution type is used for both instants and
// durations, as is conventional in discrete-event simulators: the scheduler
// works with absolute times, and protocol parameters (timeouts, windows) are
// durations added to them.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

namespace pds {

class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime micros(std::int64_t us) {
    return SimTime(us);
  }
  [[nodiscard]] static constexpr SimTime millis(std::int64_t ms) {
    return SimTime(ms * 1000);
  }
  [[nodiscard]] static constexpr SimTime seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e6));
  }
  [[nodiscard]] static constexpr SimTime minutes(double m) {
    return seconds(m * 60.0);
  }
  [[nodiscard]] static constexpr SimTime zero() { return SimTime(0); }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }

  [[nodiscard]] constexpr std::int64_t as_micros() const { return us_; }
  [[nodiscard]] constexpr double as_seconds() const { return us_ / 1e6; }
  [[nodiscard]] constexpr double as_millis() const { return us_ / 1e3; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  constexpr SimTime& operator+=(SimTime rhs) {
    us_ += rhs.us_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime rhs) {
    us_ -= rhs.us_;
    return *this;
  }
  friend constexpr SimTime operator+(SimTime a, SimTime b) { return a += b; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return a -= b; }
  friend constexpr SimTime operator*(SimTime a, double k) {
    return SimTime(static_cast<std::int64_t>(a.us_ * k));
  }
  friend constexpr SimTime operator*(double k, SimTime a) { return a * k; }
  friend constexpr double operator/(SimTime a, SimTime b) {
    return static_cast<double>(a.us_) / static_cast<double>(b.us_);
  }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.as_seconds() << "s";
  }

 private:
  constexpr explicit SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

// Time to transmit `bytes` at `bits_per_second` (rounded up to whole µs).
[[nodiscard]] constexpr SimTime transmission_time(std::size_t bytes,
                                                  double bits_per_second) {
  const double seconds = static_cast<double>(bytes) * 8.0 / bits_per_second;
  const auto us = static_cast<std::int64_t>(seconds * 1e6) + 1;
  return SimTime::micros(us);
}

}  // namespace pds
