// Lightweight always-on assertions for protocol invariants.
//
// Simulation code checks invariants that, when violated, indicate a protocol
// bug rather than bad user input; we terminate with a readable message instead
// of continuing with corrupted state.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pds::detail {

[[noreturn]] inline void assertion_failure(const char* expr, const char* file,
                                           int line) {
  std::fprintf(stderr, "PDS invariant violated: %s at %s:%d\n", expr, file,
               line);
  std::abort();
}

}  // namespace pds::detail

#define PDS_ENSURE(cond)                                       \
  do {                                                         \
    if (!(cond)) {                                             \
      ::pds::detail::assertion_failure(#cond, __FILE__, __LINE__); \
    }                                                          \
  } while (false)
