// Strong identifier types shared across the PDS stack.
//
// Node, query, response and data-item identifiers are all integers on the
// wire, but mixing them up is a classic source of routing bugs; each gets its
// own incompatible wrapper type.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace pds {

template <typename Tag, typename Rep>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  static constexpr StrongId invalid() { return StrongId(); }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value_;
  }

 private:
  static constexpr Rep kInvalid = std::numeric_limits<Rep>::max();
  Rep value_ = kInvalid;
};

struct NodeIdTag {};
struct QueryIdTag {};
struct ResponseIdTag {};
struct ItemIdTag {};

// A device participating in peer data sharing.
using NodeId = StrongId<NodeIdTag, std::uint32_t>;
// Globally unique query identifier (random; detects redundant copies).
using QueryId = StrongId<QueryIdTag, std::uint64_t>;
// Globally unique response identifier (random; detects redundant copies).
using ResponseId = StrongId<ResponseIdTag, std::uint64_t>;
// Identity of a data item: hash of its canonical descriptor encoding.
using ItemId = StrongId<ItemIdTag, std::uint64_t>;

// Index of a chunk within a large data item (0-based).
using ChunkIndex = std::uint32_t;

}  // namespace pds

namespace std {

template <typename Tag, typename Rep>
struct hash<pds::StrongId<Tag, Rep>> {
  size_t operator()(pds::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

}  // namespace std
