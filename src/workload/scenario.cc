#include "workload/scenario.h"

#include <string>

#include "common/assert.h"
#include "obs/metrics.h"

namespace pds::wl {

core::PdsNode& Scenario::add_node(NodeId id, sim::Vec2 pos,
                                  const core::PdsConfig& config,
                                  bool enabled) {
  PDS_ENSURE(!by_id_.contains(id));
  auto node =
      std::make_unique<core::PdsNode>(sim_, medium_, id, config, pos, enabled);
  core::PdsNode& ref = *node;
  by_id_.emplace(id, std::move(node));
  order_.push_back(id);
  return ref;
}

core::PdsNode& Scenario::node(NodeId id) {
  auto it = by_id_.find(id);
  PDS_ENSURE(it != by_id_.end());
  return *it->second;
}

std::vector<core::PdsNode*> Scenario::nodes() {
  std::vector<core::PdsNode*> out;
  out.reserve(order_.size());
  for (NodeId id : order_) out.push_back(&node(id));
  return out;
}

void Scenario::register_metrics(obs::MetricsRegistry& registry) {
  medium_.register_metrics(registry, "radio.");
  for (const NodeId id : order_) {
    node(id).transport().register_metrics(
        registry, "node" + std::to_string(id.value()) + ".transport.");
  }
}

void Scenario::install_faults(const sim::FaultSchedule& schedule) {
  if (!faults_) {
    faults_ = std::make_unique<sim::FaultInjector>(
        sim_, medium_,
        sim::FaultInjector::Hooks{
            .crash = [this](NodeId id, bool wipe) { node(id).crash(wipe); },
            .restart = [this](NodeId id) { node(id).restart(); }});
  }
  faults_->install(schedule);
}

Grid make_grid(const GridSetup& setup, std::uint64_t seed) {
  sim::RadioConfig radio = setup.radio;
  const bool pinned_interference =
      radio.interference_range_m > 0.0 &&
      radio.interference_range_m <= radio.range_m;
  radio.range_m = setup.range_m;
  if (pinned_interference) radio.interference_range_m = setup.range_m;
  const double spacing = sim::grid_spacing_for_range(setup.range_m);

  Grid grid;
  grid.nx = setup.nx;
  grid.ny = setup.ny;
  grid.scenario = std::make_unique<Scenario>(seed, radio, setup.scheduler);
  const std::vector<sim::Vec2> positions =
      sim::grid_positions(setup.nx, setup.ny, spacing);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const NodeId id(static_cast<std::uint32_t>(i));
    grid.scenario->add_node(id, positions[i], setup.pds);
    grid.ids.push_back(id);
  }
  grid.center = grid.ids[sim::grid_center_index(setup.nx, setup.ny)];
  return grid;
}

std::vector<NodeId> center_subgrid(const Grid& grid, std::size_t cx,
                                   std::size_t cy) {
  const std::size_t nx = grid.nx;
  const std::size_t ny = grid.ny;
  PDS_ENSURE(cx <= nx && cy <= ny);
  const std::size_t x0 = (nx - cx) / 2;
  const std::size_t y0 = (ny - cy) / 2;
  std::vector<NodeId> out;
  for (std::size_t row = y0; row < y0 + cy; ++row) {
    for (std::size_t col = x0; col < x0 + cx; ++col) {
      out.push_back(grid.ids[row * nx + col]);
    }
  }
  return out;
}

namespace {

// Is the unit-disk graph over the present nodes' positions connected?
bool placement_connected(const sim::MobilityTrace& trace, double range_m) {
  std::vector<sim::Vec2> present;
  for (const sim::InitialPlacement& p : trace.initial()) {
    if (p.present) present.push_back(p.pos);
  }
  if (present.size() <= 1) return true;
  std::vector<bool> visited(present.size(), false);
  std::vector<std::size_t> frontier{0};
  visited[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const std::size_t v = frontier.back();
    frontier.pop_back();
    for (std::size_t u = 0; u < present.size(); ++u) {
      if (!visited[u] &&
          sim::distance(present[v], present[u]) <= range_m) {
        visited[u] = true;
        ++reached;
        frontier.push_back(u);
      }
    }
  }
  return reached == present.size();
}

}  // namespace

MobileWorld make_mobile_world(const MobilitySetup& setup, std::uint64_t seed) {
  sim::RadioConfig radio = setup.radio;
  const bool pinned_interference =
      radio.interference_range_m > 0.0 &&
      radio.interference_range_m <= radio.range_m;
  radio.range_m = setup.range_m;
  if (pinned_interference) radio.interference_range_m = setup.range_m;

  MobileWorld world;
  world.scenario = std::make_unique<Scenario>(seed, radio, setup.scheduler);
  Scenario& sc = *world.scenario;

  const std::size_t pool_size =
      setup.mobility.population + setup.churn_pool_extra;
  for (std::size_t i = 0; i < pool_size; ++i) {
    world.pool.push_back(NodeId(static_cast<std::uint32_t>(i)));
  }
  PDS_ENSURE(setup.pinned_consumers <= setup.mobility.population);
  for (std::size_t i = 0; i < setup.pinned_consumers; ++i) {
    world.consumers.push_back(world.pool[i]);
  }

  Rng trace_rng = sc.sim().rng().fork();
  sim::MobilityTrace trace = sim::MobilityTrace::generate(
      setup.mobility, world.pool, world.consumers, trace_rng);
  if (setup.require_connected) {
    for (int attempt = 0;
         attempt < 25 && !placement_connected(trace, setup.range_m);
         ++attempt) {
      trace = sim::MobilityTrace::generate(setup.mobility, world.pool,
                                           world.consumers, trace_rng);
    }
  }

  for (const sim::InitialPlacement& p : trace.initial()) {
    sc.add_node(p.node, p.pos, setup.pds, p.present);
    if (p.present) world.initially_present.push_back(p.node);
  }
  trace.install(sc.sim(), sc.medium());
  return world;
}

}  // namespace pds::wl
