#include "workload/scenario.h"

#include <algorithm>
#include <string>

#include "common/arena.h"
#include "common/assert.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace pds::wl {

core::PdsNode& Scenario::add_node(NodeId id, sim::Vec2 pos,
                                  const core::PdsConfig& config,
                                  bool enabled) {
  PDS_ENSURE(!by_id_.contains(id));
  auto node =
      std::make_unique<core::PdsNode>(sim_, medium_, id, config, pos, enabled);
  core::PdsNode& ref = *node;
  by_id_.emplace(id, std::move(node));
  order_.push_back(id);
  return ref;
}

core::PdsNode& Scenario::node(NodeId id) {
  auto it = by_id_.find(id);
  PDS_ENSURE(it != by_id_.end());
  return *it->second;
}

std::vector<core::PdsNode*> Scenario::nodes() {
  std::vector<core::PdsNode*> out;
  out.reserve(order_.size());
  for (NodeId id : order_) out.push_back(&node(id));
  return out;
}

void Scenario::register_metrics(obs::MetricsRegistry& registry) {
  medium_.register_metrics(registry, "radio.");
  for (const NodeId id : order_) {
    node(id).transport().register_metrics(
        registry, "node" + std::to_string(id.value()) + ".transport.");
  }
}

void Scenario::attach_sampler(obs::TimeSeries* sampler) {
  sim_.set_sampler(sampler);
  if (sampler == nullptr) return;

  // Column ids for the collector below; registration is idempotent, so
  // re-attaching the same series to a fresh scenario reuses the layout.
  struct Cols {
    int queue_len, ring_live, overflow_depth, slot_pool, events;
    int active_tx, tx_cells, max_cell_tx, air_us, radio_bytes, os_backlog;
    int inflight, send_queue, pending, reassembly, bucket_backlog;
    int store_meta, store_items, chunk_bytes, lqt_entries, bloom_fill;
    int rx_pool, block_pool, rss;
  };
  obs::TimeSeries& ts = *sampler;
  const Cols c{
      PDS_TS_COLUMN(ts, "sched.queue_len"),
      PDS_TS_COLUMN(ts, "sched.ring_live"),
      PDS_TS_COLUMN(ts, "sched.overflow_depth"),
      PDS_TS_COLUMN(ts, "sched.slot_pool"),
      PDS_TS_COLUMN(ts, "sim.events"),
      PDS_TS_COLUMN(ts, "radio.active_tx"),
      PDS_TS_COLUMN(ts, "radio.tx_cells"),
      PDS_TS_COLUMN(ts, "radio.max_cell_tx"),
      PDS_TS_COLUMN(ts, "radio.air_us"),
      PDS_TS_COLUMN(ts, "radio.bytes"),
      PDS_TS_COLUMN(ts, "radio.os_backlog_bytes"),
      PDS_TS_COLUMN(ts, "transport.inflight"),
      PDS_TS_COLUMN(ts, "transport.send_queue"),
      PDS_TS_COLUMN(ts, "transport.pending"),
      PDS_TS_COLUMN(ts, "transport.reassembly"),
      PDS_TS_COLUMN(ts, "transport.bucket_backlog_us_max"),
      PDS_TS_COLUMN(ts, "store.metadata"),
      PDS_TS_COLUMN(ts, "store.items"),
      PDS_TS_COLUMN(ts, "store.chunk_bytes"),
      PDS_TS_COLUMN(ts, "lqt.entries"),
      PDS_TS_COLUMN(ts, "lqt.bloom_fill_max"),
      PDS_TS_COLUMN(ts, "arena.rx_pool_parked"),
      PDS_TS_COLUMN(ts, "arena.block_pool_bytes", obs::TimeSeries::Kind::kWall),
      PDS_TS_COLUMN(ts, "rss.peak_mb", obs::TimeSeries::Kind::kWall),
  };

  sampler->set_collector([this, c](SimTime now, obs::TimeSeries& out) {
    const sim::EventQueue& q = sim_.queue();
    out.set(c.queue_len, static_cast<double>(q.size()));
    out.set(c.ring_live, static_cast<double>(q.ring_live()));
    out.set(c.overflow_depth, static_cast<double>(q.overflow_depth()));
    out.set(c.slot_pool, static_cast<double>(q.slot_pool_size()));
    out.set(c.events, static_cast<double>(sim_.events_executed()));

    const auto tx = medium_.tx_cell_occupancy();
    out.set(c.active_tx, static_cast<double>(medium_.active_transmitters()));
    out.set(c.tx_cells, static_cast<double>(tx.cells));
    out.set(c.max_cell_tx, static_cast<double>(tx.max_per_cell));
    out.set(c.air_us, static_cast<double>(medium_.stats().air_time_us));
    out.set(c.radio_bytes,
            static_cast<double>(medium_.stats().bytes_transmitted));
    out.set(c.os_backlog,
            static_cast<double>(medium_.total_os_backlog_bytes()));

    double inflight = 0, send_queue = 0, pending = 0, reassembly = 0;
    double bucket_max = 0, meta = 0, items = 0, chunk_bytes = 0;
    double lqt_entries = 0, bloom_max = 0;
    for (const NodeId id : order_) {
      core::PdsNode& n = node(id);
      const net::Transport& t = n.transport();
      inflight += static_cast<double>(t.inflight());
      send_queue += static_cast<double>(t.queued_sends());
      pending += static_cast<double>(t.pending_count());
      reassembly += static_cast<double>(t.reassembly_count());
      bucket_max = std::max(bucket_max,
                            static_cast<double>(t.bucket_backlog_us(now)));
      meta += static_cast<double>(n.store().metadata_count(now));
      items += static_cast<double>(n.store().item_count());
      chunk_bytes += static_cast<double>(n.store().cached_chunk_bytes());
      lqt_entries += static_cast<double>(n.lqt().size());
      bloom_max = std::max(bloom_max, n.lqt().bloom_stats().max_fill);
    }
    out.set(c.inflight, inflight);
    out.set(c.send_queue, send_queue);
    out.set(c.pending, pending);
    out.set(c.reassembly, reassembly);
    out.set(c.bucket_backlog, bucket_max);
    out.set(c.store_meta, meta);
    out.set(c.store_items, items);
    out.set(c.chunk_bytes, chunk_bytes);
    out.set(c.lqt_entries, lqt_entries);
    out.set(c.bloom_fill, bloom_max);

    out.set(c.rx_pool, static_cast<double>(medium_.receiver_pool_parked()));
    // Wall-kind columns: thread/host facts, excluded from the deterministic
    // projection (the thread-local block pool depends on which worker thread
    // runs this seed and how many seeds warmed it before).
    out.set(c.block_pool,
            static_cast<double>(BlockPool::local().parked_bytes()));
    out.set(c.rss, obs::peak_rss_mb());
  });
}

void Scenario::install_faults(const sim::FaultSchedule& schedule) {
  if (!faults_) {
    faults_ = std::make_unique<sim::FaultInjector>(
        sim_, medium_,
        sim::FaultInjector::Hooks{
            .crash = [this](NodeId id, bool wipe) { node(id).crash(wipe); },
            .restart = [this](NodeId id) { node(id).restart(); }});
  }
  faults_->install(schedule);
}

Grid make_grid(const GridSetup& setup, std::uint64_t seed) {
  sim::RadioConfig radio = setup.radio;
  const bool pinned_interference =
      radio.interference_range_m > 0.0 &&
      radio.interference_range_m <= radio.range_m;
  radio.range_m = setup.range_m;
  if (pinned_interference) radio.interference_range_m = setup.range_m;
  const double spacing = sim::grid_spacing_for_range(setup.range_m);

  Grid grid;
  grid.nx = setup.nx;
  grid.ny = setup.ny;
  grid.scenario = std::make_unique<Scenario>(seed, radio, setup.scheduler);
  const std::vector<sim::Vec2> positions =
      sim::grid_positions(setup.nx, setup.ny, spacing);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const NodeId id(static_cast<std::uint32_t>(i));
    if (setup.node_config) {
      core::PdsConfig pds = setup.pds;
      setup.node_config(id, pds);
      grid.scenario->add_node(id, positions[i], pds);
    } else {
      grid.scenario->add_node(id, positions[i], setup.pds);
    }
    grid.ids.push_back(id);
  }
  grid.center = grid.ids[sim::grid_center_index(setup.nx, setup.ny)];
  return grid;
}

std::vector<NodeId> center_subgrid(const Grid& grid, std::size_t cx,
                                   std::size_t cy) {
  const std::size_t nx = grid.nx;
  const std::size_t ny = grid.ny;
  PDS_ENSURE(cx <= nx && cy <= ny);
  const std::size_t x0 = (nx - cx) / 2;
  const std::size_t y0 = (ny - cy) / 2;
  std::vector<NodeId> out;
  for (std::size_t row = y0; row < y0 + cy; ++row) {
    for (std::size_t col = x0; col < x0 + cx; ++col) {
      out.push_back(grid.ids[row * nx + col]);
    }
  }
  return out;
}

namespace {

// Is the unit-disk graph over the present nodes' positions connected?
bool placement_connected(const sim::MobilityTrace& trace, double range_m) {
  std::vector<sim::Vec2> present;
  for (const sim::InitialPlacement& p : trace.initial()) {
    if (p.present) present.push_back(p.pos);
  }
  if (present.size() <= 1) return true;
  std::vector<bool> visited(present.size(), false);
  std::vector<std::size_t> frontier{0};
  visited[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const std::size_t v = frontier.back();
    frontier.pop_back();
    for (std::size_t u = 0; u < present.size(); ++u) {
      if (!visited[u] &&
          sim::distance(present[v], present[u]) <= range_m) {
        visited[u] = true;
        ++reached;
        frontier.push_back(u);
      }
    }
  }
  return reached == present.size();
}

}  // namespace

MobileWorld make_mobile_world(const MobilitySetup& setup, std::uint64_t seed) {
  sim::RadioConfig radio = setup.radio;
  const bool pinned_interference =
      radio.interference_range_m > 0.0 &&
      radio.interference_range_m <= radio.range_m;
  radio.range_m = setup.range_m;
  if (pinned_interference) radio.interference_range_m = setup.range_m;

  MobileWorld world;
  world.scenario = std::make_unique<Scenario>(seed, radio, setup.scheduler);
  Scenario& sc = *world.scenario;

  const std::size_t pool_size =
      setup.mobility.population + setup.churn_pool_extra;
  for (std::size_t i = 0; i < pool_size; ++i) {
    world.pool.push_back(NodeId(static_cast<std::uint32_t>(i)));
  }
  PDS_ENSURE(setup.pinned_consumers <= setup.mobility.population);
  for (std::size_t i = 0; i < setup.pinned_consumers; ++i) {
    world.consumers.push_back(world.pool[i]);
  }

  Rng trace_rng = sc.sim().rng().fork();
  sim::MobilityTrace trace = sim::MobilityTrace::generate(
      setup.mobility, world.pool, world.consumers, trace_rng);
  if (setup.require_connected) {
    for (int attempt = 0;
         attempt < 25 && !placement_connected(trace, setup.range_m);
         ++attempt) {
      trace = sim::MobilityTrace::generate(setup.mobility, world.pool,
                                           world.consumers, trace_rng);
    }
  }

  for (const sim::InitialPlacement& p : trace.initial()) {
    sc.add_node(p.node, p.pos, setup.pds, p.present);
    if (p.present) world.initially_present.push_back(p.node);
  }
  trace.install(sc.sim(), sc.medium());
  return world;
}

}  // namespace pds::wl
