// Reusable experiment harnesses.
//
// Each function assembles a full scenario, drives it to completion and
// returns the paper's metrics (§VI-A): Recall — fraction of distinct
// entries/chunks the consumer received; Latency — from sending the query to
// the arrival of the last returned entry/chunk; Message overhead — total
// bytes of all messages on the air. Bench binaries and integration tests are
// thin wrappers around these.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/config.h"
#include "sim/faults.h"
#include "sim/mobility.h"
#include "workload/scenario.h"

namespace pds::obs {
class Profiler;
class TimeSeries;
class Tracer;
}  // namespace pds::obs

namespace pds::wl {

// -- PDD on the static grid (§VI-B.1/2; Figs. 4–8 and the saturation text) --

struct PddGridParams {
  std::size_t nx = 10;
  std::size_t ny = 10;
  std::size_t metadata_count = 5000;
  int redundancy = 1;
  bool multi_round = true;  // false = single round (no re-query)
  bool ack = true;          // per-hop ack/retransmission
  std::size_t consumers = 1;
  bool sequential = false;  // consumers one-after-another vs simultaneous
  core::PdsConfig pds;
  // Radio profile (range is still taken from the grid geometry); lets tests
  // flip e.g. use_spatial_grid while holding everything else fixed.
  sim::RadioConfig radio;
  // Event scheduler; kHeap is the bit-identical oracle (sim/event_queue.h).
  sim::SchedulerKind scheduler = sim::SchedulerKind::kCalendar;
  std::uint64_t seed = 1;
  SimTime horizon = SimTime::seconds(180.0);
  // Optional structured-event tracer attached to the run's simulator (owned
  // by the caller; see src/obs/trace.h). Tracing never perturbs outcomes.
  obs::Tracer* tracer = nullptr;
  // Optional flight-recorder sampler / wall-clock profiler (obs/timeseries.h,
  // obs/profiler.h; both caller-owned). Sampling reads state only, so
  // sampled and unsampled runs stay byte-identical.
  obs::TimeSeries* sampler = nullptr;
  obs::Profiler* profiler = nullptr;
  // Deterministic fault schedule (crash/churn/partition/burst/storm)
  // installed against the scenario before any session starts; empty = clean
  // run (see sim/faults.h and DESIGN.md §11).
  sim::FaultSchedule faults;
  // Optional per-node config override (see GridSetup::node_config) —
  // mixed-population interop runs give different nodes different wire
  // configs while sharing every other knob.
  std::function<void(NodeId, core::PdsConfig&)> node_config;
  // Optional hook over the assembled scenario, called before any session
  // starts — e.g. to install a RadioMedium TxObserver attributing on-air
  // bytes to frame types (bench/tab_wire's query/response/ack split).
  std::function<void(Scenario&)> scenario_hook;
};

// One closed discovery round at one consumer (DiscoverySession::RoundRecord
// in experiment-friendly units).
struct PddRoundRecord {
  int round = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  std::size_t new_keys = 0;    // distinct entries first seen this round
  std::size_t cumulative = 0;  // distinct entries held after the round
  std::size_t responses = 0;   // response messages heard this round
};

struct PddOutcome {
  double recall = 0.0;     // mean over consumers
  double latency_s = 0.0;  // mean over consumers
  double overhead_mb = 0.0;
  double rounds = 0.0;  // mean over consumers
  bool all_finished = false;
  // Simulator events executed by the run — the denominator for events/sec
  // in scale benches. Deterministic for a given (params, seed).
  std::uint64_t events_executed = 0;
  std::vector<double> per_consumer_recall;
  std::vector<double> per_consumer_latency_s;
  // Per-consumer round timelines (the paper's per-round recall curves,
  // Figs. 5–8); parallel to per_consumer_recall.
  std::vector<std::vector<PddRoundRecord>> per_consumer_rounds;
};

[[nodiscard]] PddOutcome run_pdd_grid(const PddGridParams& params);

// -- PDD under mobility (Figs. 9/10) ----------------------------------------

struct PddMobilityParams {
  sim::MobilityParams mobility = sim::student_center_params();
  double range_m = 40.0;
  std::size_t metadata_count = 5000;
  int redundancy = 1;
  core::PdsConfig pds;
  std::uint64_t seed = 1;
  SimTime horizon = SimTime::seconds(180.0);
  obs::Tracer* tracer = nullptr;
  sim::FaultSchedule faults;
};

[[nodiscard]] PddOutcome run_pdd_mobility(const PddMobilityParams& params);

// -- Retrieval on the static grid (Figs. 11, 13–16) --------------------------

enum class RetrievalMethod { kPdr, kMdr };

struct RetrievalGridParams {
  std::size_t nx = 10;
  std::size_t ny = 10;
  std::size_t item_size_bytes = 20u * 1024 * 1024;
  int redundancy = 1;
  RetrievalMethod method = RetrievalMethod::kPdr;
  std::size_t consumers = 1;
  bool sequential = false;
  // Retrieval experiments default to the clean radio profile (see
  // sim/radio.h on the paper's two regimes).
  bool contended_medium = false;
  // Lets scale benches flip radio knobs (spatial grid, shard threads) while
  // holding the retrieval workload fixed; range still comes from geometry.
  sim::RadioConfig radio;
  sim::SchedulerKind scheduler = sim::SchedulerKind::kCalendar;
  core::PdsConfig pds;
  std::uint64_t seed = 1;
  SimTime horizon = SimTime::seconds(900.0);
  obs::Tracer* tracer = nullptr;
  // Flight-recorder hooks (see PddGridParams).
  obs::TimeSeries* sampler = nullptr;
  obs::Profiler* profiler = nullptr;
  sim::FaultSchedule faults;
  // Optional per-node config override (see GridSetup::node_config).
  std::function<void(NodeId, core::PdsConfig&)> node_config;
  // Optional hook over the assembled scenario (see PddGridParams).
  std::function<void(Scenario&)> scenario_hook;
};

struct RetrievalOutcome {
  double recall = 0.0;
  double latency_s = 0.0;
  double overhead_mb = 0.0;
  bool all_complete = false;
  std::uint64_t events_executed = 0;  // see PddOutcome::events_executed
  std::vector<double> per_consumer_recall;
  std::vector<double> per_consumer_latency_s;
  // Per-consumer chunk arrival times (seconds since run start, sorted) —
  // retrieval progress curves. Empty for MDR sessions, which do not track
  // per-chunk arrival times.
  std::vector<std::vector<double>> per_consumer_chunk_arrival_s;
};

[[nodiscard]] RetrievalOutcome run_retrieval_grid(
    const RetrievalGridParams& params);

// -- Retrieval under mobility (Fig. 12) -----------------------------------

struct RetrievalMobilityParams {
  sim::MobilityParams mobility = sim::student_center_params();
  double range_m = 40.0;
  std::size_t item_size_bytes = 20u * 1024 * 1024;
  int redundancy = 1;
  RetrievalMethod method = RetrievalMethod::kPdr;
  bool contended_medium = false;
  core::PdsConfig pds;
  std::uint64_t seed = 1;
  SimTime horizon = SimTime::seconds(900.0);
  obs::Tracer* tracer = nullptr;
  sim::FaultSchedule faults;
};

[[nodiscard]] RetrievalOutcome run_retrieval_mobility(
    const RetrievalMobilityParams& params);

// -- Single-hop transport (Fig. 3 and the §V.2/§V.4 parameter tables) -------

enum class TransportMode { kRawUdp, kLeakyBucket, kLeakyBucketAck };

struct SingleHopParams {
  std::size_t senders = 1;
  std::size_t messages_per_sender = 2000;
  std::size_t message_bytes = 1500;
  TransportMode mode = TransportMode::kRawUdp;
  std::size_t bucket_capacity_bytes = 300'000;
  double leak_rate_bps = 4.5e6;
  SimTime retr_timeout = SimTime::millis(200);
  int max_retransmissions = 4;
  sim::SchedulerKind scheduler = sim::SchedulerKind::kCalendar;
  std::uint64_t seed = 1;
  SimTime horizon = SimTime::seconds(120.0);
  // Optional tracer (see obs/trace.h). Single-hop runs emit the full causal
  // span set (root/tx at senders, recv/deliver at the receiver, xmit per
  // frame), which makes this the golden-path fixture for DAG stitching.
  obs::Tracer* tracer = nullptr;
};

struct SingleHopOutcome {
  double reception = 0.0;       // distinct messages received / offered
  double data_rate_mbps = 0.0;  // goodput at the receiver
};

[[nodiscard]] SingleHopOutcome run_single_hop(const SingleHopParams& params);

}  // namespace pds::wl
