#include "workload/experiment.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <unordered_set>

#include "common/assert.h"
#include "obs/trace.h"
#include "workload/generator.h"

namespace pds::wl {

namespace {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

std::vector<PddRoundRecord> round_timeline(const core::DiscoverySession& s) {
  std::vector<PddRoundRecord> out;
  out.reserve(s.round_history().size());
  for (const core::DiscoverySession::RoundRecord& r : s.round_history()) {
    out.push_back(PddRoundRecord{.round = r.round,
                                 .start_s = r.start.as_seconds(),
                                 .end_s = r.end.as_seconds(),
                                 .new_keys = r.new_keys,
                                 .cumulative = r.cumulative,
                                 .responses = r.responses});
  }
  return out;
}

// Consumer placement: the paper puts a single consumer at the grid center
// and multiple consumers at random nodes of the center 5×5 subgrid.
std::vector<NodeId> pick_consumers(const Grid& grid, std::size_t count,
                                   Rng& rng) {
  std::vector<NodeId> consumers{grid.center};
  if (count <= 1) return consumers;
  std::vector<NodeId> candidates = center_subgrid(
      grid, std::min<std::size_t>(5, grid.nx), std::min<std::size_t>(5, grid.ny));
  candidates.erase(
      std::remove(candidates.begin(), candidates.end(), grid.center),
      candidates.end());
  rng.shuffle(candidates);
  for (std::size_t i = 0; i + 1 < count && i < candidates.size(); ++i) {
    consumers.push_back(candidates[i]);
  }
  return consumers;
}

}  // namespace

PddOutcome run_pdd_grid(const PddGridParams& params) {
  core::PdsConfig pds = params.pds;
  pds.transport.reliability_enabled = params.ack;
  if (!params.multi_round) {
    pds.max_rounds = 1;
    pds.empty_round_retries = 0;
  }

  GridSetup setup;
  setup.nx = params.nx;
  setup.ny = params.ny;
  setup.radio = params.radio;
  setup.scheduler = params.scheduler;
  setup.pds = pds;
  setup.node_config = params.node_config;
  Grid grid = make_grid(setup, params.seed);
  Scenario& sc = *grid.scenario;
  sc.set_tracer(params.tracer);
  sc.attach_sampler(params.sampler);
  sc.set_profiler(params.profiler);
  if (params.scenario_hook) params.scenario_hook(sc);

  Rng rng(params.seed * 7919 + 17);
  const std::vector<NodeId> consumers =
      pick_consumers(grid, params.consumers, rng);

  std::vector<core::DataDescriptor> entries =
      make_sample_descriptors(params.metadata_count, SampleSpace{}, rng);
  std::vector<core::PdsNode*> nodes = sc.nodes();
  distribute_metadata(nodes, entries, params.redundancy, rng, consumers);

  sc.reset_overhead();
  if (!params.faults.empty()) sc.install_faults(params.faults);

  std::vector<const core::DiscoverySession*> sessions(consumers.size(),
                                                      nullptr);
  std::function<void(std::size_t)> start_consumer = [&](std::size_t i) {
    sessions[i] = &sc.node(consumers[i])
                       .discover(core::Filter{},
                                 [&, i](const core::DiscoverySession::Result&) {
                                   if (params.sequential &&
                                       i + 1 < consumers.size()) {
                                     start_consumer(i + 1);
                                   }
                                 });
  };
  if (params.sequential) {
    start_consumer(0);
  } else {
    for (std::size_t i = 0; i < consumers.size(); ++i) start_consumer(i);
  }

  sc.run_until(params.horizon);

  PddOutcome out;
  out.all_finished = true;
  std::vector<double> rounds;
  for (const core::DiscoverySession* s : sessions) {
    if (s == nullptr || !s->finished()) {
      out.all_finished = false;
      if (s == nullptr) continue;
    }
    out.per_consumer_recall.push_back(
        static_cast<double>(s->arrivals().size()) /
        static_cast<double>(params.metadata_count));
    out.per_consumer_latency_s.push_back(
        s->finished() ? s->result().latency.as_seconds() : 0.0);
    rounds.push_back(static_cast<double>(
        s->finished() ? s->result().rounds : 0));
    out.per_consumer_rounds.push_back(round_timeline(*s));
  }
  out.recall = mean(out.per_consumer_recall);
  out.latency_s = mean(out.per_consumer_latency_s);
  out.rounds = mean(rounds);
  out.overhead_mb = sc.overhead_mb();
  out.events_executed = sc.sim().events_executed();
  return out;
}

PddOutcome run_pdd_mobility(const PddMobilityParams& params) {
  MobilitySetup setup;
  setup.mobility = params.mobility;
  setup.range_m = params.range_m;
  setup.pds = params.pds;
  setup.pinned_consumers = 1;
  MobileWorld world = make_mobile_world(setup, params.seed);
  Scenario& sc = *world.scenario;
  sc.set_tracer(params.tracer);

  Rng rng(params.seed * 104729 + 29);
  std::vector<core::DataDescriptor> entries =
      make_sample_descriptors(params.metadata_count, SampleSpace{}, rng);
  // Producers are the initially present nodes; data leaves with them when
  // they walk out.
  std::vector<core::PdsNode*> present;
  for (NodeId id : world.initially_present) present.push_back(&sc.node(id));
  distribute_metadata(present, entries, params.redundancy, rng,
                      world.consumers);

  sc.reset_overhead();
  if (!params.faults.empty()) sc.install_faults(params.faults);
  const core::DiscoverySession* session = nullptr;
  session = &sc.node(world.consumers.front())
                 .discover(core::Filter{},
                           [](const core::DiscoverySession::Result&) {});
  sc.run_until(params.horizon);

  PddOutcome out;
  out.all_finished = session->finished();
  out.recall = static_cast<double>(session->arrivals().size()) /
               static_cast<double>(params.metadata_count);
  out.latency_s =
      session->finished() ? session->result().latency.as_seconds() : 0.0;
  out.rounds =
      session->finished() ? static_cast<double>(session->result().rounds) : 0.0;
  out.per_consumer_recall = {out.recall};
  out.per_consumer_latency_s = {out.latency_s};
  out.per_consumer_rounds = {round_timeline(*session)};
  out.overhead_mb = sc.overhead_mb();
  out.events_executed = sc.sim().events_executed();
  return out;
}

namespace {

// Sorted chunk-arrival seconds for a PDR session (empty for MDR/null).
std::vector<double> chunk_timeline(const core::PdrSession* s) {
  std::vector<double> out;
  if (s == nullptr) return out;
  out.reserve(s->arrivals().size());
  for (const auto& [chunk, when] : s->arrivals()) {
    out.push_back(when.as_seconds());
  }
  std::sort(out.begin(), out.end());
  return out;
}

RetrievalOutcome collect_retrieval(
    Scenario& sc, std::size_t total_chunks,
    const std::vector<core::RetrievalResult>& results,
    const std::vector<bool>& finished) {
  RetrievalOutcome out;
  out.all_complete = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!finished[i] || !results[i].complete) out.all_complete = false;
    out.per_consumer_recall.push_back(
        static_cast<double>(results[i].chunks_received) /
        static_cast<double>(total_chunks));
    out.per_consumer_latency_s.push_back(results[i].latency.as_seconds());
  }
  double recall_sum = 0.0;
  double latency_sum = 0.0;
  for (double r : out.per_consumer_recall) recall_sum += r;
  for (double l : out.per_consumer_latency_s) latency_sum += l;
  const auto n = static_cast<double>(results.size());
  out.recall = n == 0.0 ? 0.0 : recall_sum / n;
  out.latency_s = n == 0.0 ? 0.0 : latency_sum / n;
  out.overhead_mb = sc.overhead_mb();
  return out;
}

}  // namespace

RetrievalOutcome run_retrieval_grid(const RetrievalGridParams& params) {
  GridSetup setup;
  setup.nx = params.nx;
  setup.ny = params.ny;
  setup.radio = params.contended_medium ? sim::contended_radio_profile()
                                        : sim::clean_radio_profile();
  // Mechanical knobs (index/parallelism choices that never change outcomes)
  // come from the caller's radio config; the physics stays profile-driven.
  setup.radio.use_spatial_grid = params.radio.use_spatial_grid;
  setup.radio.shard_threads = params.radio.shard_threads;
  setup.scheduler = params.scheduler;
  setup.pds = params.pds;
  setup.node_config = params.node_config;
  Grid grid = make_grid(setup, params.seed);
  Scenario& sc = *grid.scenario;
  sc.set_tracer(params.tracer);
  sc.attach_sampler(params.sampler);
  sc.set_profiler(params.profiler);
  if (params.scenario_hook) params.scenario_hook(sc);

  Rng rng(params.seed * 6151 + 3);
  const std::vector<NodeId> consumers =
      pick_consumers(grid, params.consumers, rng);

  const core::DataDescriptor item = make_chunked_item(
      "clip", params.item_size_bytes, params.pds.chunk_size_bytes);
  const std::size_t total_chunks = chunk_count(item);
  std::vector<core::PdsNode*> nodes = sc.nodes();
  distribute_chunks(nodes, item, params.item_size_bytes,
                    params.pds.chunk_size_bytes, params.redundancy, rng,
                    consumers);

  sc.reset_overhead();
  if (!params.faults.empty()) sc.install_faults(params.faults);

  std::vector<core::RetrievalResult> results(consumers.size());
  std::vector<bool> finished(consumers.size(), false);
  std::vector<const core::PdrSession*> pdr_sessions(consumers.size(), nullptr);
  std::function<void(std::size_t)> start_consumer = [&](std::size_t i) {
    auto done = [&, i](const core::RetrievalResult& r) {
      results[i] = r;
      finished[i] = true;
      if (params.sequential && i + 1 < consumers.size()) {
        start_consumer(i + 1);
      }
    };
    if (params.method == RetrievalMethod::kPdr) {
      pdr_sessions[i] = &sc.node(consumers[i]).retrieve(item, done);
    } else {
      sc.node(consumers[i]).retrieve_mdr(item, done);
    }
  };
  if (params.sequential) {
    start_consumer(0);
  } else {
    for (std::size_t i = 0; i < consumers.size(); ++i) start_consumer(i);
  }

  sc.run_until(params.horizon);
  RetrievalOutcome out = collect_retrieval(sc, total_chunks, results, finished);
  for (const core::PdrSession* s : pdr_sessions) {
    out.per_consumer_chunk_arrival_s.push_back(chunk_timeline(s));
  }
  out.events_executed = sc.sim().events_executed();
  return out;
}

RetrievalOutcome run_retrieval_mobility(
    const RetrievalMobilityParams& params) {
  MobilitySetup setup;
  setup.mobility = params.mobility;
  setup.range_m = params.range_m;
  setup.radio = params.contended_medium ? sim::contended_radio_profile()
                                        : sim::clean_radio_profile();
  setup.pds = params.pds;
  setup.pinned_consumers = 1;
  MobileWorld world = make_mobile_world(setup, params.seed);
  Scenario& sc = *world.scenario;
  sc.set_tracer(params.tracer);

  Rng rng(params.seed * 2741 + 11);
  const core::DataDescriptor item = make_chunked_item(
      "clip", params.item_size_bytes, params.pds.chunk_size_bytes);
  const std::size_t total_chunks = chunk_count(item);
  std::vector<core::PdsNode*> present;
  for (NodeId id : world.initially_present) present.push_back(&sc.node(id));
  distribute_chunks(present, item, params.item_size_bytes,
                    params.pds.chunk_size_bytes, params.redundancy, rng,
                    world.consumers);

  sc.reset_overhead();
  if (!params.faults.empty()) sc.install_faults(params.faults);

  std::vector<core::RetrievalResult> results(1);
  std::vector<bool> finished(1, false);
  const core::PdrSession* pdr_session = nullptr;
  auto done = [&](const core::RetrievalResult& r) {
    results[0] = r;
    finished[0] = true;
  };
  if (params.method == RetrievalMethod::kPdr) {
    pdr_session = &sc.node(world.consumers.front()).retrieve(item, done);
  } else {
    sc.node(world.consumers.front()).retrieve_mdr(item, done);
  }

  sc.run_until(params.horizon);
  RetrievalOutcome out = collect_retrieval(sc, total_chunks, results, finished);
  out.per_consumer_chunk_arrival_s.push_back(chunk_timeline(pdr_session));
  out.events_executed = sc.sim().events_executed();
  return out;
}

SingleHopOutcome run_single_hop(const SingleHopParams& params) {
  sim::Simulator sim(params.seed, params.scheduler);
  sim.set_tracer(params.tracer);
  sim::RadioConfig radio;
  radio.range_m = 50.0;  // everyone in range: a single-hop cell
  sim::RadioMedium medium(sim, radio);
  const net::Codec codec{net::WireConfig{}};

  // Per-node causal span sequences (DESIGN.md §14); the same
  // (node+1)<<40 | seq packing NodeContext::new_span uses. This harness has
  // no NodeContext, so spans are allocated inline.
  const auto span_of = [](NodeId node, std::uint64_t& seq) {
    return (static_cast<std::uint64_t>(node.value()) + 1) << 40 | ++seq;
  };

  net::TransportConfig sender_cfg;
  switch (params.mode) {
    case TransportMode::kRawUdp:
      // The prototype's app calls the non-blocking UDP send API "as quickly
      // as possible"; syscall throughput is far above the 7.2 Mb/s MAC
      // broadcast drain, so the OS buffer overflows and silently drops
      // (§V.2: 14% reception). We model the app-side offering rate as
      // ~50 Mb/s.
      sender_cfg.pacing_enabled = true;
      sender_cfg.bucket_capacity_bytes = params.message_bytes;
      sender_cfg.leak_rate_bps = 51.4e6;
      sender_cfg.reliability_enabled = false;
      break;
    case TransportMode::kLeakyBucket:
      sender_cfg.pacing_enabled = true;
      sender_cfg.bucket_capacity_bytes = params.bucket_capacity_bytes;
      sender_cfg.leak_rate_bps = params.leak_rate_bps;
      sender_cfg.reliability_enabled = false;
      break;
    case TransportMode::kLeakyBucketAck:
      sender_cfg.pacing_enabled = true;
      sender_cfg.bucket_capacity_bytes = params.bucket_capacity_bytes;
      sender_cfg.leak_rate_bps = params.leak_rate_bps;
      sender_cfg.reliability_enabled = true;
      sender_cfg.retr_timeout = params.retr_timeout;
      sender_cfg.max_retransmissions = params.max_retransmissions;
      break;
  }
  net::TransportConfig receiver_cfg = sender_cfg;

  const NodeId rx_id(0);
  net::BroadcastFace rx_face(medium, rx_id, sim::Vec2{0.0, 0.0});
  net::Transport receiver(sim, rx_face, rx_id, receiver_cfg, codec);

  std::unordered_set<std::uint64_t> received_ids;
  std::uint64_t received_bytes = 0;
  std::uint64_t rx_seq = 0;
  SimTime first_arrival = SimTime::zero();
  SimTime last_arrival = SimTime::zero();
  receiver.set_handler([&](const net::MessagePtr& msg) {
    if (!msg->is_response()) return;
    if (received_ids.insert(msg->response_id.value()).second) {
      if (received_ids.size() == 1) first_arrival = sim.now();
      last_arrival = sim.now();
      received_bytes += codec.wire_size(*msg);
      if (msg->trace.valid()) {
        const std::uint64_t recv_span = span_of(rx_id, rx_seq);
        PDS_TRACE_INSTANT(sim.tracer(), sim.now(), rx_id, "causal", "recv",
                          {"trace", msg->trace.trace_id}, {"span", recv_span},
                          {"parent", msg->trace.parent_span},
                          {"hop", msg->trace.hop});
        const std::uint64_t deliver_span = span_of(rx_id, rx_seq);
        PDS_TRACE_INSTANT(sim.tracer(), sim.now(), rx_id, "causal",
                          "deliver", {"trace", msg->trace.trace_id},
                          {"span", deliver_span}, {"parent", recv_span});
      }
    }
  });

  std::vector<std::unique_ptr<net::BroadcastFace>> faces;
  std::vector<std::unique_ptr<net::Transport>> senders;
  Rng rng(params.seed ^ 0xabcdef1234567890ULL);
  for (std::size_t s = 0; s < params.senders; ++s) {
    const NodeId id(static_cast<std::uint32_t>(s + 1));
    const double angle = 2.0 * 3.14159265 * static_cast<double>(s) /
                         static_cast<double>(std::max<std::size_t>(params.senders, 1));
    faces.push_back(std::make_unique<net::BroadcastFace>(
        medium, id, sim::Vec2{5.0 * std::cos(angle), 5.0 * std::sin(angle)}));
    senders.push_back(std::make_unique<net::Transport>(sim, *faces.back(), id,
                                                       sender_cfg, codec));
  }

  // A template message sized so its wire size is params.message_bytes: the
  // prototype's 1.5 KB packets.
  net::Message tmpl;
  tmpl.type = net::MessageType::kResponse;
  tmpl.kind = net::ContentKind::kItem;
  tmpl.receivers = {rx_id};
  net::ItemPayload payload;
  payload.descriptor.set(core::kAttrNamespace, std::string("bench"));
  payload.descriptor.set(core::kAttrDataType, std::string("blob"));
  payload.size_bytes = 0;
  tmpl.items = {payload};
  const std::size_t base = codec.wire_size(tmpl);
  PDS_ENSURE(params.message_bytes > base);
  tmpl.items[0].size_bytes =
      static_cast<std::uint32_t>(params.message_bytes - base);

  for (std::size_t s = 0; s < params.senders; ++s) {
    net::Transport& tx = *senders[s];
    tmpl.sender = tx.self();
    // Each sender is one causal trace: a root span, then one tx span per
    // message. trace id = the sender's first response id.
    std::uint64_t sender_seq = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t root_span = 0;
    for (std::size_t k = 0; k < params.messages_per_sender; ++k) {
      auto msg = std::make_shared<net::Message>(tmpl);
      msg->response_id = ResponseId(rng.next_u64());
      if (trace_id == 0) {
        trace_id = msg->response_id.value();
        root_span = span_of(tx.self(), sender_seq);
        PDS_TRACE_INSTANT(sim.tracer(), sim.now(), tx.self(), "causal",
                          "root", {"trace", trace_id}, {"span", root_span},
                          {"kind", "singlehop"});
      }
      const std::uint64_t tx_span = span_of(tx.self(), sender_seq);
      PDS_TRACE_INSTANT(sim.tracer(), sim.now(), tx.self(), "causal", "tx",
                        {"trace", trace_id}, {"span", tx_span},
                        {"parent", root_span}, {"hop", 0});
      msg->trace = {trace_id, tx_span, tx.self().value(), 0};
      tx.send(std::move(msg));
    }
  }

  sim.run(params.horizon);

  SingleHopOutcome out;
  const auto offered =
      static_cast<double>(params.senders * params.messages_per_sender);
  out.reception = static_cast<double>(received_ids.size()) / offered;
  const double span = (last_arrival - first_arrival).as_seconds();
  out.data_rate_mbps =
      span > 0.0 ? static_cast<double>(received_bytes) * 8.0 / span / 1e6 : 0.0;
  return out;
}

}  // namespace pds::wl
