// Scenario: one simulator + medium + a set of PDS nodes, assembled for tests,
// examples and experiment harnesses.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/node.h"
#include "sim/faults.h"
#include "sim/mobility.h"
#include "sim/radio.h"
#include "sim/simulator.h"
#include "sim/topology.h"

namespace pds::obs {
class MetricsRegistry;
class Profiler;
class TimeSeries;
class Tracer;
}  // namespace pds::obs

namespace pds::wl {

class Scenario {
 public:
  Scenario(std::uint64_t seed, sim::RadioConfig radio,
           sim::SchedulerKind scheduler = sim::SchedulerKind::kCalendar)
      : sim_(seed, scheduler), medium_(sim_, radio) {}

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  core::PdsNode& add_node(NodeId id, sim::Vec2 pos,
                          const core::PdsConfig& config, bool enabled = true);

  [[nodiscard]] core::PdsNode& node(NodeId id);
  [[nodiscard]] std::vector<core::PdsNode*> nodes();
  [[nodiscard]] std::size_t node_count() const { return order_.size(); }

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] sim::RadioMedium& medium() { return medium_; }

  // Runs the simulation until `horizon` (events beyond it stay queued).
  void run_until(SimTime horizon) { sim_.run(horizon); }

  // On-air megabytes since the last stats reset — the paper's message
  // overhead metric.
  [[nodiscard]] double overhead_mb() const {
    return static_cast<double>(medium_.stats().bytes_transmitted) / 1e6;
  }
  void reset_overhead() { medium_.stats().reset(); }

  // Attaches a structured-event tracer (null detaches). The tracer must
  // outlive the scenario's simulation runs.
  void set_tracer(obs::Tracer* tracer) { sim_.set_tracer(tracer); }

  // Attaches the flight-recorder sampler (null detaches): registers the full
  // column catalog (tools/stats_schema.h) and installs a collector that
  // snapshots scheduler occupancy, radio channel state, transport backlogs,
  // per-node store/LQT state and pool/RSS probes at every interval boundary.
  // Reads state only — sampled and unsampled runs stay byte-identical. The
  // sampler must outlive the scenario's simulation runs.
  void attach_sampler(obs::TimeSeries* sampler);

  // Attaches the scoped wall-clock profiler (null detaches); subsystem
  // PDS_PROF_SCOPE sites resolve through the simulator.
  void set_profiler(obs::Profiler* profiler) { sim_.set_profiler(profiler); }

  // Exposes the medium's stats plus every node's transport stats through
  // `registry` ("radio.*", "node<N>.transport.*"). Call after all nodes are
  // added; the registry must not outlive this scenario.
  void register_metrics(obs::MetricsRegistry& registry);

  // Installs a fault schedule against this scenario's nodes: crash/restart
  // hooks route to PdsNode::crash/restart, radio effects go straight to the
  // medium. Callable repeatedly; schedules accumulate. All referenced nodes
  // must already exist.
  void install_faults(const sim::FaultSchedule& schedule);
  // Null until install_faults() has been called.
  [[nodiscard]] sim::FaultInjector* fault_injector() { return faults_.get(); }

 private:
  sim::Simulator sim_;
  sim::RadioMedium medium_;
  std::unordered_map<NodeId, std::unique_ptr<core::PdsNode>> by_id_;
  std::vector<NodeId> order_;
  std::unique_ptr<sim::FaultInjector> faults_;
};

// A Scenario with nodes laid out as an nx × ny grid such that every node
// reaches its 8 surrounding neighbors (§VI-A); the paper's consumer sits at
// the grid center.
struct GridSetup {
  std::size_t nx = 10;
  std::size_t ny = 10;
  double range_m = 15.0;
  sim::RadioConfig radio;  // range_m is overwritten from the field above
  core::PdsConfig pds;
  // Event scheduler for the scenario's Simulator. kHeap is the oracle: for
  // any seed both kinds produce bit-identical traces and outcomes
  // (trace_determinism_test), so experiments may flip this freely.
  sim::SchedulerKind scheduler = sim::SchedulerKind::kCalendar;
  // Optional per-node config override, invoked with each node's id and a
  // copy of `pds` before the node is built. Mixed-population runs (e.g. the
  // wire-compat interop tests: half the grid on the legacy codec, half on
  // the v2 extensions) flip per-node knobs here.
  std::function<void(NodeId, core::PdsConfig&)> node_config;
};

struct Grid {
  std::unique_ptr<Scenario> scenario;
  std::vector<NodeId> ids;  // row-major
  std::size_t nx = 0;
  std::size_t ny = 0;
  NodeId center;

  [[nodiscard]] core::PdsNode& center_node() {
    return scenario->node(center);
  }
};

[[nodiscard]] Grid make_grid(const GridSetup& setup, std::uint64_t seed);

// Node ids inside the central cx × cy subgrid (the paper places multiple
// consumers randomly in the center 5×5 of the 10×10 grid).
[[nodiscard]] std::vector<NodeId> center_subgrid(const Grid& grid,
                                                 std::size_t cx,
                                                 std::size_t cy);

// A Scenario driven by a generated mobility trace. All pool nodes are
// created up front; absent ones have their radio disabled until they join.
struct MobilitySetup {
  sim::MobilityParams mobility;
  double range_m = 40.0;
  sim::RadioConfig radio;
  core::PdsConfig pds;
  std::size_t churn_pool_extra = 30;  // reserve nodes for joins
  std::size_t pinned_consumers = 1;
  sim::SchedulerKind scheduler = sim::SchedulerKind::kCalendar;
  // Uniform-random placement occasionally partitions the arena; real crowds
  // (the paper observed actual people) form one connected cluster. When
  // set, placements are re-drawn until the initially present nodes form a
  // connected unit-disk graph (bounded retries; the last draw is kept if
  // none connects).
  bool require_connected = true;
};

struct MobileWorld {
  std::unique_ptr<Scenario> scenario;
  std::vector<NodeId> pool;
  std::vector<NodeId> consumers;          // pinned, never leave
  std::vector<NodeId> initially_present;  // producers hold data only here
};

[[nodiscard]] MobileWorld make_mobile_world(const MobilitySetup& setup,
                                            std::uint64_t seed);

}  // namespace pds::wl
