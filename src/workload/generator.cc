#include "workload/generator.h"

#include <algorithm>

#include "common/assert.h"
#include "common/hash.h"

namespace pds::wl {

std::vector<core::DataDescriptor> make_sample_descriptors(
    std::size_t count, const SampleSpace& space, Rng& rng) {
  std::vector<core::DataDescriptor> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    core::DataDescriptor d;
    d.set(core::kAttrNamespace, space.namespace_name);
    d.set(core::kAttrDataType, space.data_type);
    d.set(core::kAttrTime,
          space.time_origin + rng.uniform_int(0, space.time_span_s));
    d.set("x", rng.uniform(0.0, space.area_width_m));
    d.set("y", rng.uniform(0.0, space.area_height_m));
    d.set("seq", static_cast<std::int64_t>(i));
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<net::ItemPayload> make_sample_items(std::size_t count,
                                                std::uint32_t payload_bytes,
                                                const SampleSpace& space,
                                                Rng& rng) {
  std::vector<net::ItemPayload> out;
  out.reserve(count);
  for (core::DataDescriptor& d : make_sample_descriptors(count, space, rng)) {
    net::ItemPayload item;
    item.size_bytes = payload_bytes;
    item.content_hash = mix64(d.entry_key());
    item.descriptor = std::move(d);
    out.push_back(std::move(item));
  }
  return out;
}

core::DataDescriptor make_chunked_item(const std::string& name,
                                       std::size_t size_bytes,
                                       std::size_t chunk_bytes) {
  PDS_ENSURE(size_bytes > 0 && chunk_bytes > 0);
  const std::size_t chunks = (size_bytes + chunk_bytes - 1) / chunk_bytes;
  core::DataDescriptor d;
  d.set(core::kAttrNamespace, std::string("media"));
  d.set(core::kAttrDataType, std::string("video"));
  d.set(core::kAttrName, name);
  d.set("size", static_cast<std::int64_t>(size_bytes));
  d.set(core::kAttrTotalChunks, static_cast<std::int64_t>(chunks));
  return d;
}

std::size_t chunk_count(const core::DataDescriptor& item) {
  const auto total = item.total_chunks();
  PDS_ENSURE(total.has_value());
  return static_cast<std::size_t>(*total);
}

std::uint64_t chunk_content_hash(ItemId item, ChunkIndex index) {
  return mix64(item.value() ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
}

net::ChunkPayload make_chunk(const core::DataDescriptor& item,
                             ChunkIndex index, std::size_t item_size_bytes,
                             std::size_t chunk_bytes) {
  const std::size_t chunks = chunk_count(item);
  PDS_ENSURE(index < chunks);
  const std::size_t offset = static_cast<std::size_t>(index) * chunk_bytes;
  const std::size_t size = std::min(chunk_bytes, item_size_bytes - offset);
  return net::ChunkPayload{
      .index = index,
      .size_bytes = static_cast<std::uint32_t>(size),
      .content_hash = chunk_content_hash(item.item_id(), index)};
}

namespace {

// Uniform-random node choices avoiding `exclude`.
std::vector<core::PdsNode*> eligible_nodes(
    std::vector<core::PdsNode*>& nodes, const std::vector<NodeId>& exclude) {
  std::vector<core::PdsNode*> out;
  for (core::PdsNode* n : nodes) {
    if (std::find(exclude.begin(), exclude.end(), n->id()) == exclude.end()) {
      out.push_back(n);
    }
  }
  PDS_ENSURE(!out.empty());
  return out;
}

// `redundancy` distinct nodes for one object (or all nodes if fewer).
std::vector<core::PdsNode*> pick_holders(std::vector<core::PdsNode*>& pool,
                                         int redundancy, Rng& rng) {
  PDS_ENSURE(redundancy >= 1);
  std::vector<core::PdsNode*> picked;
  std::vector<core::PdsNode*> candidates = pool;
  for (int r = 0; r < redundancy && !candidates.empty(); ++r) {
    const auto idx = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(candidates.size()) - 1));
    picked.push_back(candidates[idx]);
    candidates[idx] = candidates.back();
    candidates.pop_back();
  }
  return picked;
}

}  // namespace

void distribute_metadata(std::vector<core::PdsNode*>& nodes,
                         const std::vector<core::DataDescriptor>& entries,
                         int redundancy, Rng& rng,
                         const std::vector<NodeId>& exclude) {
  std::vector<core::PdsNode*> pool = eligible_nodes(nodes, exclude);
  for (const core::DataDescriptor& d : entries) {
    for (core::PdsNode* n : pick_holders(pool, redundancy, rng)) {
      n->publish_metadata(d);
    }
  }
}

void distribute_items(std::vector<core::PdsNode*>& nodes,
                      const std::vector<net::ItemPayload>& items,
                      int redundancy, Rng& rng,
                      const std::vector<NodeId>& exclude) {
  std::vector<core::PdsNode*> pool = eligible_nodes(nodes, exclude);
  for (const net::ItemPayload& item : items) {
    for (core::PdsNode* n : pick_holders(pool, redundancy, rng)) {
      n->publish_item(item);
    }
  }
}

void distribute_chunks(std::vector<core::PdsNode*>& nodes,
                       const core::DataDescriptor& item,
                       std::size_t item_size_bytes, std::size_t chunk_bytes,
                       int redundancy, Rng& rng,
                       const std::vector<NodeId>& exclude) {
  std::vector<core::PdsNode*> pool = eligible_nodes(nodes, exclude);
  const std::size_t chunks = chunk_count(item);
  for (ChunkIndex c = 0; c < chunks; ++c) {
    const net::ChunkPayload payload =
        make_chunk(item, c, item_size_bytes, chunk_bytes);
    for (core::PdsNode* n : pick_holders(pool, redundancy, rng)) {
      n->publish_chunk(item, payload);
    }
  }
}

}  // namespace pds::wl
