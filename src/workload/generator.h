// Synthetic workload generation.
//
// Produces the paper's two data shapes: many small sensor-sample descriptors
// (e.g., air-pollution samples with type/time/location attributes, §II-B)
// and one large chunked item (a video clip split into 256 KB chunks, §VI-A).
// Chunk payload content is deterministic — a hash of (item id, chunk index)
// — so tests can verify end-to-end integrity of whatever arrives at a
// consumer without shipping real bytes through the simulator.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/descriptor.h"
#include "core/node.h"
#include "net/message.h"

namespace pds::wl {

struct SampleSpace {
  std::string namespace_name = "env";
  std::string data_type = "nox";
  double area_width_m = 100.0;
  double area_height_m = 100.0;
  std::int64_t time_origin = 1'600'000'000;  // Unix seconds
  std::int64_t time_span_s = 3600;
};

// `count` distinct sensor-sample descriptors with uniform random time and
// location attributes plus a unique sequence attribute.
[[nodiscard]] std::vector<core::DataDescriptor> make_sample_descriptors(
    std::size_t count, const SampleSpace& space, Rng& rng);

// Complete small items (descriptor + payload bytes) over the same space.
[[nodiscard]] std::vector<net::ItemPayload> make_sample_items(
    std::size_t count, std::uint32_t payload_bytes, const SampleSpace& space,
    Rng& rng);

// Item-level descriptor of a large chunked item.
[[nodiscard]] core::DataDescriptor make_chunked_item(const std::string& name,
                                                     std::size_t size_bytes,
                                                     std::size_t chunk_bytes);

// Number of chunks of the item (from its total_chunks attribute).
[[nodiscard]] std::size_t chunk_count(const core::DataDescriptor& item);

// Deterministic synthetic content hash of one chunk.
[[nodiscard]] std::uint64_t chunk_content_hash(ItemId item, ChunkIndex index);

// Payload of chunk `index`, sized for `size_bytes` total item size.
[[nodiscard]] net::ChunkPayload make_chunk(const core::DataDescriptor& item,
                                           ChunkIndex index,
                                           std::size_t item_size_bytes,
                                           std::size_t chunk_bytes);

// -- Placement ----------------------------------------------------------------

// Places `redundancy` copies of each descriptor on distinct uniform-random
// nodes (§VI-A). Nodes in `exclude` never receive copies.
void distribute_metadata(std::vector<core::PdsNode*>& nodes,
                         const std::vector<core::DataDescriptor>& entries,
                         int redundancy, Rng& rng,
                         const std::vector<NodeId>& exclude = {});

// Same for complete small items.
void distribute_items(std::vector<core::PdsNode*>& nodes,
                      const std::vector<net::ItemPayload>& items,
                      int redundancy, Rng& rng,
                      const std::vector<NodeId>& exclude = {});

// Distributes every chunk of `item` `redundancy` times uniformly at random.
void distribute_chunks(std::vector<core::PdsNode*>& nodes,
                       const core::DataDescriptor& item,
                       std::size_t item_size_bytes, std::size_t chunk_bytes,
                       int redundancy, Rng& rng,
                       const std::vector<NodeId>& exclude = {});

}  // namespace pds::wl
