// Wire codec tests: lossless round trips for every message shape and the
// sizing rules the overhead metric depends on.
#include <gtest/gtest.h>

#include "net/codec.h"
#include "net/message.h"

namespace pds::net {
namespace {

core::DataDescriptor item_descriptor() {
  core::DataDescriptor d;
  d.set(core::kAttrNamespace, std::string("media"));
  d.set(core::kAttrDataType, std::string("video"));
  d.set(core::kAttrName, std::string("clip"));
  d.set(core::kAttrTotalChunks, std::int64_t{80});
  return d;
}

Message base_query() {
  Message m;
  m.type = MessageType::kQuery;
  m.kind = ContentKind::kMetadata;
  m.query_id = QueryId(0xabcdef);
  m.sender = NodeId(7);
  m.expire_at = SimTime::seconds(12.5);
  m.ttl = 6;
  return m;
}

void expect_equal(const Message& a, const Message& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.query_id, b.query_id);
  EXPECT_EQ(a.response_id, b.response_id);
  EXPECT_EQ(a.sender, b.sender);
  EXPECT_EQ(a.receivers, b.receivers);
  EXPECT_EQ(a.expire_at, b.expire_at);
  EXPECT_EQ(a.ttl, b.ttl);
  EXPECT_EQ(a.filter, b.filter);
  EXPECT_EQ(a.target, b.target);
  EXPECT_EQ(a.requested_chunks, b.requested_chunks);
  EXPECT_EQ(a.metadata, b.metadata);
  EXPECT_EQ(a.cdi, b.cdi);
  EXPECT_EQ(a.chunk, b.chunk);
  EXPECT_EQ(a.items, b.items);
  EXPECT_EQ(a.ack_tokens, b.ack_tokens);
  EXPECT_EQ(a.acker, b.acker);
}

TEST(Codec, MetadataQueryRoundTrip) {
  Codec codec;
  Message m = base_query();
  m.receivers = {NodeId(1), NodeId(2)};
  m.filter.where("type", core::Relation::kEq, std::string("nox"));
  m.exclude = util::BloomFilter::with_capacity(100, 0.01, 3);
  m.exclude.insert(42);

  const Message out = codec.decode(codec.encode(m));
  expect_equal(out, m);
  EXPECT_TRUE(out.exclude.maybe_contains(42));
  EXPECT_EQ(out.exclude.seed(), m.exclude.seed());
}

TEST(Codec, MetadataResponseRoundTrip) {
  Codec codec;
  Message m;
  m.type = MessageType::kResponse;
  m.kind = ContentKind::kMetadata;
  m.response_id = ResponseId(99);
  m.sender = NodeId(3);
  m.receivers = {NodeId(4)};
  for (int i = 0; i < 5; ++i) {
    core::DataDescriptor d;
    d.set("seq", std::int64_t{i});
    m.metadata.push_back(std::move(d));
  }
  expect_equal(codec.decode(codec.encode(m)), m);
}

TEST(Codec, CdiMessagesRoundTrip) {
  Codec codec;
  Message q = base_query();
  q.kind = ContentKind::kCdi;
  q.target = item_descriptor();
  expect_equal(codec.decode(codec.encode(q)), q);

  Message r;
  r.type = MessageType::kResponse;
  r.kind = ContentKind::kCdi;
  r.response_id = ResponseId(5);
  r.sender = NodeId(2);
  r.receivers = {NodeId(9)};
  r.target = item_descriptor();
  r.cdi = {{.chunk = 0, .hop_count = 1}, {.chunk = 7, .hop_count = 0}};
  expect_equal(codec.decode(codec.encode(r)), r);
}

TEST(Codec, ChunkMessagesRoundTrip) {
  Codec codec;
  Message q = base_query();
  q.kind = ContentKind::kChunk;
  q.target = item_descriptor();
  q.requested_chunks = {1, 5, 9};
  q.receivers = {NodeId(11)};
  expect_equal(codec.decode(codec.encode(q)), q);

  Message r;
  r.type = MessageType::kResponse;
  r.kind = ContentKind::kChunk;
  r.response_id = ResponseId(6);
  r.sender = NodeId(12);
  r.receivers = {NodeId(13)};
  r.target = item_descriptor();
  r.chunk = ChunkPayload{.index = 5, .size_bytes = 262144, .content_hash = 77};
  expect_equal(codec.decode(codec.encode(r)), r);
}

TEST(Codec, ItemResponseRoundTrip) {
  Codec codec;
  Message r;
  r.type = MessageType::kResponse;
  r.kind = ContentKind::kItem;
  r.response_id = ResponseId(8);
  r.sender = NodeId(1);
  r.receivers = {NodeId(2)};
  ItemPayload item;
  item.descriptor.set("seq", std::int64_t{1});
  item.size_bytes = 120;
  item.content_hash = 333;
  r.items.push_back(item);
  expect_equal(codec.decode(codec.encode(r)), r);
}

TEST(Codec, AckRoundTrip) {
  Codec codec;
  Message ack;
  ack.type = MessageType::kAck;
  ack.ack_tokens = {111, 222, 333};
  ack.acker = NodeId(5);
  const Message out = codec.decode(codec.encode(ack));
  EXPECT_EQ(out.ack_tokens, ack.ack_tokens);
  EXPECT_EQ(out.acker, ack.acker);
}

TEST(Codec, RepairRoundTrip) {
  Codec codec;
  Message rep;
  rep.type = MessageType::kRepair;
  rep.ack_tokens = {777};
  rep.acker = NodeId(6);
  rep.requested_chunks = {3, 14, 15};
  const Message out = codec.decode(codec.encode(rep));
  EXPECT_EQ(out.ack_tokens, rep.ack_tokens);
  EXPECT_EQ(out.acker, rep.acker);
  EXPECT_EQ(out.requested_chunks, rep.requested_chunks);
}

TEST(Codec, DecodeRejectsGarbage) {
  Codec codec;
  std::vector<std::byte> junk{std::byte{0xff}, std::byte{0x00}};
  EXPECT_THROW((void)codec.decode(junk), DecodeError);
}

// -- Wire sizing ----------------------------------------------------------------

TEST(Codec, MetadataEntriesChargedThirtyBytesByDefault) {
  // Paper §VI-A: each metadata entry is 30 bytes.
  Codec codec;
  Message r;
  r.type = MessageType::kResponse;
  r.kind = ContentKind::kMetadata;
  r.sender = NodeId(1);
  r.receivers = {NodeId(2)};
  const std::size_t empty = codec.wire_size(r);
  for (int i = 0; i < 10; ++i) {
    core::DataDescriptor d;
    d.set("seq", std::int64_t{i});
    r.metadata.push_back(std::move(d));
  }
  EXPECT_EQ(codec.wire_size(r), empty + 10 * 30);
}

TEST(Codec, ActualEncodingChargedWhenOverrideDisabled) {
  Codec codec{WireConfig{.metadata_entry_bytes = 0}};
  Message r;
  r.type = MessageType::kResponse;
  r.kind = ContentKind::kMetadata;
  r.sender = NodeId(1);
  r.receivers = {NodeId(2)};
  core::DataDescriptor d;
  d.set("some_longer_attribute_name", std::string("with a string value"));
  const std::size_t entry = d.encoded_size();
  const std::size_t empty = codec.wire_size(r);
  r.metadata.push_back(std::move(d));
  EXPECT_EQ(codec.wire_size(r), empty + entry);
}

TEST(Codec, ChunkPayloadChargedFullSize) {
  Codec codec;
  Message r;
  r.type = MessageType::kResponse;
  r.kind = ContentKind::kChunk;
  r.sender = NodeId(1);
  r.receivers = {NodeId(2)};
  r.target = item_descriptor();
  const std::size_t without = codec.wire_size(r);
  r.chunk = ChunkPayload{.index = 0, .size_bytes = 262144, .content_hash = 1};
  EXPECT_EQ(codec.wire_size(r), without + 262144 + 8);
}

TEST(Codec, AckSizeScalesWithTokens) {
  Codec codec;
  Message ack;
  ack.type = MessageType::kAck;
  ack.acker = NodeId(1);
  ack.ack_tokens = {1};
  const std::size_t one = codec.wire_size(ack);
  ack.ack_tokens.assign(10, 7);
  EXPECT_EQ(codec.wire_size(ack), one + 9 * 8);
  EXPECT_LT(one, 30u);  // acks stay tiny
}

TEST(Codec, BloomFilterAddsItsWireSize) {
  Codec codec;
  Message q = base_query();
  const std::size_t bare = codec.wire_size(q);
  q.exclude = util::BloomFilter::with_capacity(5000, 0.01, 1);
  EXPECT_EQ(codec.wire_size(q), bare - 1 + q.exclude.wire_size());
}

TEST(Codec, QuerySizeIsSmall) {
  // A first-round discovery query must fit well inside one 1.5 KB packet.
  Codec codec;
  EXPECT_LT(codec.wire_size(base_query()), 100u);
}

// -- Trace-context wire extension (DESIGN.md §14) -------------------------------

TEST(Codec, TraceContextRoundTripWhenCarried) {
  WireConfig cfg;
  cfg.carry_trace_context = true;
  Codec codec(cfg);
  Message m = base_query();
  m.trace = TraceContext{0x1122334455667788ull, (9000ull + 1) << 40 | 17, 8999u,
                         3};
  const Message out = codec.decode(codec.encode(m));
  expect_equal(out, m);
  EXPECT_EQ(out.trace, m.trace);
  EXPECT_EQ(codec.wire_size(m), Codec().wire_size(m) + kTraceContextBytes);
}

TEST(Codec, TraceContextCostsNothingWhenDisabled) {
  // The default codec must produce byte-identical frames whether or not the
  // in-memory message carries a trace: disabled tracing is wire-invisible.
  Codec codec;
  Message traced = base_query();
  traced.trace = TraceContext{42, 7, 1, 2};
  Message untraced = base_query();
  EXPECT_EQ(codec.encode(traced), codec.encode(untraced));
  EXPECT_EQ(codec.wire_size(traced), codec.wire_size(untraced));
  // The round trip drops the context (it never hit the wire).
  EXPECT_FALSE(codec.decode(codec.encode(traced)).trace.valid());
}

TEST(Codec, InvalidTraceContextNotCarriedEvenWhenEnabled) {
  // An enabled codec only spends the extension bytes on messages that have
  // a context; a zero trace_id encodes exactly like the plain codec.
  WireConfig cfg;
  cfg.carry_trace_context = true;
  Codec codec(cfg);
  const Message m = base_query();
  EXPECT_EQ(codec.encode(m), Codec().encode(m));
  EXPECT_EQ(codec.wire_size(m), Codec().wire_size(m));
}

TEST(Codec, PlainFramesDecodeUnderTraceEnabledCodec) {
  WireConfig cfg;
  cfg.carry_trace_context = true;
  Codec codec(cfg);
  const Message m = base_query();
  const Message out = codec.decode(Codec().encode(m));
  expect_equal(out, m);
  EXPECT_FALSE(out.trace.valid());
}

TEST(Codec, TraceFlagOnControlFrameIsRejected) {
  Codec codec;
  Message ack;
  ack.type = MessageType::kAck;
  ack.acker = NodeId(6);
  ack.ack_tokens = {12345};
  std::vector<std::byte> bytes = codec.encode(ack);
  bytes[0] |= std::byte{kTraceContextFlag};
  EXPECT_THROW((void)codec.decode(bytes), DecodeError);
}

TEST(Codec, TruncatedTraceTrailerIsRejected) {
  WireConfig cfg;
  cfg.carry_trace_context = true;
  Codec codec(cfg);
  Message m = base_query();
  m.trace = TraceContext{42, 7, 1, 2};
  std::vector<std::byte> bytes = codec.encode(m);
  bytes.resize(bytes.size() - kTraceContextBytes / 2);
  EXPECT_THROW((void)codec.decode(bytes), DecodeError);
}

}  // namespace
}  // namespace pds::net
