// Tracing must be a pure observer: with the same seed, (a) attaching a
// tracer leaves every experiment outcome bit-identical to the untraced run,
// (b) the NDJSON bytes are identical whether the radio's spatial grid is on
// or off, and (c) identical when runs execute on PDS_BENCH_JOBS>1 worker
// threads (each worker owns its own Simulator and tracer; the thread-local
// sim-clock context must not leak between them).
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/trace.h"
#include "parallel_runs.h"
#include "tools/trace_causal.h"
#include "workload/experiment.h"

namespace pds::wl {
namespace {

PddGridParams small_pdd(std::uint64_t seed, obs::Tracer* tracer,
                        bool spatial_grid = true) {
  PddGridParams p;
  p.nx = p.ny = 5;
  p.metadata_count = 400;
  p.consumers = 2;
  p.sequential = true;
  p.seed = seed;
  p.tracer = tracer;
  p.radio.use_spatial_grid = spatial_grid;
  return p;
}

bool same_outcome(const PddOutcome& a, const PddOutcome& b) {
  return a.recall == b.recall && a.latency_s == b.latency_s &&
         a.overhead_mb == b.overhead_mb && a.rounds == b.rounds &&
         a.all_finished == b.all_finished &&
         a.per_consumer_recall == b.per_consumer_recall &&
         a.per_consumer_latency_s == b.per_consumer_latency_s;
}

TEST(TraceDeterminism, TracedPddOutcomeBitIdenticalToUntraced) {
  const PddOutcome untraced = run_pdd_grid(small_pdd(7, nullptr));
  obs::Tracer tracer(0);
  const PddOutcome traced = run_pdd_grid(small_pdd(7, &tracer));
  EXPECT_TRUE(same_outcome(untraced, traced));
  EXPECT_FALSE(tracer.events().empty());
  // The traced run also reconstructs the per-round history.
  ASSERT_EQ(traced.per_consumer_rounds.size(), 2u);
  EXPECT_FALSE(traced.per_consumer_rounds[0].empty());
  const PddRoundRecord& last = traced.per_consumer_rounds[0].back();
  EXPECT_GT(last.cumulative, 0u);
}

TEST(TraceDeterminism, TracedPdrOutcomeBitIdenticalToUntraced) {
  RetrievalGridParams p;
  p.nx = p.ny = 4;
  p.item_size_bytes = 2u * 1024 * 1024;
  p.seed = 3;
  const RetrievalOutcome untraced = run_retrieval_grid(p);
  obs::Tracer tracer(0);
  p.tracer = &tracer;
  const RetrievalOutcome traced = run_retrieval_grid(p);
  EXPECT_EQ(untraced.recall, traced.recall);
  EXPECT_EQ(untraced.latency_s, traced.latency_s);
  EXPECT_EQ(untraced.overhead_mb, traced.overhead_mb);
  EXPECT_EQ(untraced.per_consumer_chunk_arrival_s,
            traced.per_consumer_chunk_arrival_s);
  EXPECT_FALSE(tracer.events().empty());
  ASSERT_EQ(traced.per_consumer_chunk_arrival_s.size(), 1u);
  EXPECT_FALSE(traced.per_consumer_chunk_arrival_s[0].empty());
}

TEST(TraceDeterminism, NdjsonBytesIdenticalWithGridOnAndOff) {
  obs::Tracer with_grid(0);
  (void)run_pdd_grid(small_pdd(11, &with_grid, /*spatial_grid=*/true));
  obs::Tracer without_grid(0);
  (void)run_pdd_grid(small_pdd(11, &without_grid, /*spatial_grid=*/false));
  EXPECT_FALSE(with_grid.events().empty());
  EXPECT_EQ(with_grid.ndjson(), without_grid.ndjson());
}

TEST(TraceDeterminism, NdjsonBytesIdenticalUnderParallelJobs) {
  // Serial reference: one trace per seed.
  ::setenv("PDS_BENCH_JOBS", "1", 1);
  std::vector<obs::Tracer> serial_tracers(4);
  const auto serial = bench::run_indexed(4, [&](int i) {
    (void)run_pdd_grid(small_pdd(static_cast<std::uint64_t>(i + 1),
                           &serial_tracers[static_cast<std::size_t>(i)]));
    return serial_tracers[static_cast<std::size_t>(i)].ndjson();
  });

  // Parallel: each worker thread runs its own Simulator + tracer.
  ::setenv("PDS_BENCH_JOBS", "4", 1);
  std::vector<obs::Tracer> parallel_tracers(4);
  const auto parallel = bench::run_indexed(4, [&](int i) {
    (void)run_pdd_grid(small_pdd(static_cast<std::uint64_t>(i + 1),
                           &parallel_tracers[static_cast<std::size_t>(i)]));
    return parallel_tracers[static_cast<std::size_t>(i)].ndjson();
  });
  ::unsetenv("PDS_BENCH_JOBS");

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_FALSE(serial[i].empty());
    EXPECT_EQ(serial[i], parallel[i]) << "seed " << i + 1;
  }
}

// -- Scheduler implementations -----------------------------------------------
// The calendar queue and the binary-heap oracle must be interchangeable at
// the level of whole experiments: same seed, same workload, byte-identical
// trace streams (equal-timestamp events pop in identical order).

TEST(TraceDeterminism, NdjsonBytesIdenticalAcrossSchedulerKinds) {
  obs::Tracer calendar(0);
  {
    PddGridParams p = small_pdd(13, &calendar);
    p.scheduler = sim::SchedulerKind::kCalendar;
    (void)run_pdd_grid(p);
  }
  obs::Tracer heap(0);
  {
    PddGridParams p = small_pdd(13, &heap);
    p.scheduler = sim::SchedulerKind::kHeap;
    (void)run_pdd_grid(p);
  }
  EXPECT_FALSE(calendar.events().empty());
  EXPECT_EQ(calendar.ndjson(), heap.ndjson());
}

TEST(TraceDeterminism, PdrOutcomeBitIdenticalAcrossSchedulerKinds) {
  RetrievalGridParams p;
  p.nx = p.ny = 4;
  p.item_size_bytes = 2u * 1024 * 1024;
  p.seed = 9;
  p.scheduler = sim::SchedulerKind::kCalendar;
  const RetrievalOutcome calendar = run_retrieval_grid(p);
  p.scheduler = sim::SchedulerKind::kHeap;
  const RetrievalOutcome heap = run_retrieval_grid(p);
  EXPECT_EQ(calendar.recall, heap.recall);
  EXPECT_EQ(calendar.latency_s, heap.latency_s);
  EXPECT_EQ(calendar.overhead_mb, heap.overhead_mb);
  EXPECT_EQ(calendar.per_consumer_chunk_arrival_s,
            heap.per_consumer_chunk_arrival_s);
}

// -- Sharded fan-out classification ------------------------------------------
// Deterministic intra-run parallelism (RadioConfig::shard_threads): the
// sharded phase consumes no RNG and merges per-shard partials in fixed
// shard order, so any thread count must yield byte-identical traces. The
// threshold is forced to zero so even this small topology exercises the
// worker pool on every transmission.

std::string sharded_ndjson(std::uint64_t seed, int threads) {
  obs::Tracer tracer(0);
  PddGridParams p = small_pdd(seed, &tracer);
  p.radio.shard_threads = threads;
  p.radio.shard_min_candidates = 0;
  (void)run_pdd_grid(p);
  EXPECT_FALSE(tracer.events().empty());
  return tracer.ndjson();
}

TEST(TraceDeterminism, NdjsonBytesIdenticalAcrossShardThreadCounts) {
  for (const std::uint64_t seed : {21u, 22u}) {
    const std::string one = sharded_ndjson(seed, 1);
    const std::string two = sharded_ndjson(seed, 2);
    const std::string eight = sharded_ndjson(seed, 8);
    EXPECT_EQ(one, two) << "seed " << seed;
    EXPECT_EQ(one, eight) << "seed " << seed;
  }
}

// -- Ring-buffer drops -------------------------------------------------------
// An analyzed run must never have silently lost events: the tracer counts
// evictions, write_ndjson appends a trace/drops trailer, and the causal
// analyzer refuses to treat a truncated ring as a complete DAG. The suite's
// own captures are unbounded and must therefore report zero drops.

TEST(TraceDeterminism, AnalyzedRunsReportNoDroppedEvents) {
  obs::Tracer tracer(0);
  (void)run_pdd_grid(small_pdd(7, &tracer));
  EXPECT_EQ(tracer.dropped(), 0u);
  std::stringstream ss;
  tracer.write_ndjson(ss);
  std::size_t bad_line = 0;
  const auto events = tools::read_trace(ss, bad_line);
  EXPECT_EQ(tools::analyze_causal(events).dropped_events, 0u);
}

TEST(TraceDeterminism, BoundedRingSurfacesDropCount) {
  obs::Tracer tracer(/*capacity=*/64);
  (void)run_pdd_grid(small_pdd(7, &tracer));
  ASSERT_GT(tracer.dropped(), 0u);
  std::stringstream ss;
  tracer.write_ndjson(ss);
  std::size_t bad_line = 0;
  const auto events = tools::read_trace(ss, bad_line);
  // The trailer round-trips the exact eviction count into the analysis.
  EXPECT_EQ(tools::analyze_causal(events).dropped_events, tracer.dropped());
}

// -- Fault schedules ---------------------------------------------------------
// A faulted run is exactly as deterministic as a clean one: same seed +
// same schedule must give byte-identical trace streams and report JSON,
// serially or across PDS_BENCH_JOBS worker threads.

sim::FaultSchedule probe_schedule() {
  sim::FaultSchedule s;
  s.crash(SimTime::millis(500), NodeId(0), /*wipe=*/true)
      .restart(SimTime::seconds(4), NodeId(0))
      .churn(SimTime::millis(700), SimTime::seconds(5), NodeId(4))
      .partition(SimTime::seconds(1), SimTime::seconds(3),
                 {NodeId(20), NodeId(21)}, {NodeId(23), NodeId(24)})
      .burst(SimTime::zero(), SimTime::seconds(6), NodeId(2))
      .buffer_storm(SimTime::millis(300), NodeId(10));
  return s;
}

PddGridParams faulted_pdd(std::uint64_t seed, obs::Tracer* tracer) {
  PddGridParams p = small_pdd(seed, tracer);
  p.redundancy = 2;
  p.faults = probe_schedule();
  return p;
}

TEST(TraceDeterminism, FaultedRunSameSeedSameScheduleByteIdentical) {
  obs::Tracer a(0);
  const PddOutcome out_a = run_pdd_grid(faulted_pdd(5, &a));
  obs::Tracer b(0);
  const PddOutcome out_b = run_pdd_grid(faulted_pdd(5, &b));
  EXPECT_TRUE(same_outcome(out_a, out_b));
  EXPECT_FALSE(a.events().empty());
  EXPECT_EQ(a.ndjson(), b.ndjson());
  // The schedule's fault events must actually appear in the stream.
  EXPECT_NE(a.ndjson().find("\"fault\""), std::string::npos);
}

TEST(TraceDeterminism, FaultedNdjsonBytesIdenticalUnderParallelJobs) {
  ::setenv("PDS_BENCH_JOBS", "1", 1);
  std::vector<obs::Tracer> serial_tracers(4);
  const auto serial = bench::run_indexed(4, [&](int i) {
    (void)run_pdd_grid(faulted_pdd(static_cast<std::uint64_t>(i + 1),
                             &serial_tracers[static_cast<std::size_t>(i)]));
    return serial_tracers[static_cast<std::size_t>(i)].ndjson();
  });

  ::setenv("PDS_BENCH_JOBS", "4", 1);
  std::vector<obs::Tracer> parallel_tracers(4);
  const auto parallel = bench::run_indexed(4, [&](int i) {
    (void)run_pdd_grid(faulted_pdd(static_cast<std::uint64_t>(i + 1),
                             &parallel_tracers[static_cast<std::size_t>(i)]));
    return parallel_tracers[static_cast<std::size_t>(i)].ndjson();
  });
  ::unsetenv("PDS_BENCH_JOBS");

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_FALSE(serial[i].empty());
    EXPECT_EQ(serial[i], parallel[i]) << "seed " << i + 1;
  }
}

// Miniature BENCH_faults-style report over faulted runs: the JSON bytes
// must not depend on the worker-thread count (modulo the recorded jobs
// field, which differs by design).
std::string faulted_report_json() {
  obs::Report::Options options;
  options.experiment = "faults_determinism_probe";
  options.runs = 4;
  options.jobs = bench::jobs();
  obs::Report report(std::move(options));
  report.begin_section("pdd");
  const bench::Series series = bench::average(4, [](std::uint64_t seed) {
    const PddOutcome out = run_pdd_grid(faulted_pdd(seed, nullptr));
    return std::tuple{out.recall, out.latency_s, out.overhead_mb};
  });
  report.point()
      .metric("recall", series.recall, 3)
      .metric("latency_s", series.latency_s, 2)
      .metric("overhead_mb", series.overhead_mb, 2);
  return report.to_json();
}

TEST(TraceDeterminism, FaultedReportJsonBytesIdenticalUnderParallelJobs) {
  ::setenv("PDS_BENCH_JOBS", "1", 1);
  const std::string serial = faulted_report_json();
  ::setenv("PDS_BENCH_JOBS", "4", 1);
  const std::string parallel = faulted_report_json();
  ::unsetenv("PDS_BENCH_JOBS");
  EXPECT_FALSE(serial.empty());
  const auto strip_jobs = [](std::string s) {
    const std::size_t at = s.find("\"jobs\":");
    EXPECT_NE(at, std::string::npos);
    const std::size_t end = s.find_first_of(",}", at);
    return s.erase(at, end - at);
  };
  EXPECT_EQ(strip_jobs(serial), strip_jobs(parallel));
}

}  // namespace
}  // namespace pds::wl
