// Tracing must be a pure observer: with the same seed, (a) attaching a
// tracer leaves every experiment outcome bit-identical to the untraced run,
// (b) the NDJSON bytes are identical whether the radio's spatial grid is on
// or off, and (c) identical when runs execute on PDS_BENCH_JOBS>1 worker
// threads (each worker owns its own Simulator and tracer; the thread-local
// sim-clock context must not leak between them).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/trace.h"
#include "parallel_runs.h"
#include "workload/experiment.h"

namespace pds::wl {
namespace {

PddGridParams small_pdd(std::uint64_t seed, obs::Tracer* tracer,
                        bool spatial_grid = true) {
  PddGridParams p;
  p.nx = p.ny = 5;
  p.metadata_count = 400;
  p.consumers = 2;
  p.sequential = true;
  p.seed = seed;
  p.tracer = tracer;
  p.radio.use_spatial_grid = spatial_grid;
  return p;
}

bool same_outcome(const PddOutcome& a, const PddOutcome& b) {
  return a.recall == b.recall && a.latency_s == b.latency_s &&
         a.overhead_mb == b.overhead_mb && a.rounds == b.rounds &&
         a.all_finished == b.all_finished &&
         a.per_consumer_recall == b.per_consumer_recall &&
         a.per_consumer_latency_s == b.per_consumer_latency_s;
}

TEST(TraceDeterminism, TracedPddOutcomeBitIdenticalToUntraced) {
  const PddOutcome untraced = run_pdd_grid(small_pdd(7, nullptr));
  obs::Tracer tracer(0);
  const PddOutcome traced = run_pdd_grid(small_pdd(7, &tracer));
  EXPECT_TRUE(same_outcome(untraced, traced));
  EXPECT_FALSE(tracer.events().empty());
  // The traced run also reconstructs the per-round history.
  ASSERT_EQ(traced.per_consumer_rounds.size(), 2u);
  EXPECT_FALSE(traced.per_consumer_rounds[0].empty());
  const PddRoundRecord& last = traced.per_consumer_rounds[0].back();
  EXPECT_GT(last.cumulative, 0u);
}

TEST(TraceDeterminism, TracedPdrOutcomeBitIdenticalToUntraced) {
  RetrievalGridParams p;
  p.nx = p.ny = 4;
  p.item_size_bytes = 2u * 1024 * 1024;
  p.seed = 3;
  const RetrievalOutcome untraced = run_retrieval_grid(p);
  obs::Tracer tracer(0);
  p.tracer = &tracer;
  const RetrievalOutcome traced = run_retrieval_grid(p);
  EXPECT_EQ(untraced.recall, traced.recall);
  EXPECT_EQ(untraced.latency_s, traced.latency_s);
  EXPECT_EQ(untraced.overhead_mb, traced.overhead_mb);
  EXPECT_EQ(untraced.per_consumer_chunk_arrival_s,
            traced.per_consumer_chunk_arrival_s);
  EXPECT_FALSE(tracer.events().empty());
  ASSERT_EQ(traced.per_consumer_chunk_arrival_s.size(), 1u);
  EXPECT_FALSE(traced.per_consumer_chunk_arrival_s[0].empty());
}

TEST(TraceDeterminism, NdjsonBytesIdenticalWithGridOnAndOff) {
  obs::Tracer with_grid(0);
  run_pdd_grid(small_pdd(11, &with_grid, /*spatial_grid=*/true));
  obs::Tracer without_grid(0);
  run_pdd_grid(small_pdd(11, &without_grid, /*spatial_grid=*/false));
  EXPECT_FALSE(with_grid.events().empty());
  EXPECT_EQ(with_grid.ndjson(), without_grid.ndjson());
}

TEST(TraceDeterminism, NdjsonBytesIdenticalUnderParallelJobs) {
  // Serial reference: one trace per seed.
  ::setenv("PDS_BENCH_JOBS", "1", 1);
  std::vector<obs::Tracer> serial_tracers(4);
  const auto serial = bench::run_indexed(4, [&](int i) {
    run_pdd_grid(small_pdd(static_cast<std::uint64_t>(i + 1),
                           &serial_tracers[static_cast<std::size_t>(i)]));
    return serial_tracers[static_cast<std::size_t>(i)].ndjson();
  });

  // Parallel: each worker thread runs its own Simulator + tracer.
  ::setenv("PDS_BENCH_JOBS", "4", 1);
  std::vector<obs::Tracer> parallel_tracers(4);
  const auto parallel = bench::run_indexed(4, [&](int i) {
    run_pdd_grid(small_pdd(static_cast<std::uint64_t>(i + 1),
                           &parallel_tracers[static_cast<std::size_t>(i)]));
    return parallel_tracers[static_cast<std::size_t>(i)].ndjson();
  });
  ::unsetenv("PDS_BENCH_JOBS");

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_FALSE(serial[i].empty());
    EXPECT_EQ(serial[i], parallel[i]) << "seed " << i + 1;
  }
}

}  // namespace
}  // namespace pds::wl
