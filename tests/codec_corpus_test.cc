// Replays the checked-in fuzz seed corpus (tests/corpus/*.bin) through the
// shared fuzz harness in the normal build. The corpus holds one valid
// encoding per frame shape (classic and v2) plus known-malformed inputs;
// any input that once crashed the decoder gets minimized and added here so
// the regression stays covered without a fuzzing toolchain. PDS_CORPUS_DIR
// is injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "tests/codec_fuzz_harness.h"

namespace pds::net {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(PDS_CORPUS_DIR)) {
    if (entry.is_regular_file() && entry.path().extension() == ".bin") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<std::uint8_t> slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(CodecCorpus, HasSeedsForEveryFrameShape) {
  const auto files = corpus_files();
  ASSERT_GE(files.size(), 6u) << "seed corpus went missing from " PDS_CORPUS_DIR;
}

TEST(CodecCorpus, EverySeedDecodesOrRejectsCleanly) {
  for (const fs::path& p : corpus_files()) {
    const std::vector<std::uint8_t> bytes = slurp(p);
    SCOPED_TRACE(p.filename().string());
    // Aborts (caught by the test runner as a crash) on contract breaks;
    // returns whether the input was accepted.
    const bool accepted = fuzz_one_input(bytes.data(), bytes.size());
    const bool expect_valid =
        p.filename().string().rfind("malformed_", 0) != 0;
    EXPECT_EQ(accepted, expect_valid);
  }
}

TEST(CodecCorpus, TruncationsOfEverySeedRejectCleanly) {
  // Every strict prefix of a valid frame must reject with DecodeError —
  // the same sweep a fuzzer does on its first pass, kept in-tree.
  for (const fs::path& p : corpus_files()) {
    const std::vector<std::uint8_t> bytes = slurp(p);
    SCOPED_TRACE(p.filename().string());
    for (std::size_t n = 0; n < bytes.size(); ++n) {
      // encode() emits exactly the bytes decode() consumes, so a strict
      // prefix always truncates some field mid-read.
      EXPECT_FALSE(fuzz_one_input(bytes.data(), n)) << "prefix length " << n;
    }
  }
}

}  // namespace
}  // namespace pds::net
