// Unit and property tests for src/util: Bloom filter, leaky bucket, dedup
// cache, GAP assignment, statistics and table printing.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "util/bloom_filter.h"
#include "util/dedup_cache.h"
#include "util/gap_assign.h"
#include "util/leaky_bucket.h"
#include "util/stats.h"
#include "util/table.h"

namespace pds::util {
namespace {

// -- BloomFilter --------------------------------------------------------------

TEST(BloomFilter, EmptyFilterContainsNothing) {
  BloomFilter f;
  EXPECT_TRUE(f.empty_filter());
  EXPECT_FALSE(f.maybe_contains(42));
}

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter f = BloomFilter::with_capacity(1000, 0.01, /*seed=*/7);
  Rng rng(1);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back(rng.next_u64());
  for (std::uint64_t k : keys) f.insert(k);
  for (std::uint64_t k : keys) {
    EXPECT_TRUE(f.maybe_contains(k)) << "false negative for " << k;
  }
}

TEST(BloomFilter, FalsePositiveRateNearTarget) {
  const double target = 0.01;
  BloomFilter f = BloomFilter::with_capacity(5000, target, 11);
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) f.insert(rng.next_u64());
  int fp = 0;
  const int probes = 50000;
  for (int i = 0; i < probes; ++i) {
    if (f.maybe_contains(rng.next_u64())) ++fp;
  }
  const double rate = static_cast<double>(fp) / probes;
  EXPECT_LT(rate, target * 3.0);
}

TEST(BloomFilter, DifferentSeedsGiveDifferentFalsePositives) {
  // Paper §V.3: per-round hash families make persistent false positives
  // vanish across rounds. An element that is a false positive under one
  // seed should usually not be under another.
  Rng rng(3);
  std::vector<std::uint64_t> members;
  for (int i = 0; i < 2000; ++i) members.push_back(rng.next_u64());

  BloomFilter f1 = BloomFilter::with_capacity(2000, 0.05, 100);
  BloomFilter f2 = BloomFilter::with_capacity(2000, 0.05, 200);
  for (std::uint64_t k : members) {
    f1.insert(k);
    f2.insert(k);
  }
  int both = 0;
  int either = 0;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t probe = rng.next_u64();
    const bool a = f1.maybe_contains(probe);
    const bool b = f2.maybe_contains(probe);
    if (a || b) ++either;
    if (a && b) ++both;
  }
  // Persisting across two independent families should be roughly the
  // square of the single-family rate, i.e., far rarer.
  EXPECT_LT(both * 10, either);
}

TEST(BloomFilter, EncodeDecodeRoundTrip) {
  BloomFilter f = BloomFilter::with_capacity(100, 0.01, 5);
  for (std::uint64_t k = 0; k < 100; ++k) f.insert(k * 977);

  std::vector<std::byte> bytes;
  f.encode(bytes);
  const BloomFilter g = BloomFilter::decode(bytes);
  EXPECT_EQ(g.bit_count(), f.bit_count());
  EXPECT_EQ(g.hash_count(), f.hash_count());
  EXPECT_EQ(g.seed(), f.seed());
  for (std::uint64_t k = 0; k < 100; ++k) {
    EXPECT_TRUE(g.maybe_contains(k * 977));
  }
}

TEST(BloomFilter, EmptyEncodeDecode) {
  BloomFilter f;
  std::vector<std::byte> bytes;
  f.encode(bytes);
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_TRUE(BloomFilter::decode(bytes).empty_filter());
}

TEST(BloomFilter, WireSizeScalesWithCapacity) {
  const BloomFilter small = BloomFilter::with_capacity(100, 0.01, 1);
  const BloomFilter big = BloomFilter::with_capacity(10000, 0.01, 1);
  EXPECT_LT(small.wire_size(), big.wire_size());
  // ~9.6 bits/element at 1% fpp.
  EXPECT_NEAR(static_cast<double>(big.wire_size()), 10000 * 9.6 / 8, 2000);
}

TEST(BloomFilter, FillRatioGrowsWithInsertions) {
  BloomFilter f = BloomFilter::with_capacity(1000, 0.01, 9);
  EXPECT_DOUBLE_EQ(f.fill_ratio(), 0.0);
  for (std::uint64_t k = 0; k < 500; ++k) f.insert(k);
  const double half = f.fill_ratio();
  for (std::uint64_t k = 500; k < 1000; ++k) f.insert(k);
  EXPECT_GT(f.fill_ratio(), half);
  // At design capacity the fill ratio should be near 50%.
  EXPECT_NEAR(f.fill_ratio(), 0.5, 0.05);
}

// -- LeakyBucket ----------------------------------------------------------------

TEST(LeakyBucket, DisabledPassesThrough) {
  LeakyBucket b;
  EXPECT_FALSE(b.enabled());
  EXPECT_EQ(b.offer(SimTime::seconds(5.0), 100000), SimTime::seconds(5.0));
}

TEST(LeakyBucket, BurstWithinCapacityReleasesImmediately) {
  LeakyBucket b(10000, 8e6);  // 10 KB capacity, 1 MB/s
  const SimTime t0 = SimTime::zero();
  EXPECT_EQ(b.offer(t0, 5000), t0);
  EXPECT_EQ(b.offer(t0, 5000), t0);  // exactly drains the bucket
}

TEST(LeakyBucket, ExcessIsPacedAtLeakRate) {
  LeakyBucket b(1000, 8e6);  // 1 KB capacity, 1 MB/s
  const SimTime t0 = SimTime::zero();
  EXPECT_EQ(b.offer(t0, 1000), t0);  // consumes the full burst
  // The next kilobyte must wait 1 ms for tokens.
  const SimTime r = b.offer(t0, 1000);
  EXPECT_NEAR(r.as_seconds(), 0.001, 1e-5);
}

TEST(LeakyBucket, FifoOrderPreserved) {
  LeakyBucket b(1000, 8e6);
  const SimTime t0 = SimTime::zero();
  SimTime prev = b.offer(t0, 800);
  for (int i = 0; i < 20; ++i) {
    const SimTime next = b.offer(t0, 800);
    EXPECT_GE(next, prev);
    prev = next;
  }
}

TEST(LeakyBucket, TokensRefillDuringIdle) {
  LeakyBucket b(1000, 8e6);
  (void)b.offer(SimTime::zero(), 1000);
  // After 10 ms idle the bucket is full again (capacity 1 KB refills in
  // 1 ms); a burst releases immediately.
  const SimTime later = SimTime::millis(10);
  EXPECT_EQ(b.offer(later, 1000), later);
}

TEST(LeakyBucket, SustainedRateMatchesLeakRate) {
  LeakyBucket b(300'000, 4.5e6);  // prototype parameters
  SimTime last = SimTime::zero();
  const std::size_t message = 1500;
  const int n = 3000;
  for (int i = 0; i < n; ++i) last = b.offer(SimTime::zero(), message);
  // 4.5 MB total at 4.5 Mb/s minus the initial 300 KB burst.
  const double expected = (n * message - 300'000) * 8.0 / 4.5e6;
  EXPECT_NEAR(last.as_seconds(), expected, 0.05);
}

TEST(LeakyBucket, MessageLargerThanCapacityStillPaces) {
  LeakyBucket b(1000, 8e6);
  const SimTime r = b.offer(SimTime::zero(), 9000);  // 9 KB through 1 KB bucket
  EXPECT_NEAR(r.as_seconds(), 0.008, 1e-4);          // (9000-1000)*8/8e6
}

// -- DedupCache ---------------------------------------------------------------

TEST(DedupCache, DetectsDuplicates) {
  DedupCache<std::uint64_t> cache(10);
  EXPECT_TRUE(cache.insert(1));
  EXPECT_FALSE(cache.insert(1));
  EXPECT_TRUE(cache.insert(2));
  EXPECT_TRUE(cache.contains(1));
}

TEST(DedupCache, EvictsOldestBeyondCapacity) {
  DedupCache<std::uint64_t> cache(3);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(cache.insert(i));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(4));
  // An evicted id is accepted again (no longer a known duplicate).
  EXPECT_TRUE(cache.insert(0));
}

// -- GAP assignment ------------------------------------------------------------

GapInstance make_instance(std::size_t neighbors,
                          std::vector<std::vector<std::size_t>> eligible) {
  GapInstance inst;
  inst.neighbor_count = neighbors;
  for (auto& e : eligible) {
    inst.hop.emplace_back(e.size(), 1);
    inst.eligible.push_back(std::move(e));
  }
  return inst;
}

TEST(GapAssign, SingleEligibleNeighborIsForced) {
  const GapInstance inst = make_instance(2, {{0}, {0}, {1}});
  const GapAssignment a = solve_min_max_heuristic(inst);
  EXPECT_EQ(a.assignment, (std::vector<std::size_t>{0, 0, 1}));
  EXPECT_EQ(a.max_load, 2u);
}

TEST(GapAssign, HeuristicBalancesLoad) {
  // 4 chunks all eligible on both neighbors: perfect split is 2/2; naive
  // sends all 4 to neighbor 0.
  const GapInstance inst = make_instance(2, {{0, 1}, {0, 1}, {0, 1}, {0, 1}});
  EXPECT_EQ(solve_naive(inst).max_load, 4u);
  EXPECT_EQ(solve_min_max_heuristic(inst).max_load, 2u);
}

TEST(GapAssign, ExactMatchesBruteForceOnSmallInstances) {
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const auto neighbors =
        static_cast<std::size_t>(rng.uniform_int(1, 4));
    const auto chunks = static_cast<std::size_t>(rng.uniform_int(1, 7));
    GapInstance inst;
    inst.neighbor_count = neighbors;
    for (std::size_t c = 0; c < chunks; ++c) {
      std::vector<std::size_t> e;
      for (std::size_t n = 0; n < neighbors; ++n) {
        if (rng.bernoulli(0.5)) e.push_back(n);
      }
      if (e.empty()) {
        e.push_back(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(neighbors) - 1)));
      }
      inst.hop.emplace_back(e.size(), static_cast<int>(rng.uniform_int(1, 4)));
      inst.eligible.push_back(std::move(e));
    }
    const GapAssignment exact = solve_exact(inst);
    const GapAssignment heur = solve_min_max_heuristic(inst);
    // The heuristic respects eligibility…
    for (std::size_t c = 0; c < chunks; ++c) {
      EXPECT_NE(std::find(inst.eligible[c].begin(), inst.eligible[c].end(),
                          heur.assignment[c]),
                inst.eligible[c].end());
    }
    // …and is never better than the optimum, nor worse than 2× + 1 (it is
    // usually optimal; the bound guards against regressions).
    EXPECT_GE(heur.max_load, exact.max_load);
    EXPECT_LE(heur.max_load, exact.max_load * 2 + 1);
  }
}

TEST(GapAssign, HeuristicIsOptimalOnFullyFlexibleInstances) {
  // When every chunk can go anywhere, min-max load is ceil(C/N); the
  // move-based heuristic should always find it.
  for (std::size_t n : {2u, 3u, 5u}) {
    for (std::size_t c : {1u, 4u, 9u, 10u}) {
      GapInstance inst;
      inst.neighbor_count = n;
      for (std::size_t i = 0; i < c; ++i) {
        std::vector<std::size_t> all(n);
        for (std::size_t k = 0; k < n; ++k) all[k] = k;
        inst.hop.emplace_back(n, 1);
        inst.eligible.push_back(std::move(all));
      }
      const GapAssignment a = solve_min_max_heuristic(inst);
      EXPECT_EQ(a.max_load, (c + n - 1) / n) << "n=" << n << " c=" << c;
    }
  }
}

TEST(GapAssign, EmptyInstance) {
  GapInstance inst;
  inst.neighbor_count = 3;
  const GapAssignment a = solve_min_max_heuristic(inst);
  EXPECT_TRUE(a.assignment.empty());
  EXPECT_EQ(a.max_load, 0u);
}

// -- Stats -----------------------------------------------------------------

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571, 0.01);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.median(), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(0), 1.0, 0.01);
  EXPECT_NEAR(s.percentile(100), 100.0, 0.01);
  EXPECT_NEAR(s.percentile(95), 95.05, 0.1);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

// -- Table -----------------------------------------------------------------

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2.50"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Every line has the same length (alignment).
  std::size_t prev = std::string::npos;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::size_t len = end - start;
    if (prev != std::string::npos) {
      EXPECT_EQ(len, prev);
    }
    prev = len;
    start = end + 1;
  }
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(1234.5, 1), "1234.5");
}

}  // namespace
}  // namespace pds::util
