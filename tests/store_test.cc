// Tests for per-node protocol state: DataStore (metadata/chunk/item
// semantics and expiration), LingeringQueryTable, CdiTable.
#include <gtest/gtest.h>

#include <memory>

#include "core/cdi_table.h"
#include "core/data_store.h"
#include "core/lingering_query_table.h"

namespace pds::core {
namespace {

DataDescriptor entry(int seq) {
  DataDescriptor d;
  d.set(kAttrNamespace, std::string("env"));
  d.set(kAttrDataType, std::string("nox"));
  d.set("seq", std::int64_t{seq});
  return d;
}

DataDescriptor chunked_item(int chunks = 4) {
  DataDescriptor d;
  d.set(kAttrName, std::string("clip"));
  d.set(kAttrTotalChunks, std::int64_t{chunks});
  return d;
}

// -- DataStore: metadata -----------------------------------------------------

TEST(DataStore, InsertAndMatch) {
  DataStore store;
  const SimTime now = SimTime::zero();
  EXPECT_TRUE(store.insert_metadata(entry(1), true, now, SimTime::zero()));
  EXPECT_FALSE(store.insert_metadata(entry(1), true, now, SimTime::zero()));
  EXPECT_TRUE(store.insert_metadata(entry(2), true, now, SimTime::zero()));

  EXPECT_EQ(store.match_metadata(Filter{}, now).size(), 2u);
  Filter f;
  f.where("seq", Relation::kEq, std::int64_t{1});
  const auto matched = store.match_metadata(f, now);
  ASSERT_EQ(matched.size(), 1u);
  EXPECT_EQ(matched[0], entry(1));
}

TEST(DataStore, CachedOnlyEntriesExpire) {
  // Paper §II-C: an entry cached without payload gets an expiration and is
  // removed once it passes without the payload arriving.
  DataStore store;
  store.insert_metadata(entry(1), /*has_payload=*/false, SimTime::zero(),
                        SimTime::seconds(10.0));
  EXPECT_TRUE(store.has_metadata(entry(1).entry_key(), SimTime::seconds(5)));
  EXPECT_FALSE(store.has_metadata(entry(1).entry_key(), SimTime::seconds(11)));
  EXPECT_TRUE(store.match_metadata(Filter{}, SimTime::seconds(11)).empty());
}

TEST(DataStore, PayloadBackedEntriesNeverExpire) {
  DataStore store;
  store.insert_metadata(entry(1), /*has_payload=*/true, SimTime::zero(),
                        SimTime::zero());
  EXPECT_TRUE(
      store.has_metadata(entry(1).entry_key(), SimTime::minutes(1e6)));
}

TEST(DataStore, PayloadArrivalUpgradesCachedEntry) {
  DataStore store;
  store.insert_metadata(entry(1), false, SimTime::zero(),
                        SimTime::seconds(5.0));
  store.insert_metadata(entry(1), true, SimTime::seconds(1.0),
                        SimTime::zero());
  EXPECT_TRUE(store.has_metadata(entry(1).entry_key(), SimTime::minutes(60)));
}

TEST(DataStore, ReinsertionRefreshesExpiry) {
  DataStore store;
  store.insert_metadata(entry(1), false, SimTime::zero(),
                        SimTime::seconds(5.0));
  store.insert_metadata(entry(1), false, SimTime::seconds(4.0),
                        SimTime::seconds(5.0));
  EXPECT_TRUE(store.has_metadata(entry(1).entry_key(), SimTime::seconds(8)));
  EXPECT_FALSE(store.has_metadata(entry(1).entry_key(), SimTime::seconds(10)));
}

TEST(DataStore, SweepRemovesExpired) {
  DataStore store;
  for (int i = 0; i < 10; ++i) {
    store.insert_metadata(entry(i), false, SimTime::zero(),
                          SimTime::seconds(1.0));
  }
  store.insert_metadata(entry(100), true, SimTime::zero(), SimTime::zero());
  store.sweep(SimTime::seconds(2.0));
  EXPECT_EQ(store.metadata_count(SimTime::seconds(2.0)), 1u);
}

// -- DataStore: chunks ---------------------------------------------------------

TEST(DataStore, ChunkStorageAndLookup) {
  DataStore store;
  const DataDescriptor item = chunked_item();
  const ItemId id = item.item_id();
  store.insert_chunk(item, 2,
                     net::ChunkPayload{.index = 2, .size_bytes = 100,
                                       .content_hash = 5},
                     SimTime::zero());
  EXPECT_TRUE(store.has_chunk(id, 2));
  EXPECT_FALSE(store.has_chunk(id, 1));
  ASSERT_TRUE(store.chunk(id, 2).has_value());
  EXPECT_EQ(store.chunk(id, 2)->content_hash, 5u);
  EXPECT_EQ(store.chunks_of(id), (std::vector<ChunkIndex>{2}));
}

TEST(DataStore, ChunkInsertCreatesPayloadBackedChunkMetadata) {
  // Paper §II-C: a metadata entry exists as long as any chunk of the item
  // does.
  DataStore store;
  const DataDescriptor item = chunked_item();
  store.insert_chunk(item, 0,
                     net::ChunkPayload{.index = 0, .size_bytes = 1,
                                       .content_hash = 0},
                     SimTime::zero());
  const std::uint64_t chunk_key = item.chunk_descriptor(0).entry_key();
  EXPECT_TRUE(store.has_metadata(chunk_key, SimTime::minutes(1e6)));
}

TEST(DataStore, ChunksOfDifferentItemsAreIsolated) {
  DataStore store;
  const DataDescriptor a = chunked_item(4);
  DataDescriptor b = chunked_item(4);
  b.set(kAttrName, std::string("other"));
  store.insert_chunk(a, 0,
                     net::ChunkPayload{.index = 0, .size_bytes = 1,
                                       .content_hash = 1},
                     SimTime::zero());
  EXPECT_TRUE(store.has_chunk(a.item_id(), 0));
  EXPECT_FALSE(store.has_chunk(b.item_id(), 0));
  EXPECT_TRUE(store.chunks_of(b.item_id()).empty());
}

// -- DataStore: items -----------------------------------------------------------

TEST(DataStore, ItemsMatchedByFilter) {
  DataStore store;
  for (int i = 0; i < 5; ++i) {
    net::ItemPayload item;
    item.descriptor = entry(i);
    item.size_bytes = 100;
    item.content_hash = static_cast<std::uint64_t>(i);
    store.insert_item(item, SimTime::zero());
  }
  Filter f;
  f.where_range("seq", std::int64_t{1}, std::int64_t{3});
  EXPECT_EQ(store.match_items(f, SimTime::zero()).size(), 3u);
  EXPECT_TRUE(store.has_item(entry(0).entry_key()));
  EXPECT_EQ(store.item_count(), 5u);
}

// -- LingeringQueryTable --------------------------------------------------------

net::MessagePtr make_query(std::uint64_t id, NodeId sender,
                           net::ContentKind kind = net::ContentKind::kMetadata,
                           SimTime expire = SimTime::seconds(100)) {
  auto q = std::make_shared<net::Message>();
  q->type = net::MessageType::kQuery;
  q->kind = kind;
  q->query_id = QueryId(id);
  q->sender = sender;
  q->expire_at = expire;
  return q;
}

TEST(LingeringQueryTable, InsertCapturesUpstreamAndDetectsDuplicates) {
  LingeringQueryTable lqt;
  const auto q = make_query(1, NodeId(7));
  EXPECT_FALSE(lqt.contains(QueryId(1)));
  LingeringQuery& lq = lqt.insert(q, SimTime::zero());
  EXPECT_EQ(lq.upstream, NodeId(7));
  EXPECT_TRUE(lqt.contains(QueryId(1)));
  ASSERT_NE(lqt.find(QueryId(1)), nullptr);
  EXPECT_EQ(lqt.find(QueryId(2)), nullptr);
}

TEST(LingeringQueryTable, LiveQueriesFilteredByKindAndExpiry) {
  LingeringQueryTable lqt;
  lqt.insert(make_query(1, NodeId(1), net::ContentKind::kMetadata),
             SimTime::zero());
  lqt.insert(make_query(2, NodeId(2), net::ContentKind::kChunk),
             SimTime::zero());
  lqt.insert(make_query(3, NodeId(3), net::ContentKind::kMetadata,
                        SimTime::seconds(1.0)),
             SimTime::zero());

  EXPECT_EQ(lqt.live_queries(net::ContentKind::kMetadata, SimTime::zero())
                .size(),
            2u);
  // Query 3 expires.
  EXPECT_EQ(lqt.live_queries(net::ContentKind::kMetadata, SimTime::seconds(2))
                .size(),
            1u);
  EXPECT_EQ(lqt.live_queries(net::ContentKind::kChunk, SimTime::zero()).size(),
            1u);
}

TEST(LingeringQueryTable, ConsumedQueriesAreNotLive) {
  LingeringQueryTable lqt;
  LingeringQuery& lq = lqt.insert(make_query(1, NodeId(1)), SimTime::zero());
  lq.consumed = true;
  EXPECT_TRUE(
      lqt.live_queries(net::ContentKind::kMetadata, SimTime::zero()).empty());
}

TEST(LingeringQueryTable, LingeringUnlikeOneShotInterests) {
  // The defining property (§III-A.1): a lingering query stays usable across
  // many responses until expiry.
  LingeringQueryTable lqt;
  lqt.insert(make_query(1, NodeId(1)), SimTime::zero());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(
        lqt.live_queries(net::ContentKind::kMetadata, SimTime::seconds(i))
            .size(),
        1u);
  }
}

TEST(LingeringQueryTable, SweepDropsExpired) {
  LingeringQueryTable lqt;
  lqt.insert(make_query(1, NodeId(1), net::ContentKind::kMetadata,
                        SimTime::seconds(1)),
             SimTime::zero());
  lqt.insert(make_query(2, NodeId(2)), SimTime::zero());
  lqt.sweep(SimTime::seconds(5));
  EXPECT_EQ(lqt.size(), 1u);
  EXPECT_FALSE(lqt.contains(QueryId(1)));
}

// -- CdiTable -----------------------------------------------------------------

TEST(CdiTable, KeepsLeastHopAndAllTiedNeighbors) {
  CdiTable cdi;
  const ItemId item(1);
  const SimTime now = SimTime::zero();
  const SimTime ttl = SimTime::seconds(30);

  EXPECT_TRUE(cdi.update(item, 0, 3, NodeId(1), now, ttl));
  EXPECT_TRUE(cdi.update(item, 0, 2, NodeId(2), now, ttl));  // closer: replaces
  EXPECT_TRUE(cdi.update(item, 0, 2, NodeId(3), now, ttl));  // tie: extends
  EXPECT_FALSE(cdi.update(item, 0, 5, NodeId(4), now, ttl));  // farther: no-op
  EXPECT_FALSE(cdi.update(item, 0, 2, NodeId(2), now, ttl));  // duplicate

  const CdiRecord* rec = cdi.lookup(item, 0, now);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->hop_count, 2u);
  EXPECT_EQ(rec->neighbors.size(), 2u);
}

TEST(CdiTable, EntriesExpire) {
  CdiTable cdi;
  const ItemId item(1);
  cdi.update(item, 0, 1, NodeId(1), SimTime::zero(), SimTime::seconds(10));
  EXPECT_NE(cdi.lookup(item, 0, SimTime::seconds(5)), nullptr);
  EXPECT_EQ(cdi.lookup(item, 0, SimTime::seconds(11)), nullptr);
  // A fresh update after expiry replaces even with a larger hop count.
  EXPECT_TRUE(cdi.update(item, 0, 7, NodeId(9), SimTime::seconds(12),
                         SimTime::seconds(10)));
  EXPECT_EQ(cdi.lookup(item, 0, SimTime::seconds(13))->hop_count, 7u);
}

TEST(CdiTable, LookupItemReturnsAllChunks) {
  CdiTable cdi;
  const ItemId item(1);
  const ItemId other(2);
  for (ChunkIndex c = 0; c < 5; ++c) {
    cdi.update(item, c, c + 1, NodeId(c), SimTime::zero(),
               SimTime::seconds(30));
  }
  cdi.update(other, 0, 1, NodeId(9), SimTime::zero(), SimTime::seconds(30));
  const auto all = cdi.lookup_item(item, SimTime::zero());
  EXPECT_EQ(all.size(), 5u);
  for (const auto& [chunk, rec] : all) {
    EXPECT_EQ(rec.hop_count, chunk + 1);
  }
}

TEST(CdiTable, SweepDropsExpired) {
  CdiTable cdi;
  cdi.update(ItemId(1), 0, 1, NodeId(1), SimTime::zero(),
             SimTime::seconds(1));
  cdi.update(ItemId(1), 1, 1, NodeId(1), SimTime::zero(),
             SimTime::seconds(100));
  cdi.sweep(SimTime::seconds(10));
  EXPECT_EQ(cdi.size(), 1u);
}

}  // namespace
}  // namespace pds::core
