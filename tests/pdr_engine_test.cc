// Engine-level behavioural tests for two-phase retrieval on deterministic
// topologies: CDI distance-vector construction, recursive query division
// with GAP balancing, split horizon / TTL loop control, the MDR flood path,
// and chunk duplicate suppression.
#include <gtest/gtest.h>

#include <set>

#include "core/pdr.h"
#include "net/transport.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace pds::core {
namespace {

sim::RadioConfig lossless_radio() {
  sim::RadioConfig cfg = sim::clean_radio_profile();
  cfg.loss_probability = 0.0;
  return cfg;
}

std::unique_ptr<wl::Scenario> make_line(std::size_t n, const PdsConfig& pds,
                                        std::uint64_t seed = 1) {
  auto sc = std::make_unique<wl::Scenario>(seed, lossless_radio());
  for (std::size_t i = 0; i < n; ++i) {
    sc->add_node(NodeId(static_cast<std::uint32_t>(i)),
                 {static_cast<double>(i) * 10.0, 0.0}, pds);
  }
  return sc;
}

constexpr std::size_t kChunkBytes = 64 * 1024;  // small chunks: fast tests

DataDescriptor make_item(std::size_t chunks) {
  return wl::make_chunked_item("clip", chunks * kChunkBytes, kChunkBytes);
}

void give_chunk(core::PdsNode& node, const DataDescriptor& item,
                ChunkIndex index) {
  node.publish_chunk(
      item, wl::make_chunk(item, index,
                           wl::chunk_count(item) * kChunkBytes, kChunkBytes));
}

PdsConfig small_chunk_config() {
  PdsConfig pds;
  pds.chunk_size_bytes = kChunkBytes;
  return pds;
}

TEST(PdrEngine, CdiBuildsDistanceVector) {
  PdsConfig pds = small_chunk_config();
  auto sc = make_line(4, pds);
  const DataDescriptor item = make_item(2);
  give_chunk(sc->node(NodeId(3)), item, 0);
  give_chunk(sc->node(NodeId(3)), item, 1);

  // Drive phase 1 by starting a retrieval from node 0; inspect the tables
  // shortly after, before they expire.
  sc->node(NodeId(0)).retrieve(item, [](const RetrievalResult&) {});
  sc->run_until(SimTime::seconds(1.0));

  // Node 2 (adjacent to the holder) sees hop 1 via node 3; node 1 sees hop
  // 2 via node 2; consumer sees hop 3 via node 1.
  const SimTime now = sc->sim().now();
  const auto* rec2 = sc->node(NodeId(2)).cdi_table().lookup(item.item_id(), 0, now);
  ASSERT_NE(rec2, nullptr);
  EXPECT_EQ(rec2->hop_count, 1u);
  EXPECT_EQ(rec2->neighbors, (std::vector<NodeId>{NodeId(3)}));

  const auto* rec1 = sc->node(NodeId(1)).cdi_table().lookup(item.item_id(), 0, now);
  ASSERT_NE(rec1, nullptr);
  EXPECT_EQ(rec1->hop_count, 2u);

  const auto* rec0 = sc->node(NodeId(0)).cdi_table().lookup(item.item_id(), 0, now);
  ASSERT_NE(rec0, nullptr);
  EXPECT_EQ(rec0->hop_count, 3u);
  EXPECT_EQ(rec0->neighbors, (std::vector<NodeId>{NodeId(1)}));
}

TEST(PdrEngine, RetrievesAcrossMultipleHops) {
  PdsConfig pds = small_chunk_config();
  auto sc = make_line(5, pds);
  const DataDescriptor item = make_item(4);
  for (ChunkIndex c = 0; c < 4; ++c) give_chunk(sc->node(NodeId(4)), item, c);

  RetrievalResult result;
  bool done = false;
  sc->node(NodeId(0)).retrieve(item, [&](const RetrievalResult& r) {
    result = r;
    done = true;
  });
  sc->run_until(SimTime::seconds(120));
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.chunks_received, 4u);
  EXPECT_EQ(result.cdi_rounds, 1);
}

TEST(PdrEngine, ChunksFetchedFromNearestCopies) {
  // Chunk 0 near the consumer, chunk 1 far: the near one must come from the
  // near holder (we check by counting how many chunk transmissions the far
  // holder makes).
  PdsConfig pds = small_chunk_config();
  auto sc = make_line(5, pds);
  const DataDescriptor item = make_item(2);
  give_chunk(sc->node(NodeId(1)), item, 0);  // 1 hop away
  give_chunk(sc->node(NodeId(4)), item, 0);  // 4 hops away (redundant copy)
  give_chunk(sc->node(NodeId(4)), item, 1);

  std::uint64_t far_chunk0_sends = 0;
  sc->medium().set_tx_observer([&](NodeId from, const sim::Frame& f) {
    const auto frag =
        std::dynamic_pointer_cast<const net::FragmentPayload>(f.payload);
    if (frag == nullptr || frag->index != 0) return;
    if (from == NodeId(4) && frag->whole->chunk &&
        frag->whole->chunk->index == 0) {
      ++far_chunk0_sends;
    }
  });

  RetrievalResult result;
  bool done = false;
  sc->node(NodeId(0)).retrieve(item, [&](const RetrievalResult& r) {
    result = r;
    done = true;
  });
  sc->run_until(SimTime::seconds(120));
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(far_chunk0_sends, 0u);  // nearest copy used exclusively
}

TEST(PdrEngine, RecursiveDivisionSplitsAcrossBranches) {
  // Y topology: consumer -- hub -- {holder A, holder B}. The hub must
  // divide the request between both holders.
  PdsConfig pds = small_chunk_config();
  auto sc = std::make_unique<wl::Scenario>(11, lossless_radio());
  sc->add_node(NodeId(0), {0, 0}, pds);    // consumer
  sc->add_node(NodeId(1), {10, 0}, pds);   // hub
  sc->add_node(NodeId(2), {20, 6}, pds);   // holder A (adjacent to hub only)
  sc->add_node(NodeId(3), {20, -6}, pds);  // holder B (adjacent to hub only)
  const DataDescriptor item = make_item(6);
  for (ChunkIndex c = 0; c < 6; ++c) {
    give_chunk(sc->node(NodeId(2)), item, c);
    give_chunk(sc->node(NodeId(3)), item, c);
  }

  std::set<NodeId> chunk_senders;
  sc->medium().set_tx_observer([&](NodeId from, const sim::Frame& f) {
    const auto frag =
        std::dynamic_pointer_cast<const net::FragmentPayload>(f.payload);
    if (frag != nullptr && frag->whole->chunk.has_value() &&
        frag->index == 0 && from != NodeId(1)) {
      chunk_senders.insert(from);
    }
  });

  RetrievalResult result;
  bool done = false;
  sc->node(NodeId(0)).retrieve(item, [&](const RetrievalResult& r) {
    result = r;
    done = true;
  });
  sc->run_until(SimTime::seconds(120));
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.complete);
  // GAP balancing (both holders tie at the same hop count) must use both.
  EXPECT_EQ(chunk_senders.size(), 2u);
}

TEST(PdrEngine, PlanChunkRequestsRespectsSplitHorizonAndUnroutable) {
  PdsConfig pds = small_chunk_config();
  auto sc = make_line(2, pds);
  core::PdsNode& node = sc->node(NodeId(0));
  const ItemId item(42);
  node.cdi_table().update(item, 0, 1, NodeId(1), SimTime::zero(),
                          SimTime::seconds(30));
  node.cdi_table().update(item, 1, 2, NodeId(1), SimTime::zero(),
                          SimTime::seconds(30));

  // Without exclusion both chunks route via node 1.
  const ChunkPlan plan = plan_chunk_requests(node.context(), item, {0, 1, 2});
  ASSERT_EQ(plan.by_neighbor.size(), 1u);
  EXPECT_EQ(plan.by_neighbor[0].first, NodeId(1));
  EXPECT_EQ(plan.by_neighbor[0].second.size(), 2u);
  EXPECT_EQ(plan.unroutable, (std::vector<ChunkIndex>{2}));

  // Split horizon: excluding node 1 leaves everything unroutable.
  const ChunkPlan excluded =
      plan_chunk_requests(node.context(), item, {0, 1}, NodeId(1));
  EXPECT_TRUE(excluded.by_neighbor.empty());
  EXPECT_EQ(excluded.unroutable.size(), 2u);
}

TEST(PdrEngine, MdrFloodServesAndRewritesRequests) {
  // Line: consumer(0) - holder(1, has chunk 0) - holder(2, has chunks 0,1).
  // Node 1 serves chunk 0 and forwards the flood requesting only chunk 1 —
  // node 2 must never transmit chunk 0.
  PdsConfig pds = small_chunk_config();
  auto sc = make_line(3, pds);
  const DataDescriptor item = make_item(2);
  give_chunk(sc->node(NodeId(1)), item, 0);
  give_chunk(sc->node(NodeId(2)), item, 0);
  give_chunk(sc->node(NodeId(2)), item, 1);

  std::uint64_t node2_chunk0 = 0;
  sc->medium().set_tx_observer([&](NodeId from, const sim::Frame& f) {
    const auto frag =
        std::dynamic_pointer_cast<const net::FragmentPayload>(f.payload);
    if (frag != nullptr && from == NodeId(2) && frag->index == 0 &&
        frag->whole->chunk && frag->whole->chunk->index == 0) {
      ++node2_chunk0;
    }
  });

  RetrievalResult result;
  bool done = false;
  sc->node(NodeId(0)).retrieve_mdr(item, [&](const RetrievalResult& r) {
    result = r;
    done = true;
  });
  sc->run_until(SimTime::seconds(120));
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.chunks_received, 2u);
  EXPECT_EQ(node2_chunk0, 0u);  // en-route request rewriting suppressed it
}

TEST(PdrEngine, ChunkContentSurvivesMultiHopRelay) {
  PdsConfig pds = small_chunk_config();
  auto sc = make_line(4, pds);
  const DataDescriptor item = make_item(3);
  for (ChunkIndex c = 0; c < 3; ++c) give_chunk(sc->node(NodeId(3)), item, c);

  const PdrSession* session = nullptr;
  bool done = false;
  session = &sc->node(NodeId(0)).retrieve(
      item, [&](const RetrievalResult&) { done = true; });
  sc->run_until(SimTime::seconds(120));
  ASSERT_TRUE(done);
  for (const auto& [index, payload] : session->chunks()) {
    EXPECT_EQ(payload.content_hash,
              wl::chunk_content_hash(item.item_id(), index));
    EXPECT_EQ(payload.size_bytes, kChunkBytes);
  }
}

TEST(PdrEngine, RelaysCacheChunksOpportunistically) {
  PdsConfig pds = small_chunk_config();
  auto sc = make_line(4, pds);
  const DataDescriptor item = make_item(2);
  give_chunk(sc->node(NodeId(3)), item, 0);
  give_chunk(sc->node(NodeId(3)), item, 1);

  bool done = false;
  sc->node(NodeId(0)).retrieve(item,
                               [&](const RetrievalResult&) { done = true; });
  sc->run_until(SimTime::seconds(120));
  ASSERT_TRUE(done);
  // Relays on the path now hold full copies.
  EXPECT_TRUE(sc->node(NodeId(1)).store().has_chunk(item.item_id(), 0));
  EXPECT_TRUE(sc->node(NodeId(2)).store().has_chunk(item.item_id(), 1));
}

TEST(PdrEngine, SecondConsumerServedFromPathCaches) {
  PdsConfig pds = small_chunk_config();
  auto sc = make_line(4, pds);
  const DataDescriptor item = make_item(2);
  give_chunk(sc->node(NodeId(3)), item, 0);
  give_chunk(sc->node(NodeId(3)), item, 1);

  bool first_done = false;
  sc->node(NodeId(0)).retrieve(
      item, [&](const RetrievalResult&) { first_done = true; });
  sc->run_until(SimTime::seconds(120));
  ASSERT_TRUE(first_done);

  // Second retrieval from node 1 (a path cache holder): the original
  // holder must not transmit anything.
  std::uint64_t holder_sends = 0;
  sc->medium().set_tx_observer([&](NodeId from, const sim::Frame& f) {
    if (from == NodeId(3) && f.size_bytes > 1000) ++holder_sends;
  });
  RetrievalResult second;
  bool second_done = false;
  sc->node(NodeId(1)).retrieve(item, [&](const RetrievalResult& r) {
    second = r;
    second_done = true;
  });
  sc->run_until(SimTime::seconds(240));
  ASSERT_TRUE(second_done);
  EXPECT_TRUE(second.complete);
  EXPECT_EQ(holder_sends, 0u);  // everything came from local cache
}

TEST(PdrEngine, UnreachableItemFailsCleanly) {
  PdsConfig pds = small_chunk_config();
  auto sc = make_line(3, pds);
  const DataDescriptor item = make_item(2);  // nobody holds it

  RetrievalResult result;
  bool done = false;
  sc->node(NodeId(0)).retrieve(item, [&](const RetrievalResult& r) {
    result = r;
    done = true;
  });
  sc->run_until(SimTime::seconds(120));
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.chunks_received, 0u);
}

TEST(PdrEngine, PartialAvailabilityReportsPartialRecall) {
  PdsConfig pds = small_chunk_config();
  auto sc = make_line(3, pds);
  const DataDescriptor item = make_item(4);
  give_chunk(sc->node(NodeId(2)), item, 0);
  give_chunk(sc->node(NodeId(2)), item, 2);  // chunks 1 and 3 missing

  RetrievalResult result;
  bool done = false;
  sc->node(NodeId(0)).retrieve(item, [&](const RetrievalResult& r) {
    result = r;
    done = true;
  });
  sc->run_until(SimTime::seconds(300));
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.chunks_received, 2u);
}

TEST(PdrEngine, ConsumerWithAllChunksFinishesInstantly) {
  PdsConfig pds = small_chunk_config();
  auto sc = make_line(2, pds);
  const DataDescriptor item = make_item(3);
  for (ChunkIndex c = 0; c < 3; ++c) give_chunk(sc->node(NodeId(0)), item, c);

  RetrievalResult result;
  bool done = false;
  sc->node(NodeId(0)).retrieve(item, [&](const RetrievalResult& r) {
    result = r;
    done = true;
  });
  EXPECT_TRUE(done);  // synchronous completion
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.latency, SimTime::zero());
}

}  // namespace
}  // namespace pds::core
