// Unit tests for the deterministic fault-schedule engine (sim/faults.h):
// crash/restart radio semantics, per-pair loss overrides, Gilbert–Elliott
// burst channels, buffer storms, schedule builders and counter/metrics
// exposure — all at the sim layer, with dummy sinks instead of PDS nodes.
#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "sim/faults.h"
#include "sim/radio.h"
#include "sim/simulator.h"

namespace pds::sim {
namespace {

class Collector final : public FrameSink {
 public:
  void on_frame(const Frame& frame) override { frames.push_back(frame); }
  std::vector<Frame> frames;
};

struct Blob final : FramePayload {};

Frame make_frame(NodeId sender, std::size_t bytes = 1000) {
  return Frame{.sender = sender, .size_bytes = bytes,
               .payload = std::make_shared<Blob>()};
}

RadioConfig lossless() {
  RadioConfig cfg;
  cfg.loss_probability = 0.0;
  return cfg;
}

TEST(FaultSchedule, BuildersAppendInCallOrder) {
  FaultSchedule s;
  EXPECT_TRUE(s.empty());
  s.crash(SimTime::seconds(1), NodeId(3), /*wipe=*/true)
      .restart(SimTime::seconds(2), NodeId(3))
      .link_loss(SimTime::seconds(3), NodeId(0), NodeId(1), 0.5)
      .link_restore(SimTime::seconds(4), NodeId(0), NodeId(1))
      .burst(SimTime::seconds(5), SimTime::seconds(6), NodeId(2))
      .buffer_storm(SimTime::seconds(7), NodeId(4));
  EXPECT_EQ(s.events.size(), 7u);  // burst(on+off) expands to two events
  EXPECT_EQ(s.events.front().kind, FaultKind::kCrash);
  EXPECT_TRUE(s.events.front().wipe_state);
}

TEST(FaultSchedule, ChurnExpandsToCrashWithoutWipePlusRestart) {
  FaultSchedule s;
  s.churn(SimTime::seconds(2), SimTime::seconds(10), NodeId(7));
  ASSERT_EQ(s.events.size(), 2u);
  EXPECT_EQ(s.events[0].kind, FaultKind::kCrash);
  EXPECT_FALSE(s.events[0].wipe_state);  // the device walks away, not reboots
  EXPECT_EQ(s.events[1].kind, FaultKind::kRestart);
  EXPECT_EQ(s.events[1].at, SimTime::seconds(10));
}

TEST(FaultSchedule, PermanentPartitionSkipsHeal) {
  FaultSchedule permanent;
  permanent.partition(SimTime::seconds(1), SimTime::zero(), {NodeId(0)},
                      {NodeId(1)});
  EXPECT_EQ(permanent.events.size(), 1u);
  FaultSchedule healing;
  healing.partition(SimTime::seconds(1), SimTime::seconds(5), {NodeId(0)},
                    {NodeId(1)});
  EXPECT_EQ(healing.events.size(), 2u);
}

TEST(FaultInjector, CrashSilencesNodeAndRestartRevives) {
  Simulator sim(1);
  RadioMedium medium(sim, lossless());
  Collector a, b;
  medium.add_node(NodeId(0), a, {0, 0});
  medium.add_node(NodeId(1), b, {10, 0});

  FaultInjector injector(sim, medium);
  FaultSchedule s;
  s.crash(SimTime::seconds(1), NodeId(0))
      .restart(SimTime::seconds(2), NodeId(0));
  injector.install(s);

  // Before the crash: delivered. While down: the medium refuses the send.
  // After restart: delivered again.
  medium.send(NodeId(0), make_frame(NodeId(0)));
  sim.schedule_at(SimTime::seconds(1.5),
                  [&] { medium.send(NodeId(0), make_frame(NodeId(0))); });
  sim.schedule_at(SimTime::seconds(2.5),
                  [&] { medium.send(NodeId(0), make_frame(NodeId(0))); });
  sim.schedule_at(SimTime::seconds(1.25),
                  [&] { EXPECT_TRUE(injector.is_crashed(NodeId(0))); });
  sim.run();
  EXPECT_EQ(b.frames.size(), 2u);
  EXPECT_FALSE(injector.is_crashed(NodeId(0)));
  EXPECT_EQ(injector.stats().crashes, 1u);
  EXPECT_EQ(injector.stats().restarts, 1u);
}

TEST(FaultInjector, DoubleCrashAndSpuriousRestartAreIdempotent) {
  Simulator sim(1);
  RadioMedium medium(sim, lossless());
  Collector a;
  medium.add_node(NodeId(0), a, {0, 0});
  FaultInjector injector(sim, medium);
  FaultSchedule s;
  s.restart(SimTime::seconds(0.5), NodeId(0))  // not down: no-op
      .crash(SimTime::seconds(1), NodeId(0))
      .crash(SimTime::seconds(2), NodeId(0));  // already down: no-op
  injector.install(s);
  sim.run();
  EXPECT_EQ(injector.stats().crashes, 1u);
  EXPECT_EQ(injector.stats().restarts, 0u);
  EXPECT_EQ(injector.crashed_count(), 1u);
}

TEST(FaultInjector, HardPairLossCutsOneDirectionPairwise) {
  Simulator sim(1);
  RadioMedium medium(sim, lossless());
  Collector a, b, c;
  medium.add_node(NodeId(0), a, {0, 0});
  medium.add_node(NodeId(1), b, {10, 0});
  medium.add_node(NodeId(2), c, {5, 8});  // in range of both

  FaultInjector injector(sim, medium);
  FaultSchedule s;
  s.link_loss(SimTime::zero(), NodeId(0), NodeId(1), 1.0);
  injector.install(s);

  sim.schedule_at(SimTime::millis(1),
                  [&] { medium.send(NodeId(0), make_frame(NodeId(0))); });
  sim.run();
  // The 0->1 link is cut but the broadcast still reaches node 2.
  EXPECT_TRUE(b.frames.empty());
  EXPECT_EQ(c.frames.size(), 1u);
  EXPECT_EQ(medium.stats().losses_fault, 1u);
  EXPECT_EQ(injector.stats().links_degraded, 1u);
}

TEST(FaultInjector, LinkRestoreClearsTheOverride) {
  Simulator sim(1);
  RadioMedium medium(sim, lossless());
  Collector a, b;
  medium.add_node(NodeId(0), a, {0, 0});
  medium.add_node(NodeId(1), b, {10, 0});

  FaultInjector injector(sim, medium);
  FaultSchedule s;
  s.link_loss(SimTime::zero(), NodeId(0), NodeId(1), 1.0)
      .link_restore(SimTime::seconds(1), NodeId(0), NodeId(1));
  injector.install(s);

  sim.schedule_at(SimTime::millis(1),
                  [&] { medium.send(NodeId(0), make_frame(NodeId(0))); });
  sim.schedule_at(SimTime::seconds(2),
                  [&] { medium.send(NodeId(0), make_frame(NodeId(0))); });
  sim.run();
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_EQ(medium.pair_loss_count(), 0u);
  EXPECT_EQ(injector.stats().links_restored, 1u);
}

TEST(FaultInjector, PartitionCutsCrossPairsAndHealRestores) {
  Simulator sim(1);
  RadioMedium medium(sim, lossless());
  Collector a, b, c;
  medium.add_node(NodeId(0), a, {0, 0});
  medium.add_node(NodeId(1), b, {10, 0});
  medium.add_node(NodeId(2), c, {5, 8});

  FaultInjector injector(sim, medium);
  FaultSchedule s;
  s.partition(SimTime::zero(), SimTime::seconds(1), {NodeId(0)},
              {NodeId(1), NodeId(2)});
  injector.install(s);

  sim.schedule_at(SimTime::millis(1),
                  [&] { medium.send(NodeId(0), make_frame(NodeId(0))); });
  sim.schedule_at(SimTime::seconds(2),
                  [&] { medium.send(NodeId(0), make_frame(NodeId(0))); });
  sim.run();
  // First send fully cut; second (after heal) reaches both.
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_EQ(c.frames.size(), 1u);
  EXPECT_EQ(medium.stats().losses_fault, 2u);
  EXPECT_EQ(injector.stats().partitions, 1u);
  EXPECT_EQ(injector.stats().heals, 1u);
  EXPECT_EQ(medium.pair_loss_count(), 0u);
}

TEST(FaultInjector, BurstChannelInBadStateLosesFrames) {
  Simulator sim(1);
  RadioMedium medium(sim, lossless());
  Collector a, b;
  medium.add_node(NodeId(0), a, {0, 0});
  medium.add_node(NodeId(1), b, {10, 0});

  // Degenerate chain: enters (and stays in) the bad state on the first
  // frame and loses everything there.
  GilbertElliottParams ge;
  ge.p_good_to_bad = 1.0;
  ge.p_bad_to_good = 0.0;
  ge.loss_good = 0.0;
  ge.loss_bad = 1.0;

  FaultInjector injector(sim, medium);
  FaultSchedule s;
  s.burst(SimTime::zero(), SimTime::seconds(5), NodeId(1), ge);
  injector.install(s);

  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(SimTime::millis(10 + 20 * i),
                    [&] { medium.send(NodeId(0), make_frame(NodeId(0))); });
  }
  sim.schedule_at(SimTime::seconds(6),
                  [&] { medium.send(NodeId(0), make_frame(NodeId(0))); });
  sim.run();
  // All five frames during the burst are lost; the one after burst-off
  // arrives.
  EXPECT_EQ(b.frames.size(), 1u);
  EXPECT_EQ(medium.stats().losses_burst, 5u);
  EXPECT_EQ(injector.stats().bursts_started, 1u);
  EXPECT_EQ(injector.stats().bursts_stopped, 1u);
}

TEST(FaultInjector, BufferStormFillsOsBufferAndDropsOverflow) {
  Simulator sim(1);
  RadioConfig cfg = lossless();
  cfg.os_buffer_bytes = 10'000;  // fits ~6 junk frames of 1500 B
  RadioMedium medium(sim, cfg);
  Collector a, b;
  medium.add_node(NodeId(0), a, {0, 0});
  medium.add_node(NodeId(1), b, {10, 0});

  FaultInjector injector(sim, medium);
  FaultSchedule s;
  s.buffer_storm(SimTime::millis(1), NodeId(0), /*bytes=*/30'000,
                 /*frame_bytes=*/1500);
  injector.install(s);
  sim.run();
  EXPECT_EQ(injector.stats().storms, 1u);
  EXPECT_EQ(injector.stats().storm_frames, 20u);
  // The buffer only holds a fraction of the storm; the rest drops at the OS.
  EXPECT_GT(medium.stats().os_buffer_drops, 0u);
  // Junk frames still burn airtime at every receiver in range.
  EXPECT_GT(b.frames.size(), 0u);
  for (const Frame& f : b.frames) {
    EXPECT_NE(dynamic_cast<const StormPayload*>(f.payload.get()), nullptr);
  }
}

TEST(FaultInjector, StormOnCrashedNodeIsSkipped) {
  Simulator sim(1);
  RadioMedium medium(sim, lossless());
  Collector a;
  medium.add_node(NodeId(0), a, {0, 0});
  FaultInjector injector(sim, medium);
  FaultSchedule s;
  s.crash(SimTime::millis(1), NodeId(0))
      .buffer_storm(SimTime::millis(2), NodeId(0));
  injector.install(s);
  sim.run();
  EXPECT_EQ(injector.stats().storms, 0u);
  EXPECT_EQ(injector.stats().storm_frames, 0u);
}

TEST(FaultInjector, SameSeedAndScheduleGiveIdenticalStats) {
  const auto run = [] {
    Simulator sim(42);
    RadioConfig cfg;
    cfg.loss_probability = 0.1;
    RadioMedium medium(sim, cfg);
    std::vector<std::unique_ptr<Collector>> sinks;
    for (std::uint32_t i = 0; i < 6; ++i) {
      sinks.push_back(std::make_unique<Collector>());
      medium.add_node(NodeId(i), *sinks.back(),
                      {static_cast<double>(i) * 9.0, 0.0});
    }
    FaultInjector injector(sim, medium);
    FaultSchedule s;
    s.link_loss(SimTime::millis(50), NodeId(0), NodeId(1), 0.5)
        .burst(SimTime::millis(60), SimTime::seconds(2), NodeId(2))
        .churn(SimTime::millis(80), SimTime::millis(500), NodeId(3))
        .buffer_storm(SimTime::millis(90), NodeId(4));
    injector.install(s);
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(SimTime::millis(10 * i), [&medium, i] {
        medium.send(NodeId(static_cast<std::uint32_t>(i % 3)),
                    make_frame(NodeId(static_cast<std::uint32_t>(i % 3))));
      });
    }
    sim.run(SimTime::seconds(5));
    return std::make_pair(medium.stats(), injector.stats());
  };
  const auto [stats_a, faults_a] = run();
  const auto [stats_b, faults_b] = run();
  EXPECT_EQ(stats_a, stats_b);
  EXPECT_EQ(faults_a, faults_b);
}

TEST(FaultInjector, RegisterMetricsExposesCounters) {
  Simulator sim(1);
  RadioMedium medium(sim, lossless());
  Collector a;
  medium.add_node(NodeId(0), a, {0, 0});
  FaultInjector injector(sim, medium);
  FaultSchedule s;
  s.churn(SimTime::millis(1), SimTime::millis(2), NodeId(0));
  injector.install(s);
  sim.run();

  obs::MetricsRegistry registry;
  injector.register_metrics(registry);
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("faults.crashes"), 1u);
  EXPECT_EQ(snap.counters.at("faults.restarts"), 1u);
  EXPECT_EQ(snap.counters.at("faults.storms"), 0u);
}

}  // namespace
}  // namespace pds::sim
