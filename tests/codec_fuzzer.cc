// libFuzzer entry point for the wire codec (built only with -DPDS_FUZZ=ON;
// requires clang's -fsanitize=fuzzer). Seed with tests/corpus/:
//
//   ./tests/codec_fuzzer ../tests/corpus -max_len=4096
//
// All checking lives in tests/codec_fuzz_harness.h, shared with the
// corpus-replay regression test that runs in the normal build.
#include <cstddef>
#include <cstdint>

#include "tests/codec_fuzz_harness.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  pds::net::fuzz_one_input(data, size);
  return 0;
}
