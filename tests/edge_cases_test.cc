// Edge cases across layers: nodes vanishing mid-frame and mid-retrieval,
// CDI expiry during a transfer, MTU-boundary messages, repair disabled,
// and store/query interplay around expirations.
#include <gtest/gtest.h>

#include "net/transport.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace pds {
namespace {

sim::RadioConfig lossless_radio() {
  sim::RadioConfig cfg = sim::clean_radio_profile();
  cfg.loss_probability = 0.0;
  return cfg;
}

// -- Medium edge cases --------------------------------------------------------

TEST(EdgeCases, NodeDisabledMidFrameReceivesNothing) {
  sim::Simulator sim(1);
  sim::RadioConfig cfg = lossless_radio();
  sim::RadioMedium medium(sim, cfg);
  struct Sink final : sim::FrameSink {
    int frames = 0;
    void on_frame(const sim::Frame&) override { ++frames; }
  };
  Sink a;
  Sink b;
  medium.add_node(NodeId(0), a, {0, 0});
  medium.add_node(NodeId(1), b, {10, 0});

  struct Blob final : sim::FramePayload {};
  // A large frame (airtime ~1.1 ms); disable the receiver in the middle.
  medium.send(NodeId(0), sim::Frame{.sender = NodeId(0),
                                    .size_bytes = 1000,
                                    .payload = std::make_shared<Blob>()});
  sim.schedule(SimTime::micros(500),
               [&] { medium.set_enabled(NodeId(1), false); });
  sim.run();
  EXPECT_EQ(b.frames, 0);
}

TEST(EdgeCases, ReEnabledNodeResumesReceiving) {
  sim::Simulator sim(2);
  sim::RadioMedium medium(sim, lossless_radio());
  struct Sink final : sim::FrameSink {
    int frames = 0;
    void on_frame(const sim::Frame&) override { ++frames; }
  };
  Sink a;
  Sink b;
  medium.add_node(NodeId(0), a, {0, 0});
  medium.add_node(NodeId(1), b, {10, 0});
  medium.set_enabled(NodeId(1), false);

  struct Blob final : sim::FramePayload {};
  auto send_one = [&] {
    medium.send(NodeId(0), sim::Frame{.sender = NodeId(0),
                                      .size_bytes = 100,
                                      .payload = std::make_shared<Blob>()});
  };
  send_one();
  sim.run();
  EXPECT_EQ(b.frames, 0);
  medium.set_enabled(NodeId(1), true);
  send_one();
  sim.run();
  EXPECT_EQ(b.frames, 1);
}

// -- Transport edge cases --------------------------------------------------------

net::MessagePtr padded_message(std::uint32_t payload_bytes, std::uint64_t id) {
  auto m = std::make_shared<net::Message>();
  m->type = net::MessageType::kResponse;
  m->kind = net::ContentKind::kItem;
  m->response_id = ResponseId(id);
  m->sender = NodeId(0);
  m->receivers = {NodeId(1)};
  net::ItemPayload item;
  item.descriptor.set("k", std::int64_t{1});
  item.size_bytes = payload_bytes;
  m->items.push_back(std::move(item));
  return m;
}

TEST(EdgeCases, MessagesAroundMtuBoundary) {
  sim::Simulator sim(3);
  sim::RadioMedium medium(sim, lossless_radio());
  net::TransportConfig tc;
  const net::Codec codec;
  net::BroadcastFace fa(medium, NodeId(0), {0, 0});
  net::BroadcastFace fb(medium, NodeId(1), {10, 0});
  net::Transport a(sim, fa, NodeId(0), tc, codec);
  net::Transport b(sim, fb, NodeId(1), tc, codec);

  int delivered = 0;
  b.set_handler([&](const net::MessagePtr&) { ++delivered; });
  // Sizes straddling the 1500-byte MTU: single-frame, exactly-at, and
  // just-over (two fragments).
  std::uint64_t id = 100;
  for (const std::uint32_t payload : {100u, 1380u, 1430u, 1500u, 3200u}) {
    a.send(padded_message(payload, id++));
  }
  sim.run();
  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(a.stats().deliveries_gave_up, 0u);
}

TEST(EdgeCases, RepairDisabledStillDeliversViaRetransmission) {
  sim::Simulator sim(4);
  sim::RadioConfig radio = lossless_radio();
  radio.loss_probability = 0.03;
  sim::RadioMedium medium(sim, radio);
  net::TransportConfig tc;
  tc.repair_enabled = false;
  tc.max_retransmissions = 8;  // per-packet reliability must carry it alone
  const net::Codec codec;
  net::BroadcastFace fa(medium, NodeId(0), {0, 0});
  net::BroadcastFace fb(medium, NodeId(1), {10, 0});
  net::Transport a(sim, fa, NodeId(0), tc, codec);
  net::Transport b(sim, fb, NodeId(1), tc, codec);

  int delivered = 0;
  b.set_handler([&](const net::MessagePtr&) { ++delivered; });
  auto msg = std::make_shared<net::Message>();
  msg->type = net::MessageType::kResponse;
  msg->kind = net::ContentKind::kChunk;
  msg->response_id = ResponseId(9);
  msg->sender = NodeId(0);
  msg->receivers = {NodeId(1)};
  core::DataDescriptor d;
  d.set(core::kAttrTotalChunks, std::int64_t{1});
  msg->target = d;
  msg->chunk = net::ChunkPayload{.index = 0, .size_bytes = 128 * 1024,
                                 .content_hash = 1};
  a.send(std::move(msg));
  sim.run(SimTime::seconds(60));
  EXPECT_EQ(delivered, 1);
}

// -- Retrieval edge cases ---------------------------------------------------------

TEST(EdgeCases, CdiExpiryMidRetrievalIsRefreshed) {
  // CDI entries expire faster than the transfer completes; the consumer's
  // stall logic must re-query CDI and still finish.
  core::PdsConfig pds;
  pds.chunk_size_bytes = 64 * 1024;
  pds.cdi_ttl = SimTime::seconds(2.0);  // far below the transfer time
  pds.retrieval_stall_timeout = SimTime::seconds(4.0);
  wl::GridSetup setup;
  setup.nx = setup.ny = 4;
  setup.radio = lossless_radio();
  setup.pds = pds;
  wl::Grid grid = wl::make_grid(setup, 31);

  const auto item = wl::make_chunked_item("x", 16 * 64 * 1024, 64 * 1024);
  Rng rng(8);
  auto nodes = grid.scenario->nodes();
  wl::distribute_chunks(nodes, item, 16 * 64 * 1024, 64 * 1024, 1, rng,
                        {grid.center});

  core::RetrievalResult result;
  bool done = false;
  grid.center_node().retrieve(item, [&](const core::RetrievalResult& r) {
    result = r;
    done = true;
  });
  grid.scenario->run_until(SimTime::seconds(300));
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.complete);
}

TEST(EdgeCases, SingleChunkItem) {
  core::PdsConfig pds;
  pds.chunk_size_bytes = 64 * 1024;
  wl::GridSetup setup;
  setup.nx = setup.ny = 3;
  setup.radio = lossless_radio();
  setup.pds = pds;
  wl::Grid grid = wl::make_grid(setup, 32);
  const auto item = wl::make_chunked_item("tiny", 1000, 64 * 1024);
  EXPECT_EQ(wl::chunk_count(item), 1u);
  grid.scenario->node(grid.ids.front())
      .publish_chunk(item, wl::make_chunk(item, 0, 1000, 64 * 1024));

  core::RetrievalResult result;
  bool done = false;
  grid.center_node().retrieve(item, [&](const core::RetrievalResult& r) {
    result = r;
    done = true;
  });
  grid.scenario->run_until(SimTime::seconds(60));
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.chunks_received, 1u);
}

// -- Store/query interplay ----------------------------------------------------------

TEST(EdgeCases, ExpiredCachedEntriesAreNotServedToQueries) {
  core::PdsConfig pds;
  pds.metadata_ttl = SimTime::seconds(3.0);
  auto sc = std::make_unique<wl::Scenario>(33, lossless_radio());
  sc->add_node(NodeId(0), {0, 0}, pds);
  sc->add_node(NodeId(1), {10, 0}, pds);
  sc->add_node(NodeId(2), {20, 0}, pds);
  core::DataDescriptor d;
  d.set("seq", std::int64_t{1});
  sc->node(NodeId(2)).publish_metadata(d);

  // First discovery caches the entry at node 1.
  bool first = false;
  sc->node(NodeId(0)).discover(core::Filter{},
                               [&](const core::DiscoverySession::Result&) {
                                 first = true;
                               });
  sc->run_until(SimTime::seconds(10));
  ASSERT_TRUE(first);

  // The producer leaves; after the cached-entry TTL, the entry is gone
  // everywhere and a new consumer finds nothing.
  sc->medium().set_enabled(NodeId(2), false);
  sc->run_until(SimTime::seconds(30));
  core::DiscoverySession::Result result;
  bool second = false;
  sc->node(NodeId(0)).discover(core::Filter{},
                               [&](const core::DiscoverySession::Result& r) {
                                 result = r;
                                 second = true;
                               });
  sc->run_until(SimTime::seconds(60));
  ASSERT_TRUE(second);
  // Node 0's own cached copy also expired; the paper's metadata/data
  // synchronization rule at work.
  EXPECT_EQ(result.distinct_received, 0u);
}

}  // namespace
}  // namespace pds
