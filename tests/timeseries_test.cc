// The flight recorder must be a pure observer (DESIGN.md §15): with the
// same seed, (a) attaching a sampler + profiler leaves every experiment
// outcome bit-identical to the unsampled run, (b) the deterministic (sim-
// kind) series projection is byte-identical across RadioConfig::shard_threads
// 1/2/8 and across PDS_BENCH_JOBS worker pools, and (c) the scenario
// collector populates exactly the columns registered in
// tools/stats_schema.h with sane (non-negative, cumulative-monotone) values.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/profiler.h"
#include "obs/timeseries.h"
#include "parallel_runs.h"
#include "tools/stats_analysis.h"
#include "tools/stats_schema.h"
#include "workload/experiment.h"

namespace pds::wl {
namespace {

PddGridParams small_pdd(std::uint64_t seed, obs::TimeSeries* sampler,
                        obs::Profiler* profiler = nullptr) {
  PddGridParams p;
  p.nx = p.ny = 5;
  p.metadata_count = 400;
  p.consumers = 2;
  p.sequential = true;
  p.seed = seed;
  p.sampler = sampler;
  p.profiler = profiler;
  return p;
}

bool same_outcome(const PddOutcome& a, const PddOutcome& b) {
  return a.recall == b.recall && a.latency_s == b.latency_s &&
         a.overhead_mb == b.overhead_mb && a.rounds == b.rounds &&
         a.all_finished == b.all_finished &&
         a.events_executed == b.events_executed &&
         a.per_consumer_recall == b.per_consumer_recall &&
         a.per_consumer_latency_s == b.per_consumer_latency_s;
}

TEST(TimeSeriesDeterminism, SampledPddOutcomeBitIdenticalToUnsampled) {
  const PddOutcome plain = run_pdd_grid(small_pdd(7, nullptr));
  obs::TimeSeries sampler(SimTime::millis(100));
  obs::Profiler profiler;
  const PddOutcome sampled =
      run_pdd_grid(small_pdd(7, &sampler, &profiler));
  EXPECT_TRUE(same_outcome(plain, sampled));
  EXPECT_GT(sampler.row_count(), 0u);
  EXPECT_FALSE(profiler.snapshot().empty());
}

TEST(TimeSeriesDeterminism, SampledPdrOutcomeBitIdenticalToUnsampled) {
  RetrievalGridParams p;
  p.nx = p.ny = 4;
  p.item_size_bytes = 2u * 1024 * 1024;
  p.seed = 3;
  const RetrievalOutcome plain = run_retrieval_grid(p);
  obs::TimeSeries sampler(SimTime::millis(100));
  p.sampler = &sampler;
  const RetrievalOutcome sampled = run_retrieval_grid(p);
  EXPECT_EQ(plain.recall, sampled.recall);
  EXPECT_EQ(plain.latency_s, sampled.latency_s);
  EXPECT_EQ(plain.overhead_mb, sampled.overhead_mb);
  EXPECT_EQ(plain.events_executed, sampled.events_executed);
  EXPECT_EQ(plain.per_consumer_chunk_arrival_s,
            sampled.per_consumer_chunk_arrival_s);
  EXPECT_GT(sampler.row_count(), 0u);
}

// -- Shard threads -----------------------------------------------------------
// The sharded radio fan-out (RadioConfig::shard_threads) must not move the
// deterministic series projection: the collector reads merged state only
// after the shard barrier, so any thread count samples identical values.

std::string sharded_series(std::uint64_t seed, int threads) {
  obs::TimeSeries sampler(SimTime::millis(100));
  PddGridParams p = small_pdd(seed, &sampler);
  p.radio.shard_threads = threads;
  p.radio.shard_min_candidates = 0;
  (void)run_pdd_grid(p);
  EXPECT_GT(sampler.row_count(), 0u);
  return sampler.ndjson(/*include_wall=*/false);
}

TEST(TimeSeriesDeterminism, SeriesBytesIdenticalAcrossShardThreadCounts) {
  for (const std::uint64_t seed : {21u, 22u}) {
    const std::string one = sharded_series(seed, 1);
    const std::string two = sharded_series(seed, 2);
    const std::string eight = sharded_series(seed, 8);
    EXPECT_EQ(one, two) << "seed " << seed;
    EXPECT_EQ(one, eight) << "seed " << seed;
  }
}

// -- Worker pools ------------------------------------------------------------
// Each bench::run_indexed worker owns its own Simulator and sampler; the
// sim-kind projection must not depend on which thread ran the seed.

TEST(TimeSeriesDeterminism, SeriesBytesIdenticalUnderParallelJobs) {
  const auto capture_all = [](int jobs) {
    ::setenv("PDS_BENCH_JOBS", jobs == 1 ? "1" : "4", 1);
    std::vector<std::unique_ptr<obs::TimeSeries>> samplers;
    for (int i = 0; i < 4; ++i) {
      samplers.push_back(
          std::make_unique<obs::TimeSeries>(SimTime::millis(100)));
    }
    const auto series = bench::run_indexed(4, [&](int i) {
      (void)run_pdd_grid(
          small_pdd(static_cast<std::uint64_t>(i + 1),
                    samplers[static_cast<std::size_t>(i)].get()));
      return samplers[static_cast<std::size_t>(i)]->ndjson(
          /*include_wall=*/false);
    });
    ::unsetenv("PDS_BENCH_JOBS");
    return series;
  };
  const auto serial = capture_all(1);
  const auto parallel = capture_all(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_FALSE(serial[i].empty());
    EXPECT_EQ(serial[i], parallel[i]) << "seed " << i + 1;
  }
}

// -- Collector contents ------------------------------------------------------

TEST(TimeSeriesDeterminism, CollectorColumnsMatchSchemaCatalog) {
  obs::TimeSeries sampler(SimTime::millis(100));
  (void)run_pdd_grid(small_pdd(5, &sampler));
  std::string error;
  const auto parsed = tools::parse_timeseries(sampler.ndjson(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->columns.size(), tools::kSeriesCatalog.size());
  for (const tools::SeriesColumn& col : parsed->columns) {
    bool registered = false;
    for (const tools::SeriesSchema& s : tools::kSeriesCatalog) {
      if (col.name == s.name) {
        EXPECT_EQ(col.kind, s.kind) << col.name;
        registered = true;
        break;
      }
    }
    EXPECT_TRUE(registered) << "unregistered column " << col.name;
  }
}

TEST(TimeSeriesDeterminism, CumulativeColumnsAreMonotoneAndValuesSane) {
  obs::TimeSeries sampler(SimTime::millis(100));
  (void)run_pdd_grid(small_pdd(5, &sampler));
  std::string error;
  const auto parsed = tools::parse_timeseries(sampler.ndjson(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_FALSE(parsed->rows.empty());
  for (const char* name : {"sim.events", "radio.air_us", "radio.bytes"}) {
    const int col = tools::series_column(*parsed, name);
    ASSERT_GE(col, 0) << name;
    double prev = 0.0;
    for (const tools::SeriesRow& row : parsed->rows) {
      const double v = row.v[static_cast<std::size_t>(col)];
      EXPECT_GE(v, prev) << name << " regressed at t=" << row.t_us;
      prev = v;
    }
    EXPECT_GT(prev, 0.0) << name << " never moved";
  }
  // Every value in every row is finite and non-negative (gauges can touch
  // zero but nothing in the collector can go negative).
  for (const tools::SeriesRow& row : parsed->rows) {
    for (const double v : row.v) {
      EXPECT_GE(v, 0.0);
    }
  }
  // Channel utilization derived from radio.air_us stays within the node
  // count (25 nodes on the 5x5 probe grid).
  for (const double u : tools::channel_utilization(*parsed)) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 25.0);
  }
}

// A StatsCapture (bench_common.h) snapshot parses back through the same
// analysis path the benches and `pdscli stats` use.
TEST(TimeSeriesDeterminism, StatsCaptureRoundTripsThroughAnalysis) {
  bench::StatsCapture capture(SimTime::millis(100));
  {
    PddGridParams p = small_pdd(9, capture.sampler());
    p.profiler = capture.profiler();
    (void)run_pdd_grid(p);
  }
  const tools::ParsedSeries parsed = capture.analyze();
  EXPECT_FALSE(parsed.rows.empty());
  EXPECT_FALSE(parsed.profile.empty());
  const auto summaries = tools::summarize_series(parsed);
  ASSERT_EQ(summaries.size(), parsed.columns.size());
  for (const tools::SeriesSummary& s : summaries) {
    EXPECT_GE(s.peak, s.p99) << s.name;
    EXPECT_GE(s.p99, s.p50) << s.name;
  }
}

}  // namespace
}  // namespace pds::wl
