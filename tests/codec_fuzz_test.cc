// Property tests for the wire codec: randomly generated messages of every
// shape must round-trip losslessly (encode → decode → encode gives identical
// bytes), and the decoder must reject truncations of valid messages without
// crashing.
//
// The v2 extension suites (DESIGN.md §16) add structure-aware coverage:
// random wire configs mixing delta-Bloom, compressed-entry and chunk-bitmap
// emission, plus mutation fuzzing (truncation, bit-flips, epoch/seq skew)
// asserting every malformed input raises DecodeError — never UB.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/bytes.h"
#include "common/rng.h"
#include "net/bloom_delta.h"
#include "net/codec.h"
#include "tests/codec_fuzz_harness.h"

namespace pds::net {
namespace {

core::DataDescriptor random_descriptor(Rng& rng) {
  core::DataDescriptor d;
  const int attrs = static_cast<int>(rng.uniform_int(1, 6));
  for (int i = 0; i < attrs; ++i) {
    const std::string name = "a" + std::to_string(rng.uniform_int(0, 9));
    switch (rng.uniform_int(0, 2)) {
      case 0:
        d.set(name, rng.uniform_int(-1000000, 1000000));
        break;
      case 1:
        d.set(name, rng.uniform(-1e6, 1e6));
        break;
      default:
        d.set(name, std::string("v") + std::to_string(rng.next_u64() % 1000));
    }
  }
  return d;
}

Message random_message(Rng& rng) {
  Message m;
  switch (rng.uniform_int(0, 3)) {
    case 0: {
      m.type = MessageType::kAck;
      const int n = static_cast<int>(rng.uniform_int(1, 20));
      for (int i = 0; i < n; ++i) m.ack_tokens.push_back(rng.next_u64());
      m.acker = NodeId(static_cast<std::uint32_t>(rng.uniform_int(0, 100)));
      return m;
    }
    case 1: {
      m.type = MessageType::kRepair;
      m.ack_tokens = {rng.next_u64()};
      m.acker = NodeId(static_cast<std::uint32_t>(rng.uniform_int(0, 100)));
      const int n = static_cast<int>(rng.uniform_int(1, 30));
      for (int i = 0; i < n; ++i) {
        m.requested_chunks.push_back(
            static_cast<ChunkIndex>(rng.uniform_int(0, 500)));
      }
      return m;
    }
    case 2:
      m.type = MessageType::kQuery;
      break;
    default:
      m.type = MessageType::kResponse;
      break;
  }
  m.kind = static_cast<ContentKind>(rng.uniform_int(0, 3));
  if (m.is_query()) {
    m.query_id = QueryId(rng.next_u64());
  } else {
    m.response_id = ResponseId(rng.next_u64());
  }
  m.sender = NodeId(static_cast<std::uint32_t>(rng.uniform_int(0, 200)));
  const int receivers = static_cast<int>(rng.uniform_int(0, 5));
  for (int i = 0; i < receivers; ++i) {
    m.receivers.push_back(
        NodeId(static_cast<std::uint32_t>(rng.uniform_int(0, 200))));
  }
  m.expire_at = SimTime::micros(rng.uniform_int(0, 1'000'000'000));
  m.ttl = static_cast<std::uint8_t>(rng.uniform_int(0, 16));
  if (rng.bernoulli(0.5)) m.target = random_descriptor(rng);

  if (m.is_query()) {
    const int preds = static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < preds; ++i) {
      m.filter.where("p" + std::to_string(i),
                     static_cast<core::Relation>(rng.uniform_int(0, 5)),
                     rng.uniform_int(-100, 100));
    }
    if (rng.bernoulli(0.5)) {
      m.exclude = util::BloomFilter::with_capacity(
          static_cast<std::size_t>(rng.uniform_int(1, 500)), 0.01,
          rng.next_u64());
      for (int i = 0; i < 20; ++i) m.exclude.insert(rng.next_u64());
    }
    const int chunks = static_cast<int>(rng.uniform_int(0, 10));
    for (int i = 0; i < chunks; ++i) {
      m.requested_chunks.push_back(
          static_cast<ChunkIndex>(rng.uniform_int(0, 100)));
    }
  } else {
    const int entries = static_cast<int>(rng.uniform_int(0, 8));
    for (int i = 0; i < entries; ++i) {
      m.metadata.push_back(random_descriptor(rng));
    }
    const int cdi = static_cast<int>(rng.uniform_int(0, 8));
    for (int i = 0; i < cdi; ++i) {
      m.cdi.push_back(CdiEntry{
          .chunk = static_cast<ChunkIndex>(rng.uniform_int(0, 100)),
          .hop_count = static_cast<std::uint32_t>(rng.uniform_int(0, 10))});
    }
    if (rng.bernoulli(0.3)) {
      m.chunk = ChunkPayload{
          .index = static_cast<ChunkIndex>(rng.uniform_int(0, 100)),
          .size_bytes = static_cast<std::uint32_t>(rng.uniform_int(1, 1 << 20)),
          .content_hash = rng.next_u64()};
    }
    const int items = static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < items; ++i) {
      ItemPayload item;
      item.descriptor = random_descriptor(rng);
      item.size_bytes =
          static_cast<std::uint32_t>(rng.uniform_int(0, 10'000));
      item.content_hash = rng.next_u64();
      m.items.push_back(std::move(item));
    }
  }
  return m;
}

// Random BloomDeltaFrame as DiscoverySession would emit it: a sender tracking
// a growing filter, sometimes across epoch bumps.
BloomDeltaFrame random_delta_frame(Rng& rng) {
  DeltaBloomSender sender;
  util::BloomFilter filter = util::BloomFilter::with_capacity(
      static_cast<std::size_t>(rng.uniform_int(64, 2048)), 0.01,
      rng.next_u64());
  BloomDeltaFrame frame;
  const int steps = static_cast<int>(rng.uniform_int(1, 5));
  for (int s = 0; s < steps; ++s) {
    const int inserts = static_cast<int>(rng.uniform_int(1, 64));
    for (int i = 0; i < inserts; ++i) filter.insert(rng.next_u64());
    frame = sender.next_frame(rng.next_u64() % 4, 1, filter);
  }
  return frame;
}

// Extends `random_message` with the v2-extension payload shapes: delta-Bloom
// frames on queries, strictly increasing chunk lists (so the bitmap path
// engages) and chunk-sorted CDI views.
Message random_message_v2(Rng& rng) {
  Message m = random_message(rng);
  if (m.is_query() && rng.bernoulli(0.5)) {
    m.exclude = util::BloomFilter();
    m.exclude_delta = random_delta_frame(rng);
  }
  if (rng.bernoulli(0.5) && !m.requested_chunks.empty()) {
    std::sort(m.requested_chunks.begin(), m.requested_chunks.end());
    m.requested_chunks.erase(
        std::unique(m.requested_chunks.begin(), m.requested_chunks.end()),
        m.requested_chunks.end());
  }
  if (m.is_response() && rng.bernoulli(0.5) && !m.cdi.empty()) {
    std::sort(m.cdi.begin(), m.cdi.end(),
              [](const CdiEntry& a, const CdiEntry& b) {
                return a.chunk < b.chunk;
              });
    m.cdi.erase(std::unique(m.cdi.begin(), m.cdi.end(),
                            [](const CdiEntry& a, const CdiEntry& b) {
                              return a.chunk == b.chunk;
                            }),
                m.cdi.end());
  }
  return m;
}

WireConfig random_wire_config(Rng& rng) {
  WireConfig cfg;
  cfg.delta_bloom = rng.bernoulli(0.5);
  cfg.compress_entries = rng.bernoulli(0.5);
  cfg.chunk_bitmap = rng.bernoulli(0.5);
  cfg.carry_trace_context = rng.bernoulli(0.25);
  cfg.metadata_entry_bytes = rng.bernoulli(0.5) ? 0 : 30;
  return cfg;
}

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, EncodeDecodeEncodeIsStable) {
  Rng rng(GetParam());
  const Codec codec;
  for (int trial = 0; trial < 200; ++trial) {
    const Message m = random_message(rng);
    const std::vector<std::byte> wire = codec.encode(m);
    const Message decoded = codec.decode(wire);
    const std::vector<std::byte> wire2 = codec.encode(decoded);
    ASSERT_EQ(wire, wire2) << "trial " << trial;
    // wire_size is consistent for the decoded twin (same content ⇒ same
    // charge).
    EXPECT_EQ(codec.wire_size(m), codec.wire_size(decoded));
  }
}

TEST_P(CodecFuzz, TruncationsNeverCrash) {
  Rng rng(GetParam() ^ 0xfeed);
  const Codec codec;
  for (int trial = 0; trial < 50; ++trial) {
    const Message m = random_message(rng);
    const std::vector<std::byte> wire = codec.encode(m);
    for (std::size_t cut = 0; cut < wire.size();
         cut += 1 + wire.size() / 37) {
      const std::span<const std::byte> prefix(wire.data(), cut);
      try {
        (void)codec.decode(prefix);
        // Some prefixes happen to parse (e.g., an ack prefix of a larger
        // ack); that is fine — only crashes/UB would be bugs.
      } catch (const DecodeError&) {
        // expected for most cuts
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- v2 extension fuzzing (DESIGN.md §16) --------------------------------

class CodecFuzzV2 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzzV2, EncodeDecodeEncodeIsStable) {
  Rng rng(GetParam() ^ 0x5ec0de);
  for (int trial = 0; trial < 200; ++trial) {
    const Codec codec(random_wire_config(rng));
    const Message m = random_message_v2(rng);
    const std::vector<std::byte> wire = codec.encode(m);
    const Message decoded = codec.decode(wire);
    const std::vector<std::byte> wire2 = codec.encode(decoded);
    ASSERT_EQ(wire, wire2) << "trial " << trial;
    EXPECT_EQ(codec.wire_size(m), codec.wire_size(decoded)) << "trial "
                                                            << trial;
  }
}

// A classic-configured codec must decode every v2 frame (decode accepts all
// extensions regardless of config), and a v2 codec must decode classic
// frames — the negotiation-free interop contract.
TEST_P(CodecFuzzV2, CrossConfigDecodeSucceeds) {
  Rng rng(GetParam() ^ 0xc305);
  const Codec classic;
  for (int trial = 0; trial < 100; ++trial) {
    WireConfig v2;
    v2.delta_bloom = true;
    v2.compress_entries = true;
    v2.chunk_bitmap = true;
    const Codec emitter(v2);
    const Message m = random_message_v2(rng);
    const std::vector<std::byte> wire = emitter.encode(m);
    const Message decoded = classic.decode(wire);
    // Re-encoding through the same v2 config reproduces the bytes, proving
    // the classic codec recovered the full structure.
    EXPECT_EQ(emitter.encode(decoded), wire) << "trial " << trial;
  }
}

TEST_P(CodecFuzzV2, TruncationsNeverCrash) {
  Rng rng(GetParam() ^ 0xf2ed);
  for (int trial = 0; trial < 50; ++trial) {
    const Codec codec(random_wire_config(rng));
    const Message m = random_message_v2(rng);
    const std::vector<std::byte> wire = codec.encode(m);
    for (std::size_t cut = 0; cut < wire.size();
         cut += 1 + wire.size() / 53) {
      const std::span<const std::byte> prefix(wire.data(), cut);
      try {
        (void)codec.decode(prefix);
      } catch (const DecodeError&) {
        // expected for most cuts
      }
    }
  }
}

// Structure-aware mutation: random single-byte corruption of valid v2 wires
// must either decode to *some* message or raise DecodeError — never crash,
// hang, or trip UB (ASan/UBSan builds make this assertion sharp).
TEST_P(CodecFuzzV2, MutationsRaiseDecodeErrorNeverUB) {
  Rng rng(GetParam() ^ 0xb17f11b);
  for (int trial = 0; trial < 100; ++trial) {
    const Codec codec(random_wire_config(rng));
    const Message m = random_message_v2(rng);
    std::vector<std::byte> wire = codec.encode(m);
    if (wire.empty()) continue;
    for (int flip = 0; flip < 16; ++flip) {
      std::vector<std::byte> mutated = wire;
      const std::size_t pos = rng.next_u64() % mutated.size();
      if (rng.bernoulli(0.5)) {
        // Single bit flip.
        mutated[pos] ^= static_cast<std::byte>(1u << (rng.next_u64() % 8));
      } else {
        // Whole-byte overwrite.
        mutated[pos] = static_cast<std::byte>(rng.next_u64() & 0xff);
      }
      try {
        (void)codec.decode(mutated);
      } catch (const DecodeError&) {
        // the only acceptable failure mode
      }
    }
  }
}

// The shared libFuzzer harness (tests/codec_fuzz_harness.h) enforces a
// stronger contract than decode-must-not-crash: any accepted input must
// re-encode to a byte-identical fixed point. Drive it with the same
// structure-aware mutants, so this property suite and the coverage-guided
// fuzzer (-DPDS_FUZZ=ON) check exactly the same predicate.
TEST_P(CodecFuzzV2, HarnessFixedPointHoldsUnderMutation) {
  Rng rng(GetParam() ^ 0x5eedf);
  for (int trial = 0; trial < 50; ++trial) {
    const Codec codec(random_wire_config(rng));
    const Message m = random_message_v2(rng);
    const std::vector<std::byte> wire = codec.encode(m);
    if (wire.empty()) continue;
    const auto* data = reinterpret_cast<const std::uint8_t*>(wire.data());
    EXPECT_TRUE(fuzz_one_input(data, wire.size()))
        << "pristine wire rejected at trial " << trial;
    for (int flip = 0; flip < 8; ++flip) {
      std::vector<std::byte> mutated = wire;
      const std::size_t pos = rng.next_u64() % mutated.size();
      mutated[pos] ^= static_cast<std::byte>(1u << (rng.next_u64() % 8));
      (void)fuzz_one_input(
          reinterpret_cast<const std::uint8_t*>(mutated.data()),
          mutated.size());
    }
  }
}

// Frame-level fuzz of the Bloom-sync codec itself: truncations and byte
// mutations of a valid frame encoding must never escape DecodeError.
TEST_P(CodecFuzzV2, BloomDeltaFrameMutationsNeverUB) {
  Rng rng(GetParam() ^ 0xde17a);
  for (int trial = 0; trial < 100; ++trial) {
    const BloomDeltaFrame frame = random_delta_frame(rng);
    ByteWriter w;
    frame.encode(w);
    const std::vector<std::byte> wire = std::move(w).take();
    ASSERT_EQ(wire.size(), frame.wire_size()) << "trial " << trial;
    {
      ByteReader r(wire);
      const BloomDeltaFrame back = BloomDeltaFrame::decode(r);
      ASSERT_EQ(back, frame) << "trial " << trial;
    }
    for (std::size_t cut = 0; cut < wire.size();
         cut += 1 + wire.size() / 29) {
      ByteReader r(std::span<const std::byte>(wire.data(), cut));
      try {
        (void)BloomDeltaFrame::decode(r);
      } catch (const DecodeError&) {
      }
    }
    for (int flip = 0; flip < 16; ++flip) {
      std::vector<std::byte> mutated = wire;
      const std::size_t pos = rng.next_u64() % mutated.size();
      mutated[pos] ^= static_cast<std::byte>(1u << (rng.next_u64() % 8));
      ByteReader r(mutated);
      try {
        (void)BloomDeltaFrame::decode(r);
      } catch (const DecodeError&) {
      }
    }
  }
}

// Semantic skew: frames with corrupted epoch/seq/checksum fields applied to
// a BloomSyncCache must never throw, and every filter the cache hands back
// is recall-safe — either empty (the explicit fallback) or a filter the
// sender genuinely shipped at some point (possibly stale, via the
// duplicate/out-of-order guard). It must never synthesize a filter claiming
// bits the sender did not set.
TEST_P(CodecFuzzV2, EpochAndSeqSkewFallsBackSafely) {
  Rng rng(GetParam() ^ 0x5e40);
  BloomSyncCache cache;
  DeltaBloomSender sender;
  util::BloomFilter filter =
      util::BloomFilter::with_capacity(1024, 0.01, rng.next_u64());
  std::vector<std::uint64_t> shipped_checks;
  for (int step = 0; step < 60; ++step) {
    const int inserts = static_cast<int>(rng.uniform_int(1, 32));
    for (int i = 0; i < inserts; ++i) filter.insert(rng.next_u64());
    BloomDeltaFrame frame = sender.next_frame(7, 1, filter);
    shipped_checks.push_back(bloom_check(filter));
    switch (rng.uniform_int(0, 4)) {
      case 0:
        frame.epoch += static_cast<std::uint32_t>(rng.uniform_int(1, 9));
        break;
      case 1:
        frame.seq += static_cast<std::uint32_t>(rng.uniform_int(1, 9));
        break;
      case 2:
        frame.base_check ^= rng.next_u64();
        break;
      case 3:
        frame.self_check ^= rng.next_u64();
        break;
      default:
        break;  // pristine frame
    }
    const util::BloomFilter got = cache.apply(frame);
    if (!got.empty_filter()) {
      const std::uint64_t check = bloom_check(got);
      ASSERT_TRUE(std::find(shipped_checks.begin(), shipped_checks.end(),
                            check) != shipped_checks.end())
          << "step " << step
          << ": cache returned a filter the sender never shipped";
    }
  }
  // A trailing fallback erases the session entry, so 0 or 1 are both fine.
  EXPECT_LE(cache.session_count(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzV2,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace pds::net
