// Property tests for the wire codec: randomly generated messages of every
// shape must round-trip losslessly (encode → decode → encode gives identical
// bytes), and the decoder must reject truncations of valid messages without
// crashing.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/codec.h"

namespace pds::net {
namespace {

core::DataDescriptor random_descriptor(Rng& rng) {
  core::DataDescriptor d;
  const int attrs = static_cast<int>(rng.uniform_int(1, 6));
  for (int i = 0; i < attrs; ++i) {
    const std::string name = "a" + std::to_string(rng.uniform_int(0, 9));
    switch (rng.uniform_int(0, 2)) {
      case 0:
        d.set(name, rng.uniform_int(-1000000, 1000000));
        break;
      case 1:
        d.set(name, rng.uniform(-1e6, 1e6));
        break;
      default:
        d.set(name, std::string("v") + std::to_string(rng.next_u64() % 1000));
    }
  }
  return d;
}

Message random_message(Rng& rng) {
  Message m;
  switch (rng.uniform_int(0, 3)) {
    case 0: {
      m.type = MessageType::kAck;
      const int n = static_cast<int>(rng.uniform_int(1, 20));
      for (int i = 0; i < n; ++i) m.ack_tokens.push_back(rng.next_u64());
      m.acker = NodeId(static_cast<std::uint32_t>(rng.uniform_int(0, 100)));
      return m;
    }
    case 1: {
      m.type = MessageType::kRepair;
      m.ack_tokens = {rng.next_u64()};
      m.acker = NodeId(static_cast<std::uint32_t>(rng.uniform_int(0, 100)));
      const int n = static_cast<int>(rng.uniform_int(1, 30));
      for (int i = 0; i < n; ++i) {
        m.requested_chunks.push_back(
            static_cast<ChunkIndex>(rng.uniform_int(0, 500)));
      }
      return m;
    }
    case 2:
      m.type = MessageType::kQuery;
      break;
    default:
      m.type = MessageType::kResponse;
      break;
  }
  m.kind = static_cast<ContentKind>(rng.uniform_int(0, 3));
  if (m.is_query()) {
    m.query_id = QueryId(rng.next_u64());
  } else {
    m.response_id = ResponseId(rng.next_u64());
  }
  m.sender = NodeId(static_cast<std::uint32_t>(rng.uniform_int(0, 200)));
  const int receivers = static_cast<int>(rng.uniform_int(0, 5));
  for (int i = 0; i < receivers; ++i) {
    m.receivers.push_back(
        NodeId(static_cast<std::uint32_t>(rng.uniform_int(0, 200))));
  }
  m.expire_at = SimTime::micros(rng.uniform_int(0, 1'000'000'000));
  m.ttl = static_cast<std::uint8_t>(rng.uniform_int(0, 16));
  if (rng.bernoulli(0.5)) m.target = random_descriptor(rng);

  if (m.is_query()) {
    const int preds = static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < preds; ++i) {
      m.filter.where("p" + std::to_string(i),
                     static_cast<core::Relation>(rng.uniform_int(0, 5)),
                     rng.uniform_int(-100, 100));
    }
    if (rng.bernoulli(0.5)) {
      m.exclude = util::BloomFilter::with_capacity(
          static_cast<std::size_t>(rng.uniform_int(1, 500)), 0.01,
          rng.next_u64());
      for (int i = 0; i < 20; ++i) m.exclude.insert(rng.next_u64());
    }
    const int chunks = static_cast<int>(rng.uniform_int(0, 10));
    for (int i = 0; i < chunks; ++i) {
      m.requested_chunks.push_back(
          static_cast<ChunkIndex>(rng.uniform_int(0, 100)));
    }
  } else {
    const int entries = static_cast<int>(rng.uniform_int(0, 8));
    for (int i = 0; i < entries; ++i) {
      m.metadata.push_back(random_descriptor(rng));
    }
    const int cdi = static_cast<int>(rng.uniform_int(0, 8));
    for (int i = 0; i < cdi; ++i) {
      m.cdi.push_back(CdiEntry{
          .chunk = static_cast<ChunkIndex>(rng.uniform_int(0, 100)),
          .hop_count = static_cast<std::uint32_t>(rng.uniform_int(0, 10))});
    }
    if (rng.bernoulli(0.3)) {
      m.chunk = ChunkPayload{
          .index = static_cast<ChunkIndex>(rng.uniform_int(0, 100)),
          .size_bytes = static_cast<std::uint32_t>(rng.uniform_int(1, 1 << 20)),
          .content_hash = rng.next_u64()};
    }
    const int items = static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < items; ++i) {
      ItemPayload item;
      item.descriptor = random_descriptor(rng);
      item.size_bytes =
          static_cast<std::uint32_t>(rng.uniform_int(0, 10'000));
      item.content_hash = rng.next_u64();
      m.items.push_back(std::move(item));
    }
  }
  return m;
}

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, EncodeDecodeEncodeIsStable) {
  Rng rng(GetParam());
  const Codec codec;
  for (int trial = 0; trial < 200; ++trial) {
    const Message m = random_message(rng);
    const std::vector<std::byte> wire = codec.encode(m);
    const Message decoded = codec.decode(wire);
    const std::vector<std::byte> wire2 = codec.encode(decoded);
    ASSERT_EQ(wire, wire2) << "trial " << trial;
    // wire_size is consistent for the decoded twin (same content ⇒ same
    // charge).
    EXPECT_EQ(codec.wire_size(m), codec.wire_size(decoded));
  }
}

TEST_P(CodecFuzz, TruncationsNeverCrash) {
  Rng rng(GetParam() ^ 0xfeed);
  const Codec codec;
  for (int trial = 0; trial < 50; ++trial) {
    const Message m = random_message(rng);
    const std::vector<std::byte> wire = codec.encode(m);
    for (std::size_t cut = 0; cut < wire.size();
         cut += 1 + wire.size() / 37) {
      const std::span<const std::byte> prefix(wire.data(), cut);
      try {
        (void)codec.decode(prefix);
        // Some prefixes happen to parse (e.g., an ack prefix of a larger
        // ack); that is fine — only crashes/UB would be bugs.
      } catch (const DecodeError&) {
        // expected for most cuts
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace pds::net
