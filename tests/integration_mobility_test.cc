// End-to-end tests under the paper's trace-driven mobility (Student Center
// and Classroom scenarios, §VI-B.2): discovery and retrieval remain robust
// as nodes join, leave and move.
#include <gtest/gtest.h>

#include "workload/experiment.h"

namespace pds::wl {
namespace {

TEST(IntegrationMobility, StudentCenterDiscoveryHighRecall) {
  PddMobilityParams p;
  p.mobility = sim::student_center_params();
  p.mobility.duration = SimTime::minutes(5);
  p.metadata_count = 1000;
  // Seeds draw node placements; 20 nodes in 120×120 m² at 40 m range form a
  // connected random-geometric graph w.h.p., but occasional placements
  // partition the arena (the paper's human-observed crowds self-cluster).
  // Use a connected placement here; the mobility bench averages over seeds.
  p.seed = 4;
  const PddOutcome out = run_pdd_mobility(p);
  EXPECT_TRUE(out.all_finished);
  EXPECT_GE(out.recall, 0.90);
  EXPECT_LT(out.latency_s, 30.0);
}

TEST(IntegrationMobility, ClassroomDiscoveryHighRecall) {
  PddMobilityParams p;
  p.mobility = sim::classroom_params();
  p.mobility.duration = SimTime::minutes(5);
  p.range_m = 15.0;  // 20×20 m²: everyone within one or two hops
  p.metadata_count = 1000;
  p.seed = 4;
  const PddOutcome out = run_pdd_mobility(p);
  EXPECT_TRUE(out.all_finished);
  EXPECT_GE(out.recall, 0.95);
}

TEST(IntegrationMobility, DoubledChurnStillDiscovers) {
  PddMobilityParams p;
  p.mobility = sim::student_center_params();
  p.mobility.frequency_multiplier = 2.0;  // the paper's harshest point
  p.mobility.duration = SimTime::minutes(5);
  p.metadata_count = 1000;
  p.seed = 5;
  const PddOutcome out = run_pdd_mobility(p);
  EXPECT_GE(out.recall, 0.85);
}

TEST(IntegrationMobility, RetrievalUnderMobilityCompletes) {
  RetrievalMobilityParams p;
  p.mobility = sim::student_center_params();
  p.mobility.duration = SimTime::minutes(10);
  p.item_size_bytes = 4u * 1024 * 1024;
  p.redundancy = 2;
  p.seed = 6;
  const RetrievalOutcome out = run_retrieval_mobility(p);
  EXPECT_GE(out.recall, 0.95);
}

}  // namespace
}  // namespace pds::wl
