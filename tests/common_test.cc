// Unit tests for src/common: strong ids, sim time, byte serialization,
// hashing and deterministic RNG.
#include <gtest/gtest.h>

#include <limits>
#include <unordered_set>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/types.h"

namespace pds {
namespace {

// -- StrongId ---------------------------------------------------------------

TEST(StrongId, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, NodeId::invalid());
}

TEST(StrongId, ValueRoundTrip) {
  NodeId id(42);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(NodeId(1), NodeId(2));
  EXPECT_EQ(NodeId(7), NodeId(7));
  EXPECT_NE(NodeId(7), NodeId(8));
}

TEST(StrongId, DistinctTagTypesDoNotMix) {
  // Compile-time property: NodeId and QueryId are different types. This test
  // documents the intent; mixing them is a compile error.
  static_assert(!std::is_same_v<NodeId, QueryId>);
}

TEST(StrongId, Hashable) {
  std::unordered_set<QueryId> set;
  set.insert(QueryId(1));
  set.insert(QueryId(2));
  set.insert(QueryId(1));
  EXPECT_EQ(set.size(), 2u);
}

// -- SimTime -----------------------------------------------------------------

TEST(SimTime, Conversions) {
  EXPECT_EQ(SimTime::millis(1).as_micros(), 1000);
  EXPECT_EQ(SimTime::seconds(1.5).as_micros(), 1'500'000);
  EXPECT_EQ(SimTime::minutes(2.0).as_micros(), 120'000'000);
  EXPECT_DOUBLE_EQ(SimTime::seconds(2.5).as_seconds(), 2.5);
  EXPECT_DOUBLE_EQ(SimTime::millis(250).as_millis(), 250.0);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::seconds(1.0);
  const SimTime b = SimTime::millis(500);
  EXPECT_EQ((a + b).as_micros(), 1'500'000);
  EXPECT_EQ((a - b).as_micros(), 500'000);
  EXPECT_EQ((a * 2.0).as_micros(), 2'000'000);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
}

TEST(SimTime, Comparisons) {
  EXPECT_LT(SimTime::zero(), SimTime::micros(1));
  EXPECT_LE(SimTime::seconds(1.0), SimTime::millis(1000));
  EXPECT_GT(SimTime::max(), SimTime::minutes(1e6));
}

TEST(SimTime, TransmissionTime) {
  // 1500 bytes at 12 Mb/s = 1 ms (plus the 1 µs round-up).
  const SimTime t = transmission_time(1500, 12e6);
  EXPECT_NEAR(t.as_seconds(), 0.001, 0.00001);
  // Monotone in size.
  EXPECT_LT(transmission_time(100, 1e6), transmission_time(200, 1e6));
}

// -- ByteWriter / ByteReader -------------------------------------------------

TEST(Bytes, ScalarRoundTrip) {
  ByteWriter w;
  w.put_u8(0xab);
  w.put_u16(0xbeef);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_i64(-42);
  w.put_f64(3.14159);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0xbeef);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.14159);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, StringRoundTrip) {
  ByteWriter w;
  w.put_string("hello");
  w.put_string("");
  w.put_string(std::string(1000, 'x'));

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), std::string(1000, 'x'));
}

TEST(Bytes, RawBytesRoundTrip) {
  ByteWriter inner;
  inner.put_u32(123);
  ByteWriter w;
  w.put_bytes(inner.bytes());

  ByteReader r(w.bytes());
  const auto out = r.get_bytes();
  ByteReader r2(out);
  EXPECT_EQ(r2.get_u32(), 123u);
}

TEST(Bytes, UnderrunThrows) {
  ByteWriter w;
  w.put_u16(7);
  ByteReader r(w.bytes());
  (void)r.get_u8();
  (void)r.get_u8();
  EXPECT_THROW((void)r.get_u8(), DecodeError);
}

TEST(Bytes, TruncatedStringThrows) {
  ByteWriter w;
  w.put_u16(100);  // claims 100 bytes follow; none do
  ByteReader r(w.bytes());
  EXPECT_THROW((void)r.get_string(), DecodeError);
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.put_u32(0x01020304);
  const auto bytes = w.bytes();
  EXPECT_EQ(static_cast<int>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<int>(bytes[3]), 0x01);
}

// -- Hashing -----------------------------------------------------------------

TEST(Hash, Fnv1aKnownProperties) {
  EXPECT_EQ(fnv1a64(""), kFnvOffset);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
  EXPECT_EQ(fnv1a64("pds"), fnv1a64("pds"));
}

TEST(Hash, SeedChangesResult) {
  EXPECT_NE(fnv1a64("x", 1), fnv1a64("x", 2));
}

TEST(Hash, Mix64SpreadsBits) {
  // Consecutive inputs should land far apart.
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Hash, CombineNotCommutative) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

// -- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    const double y = rng.uniform(5.0, 10.0);
    EXPECT_GE(y, 5.0);
    EXPECT_LT(y, 10.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliApproximatesProbability) {
  Rng rng(6);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(9);
  Rng forked = a.fork();
  // The fork must not replay the parent's stream.
  Rng b(9);
  (void)b.next_u64();  // parent consumed one draw to fork
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (forked.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, PickAndShuffle) {
  Rng rng(10);
  std::vector<int> v{1, 2, 3, 4, 5};
  for (int i = 0; i < 100; ++i) {
    const int p = rng.pick(v);
    EXPECT_GE(p, 1);
    EXPECT_LE(p, 5);
  }
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

}  // namespace
}  // namespace pds
