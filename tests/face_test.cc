// Face abstraction tests: the loopback hub (deterministic transport tests
// with no radio model) and the broadcast face contract.
#include <gtest/gtest.h>

#include <memory>

#include "net/face.h"
#include "net/transport.h"

namespace pds::net {
namespace {

std::shared_ptr<Message> small_response(NodeId sender,
                                        std::vector<NodeId> receivers,
                                        std::uint64_t id) {
  auto m = std::make_shared<Message>();
  m->type = MessageType::kResponse;
  m->kind = ContentKind::kItem;
  m->response_id = ResponseId(id);
  m->sender = sender;
  m->receivers = std::move(receivers);
  return m;
}

TEST(LoopbackFace, DeliversToAllOtherEndpoints) {
  sim::Simulator sim(1);
  LoopbackHub hub(sim);
  auto fa = hub.make_face(NodeId(0));
  auto fb = hub.make_face(NodeId(1));
  auto fc = hub.make_face(NodeId(2));

  int b_got = 0;
  int c_got = 0;
  int a_got = 0;
  fa->set_receiver([&](const sim::Frame&) { ++a_got; });
  fb->set_receiver([&](const sim::Frame&) { ++b_got; });
  fc->set_receiver([&](const sim::Frame&) { ++c_got; });

  struct Blob final : sim::FramePayload {};
  fa->send(sim::Frame{.sender = NodeId(0),
                      .size_bytes = 100,
                      .payload = std::make_shared<Blob>()});
  sim.run();
  EXPECT_EQ(a_got, 0);  // no self-delivery
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 1);
}

TEST(LoopbackFace, DeliveryDelayScalesWithSize) {
  sim::Simulator sim(2);
  LoopbackHub hub(sim, /*rate_bps=*/1e6, /*delay=*/SimTime::millis(1));
  auto fa = hub.make_face(NodeId(0));
  auto fb = hub.make_face(NodeId(1));

  SimTime arrival = SimTime::zero();
  fb->set_receiver([&](const sim::Frame&) { arrival = sim.now(); });
  struct Blob final : sim::FramePayload {};
  fa->send(sim::Frame{.sender = NodeId(0),
                      .size_bytes = 12500,  // 100 ms at 1 Mb/s
                      .payload = std::make_shared<Blob>()});
  sim.run();
  EXPECT_NEAR(arrival.as_seconds(), 0.101, 0.001);
}

TEST(LoopbackFace, FullTransportStackRunsOverIt) {
  // The same reliable transport that runs over the radio runs over the
  // loopback hub — the point of the Face interface (§V).
  sim::Simulator sim(3);
  LoopbackHub hub(sim);
  auto fa = hub.make_face(NodeId(0));
  auto fb = hub.make_face(NodeId(1));
  Transport a(sim, *fa, NodeId(0), TransportConfig{}, Codec{});
  Transport b(sim, *fb, NodeId(1), TransportConfig{}, Codec{});

  int delivered = 0;
  b.set_handler([&](const MessagePtr&) { ++delivered; });
  for (std::uint64_t i = 0; i < 10; ++i) {
    a.send(small_response(NodeId(0), {NodeId(1)}, 100 + i));
  }
  sim.run();
  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(a.stats().acks_received, 10u);
  EXPECT_EQ(a.stats().deliveries_gave_up, 0u);
}

TEST(LoopbackFace, FragmentedMessageReassemblesOverIt) {
  sim::Simulator sim(4);
  LoopbackHub hub(sim);
  auto fa = hub.make_face(NodeId(0));
  auto fb = hub.make_face(NodeId(1));
  Transport a(sim, *fa, NodeId(0), TransportConfig{}, Codec{});
  Transport b(sim, *fb, NodeId(1), TransportConfig{}, Codec{});

  int delivered = 0;
  b.set_handler([&](const MessagePtr& m) {
    ASSERT_TRUE(m->chunk.has_value());
    EXPECT_EQ(m->chunk->size_bytes, 100'000u);
    ++delivered;
  });
  auto msg = small_response(NodeId(0), {NodeId(1)}, 7);
  msg->kind = ContentKind::kChunk;
  core::DataDescriptor d;
  d.set(core::kAttrTotalChunks, std::int64_t{1});
  msg->target = d;
  msg->chunk =
      ChunkPayload{.index = 0, .size_bytes = 100'000, .content_hash = 3};
  a.send(std::move(msg));
  sim.run();
  EXPECT_EQ(delivered, 1);
}

TEST(BroadcastFace, ReportsLinkProperties) {
  sim::Simulator sim(5);
  sim::RadioConfig radio;
  sim::RadioMedium medium(sim, radio);
  BroadcastFace face(medium, NodeId(0), {0, 0});
  EXPECT_DOUBLE_EQ(face.link_rate_bps(), radio.mac_rate_bps);
  EXPECT_EQ(face.backlog_bytes(), 0u);

  struct Blob final : sim::FramePayload {};
  EXPECT_TRUE(face.send(sim::Frame{.sender = NodeId(0),
                                   .size_bytes = 500,
                                   .payload = std::make_shared<Blob>()}));
  EXPECT_EQ(face.backlog_bytes(), 500u);
}

}  // namespace
}  // namespace pds::net
