// Shared fuzz entry for the wire codec, used three ways:
//
//   * tests/codec_fuzzer.cc wraps it in LLVMFuzzerTestOneInput for
//     coverage-guided libFuzzer runs (-DPDS_FUZZ=ON, clang only);
//   * tests/codec_corpus_test.cc replays the checked-in seed corpus
//     (tests/corpus/*.bin) through it in the normal build, so every crash
//     or rejection regression found by fuzzing stays fixed;
//   * tests/codec_fuzz_test.cc drives it with random mutations of valid
//     frames as a property test.
//
// The contract it enforces on arbitrary bytes:
//
//   1. decode() either returns a Message or throws DecodeError — any other
//      exception, signal, or sanitizer report is a bug;
//   2. a decoded message re-encodes, and that encoding decodes and
//      re-encodes to identical bytes (the canonical-form fixed point) —
//      checked for the classic codec and with every v2 extension enabled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "net/codec.h"

namespace pds::net {

// Runs one fuzz input through the decode contract. Returns true when the
// bytes decoded as a valid frame (useful as corpus metadata), false when
// they were rejected with DecodeError. Aborts on a canonical-form break so
// both libFuzzer and gtest surface it as a hard failure.
inline bool fuzz_one_input(const std::uint8_t* data, std::size_t size) {
  const std::span<const std::byte> bytes(
      reinterpret_cast<const std::byte*>(data), size);

  WireConfig v2;
  v2.metadata_entry_bytes = 0;
  v2.carry_trace_context = true;
  v2.delta_bloom = true;
  v2.compress_entries = true;
  v2.chunk_bitmap = true;
  const Codec codecs[] = {Codec{}, Codec{v2}};

  bool accepted = false;
  for (const Codec& codec : codecs) {
    Message m;
    try {
      m = codec.decode(bytes);
    } catch (const DecodeError&) {
      continue;  // malformed input rejected cleanly
    }
    accepted = true;
    // The decoder accepted it, so its re-encoding must be a fixed point:
    // encode -> decode -> encode is byte-identical. decode() throwing here
    // propagates out as a harness failure by design.
    const std::vector<std::byte> e1 = codec.encode(m);
    const Message m2 = codec.decode(e1);
    const std::vector<std::byte> e2 = codec.encode(m2);
    if (e1 != e2) {
      std::fprintf(stderr,
                   "codec_fuzz_harness: re-encoding is not a fixed point "
                   "(%zu vs %zu bytes)\n",
                   e1.size(), e2.size());
      std::abort();
    }
  }
  return accepted;
}

}  // namespace pds::net
